// Tests for power supplies, cascade monitoring, budget and sensor.
#include <gtest/gtest.h>

#include "power/budget.h"
#include "power/sensor.h"
#include "power/supply.h"
#include "simkit/event_queue.h"

namespace fvsst::power {
namespace {

std::vector<PowerSupply> two_supplies() {
  return {{"ps0", 480.0, true}, {"ps1", 480.0, true}};
}

TEST(PowerDomain, CapacitySumsHealthySupplies) {
  PowerDomain domain(two_supplies());
  EXPECT_DOUBLE_EQ(domain.available_capacity_w(), 960.0);
  domain.fail_supply(0);
  EXPECT_DOUBLE_EQ(domain.available_capacity_w(), 480.0);
  domain.restore_supply(0);
  EXPECT_DOUBLE_EQ(domain.available_capacity_w(), 960.0);
}

TEST(PowerDomain, RejectsEmpty) {
  EXPECT_THROW(PowerDomain({}), std::invalid_argument);
}

TEST(PowerDomain, NotifiesOnChangeOnly) {
  PowerDomain domain(two_supplies());
  int notifications = 0;
  double last_capacity = -1.0;
  domain.on_capacity_change([&](double w) {
    ++notifications;
    last_capacity = w;
  });
  domain.fail_supply(1);
  EXPECT_EQ(notifications, 1);
  EXPECT_DOUBLE_EQ(last_capacity, 480.0);
  domain.fail_supply(1);  // already failed: no notification
  EXPECT_EQ(notifications, 1);
  domain.restore_supply(1);
  EXPECT_EQ(notifications, 2);
  domain.restore_supply(1);  // already healthy
  EXPECT_EQ(notifications, 2);
}

TEST(CascadeMonitor, TriggersAfterSustainedOverload) {
  sim::Simulation sim;
  PowerDomain domain(two_supplies());
  double consumption = 700.0;
  CascadeMonitor monitor(sim, domain, [&] { return consumption; },
                         /*overload_tolerance_s=*/0.5);
  sim.schedule_at(1.0, [&] { domain.fail_supply(0); });  // capacity -> 480
  sim.run_until(1.4);
  EXPECT_FALSE(monitor.cascaded());  // overloaded only 0.4 s
  sim.run_until(2.0);
  EXPECT_TRUE(monitor.cascaded());
}

TEST(CascadeMonitor, NoCascadeIfLoadDropsInTime) {
  sim::Simulation sim;
  PowerDomain domain(two_supplies());
  double consumption = 700.0;
  CascadeMonitor monitor(sim, domain, [&] { return consumption; },
                         /*overload_tolerance_s=*/0.5);
  sim.schedule_at(1.0, [&] { domain.fail_supply(0); });
  sim.schedule_at(1.3, [&] { consumption = 300.0; });  // responds in 0.3 s
  sim.run_until(5.0);
  EXPECT_FALSE(monitor.cascaded());
}

TEST(CascadeMonitor, OverloadEpisodeResets) {
  sim::Simulation sim;
  PowerDomain domain(two_supplies());
  double consumption = 500.0;
  CascadeMonitor monitor(sim, domain, [&] { return consumption; },
                         /*overload_tolerance_s=*/1.0);
  sim.schedule_at(1.0, [&] { domain.fail_supply(0); });
  sim.schedule_at(1.5, [&] { consumption = 100.0; });  // recovers
  sim.schedule_at(3.0, [&] { consumption = 500.0; });  // overloads again
  sim.run_until(3.8);
  EXPECT_FALSE(monitor.cascaded());  // second episode only 0.8 s old
  sim.run_until(4.2);
  EXPECT_TRUE(monitor.cascaded());
}

TEST(CascadeMonitor, CallbackFiresOnce) {
  sim::Simulation sim;
  PowerDomain domain({{"ps", 100.0, true}});
  CascadeMonitor monitor(sim, domain, [] { return 200.0; }, 0.1);
  int fired = 0;
  monitor.on_cascade([&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(PowerBudget, EffectiveLimitAppliesMargin) {
  PowerBudget budget(300.0, 0.1);
  EXPECT_DOUBLE_EQ(budget.limit_w(), 300.0);
  EXPECT_DOUBLE_EQ(budget.effective_limit_w(), 270.0);
}

TEST(PowerBudget, RejectsInvalidArguments) {
  EXPECT_THROW(PowerBudget(-1.0), std::invalid_argument);
  EXPECT_THROW(PowerBudget(100.0, 1.0), std::invalid_argument);
  PowerBudget b(100.0);
  EXPECT_THROW(b.set_limit_w(-5.0), std::invalid_argument);
  EXPECT_THROW(b.set_margin_fraction(-0.1), std::invalid_argument);
}

TEST(PowerBudget, NotifiesListenersWithEffectiveLimit) {
  PowerBudget budget(300.0, 0.1);
  std::vector<double> seen;
  budget.on_change([&](double w) { seen.push_back(w); });
  budget.set_limit_w(200.0);
  budget.set_limit_w(200.0);  // unchanged: no notification
  budget.set_margin_fraction(0.5);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 180.0);
  EXPECT_DOUBLE_EQ(seen[1], 100.0);
}

TEST(SupplyEfficiency, DefaultCurveShape) {
  SupplyEfficiency eff;
  // Poor at light load, peaking mid-range, easing off at full load.
  EXPECT_LT(eff.at(0.02), eff.at(0.5));
  EXPECT_GT(eff.at(0.5), eff.at(1.0));
  EXPECT_NEAR(eff.at(0.5), 0.87, 1e-12);
  // Clamps out-of-range loads.
  EXPECT_DOUBLE_EQ(eff.at(-1.0), eff.at(0.0));
  EXPECT_DOUBLE_EQ(eff.at(2.0), eff.at(1.0));
}

TEST(SupplyEfficiency, LinearInterpolation) {
  SupplyEfficiency eff({{0.0, 0.5}, {1.0, 1.0}});
  EXPECT_DOUBLE_EQ(eff.at(0.5), 0.75);
  EXPECT_DOUBLE_EQ(eff.at(0.25), 0.625);
}

TEST(SupplyEfficiency, Validates) {
  EXPECT_THROW(SupplyEfficiency(std::vector<SupplyEfficiency::Point>{}),
               std::invalid_argument);
  EXPECT_THROW(SupplyEfficiency({{0.5, 0.0}}), std::invalid_argument);
  EXPECT_THROW(SupplyEfficiency({{0.5, 1.5}}), std::invalid_argument);
}

TEST(SupplyEfficiency, WallPowerExceedsDcPower) {
  SupplyEfficiency eff;
  // 240 W DC from a 480 W supply (50% load, eta 0.87).
  EXPECT_NEAR(eff.wall_power_w(240.0, 480.0), 240.0 / 0.87, 1e-9);
  EXPECT_DOUBLE_EQ(eff.wall_power_w(0.0, 480.0), 0.0);
  EXPECT_THROW(eff.wall_power_w(100.0, 0.0), std::invalid_argument);
  // Power management that drops a supply to 5% load pays an efficiency
  // penalty: wall savings are smaller than DC savings.
  const double wall_hi = eff.wall_power_w(240.0, 480.0);
  const double wall_lo = eff.wall_power_w(24.0, 480.0);
  EXPECT_GT(wall_lo / 24.0, wall_hi / 240.0);  // worse W_ac per W_dc
}

TEST(PowerSensor, TracksMeanAndEnergy) {
  sim::Simulation sim;
  double power = 100.0;
  PowerSensor sensor(sim, [&] { return power; }, 0.1);
  sim.schedule_at(1.0, [&] { power = 50.0; });
  sim.run_until(2.0);
  // 100 W for 1 s + 50 W for 1 s (sampling grid aligns with the change).
  EXPECT_NEAR(sensor.energy_j(), 150.0, 5.0 + 1e-9);
  EXPECT_NEAR(sensor.mean_power_w(), 75.0, 3.0);
  EXPECT_DOUBLE_EQ(sensor.last_sample_w(), 50.0);
  EXPECT_GT(sensor.trace().size(), 15u);
}

}  // namespace
}  // namespace fvsst::power
