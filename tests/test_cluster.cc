// Tests for nodes, clusters and the message channel.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cluster/channel.h"
#include "cluster/cluster.h"
#include "mach/machine_config.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::cluster {
namespace {

using units::GHz;
using units::MHz;

TEST(Node, BuildsCoresFromMachineConfig) {
  sim::Simulation sim;
  sim::Rng rng(1);
  Node node(sim, "n0", mach::p630(), rng);
  EXPECT_EQ(node.cpu_count(), 4u);
  EXPECT_EQ(node.core(0).name(), "n0/cpu0");
  EXPECT_DOUBLE_EQ(node.core(3).frequency_hz(), 1 * GHz);
}

TEST(Node, PowerIsTablePowerAtRequestedPoints) {
  sim::Simulation sim;
  sim::Rng rng(1);
  Node node(sim, "n0", mach::p630(), rng);
  EXPECT_DOUBLE_EQ(node.cpu_power_w(), 4 * 140.0);
  node.core(0).set_frequency(250 * MHz);
  node.core(1).set_frequency(600 * MHz);
  EXPECT_DOUBLE_EQ(node.cpu_power_w(), 9.0 + 48.0 + 140.0 + 140.0);
}

TEST(Node, TotalPowerIncludesOverhead) {
  sim::Simulation sim;
  sim::Rng rng(1);
  Node node(sim, "n0", mach::p630_motivating_example(), rng);
  EXPECT_DOUBLE_EQ(node.total_power_w(), 746.0);
}

TEST(Node, ResetToMaxFrequency) {
  sim::Simulation sim;
  sim::Rng rng(1);
  Node node(sim, "n0", mach::p630(), rng);
  node.core(2).set_frequency(250 * MHz);
  node.reset_to_max_frequency();
  EXPECT_DOUBLE_EQ(node.core(2).frequency_hz(), 1 * GHz);
}

TEST(Cluster, RejectsEmpty) {
  EXPECT_THROW(Cluster({}), std::invalid_argument);
}

TEST(Cluster, HomogeneousFlattening) {
  sim::Simulation sim;
  sim::Rng rng(1);
  Cluster c = Cluster::homogeneous(sim, mach::p630(), 3, rng);
  EXPECT_EQ(c.node_count(), 3u);
  EXPECT_EQ(c.cpu_count(), 12u);
  const auto procs = c.all_procs();
  ASSERT_EQ(procs.size(), 12u);
  EXPECT_EQ(procs[0].node, 0u);
  EXPECT_EQ(procs[0].cpu, 0u);
  EXPECT_EQ(procs[11].node, 2u);
  EXPECT_EQ(procs[11].cpu, 3u);
}

TEST(Cluster, AggregatePower) {
  sim::Simulation sim;
  sim::Rng rng(1);
  Cluster c = Cluster::homogeneous(sim, mach::p630(), 2, rng);
  EXPECT_DOUBLE_EQ(c.cpu_power_w(), 8 * 140.0);
  c.core({1, 2}).set_frequency(500 * MHz);
  EXPECT_DOUBLE_EQ(c.cpu_power_w(), 7 * 140.0 + 35.0);
}

TEST(Cluster, CoresRunIndependently) {
  sim::Simulation sim;
  sim::Rng rng(1);
  Cluster c = Cluster::homogeneous(sim, mach::p630(), 2, rng);
  c.core({0, 0}).add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  c.core({1, 3}).add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  c.core({1, 3}).set_frequency(500 * MHz);
  sim.run_for(0.1);
  EXPECT_GT(c.core({0, 0}).instructions_retired(),
            1.9 * c.core({1, 3}).instructions_retired());
  EXPECT_DOUBLE_EQ(c.core({0, 1}).instructions_retired(), 0.0);
}

TEST(Channel, RejectsNegativeLatency) {
  sim::Simulation sim;
  EXPECT_THROW(Channel(sim, -1.0), std::invalid_argument);
}

TEST(Channel, DeliversAfterLatency) {
  sim::Simulation sim;
  Channel ch(sim, 0.5);
  double delivered_at = -1.0;
  ch.send([&] { delivered_at = sim.now(); });
  sim.run_until(0.49);
  EXPECT_DOUBLE_EQ(delivered_at, -1.0);
  sim.run_until(1.0);
  EXPECT_DOUBLE_EQ(delivered_at, 0.5);
  EXPECT_EQ(ch.delivered(), 1u);
}

TEST(Channel, JitterStaysWithinBound) {
  sim::Simulation sim;
  Channel ch(sim, 0.1, 0.05, sim::Rng(3));
  std::vector<double> times;
  for (int i = 0; i < 50; ++i) {
    ch.send([&] { times.push_back(sim.now()); });
  }
  sim.run_until(1.0);
  ASSERT_EQ(times.size(), 50u);
  for (double t : times) {
    EXPECT_GE(t, 0.1);
    EXPECT_LT(t, 0.15);
  }
}

TEST(Channel, LossDropsExpectedFraction) {
  sim::Simulation sim;
  Channel ch(sim, 0.001, 0.0, sim::Rng(11));
  ch.set_loss_probability(0.25);
  int delivered = 0;
  for (int i = 0; i < 4000; ++i) {
    ch.send([&] { ++delivered; });
  }
  sim.run_until(1.0);
  EXPECT_NEAR(static_cast<double>(delivered) / 4000.0, 0.75, 0.03);
  EXPECT_EQ(ch.delivered() + ch.dropped(), 4000u);
}

TEST(Channel, LossProbabilityValidated) {
  sim::Simulation sim;
  Channel ch(sim, 0.001);
  EXPECT_THROW(ch.set_loss_probability(-0.1), std::invalid_argument);
  EXPECT_THROW(ch.set_loss_probability(1.0), std::invalid_argument);
  EXPECT_NO_THROW(ch.set_loss_probability(0.0));
  // NaN fails every range comparison, so an unguarded implementation would
  // accept it and silently disable loss; it must be rejected instead.
  EXPECT_THROW(ch.set_loss_probability(std::nan("")),
               std::invalid_argument);
  EXPECT_THROW(ch.set_loss_probability(
                   std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(Channel, SendDelayedAddsExtraDelay) {
  sim::Simulation sim;
  Channel ch(sim, 0.1);
  double plain_at = -1.0;
  double delayed_at = -1.0;
  ch.send([&] { plain_at = sim.now(); });
  ch.send_delayed(0.25, [&] { delayed_at = sim.now(); });
  sim.run_until(1.0);
  EXPECT_DOUBLE_EQ(plain_at, 0.1);
  EXPECT_DOUBLE_EQ(delayed_at, 0.35);
  EXPECT_THROW(ch.send_delayed(-0.01, [] {}), std::invalid_argument);
}

TEST(Channel, SendDelayedZeroMatchesSendRandomness) {
  // send_delayed(0, ...) must consume exactly the randomness of send(), so
  // interleaving the two leaves every subsequent jitter/loss draw
  // unchanged.  Two channels seeded identically, one using send() and one
  // using send_delayed(0), must deliver at identical times.
  sim::Simulation sim;
  Channel plain(sim, 0.01, 0.02, sim::Rng(77));
  Channel shimmed(sim, 0.01, 0.02, sim::Rng(77));
  std::vector<double> plain_times;
  std::vector<double> shimmed_times;
  for (int i = 0; i < 20; ++i) {
    plain.send([&] { plain_times.push_back(sim.now()); });
    shimmed.send_delayed(0.0, [&] { shimmed_times.push_back(sim.now()); });
  }
  sim.run_until(1.0);
  EXPECT_EQ(plain_times, shimmed_times);
}

TEST(Channel, DropHandlerReentrantSendIsSafe) {
  // The documented reentrancy contract: the drop handler runs after the
  // drop is fully accounted, so a handler that itself sends a message (a
  // loss report, say) must observe consistent counters and inject an
  // ordinary message into the stream.
  sim::Simulation sim;
  Channel ch(sim, 0.001, 0.0, sim::Rng(5));
  ch.set_loss_probability(0.5);
  std::size_t reports_sent = 0;
  std::size_t reports_delivered = 0;
  std::size_t dropped_seen_by_handler = 0;
  ch.set_drop_handler([&] {
    // The drop that triggered us is already counted.
    dropped_seen_by_handler = ch.dropped();
    // One nested send per drop; it may itself be dropped, which re-enters
    // this handler exactly one level deep (the nested send carries no
    // handler-side send of its own, so recursion is bounded).
    ++reports_sent;
    const std::size_t depth_guard = reports_sent;
    if (depth_guard <= 4096) {
      ch.send([&] { ++reports_delivered; });
    }
  });
  int primary_delivered = 0;
  constexpr int kPrimary = 200;
  for (int i = 0; i < kPrimary; ++i) {
    ch.send([&] { ++primary_delivered; });
  }
  sim.run_until(1.0);
  // Every message — primary or nested report — was either delivered or
  // dropped, and the handler always saw the triggering drop accounted.
  EXPECT_EQ(ch.delivered() + ch.dropped(),
            static_cast<std::size_t>(kPrimary) + reports_sent);
  EXPECT_EQ(ch.dropped(), reports_sent);  // one report per drop
  EXPECT_EQ(dropped_seen_by_handler, ch.dropped());
  EXPECT_EQ(static_cast<std::size_t>(primary_delivered) + reports_delivered,
            ch.delivered());
  EXPECT_GT(reports_sent, 0u);
  EXPECT_GT(reports_delivered, 0u);
}

TEST(Channel, PreservesOrderWithoutJitter) {
  sim::Simulation sim;
  Channel ch(sim, 0.01);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    ch.send([&, i] { order.push_back(i); });
  }
  sim.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace fvsst::cluster
