// Tests for hierarchical power constraints (core/constrained_scheduler.h).
#include "core/constrained_scheduler.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/rng.h"
#include "simkit/units.h"

namespace fvsst::core {
namespace {

using units::GHz;
using units::MHz;

const mach::MemoryLatencies kLat = mach::p630().latencies;

WorkloadEstimate est(double alpha, double stall_cpi) {
  WorkloadEstimate e;
  e.valid = true;
  e.alpha_inv = 1.0 / alpha;
  e.mem_time_per_instr = stall_cpi / 1e9;
  return e;
}

ConstrainedScheduler make() {
  return ConstrainedScheduler(mach::p630_frequency_table(), kLat, {});
}

TEST(ConstrainedScheduler, ValidatesIndices) {
  const auto sched = make();
  std::vector<ProcView> procs(2, ProcView{est(1.6, 0.1), false});
  std::vector<PowerConstraint> bad{{"x", {0, 5}, 100.0}};
  EXPECT_THROW(sched.schedule(procs, bad), std::invalid_argument);
}

TEST(ConstrainedScheduler, SingleGlobalConstraintMatchesBaseScheduler) {
  const auto sched = make();
  const FrequencyScheduler base(mach::p630_frequency_table(), kLat, {});
  sim::Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<ProcView> procs(4);
    for (auto& p : procs) {
      p.estimate = est(rng.uniform(1.0, 2.0), rng.uniform(0.0, 12.0));
    }
    const double budget = rng.uniform(40.0, 560.0);
    std::vector<PowerConstraint> cs{{"site", {0, 1, 2, 3}, budget}};
    const auto constrained = sched.schedule(procs, cs);
    const auto plain = base.schedule(procs, budget);
    for (std::size_t p = 0; p < 4; ++p) {
      ASSERT_DOUBLE_EQ(constrained.schedule.decisions[p].hz,
                       plain.decisions[p].hz)
          << trial << "/" << p;
    }
    EXPECT_EQ(constrained.feasible, plain.feasible);
  }
}

TEST(ConstrainedScheduler, PerNodeLimitBindsOnlyItsNode) {
  const auto sched = make();
  // Node 0 (procs 0-1) CPU-bound, node 1 (procs 2-3) CPU-bound; only
  // node 0 has a tight limit.
  std::vector<ProcView> procs(4, ProcView{est(1.6, 0.06), false});
  std::vector<PowerConstraint> cs{
      {"node0", {0, 1}, 150.0},   // two CPU-bound CPUs want 280 W
      {"node1", {2, 3}, 1000.0},  // slack
  };
  const auto r = sched.schedule(procs, cs);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.constraint_w[0], 150.0);
  // Node 1 untouched at f_max.
  EXPECT_DOUBLE_EQ(r.schedule.decisions[2].hz, 1 * GHz);
  EXPECT_DOUBLE_EQ(r.schedule.decisions[3].hz, 1 * GHz);
  // Node 0 squeezed below f_max.
  EXPECT_LT(r.schedule.decisions[0].hz, 1 * GHz);
  EXPECT_LT(r.schedule.decisions[1].hz, 1 * GHz);
}

TEST(ConstrainedScheduler, SiteLimitOnTopOfNodeLimits) {
  const auto sched = make();
  // Diverse workloads across two nodes; generous node limits, tight site.
  std::vector<ProcView> procs{
      {est(1.6, 0.06), false}, {est(1.6, 6.4), false},
      {est(1.6, 0.06), false}, {est(1.6, 6.4), false}};
  auto cs = node_and_site_constraints(2, 2, 280.0, 300.0);
  const auto r = sched.schedule(procs, cs);
  EXPECT_TRUE(r.feasible);
  for (std::size_t c = 0; c < cs.size(); ++c) {
    EXPECT_TRUE(r.satisfied[c]) << cs[c].name;
  }
  // The site limit forces the memory-bound processors down first; the
  // CPU-bound ones keep more frequency.
  EXPECT_GT(r.schedule.decisions[0].hz, r.schedule.decisions[1].hz);
}

TEST(ConstrainedScheduler, InfeasibleReportsPerConstraint) {
  const auto sched = make();
  std::vector<ProcView> procs(2, ProcView{est(1.6, 0.06), false});
  std::vector<PowerConstraint> cs{{"tiny", {0, 1}, 10.0}};  // < 2 x 9 W
  const auto r = sched.schedule(procs, cs);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.satisfied[0]);
  EXPECT_DOUBLE_EQ(r.schedule.decisions[0].hz, 250 * MHz);
  EXPECT_DOUBLE_EQ(r.schedule.decisions[1].hz, 250 * MHz);
}

TEST(ConstrainedScheduler, OverlappingConstraintsAllHold) {
  const auto sched = make();
  sim::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ProcView> procs(6);
    for (auto& p : procs) {
      p.estimate = est(rng.uniform(1.0, 2.0), rng.uniform(0.0, 12.0));
    }
    // Random overlapping constraint structure, each individually feasible.
    std::vector<PowerConstraint> cs;
    for (int c = 0; c < 4; ++c) {
      PowerConstraint pc;
      pc.name = "c" + std::to_string(c);
      for (std::size_t p = 0; p < 6; ++p) {
        if (rng.bernoulli(0.5)) pc.procs.push_back(p);
      }
      if (pc.procs.empty()) pc.procs.push_back(0);
      pc.limit_w =
          rng.uniform(9.0 * static_cast<double>(pc.procs.size()),
                      140.0 * static_cast<double>(pc.procs.size()));
      cs.push_back(std::move(pc));
    }
    const auto r = sched.schedule(procs, cs);
    ASSERT_TRUE(r.feasible) << trial;
    for (std::size_t c = 0; c < cs.size(); ++c) {
      EXPECT_LE(r.constraint_w[c], cs[c].limit_w + 1e-9)
          << trial << " " << cs[c].name;
    }
  }
}

TEST(NodeAndSiteConstraints, BuildsTwoLevels) {
  const auto cs = node_and_site_constraints(3, 4, 300.0, 700.0);
  ASSERT_EQ(cs.size(), 4u);
  EXPECT_EQ(cs[0].name, "node0");
  EXPECT_EQ(cs[0].procs, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(cs[3].name, "site");
  EXPECT_EQ(cs[3].procs.size(), 12u);
  EXPECT_DOUBLE_EQ(cs[3].limit_w, 700.0);
}

}  // namespace
}  // namespace fvsst::core
