// Tests for coordinator failover: standby election with epoch fencing,
// crash-safe recovery from the stable store, and the node-local fail-safe
// (core/coordinator.h, cluster/election.h, the failover half of
// core/cluster_daemon.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cluster/election.h"
#include "core/cluster_daemon.h"
#include "core/coordinator.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::core {
namespace {

using units::ms;
using units::us;

std::size_t count_type(const sim::EventLog& log, sim::EventType type) {
  std::size_t n = 0;
  for (const sim::Event& e : log.events()) n += e.type == type;
  return n;
}

struct ClusterRig {
  explicit ClusterRig(std::size_t nodes)
      : cluster(cluster::Cluster::homogeneous(sim, mach::p630(), nodes, rng)),
        budget(static_cast<double>(nodes) * 4 * 140.0) {}

  void load_all() {
    for (const auto& addr : cluster.all_procs()) {
      cluster.core(addr).add_workload(
          workload::make_uniform_synthetic(100.0, 1e12));
    }
  }

  sim::Simulation sim;
  sim::Rng rng{7};
  cluster::Cluster cluster;
  power::PowerBudget budget;
};

ClusterDaemonConfig default_config() {
  ClusterDaemonConfig cfg;
  cfg.t_sample_s = 10 * ms;
  cfg.schedule_every_n_samples = 10;
  cfg.channel_latency_s = 200 * us;
  cfg.channel_jitter_s = 50 * us;
  return cfg;
}

// --- Election primitives ---------------------------------------------------

TEST(Election, FenceAdmitsForwardRejectsBackward) {
  cluster::EpochFence fence;
  EXPECT_TRUE(fence.admit(1));
  EXPECT_TRUE(fence.admit(1));  // Same epoch stays admitted.
  EXPECT_TRUE(fence.admit(4));
  EXPECT_FALSE(fence.admit(3));  // Deposed coordinator.
  EXPECT_EQ(fence.current(), 4u);
}

TEST(Election, ClaimsAreUniqueAndAboveEverythingSeen) {
  // Two coordinators claiming from the same max_seen never collide, and
  // both claims beat the old epoch.
  const cluster::Epoch a = cluster::claim_epoch(5, 0);
  const cluster::Epoch b = cluster::claim_epoch(5, 1);
  EXPECT_NE(a, b);
  EXPECT_GT(a, 5u);
  EXPECT_GT(b, 5u);
}

TEST(Election, TakeoverJitterIsDeterministicAndBounded) {
  const double j1 = cluster::takeover_jitter_s(42, 1, 3, 0.05);
  const double j2 = cluster::takeover_jitter_s(42, 1, 3, 0.05);
  EXPECT_DOUBLE_EQ(j1, j2);
  EXPECT_GE(j1, 0.0);
  EXPECT_LT(j1, 0.05);
  // Different coordinators spread apart.
  EXPECT_NE(cluster::takeover_jitter_s(42, 0, 2, 0.05), j1);
  EXPECT_DOUBLE_EQ(cluster::takeover_jitter_s(42, 1, 3, 0.0), 0.0);
}

// --- StableStore & snapshots -----------------------------------------------

TEST(StableStore, SnapshotRoundTripsThroughChecksum) {
  CoordinatorSnapshot snap;
  snap.epoch = 7;
  snap.round = 42;
  snap.taken_at = 1.25;
  snap.budget_w = 512.5;
  snap.grants_hz = {1.1e9, 0.85e9, 0.25e9};
  snap.last_summary_at = {1.19, 1.21};

  const auto decoded = CoordinatorSnapshot::decode(snap.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch, 7u);
  EXPECT_EQ(decoded->round, 42u);
  EXPECT_DOUBLE_EQ(decoded->taken_at, 1.25);
  EXPECT_DOUBLE_EQ(decoded->budget_w, 512.5);
  EXPECT_EQ(decoded->grants_hz, snap.grants_hz);
  EXPECT_EQ(decoded->last_summary_at, snap.last_summary_at);
}

TEST(StableStore, CorruptSnapshotIsRejectedNotHalfApplied) {
  CoordinatorSnapshot snap;
  snap.epoch = 3;
  snap.grants_hz = {1.0e9};
  std::string blob = snap.encode();
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string bad = blob;
    bad[i] = static_cast<char>(bad[i] ^ 0x10);
    EXPECT_FALSE(CoordinatorSnapshot::decode(bad).has_value()) << "byte " << i;
  }
  EXPECT_FALSE(CoordinatorSnapshot::decode("").has_value());
  EXPECT_FALSE(CoordinatorSnapshot::decode("short").has_value());
}

TEST(StableStore, RecoverySurvivesCorruptSnapshotViaGrantLog) {
  StableStore store;
  CoordinatorSnapshot snap;
  snap.epoch = 2;
  snap.round = 8;
  snap.budget_w = 300.0;
  snap.grants_hz = {1.0e9, 1.0e9};
  store.save_snapshot(snap);
  store.append_grant({0.9, 2, 280.0, 9, {0.9e9, 0.9e9}});
  store.append_grant({1.0, 2, 250.0, 10, {0.8e9, 0.85e9}});

  // Clean recovery: snapshot plus the two replayed records.
  StableStore::Recovery rec = store.recover();
  EXPECT_TRUE(rec.had_snapshot);
  EXPECT_TRUE(rec.checksum_ok);
  EXPECT_EQ(rec.replayed, 2u);
  EXPECT_EQ(rec.state.round, 10u);
  EXPECT_DOUBLE_EQ(rec.state.budget_w, 250.0);
  EXPECT_DOUBLE_EQ(rec.state.grants_hz[1], 0.85e9);

  // A bit-rotted snapshot is discarded; the write-ahead grant log alone
  // still reconstructs the latest operating point.
  store.corrupt_snapshot_for_test(4);
  rec = store.recover();
  EXPECT_TRUE(rec.had_snapshot);
  EXPECT_FALSE(rec.checksum_ok);
  EXPECT_EQ(rec.replayed, 2u);
  EXPECT_EQ(rec.state.round, 10u);
  EXPECT_DOUBLE_EQ(rec.state.grants_hz[0], 0.8e9);

  // Saving a snapshot folds the log in (truncation).
  store.save_snapshot(snap);
  EXPECT_EQ(store.grant_log_size(), 0u);
}

// --- The acceptance scenario: coordinator crash right after a budget drop --

TEST(Failover, StandbyTakesOverAfterCrashFollowingBudgetDrop) {
  ClusterRig rig(2);
  rig.load_all();

  sim::FaultPlan plan(1);
  // The coordinator dies at the very instant the supply fails (the budget
  // drop at t = 1.0123 triggers a round the primary never gets to run).
  plan.add({sim::FaultKind::kCoordinatorCrash, 1.0123, 2.0, /*target=*/0, 0.0});

  sim::EventLog journal;
  ClusterDaemonConfig cfg = default_config();
  cfg.journal = &journal;
  cfg.fault_plan = &plan;
  cfg.failover.standby = true;
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, cfg);

  rig.sim.run_for(1.0);
  EXPECT_DOUBLE_EQ(rig.cluster.cpu_power_w(), 8 * 140.0);
  rig.sim.schedule_at(1.0123, [&] { rig.budget.set_limit_w(500.0); });

  // The standby's election deadline: takeover_factor (3) + jitter (<= 0.5)
  // periods of silence, plus one period of slack for heartbeat cadence and
  // message flight.  The cluster must be back under budget by then.
  const double period = cfg.t_sample_s * cfg.schedule_every_n_samples;
  const double deadline =
      1.0123 + (cfg.failover.takeover_factor +
                cfg.failover.takeover_jitter_factor + 1.0) *
                   period;
  double power_at_deadline = -1.0;
  rig.sim.schedule_at(deadline,
                      [&] { power_at_deadline = rig.cluster.cpu_power_w(); });
  rig.sim.run_for(1.5);  // to t = 2.5: crash window closed at 2.0

  // The standby took over with a higher epoch and the cluster complied
  // inside the failover window, long before the crashed primary returned.
  EXPECT_LE(power_at_deadline, 500.0);
  ASSERT_NE(daemon.standby(), nullptr);
  EXPECT_TRUE(daemon.standby()->leader());
  EXPECT_FALSE(daemon.primary().leader());
  EXPECT_GT(daemon.epoch(), 1u);
  EXPECT_EQ(daemon.primary().restarts(), 1u);
  EXPECT_LE(rig.cluster.cpu_power_w(), 500.0);

  // Journal: a boot and a takeover announcement, monotone epochs, no
  // settings applied from a deposed coordinator, compliance in-window.
  EXPECT_GE(count_type(journal, sim::EventType::kEpochChange), 2u);
  cluster::Epoch last_announced = 0;
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kEpochChange) continue;
    const auto epoch = static_cast<cluster::Epoch>(e.num_or("epoch"));
    EXPECT_GE(epoch, last_announced);
    last_announced = epoch;
  }
  EXPECT_EQ(last_announced, daemon.epoch());
  // The restart recovered through the stable store and journalled it.
  bool saw_recover = false;
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kSnapshot) continue;
    const std::string* op = e.find_str("op");
    if (op && *op == "recover") {
      saw_recover = true;
      EXPECT_DOUBLE_EQ(e.num_or("checksum_ok"), 1.0);
    }
  }
  EXPECT_TRUE(saw_recover);

  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());
}

// --- Node-local fail-safe: budget honoured with no coordinator at all ------

TEST(Failover, NodeFailsafeCoversTotalCoordinatorLoss) {
  ClusterRig rig(2);
  rig.load_all();

  sim::FaultPlan plan(1);
  plan.add({sim::FaultKind::kCoordinatorCrash, 1.0123, 2.0, /*target=*/0, 0.0});

  sim::EventLog journal;
  ClusterDaemonConfig cfg = default_config();
  cfg.journal = &journal;
  cfg.fault_plan = &plan;
  // No standby: the only protection is each node's autonomous budget/N
  // drop after 2 T of coordinator silence.
  cfg.failover.node_failsafe_factor = 2.0;
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, cfg);

  rig.sim.run_for(1.0);
  rig.sim.schedule_at(1.0123, [&] { rig.budget.set_limit_w(500.0); });

  const double period = cfg.t_sample_s * cfg.schedule_every_n_samples;
  const double deadline =
      1.0123 + cfg.failover.node_failsafe_factor * period +
      2.0 * cfg.t_sample_s;
  double power_at_deadline = -1.0;
  std::size_t failsafe_at_deadline = 0;
  rig.sim.schedule_at(deadline, [&] {
    power_at_deadline = rig.cluster.cpu_power_w();
    failsafe_at_deadline = daemon.failsafe_node_count();
  });
  rig.sim.run_for(1.5);

  // Inside the window every node dropped itself to its budget/N point.
  EXPECT_EQ(failsafe_at_deadline, 2u);
  EXPECT_LE(power_at_deadline, 500.0);

  // After the primary restarted and resumed rounds, coordinated settings
  // took back over and the fail-safe stood down.
  EXPECT_EQ(daemon.failsafe_node_count(), 0u);
  EXPECT_TRUE(daemon.primary().leader());
  EXPECT_EQ(daemon.primary().restarts(), 1u);
  EXPECT_LE(rig.cluster.cpu_power_w(), 500.0);

  // Both degraded-mode transitions are journalled, and the inspector's
  // failover-window check passes on the autonomous recovery.
  std::size_t enters = 0;
  std::size_t exits = 0;
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kDegradedMode) continue;
    const std::string* reason = e.find_str("reason");
    if (!reason || *reason != "coordinator_silent") continue;
    const std::string* state = e.find_str("state");
    enters += state && *state == "enter";
    exits += state && *state == "exit";
  }
  EXPECT_EQ(enters, 2u);
  EXPECT_EQ(exits, 2u);

  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());
}

// --- Split brain: a partitioned standby elects itself; fencing contains it -

TEST(Failover, PartitionedStandbyIsFencedOffAfterHeal) {
  ClusterRig rig(2);
  rig.load_all();

  sim::FaultPlan plan(1);
  // The standby is cut off long enough to depose the (healthy) primary in
  // its own view and elect itself: classic split brain.
  plan.add({sim::FaultKind::kPartition, 0.8, 1.6, /*target=*/1, 0.0});

  sim::EventLog journal;
  ClusterDaemonConfig cfg = default_config();
  cfg.journal = &journal;
  cfg.fault_plan = &plan;
  cfg.failover.standby = true;
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, cfg);

  // While partitioned, the standby's claim cannot reach anyone.
  rig.sim.run_for(1.5);
  ASSERT_NE(daemon.standby(), nullptr);
  EXPECT_TRUE(daemon.standby()->leader());
  EXPECT_TRUE(daemon.primary().leader());  // Two leaders: the dangerous state.
  EXPECT_GT(daemon.standby()->epoch(), daemon.primary().epoch());

  // A budget move lands while both believe they lead — both fan out, with
  // different epochs.  The fences guarantee no node ever applies the
  // deposed epoch after the newer one.
  rig.sim.schedule_at(1.6543, [&] { rig.budget.set_limit_w(500.0); });
  rig.sim.run_for(1.0);

  // Healed: the old primary heard the higher epoch and stepped down.
  EXPECT_FALSE(daemon.primary().leader());
  EXPECT_TRUE(daemon.standby()->leader());
  EXPECT_EQ(daemon.epoch(), daemon.standby()->epoch());
  EXPECT_LE(rig.cluster.cpu_power_w(), 500.0);

  // The stepdown was announced, and the inspector confirms the fencing
  // invariant (per-node applied epochs never regress).
  bool saw_stepdown = false;
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kEpochChange) continue;
    const std::string* reason = e.find_str("reason");
    saw_stepdown = saw_stepdown || (reason && *reason == "stepdown");
  }
  EXPECT_TRUE(saw_stepdown);
  EXPECT_EQ(count_type(journal, sim::EventType::kSettingsRejected),
            daemon.settings_rejected());

  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());
}

// --- Crash-safe recovery without a standby ---------------------------------

TEST(Failover, RestartResumesFromStoreWithoutColdStartSpike) {
  ClusterRig rig(2);
  rig.load_all();

  sim::FaultPlan plan(1);
  plan.add({sim::FaultKind::kCoordinatorCrash, 1.05, 1.35, /*target=*/0, 0.0});

  sim::EventLog journal;
  ClusterDaemonConfig cfg = default_config();
  cfg.journal = &journal;
  cfg.fault_plan = &plan;
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, cfg);

  // Steady state under a tight budget before the crash.
  rig.budget.set_limit_w(500.0);
  rig.sim.run_for(1.0);
  EXPECT_LE(rig.cluster.cpu_power_w(), 500.0);
  const std::size_t rounds_before = daemon.rounds();

  rig.sim.run_for(1.5);  // crash at 1.05, restart detected after 1.35

  // The restarted coordinator waited out its warm-up (no round scheduled
  // from a cold mailbox) and resumed — and because its first post-restart
  // round saw a fully repopulated mailbox, the cluster never left the
  // budget: the maximum power over the whole faulted stretch stays
  // compliant (no cold-start spike to f_max).
  EXPECT_GT(daemon.rounds(), rounds_before);
  EXPECT_EQ(daemon.primary().restarts(), 1u);
  EXPECT_TRUE(daemon.primary().leader());
  // Tolerance: per-node applies land staggered, so the believed aggregate
  // briefly mixes one node's new grants with the other's old ones (a ~1-2%
  // excursion that exists in steady state too).  A cold start would spike
  // toward all-CPUs-at-f-max (1120 W here) — that must never appear.
  EXPECT_LE(daemon.scheduled_power_trace().max(0.5, 10.0), 500.0 * 1.05);

  // The recovery journalled a clean checksum and replayed grant records.
  bool saw_recover = false;
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kSnapshot) continue;
    const std::string* op = e.find_str("op");
    if (op && *op == "recover") {
      saw_recover = true;
      EXPECT_DOUBLE_EQ(e.num_or("checksum_ok"), 1.0);
      EXPECT_GE(e.num_or("epoch"), 1.0);
    }
  }
  EXPECT_TRUE(saw_recover);

  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());
}

// --- Satellite: response-latency accounting survives a lost trigger apply --

TEST(Failover, DroppedTriggerSettingsAreClosedByRepairRound) {
  ClusterRig rig(2);
  rig.load_all();

  // Node 1 loses every message in a window that covers exactly the
  // budget-triggered settings send, then clears before the next periodic
  // round — the repair round's apply must close the latency measurement.
  sim::FaultPlan plan(1);
  plan.add({sim::FaultKind::kChannelLoss, 1.01, 1.05, /*target=*/1,
            /*p=*/1.0});

  ClusterDaemonConfig cfg = default_config();
  cfg.fault_plan = &plan;
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, cfg);

  rig.sim.run_for(1.0);
  rig.sim.schedule_at(1.0123, [&] { rig.budget.set_limit_w(500.0); });
  rig.sim.run_for(0.05);  // trigger fires; node 1's settings are dropped

  EXPECT_GE(daemon.last_budget_trigger_time(), 1.0123);
  EXPECT_LT(daemon.last_trigger_applied_time(), 0.0)
      << "measurement closed although one node never applied";

  rig.sim.run_for(0.2);  // next periodic round repairs node 1
  ASSERT_GT(daemon.last_trigger_applied_time(), 0.0);
  const double latency =
      daemon.last_trigger_applied_time() - daemon.last_budget_trigger_time();
  // Closed by the repair round: roughly one period later, not wedged open.
  const double period = cfg.t_sample_s * cfg.schedule_every_n_samples;
  EXPECT_GT(latency, 0.05);
  EXPECT_LE(latency, 1.5 * period);
  EXPECT_LE(rig.cluster.cpu_power_w(), 500.0);
}

// --- Satellite: silent-node rejoin stands down within one round -------------

TEST(Failover, CrashedNodeRejoinClearsStalePinningWithinOneRound) {
  ClusterRig rig(2);
  rig.load_all();

  sim::FaultPlan plan(1);
  plan.add({sim::FaultKind::kNodeCrash, 0.3, 0.8, /*target=*/0, 0.0});

  ClusterDaemonConfig cfg = default_config();
  cfg.fault_plan = &plan;
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, cfg);

  const double period = cfg.t_sample_s * cfg.schedule_every_n_samples;
  std::size_t stale_during = 0;
  bool pinned_during = false;
  rig.sim.schedule_at(0.79, [&] {
    stale_during = daemon.stale_node_count();
    pinned_during = daemon.loop().pinned(0);
  });
  // One summary interval after the restart (plus flight time), the node
  // has reported in and the conservative f_max accounting must be gone.
  std::size_t stale_after = 99;
  bool pinned_after = true;
  rig.sim.schedule_at(0.8 + period + 0.01, [&] {
    stale_after = daemon.stale_node_count();
    pinned_after = daemon.loop().pinned(0);
  });
  rig.sim.run_for(1.2);

  EXPECT_EQ(stale_during, 1u);
  EXPECT_TRUE(pinned_during);
  EXPECT_EQ(stale_after, 0u);
  EXPECT_FALSE(pinned_after);
  EXPECT_EQ(daemon.stale_node_count(), 0u);
}

// --- Determinism ------------------------------------------------------------

sim::EventLog run_default_journal(const sim::FaultPlan* plan,
                                  bool standby = false) {
  ClusterRig rig(2);
  rig.load_all();
  sim::EventLog journal;
  ClusterDaemonConfig cfg = default_config();
  cfg.journal = &journal;
  cfg.fault_plan = plan;
  cfg.failover.standby = standby;
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, cfg);
  rig.sim.run_for(0.6);
  rig.budget.set_limit_w(500.0);
  rig.sim.run_for(0.6);
  return journal;
}

// Deep event comparison.  Actuation events carry measured wall-clock stage
// costs (estimate_s / policy_s / actuate_s) that legitimately differ run to
// run; every simulated field must match exactly.
bool is_wall_clock_key(const std::string& key) {
  return key == "estimate_s" || key == "policy_s" || key == "actuate_s";
}

void expect_journals_identical(const sim::EventLog& a, const sim::EventLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const sim::Event& ea = a.events()[i];
    const sim::Event& eb = b.events()[i];
    ASSERT_EQ(ea.type, eb.type) << "event " << i;
    ASSERT_DOUBLE_EQ(ea.t, eb.t) << "event " << i;
    ASSERT_EQ(ea.cpu, eb.cpu) << "event " << i;
    ASSERT_EQ(ea.num.size(), eb.num.size()) << "event " << i;
    for (std::size_t k = 0; k < ea.num.size(); ++k) {
      ASSERT_EQ(ea.num[k].first, eb.num[k].first) << "event " << i;
      if (is_wall_clock_key(ea.num[k].first)) continue;
      ASSERT_DOUBLE_EQ(ea.num[k].second, eb.num[k].second)
          << "event " << i << " key " << ea.num[k].first;
    }
    ASSERT_EQ(ea.str, eb.str) << "event " << i;
  }
}

TEST(FailoverDeterminism, DisabledProtocolIsBitForBitInert) {
  // An empty plan with the standby off must not change a single event:
  // no extra messages, no extra randomness, no new journal fields.
  const sim::FaultPlan empty_plan(123456);
  ASSERT_TRUE(empty_plan.empty());
  const sim::EventLog bare = run_default_journal(nullptr);
  const sim::EventLog wired = run_default_journal(&empty_plan);
  expect_journals_identical(bare, wired);
  // And the default journal carries none of the protocol's vocabulary.
  EXPECT_EQ(count_type(bare, sim::EventType::kEpochChange), 0u);
  EXPECT_EQ(count_type(bare, sim::EventType::kSnapshot), 0u);
  EXPECT_FALSE(bare.events().front().has_num("failover_window_s"));
}

TEST(FailoverDeterminism, ElectionRerunsIdentically) {
  // The same seed elects the same coordinator at the same instant: two
  // crash-failover runs produce identical journals, epochs included.
  auto run = [] {
    ClusterRig rig(2);
    rig.load_all();
    sim::FaultPlan plan(1);
    plan.add(
        {sim::FaultKind::kCoordinatorCrash, 1.0123, 2.0, /*target=*/0, 0.0});
    sim::EventLog journal;
    ClusterDaemonConfig cfg = default_config();
    cfg.journal = &journal;
    cfg.fault_plan = &plan;
    cfg.failover.standby = true;
    ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                         rig.budget, cfg);
    rig.sim.run_for(1.0);
    rig.sim.schedule_at(1.0123, [&] { rig.budget.set_limit_w(500.0); });
    rig.sim.run_for(1.5);
    return journal;
  };
  const sim::EventLog a = run();
  const sim::EventLog b = run();
  expect_journals_identical(a, b);
  EXPECT_GT(count_type(a, sim::EventType::kEpochChange), 1u);
}

}  // namespace
}  // namespace fvsst::core
