// Tests for the thermal model and thermal-limit governor (power/thermal.h).
#include "power/thermal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::power {
namespace {

using units::MHz;

TEST(ThermalModel, ValidatesParameters) {
  ThermalModel::Params p;
  p.tau_s = 0.0;
  EXPECT_THROW(ThermalModel m(p), std::invalid_argument);
  p.tau_s = 1.0;
  p.r_c_per_w = -1.0;
  EXPECT_THROW(ThermalModel m(p), std::invalid_argument);
}

TEST(ThermalModel, ConvergesToSteadyState) {
  ThermalModel::Params p;
  p.ambient_c = 25.0;
  p.r_c_per_w = 0.4;
  p.tau_s = 5.0;
  ThermalModel m(p);
  EXPECT_DOUBLE_EQ(m.steady_state_c(140.0), 25.0 + 0.4 * 140.0);
  for (int i = 0; i < 100; ++i) m.step(1.0, 140.0);
  EXPECT_NEAR(m.temperature_c(), 81.0, 0.01);
  // Cooling back down at zero power.
  for (int i = 0; i < 100; ++i) m.step(1.0, 0.0);
  EXPECT_NEAR(m.temperature_c(), 25.0, 0.01);
}

TEST(ThermalModel, ExactExponentialStepIsStepSizeInvariant) {
  ThermalModel::Params p;
  p.tau_s = 3.0;
  ThermalModel coarse(p), fine(p);
  coarse.step(6.0, 100.0);
  for (int i = 0; i < 60; ++i) fine.step(0.1, 100.0);
  EXPECT_NEAR(coarse.temperature_c(), fine.temperature_c(), 1e-9);
}

TEST(ThermalModel, OneTimeConstantReaches63Percent) {
  ThermalModel::Params p;
  p.ambient_c = 0.0;
  p.r_c_per_w = 1.0;
  p.tau_s = 4.0;
  p.initial_c = 0.0;
  ThermalModel m(p);
  m.step(4.0, 100.0);  // one tau toward 100 C
  EXPECT_NEAR(m.temperature_c(), 100.0 * (1.0 - std::exp(-1.0)), 1e-9);
}

TEST(ThermalModel, AmbientChangeShiftsTarget) {
  ThermalModel::Params p;
  ThermalModel m(p);
  m.set_ambient_c(40.0);
  for (int i = 0; i < 100; ++i) m.step(1.0, 0.0);
  EXPECT_NEAR(m.temperature_c(), 40.0, 0.01);
}

TEST(ThermalGovernor, ShedsBudgetWhenHot) {
  sim::Simulation sim;
  PowerBudget budget(560.0);
  // Constant 140 W per CPU with default R = 0.35: steady state 74 C; with
  // a raised ambient it crosses the 85 C limit.
  ThermalGovernor::Config cfg;
  cfg.thermal.ambient_c = 45.0;  // steady state 94 C > 85 C limit
  ThermalGovernor gov(sim, budget, 4, [](std::size_t) { return 140.0; },
                      cfg);
  sim.run_for(60.0);
  EXPECT_GT(gov.shed_events(), 0u);
  EXPECT_LT(budget.limit_w(), 560.0);
  EXPECT_GT(gov.hottest_trace().size(), 100u);
}

TEST(ThermalGovernor, RestoresWhenCool) {
  sim::Simulation sim;
  PowerBudget budget(560.0);
  double power = 140.0;
  ThermalGovernor::Config cfg;
  cfg.thermal.ambient_c = 45.0;
  ThermalGovernor gov(sim, budget, 4,
                      [&power](std::size_t) { return power; }, cfg);
  sim.run_for(60.0);
  const double shed_limit = budget.limit_w();
  ASSERT_LT(shed_limit, 560.0);
  power = 9.0;  // workload ends; dies cool
  sim.run_for(120.0);
  EXPECT_DOUBLE_EQ(budget.limit_w(), 560.0);  // fully restored, not above
}

TEST(ThermalGovernor, ClosedLoopWithFvsstAvoidsThermalRunaway) {
  // Full loop: A/C failure raises ambient; the thermal governor shrinks
  // the budget; fvsst downshifts; temperatures settle under the limit.
  sim::Simulation sim;
  sim::Rng rng(5);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  for (std::size_t c = 0; c < 4; ++c) {
    cluster.core({0, c}).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  PowerBudget budget(560.0);
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget,
                           core::DaemonConfig{});
  ThermalGovernor::Config cfg;
  cfg.thermal.ambient_c = 25.0;
  ThermalGovernor gov(
      sim, budget, 4,
      [&](std::size_t i) {
        return machine.freq_table.power(
            cluster.core({0, i}).frequency_hz());
      },
      cfg);
  sim.run_for(30.0);
  EXPECT_LT(gov.hottest_c(), cfg.limit_c);  // fine at 25 C ambient

  gov.set_ambient_c(48.0);  // machine-room A/C fails
  sim.run_for(120.0);
  // The loop must settle: temperature at or under the limit (small
  // overshoot allowed during transients) and the CPUs still doing work.
  EXPECT_LT(gov.hottest_c(), cfg.limit_c + 2.0);
  EXPECT_LT(cluster.core({0, 0}).frequency_hz(), 1000 * MHz);
  EXPECT_GT(cluster.core({0, 0}).frequency_hz(), 250 * MHz);
}

}  // namespace
}  // namespace fvsst::power
