// Tests for the utilisation-driven governor daemon
// (baselines/governor_daemon.h).
#include "baselines/governor_daemon.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::baselines {
namespace {

using units::GHz;
using units::MHz;

struct Rig {
  explicit Rig(bool halting = false) {
    machine = mach::p630();
    machine.idles_by_halting = halting;
    cluster = std::make_unique<cluster::Cluster>(
        cluster::Cluster::homogeneous(sim, machine, 1, rng));
  }
  sim::Simulation sim;
  sim::Rng rng{5};
  mach::MachineConfig machine;
  std::unique_ptr<cluster::Cluster> cluster;
};

TEST(GovernorNames, MatchCpufreq) {
  EXPECT_EQ(governor_name(GovernorPolicy::kPerformance), "performance");
  EXPECT_EQ(governor_name(GovernorPolicy::kPowersave), "powersave");
  EXPECT_EQ(governor_name(GovernorPolicy::kOndemand), "ondemand");
  EXPECT_EQ(governor_name(GovernorPolicy::kConservative), "conservative");
}

TEST(GovernorDaemon, PerformanceAndPowersavePin) {
  for (auto policy :
       {GovernorPolicy::kPerformance, GovernorPolicy::kPowersave}) {
    Rig rig;
    GovernorDaemon::Config cfg;
    cfg.policy = policy;
    GovernorDaemon gov(rig.sim, *rig.cluster, rig.machine.freq_table, cfg);
    rig.cluster->core({0, 0}).set_frequency(500 * MHz);
    rig.sim.run_for(0.1);
    const double expected = policy == GovernorPolicy::kPerformance
                                ? rig.machine.freq_table.max_hz()
                                : rig.machine.freq_table.min_hz();
    EXPECT_DOUBLE_EQ(rig.cluster->core({0, 0}).frequency_hz(), expected);
    EXPECT_GT(gov.evaluations(), 0u);
  }
}

TEST(GovernorDaemon, OndemandRacesToMaxUnderLoad) {
  Rig rig(/*halting=*/true);
  rig.cluster->core({0, 0}).add_workload(
      workload::make_uniform_synthetic(100.0, 1e12));
  rig.cluster->core({0, 0}).set_frequency(250 * MHz);
  GovernorDaemon gov(rig.sim, *rig.cluster, rig.machine.freq_table, {});
  rig.sim.run_for(0.1);
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 0}).frequency_hz(), 1 * GHz);
  EXPECT_NEAR(gov.utilization(0), 1.0, 1e-9);
}

TEST(GovernorDaemon, OndemandDropsOnHaltingIdle) {
  Rig rig(/*halting=*/true);
  GovernorDaemon gov(rig.sim, *rig.cluster, rig.machine.freq_table, {});
  rig.sim.run_for(0.1);
  // Idle (halted) CPUs: utilisation ~0 -> minimum frequency.
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 1}).frequency_hz(), 250 * MHz);
  EXPECT_NEAR(gov.utilization(1), 0.0, 1e-9);
}

TEST(GovernorDaemon, HotIdlePathologyPinsAtFmax) {
  // The paper's critique: on a hot-idle Power4+ the non-halted metric says
  // "busy" and the governor runs idle CPUs at full speed.
  Rig rig(/*halting=*/false);
  GovernorDaemon gov(rig.sim, *rig.cluster, rig.machine.freq_table, {});
  rig.sim.run_for(0.2);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(rig.cluster->core({0, c}).frequency_hz(), 1 * GHz) << c;
    EXPECT_NEAR(gov.utilization(c), 1.0, 1e-9);
  }
}

TEST(GovernorDaemon, BlindToMemorySaturation) {
  // A fully memory-bound workload stalls the pipeline but never halts:
  // utilisation reads 1.0 and ondemand keeps f_max, wasting the power
  // fvsst would save.  This is the paper's second critique.
  Rig rig(/*halting=*/true);
  rig.cluster->core({0, 0}).add_workload(
      workload::make_uniform_synthetic(5.0, 1e12));
  GovernorDaemon gov(rig.sim, *rig.cluster, rig.machine.freq_table, {});
  rig.sim.run_for(0.3);
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 0}).frequency_hz(), 1 * GHz);
}

TEST(GovernorDaemon, ConservativeStepsOneAtATime) {
  Rig rig(/*halting=*/true);
  rig.cluster->core({0, 0}).add_workload(
      workload::make_uniform_synthetic(100.0, 1e12));
  rig.cluster->core({0, 0}).set_frequency(250 * MHz);
  GovernorDaemon::Config cfg;
  cfg.policy = GovernorPolicy::kConservative;
  cfg.period_s = 0.010;
  GovernorDaemon gov(rig.sim, *rig.cluster, rig.machine.freq_table, cfg);
  rig.sim.run_for(0.0101);
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 0}).frequency_hz(), 300 * MHz);
  rig.sim.run_for(0.010);
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 0}).frequency_hz(), 350 * MHz);
  // Eventually reaches the top and stays.
  rig.sim.run_for(0.3);
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 0}).frequency_hz(), 1 * GHz);
}

TEST(GovernorDaemon, ConservativeStepsDownWhenIdle) {
  Rig rig(/*halting=*/true);
  GovernorDaemon::Config cfg;
  cfg.policy = GovernorPolicy::kConservative;
  GovernorDaemon gov(rig.sim, *rig.cluster, rig.machine.freq_table, cfg);
  rig.sim.run_for(0.5);
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 0}).frequency_hz(), 250 * MHz);
}

TEST(GovernorDaemon, TracesRecordedWhenEnabled) {
  Rig rig(/*halting=*/true);
  GovernorDaemon::Config cfg;
  cfg.record_traces = true;
  GovernorDaemon gov(rig.sim, *rig.cluster, rig.machine.freq_table, cfg);
  rig.sim.run_for(0.1);
  EXPECT_GE(gov.freq_trace(0).size(), 9u);
}

}  // namespace
}  // namespace fvsst::baselines
