// Tests for WorkloadRunner (cpu/runner.h).
#include "cpu/runner.h"

#include <gtest/gtest.h>

#include "workload/synthetic.h"

namespace fvsst::cpu {
namespace {

workload::WorkloadSpec two_phase(bool loop) {
  workload::WorkloadSpec spec;
  spec.name = "t";
  spec.loop = loop;
  spec.phases = {workload::synthetic_phase("a", 100.0, 1000.0),
                 workload::synthetic_phase("b", 50.0, 500.0)};
  return spec;
}

TEST(WorkloadRunner, RejectsEmptyOrDegenerateSpecs) {
  workload::WorkloadSpec empty;
  EXPECT_THROW(WorkloadRunner r(empty), std::invalid_argument);

  workload::WorkloadSpec zero;
  zero.phases = {workload::synthetic_phase("z", 50.0, 1.0)};
  zero.phases[0].instructions = 0.0;
  EXPECT_THROW(WorkloadRunner r(zero), std::invalid_argument);
}

TEST(WorkloadRunner, WalksPhasesInOrder) {
  WorkloadRunner r(two_phase(false));
  EXPECT_EQ(r.current_phase().name, "a");
  r.retire(1000.0);
  EXPECT_EQ(r.current_phase().name, "b");
  EXPECT_DOUBLE_EQ(r.instructions_left_in_phase(), 500.0);
}

TEST(WorkloadRunner, PartialRetirement) {
  WorkloadRunner r(two_phase(false));
  r.retire(400.0);
  EXPECT_EQ(r.current_phase().name, "a");
  EXPECT_DOUBLE_EQ(r.instructions_left_in_phase(), 600.0);
  EXPECT_DOUBLE_EQ(r.instructions_retired(), 400.0);
}

TEST(WorkloadRunner, NonLoopingFinishes) {
  WorkloadRunner r(two_phase(false));
  r.retire(1000.0);
  r.retire(500.0);
  EXPECT_TRUE(r.finished());
  EXPECT_EQ(r.passes_completed(), 1u);
  EXPECT_THROW(r.current_phase(), std::logic_error);
  EXPECT_THROW(r.retire(1.0), std::logic_error);
}

TEST(WorkloadRunner, LoopingWrapsAround) {
  WorkloadRunner r(two_phase(true));
  for (int pass = 0; pass < 3; ++pass) {
    r.retire(1000.0);
    r.retire(500.0);
  }
  EXPECT_FALSE(r.finished());
  EXPECT_EQ(r.passes_completed(), 3u);
  EXPECT_EQ(r.current_phase().name, "a");
  EXPECT_DOUBLE_EQ(r.instructions_retired(), 4500.0);
}

TEST(WorkloadRunner, RejectsOverRetirement) {
  WorkloadRunner r(two_phase(false));
  EXPECT_THROW(r.retire(1001.0), std::invalid_argument);
  EXPECT_THROW(r.retire(-1.0), std::invalid_argument);
}

TEST(WorkloadRunner, ToleratesFloatingPointDust) {
  WorkloadRunner r(two_phase(false));
  // Retiring within 1e-6 of the boundary must roll the phase.
  r.retire(1000.0 - 1e-7);
  EXPECT_EQ(r.current_phase().name, "b");
}

}  // namespace
}  // namespace fvsst::cpu
