// Tests for the "FJB1" binary journal (simkit/event_log.h): lossless
// two-way conversion against the JSONL format, torn-tail tolerance under
// truncation at every byte, corruption rejection, format sniffing, and the
// checked write-error contract shared by both journal writers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/cluster_daemon.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "workload/synthetic.h"

namespace fvsst::sim {
namespace {

std::string jsonl_bytes(const EventLog& log) {
  std::ostringstream out;
  write_jsonl(out, log);
  return out.str();
}

std::string binary_bytes(const EventLog& log) {
  std::ostringstream out;
  write_binary(out, log);
  return out.str();
}

/// A small hand-built journal exercising every encoding edge the real
/// producers can emit (and a few they cannot): empty payloads, global and
/// per-CPU events, doubles whose shortest decimal form matters (negative
/// zero, denormals, NaN, infinities), strings needing every JSON escape.
EventLog edge_case_log() {
  EventLog log;
  log.append(0.0, EventType::kRunMeta)
      .set("t_sample_s", 0.010)
      .set("multiplier", 10.0)
      .set("daemon", std::string("fvsst"));
  log.append(0.0, EventType::kIdleEnter, 0);  // No payload at all.
  log.append(0.1, EventType::kDecision, 3)
      .set("granted_hz", 8e8)
      .set("volts", 1.1491002456333963)
      .set("predicted_loss", 0.03872857634388034);
  log.append(-0.0, EventType::kBudgetChange)
      .set("budget_w", -0.0)
      .set("nan", std::numeric_limits<double>::quiet_NaN())
      .set("inf", std::numeric_limits<double>::infinity())
      .set("ninf", -std::numeric_limits<double>::infinity())
      .set("denorm", std::numeric_limits<double>::denorm_min())
      .set("max", std::numeric_limits<double>::max());
  log.append(1e-9, EventType::kFault, 2)
      .set("kind", std::string("actuation_reject"))
      .set("escapes", std::string("a\"b\\c\nd\te\rf\bg\fh"))
      .set("control", std::string("x\x01y\x1fz"))
      .set("empty", std::string());
  log.append(2.5, EventType::kSnapshot)
      .set("epoch", 3.0)
      .set("op", std::string("save"))
      .set("blob", std::string(300, 'q'));
  return log;
}

/// A journal from a real chaos run: an SMP daemon under actuation and
/// sensor faults with a mid-run budget drop, so the log carries
/// cycle/decision/actuation records, fault windows, degraded-mode
/// transitions and budget changes with full-precision doubles throughout.
EventLog chaos_run_log() {
  Simulation sim;
  Rng rng(11);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(85.0, 1e12));
  cluster.core({0, 2}).add_workload(
      workload::make_uniform_synthetic(35.0, 1e12));
  power::PowerBudget budget(560.0);
  sim.schedule_at(0.9, [&] { budget.set_limit_w(200.0); });

  EventLog journal;
  FaultPlan plan(5);
  plan.add({FaultKind::kActuationReject, 0.5, 1.2, /*target=*/0, 0.0});
  plan.add({FaultKind::kSensorDropout, 1.3, 1.6, /*target=*/2, 0.0});
  core::DaemonConfig config;
  config.journal = &journal;
  config.fault_plan = &plan;
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, config);
  sim.run_for(2.0);
  return journal;
}

/// A journal from a failover run: coordinator crash after a budget drop,
/// so the log adds epoch changes, snapshots and node_apply actuations to
/// the mix.
EventLog failover_run_log() {
  Simulation sim;
  Rng rng(7);
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, mach::p630(), 2, rng);
  for (const auto& addr : cluster.all_procs()) {
    cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  power::PowerBudget budget(8 * 140.0);
  sim.schedule_at(1.0123, [&] { budget.set_limit_w(500.0); });

  EventLog journal;
  FaultPlan plan(1);
  plan.add({FaultKind::kCoordinatorCrash, 1.0123, 2.0, /*target=*/0, 0.0});
  core::ClusterDaemonConfig cfg;
  cfg.journal = &journal;
  cfg.fault_plan = &plan;
  cfg.failover.standby = true;
  core::ClusterDaemon daemon(sim, cluster, mach::p630().freq_table, budget,
                             cfg);
  sim.run_for(2.5);
  return journal;
}

// --- Lossless conversion ---------------------------------------------------

class BinaryRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  EventLog make_log() const {
    switch (GetParam()) {
      case 0: return edge_case_log();
      case 1: return chaos_run_log();
      default: return failover_run_log();
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Journals, BinaryRoundTrip,
                         ::testing::Values(0, 1, 2));

TEST_P(BinaryRoundTrip, ReproducesJsonlBytesExactly) {
  const EventLog log = make_log();
  ASSERT_FALSE(log.empty());
  const std::string jsonl = jsonl_bytes(log);

  std::istringstream in(binary_bytes(log));
  const EventLog decoded = read_binary(in);
  ASSERT_EQ(decoded.size(), log.size());
  // The converter's whole contract: binary -> Event -> JSONL emits the
  // byte-identical journal, full double precision and escapes included.
  EXPECT_EQ(jsonl_bytes(decoded), jsonl);
}

TEST_P(BinaryRoundTrip, BinaryBytesAreAFixedPoint) {
  const EventLog log = make_log();
  const std::string bytes = binary_bytes(log);
  std::istringstream in(bytes);
  EXPECT_EQ(binary_bytes(read_binary(in)), bytes);
}

TEST_P(BinaryRoundTrip, StreamingWriterMatchesBatchExport) {
  const EventLog log = make_log();
  std::ostringstream out;
  {
    BinaryJournalWriter writer(out);
    EventLog streaming;
    streaming.stream_to(&writer);
    for (const Event& e : log.events()) {
      Event copy = e;
      streaming.push(std::move(copy));
    }
    streaming.flush_stream();
    EXPECT_EQ(writer.events_written(), log.size());
    EXPECT_EQ(streaming.streamed(), log.size());
  }
  EXPECT_EQ(out.str(), binary_bytes(log));
}

// --- Torn tails and corruption ---------------------------------------------

std::size_t tolerant_count(const std::string& bytes, JsonlReadReport* report) {
  std::istringstream in(bytes);
  std::size_t n = 0;
  for_each_binary(in, [&n](Event&&) { ++n; }, report);
  return n;
}

TEST(BinaryJournalTruncation, EveryPrefixEitherReadsOrReportsTornTail) {
  const EventLog log = edge_case_log();
  const std::string bytes = binary_bytes(log);

  // Record boundaries: after the magic, then after each full record.
  std::vector<std::size_t> boundaries{4};
  {
    std::size_t pos = 4;
    std::istringstream in(bytes);
    for_each_binary(in, [&](Event&& e) {
      std::string rec;
      append_event_binary(rec, e);
      pos += rec.size();
      boundaries.push_back(pos);
    });
    ASSERT_EQ(pos, bytes.size());
  }

  std::size_t prev_count = 0;
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    const std::string prefix = bytes.substr(0, len);
    if (len == 0) {
      JsonlReadReport report;
      EXPECT_EQ(tolerant_count(prefix, &report), 0u);
      EXPECT_FALSE(report.torn_tail);
      continue;
    }
    if (len < 4) {
      // Not even the magic made it: unidentifiable, rejected outright.
      JsonlReadReport report;
      EXPECT_THROW(tolerant_count(prefix, &report), std::runtime_error);
      continue;
    }
    JsonlReadReport report;
    std::size_t count = 0;
    ASSERT_NO_THROW(count = tolerant_count(prefix, &report))
        << "prefix length " << len;
    const bool at_boundary =
        std::find(boundaries.begin(), boundaries.end(), len) !=
        boundaries.end();
    EXPECT_EQ(report.torn_tail, !at_boundary) << "prefix length " << len;
    if (!at_boundary) {
      EXPECT_FALSE(report.error.empty()) << "prefix length " << len;
    }
    // Complete records before the cut are always recovered, in order.
    EXPECT_GE(count, prev_count) << "prefix length " << len;
    prev_count = count;
  }
  EXPECT_EQ(prev_count, log.size());

  // Strict contract: the same torn prefix throws without a report.
  const std::string torn = bytes.substr(0, bytes.size() - 1);
  std::istringstream in(torn);
  EXPECT_THROW(for_each_binary(in, [](Event&&) {}), std::runtime_error);
}

TEST(BinaryJournalTruncation, RealRunJournalSurvivesSampledCuts) {
  const std::string bytes = binary_bytes(chaos_run_log());
  // Full per-byte coverage would be quadratic in the journal; a stride
  // coprime to every field width still lands cuts inside length prefixes,
  // keys, doubles and string bodies.
  for (std::size_t len = 4; len < bytes.size(); len += 37) {
    JsonlReadReport report;
    ASSERT_NO_THROW(tolerant_count(bytes.substr(0, len), &report))
        << "prefix length " << len;
  }
}

TEST(BinaryJournalCorruption, RejectsBadMagicBadLengthsAndBadPayloads) {
  const EventLog log = edge_case_log();
  std::string bytes = binary_bytes(log);

  {  // Wrong magic.
    std::string bad = bytes;
    bad[0] = 'X';
    std::istringstream in(bad);
    EXPECT_THROW(read_binary(in), std::runtime_error);
  }
  {  // JSONL handed to the binary reader.
    std::istringstream in(jsonl_bytes(log));
    EXPECT_THROW(read_binary(in), std::runtime_error);
  }
  {  // Implausible record length (prefix of the first record).
    std::string bad = bytes;
    bad[4] = '\xff';
    bad[5] = '\xff';
    bad[6] = '\xff';
    bad[7] = '\x7f';
    std::istringstream in(bad);
    JsonlReadReport report;
    EXPECT_THROW(read_binary(in, &report), std::runtime_error);
  }
  {  // Unknown event type byte in the first payload.
    std::string bad = bytes;
    bad[8] = '\x7f';
    std::istringstream in(bad);
    JsonlReadReport report;
    EXPECT_THROW(read_binary(in, &report), std::runtime_error);
  }
}

// --- Format sniffing --------------------------------------------------------

TEST(JournalFormatDetection, SniffsAndRewinds) {
  const EventLog log = edge_case_log();
  {
    std::istringstream in(binary_bytes(log));
    EXPECT_EQ(detect_journal_format(in), JournalFormat::kBinary);
    // The sniff must not consume the stream: a full read still works.
    EXPECT_EQ(read_binary(in).size(), log.size());
  }
  {
    std::istringstream in(jsonl_bytes(log));
    EXPECT_EQ(detect_journal_format(in), JournalFormat::kJsonl);
    EXPECT_EQ(read_jsonl(in).size(), log.size());
  }
  {
    std::istringstream empty;
    EXPECT_EQ(detect_journal_format(empty), JournalFormat::kJsonl);
  }
  {
    std::istringstream shorty("{}");
    EXPECT_EQ(detect_journal_format(shorty), JournalFormat::kJsonl);
  }
}

// --- Checked write errors ---------------------------------------------------

/// A stream buffer that refuses every byte, as a full disk or closed pipe
/// would at the stdio layer.
class FailingBuf : public std::streambuf {
 protected:
  int_type overflow(int_type) override { return traits_type::eof(); }
  std::streamsize xsputn(const char*, std::streamsize) override { return 0; }
};

TEST(JournalWriteErrors, JsonlFlushThrowsOnFailedStream) {
  FailingBuf buf;
  std::ostream out(&buf);
  JsonlStreamWriter writer(out);
  writer.write(edge_case_log().events().front());
  EXPECT_THROW(writer.flush(), JournalWriteError);
  // The destructor must swallow the same failure (it cannot throw); the
  // writer going out of scope here is the assertion.
}

TEST(JournalWriteErrors, BinaryFlushThrowsOnFailedStream) {
  FailingBuf buf;
  std::ostream out(&buf);
  BinaryJournalWriter writer(out);
  writer.write(edge_case_log().events().front());
  EXPECT_THROW(writer.flush(), JournalWriteError);
}

TEST(JournalWriteErrors, HealthyStreamsDoNotThrow) {
  const EventLog log = edge_case_log();
  std::ostringstream out;
  JsonlStreamWriter writer(out);
  for (const Event& e : log.events()) writer.write(e);
  EXPECT_NO_THROW(writer.flush());
  EXPECT_EQ(out.str(), jsonl_bytes(log));
}

}  // namespace
}  // namespace fvsst::sim
