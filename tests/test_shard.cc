// test_shard - The locality-aware shard partition and the SoA batched
// advance: slabs are contiguous and balanced, the sweep is equivalent to
// per-core advancing, and the shard-local queue commits in FIFO order.
#include "cluster/shard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "mach/machine_config.h"
#include "simkit/event_queue.h"
#include "simkit/rng.h"
#include "workload/synthetic.h"

namespace fvsst {
namespace {

cluster::Cluster make_cluster(sim::Simulation& sim, sim::Rng& rng,
                              std::size_t nodes) {
  cluster::Cluster c =
      cluster::Cluster::homogeneous(sim, mach::p630(), nodes, rng);
  // A few busy cores so advancing actually moves state.
  c.core({0, 0}).add_workload(workload::make_uniform_synthetic(90.0, 1e12));
  c.core({nodes / 2, 1})
      .add_workload(workload::make_uniform_synthetic(45.0, 1e12));
  c.core({nodes - 1, 0})
      .add_workload(workload::make_uniform_synthetic(70.0, 1e12));
  return c;
}

// --- ShardMap -------------------------------------------------------------

TEST(ShardMap, SlabsAreContiguousAndCoverEveryNodeOnce) {
  sim::Simulation sim;
  sim::Rng rng(9);
  cluster::Cluster c = make_cluster(sim, rng, 13);
  for (std::size_t shards : {1u, 2u, 5u, 13u, 40u}) {
    const cluster::ShardMap map(c, shards);
    EXPECT_LE(map.size(), c.node_count());
    EXPECT_GE(map.size(), 1u);
    std::size_t next_node = 0, next_cpu = 0;
    for (std::size_t s = 0; s < map.size(); ++s) {
      const cluster::ShardSpan& span = map.span(s);
      EXPECT_EQ(span.first_node, next_node) << "gap before shard " << s;
      EXPECT_EQ(span.first_cpu, next_cpu);
      EXPECT_GE(span.node_count, 1u);
      for (std::size_t n = span.first_node; n < span.end_node(); ++n) {
        EXPECT_EQ(map.shard_of_node(n), s);
      }
      next_node = span.end_node();
      next_cpu += span.cpu_count;
    }
    EXPECT_EQ(next_node, c.node_count());
    EXPECT_EQ(next_cpu, c.cpu_count());
    EXPECT_EQ(map.total_cpus(), c.cpu_count());
  }
}

TEST(ShardMap, BalancedByCpuWeight) {
  sim::Simulation sim;
  sim::Rng rng(9);
  cluster::Cluster c = make_cluster(sim, rng, 16);
  const cluster::ShardMap map(c, 4);
  ASSERT_EQ(map.size(), 4u);
  const std::size_t per_node = c.node(0).cpu_count();
  for (std::size_t s = 0; s < map.size(); ++s) {
    // Homogeneous nodes, 16 over 4: exactly 4 nodes per slab.
    EXPECT_EQ(map.span(s).node_count, 4u);
    EXPECT_EQ(map.span(s).cpu_count, 4u * per_node);
  }
}

TEST(ShardMap, AutoShardsScalesAsSqrt) {
  EXPECT_EQ(cluster::ShardMap::auto_shards(1), 1u);
  for (std::size_t n : {16u, 100u, 1024u, 10000u}) {
    const std::size_t s = cluster::ShardMap::auto_shards(n);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, n);
    const double root = std::sqrt(static_cast<double>(n));
    EXPECT_GE(static_cast<double>(s), root / 2.0) << n;
    EXPECT_LE(static_cast<double>(s), root * 2.0) << n;
  }
}

// --- Shard batched advance ------------------------------------------------

std::string core_digest(cluster::Cluster& c) {
  std::string out;
  for (const auto& addr : c.all_procs()) {
    auto& core = c.core(addr);
    char buf[160];
    std::snprintf(buf, sizeof buf, "%zu.%zu hz=%.17g instr=%.17g\n",
                  addr.node, addr.cpu, core.frequency_hz(),
                  core.instructions_retired());
    out += buf;
  }
  return out;
}

TEST(Shard, BatchedAdvanceMatchesPerCoreAdvance) {
  // Two identical clusters: one advanced through shard sweeps, one through
  // the classic per-core read_counters() path.  Same seeds, same times —
  // the final state must be bit-identical.
  sim::Simulation sim_a, sim_b;
  sim::Rng rng_a(31), rng_b(31);
  cluster::Cluster a = make_cluster(sim_a, rng_a, 9);
  cluster::Cluster b = make_cluster(sim_b, rng_b, 9);

  const cluster::ShardMap map(a, 3);
  std::vector<cluster::Shard> shards = cluster::make_shards(a, map);

  std::uint64_t advanced_after_third = 0;
  for (double t : {0.01, 0.25, 1.0, 1.0}) {
    for (cluster::Shard& s : shards) s.advance_to(t);
    for (const auto& addr : b.all_procs()) {
      b.core(addr).advance_to(t);
    }
    if (t == 1.0 && advanced_after_third == 0) {
      for (const cluster::Shard& s : shards)
        advanced_after_third += s.cores_advanced();
    }
  }
  EXPECT_EQ(core_digest(a), core_digest(b));

  std::uint64_t advanced = 0;
  for (const cluster::Shard& s : shards) {
    EXPECT_EQ(s.sweeps(), 4u);
    advanced += s.cores_advanced();
  }
  // The repeated sweep at 1.0 must take the hot-array watermark fast path
  // for every already-synced core: the advanced counter must not grow.
  EXPECT_GT(advanced, 0u);
  EXPECT_EQ(advanced, advanced_after_third);
}

TEST(Shard, NodeSkipLeavesFlaggedNodesBehind) {
  sim::Simulation sim;
  sim::Rng rng(5);
  cluster::Cluster c = make_cluster(sim, rng, 6);
  const cluster::ShardMap map(c, 2);
  std::vector<cluster::Shard> shards = cluster::make_shards(c, map);

  std::vector<unsigned char> skip(c.node_count(), 0);
  skip[0] = 1;  // flagged by *global* node id
  for (cluster::Shard& s : shards) s.advance_to(0.5, skip.data());

  for (std::size_t i = 0; i < shards[0].core_count(); ++i) {
    const bool flagged = shards[0].node_of_core(i) == 0;
    const double synced = shards[0].synced_until()[i];
    if (flagged) {
      EXPECT_LT(synced, 0.5) << "core " << i << " advanced despite skip";
    } else {
      EXPECT_GE(synced, 0.5) << "core " << i;
    }
  }
  // A later unflagged sweep catches the node up.
  for (cluster::Shard& s : shards) s.advance_to(0.5);
  for (std::size_t i = 0; i < shards[0].core_count(); ++i) {
    EXPECT_GE(shards[0].synced_until()[i], 0.5);
  }
}

TEST(Shard, HotArraysTrackFrequencyAndPower) {
  sim::Simulation sim;
  sim::Rng rng(5);
  cluster::Cluster c = make_cluster(sim, rng, 4);
  const cluster::ShardMap map(c, 1);
  std::vector<cluster::Shard> shards = cluster::make_shards(c, map);
  cluster::Shard& shard = shards[0];

  const mach::FrequencyTable& table = mach::p630().freq_table;
  shard.advance_to(0.1);
  double expect_w = 0.0;
  for (std::size_t i = 0; i < shard.core_count(); ++i) {
    EXPECT_EQ(shard.frequency_hz()[i], shard.core(i).frequency_hz());
    expect_w += table.power(shard.core(i).frequency_hz());
  }
  EXPECT_NEAR(shard.cached_power_w(), expect_w, 1e-9);

  // A frequency change shows up after the next sweep.
  const double low = table.min_hz();
  shard.core(0).set_frequency(low);
  shard.advance_to(0.2);
  EXPECT_EQ(shard.frequency_hz()[0], low);
}

TEST(Shard, QueueDrainsFifo) {
  sim::Simulation sim;
  sim::Rng rng(5);
  cluster::Cluster c = make_cluster(sim, rng, 2);
  const cluster::ShardMap map(c, 1);
  std::vector<cluster::Shard> shards = cluster::make_shards(c, map);
  cluster::Shard& shard = shards[0];

  std::vector<int> order;
  shard.enqueue([&] { order.push_back(1); });
  shard.enqueue([&] { order.push_back(2); });
  EXPECT_EQ(shard.queue_depth(), 2u);
  shard.drain();
  EXPECT_EQ(shard.queue_depth(), 0u);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  shard.drain();  // idempotent on empty
  EXPECT_EQ(order.size(), 2u);
}

}  // namespace
}  // namespace fvsst
