// Tests for the simulated processor core (cpu/core.h).
#include "cpu/core.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::cpu {
namespace {

using units::GHz;
using units::MHz;

Core::Config quiet_config() {
  Core::Config cfg;
  cfg.latencies = mach::p630().latencies;
  cfg.max_hz = 1 * GHz;
  cfg.counter_noise_sigma = 0.0;   // deterministic for exact checks
  cfg.execution_noise_sigma = 0.0;
  return cfg;
}

TEST(Core, RejectsBadConfigAndFrequency) {
  sim::Simulation sim;
  Core::Config bad = quiet_config();
  bad.max_hz = 0.0;
  EXPECT_THROW(Core(sim, bad, sim::Rng(1)), std::invalid_argument);

  Core core(sim, quiet_config(), sim::Rng(1));
  EXPECT_THROW(core.set_frequency(0.0), std::invalid_argument);
  EXPECT_THROW(core.set_frequency(2 * GHz), std::invalid_argument);
  EXPECT_THROW(core.steal_time(-1.0), std::invalid_argument);
}

TEST(Core, IdleWithNoJobsRunsHotIdleLoop) {
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  EXPECT_TRUE(core.idle());
  sim.run_for(0.1);
  const PerfCounters c = core.read_counters();
  // Hot idle: cycles tick and instructions retire at the idle IPC (~1.3).
  EXPECT_NEAR(c.cycles, 0.1 * 1e9, 1e-3);
  EXPECT_NEAR(c.ipc(), 1.3, 1e-6);
  EXPECT_DOUBLE_EQ(c.mem_accesses, 0.0);
  // Idle work is not counted as retired job instructions.
  EXPECT_DOUBLE_EQ(core.instructions_retired(), 0.0);
}

TEST(Core, CpuBoundExecutionMatchesModel) {
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  core.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  sim.run_for(0.5);
  // IPC must equal the analytic model's value for the 100%-intensity phase
  // (alpha = 1.6 minus the small residual memory component).
  const PerfCounters c = core.read_counters();
  const double expected = workload::true_ipc(
      workload::synthetic_phase("x", 100.0, 1.0), mach::p630().latencies,
      1 * GHz);
  EXPECT_NEAR(c.ipc(), expected, 0.01);
  EXPECT_FALSE(core.idle());
}

TEST(Core, CountersMatchAccessRates) {
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  core.add_workload(workload::make_uniform_synthetic(25.0, 1e12));
  sim.run_for(0.2);
  const PerfCounters c = core.read_counters();
  const workload::Phase p = workload::synthetic_phase("x", 25.0, 1.0);
  EXPECT_NEAR(c.l2_accesses / c.instructions, p.apki_l2 / 1000.0, 1e-9);
  EXPECT_NEAR(c.l3_accesses / c.instructions, p.apki_l3 / 1000.0, 1e-9);
  EXPECT_NEAR(c.mem_accesses / c.instructions, p.apki_mem / 1000.0, 1e-9);
}

TEST(Core, LowerFrequencySlowsCpuBoundWorkProportionally) {
  sim::Simulation sim;
  Core fast(sim, quiet_config(), sim::Rng(1));
  Core slow(sim, quiet_config(), sim::Rng(2));
  fast.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  slow.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  slow.set_frequency(500 * MHz);
  sim.run_for(0.5);
  // The residual memory traffic makes the slowdown "slightly less than
  // one-to-one" (paper Sec. 8.3): the analytic ratio is ~1.91, not 2.0.
  const workload::Phase p = workload::synthetic_phase("x", 100.0, 1.0);
  const auto& lat = mach::p630().latencies;
  const double expected = workload::true_performance(p, lat, 1 * GHz) /
                          workload::true_performance(p, lat, 500 * MHz);
  EXPECT_NEAR(fast.instructions_retired() / slow.instructions_retired(),
              expected, 0.01);
  EXPECT_LT(expected, 2.0);
  EXPECT_GT(expected, 1.85);
}

TEST(Core, MemoryBoundWorkBarelySlowsDown) {
  sim::Simulation sim;
  Core fast(sim, quiet_config(), sim::Rng(1));
  Core slow(sim, quiet_config(), sim::Rng(2));
  fast.add_workload(workload::make_uniform_synthetic(10.0, 1e12));
  slow.add_workload(workload::make_uniform_synthetic(10.0, 1e12));
  slow.set_frequency(650 * MHz);
  sim.run_for(0.5);
  const double ratio =
      fast.instructions_retired() / slow.instructions_retired();
  EXPECT_LT(ratio, 1.10);  // performance saturation in action
  EXPECT_GT(ratio, 1.0);
}

TEST(Core, FinishTimeMatchesAnalyticDuration) {
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  const auto spec = workload::make_uniform_synthetic(100.0, 1e8, false);
  const double expected =
      spec.duration_at(mach::p630().latencies, 1 * GHz);
  const std::size_t job = core.add_workload(spec);
  sim.run_for(expected * 2 + 0.1);
  EXPECT_EQ(core.jobs_finished(), 1u);
  EXPECT_NEAR(core.job_finish_time(job), expected, expected * 0.01);
  EXPECT_TRUE(core.idle());  // back to hot idle after the job ends
}

TEST(Core, PassesCompletedCountsLoops) {
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  // One pass = 1e8 instructions at ~1.55e9 instr/s ≈ 64 ms.
  core.add_workload(workload::make_uniform_synthetic(100.0, 1e8, true));
  sim.run_for(1.0);
  EXPECT_GE(core.passes_completed(), 14u);
  EXPECT_LE(core.passes_completed(), 16u);
}

TEST(Core, MultiprogrammingSharesTimeFairly) {
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  const std::size_t a =
      core.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  const std::size_t b =
      core.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  sim.run_for(1.0);
  const double ra = core.job_instructions_retired(a);
  const double rb = core.job_instructions_retired(b);
  EXPECT_NEAR(ra / rb, 1.0, 0.05);
  // Together they should retire what one job would have alone.
  const double solo_rate = workload::true_performance(
      workload::synthetic_phase("x", 100.0, 1.0), mach::p630().latencies,
      1 * GHz);
  EXPECT_NEAR(ra + rb, solo_rate, 0.02 * solo_rate);
}

TEST(Core, AggregateCountersMaskJobMix) {
  // A CPU-bound job among memory-bound jobs: the aggregate counters show a
  // memory-intensive blend (the paper's masking caveat).
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  core.add_workload(workload::make_uniform_synthetic(10.0, 1e12));
  core.add_workload(workload::make_uniform_synthetic(10.0, 1e12));
  core.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  sim.run_for(0.5);
  const PerfCounters c = core.read_counters();
  const double apki_mem = c.mem_accesses / c.instructions * 1000.0;
  // Aggregate looks memory-ish even though a pure-CPU job is present.
  EXPECT_GT(apki_mem, 1.0);
}

TEST(Core, StealTimeProducesDeadCycles) {
  sim::Simulation sim;
  Core with_steal(sim, quiet_config(), sim::Rng(1));
  Core without(sim, quiet_config(), sim::Rng(2));
  with_steal.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  without.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  with_steal.steal_time(0.1);
  sim.run_for(1.0);
  const double lost = 1.0 - with_steal.instructions_retired() /
                                without.instructions_retired();
  EXPECT_NEAR(lost, 0.1, 0.01);  // 10% of the second went to the "daemon"
  // Cycles still ticked during stolen time.
  EXPECT_NEAR(with_steal.read_counters().cycles, 1e9, 1e6);
}

TEST(Core, ThrottleModeQuantisesEffectiveFrequency) {
  sim::Simulation sim;
  Core::Config cfg = quiet_config();
  cfg.scaling_mode = ScalingMode::kFetchThrottle;
  cfg.throttle_steps = 32;
  Core core(sim, cfg, sim::Rng(1));
  core.set_frequency(650 * MHz);  // not a multiple of 31.25 MHz
  EXPECT_NE(core.effective_hz(), 650 * MHz);
  EXPECT_LE(core.effective_hz(), 650 * MHz);
  EXPECT_GE(core.effective_hz(), 650 * MHz - 1e9 / 32.0);
  EXPECT_DOUBLE_EQ(core.frequency_hz(), 650 * MHz);
}

TEST(Core, CounterNoiseIsSmallAndUnbiased) {
  sim::Simulation sim;
  Core::Config cfg = quiet_config();
  cfg.counter_noise_sigma = 0.01;
  Core core(sim, cfg, sim::Rng(99));
  core.add_workload(workload::make_uniform_synthetic(20.0, 1e12));
  sim.run_for(1.0);
  const PerfCounters c = core.read_counters();
  const workload::Phase p = workload::synthetic_phase("x", 20.0, 1.0);
  const double measured_apki = c.mem_accesses / c.instructions * 1000.0;
  EXPECT_NEAR(measured_apki, p.apki_mem, p.apki_mem * 0.02);
}

}  // namespace
}  // namespace fvsst::cpu
