// Tests for the distributed cluster scheduler (core/cluster_daemon.h).
#include "core/cluster_daemon.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/units.h"
#include "workload/mixes.h"
#include "workload/synthetic.h"

namespace fvsst::core {
namespace {

using units::GHz;
using units::MHz;
using units::ms;
using units::us;

struct ClusterRig {
  explicit ClusterRig(std::size_t nodes)
      : cluster(cluster::Cluster::homogeneous(sim, mach::p630(), nodes, rng)),
        budget(static_cast<double>(nodes) * 4 * 140.0) {}
  sim::Simulation sim;
  sim::Rng rng{7};
  cluster::Cluster cluster;
  power::PowerBudget budget;
};

ClusterDaemonConfig default_config() {
  ClusterDaemonConfig cfg;
  cfg.t_sample_s = 10 * ms;
  cfg.schedule_every_n_samples = 10;
  cfg.channel_latency_s = 200 * us;
  cfg.channel_jitter_s = 50 * us;
  return cfg;
}

TEST(ClusterDaemon, RunsPeriodicGlobalRounds) {
  ClusterRig rig(2);
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, default_config());
  rig.sim.run_for(1.05);
  EXPECT_GE(daemon.rounds(), 9u);
  EXPECT_LE(daemon.rounds(), 11u);
}

TEST(ClusterDaemon, IdleClusterDropsToFloor) {
  ClusterRig rig(2);
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, default_config());
  rig.sim.run_for(0.5);
  for (const auto& addr : rig.cluster.all_procs()) {
    EXPECT_DOUBLE_EQ(rig.cluster.core(addr).frequency_hz(), 250 * MHz);
  }
}

TEST(ClusterDaemon, EnforcesGlobalBudgetAcrossNodes) {
  ClusterRig rig(2);
  for (const auto& addr : rig.cluster.all_procs()) {
    rig.cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, default_config());
  rig.sim.run_for(1.0);
  EXPECT_DOUBLE_EQ(rig.cluster.cpu_power_w(), 8 * 140.0);

  rig.budget.set_limit_w(500.0);
  rig.sim.run_for(0.2);
  EXPECT_LE(rig.cluster.cpu_power_w(), 500.0);
}

TEST(ClusterDaemon, BudgetTriggerAppliesWithinChannelLatency) {
  ClusterRig rig(4);
  for (const auto& addr : rig.cluster.all_procs()) {
    rig.cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, default_config());
  rig.sim.run_for(1.0);
  rig.sim.schedule_at(1.003, [&] { rig.budget.set_limit_w(800.0); });
  rig.sim.run_for(0.1);
  EXPECT_GE(daemon.last_budget_trigger_time(), 1.003);
  ASSERT_GT(daemon.last_trigger_applied_time(), 0.0);
  const double latency =
      daemon.last_trigger_applied_time() - daemon.last_budget_trigger_time();
  // One-way settings message: latency + jitter bound.
  EXPECT_LE(latency, 300 * us);
  EXPECT_LE(rig.cluster.cpu_power_w(), 800.0);
}

TEST(ClusterDaemon, ToleratesMessageLoss) {
  // With 30% of all summary and settings messages dropped, the periodic
  // global rounds still converge the cluster onto the budget — a lost
  // settings vector is repaired by the next round.
  ClusterRig rig(2);
  for (const auto& addr : rig.cluster.all_procs()) {
    rig.cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  core::ClusterDaemonConfig cfg = default_config();
  cfg.channel_loss_probability = 0.30;
  core::ClusterDaemon daemon(rig.sim, rig.cluster,
                             mach::p630_frequency_table(), rig.budget, cfg);
  rig.sim.run_for(1.0);
  rig.budget.set_limit_w(500.0);
  rig.sim.run_for(1.0);  // several rounds despite losses
  EXPECT_LE(rig.cluster.cpu_power_w(), 500.0);
  EXPECT_GE(daemon.rounds(), 10u);
}

TEST(ClusterDaemon, LostSettingsAreRepairedByLaterRounds) {
  // Drop half of all messages.  Nodes that miss a settings vector keep
  // running on stale frequencies, so the cluster may transiently exceed a
  // tightened budget — but every periodic round re-sends the full settings
  // vector, so once messages get through the whole cluster complies.
  ClusterRig rig(4);
  for (const auto& addr : rig.cluster.all_procs()) {
    rig.cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  ClusterDaemonConfig cfg = default_config();
  cfg.channel_loss_probability = 0.50;
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, cfg);
  rig.sim.run_for(1.0);
  rig.budget.set_limit_w(1200.0);
  rig.sim.run_for(2.0);

  // The loss actually happened on both channels; this is not a quiet run.
  EXPECT_GT(daemon.summaries_dropped(), 0u);
  EXPECT_GT(daemon.settings_dropped(), 0u);
  // Repair: despite every individual settings message being a coin flip,
  // the periodic rounds converged the cluster onto the budget.
  EXPECT_LE(rig.cluster.cpu_power_w(), 1200.0);
  // All nodes ended on the same settings (homogeneous cluster, identical
  // load): nobody is left behind on a stale vector.
  const double hz0 = rig.cluster.core({0, 0}).frequency_hz();
  for (const auto& addr : rig.cluster.all_procs()) {
    EXPECT_DOUBLE_EQ(rig.cluster.core(addr).frequency_hz(), hz0);
  }
}

TEST(ClusterDaemon, DiverseTiersGetDiverseFrequencies) {
  ClusterRig rig(4);
  sim::Rng wl_rng(11);
  const auto assignment =
      workload::tiered_cluster_assignment(4, 4, wl_rng);
  for (std::size_t n = 0; n < 4; ++n) {
    for (std::size_t c = 0; c < 4; ++c) {
      rig.cluster.core({n, c}).add_workload(assignment[n][c]);
    }
  }
  ClusterDaemon daemon(rig.sim, rig.cluster, mach::p630_frequency_table(),
                       rig.budget, default_config());
  rig.sim.run_for(2.0);
  // Web/app tiers (nodes 0-2) should run faster than the db tier (node 3).
  double web_mean = 0.0, db_mean = 0.0;
  for (std::size_t c = 0; c < 4; ++c) {
    web_mean += rig.cluster.core({0, c}).frequency_hz() / 4.0;
    db_mean += rig.cluster.core({3, c}).frequency_hz() / 4.0;
  }
  EXPECT_GT(web_mean, db_mean);
  EXPECT_GT(daemon.scheduled_power_trace().size(), 10u);
}

}  // namespace
}  // namespace fvsst::core
