// Tests for the discrete-event engine (simkit/event_queue.h).
#include "simkit/event_queue.h"

#include <gtest/gtest.h>

#include "simkit/rng.h"

#include <cmath>
#include <limits>

#include <string>
#include <vector>

namespace fvsst::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, EqualTimesRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, NowAdvancesToEventTime) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(4.5, [&] { seen = sim.now(); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // clock finishes at t_end
}

TEST(Simulation, RunUntilDoesNotRunLaterEvents) {
  Simulation sim;
  bool ran = false;
  sim.schedule_at(5.0, [&] { ran = true; });
  sim.run_until(4.999);
  EXPECT_FALSE(ran);
  sim.run_until(5.0);
  EXPECT_TRUE(ran);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_after(1.5, [&] { fired_at = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(Simulation, PastTimesClampToNow) {
  Simulation sim;
  sim.run_until(5.0);
  double fired_at = -1.0;
  sim.schedule_at(1.0, [&] { fired_at = sim.now(); });
  sim.run_until(6.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, PeriodicEventRepeats) {
  Simulation sim;
  int count = 0;
  sim.schedule_every(1.0, [&] { ++count; });
  sim.run_until(5.5);
  EXPECT_EQ(count, 5);  // t = 1, 2, 3, 4, 5
}

TEST(Simulation, PeriodicFromStart) {
  Simulation sim;
  std::vector<double> times;
  sim.schedule_every_from(0.5, 2.0, [&] { times.push_back(sim.now()); });
  sim.run_until(7.0);
  EXPECT_EQ(times, (std::vector<double>{0.5, 2.5, 4.5, 6.5}));
}

TEST(Simulation, CancelOneShot) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until(2.0);
  EXPECT_FALSE(ran);
}

TEST(Simulation, CancelPeriodicStopsRepeats) {
  Simulation sim;
  int count = 0;
  EventId id = 0;
  id = sim.schedule_every(1.0, [&] {
    ++count;
    if (count == 3) sim.cancel(id);
  });
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulation, CancelUnknownIdReturnsFalse) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(0));
  EXPECT_FALSE(sim.cancel(9999));
}

TEST(Simulation, DoubleCancelReturnsFalse) {
  Simulation sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  Simulation sim;
  std::vector<std::string> log;
  sim.schedule_at(1.0, [&] {
    log.push_back("outer");
    sim.schedule_at(1.0, [&] { log.push_back("inner-same-time"); });
    sim.schedule_at(2.0, [&] { log.push_back("inner-later"); });
  });
  sim.run_until(3.0);
  EXPECT_EQ(log, (std::vector<std::string>{"outer", "inner-same-time",
                                           "inner-later"}));
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, ExecutedCountTracksEvents) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run_until(100.0);
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulation, RunForAdvancesRelative) {
  Simulation sim;
  sim.run_for(2.0);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_for(3.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, RejectsNonFiniteTimes) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_at(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(std::numeric_limits<double>::infinity(),
                                  [] {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_every(std::nan(""), [] {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_every(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_every(0.0, [] {}), std::invalid_argument);
}

TEST(Simulation, PeriodicEventsDoNotDrift) {
  // Firing times are computed as origin + k*period, so even after many
  // firings the boundary event at exactly t_end still fires (naive
  // accumulation of 0.05 would drift past 2.0 and drop the last firing).
  Simulation sim;
  int count = 0;
  double last_at = 0.0;
  sim.schedule_every(0.05, [&] {
    ++count;
    last_at = sim.now();
  });
  sim.run_until(2.0);
  EXPECT_EQ(count, 40);
  EXPECT_DOUBLE_EQ(last_at, 2.0);

  // And over a long horizon the firing count is exact.
  Simulation sim2;
  long long n = 0;
  sim2.schedule_every(0.01, [&] { ++n; });
  sim2.run_until(1000.0);
  EXPECT_EQ(n, 100000);
}

TEST(Simulation, StressRandomScheduleExecutesInOrder) {
  // 50k events with random times, some scheduled from inside handlers and
  // some cancelled: execution times must be globally non-decreasing and
  // the executed count exact.
  Simulation sim;
  Rng rng(404);
  double last_seen = -1.0;
  std::size_t executed = 0;
  std::size_t cancelled = 0;
  std::vector<EventId> ids;
  auto handler = [&] {
    ASSERT_GE(sim.now(), last_seen);
    last_seen = sim.now();
    ++executed;
    if (rng.bernoulli(0.1)) {
      sim.schedule_after(rng.uniform(0.0, 5.0), [&] {
        ASSERT_GE(sim.now(), last_seen);
        last_seen = sim.now();
        ++executed;
      });
    }
  };
  for (int i = 0; i < 50000; ++i) {
    ids.push_back(sim.schedule_at(rng.uniform(0.0, 100.0), handler));
  }
  for (int i = 0; i < 5000; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
    if (sim.cancel(ids[idx])) ++cancelled;
  }
  sim.run_until(1e9);
  EXPECT_GE(executed, 50000u - cancelled);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, PeriodicSelfCancellationInsideAction) {
  // A periodic event cancelling itself mid-callback must not fire again.
  Simulation sim;
  int fired = 0;
  EventId id = sim.schedule_every(1.0, [&] { ++fired; });
  sim.schedule_at(2.5, [&] { sim.cancel(id); });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace fvsst::sim
