// Tests for the machine descriptions (mach/machine_config.h) against the
// values the paper states for the experimental platform.
#include "mach/machine_config.h"

#include <gtest/gtest.h>

#include "simkit/units.h"

namespace fvsst::mach {
namespace {

using units::GHz;
using units::MHz;
using units::ns;

TEST(P630, TableMatchesPaperTable1) {
  const FrequencyTable t = p630_frequency_table();
  ASSERT_EQ(t.size(), 16u);
  // Spot-check the paper's Table 1 values.
  EXPECT_DOUBLE_EQ(t.power(250 * MHz), 9.0);
  EXPECT_DOUBLE_EQ(t.power(500 * MHz), 35.0);
  EXPECT_DOUBLE_EQ(t.power(600 * MHz), 48.0);
  EXPECT_DOUBLE_EQ(t.power(650 * MHz), 57.0);
  EXPECT_DOUBLE_EQ(t.power(750 * MHz), 75.0);
  EXPECT_DOUBLE_EQ(t.power(900 * MHz), 109.0);
  EXPECT_DOUBLE_EQ(t.power(1000 * MHz), 140.0);
}

TEST(P630, FrequenciesAre50MHzStepsFrom250) {
  const FrequencyTable t = p630_frequency_table();
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(t[i].hz, (250.0 + 50.0 * static_cast<double>(i)) * MHz);
  }
}

TEST(P630, NominalVoltageIs1_3AtMax) {
  const FrequencyTable t = p630_frequency_table();
  EXPECT_NEAR(t.min_voltage(1000 * MHz), 1.3, 1e-12);
  // Reduced-voltage curve is strictly below nominal elsewhere.
  EXPECT_LT(t.min_voltage(250 * MHz), 1.0);
}

TEST(P630, MachineShape) {
  const MachineConfig cfg = p630();
  EXPECT_EQ(cfg.num_cpus, 4u);
  EXPECT_DOUBLE_EQ(cfg.nominal_hz, 1 * GHz);
  EXPECT_DOUBLE_EQ(cfg.nominal_volts, 1.3);
  EXPECT_DOUBLE_EQ(cfg.idle_ipc, 1.3);  // the Power4+ idles hot
}

TEST(P630, LatenciesMatchMeasuredCycles) {
  const MachineConfig cfg = p630();
  // Paper Sec 7.1: 15 / 113 / 393 cycles at 1 GHz.
  EXPECT_NEAR(cfg.latencies.t_l2, 15 * ns, 1e-15);
  EXPECT_NEAR(cfg.latencies.t_l3, 113 * ns, 1e-15);
  EXPECT_NEAR(cfg.latencies.t_mem, 393 * ns, 1e-15);
}

TEST(P630, CyclesToSecondsConversion) {
  EXPECT_DOUBLE_EQ(MemoryLatencies::cycles_to_seconds(393, 1 * GHz),
                   393e-9);
  EXPECT_DOUBLE_EQ(MemoryLatencies::cycles_to_seconds(100, 500 * MHz),
                   200e-9);
}

TEST(P630, PeakAndFloorPower) {
  const MachineConfig cfg = p630();
  EXPECT_DOUBLE_EQ(cfg.peak_power_w(), 4 * 140.0);
  EXPECT_DOUBLE_EQ(cfg.min_cpu_power_w(), 4 * 9.0);
}

TEST(MotivatingExample, MatchesSection2) {
  const MachineConfig cfg = p630_motivating_example();
  // 746 W total with 4x140 W CPUs (~75% of system power).
  EXPECT_DOUBLE_EQ(cfg.non_cpu_power_w, 746.0 - 560.0);
  EXPECT_DOUBLE_EQ(cfg.peak_power_w(), 746.0);
  const double cpu_share = 560.0 / cfg.peak_power_w();
  EXPECT_NEAR(cpu_share, 0.75, 0.01);
}

}  // namespace
}  // namespace fvsst::mach
