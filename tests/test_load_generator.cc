// Tests for the request load generator (cluster/load_generator.h) and the
// SampleSet percentile utility it relies on.
#include "cluster/load_generator.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::cluster {
namespace {

using units::GHz;

TEST(SampleSet, ExactPercentiles) {
  sim::SampleSet s;
  for (int i = 10; i >= 1; --i) s.add(i);  // 1..10, added unsorted
  EXPECT_EQ(s.count(), 10u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);   // nearest-rank
  EXPECT_DOUBLE_EQ(s.percentile(0.95), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 10.0);
}

TEST(SampleSet, ErrorsOnEmptyOrBadP) {
  sim::SampleSet s;
  EXPECT_THROW(s.percentile(0.5), std::out_of_range);
  EXPECT_THROW(s.min(), std::out_of_range);
  s.add(1.0);
  EXPECT_THROW(s.percentile(-0.1), std::out_of_range);
  EXPECT_THROW(s.percentile(1.1), std::out_of_range);
}

TEST(SampleSet, InterleavedAddAndQuery) {
  sim::SampleSet s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 3.0);
  s.add(1.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

struct LoadRig {
  LoadRig() : cluster(Cluster::homogeneous(sim, mach::p630(), 1, rng)) {}
  sim::Simulation sim;
  sim::Rng rng{21};
  Cluster cluster;
};

LoadGenerator::Options small_requests(double rate_hz) {
  LoadGenerator::Options opts;
  // ~1 ms of CPU-bound work per request at 1 GHz.
  opts.request = workload::make_uniform_synthetic(100.0, 1.5e6, false);
  opts.base_rate_hz = rate_hz;
  return opts;
}

TEST(LoadGenerator, ValidatesInputs) {
  LoadRig rig;
  EXPECT_THROW(LoadGenerator(rig.sim, rig.cluster, {}, small_requests(10)),
               std::invalid_argument);
  LoadGenerator::Options no_request;
  no_request.base_rate_hz = 10;
  EXPECT_THROW(
      LoadGenerator(rig.sim, rig.cluster, {{0, 0}}, no_request),
      std::invalid_argument);
  auto bad_rate = small_requests(10);
  bad_rate.base_rate_hz = 0.0;
  EXPECT_THROW(LoadGenerator(rig.sim, rig.cluster, {{0, 0}}, bad_rate),
               std::invalid_argument);
}

TEST(LoadGenerator, ArrivalRateMatchesPoissonMean) {
  LoadRig rig;
  LoadGenerator gen(rig.sim, rig.cluster, {{0, 0}}, small_requests(200.0));
  rig.sim.run_for(10.0);
  // 200 req/s * 10 s = 2000 expected; allow 4 sigma (~180).
  EXPECT_NEAR(static_cast<double>(gen.arrivals()), 2000.0, 200.0);
}

TEST(LoadGenerator, LightLoadCompletesWithServiceTimeLatency) {
  LoadRig rig;
  LoadGenerator gen(rig.sim, rig.cluster, {{0, 0}}, small_requests(50.0));
  rig.sim.run_for(5.0);
  rig.sim.run_for(1.0);  // drain
  EXPECT_GT(gen.completions(), 100u);
  auto& rt = gen.response_times();
  // Service time ~1 ms at 1 GHz; light load (utilisation ~5%) keeps the
  // median near pure service time.
  EXPECT_LT(rt.percentile(0.5), 3e-3);
  EXPECT_GE(rt.min(), 0.5e-3);
}

TEST(LoadGenerator, RoundRobinSpreadsAcrossTargets) {
  LoadRig rig;
  std::vector<ProcAddress> targets{{0, 0}, {0, 1}, {0, 2}, {0, 3}};
  LoadGenerator gen(rig.sim, rig.cluster, targets, small_requests(200.0));
  rig.sim.run_for(3.0);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_GT(rig.cluster.core({0, c}).instructions_retired(), 0.0) << c;
  }
  // Even split within 20%.
  const double total = [&] {
    double t = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
      t += rig.cluster.core({0, c}).instructions_retired();
    }
    return t;
  }();
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(rig.cluster.core({0, c}).instructions_retired() / total,
                0.25, 0.05);
  }
}

TEST(LoadGenerator, SlowerCoreMeansHigherLatency) {
  LoadRig rig;
  LoadGenerator fast(rig.sim, rig.cluster, {{0, 0}}, small_requests(100.0),
                     sim::Rng(1));
  LoadGenerator slow(rig.sim, rig.cluster, {{0, 1}}, small_requests(100.0),
                     sim::Rng(2));
  rig.cluster.core({0, 1}).set_frequency(250e6);
  rig.sim.run_for(5.0);
  rig.sim.run_for(2.0);
  EXPECT_GT(slow.response_times().percentile(0.5),
            2.0 * fast.response_times().percentile(0.5));
}

TEST(LoadGenerator, DiurnalModulationShapesArrivals) {
  LoadRig rig;
  auto opts = small_requests(400.0);
  opts.modulation = diurnal_modulation(0.1, 1.0, 10.0);
  LoadGenerator gen(rig.sim, rig.cluster, {{0, 0}}, opts);
  // Trough [0, 2]s vs peak [4, 6]s.
  rig.sim.run_for(2.0);
  const std::size_t at_trough = gen.arrivals();
  rig.sim.run_for(2.0);
  const std::size_t before_peak = gen.arrivals();
  rig.sim.run_for(2.0);
  const std::size_t at_peak = gen.arrivals();
  EXPECT_GT(at_peak - before_peak, 3 * at_trough);
}

TEST(LoadGenerator, BatchingFlushesOnSizeOrTimeout) {
  LoadRig rig;
  auto opts = small_requests(1000.0);
  opts.batch_size = 8;
  opts.batch_timeout_s = 0.005;
  LoadGenerator gen(rig.sim, rig.cluster, {{0, 0}}, opts);
  rig.sim.run_for(4.0);
  rig.sim.run_for(0.5);
  EXPECT_GT(gen.batches_dispatched(), 0u);
  // Mean batch size is bounded by the size cap and must exceed 1 (at
  // 1000 req/s, ~5 requests arrive per 5 ms timeout window).
  const double mean_batch = static_cast<double>(gen.arrivals()) /
                            static_cast<double>(gen.batches_dispatched());
  EXPECT_GT(mean_batch, 2.0);
  EXPECT_LE(mean_batch, 8.0 + 1e-9);
  EXPECT_GT(gen.completions(), 1000u);
}

TEST(LoadGenerator, BatchingLatencyBoundedByTimeout) {
  // At a very low rate every batch flushes by timeout: the response time
  // of each request grows by at most batch_timeout (plus service).
  LoadRig rig;
  auto batched = small_requests(40.0);
  batched.batch_size = 64;          // never reached at this rate
  batched.batch_timeout_s = 0.020;
  LoadGenerator gen(rig.sim, rig.cluster, {{0, 0}}, batched, sim::Rng(3));
  rig.sim.run_for(5.0);
  rig.sim.run_for(0.5);
  auto& rt = gen.response_times();
  ASSERT_GT(rt.count(), 50u);
  EXPECT_GT(rt.mean(), 0.010);          // batching delay is visible...
  EXPECT_LT(rt.percentile(0.95), 0.030);  // ...but bounded by the timeout
}

TEST(LoadGenerator, BatchingDisabledByDefault) {
  LoadRig rig;
  LoadGenerator gen(rig.sim, rig.cluster, {{0, 0}}, small_requests(100.0));
  rig.sim.run_for(2.0);
  EXPECT_EQ(gen.batches_dispatched(), gen.arrivals());
}

TEST(LoadGenerator, ClosedLoopBoundsConcurrency) {
  // N users, each with one outstanding request: arrivals per second are
  // bounded by N / (service + think), and outstanding work never exceeds N.
  LoadRig rig;
  auto opts = small_requests(1.0);  // rate ignored in closed mode
  opts.closed_users = 8;
  opts.think_time_s = 0.010;
  LoadGenerator gen(rig.sim, rig.cluster, rig.cluster.all_procs(), opts);
  rig.sim.run_for(5.0);
  const std::size_t outstanding = gen.arrivals() - gen.completions();
  EXPECT_LE(outstanding, 8u);
  // Throughput ceiling: 8 users / (1ms service + 10ms think) ~ 720/s.
  EXPECT_LT(gen.arrivals(), 5000u);
  EXPECT_GT(gen.arrivals(), 1000u);
}

TEST(LoadGenerator, ClosedLoopSelfThrottlesOnSlowService) {
  // Same users on a 4x slower core: a closed loop submits *fewer*
  // requests instead of building an unbounded queue.
  auto arrivals_at = [](double hz) {
    LoadRig rig;
    rig.cluster.core({0, 0}).set_frequency(hz);
    LoadGenerator::Options opts;
    opts.request = workload::make_uniform_synthetic(100.0, 1.5e7, false);
    opts.base_rate_hz = 1.0;
    opts.closed_users = 4;
    opts.think_time_s = 0.005;
    LoadGenerator gen(rig.sim, rig.cluster, {{0, 0}}, opts);
    rig.sim.run_for(5.0);
    return gen.arrivals();
  };
  const auto fast = arrivals_at(1e9);
  const auto slow = arrivals_at(250e6);
  EXPECT_LT(slow, fast);
  EXPECT_GT(slow, fast / 8);  // throttled, not collapsed
}

TEST(LoadGenerator, ClosedLoopValidatesThinkTime) {
  LoadRig rig;
  auto opts = small_requests(1.0);
  opts.closed_users = 2;
  opts.think_time_s = 0.0;
  EXPECT_THROW(LoadGenerator(rig.sim, rig.cluster, {{0, 0}}, opts),
               std::invalid_argument);
}

TEST(LoadGenerator, DestructionSilencesClosedLoopCallbacks) {
  LoadRig rig;
  {
    auto opts = small_requests(1.0);
    opts.closed_users = 4;
    LoadGenerator gen(rig.sim, rig.cluster, {{0, 0}}, opts);
    rig.sim.run_for(0.5);
  }
  // The polling chains still in the queue must be inert.
  rig.sim.run_for(2.0);
  SUCCEED();
}

TEST(DiurnalModulation, CurveShape) {
  const auto f = diurnal_modulation(0.2, 1.0, 24.0);
  EXPECT_NEAR(f(0.0), 0.2, 1e-12);   // trough
  EXPECT_NEAR(f(12.0), 1.0, 1e-12);  // peak at half period
  EXPECT_NEAR(f(24.0), 0.2, 1e-9);   // periodic
}

}  // namespace
}  // namespace fvsst::cluster
