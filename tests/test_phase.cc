// Tests for the phase performance model (workload/phase.h) — the ground
// truth the predictor is later validated against.
#include "workload/phase.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mach/machine_config.h"
#include "simkit/units.h"

namespace fvsst::workload {
namespace {

using units::GHz;
using units::MHz;

const mach::MemoryLatencies kLat = mach::p630().latencies;

Phase cpu_bound() {
  Phase p;
  p.name = "cpu";
  p.alpha = 1.6;
  p.instructions = 1e9;
  return p;
}

Phase mem_bound() {
  Phase p;
  p.name = "mem";
  p.alpha = 1.6;
  p.apki_mem = 15.0;
  p.apki_l3 = 2.0;
  p.apki_l2 = 5.0;
  p.instructions = 1e9;
  return p;
}

TEST(PhaseModel, PureCpuIpcIsAlphaAtAnyFrequency) {
  const Phase p = cpu_bound();
  EXPECT_NEAR(true_ipc(p, kLat, 250 * MHz), 1.6, 1e-12);
  EXPECT_NEAR(true_ipc(p, kLat, 1 * GHz), 1.6, 1e-12);
}

TEST(PhaseModel, PureCpuPerformanceLinearInFrequency) {
  const Phase p = cpu_bound();
  const double perf_half = true_performance(p, kLat, 500 * MHz);
  const double perf_full = true_performance(p, kLat, 1 * GHz);
  EXPECT_NEAR(perf_full / perf_half, 2.0, 1e-9);
}

TEST(PhaseModel, MemTimeMatchesHandComputation) {
  const Phase p = mem_bound();
  // 5/1000*15ns + 2/1000*113ns + 15/1000*393ns
  const double expected =
      0.005 * 15e-9 + 0.002 * 113e-9 + 0.015 * 393e-9;
  EXPECT_NEAR(mem_time_per_instruction(p, kLat), expected, 1e-18);
}

TEST(PhaseModel, LatencyScaleOnlyAffectsTrueLatency) {
  Phase p = mem_bound();
  p.latency_scale = 1.5;
  const double with_true = mem_time_per_instruction(p, kLat, true);
  const double nominal = mem_time_per_instruction(p, kLat, false);
  EXPECT_NEAR(with_true, 1.5 * nominal, 1e-18);
}

TEST(PhaseModel, IpcDecreasesWithFrequencyForMemoryWork) {
  const Phase p = mem_bound();
  double prev = 1e9;
  for (double mhz = 250; mhz <= 1000; mhz += 50) {
    const double ipc = true_ipc(p, kLat, mhz * MHz);
    EXPECT_LT(ipc, prev);
    prev = ipc;
  }
}

TEST(PhaseModel, PerformanceIncreasesButSaturates) {
  const Phase p = mem_bound();
  // Performance is monotone increasing in frequency...
  double prev = 0.0;
  for (double mhz = 250; mhz <= 1000; mhz += 50) {
    const double perf = true_performance(p, kLat, mhz * MHz);
    EXPECT_GT(perf, prev);
    prev = perf;
  }
  // ...but bounded by the saturation limit 1/M.
  EXPECT_LT(prev, saturation_performance(p, kLat));
  // And the marginal gain shrinks: the last 250 MHz buys less than the
  // first 250 MHz did.
  const double low_gain = true_performance(p, kLat, 500 * MHz) -
                          true_performance(p, kLat, 250 * MHz);
  const double high_gain = true_performance(p, kLat, 1000 * MHz) -
                           true_performance(p, kLat, 750 * MHz);
  EXPECT_LT(high_gain, 0.5 * low_gain);
}

TEST(PhaseModel, PureCpuSaturationIsInfinite) {
  EXPECT_TRUE(std::isinf(saturation_performance(cpu_bound(), kLat)));
}

TEST(PhaseModel, PhaseFromStallCpiRoundTrips) {
  const double target_cpi = 5.0;
  const Phase p = phase_from_stall_cpi("t", 1.6, target_cpi, kLat, 1 * GHz,
                                       1e9);
  // Stall time per instruction * nominal frequency recovers the target.
  EXPECT_NEAR(mem_time_per_instruction(p, kLat) * 1e9, target_cpi, 1e-9);
  // IPC at nominal = 1 / (1/alpha + CPI_stall).
  EXPECT_NEAR(true_ipc(p, kLat, 1 * GHz), 1.0 / (1.0 / 1.6 + 5.0), 1e-9);
}

TEST(PhaseModel, PhaseFromStallCpiCustomSplit) {
  const Phase p = phase_from_stall_cpi("t", 1.0, 2.0, kLat, 1 * GHz, 1e9,
                                       /*frac_l2=*/1.0, /*frac_l3=*/0.0,
                                       /*frac_mem=*/0.0);
  EXPECT_GT(p.apki_l2, 0.0);
  EXPECT_DOUBLE_EQ(p.apki_l3, 0.0);
  EXPECT_DOUBLE_EQ(p.apki_mem, 0.0);
  EXPECT_NEAR(mem_time_per_instruction(p, kLat) * 1e9, 2.0, 1e-9);
}

TEST(WorkloadSpec, TotalsAndDuration) {
  WorkloadSpec spec;
  spec.phases = {cpu_bound(), mem_bound()};
  EXPECT_DOUBLE_EQ(spec.total_instructions(), 2e9);
  const double d = spec.duration_at(kLat, 1 * GHz);
  const double d_cpu = 1e9 / true_performance(cpu_bound(), kLat, 1 * GHz);
  const double d_mem = 1e9 / true_performance(mem_bound(), kLat, 1 * GHz);
  EXPECT_NEAR(d, d_cpu + d_mem, 1e-9);
}

TEST(IdleLoop, MatchesPaperCharacterisation) {
  const WorkloadSpec idle = idle_loop();
  ASSERT_EQ(idle.phases.size(), 1u);
  EXPECT_TRUE(idle.loop);
  // "The observed IPC of the idle loop is quite high, generally around 1.3"
  EXPECT_NEAR(true_ipc(idle.phases[0], kLat, 1 * GHz), 1.3, 1e-12);
  // Hot idle is CPU-intensive: IPC unchanged at low frequency.
  EXPECT_NEAR(true_ipc(idle.phases[0], kLat, 250 * MHz), 1.3, 1e-12);
}

}  // namespace
}  // namespace fvsst::workload
