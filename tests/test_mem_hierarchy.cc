// Tests for the hierarchy, the address streams and the profile extractor.
#include <gtest/gtest.h>

#include "mem/address_stream.h"
#include "mem/hierarchy.h"
#include "mem/profile_extractor.h"

namespace fvsst::mem {
namespace {

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

TEST(Hierarchy, ServiceLevelEscalation) {
  MemoryHierarchy h = MemoryHierarchy::p630();
  EXPECT_EQ(h.access(0x1000), ServiceLevel::kMemory);  // cold: everything misses
  EXPECT_EQ(h.access(0x1000), ServiceLevel::kL1);      // now resident
  EXPECT_EQ(h.total_accesses(), 2u);
  EXPECT_EQ(h.serviced_by_memory(), 1u);
  EXPECT_EQ(h.serviced_by_l1(), 1u);
}

TEST(Hierarchy, L1EvictionFallsBackToL2) {
  MemoryHierarchy h = MemoryHierarchy::p630();
  // Fill far beyond L1 (64 KB) but well inside L2 (1.44 MB).
  for (std::uint64_t a = 0; a < 512 * KiB; a += 128) h.access(a);
  h.reset_stats();
  // Re-walk: everything was evicted from L1 (cyclic sweep of 8x capacity)
  // but still lives in L2.
  for (std::uint64_t a = 0; a < 512 * KiB; a += 128) h.access(a);
  EXPECT_EQ(h.serviced_by_memory(), 0u);
  EXPECT_GT(h.serviced_by_l2(), h.total_accesses() * 9 / 10);
}

TEST(Hierarchy, HugeWorkingSetGoesToMemory) {
  MemoryHierarchy h = MemoryHierarchy::p630();
  sim::Rng rng(5);
  UniformRandomStream stream(0, 512 * MiB, rng);  // 16x the L3
  const ExtractedProfile p = extract_profile(stream, h, 50000, 50000);
  // The paper's synthetic-benchmark construction: L1 miss -> memory.
  EXPECT_GT(p.mem_fraction, 0.85);
}

TEST(StridedStream, WrapsInsideWorkingSet) {
  StridedStream s(0x1000, 256, 64);
  EXPECT_EQ(s.next(), 0x1000u);
  EXPECT_EQ(s.next(), 0x1040u);
  EXPECT_EQ(s.next(), 0x1080u);
  EXPECT_EQ(s.next(), 0x10C0u);
  EXPECT_EQ(s.next(), 0x1000u);  // wrapped
}

TEST(StridedStream, Validates) {
  EXPECT_THROW(StridedStream(0, 0, 64), std::invalid_argument);
  EXPECT_THROW(StridedStream(0, 256, 0), std::invalid_argument);
}

TEST(UniformRandomStream, StaysInRange) {
  UniformRandomStream s(0x10000, 4096, sim::Rng(9));
  for (int i = 0; i < 10000; ++i) {
    const auto a = s.next();
    EXPECT_GE(a, 0x10000u);
    EXPECT_LT(a, 0x10000u + 4096u);
  }
}

TEST(PointerChaseStream, VisitsEveryLineOncePerCycle) {
  const std::uint64_t lines = 64;
  PointerChaseStream s(0, lines * 128, 128, sim::Rng(3));
  std::vector<int> seen(lines, 0);
  for (std::uint64_t i = 0; i < lines; ++i) {
    const auto a = s.next();
    EXPECT_EQ(a % 128, 0u);
    ++seen[a / 128];
  }
  for (std::uint64_t l = 0; l < lines; ++l) EXPECT_EQ(seen[l], 1) << l;
  // Second cycle repeats the same single cycle.
  std::vector<int> again(lines, 0);
  for (std::uint64_t i = 0; i < lines; ++i) ++again[s.next() / 128];
  EXPECT_EQ(again, seen);
}

TEST(MixStream, RespectsWeights) {
  std::vector<std::unique_ptr<AddressStream>> parts;
  parts.push_back(std::make_unique<StridedStream>(0x0, 64, 64));       // ~0
  parts.push_back(std::make_unique<StridedStream>(0x100000, 64, 64));  // ~1M
  MixStream mix(std::move(parts), {0.8, 0.2}, sim::Rng(7));
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (mix.next() < 0x100000) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.8, 0.02);
}

TEST(MixStream, Validates) {
  std::vector<std::unique_ptr<AddressStream>> parts;
  parts.push_back(std::make_unique<StridedStream>(0, 64, 64));
  EXPECT_THROW(MixStream(std::move(parts), {0.5, 0.5}, sim::Rng(1)),
               std::invalid_argument);
}

// --- Profile extraction: the bridge to the scheduling stack --------------

TEST(ProfileExtractor, SmallWorkingSetIsAllL1) {
  MemoryHierarchy h = MemoryHierarchy::p630();
  StridedStream s(0, 16 * KiB, 128);
  const ExtractedProfile p = extract_profile(s, h, 20000, 2000);
  EXPECT_GT(p.l1_fraction, 0.99);
}

TEST(ProfileExtractor, MidWorkingSetServicedByL2) {
  MemoryHierarchy h = MemoryHierarchy::p630();
  UniformRandomStream s(0, 512 * KiB, sim::Rng(2));
  const ExtractedProfile p = extract_profile(s, h, 50000, 50000);
  // 512 KB >> L1 (64 KB) but << L2 (1.44 MB): L2 dominates the misses.
  EXPECT_GT(p.l2_fraction, 0.5);
  EXPECT_LT(p.mem_fraction, 0.05);
}

TEST(ProfileExtractor, L3WorkingSetServicedByL3) {
  MemoryHierarchy h = MemoryHierarchy::p630();
  UniformRandomStream s(0, 16 * MiB, sim::Rng(2));
  const ExtractedProfile p = extract_profile(s, h, 50000, 100000);
  EXPECT_GT(p.l3_fraction, 0.5);
  EXPECT_LT(p.mem_fraction, 0.10);
}

TEST(ProfileExtractor, FractionsSumToOne) {
  MemoryHierarchy h = MemoryHierarchy::p630();
  UniformRandomStream s(0, 4 * MiB, sim::Rng(8));
  const ExtractedProfile p = extract_profile(s, h, 30000, 10000);
  EXPECT_NEAR(p.l1_fraction + p.l2_fraction + p.l3_fraction + p.mem_fraction,
              1.0, 1e-12);
  EXPECT_EQ(p.references, 30000u);
}

TEST(ProfileExtractor, ToPhaseConvertsRates) {
  ExtractedProfile profile;
  profile.l1_fraction = 0.90;
  profile.l2_fraction = 0.06;
  profile.l3_fraction = 0.03;
  profile.mem_fraction = 0.01;
  const workload::Phase p =
      to_phase("derived", 1.5, profile, /*accesses_per_instruction=*/0.3,
               1e9);
  EXPECT_DOUBLE_EQ(p.apki_l2, 0.06 * 300.0);
  EXPECT_DOUBLE_EQ(p.apki_l3, 0.03 * 300.0);
  EXPECT_DOUBLE_EQ(p.apki_mem, 0.01 * 300.0);
  EXPECT_DOUBLE_EQ(p.alpha, 1.5);
}

TEST(ProfileExtractor, Validates) {
  MemoryHierarchy h = MemoryHierarchy::p630();
  StridedStream s(0, 1024, 64);
  EXPECT_THROW(extract_profile(s, h, 0), std::invalid_argument);
  ExtractedProfile profile;
  EXPECT_THROW(to_phase("x", 1.0, profile, 0.0, 1e9),
               std::invalid_argument);
}

TEST(ProfileExtractor, DerivedPhaseSaturatesLikeHandAuthored) {
  // End-to-end: a pointer chase over 256 MB derives a phase whose
  // mem-dominated stall profile saturates early — the same qualitative
  // behaviour the hand-authored mcf profile asserts.
  MemoryHierarchy h = MemoryHierarchy::p630();
  PointerChaseStream s(0, 256 * MiB, 128, sim::Rng(6));
  const ExtractedProfile profile = extract_profile(s, h, 40000, 40000);
  const workload::Phase p = to_phase("chase", 1.3, profile, 0.35, 1e9);
  const auto lat = mach::MemoryLatencies{15e-9, 113e-9, 393e-9};
  const double loss = 1.0 - workload::true_performance(p, lat, 0.65e9) /
                                workload::true_performance(p, lat, 1e9);
  EXPECT_LT(loss, 0.10);  // saturated by 650 MHz
  EXPECT_GT(p.apki_mem, 100.0);  // ~0.35 apI, nearly all to memory
}

}  // namespace
}  // namespace fvsst::mem
