// Tests for TimeSeries and the ASCII chart renderer.
#include "simkit/time_series.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fvsst::sim {
namespace {

TimeSeries make_ramp() {
  TimeSeries ts("ramp");
  ts.add(0.0, 0.0);
  ts.add(1.0, 10.0);
  ts.add(2.0, 20.0);
  ts.add(3.0, 30.0);
  return ts;
}

TEST(TimeSeries, BasicAccess) {
  const TimeSeries ts = make_ramp();
  EXPECT_EQ(ts.name(), "ramp");
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_DOUBLE_EQ(ts.first_time(), 0.0);
  EXPECT_DOUBLE_EQ(ts.last_time(), 3.0);
  EXPECT_DOUBLE_EQ(ts[2].value, 20.0);
}

TEST(TimeSeries, RejectsNonMonotonicTime) {
  TimeSeries ts;
  ts.add(1.0, 5.0);
  EXPECT_THROW(ts.add(0.5, 6.0), std::invalid_argument);
}

TEST(TimeSeries, AllowsEqualTimes) {
  TimeSeries ts;
  ts.add(1.0, 5.0);
  EXPECT_NO_THROW(ts.add(1.0, 6.0));
}

TEST(TimeSeries, ValueAtPiecewiseConstant) {
  const TimeSeries ts = make_ramp();
  EXPECT_DOUBLE_EQ(ts.value_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.99), 0.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(2.5), 20.0);
  EXPECT_DOUBLE_EQ(ts.value_at(100.0), 30.0);
}

TEST(TimeSeries, ValueAtBeforeFirstThrows) {
  const TimeSeries ts = make_ramp();
  EXPECT_THROW(ts.value_at(-0.1), std::out_of_range);
}

TEST(TimeSeries, EmptyQueriesThrow) {
  TimeSeries ts;
  EXPECT_THROW(ts.first_time(), std::out_of_range);
  EXPECT_THROW(ts.last_time(), std::out_of_range);
  EXPECT_THROW(ts.value_at(0.0), std::out_of_range);
}

TEST(TimeSeries, WindowedAggregates) {
  const TimeSeries ts = make_ramp();
  EXPECT_DOUBLE_EQ(ts.mean(1.0, 3.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.min(1.0, 3.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.max(1.0, 3.0), 30.0);
}

TEST(TimeSeries, SliceExtractsWindow) {
  const TimeSeries ts = make_ramp();
  const TimeSeries cut = ts.slice(0.5, 2.5);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_DOUBLE_EQ(cut[0].t, 1.0);
  EXPECT_DOUBLE_EQ(cut[1].t, 2.0);
  EXPECT_EQ(cut.name(), "ramp");
}

TEST(TimeSeries, ResampleUniformGrid) {
  const TimeSeries ts = make_ramp();
  const TimeSeries rs = ts.resample(0.5);
  ASSERT_GE(rs.size(), 7u);
  EXPECT_DOUBLE_EQ(rs.value_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(rs.value_at(1.5), 10.0);
}

TEST(AsciiChart, RendersWithoutCrashing) {
  const TimeSeries ts = make_ramp();
  const std::string chart = render_ascii_chart({&ts}, 40, 8);
  EXPECT_NE(chart.find("ymax"), std::string::npos);
  EXPECT_NE(chart.find("ramp"), std::string::npos);
}

TEST(AsciiChart, HandlesEmptyAndFlat) {
  TimeSeries empty;
  EXPECT_EQ(render_ascii_chart({&empty}), "(empty chart)\n");

  TimeSeries flat("flat");
  flat.add(0.0, 5.0);
  flat.add(1.0, 5.0);
  const std::string chart = render_ascii_chart({&flat}, 20, 4);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesUseDistinctMarks) {
  TimeSeries a("a"), b("b");
  a.add(0.0, 0.0);
  a.add(1.0, 1.0);
  b.add(0.0, 1.0);
  b.add(1.0, 0.0);
  const std::string chart = render_ascii_chart({&a, &b}, 30, 6);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
}

}  // namespace
}  // namespace fvsst::sim
