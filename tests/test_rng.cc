// Tests for the deterministic RNG (simkit/rng.h).
#include "simkit/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace fvsst::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int count : seen) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child and parent produce different streams.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(33);
  Rng b(33);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 100; ++i) ASSERT_EQ(fa.next_u64(), fb.next_u64());
}

}  // namespace
}  // namespace fvsst::sim
