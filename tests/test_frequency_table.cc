// Tests for FrequencyTable (mach/frequency_table.h).
#include "mach/frequency_table.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/units.h"

namespace fvsst::mach {
namespace {

using units::MHz;

FrequencyTable small_table() {
  return FrequencyTable({
      {500 * MHz, 1.0, 35.0},
      {250 * MHz, 0.8, 9.0},
      {1000 * MHz, 1.3, 140.0},
      {750 * MHz, 1.15, 75.0},
  });
}

TEST(FrequencyTable, SortsAscending) {
  const FrequencyTable t = small_table();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t[0].hz, 250 * MHz);
  EXPECT_DOUBLE_EQ(t[3].hz, 1000 * MHz);
  EXPECT_DOUBLE_EQ(t.min_hz(), 250 * MHz);
  EXPECT_DOUBLE_EQ(t.max_hz(), 1000 * MHz);
}

TEST(FrequencyTable, RejectsEmptyDuplicatesAndNonPositive) {
  EXPECT_THROW(FrequencyTable(std::vector<OperatingPoint>{}),
               std::invalid_argument);
  EXPECT_THROW(FrequencyTable({{1e9, 1.0, 10.0}, {1e9, 1.1, 11.0}}),
               std::invalid_argument);
  EXPECT_THROW(FrequencyTable({{0.0, 1.0, 10.0}}), std::invalid_argument);
  EXPECT_THROW(FrequencyTable({{1e9, -1.0, 10.0}}), std::invalid_argument);
  EXPECT_THROW(FrequencyTable({{1e9, 1.0, 0.0}}), std::invalid_argument);
}

TEST(FrequencyTable, IndexAndContains) {
  const FrequencyTable t = small_table();
  EXPECT_TRUE(t.contains(750 * MHz));
  EXPECT_FALSE(t.contains(600 * MHz));
  EXPECT_EQ(*t.index_of(250 * MHz), 0u);
  EXPECT_EQ(*t.index_of(1000 * MHz), 3u);
  EXPECT_FALSE(t.index_of(123.0).has_value());
}

TEST(FrequencyTable, VoltageAndPowerLookup) {
  const FrequencyTable t = small_table();
  EXPECT_DOUBLE_EQ(t.min_voltage(750 * MHz), 1.15);
  EXPECT_DOUBLE_EQ(t.power(500 * MHz), 35.0);
  EXPECT_THROW(t.min_voltage(600 * MHz), std::out_of_range);
  EXPECT_THROW(t.power(600 * MHz), std::out_of_range);
}

TEST(FrequencyTable, NextLower) {
  const FrequencyTable t = small_table();
  EXPECT_DOUBLE_EQ(t.next_lower(1000 * MHz)->hz, 750 * MHz);
  EXPECT_DOUBLE_EQ(t.next_lower(600 * MHz)->hz, 500 * MHz);  // between points
  EXPECT_FALSE(t.next_lower(250 * MHz).has_value());
}

TEST(FrequencyTable, NextHigher) {
  const FrequencyTable t = small_table();
  EXPECT_DOUBLE_EQ(t.next_higher(250 * MHz)->hz, 500 * MHz);
  EXPECT_DOUBLE_EQ(t.next_higher(600 * MHz)->hz, 750 * MHz);
  EXPECT_FALSE(t.next_higher(1000 * MHz).has_value());
}

TEST(FrequencyTable, HighestUnderPower) {
  const FrequencyTable t = small_table();
  EXPECT_DOUBLE_EQ(t.highest_under_power(140.0)->hz, 1000 * MHz);
  EXPECT_DOUBLE_EQ(t.highest_under_power(100.0)->hz, 750 * MHz);
  EXPECT_DOUBLE_EQ(t.highest_under_power(9.0)->hz, 250 * MHz);
  EXPECT_FALSE(t.highest_under_power(8.9).has_value());
}

TEST(FrequencyTable, HighestUnderPowerAdmitsExactArithmeticBoundary) {
  // Power caps are usually derived arithmetically (budget / n, budget minus
  // the other grants) and can land an ulp below the point they intend to
  // admit.  kPowerSlackW must absorb that ulp: a cap that names a point
  // exactly selects it, while a cap meaningfully below still rejects it.
  const FrequencyTable t({
      {250 * MHz, 0.8, 0.1},
      {500 * MHz, 1.0, 0.2},
      {750 * MHz, 1.15, 0.3},
  });
  const double cap = 1.0 - 0.9;  // 0.0999...98, one ulp under 0.1
  ASSERT_LT(cap, 0.1);
  ASSERT_TRUE(t.highest_under_power(cap).has_value());
  EXPECT_DOUBLE_EQ(t.highest_under_power(cap)->hz, 250 * MHz);
  // Drift in the other direction must not promote past the boundary
  // point, and a genuinely lower cap still finds nothing.
  const double drift_up = 0.1 + 0.1 + 0.1;  // 0.300...04, just over 0.3
  EXPECT_DOUBLE_EQ(t.highest_under_power(drift_up)->hz, 750 * MHz);
  EXPECT_FALSE(t.highest_under_power(0.1 - 1e-6).has_value());
}

TEST(FrequencyTable, HighestUnderFrequency) {
  const FrequencyTable t = small_table();
  EXPECT_DOUBLE_EQ(t.highest_under_frequency(800 * MHz)->hz, 750 * MHz);
  EXPECT_DOUBLE_EQ(t.highest_under_frequency(250 * MHz)->hz, 250 * MHz);
  EXPECT_FALSE(t.highest_under_frequency(200 * MHz).has_value());
}

TEST(FrequencyTable, CeilPoint) {
  const FrequencyTable t = small_table();
  EXPECT_DOUBLE_EQ(t.ceil_point(600 * MHz).hz, 750 * MHz);
  EXPECT_DOUBLE_EQ(t.ceil_point(750 * MHz).hz, 750 * MHz);
  EXPECT_DOUBLE_EQ(t.ceil_point(0.0).hz, 250 * MHz);
  // Above the top: clamps to max.
  EXPECT_DOUBLE_EQ(t.ceil_point(2000 * MHz).hz, 1000 * MHz);
}

TEST(FrequencyTable, CappedAt) {
  const FrequencyTable t = small_table();
  const FrequencyTable capped = t.capped_at(750 * MHz);
  EXPECT_EQ(capped.size(), 3u);
  EXPECT_DOUBLE_EQ(capped.max_hz(), 750 * MHz);
  EXPECT_THROW(t.capped_at(100 * MHz), std::invalid_argument);
}

// ---- Property sweep over the full P630 table -----------------------------

class P630TableTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(P630TableTest, PowerAndVoltageMonotoneInFrequency) {
  const FrequencyTable t = p630_frequency_table();
  const std::size_t i = GetParam();
  if (i + 1 < t.size()) {
    EXPECT_LT(t[i].hz, t[i + 1].hz);
    EXPECT_LT(t[i].watts, t[i + 1].watts);
    EXPECT_LT(t[i].volts, t[i + 1].volts);
  }
}

TEST_P(P630TableTest, NextLowerInverts) {
  const FrequencyTable t = p630_frequency_table();
  const std::size_t i = GetParam();
  const auto lower = t.next_lower(t[i].hz);
  if (i == 0) {
    EXPECT_FALSE(lower.has_value());
  } else {
    ASSERT_TRUE(lower.has_value());
    EXPECT_DOUBLE_EQ(lower->hz, t[i - 1].hz);
  }
}

TEST_P(P630TableTest, HighestUnderOwnPowerIsSelf) {
  const FrequencyTable t = p630_frequency_table();
  const std::size_t i = GetParam();
  const auto point = t.highest_under_power(t[i].watts);
  ASSERT_TRUE(point.has_value());
  EXPECT_DOUBLE_EQ(point->hz, t[i].hz);
}

INSTANTIATE_TEST_SUITE_P(AllPoints, P630TableTest,
                         ::testing::Range<std::size_t>(0, 16));

}  // namespace
}  // namespace fvsst::mach
