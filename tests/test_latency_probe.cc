// Tests for the real-host latency probe (host/latency_probe.h).  These run
// real timed pointer chases, so assertions are kept loose enough for noisy
// CI machines while still catching broken plumbing.
#include "host/latency_probe.h"

#include <gtest/gtest.h>

namespace fvsst::host {
namespace {

TEST(LatencyProbe, ValidatesGeometry) {
  EXPECT_THROW(measure_chase_ns(64, 100, 64), std::invalid_argument);
  EXPECT_THROW(measure_chase_ns(1 << 20, 100, 4), std::invalid_argument);
  EXPECT_THROW(latency_curve(0, 1 << 20), std::invalid_argument);
  EXPECT_THROW(latency_curve(1 << 20, 1 << 10), std::invalid_argument);
  EXPECT_THROW(latencies_from_curve({}), std::invalid_argument);
}

TEST(LatencyProbe, MeasuresPlausibleCacheLatency) {
  // A 16 KiB chase lives in L1 on any machine this runs on: a dependent
  // load takes somewhere between a fraction of a ns and a few tens of ns.
  const double ns = measure_chase_ns(16 << 10, 1 << 18);
  EXPECT_GT(ns, 0.05);
  EXPECT_LT(ns, 100.0);
}

TEST(LatencyProbe, LargerWorkingSetsAreSlower) {
  // 16 KiB (L1) vs 64 MiB (beyond L2/L3 on all current CPUs): the memory
  // chase must be clearly slower.
  const double small = measure_chase_ns(16 << 10, 1 << 17);
  const double large = measure_chase_ns(64 << 20, 1 << 17);
  EXPECT_GT(large, 2.0 * small);
}

TEST(LatencyProbe, CurveIsOrderedAndMonotoneOverall) {
  const auto curve = latency_curve(16 << 10, 16 << 20, 1 << 16);
  ASSERT_GE(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].working_set_bytes,
              2 * curve[i - 1].working_set_bytes);
  }
  // Overall trend: the last point is slower than the first.
  EXPECT_GT(curve.back().ns_per_access, curve.front().ns_per_access);
}

TEST(LatencyProbe, DistilsOrderedConstants) {
  const auto curve = latency_curve(16 << 10, 64 << 20, 1 << 16);
  const auto lat = latencies_from_curve(curve);
  EXPECT_GT(lat.t_l2, 0.0);
  EXPECT_GE(lat.t_l3, lat.t_l2 * 0.9);   // allow measurement noise
  EXPECT_GE(lat.t_mem, lat.t_l3 * 0.9);
  EXPECT_GT(lat.t_mem, lat.t_l2);        // memory clearly above L2
  EXPECT_LT(lat.t_mem, 2e-6);            // sanity: < 2 us per access
}

}  // namespace
}  // namespace fvsst::host
