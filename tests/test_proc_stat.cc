// Tests for the /proc/stat utilisation reader (host/proc_stat.h).
#include "host/proc_stat.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fvsst::host {
namespace {

constexpr const char* kSample =
    "cpu  100 10 50 800 20 5 5 10 0 0\n"
    "cpu0 60 5 30 400 10 3 2 5 0 0\n"
    "cpu1 40 5 20 400 10 2 3 5 0 0\n"
    "intr 12345 0 0\n"
    "ctxt 999\n"
    "btime 1\n";

TEST(ProcStat, ParsesAggregateAndPerCpuRows) {
  std::istringstream in(kSample);
  const auto rows = parse_proc_stat(in);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].cpu, -1);
  EXPECT_EQ(rows[1].cpu, 0);
  EXPECT_EQ(rows[2].cpu, 1);
  EXPECT_EQ(rows[0].user, 100ull);
  EXPECT_EQ(rows[0].idle, 800ull);
  EXPECT_EQ(rows[1].busy(), 60ull + 5 + 30 + 3 + 2 + 5);
  EXPECT_EQ(rows[0].total(), rows[0].busy() + 800 + 20);
}

TEST(ProcStat, IgnoresNonCpuAndMalformedRows) {
  std::istringstream in("cpufreq 1 2 3\ncpu0 1 1 1 1 1 1 1 1\nfoo\n");
  const auto rows = parse_proc_stat(in);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].cpu, 0);
}

TEST(ProcStat, UtilizationBetweenSnapshots) {
  CpuTimes a, b;
  a.user = 100;
  a.idle = 900;
  b.user = 150;       // +50 busy
  b.idle = 950;       // +50 idle
  const auto u = utilization_between(a, b);
  ASSERT_TRUE(u.has_value());
  EXPECT_DOUBLE_EQ(*u, 0.5);
}

TEST(ProcStat, UtilizationEdgeCases) {
  CpuTimes a, b;
  a.user = 100;
  b.user = 100;
  EXPECT_FALSE(utilization_between(a, b).has_value());  // no time passed
  b.user = 50;                                          // went backwards
  EXPECT_FALSE(utilization_between(a, b).has_value());
}

TEST(ProcStat, MissingFileReturnsEmpty) {
  EXPECT_TRUE(read_proc_stat("/nonexistent-dir-xyz/stat").empty());
}

TEST(ProcStat, ReadsTheRealProcStatWhenPresent) {
  const auto rows = read_proc_stat();
  if (rows.empty()) {
    GTEST_SKIP() << "/proc/stat not available";
  }
  // Aggregate row exists and the counters are sane.
  EXPECT_EQ(rows.front().cpu, -1);
  EXPECT_GT(rows.front().total(), 0ull);
  // Live utilisation over a busy loop is measurable.
  const auto before = read_proc_stat();
  volatile double x = 1.0;
  for (int i = 0; i < 20000000; ++i) x = x * 1.0000001 + 0.1;
  const auto after = read_proc_stat();
  const auto u = utilization_between(before.front(), after.front());
  if (u.has_value()) {
    EXPECT_GE(*u, 0.0);
    EXPECT_LE(*u, 1.0);
  }
}

}  // namespace
}  // namespace fvsst::host
