// test_summary_tree - The tree's compressed summaries and the root's cap
// profile: integer exactness, merge-order independence, and the closed-form
// cap/promotion decision matching the budget from both sides.
#include "core/summary_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "mach/frequency_table.h"

namespace fvsst::core {
namespace {

mach::FrequencyTable four_points() {
  // Watts chosen integer so every expectation below is exact by hand.
  return mach::FrequencyTable({
      {250e6, 0.8, 5.0},
      {500e6, 0.9, 10.0},
      {750e6, 1.1, 20.0},
      {1000e6, 1.3, 40.0},
  });
}

ShardSummary make_summary(std::vector<std::uint32_t> desired,
                          const mach::FrequencyTable& table) {
  ShardSummary s;
  s.desired = std::move(desired);
  for (std::size_t b = 0; b < s.desired.size(); ++b) {
    s.cpus += s.desired[b];
    s.desired_power_uw +=
        static_cast<MicroWatts>(s.desired[b]) * to_microwatts(table[b].watts);
  }
  return s;
}

TEST(SummaryTree, MicrowattConversionIsExactForTableScaleValues) {
  EXPECT_EQ(to_microwatts(0.0), 0u);
  EXPECT_EQ(to_microwatts(5.0), 5'000'000u);
  EXPECT_EQ(to_microwatts(40.0), 40'000'000u);
  // Sub-microwatt differences round to the same bucket.
  EXPECT_EQ(to_microwatts(5.0 + 1e-9), to_microwatts(5.0));
}

TEST(SummaryTree, MergeIsExactAndOrderIndependent) {
  const mach::FrequencyTable table = four_points();
  std::mt19937 rng(7);
  std::vector<ShardSummary> parts;
  for (int i = 0; i < 16; ++i) {
    std::vector<std::uint32_t> d(table.size());
    for (auto& v : d) v = rng() % 40;
    parts.push_back(make_summary(std::move(d), table));
    parts.back().idle = rng() % 10;
    parts.back().round = 3;
  }

  // Merge in flat order, then in three shuffled orders: bit-identical.
  ShardSummary flat;
  for (const ShardSummary& p : parts) flat.merge(p);
  for (unsigned seed : {1u, 2u, 3u}) {
    std::vector<std::size_t> order(parts.size());
    std::iota(order.begin(), order.end(), 0u);
    std::shuffle(order.begin(), order.end(), std::mt19937(seed));
    ShardSummary shuffled;
    for (std::size_t i : order) shuffled.merge(parts[i]);
    EXPECT_EQ(shuffled.desired, flat.desired);
    EXPECT_EQ(shuffled.cpus, flat.cpus);
    EXPECT_EQ(shuffled.idle, flat.idle);
    EXPECT_EQ(shuffled.desired_power_uw, flat.desired_power_uw);
  }

  // And a two-level merge tree (the aggregate tier) gives the same total.
  ShardSummary left, right, tree;
  for (std::size_t i = 0; i < parts.size() / 2; ++i) left.merge(parts[i]);
  for (std::size_t i = parts.size() / 2; i < parts.size(); ++i)
    right.merge(parts[i]);
  tree.merge(left);
  tree.merge(right);
  EXPECT_EQ(tree.desired, flat.desired);
  EXPECT_EQ(tree.desired_power_uw, flat.desired_power_uw);
}

TEST(SummaryTree, AboveCountsStrictlyAboveTheCap) {
  const mach::FrequencyTable table = four_points();
  const ShardSummary s = make_summary({3, 5, 7, 11}, table);
  EXPECT_EQ(s.above(0), 5u + 7u + 11u);
  EXPECT_EQ(s.above(1), 7u + 11u);
  EXPECT_EQ(s.above(2), 11u);
  EXPECT_EQ(s.above(3), 0u);
}

TEST(SummaryTree, WireBytesGrowWithBucketCount) {
  const mach::FrequencyTable table = four_points();
  const ShardSummary s = make_summary({1, 1, 1, 1}, table);
  ShardSummary wide = s;
  wide.desired.resize(8, 0);
  EXPECT_GT(wide.wire_bytes(), s.wire_bytes());
}

TEST(CapProfile, UnconstrainedBudgetGrantsEveryDesire) {
  const mach::FrequencyTable table = four_points();
  const ShardSummary total = make_summary({0, 4, 4, 4}, table);
  const CapProfile p = compute_cap_profile(total, table, 1e6);
  EXPECT_TRUE(p.feasible);
  EXPECT_EQ(p.cap, table.size() - 1);
  EXPECT_EQ(p.promote, 0u);
  EXPECT_EQ(p.power_uw, total.desired_power_uw);
}

TEST(CapProfile, CapAndPromotionQuotaMeetTheBudgetFromBelow) {
  const mach::FrequencyTable table = four_points();
  // 8 CPUs all desiring the top point: desired power 8 * 40 = 320 W.
  const ShardSummary total = make_summary({0, 0, 0, 8}, table);
  // 8 * 20 = 160 W fits at cap 2; each promotion to index 3 adds 20 W.
  // Budget 205 W admits cap 2 plus exactly two promotions (200 W).
  const CapProfile p = compute_cap_profile(total, table, 205.0);
  EXPECT_TRUE(p.feasible);
  EXPECT_EQ(p.cap, 2u);
  EXPECT_EQ(p.promote, 2u);
  EXPECT_EQ(p.power_uw, to_microwatts(200.0));
}

TEST(CapProfile, ExactBudgetBoundaryIsAdmitted) {
  const mach::FrequencyTable table = four_points();
  const ShardSummary total = make_summary({0, 0, 0, 8}, table);
  // budget == 8 * 40 W exactly: the full desire must be admitted.
  const CapProfile p = compute_cap_profile(total, table, 320.0);
  EXPECT_TRUE(p.feasible);
  EXPECT_EQ(p.cap, table.size() - 1);
  EXPECT_EQ(p.power_uw, to_microwatts(320.0));
}

TEST(CapProfile, InfeasibleBudgetFloorsEveryCpu) {
  const mach::FrequencyTable table = four_points();
  const ShardSummary total = make_summary({0, 0, 0, 8}, table);
  // Even all-minimum is 8 * 5 = 40 W; a 30 W budget cannot be met.
  const CapProfile p = compute_cap_profile(total, table, 30.0);
  EXPECT_FALSE(p.feasible);
  EXPECT_EQ(p.cap, 0u);
  EXPECT_EQ(p.promote, 0u);
  EXPECT_EQ(p.power_uw, to_microwatts(40.0));
}

TEST(CapProfile, CapNeverExceedsAnyDesire) {
  // Desires below the cap are granted as-is (min(desired, cap)): the
  // profile power must account them at their own point, not the cap's.
  const mach::FrequencyTable table = four_points();
  const ShardSummary total = make_summary({4, 0, 0, 4}, table);
  // 4 idle-low at 5 W + 4 capped at 20 W = 100 W under a 110 W budget;
  // one promotion (+20 W) would overshoot, so promote stays 0.
  const CapProfile p = compute_cap_profile(total, table, 110.0);
  EXPECT_TRUE(p.feasible);
  EXPECT_EQ(p.cap, 2u);
  EXPECT_EQ(p.promote, 0u);
  EXPECT_EQ(p.power_uw, to_microwatts(100.0));
}

TEST(SplitQuota, GreedyPrefixInChildOrder) {
  const std::vector<std::uint64_t> above = {3, 0, 5, 2};
  const std::vector<std::uint64_t> split = split_quota(above, 6);
  ASSERT_EQ(split.size(), above.size());
  EXPECT_EQ(split[0], 3u);
  EXPECT_EQ(split[1], 0u);
  EXPECT_EQ(split[2], 3u);
  EXPECT_EQ(split[3], 0u);
  EXPECT_EQ(std::accumulate(split.begin(), split.end(), std::uint64_t{0}),
            6u);
}

TEST(SplitQuota, QuotaBeyondDemandIsCappedPerChild) {
  const std::vector<std::uint64_t> split = split_quota({2, 2}, 100);
  EXPECT_EQ(split[0], 2u);
  EXPECT_EQ(split[1], 2u);
}

TEST(SplitQuota, TwoLevelSplitMatchesFlatOrder) {
  // Splitting at the root over aggregates, then at each aggregate over its
  // leaves, must promote exactly the first m above-cap CPUs in flat order
  // — i.e. equal the single-level split over the concatenated leaves.
  const std::vector<std::uint64_t> leaves = {1, 4, 0, 2, 3, 1};
  for (std::uint64_t quota = 0; quota <= 12; ++quota) {
    const std::vector<std::uint64_t> flat = split_quota(leaves, quota);
    // Aggregates group contiguous leaf ranges: {0,1}, {2,3}, {4,5}.
    const std::vector<std::uint64_t> agg_above = {leaves[0] + leaves[1],
                                                  leaves[2] + leaves[3],
                                                  leaves[4] + leaves[5]};
    const std::vector<std::uint64_t> agg_split =
        split_quota(agg_above, quota);
    std::vector<std::uint64_t> two_level;
    for (std::size_t a = 0; a < 3; ++a) {
      const std::vector<std::uint64_t> inner = split_quota(
          {leaves[2 * a], leaves[2 * a + 1]}, agg_split[a]);
      two_level.insert(two_level.end(), inner.begin(), inner.end());
    }
    EXPECT_EQ(two_level, flat) << "quota " << quota;
  }
}

TEST(ApplyCapProfile, PromotesFirstComersAndCapsTheRest) {
  CapProfile p;
  p.cap = 1;
  std::vector<std::uint16_t> granted;
  // desired: {3, 0, 2, 3, 1}; above-cap CPUs in order: 0, 2, 3.
  apply_cap_profile({3, 0, 2, 3, 1}, p, /*quota=*/2, granted);
  ASSERT_EQ(granted.size(), 5u);
  EXPECT_EQ(granted[0], 2u);  // promoted to cap + 1
  EXPECT_EQ(granted[1], 0u);  // below cap: untouched
  EXPECT_EQ(granted[2], 2u);  // promoted
  EXPECT_EQ(granted[3], 1u);  // quota spent: capped
  EXPECT_EQ(granted[4], 1u);  // at cap already
}

}  // namespace
}  // namespace fvsst::core
