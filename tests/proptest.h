// proptest.h - A minimal property-based testing harness on top of GTest.
//
// run_seeded() drives a test body across a range of derived seeds.  When
// an iteration fails, the harness prints the failing seed and a one-line
// repro command, so a CI failure is reproducible locally without
// re-running the whole sweep:
//
//   [proptest] FAILING SEED 1007 -- repro: FVSST_CHAOS_SEED=1007 <hint>
//
// Environment overrides:
//   FVSST_CHAOS_SEED=N        run exactly the one seed N (debugging)
//   FVSST_CHAOS_ITERATIONS=N  override the iteration count (CI dials)
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

namespace fvsst::proptest {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value, &end, 0);
  return end && *end == '\0' ? parsed : fallback;
}

/// Runs `body(seed)` for seeds base_seed, base_seed + 1, ... and stops at
/// the first failing seed, printing it with a repro hint.  `repro_hint`
/// should name the test binary/filter to re-run with FVSST_CHAOS_SEED set.
inline void run_seeded(std::uint64_t base_seed, int iterations,
                       const std::string& repro_hint,
                       const std::function<void(std::uint64_t)>& body) {
  if (const char* pinned = std::getenv("FVSST_CHAOS_SEED");
      pinned && *pinned) {
    const std::uint64_t seed = std::strtoull(pinned, nullptr, 0);
    SCOPED_TRACE("FVSST_CHAOS_SEED=" + std::to_string(seed));
    body(seed);
    return;
  }
  const int n = static_cast<int>(env_u64(
      "FVSST_CHAOS_ITERATIONS", static_cast<std::uint64_t>(iterations)));
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    body(seed);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[proptest] FAILING SEED %llu -- repro: "
                   "FVSST_CHAOS_SEED=%llu %s\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed), repro_hint.c_str());
      return;
    }
  }
}

}  // namespace fvsst::proptest
