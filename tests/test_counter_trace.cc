// Tests for counter-trace capture/replay (cpu/counter_trace.h).
#include "cpu/counter_trace.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "mach/machine_config.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::cpu {
namespace {

namespace fs = std::filesystem;
using units::GHz;
using units::MHz;

const mach::MemoryLatencies kLat = mach::p630().latencies;

Core::Config quiet_config() {
  Core::Config cfg;
  cfg.latencies = kLat;
  cfg.max_hz = 1 * GHz;
  cfg.counter_noise_sigma = 0.0;
  cfg.execution_noise_sigma = 0.0;
  return cfg;
}

TEST(CounterTraceRecorder, CapturesIntervals) {
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  core.add_workload(workload::make_uniform_synthetic(40.0, 1e12));
  CounterTraceRecorder recorder(sim, core, 0.01, "t");
  sim.run_for(0.1001);
  const auto& trace = recorder.trace();
  EXPECT_EQ(trace.name, "t");
  ASSERT_EQ(trace.intervals.size(), 10u);
  for (const auto& iv : trace.intervals) {
    EXPECT_DOUBLE_EQ(iv.duration_s, 0.01);
    EXPECT_NEAR(iv.delta.cycles, 1e7, 1.0);
    EXPECT_GT(iv.delta.instructions, 0.0);
  }
}

TEST(CounterTrace, SerialisationRoundTrips) {
  CounterTrace trace;
  trace.name = "demo";
  CounterInterval iv;
  iv.duration_s = 0.01;
  iv.delta.instructions = 1.25e6;
  iv.delta.cycles = 1e7;
  iv.delta.l2_accesses = 5000;
  iv.delta.l3_accesses = 700;
  iv.delta.mem_accesses = 12345;
  trace.intervals = {iv, iv};
  const CounterTrace back =
      parse_counter_trace_string(format_counter_trace(trace));
  EXPECT_EQ(back.name, "demo");
  ASSERT_EQ(back.intervals.size(), 2u);
  EXPECT_DOUBLE_EQ(back.intervals[0].delta.mem_accesses, 12345);
  EXPECT_DOUBLE_EQ(back.intervals[1].delta.instructions, 1.25e6);
}

TEST(CounterTrace, ParserRejectsMalformed) {
  using workload::TraceParseError;
  EXPECT_THROW(parse_counter_trace_string(""), TraceParseError);
  EXPECT_THROW(parse_counter_trace_string("countertrace x\n"),
               TraceParseError);
  EXPECT_THROW(parse_counter_trace_string("interval 1 1 1 1 1 1\n"),
               TraceParseError);
  EXPECT_THROW(
      parse_counter_trace_string("countertrace x\ninterval 1 2 3\n"),
      TraceParseError);
  EXPECT_THROW(parse_counter_trace_string(
                   "countertrace x\ninterval -1 1 1 1 1 1\n"),
               TraceParseError);
  EXPECT_THROW(
      parse_counter_trace_string("countertrace x\nbanana\n"),
      TraceParseError);
}

TEST(CounterTrace, FileRoundTrip) {
  const fs::path dir = fs::temp_directory_path() / "fvsst_ctrace_test";
  fs::create_directories(dir);
  const fs::path file = dir / "c.trace";
  CounterTrace trace;
  trace.name = "file";
  trace.intervals.push_back({0.5, PerfCounters{1e6, 1e7, 10, 20, 30, 0}});
  save_counter_trace(file.string(), trace);
  const CounterTrace back = load_counter_trace(file.string());
  EXPECT_EQ(back.name, "file");
  EXPECT_DOUBLE_EQ(back.intervals.at(0).delta.l3_accesses, 20);
  fs::remove_all(dir);
  EXPECT_THROW(load_counter_trace("/nonexistent-dir-xyz/c.trace"),
               std::runtime_error);
}

TEST(CounterTrace, ReplayReproducesRecordedBehaviour) {
  // Capture a phased synthetic run, convert to a workload, replay it on a
  // fresh core: per-interval IPC and memory rates must match the capture.
  sim::Simulation sim;
  Core original(sim, quiet_config(), sim::Rng(1));
  workload::SyntheticParams params;
  params.phase1 = {100.0, 3e8};
  params.phase2 = {20.0, 1e8};
  original.add_workload(workload::make_synthetic(params));
  CounterTraceRecorder recorder(sim, original, 0.05, "cap");
  sim.run_for(2.0);

  const auto replay_spec =
      counter_trace_to_workload(recorder.trace(), kLat, /*loop=*/false);
  ASSERT_EQ(replay_spec.phases.size(), recorder.trace().intervals.size());

  // Compare over exactly the captured window: the replay of the trace
  // takes its recorded duration, and its counters must match the sums of
  // the recorded intervals.
  PerfCounters captured;
  double window = 0.0;
  for (const auto& iv : recorder.trace().intervals) {
    captured += iv.delta;
    window += iv.duration_s;
  }
  sim::Simulation sim2;
  Core replayed(sim2, quiet_config(), sim::Rng(2));
  replayed.add_workload(replay_spec);
  EXPECT_NEAR(replay_spec.duration_at(kLat, 1 * GHz), window,
              window * 0.001);
  sim2.run_for(window);

  const PerfCounters b = replayed.read_counters();
  EXPECT_NEAR(b.instructions / captured.instructions, 1.0, 0.005);
  EXPECT_NEAR(b.mem_accesses / captured.mem_accesses, 1.0, 0.005);
  EXPECT_NEAR(b.cycles / captured.cycles, 1.0, 0.005);
  EXPECT_NEAR(b.ipc() / captured.ipc(), 1.0, 0.005);
}

TEST(CounterTrace, IdleGapsBecomeFillerPhases) {
  CounterTrace trace;
  trace.name = "gappy";
  // A busy interval, an idle gap (no instructions), another busy one.
  trace.intervals.push_back({0.1, PerfCounters{1e8, 1e8, 1e5, 1e4, 1e5, 0}});
  trace.intervals.push_back({0.1, PerfCounters{0, 1e8, 0, 0, 0, 1e8}});
  trace.intervals.push_back({0.1, PerfCounters{1e8, 1e8, 1e5, 1e4, 1e5, 0}});
  const auto spec = counter_trace_to_workload(trace, kLat);
  ASSERT_EQ(spec.phases.size(), 3u);
  EXPECT_LT(spec.phases[1].alpha, 0.05);  // slow filler
  EXPECT_GT(spec.phases[1].instructions, 0.0);
}

}  // namespace
}  // namespace fvsst::cpu
