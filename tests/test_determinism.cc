// Reproducibility and system-level safety properties.
//
// Determinism matters for a simulator: every bench number in
// EXPERIMENTS.md must be reproducible bit-for-bit from its seed.  The
// budget property is the system's core safety claim: once the daemon has
// one scheduling round behind it, aggregate CPU power never exceeds the
// budget at any instant, for any workload mix.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst {
namespace {

using units::ms;

std::vector<double> run_trace(std::uint64_t seed,
                              sim::EventLog* journal = nullptr,
                              bool explain = false,
                              const sim::FaultPlan* fault_plan = nullptr) {
  sim::Simulation sim;
  sim::Rng rng(seed);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  workload::SyntheticParams params;
  params.phase1 = {100.0, 3e8};
  params.phase2 = {20.0, 1e8};
  cluster.core({0, 1}).add_workload(workload::make_synthetic(params));
  cluster.core({0, 2}).add_workload(
      workload::make_uniform_synthetic(50.0, 1e12));
  power::PowerBudget budget(300.0);
  core::DaemonConfig config;
  config.journal = journal;
  config.scheduler.explain = explain;
  config.fault_plan = fault_plan;
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, config);
  sim.run_for(3.0);
  std::vector<double> out;
  for (const auto& s : daemon.granted_freq_trace(1).samples()) {
    out.push_back(s.t);
    out.push_back(s.value);
  }
  for (const auto& s : daemon.measured_ipc_trace(2).samples()) {
    out.push_back(s.value);
  }
  return out;
}

TEST(Determinism, SameSeedBitIdenticalTraces) {
  const auto a = run_trace(12345);
  const auto b = run_trace(12345);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i], b[i]) << i;
  }
}

TEST(Determinism, JournalIsPurelyObservational) {
  // Recording (even with explain-mode rationale) must not perturb the run:
  // the granted/measured traces stay bit-for-bit identical with the
  // journal off, on, and on-with-explain.
  const auto off = run_trace(777);
  sim::EventLog journal;
  const auto on = run_trace(777, &journal);
  sim::EventLog explained;
  const auto on_explained = run_trace(777, &explained, /*explain=*/true);
  EXPECT_FALSE(journal.empty());
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_DOUBLE_EQ(off[i], on[i]) << i;
  }
  ASSERT_EQ(off.size(), on_explained.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_DOUBLE_EQ(off[i], on_explained[i]) << i;
  }
  // And the two recorded runs made identical decisions.
  EXPECT_TRUE(sim::diff_journals(journal, explained).identical_decisions());
}

// Deep event comparison ignoring the wall-clock stage timings (estimate_s
// / policy_s / actuate_s on actuation events), which are real host time
// and legitimately differ between any two runs.
void expect_journals_identical(const sim::EventLog& a, const sim::EventLog& b) {
  auto is_wall_clock = [](const std::string& key) {
    return key == "estimate_s" || key == "policy_s" || key == "actuate_s";
  };
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const sim::Event& ea = a.events()[i];
    const sim::Event& eb = b.events()[i];
    ASSERT_EQ(ea.type, eb.type) << "event " << i;
    ASSERT_DOUBLE_EQ(ea.t, eb.t) << "event " << i;
    ASSERT_EQ(ea.cpu, eb.cpu) << "event " << i;
    ASSERT_EQ(ea.num.size(), eb.num.size()) << "event " << i;
    for (std::size_t k = 0; k < ea.num.size(); ++k) {
      ASSERT_EQ(ea.num[k].first, eb.num[k].first) << "event " << i;
      if (is_wall_clock(ea.num[k].first)) continue;
      ASSERT_DOUBLE_EQ(ea.num[k].second, eb.num[k].second)
          << "event " << i << " key " << ea.num[k].first;
    }
    ASSERT_EQ(ea.str, eb.str) << "event " << i;
  }
}

TEST(Determinism, EmptyFaultPlanIsBitForBitInert) {
  // Wiring an empty plan (even a seeded one) must leave every trace sample
  // and every journal event identical to an unwired run: fault queries are
  // stateless hashes and an empty plan is never consulted.
  const sim::FaultPlan empty_plan(987654321);
  ASSERT_TRUE(empty_plan.empty());

  const auto bare = run_trace(9001);
  const auto wired = run_trace(9001, nullptr, false, &empty_plan);
  ASSERT_EQ(bare.size(), wired.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    ASSERT_DOUBLE_EQ(bare[i], wired[i]) << i;
  }

  sim::EventLog bare_journal;
  run_trace(9001, &bare_journal);
  sim::EventLog wired_journal;
  run_trace(9001, &wired_journal, false, &empty_plan);
  expect_journals_identical(bare_journal, wired_journal);
}

TEST(Determinism, FaultedRunsAreReproducible) {
  // Fault injection must not cost determinism: the same plan against the
  // same seed gives bit-identical traces and identical journals.  The plan
  // exercises both engine fault paths: rejected writes (retry + fail-safe)
  // and sim-scheduled delayed writes.
  sim::FaultPlan plan(7);
  plan.add({sim::FaultKind::kActuationReject, 0.5, 1.0, /*target=*/1, 0.0});
  plan.add({sim::FaultKind::kActuationDelay, 1.2, 1.8, /*target=*/2, 0.004});

  const auto a = run_trace(555, nullptr, false, &plan);
  const auto b = run_trace(555, nullptr, false, &plan);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i], b[i]) << i;
  }

  sim::EventLog ja;
  run_trace(555, &ja, false, &plan);
  sim::EventLog jb;
  run_trace(555, &jb, false, &plan);
  expect_journals_identical(ja, jb);
  // And faults actually fired, so the inertness above is not vacuous.
  bool saw_fault = false;
  for (const sim::Event& e : ja.events()) {
    saw_fault = saw_fault || e.type == sim::EventType::kFault;
  }
  EXPECT_TRUE(saw_fault);
}

TEST(Determinism, DifferentSeedsDiffer) {
  const auto a = run_trace(1);
  const auto b = run_trace(2);
  // Noise differs, so the measured-IPC tail almost surely differs.
  EXPECT_NE(a, b);
}

// Safety property: power compliance at every sensor sample after the first
// scheduling round, across random workload mixes and budgets.
class BudgetCompliance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BudgetCompliance, NeverExceedsBudgetAfterFirstRound) {
  sim::Simulation sim;
  sim::Rng rng(GetParam());
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  for (std::size_t c = 0; c < 4; ++c) {
    if (rng.bernoulli(0.75)) {
      cluster.core({0, c}).add_workload(workload::make_uniform_synthetic(
          rng.uniform(0.0, 100.0), 1e12));
    }
  }
  // Feasible budget: at least the 4-CPU floor.
  power::PowerBudget budget(rng.uniform(40.0, 560.0));
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget,
                           core::DaemonConfig{});
  sim.run_for(0.101);  // one full scheduling round (T = 100 ms)

  double worst_over = 0.0;
  sim.schedule_every(7 * ms, [&] {
    worst_over = std::max(
        worst_over, cluster.cpu_power_w() - budget.effective_limit_w());
  });
  // Mid-run budget drop must also hold after its trigger fires.
  const double drop = rng.uniform(40.0, budget.limit_w());
  sim.schedule_at(1.0, [&, drop] {
    worst_over = 0.0;  // reset; the drop takes one trigger to apply
    budget.set_limit_w(drop);
  });
  sim.schedule_at(1.0005, [&] { worst_over = 0.0; });  // after the trigger
  sim.run_for(2.0);
  EXPECT_LE(worst_over, 1e-9) << "budget " << budget.effective_limit_w();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetCompliance,
                         ::testing::Range<std::uint64_t>(1000, 1016));

}  // namespace
}  // namespace fvsst
