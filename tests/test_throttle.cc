// Tests for the fetch-throttling model (cpu/throttle.h).
#include "cpu/throttle.h"

#include <gtest/gtest.h>

#include "simkit/units.h"

namespace fvsst::cpu {
namespace {

using units::GHz;
using units::MHz;

TEST(Throttle, IdealModePassesThrough) {
  const ThrottleModel m(ScalingMode::kIdealDvfs);
  EXPECT_DOUBLE_EQ(m.effective_hz(123.456 * MHz), 123.456 * MHz);
  EXPECT_DOUBLE_EQ(m.effective_hz(1 * GHz), 1 * GHz);
}

TEST(Throttle, FetchModeValidation) {
  EXPECT_THROW(ThrottleModel(ScalingMode::kFetchThrottle, 0.0, 32),
               std::invalid_argument);
  EXPECT_THROW(ThrottleModel(ScalingMode::kFetchThrottle, 1 * GHz, 0),
               std::invalid_argument);
}

TEST(Throttle, ExactDutyStepsPassThrough) {
  // 32 steps at 1 GHz: multiples of 31.25 MHz are exact.
  const ThrottleModel m(ScalingMode::kFetchThrottle, 1 * GHz, 32);
  EXPECT_DOUBLE_EQ(m.effective_hz(1 * GHz), 1 * GHz);
  EXPECT_DOUBLE_EQ(m.effective_hz(500 * MHz), 500 * MHz);
  EXPECT_DOUBLE_EQ(m.effective_hz(250 * MHz), 250 * MHz);
}

TEST(Throttle, NeverExceedsRequest) {
  const ThrottleModel m(ScalingMode::kFetchThrottle, 1 * GHz, 32);
  for (double mhz = 250; mhz <= 1000; mhz += 50) {
    EXPECT_LE(m.effective_hz(mhz * MHz), mhz * MHz + 1e-6) << mhz;
  }
}

TEST(Throttle, QuantisationErrorBoundedByOneStep) {
  const ThrottleModel m(ScalingMode::kFetchThrottle, 1 * GHz, 32);
  const double step = 1e9 / 32.0;
  for (double mhz = 250; mhz <= 1000; mhz += 10) {
    const double got = m.effective_hz(mhz * MHz);
    EXPECT_LE(mhz * MHz - got, step + 1e-6) << mhz;
  }
}

TEST(Throttle, MonotoneInRequest) {
  const ThrottleModel m(ScalingMode::kFetchThrottle, 1 * GHz, 32);
  double prev = 0.0;
  for (double mhz = 100; mhz <= 1000; mhz += 5) {
    const double got = m.effective_hz(mhz * MHz);
    EXPECT_GE(got, prev - 1e-6);
    prev = got;
  }
}

}  // namespace
}  // namespace fvsst::cpu
