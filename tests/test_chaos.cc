// Property-based chaos harness: seeded random fault scenarios against the
// SMP daemon and the cluster daemon, asserting the invariants the
// inspector checks plus recovery once every fault window has closed.
//
// Each scenario derives everything — workload mix, budget, and the fault
// plan itself — from one seed, so a CI failure reproduces locally with
//   FVSST_CHAOS_SEED=<seed> ./tests/test_chaos
// (see tests/proptest.h; FVSST_CHAOS_ITERATIONS dials the sweep width).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "baselines/optimal.h"
#include "baselines/policies.h"
#include "cluster/cluster.h"
#include "core/cluster_daemon.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "power/sensor.h"
#include "proptest.h"
#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst {
namespace {

using units::ms;

std::size_t count_type(const sim::EventLog& log, sim::EventType type) {
  std::size_t n = 0;
  for (const sim::Event& e : log.events()) n += e.type == type;
  return n;
}

/// A PolicyStageFactory running the named comparator policy through the
/// live engine (fvsst_sim --policy's wiring, minus the CLI).
core::PolicyStageFactory chaos_policy_factory(const std::string& name) {
  return [name](const mach::FrequencyTable&, const mach::MemoryLatencies&,
                const core::FrequencyScheduler::Options& opts)
             -> std::unique_ptr<core::PolicyStage> {
    return std::make_unique<baselines::PolicyStageAdapter>(
        baselines::make_policy(name, opts));
  };
}

/// Seed-based rotation through the decision stages under test: the paper's
/// scheduler plus the two optimization baselines.  The retry/fail-safe
/// machinery lives in the engine, so every stage must survive the same
/// faults with the same invariants.
core::PolicyStageFactory rotated_policy_factory(std::uint64_t seed) {
  switch (seed % 3) {
    case 1: return chaos_policy_factory("two-freq-split");
    case 2: return chaos_policy_factory("lp-optimal");
    default: return {};  // the default SchedulerPolicyStage
  }
}

// --- Random SMP scenarios -------------------------------------------------

// One seeded SMP scenario: random workloads and budget, a random fault
// plan mixing sensor and actuation faults, run long enough that every
// fault window closes with headroom for recovery.
void run_smp_scenario(std::uint64_t seed) {
  constexpr double kDuration = 1.2;
  sim::Simulation simulation;
  sim::Rng rng(seed);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(simulation, machine, 1, rng);
  for (std::size_t c = 0; c < cluster.cpu_count(); ++c) {
    if (rng.bernoulli(0.8)) {
      cluster.core({0, c}).add_workload(
          workload::make_uniform_synthetic(rng.uniform(5.0, 100.0), 1e12));
    }
  }

  sim::RandomPlanOptions plan_opts;
  plan_opts.cpus = cluster.cpu_count();
  plan_opts.duration_s = kDuration;
  // The transport-level channel kinds are inert on an SMP daemon (there is
  // no cluster channel to fault), but they must rotate through the pool
  // without perturbing any invariant.
  plan_opts.transport_faults = true;
  const sim::FaultPlan plan = sim::FaultPlan::random(seed, plan_opts);
  ASSERT_FALSE(plan.empty());
  // random() keeps every window inside the recovery fraction, so the tail
  // of the run observes the recovered system.
  ASSERT_LE(plan.last_end_s(), plan_opts.recovery_fraction * kDuration + 1e-9);

  // Always feasible: 4 CPUs at the table floor cost 36 W.
  power::PowerBudget budget(rng.uniform(45.0, 560.0));
  sim::EventLog journal;
  core::DaemonConfig config;
  config.journal = &journal;
  config.fault_plan = &plan;
  config.policy_factory = rotated_policy_factory(seed);
  core::FvsstDaemon daemon(simulation, cluster, machine.freq_table, budget,
                           config);
  power::PowerSensor sensor(simulation, [&] { return cluster.cpu_power_w(); },
                            5 * ms);
  sensor.set_fault_plan(&plan, &journal);
  simulation.run_for(kDuration);

  // The inspector's invariants hold on the faulted journal: power claimed
  // compliant is compliant, grants are table points at table-minimum
  // voltage (degraded pins included), T restarts on budget triggers.
  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_GT(report.checks_run, 0u);

  // Recovery: all fault windows closed >= 0.4 * duration ago, so no CPU is
  // still degraded or mid-retry and actual power obeys the budget again.
  EXPECT_EQ(daemon.loop().degraded_cpu_count(), 0u);
  EXPECT_EQ(daemon.loop().retrying_cpu_count(), 0u);
  if (daemon.last_result().feasible) {
    EXPECT_LE(cluster.cpu_power_w(), budget.effective_limit_w() + 1e-9);
  }

  // The faulted sensor never produced a physically impossible reading.
  EXPECT_GE(sensor.last_sample_w(), 0.0);
  EXPECT_TRUE(std::isfinite(sensor.mean_power_w()));
  EXPECT_GE(sensor.mean_power_w(), 0.0);
}

TEST(ChaosSmp, SeededScenariosKeepInvariantsAndRecover) {
  proptest::run_seeded(9000, 32,
                       "./tests/test_chaos "
                       "--gtest_filter=ChaosSmp.*",
                       run_smp_scenario);
}

// --- Random cluster scenarios ---------------------------------------------

// One seeded cluster scenario: channel-loss bursts, node crash/restart and
// stale summaries against the distributed daemon.
void run_cluster_scenario(std::uint64_t seed) {
  constexpr double kDuration = 1.5;
  sim::Simulation simulation;
  sim::Rng rng(seed);
  const mach::MachineConfig machine = mach::p630();
  const std::size_t nodes = 2 + static_cast<std::size_t>(rng.uniform_int(0, 1));
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(simulation, machine, nodes, rng);
  for (std::size_t n = 0; n < nodes; ++n) {
    for (std::size_t c = 0; c < cluster.node(n).cpu_count(); ++c) {
      if (rng.bernoulli(0.7)) {
        cluster.core({n, c}).add_workload(
            workload::make_uniform_synthetic(rng.uniform(5.0, 100.0), 1e12));
      }
    }
  }

  sim::RandomPlanOptions plan_opts;
  plan_opts.cpus = cluster.cpu_count();
  plan_opts.nodes = nodes;
  plan_opts.duration_s = kDuration;
  plan_opts.sensor_faults = false;
  plan_opts.actuation_faults = false;
  plan_opts.cluster_faults = true;
  plan_opts.transport_faults = true;
  const sim::FaultPlan plan = sim::FaultPlan::random(seed, plan_opts);
  ASSERT_FALSE(plan.empty());
  ASSERT_LE(plan.last_end_s(), plan_opts.recovery_fraction * kDuration + 1e-9);

  power::PowerBudget budget(
      rng.uniform(static_cast<double>(nodes) * 60.0,
                  static_cast<double>(nodes) * 560.0));
  sim::EventLog journal;
  core::ClusterDaemonConfig config;
  config.journal = &journal;
  config.fault_plan = &plan;
  config.policy_factory = rotated_policy_factory(seed);
  // Both transport modes must survive the same adversarial channels: the
  // reliable session layer by repair, the datagram path by the next
  // round's natural retry.
  config.transport = seed % 2 == 0 ? cluster::TransportMode::kReliable
                                   : cluster::TransportMode::kDatagram;
  core::ClusterDaemon daemon(simulation, cluster, machine.freq_table, budget,
                             config);
  simulation.run_for(kDuration);

  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());

  // Recovery: crashed nodes restarted and resumed summaries long enough
  // ago that silent-node accounting has stood down everywhere.
  EXPECT_EQ(daemon.stale_node_count(), 0u);

  // Every lost message was journalled, and vice versa (the configured
  // channel loss probability is zero, so only faults lose messages).
  EXPECT_EQ(count_type(journal, sim::EventType::kMessageLost),
            daemon.messages_lost());
}

TEST(ChaosCluster, SeededScenariosKeepInvariantsAndRecover) {
  proptest::run_seeded(7000, 20,
                       "./tests/test_chaos "
                       "--gtest_filter=ChaosCluster.*",
                       run_cluster_scenario);
}

// --- Random failover scenarios --------------------------------------------

// One seeded failover scenario: coordinator crashes and partitions (on top
// of the cluster kinds) against a daemon with the full protection stack —
// standby election, epoch fencing and the node-local fail-safe.
void run_failover_scenario(std::uint64_t seed) {
  constexpr double kDuration = 2.5;
  sim::Simulation simulation;
  sim::Rng rng(seed);
  const mach::MachineConfig machine = mach::p630();
  const std::size_t nodes = 2 + static_cast<std::size_t>(rng.uniform_int(0, 1));
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(simulation, machine, nodes, rng);
  for (std::size_t n = 0; n < nodes; ++n) {
    for (std::size_t c = 0; c < cluster.node(n).cpu_count(); ++c) {
      if (rng.bernoulli(0.7)) {
        cluster.core({n, c}).add_workload(
            workload::make_uniform_synthetic(rng.uniform(5.0, 100.0), 1e12));
      }
    }
  }

  sim::RandomPlanOptions plan_opts;
  plan_opts.cpus = cluster.cpu_count();
  plan_opts.nodes = nodes;
  plan_opts.duration_s = kDuration;
  plan_opts.sensor_faults = false;
  plan_opts.actuation_faults = false;
  plan_opts.cluster_faults = true;
  plan_opts.coordinator_faults = true;
  plan_opts.transport_faults = true;
  const sim::FaultPlan plan = sim::FaultPlan::random(seed, plan_opts);
  ASSERT_FALSE(plan.empty());

  power::PowerBudget budget(
      rng.uniform(static_cast<double>(nodes) * 60.0,
                  static_cast<double>(nodes) * 560.0));
  sim::EventLog journal;
  core::ClusterDaemonConfig config;
  config.journal = &journal;
  config.fault_plan = &plan;
  config.policy_factory = rotated_policy_factory(seed);
  config.failover.standby = true;
  config.failover.node_failsafe_factor = 2.0;
  // Rotate the session layer through coordinator failover: retransmit
  // queues must drain across epochs without resurrecting a deposed
  // leader's settings.
  config.transport = seed % 2 == 0 ? cluster::TransportMode::kReliable
                                   : cluster::TransportMode::kDatagram;
  core::ClusterDaemon daemon(simulation, cluster, machine.freq_table, budget,
                             config);
  simulation.run_for(kDuration);

  // Every invariant check, epoch fencing and failover-window compliance
  // included, holds no matter how the coordinators died.
  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());

  // Recovery: silent-node accounting and the node fail-safe have both
  // stood down, and every crashed coordinator restarted.
  EXPECT_EQ(daemon.stale_node_count(), 0u);
  EXPECT_EQ(daemon.failsafe_node_count(), 0u);
  EXPECT_FALSE(daemon.primary().crashed());
  EXPECT_EQ(count_type(journal, sim::EventType::kMessageLost),
            daemon.messages_lost());
  EXPECT_EQ(count_type(journal, sim::EventType::kSettingsRejected),
            daemon.settings_rejected());
}

TEST(ChaosFailover, SeededScenariosKeepInvariantsAndRecover) {
  proptest::run_seeded(11000, 20,
                       "./tests/test_chaos "
                       "--gtest_filter=ChaosFailover.*",
                       run_failover_scenario);
}

// --- Deterministic acceptance: the actuation fail-safe --------------------

// A CPU whose frequency writes are rejected must be retried with backoff,
// escalated to an f_min fail-safe grant, kept inside the power budget the
// whole time, and recovered within about one scheduling period T of the
// fault clearing.
TEST(ChaosFailSafe, RejectedWritesEscalateToFminAndRecover) {
  constexpr double kFaultStart = 0.25;
  constexpr double kFaultEnd = 0.62;
  sim::Simulation simulation;
  sim::Rng rng(11);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(simulation, machine, 1, rng);
  for (std::size_t c = 0; c < cluster.cpu_count(); ++c) {
    cluster.core({0, c}).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  sim::FaultPlan plan(1);
  plan.add({sim::FaultKind::kActuationReject, kFaultStart, kFaultEnd,
            /*target=*/1, 0.0});

  power::PowerBudget budget(500.0);
  sim::EventLog journal;
  core::DaemonConfig config;
  config.journal = &journal;
  config.fault_plan = &plan;
  core::FvsstDaemon daemon(simulation, cluster, machine.freq_table, budget,
                           config);

  // Aggregate power compliance at every probe instant after the first
  // scheduling round — through the fault, the fail-safe, and recovery.
  simulation.run_for(0.101);
  double worst_over = 0.0;
  simulation.schedule_every(7 * ms, [&] {
    worst_over = std::max(
        worst_over, cluster.cpu_power_w() - budget.effective_limit_w());
  });
  simulation.run_for(1.2 - 0.101);

  EXPECT_LE(worst_over, 1e-9);
  EXPECT_EQ(daemon.loop().degraded_cpu_count(), 0u);
  EXPECT_EQ(daemon.loop().retrying_cpu_count(), 0u);
  EXPECT_TRUE(sim::check_journal(journal).ok());

  // Journal sequence for cpu 1: reject attempts counting up, then the
  // degraded-mode f_min fail-safe, then exit + recovery once the fault
  // window closes.
  double last_attempt = 0.0;
  bool saw_failsafe_enter = false;
  bool saw_failsafe_exit = false;
  double recovered_at = -1.0;
  const double f_min = machine.freq_table.min_hz();
  for (const sim::Event& e : journal.events()) {
    if (e.cpu != 1) continue;
    if (e.type == sim::EventType::kFault) {
      const std::string* kind = e.find_str("kind");
      if (!kind || *kind != "actuation_reject") continue;
      const std::string* state = e.find_str("state");
      if (state && *state == "exit") {
        recovered_at = e.t;
        EXPECT_TRUE(e.has_num("recovered_hz"));
      } else {
        // Attempts never go backwards.  A scheduling cycle whose own write
        // is rejected re-journals the in-flight attempt count, so equal
        // neighbours are legitimate; only timer retries increment.
        EXPECT_GE(e.num_or("attempt"), last_attempt);
        last_attempt = e.num_or("attempt");
        EXPECT_GE(e.t, kFaultStart);
        EXPECT_LT(e.t, kFaultEnd);
      }
    } else if (e.type == sim::EventType::kDegradedMode) {
      const std::string* state = e.find_str("state");
      ASSERT_NE(state, nullptr);
      ASSERT_NE(e.find_str("reason"), nullptr);
      EXPECT_EQ(*e.find_str("reason"), "actuation_failsafe");
      if (*state == "enter") {
        saw_failsafe_enter = true;
        // The fail-safe grant is the table minimum frequency.
        EXPECT_DOUBLE_EQ(e.num_or("hz"), f_min);
      } else {
        saw_failsafe_exit = true;
      }
    }
  }
  // The retry budget (3) was exhausted before escalation.
  EXPECT_GE(last_attempt, 4.0);
  EXPECT_TRUE(saw_failsafe_enter);
  EXPECT_TRUE(saw_failsafe_exit);
  // Recovery within about one scheduling period T (100 ms) of the window
  // closing.
  ASSERT_GE(recovered_at, kFaultEnd);
  EXPECT_LE(recovered_at, kFaultEnd + 0.1 + 1e-9);
}

// The fail-safe is engine machinery, not scheduler machinery: with either
// optimization baseline driving the decisions, a CPU whose writes are
// rejected must still escalate to the f_min pin, stay budget-compliant
// throughout, and recover once the window closes.
TEST(ChaosFailSafe, OptimizationPoliciesStillPinFmin) {
  for (const std::string policy : {"two-freq-split", "lp-optimal"}) {
    SCOPED_TRACE(policy);
    constexpr double kFaultStart = 0.25;
    constexpr double kFaultEnd = 0.62;
    sim::Simulation simulation;
    sim::Rng rng(11);
    const mach::MachineConfig machine = mach::p630();
    cluster::Cluster cluster =
        cluster::Cluster::homogeneous(simulation, machine, 1, rng);
    for (std::size_t c = 0; c < cluster.cpu_count(); ++c) {
      cluster.core({0, c}).add_workload(
          workload::make_uniform_synthetic(100.0, 1e12));
    }
    sim::FaultPlan plan(1);
    plan.add({sim::FaultKind::kActuationReject, kFaultStart, kFaultEnd,
              /*target=*/1, 0.0});

    power::PowerBudget budget(500.0);
    sim::EventLog journal;
    core::DaemonConfig config;
    config.journal = &journal;
    config.fault_plan = &plan;
    config.policy_factory = chaos_policy_factory(policy);
    core::FvsstDaemon daemon(simulation, cluster, machine.freq_table, budget,
                             config);

    simulation.run_for(0.101);
    double worst_over = 0.0;
    simulation.schedule_every(7 * ms, [&] {
      worst_over = std::max(
          worst_over, cluster.cpu_power_w() - budget.effective_limit_w());
    });
    simulation.run_for(1.2 - 0.101);

    EXPECT_LE(worst_over, 1e-9);
    EXPECT_EQ(daemon.loop().degraded_cpu_count(), 0u);
    EXPECT_EQ(daemon.loop().retrying_cpu_count(), 0u);
    EXPECT_TRUE(sim::check_journal(journal).ok());

    bool saw_failsafe_enter = false;
    bool saw_failsafe_exit = false;
    const double f_min = machine.freq_table.min_hz();
    for (const sim::Event& e : journal.events()) {
      if (e.cpu != 1 || e.type != sim::EventType::kDegradedMode) continue;
      const std::string* state = e.find_str("state");
      ASSERT_NE(state, nullptr);
      EXPECT_EQ(*e.find_str("reason"), "actuation_failsafe");
      if (*state == "enter") {
        saw_failsafe_enter = true;
        EXPECT_DOUBLE_EQ(e.num_or("hz"), f_min);
      } else {
        saw_failsafe_exit = true;
      }
    }
    EXPECT_TRUE(saw_failsafe_enter);
    EXPECT_TRUE(saw_failsafe_exit);
  }
}

// --- Deterministic acceptance: sensor hold-last-known-good ----------------

TEST(ChaosSensor, DropoutHoldsLastKnownGoodReading) {
  sim::Simulation simulation;
  double watts = 120.0;
  sim::FaultPlan plan(2);
  plan.add({sim::FaultKind::kSensorDropout, 0.3, 0.6, /*target=*/0, 0.0});

  sim::EventLog journal;
  power::PowerSensor sensor(simulation, [&] { return watts; }, 10 * ms);
  sensor.set_fault_plan(&plan, &journal);

  // The underlying power moves inside the dropout window; the sensor must
  // hold 120 W (its last known-good reading) until the window closes.
  simulation.schedule_at(0.4, [&] { watts = 300.0; });
  simulation.run_for(0.5);
  EXPECT_DOUBLE_EQ(sensor.last_sample_w(), 120.0);
  EXPECT_GT(sensor.faulted_samples(), 0u);

  simulation.run_for(0.2);  // past the window: live readings again
  EXPECT_DOUBLE_EQ(sensor.last_sample_w(), 300.0);

  // The fault window was journalled as an enter/exit pair.
  ASSERT_EQ(count_type(journal, sim::EventType::kFault), 2u);
  const sim::Event& enter = journal.events()[0];
  ASSERT_NE(enter.find_str("kind"), nullptr);
  EXPECT_EQ(*enter.find_str("kind"), "sensor_dropout");
  ASSERT_NE(enter.find_str("state"), nullptr);
  EXPECT_EQ(*enter.find_str("state"), "enter");
}

// --- Deterministic acceptance: silent cluster node ------------------------

TEST(ChaosClusterCrash, SilentNodeAccountedAtFmaxUntilRestart) {
  constexpr double kCrashStart = 0.2;
  constexpr double kCrashEnd = 0.7;
  sim::Simulation simulation;
  sim::Rng rng(21);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(simulation, machine, 2, rng);
  for (std::size_t n = 0; n < 2; ++n) {
    cluster.core({n, 0}).add_workload(
        workload::make_uniform_synthetic(80.0, 1e12));
  }
  sim::FaultPlan plan(3);
  plan.add({sim::FaultKind::kNodeCrash, kCrashStart, kCrashEnd, /*target=*/1,
            0.0});

  power::PowerBudget budget(800.0);
  sim::EventLog journal;
  core::ClusterDaemonConfig config;
  config.journal = &journal;
  config.fault_plan = &plan;
  core::ClusterDaemon daemon(simulation, cluster, machine.freq_table, budget,
                             config);

  // Silent-node detection trips after 3 * T = 300 ms without a summary, so
  // node 1 is stale by 0.65 and recovered well before the run ends.
  std::size_t stale_mid_crash = 0;
  simulation.schedule_at(0.65, [&] { stale_mid_crash = daemon.stale_node_count(); });
  simulation.run_for(1.3);

  EXPECT_EQ(stale_mid_crash, 1u);
  EXPECT_EQ(daemon.stale_node_count(), 0u);
  EXPECT_TRUE(sim::check_journal(journal).ok());

  // Settings fanned out during the crash were lost and journalled as such.
  bool saw_crash_loss = false;
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kMessageLost) continue;
    const std::string* cause = e.find_str("cause");
    if (cause && *cause == "node_crash") saw_crash_loss = true;
  }
  EXPECT_TRUE(saw_crash_loss);
  EXPECT_GT(daemon.messages_lost(), 0u);

  // The node's silence entered and exited degraded mode in the journal.
  bool saw_silent_enter = false;
  bool saw_silent_exit = false;
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kDegradedMode) continue;
    const std::string* reason = e.find_str("reason");
    if (!reason || *reason != "node_silent") continue;
    const std::string* state = e.find_str("state");
    ASSERT_NE(state, nullptr);
    if (*state == "enter") saw_silent_enter = true;
    if (*state == "exit") saw_silent_exit = true;
  }
  EXPECT_TRUE(saw_silent_enter);
  EXPECT_TRUE(saw_silent_exit);
}

}  // namespace
}  // namespace fvsst
