// Tests for the counter sampler (cpu/sampler.h).
#include "cpu/sampler.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::cpu {
namespace {

using units::GHz;
using units::ms;

Core::Config quiet_config() {
  Core::Config cfg;
  cfg.latencies = mach::p630().latencies;
  cfg.max_hz = 1 * GHz;
  cfg.counter_noise_sigma = 0.0;
  cfg.execution_noise_sigma = 0.0;
  return cfg;
}

TEST(CounterSampler, DeltasCoverOneInterval) {
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  core.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  CounterSampler sampler(sim, core, 10 * ms);
  sim.run_for(0.1001);
  EXPECT_EQ(sampler.samples(), 10u);
  // One 10 ms interval at 1 GHz = 1e7 cycles.
  EXPECT_NEAR(sampler.last_interval().cycles, 1e7, 1.0);
}

TEST(CounterSampler, AggregateAccumulatesAndResets) {
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  core.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  CounterSampler sampler(sim, core, 10 * ms);
  sim.run_for(0.1001);
  EXPECT_NEAR(sampler.aggregate().cycles, 1e8, 10.0);
  const PerfCounters agg = sampler.take_aggregate();
  EXPECT_NEAR(agg.cycles, 1e8, 10.0);
  EXPECT_DOUBLE_EQ(sampler.aggregate().cycles, 0.0);
  sim.run_for(0.05);
  EXPECT_NEAR(sampler.aggregate().cycles, 5e7, 10.0);
}

TEST(CounterSampler, StopsAfterDestruction) {
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  {
    CounterSampler sampler(sim, core, 10 * ms);
    sim.run_for(0.05);
  }
  // No events left over from the destroyed sampler.
  sim.run_for(1.0);
  SUCCEED();
}

TEST(CounterSampler, SeesFrequencyChanges) {
  sim::Simulation sim;
  Core core(sim, quiet_config(), sim::Rng(1));
  core.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  CounterSampler sampler(sim, core, 10 * ms);
  sim.run_for(0.1001);
  const double cycles_fast = sampler.last_interval().cycles;
  core.set_frequency(500e6);
  sim.run_for(0.05);
  const double cycles_slow = sampler.last_interval().cycles;
  EXPECT_NEAR(cycles_fast / cycles_slow, 2.0, 0.01);
}

}  // namespace
}  // namespace fvsst::cpu
