// Tests for the IPC predictor (core/predictor.h): the paper's performance
// model must recover ground truth exactly on clean data and project IPC
// correctly across the frequency range.
#include "core/predictor.h"

#include <gtest/gtest.h>

#include "cpu/core.h"
#include "mach/machine_config.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::core {
namespace {

using units::GHz;
using units::MHz;

const mach::MemoryLatencies kLat = mach::p630().latencies;

// Builds a clean observation from a phase's ground truth at frequency g.
CounterObservation observe(const workload::Phase& p, double g,
                           double instructions = 1e8) {
  CounterObservation obs;
  obs.measured_hz = g;
  obs.delta.instructions = instructions;
  obs.delta.cycles =
      instructions / workload::true_ipc(p, kLat, g);
  obs.delta.l2_accesses = instructions * p.apki_l2 / 1000.0;
  obs.delta.l3_accesses = instructions * p.apki_l3 / 1000.0;
  obs.delta.mem_accesses = instructions * p.apki_mem / 1000.0;
  return obs;
}

TEST(IpcPredictor, RejectsDegenerateIntervals) {
  const IpcPredictor pred(kLat);
  CounterObservation obs;
  EXPECT_FALSE(pred.estimate(obs).valid);
  obs.delta.instructions = 10.0;  // below the floor
  obs.delta.cycles = 100.0;
  obs.measured_hz = 1 * GHz;
  EXPECT_FALSE(pred.estimate(obs).valid);
}

TEST(IpcPredictor, RecoversAlphaAndMemTimeExactly) {
  const IpcPredictor pred(kLat);
  const workload::Phase p = workload::synthetic_phase("x", 30.0, 1e9);
  const WorkloadEstimate est = pred.estimate(observe(p, 1 * GHz));
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.alpha_inv, 1.0 / p.alpha, 1e-9);
  EXPECT_NEAR(est.mem_time_per_instr,
              workload::mem_time_per_instruction(p, kLat), 1e-15);
}

TEST(IpcPredictor, PredictionMatchesTruthAtOtherFrequencies) {
  // Observe at 1 GHz, predict at every other setting: the prediction must
  // equal ground truth since the data is noiseless.
  const IpcPredictor pred(kLat);
  const workload::Phase p = workload::synthetic_phase("x", 40.0, 1e9);
  const WorkloadEstimate est = pred.estimate(observe(p, 1 * GHz));
  for (double mhz = 250; mhz <= 1000; mhz += 50) {
    EXPECT_NEAR(pred.predict_ipc(est, mhz * MHz),
                workload::true_ipc(p, kLat, mhz * MHz), 1e-9)
        << mhz;
  }
}

TEST(IpcPredictor, CrossFrequencyObservationAlsoWorks) {
  // Observe at 500 MHz, predict at 1 GHz: same recovery.
  const IpcPredictor pred(kLat);
  const workload::Phase p = workload::synthetic_phase("x", 15.0, 1e9);
  const WorkloadEstimate est = pred.estimate(observe(p, 500 * MHz));
  EXPECT_NEAR(pred.predict_performance(est, 1 * GHz),
              workload::true_performance(p, kLat, 1 * GHz), 1.0);
}

TEST(IpcPredictor, LatencyMismatchBiasesAlpha) {
  // A phase whose true latencies are 30% above nominal: the predictor
  // attributes the extra stall time to alpha (a known error source), so
  // alpha_inv is overestimated — but stays positive and finite.
  const IpcPredictor pred(kLat);
  workload::Phase p = workload::synthetic_phase("x", 40.0, 1e9);
  p.latency_scale = 1.3;
  const WorkloadEstimate est = pred.estimate(observe(p, 1 * GHz));
  ASSERT_TRUE(est.valid);
  EXPECT_GT(est.alpha_inv, 1.0 / p.alpha);
}

TEST(IpcPredictor, ClampsNegativeAlphaResidue) {
  // Corrupt counters claiming more memory time than total CPI: the clamp
  // keeps alpha_inv at a small positive floor.
  const IpcPredictor pred(kLat);
  CounterObservation obs;
  obs.measured_hz = 1 * GHz;
  obs.delta.instructions = 1e6;
  obs.delta.cycles = 1e6;           // CPI 1
  obs.delta.mem_accesses = 1e5;     // 0.1 apI * 393ns * 1GHz = CPI 39
  const WorkloadEstimate est = pred.estimate(obs);
  ASSERT_TRUE(est.valid);
  EXPECT_GT(est.alpha_inv, 0.0);
}

TEST(PerfLoss, SignConvention) {
  EXPECT_DOUBLE_EQ(perf_loss(100.0, 90.0), 0.1);   // loss
  EXPECT_DOUBLE_EQ(perf_loss(100.0, 110.0), -0.1); // gain
  EXPECT_DOUBLE_EQ(perf_loss(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(perf_loss(0.0, 50.0), 0.0);     // guarded
}

TEST(IdealFrequency, CpuBoundWantsNearFmax) {
  WorkloadEstimate est;
  est.valid = true;
  est.alpha_inv = 1.0 / 1.6;
  est.mem_time_per_instr = 0.0;
  // Pure CPU work: f_ideal = (1 - eps) * f_max exactly.
  EXPECT_NEAR(ideal_frequency(est, 1e9, 0.04), 0.96e9, 1.0);
}

TEST(IdealFrequency, MemoryBoundWantsLess) {
  WorkloadEstimate est;
  est.valid = true;
  est.alpha_inv = 1.0 / 1.6;
  est.mem_time_per_instr = 6e-9;  // heavy
  const double f = ideal_frequency(est, 1e9, 0.04);
  EXPECT_LT(f, 0.8e9);
  EXPECT_GT(f, 0.3e9);
}

TEST(IdealFrequency, ExactlyEpsilonLossAtIdealFrequency) {
  // Check the defining property: Perf(f_ideal) = (1-eps) * Perf(f_max).
  WorkloadEstimate est;
  est.valid = true;
  est.alpha_inv = 0.7;
  est.mem_time_per_instr = 3.5e-9;
  const double eps = 0.05;
  const double f = ideal_frequency(est, 1e9, eps);
  const IpcPredictor pred(kLat);
  const double ratio = pred.predict_performance(est, f) /
                       pred.predict_performance(est, 1e9);
  EXPECT_NEAR(ratio, 1.0 - eps, 1e-9);
}

TEST(IdealFrequency, InvalidEstimateFallsBackToFmax) {
  WorkloadEstimate est;  // invalid
  EXPECT_DOUBLE_EQ(ideal_frequency(est, 1e9, 0.04), 1e9);
}

// --- End-to-end predictor accuracy on the simulated core -----------------
// This is the Table 2 mechanism in miniature: run the synthetic benchmark
// on a noisy core, estimate from one interval's counters, compare the
// predicted IPC with the subsequently measured IPC.

class PredictorAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(PredictorAccuracy, DeviationSmallAcrossIntensities) {
  const double intensity = GetParam();
  sim::Simulation sim;
  cpu::Core::Config cfg;
  cfg.latencies = kLat;
  cfg.max_hz = 1 * GHz;
  cfg.counter_noise_sigma = 0.01;
  cfg.execution_noise_sigma = 0.005;
  cpu::Core core(sim, cfg, sim::Rng(7));
  core.add_workload(workload::make_uniform_synthetic(intensity, 1e12));

  const IpcPredictor pred(kLat);
  // First interval: estimate.
  cpu::PerfCounters before = core.read_counters();
  sim.run_for(0.1);
  cpu::PerfCounters mid = core.read_counters();
  CounterObservation obs{mid - before, 1 * GHz};
  const WorkloadEstimate est = pred.estimate(obs);
  ASSERT_TRUE(est.valid);

  // Second interval at a reduced frequency: measure and compare.
  core.set_frequency(700 * MHz);
  cpu::PerfCounters start = core.read_counters();
  sim.run_for(0.1);
  cpu::PerfCounters end = core.read_counters();
  const double measured = (end - start).ipc();
  const double predicted = pred.predict_ipc(est, 700 * MHz);
  EXPECT_NEAR(predicted, measured, 0.03)
      << "intensity=" << intensity;
}

INSTANTIATE_TEST_SUITE_P(Intensities, PredictorAccuracy,
                         ::testing::Values(100.0, 75.0, 50.0, 25.0, 10.0));

}  // namespace
}  // namespace fvsst::core
