// Tests for the shared control-loop engine (core/control_loop.h) and the
// telemetry registry (simkit/telemetry.h): stage wiring, EWMA estimate
// smoothing, per-stage timing counters, and metric export.
#include "core/control_loop.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "baselines/governor_daemon.h"
#include "baselines/policies.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "simkit/telemetry.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::core {
namespace {

using units::GHz;
using units::ms;

struct Rig {
  sim::Simulation sim;
  sim::Rng rng{42};
  mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  power::PowerBudget budget{4 * 140.0};
};

IntervalSample make_sample(double instructions, double cycles,
                           double mem_accesses, double elapsed_s) {
  IntervalSample s;
  s.delta.instructions = instructions;
  s.delta.cycles = cycles;
  s.delta.l2_accesses = mem_accesses;
  s.delta.l3_accesses = mem_accesses / 2;
  s.delta.mem_accesses = mem_accesses / 4;
  s.elapsed_s = elapsed_s;
  s.measured_hz = cycles / elapsed_s;
  s.valid = true;
  return s;
}

// --- IpcEstimator ---------------------------------------------------------

TEST(IpcEstimator, ZeroSmoothingMatchesFreshEstimate) {
  const mach::MemoryLatencies lat = mach::p630().latencies;
  const IntervalSample a = make_sample(8e6, 2e7, 4e4, 0.1);
  const IntervalSample b = make_sample(5e6, 2e7, 9e4, 0.1);

  // The prototype path: each interval's estimate taken as-is.
  IpcEstimator::Options opts;
  opts.idle_signal = IdleSignal::kNone;
  IpcEstimator estimator(lat, opts);
  std::vector<ProcView> views(1);
  estimator.update({a}, views);
  estimator.update({b}, views);

  const IpcPredictor predictor(lat);
  CounterObservation obs;
  obs.delta = b.delta;
  obs.measured_hz = b.measured_hz;
  const WorkloadEstimate fresh = predictor.estimate(obs);
  ASSERT_TRUE(fresh.valid);
  ASSERT_TRUE(views[0].estimate.valid);
  EXPECT_DOUBLE_EQ(views[0].estimate.alpha_inv, fresh.alpha_inv);
  EXPECT_DOUBLE_EQ(views[0].estimate.mem_time_per_instr,
                   fresh.mem_time_per_instr);
}

TEST(IpcEstimator, SmoothingBlendsOldAndFreshEstimates) {
  const mach::MemoryLatencies lat = mach::p630().latencies;
  const IntervalSample a = make_sample(8e6, 2e7, 4e4, 0.1);
  const IntervalSample b = make_sample(5e6, 2e7, 9e4, 0.1);

  const IpcPredictor predictor(lat);
  CounterObservation obs_a, obs_b;
  obs_a.delta = a.delta;
  obs_a.measured_hz = a.measured_hz;
  obs_b.delta = b.delta;
  obs_b.measured_hz = b.measured_hz;
  const WorkloadEstimate ea = predictor.estimate(obs_a);
  const WorkloadEstimate eb = predictor.estimate(obs_b);
  ASSERT_TRUE(ea.valid && eb.valid);

  const double s = 0.7;
  IpcEstimator::Options opts;
  opts.idle_signal = IdleSignal::kNone;
  opts.smoothing = s;
  IpcEstimator estimator(lat, opts);
  std::vector<ProcView> views(1);
  estimator.update({a}, views);  // first estimate: taken as-is (no old one)
  EXPECT_DOUBLE_EQ(views[0].estimate.alpha_inv, ea.alpha_inv);
  estimator.update({b}, views);  // second: EWMA of old and fresh
  EXPECT_DOUBLE_EQ(views[0].estimate.alpha_inv,
                   s * ea.alpha_inv + (1.0 - s) * eb.alpha_inv);
  EXPECT_DOUBLE_EQ(
      views[0].estimate.mem_time_per_instr,
      s * ea.mem_time_per_instr + (1.0 - s) * eb.mem_time_per_instr);
}

TEST(IpcEstimator, InvalidIntervalKeepsLastEstimateUnlessReset) {
  const mach::MemoryLatencies lat = mach::p630().latencies;
  const IntervalSample good = make_sample(8e6, 2e7, 4e4, 0.1);
  IntervalSample bad;  // valid == false

  IpcEstimator::Options keep_opts;
  keep_opts.idle_signal = IdleSignal::kNone;
  IpcEstimator keeper(lat, keep_opts);
  std::vector<ProcView> views(1);
  keeper.update({good}, views);
  ASSERT_TRUE(views[0].estimate.valid);
  keeper.update({bad}, views);
  EXPECT_TRUE(views[0].estimate.valid);  // last good estimate retained

  IpcEstimator::Options reset_opts;
  reset_opts.idle_signal = IdleSignal::kNone;
  reset_opts.reset_on_invalid = true;
  IpcEstimator resetter(lat, reset_opts);
  std::vector<ProcView> views2(1);
  resetter.update({good}, views2);
  ASSERT_TRUE(views2[0].estimate.valid);
  resetter.update({bad}, views2);
  EXPECT_FALSE(views2[0].estimate.valid);  // stateless host behaviour
}

// --- Stage timing counters ------------------------------------------------

TEST(ControlLoopTimings, StagesAreCountedAndPublished) {
  Rig rig;
  rig.cluster.core({0, 1}).add_workload(
      workload::make_uniform_synthetic(50.0, 1e12));
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table, rig.budget,
                     DaemonConfig{});
  rig.sim.run_for(1.001);

  const ControlLoopTimings& t = daemon.loop().timings();
  // 100 ticks at t = 10 ms; each T boundary (10 of them) runs the cycle.
  EXPECT_EQ(t.sample.invocations, 100u);
  EXPECT_EQ(t.estimate.invocations, daemon.schedules_run());
  EXPECT_EQ(t.policy.invocations, daemon.schedules_run());
  EXPECT_EQ(t.actuate.invocations, daemon.schedules_run());
  EXPECT_GT(t.policy.total_s, 0.0);
  EXPECT_GE(t.cycle_total_s(),
            t.estimate.total_s + t.policy.total_s + t.actuate.total_s - 1e-12);
  EXPECT_GE(t.policy.mean_s(), 0.0);

  // The same numbers are published as telemetry counters.
  const auto& reg = daemon.telemetry();
  EXPECT_DOUBLE_EQ(reg.counter_value("loop/cycles"),
                   static_cast<double>(daemon.schedules_run()));
  EXPECT_DOUBLE_EQ(reg.counter_value("loop/policy_count"),
                   static_cast<double>(daemon.schedules_run()));
  EXPECT_DOUBLE_EQ(reg.counter_value("loop/policy_s"), t.policy.total_s);
}

TEST(ControlLoopTimings, SteadyStateLoopDoesNoRegistryLookups) {
  // Regression guard for the interned-handle migration: after the first
  // scheduling cycles have lazily resolved the loop/* counter handles
  // (base counters on the first publish, each stage's quantile trio on its
  // first nonempty sample set), the hot loop must never touch the
  // registry's hash map again — no key rebuilding, no hashing, no
  // allocation in steady state.
  Rig rig;
  rig.cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(50.0, 1e12));
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table, rig.budget,
                     DaemonConfig{});
  rig.sim.run_for(0.301);  // warm-up: several full cycles
  const std::uint64_t warm = daemon.telemetry().map_lookups();
  rig.sim.run_for(1.0);
  EXPECT_EQ(daemon.telemetry().map_lookups(), warm)
      << "steady-state control loop performed registry hash-map lookups";
}

// --- Engine trace registry ------------------------------------------------

TEST(ControlLoopTraces, RegistryKeysKeepLegacyDisplayNames) {
  Rig rig;
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table, rig.budget,
                     DaemonConfig{});
  rig.sim.run_for(0.201);

  // The accessor and the registry resolve to the same series object.
  EXPECT_EQ(&daemon.granted_freq_trace(0),
            &daemon.telemetry().at("cpu0/granted_hz"));
  // Display names stay what benches and CSV headers always used.
  EXPECT_EQ(daemon.telemetry().at("cpu0/granted_hz").name(), "granted_hz");
  EXPECT_EQ(daemon.telemetry().at("cpu3/ipc_deviation").name(),
            "ipc_deviation");
  EXPECT_GT(daemon.granted_freq_trace(0).size(), 0u);
}

TEST(ControlLoopTraces, DisabledTracesRegisterNothing) {
  Rig rig;
  DaemonConfig cfg;
  cfg.record_traces = false;
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table, rig.budget,
                     cfg);
  rig.sim.run_for(0.301);
  EXPECT_EQ(daemon.telemetry().series_count(), 0u);
  EXPECT_EQ(daemon.granted_freq_trace(0).size(), 0u);
  EXPECT_EQ(daemon.predicted_ipc_trace(2).size(), 0u);
  // Counters (stage timings) are still published.
  EXPECT_GT(daemon.telemetry().counter_value("loop/cycles"), 0.0);
}

TEST(ControlLoopTraces, GovernorHonoursRecordTracesFlag) {
  // The governors used to allocate trace vectors unconditionally; with the
  // engine they only exist when asked for.
  Rig rig;
  baselines::GovernorDaemon::Config cfg;
  cfg.record_traces = false;
  baselines::GovernorDaemon off(rig.sim, rig.cluster, rig.machine.freq_table,
                                cfg);
  rig.sim.run_for(0.1);
  EXPECT_EQ(off.telemetry().series_count(), 0u);
  EXPECT_EQ(off.freq_trace(0).size(), 0u);

  Rig rig2;
  cfg.record_traces = true;
  baselines::GovernorDaemon on(rig2.sim, rig2.cluster,
                               rig2.machine.freq_table, cfg);
  rig2.sim.run_for(0.1);
  EXPECT_GT(on.freq_trace(0).size(), 0u);
  EXPECT_EQ(on.telemetry().at("gov_cpu0/granted_hz").name(), "gov_hz_cpu0");
}

// --- PolicyStageAdapter ---------------------------------------------------

TEST(PolicyStageAdapter, RunsComparatorPoliciesOnTheEngineContract) {
  const mach::FrequencyTable table = mach::p630_frequency_table();
  std::vector<const mach::FrequencyTable*> tables(3, &table);
  std::vector<ProcView> views(3);

  baselines::PolicyStageAdapter adapter(
      std::make_unique<baselines::MaxFrequencyPolicy>());
  const ScheduleResult result = adapter.decide(views, tables, 1e9);
  ASSERT_EQ(result.decisions.size(), 3u);
  for (const auto& d : result.decisions) {
    EXPECT_DOUBLE_EQ(d.hz, table.max_hz());
    EXPECT_GT(d.watts, 0.0);
  }
  EXPECT_TRUE(result.feasible);
  // No prediction contract: the engine must skip scoring entirely.
  EXPECT_LT(adapter.predict_ipc(views[0], table.max_hz()), 0.0);
}

// --- Fault-handling races -------------------------------------------------

TEST(ControlLoopFaults, BudgetChangeDuringActuationRetryStaysSafe) {
  // A budget drop lands while cpu 1 is inside a reject window (already
  // escalated to the f_min fail-safe).  The budget-triggered cycle must
  // schedule around the pinned CPU, the retry must keep aiming at the
  // fail-safe grant, and everything must recover once the fault clears.
  Rig rig;
  for (std::size_t c = 0; c < rig.cluster.cpu_count(); ++c) {
    rig.cluster.core({0, c}).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  sim::FaultPlan plan(5);
  plan.add({sim::FaultKind::kActuationReject, 0.2, 0.55, /*target=*/1, 0.0});

  sim::EventLog journal;
  DaemonConfig cfg;
  cfg.journal = &journal;
  cfg.fault_plan = &plan;
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table, rig.budget,
                     cfg);

  rig.sim.run_for(0.45);
  EXPECT_GT(daemon.loop().retrying_cpu_count(), 0u);  // mid-fault
  rig.budget.set_limit_w(200.0);  // fires a budget cycle during the retry
  rig.sim.run_for(0.75);

  EXPECT_EQ(daemon.loop().degraded_cpu_count(), 0u);
  EXPECT_EQ(daemon.loop().retrying_cpu_count(), 0u);
  EXPECT_LE(rig.cluster.cpu_power_w(), rig.budget.effective_limit_w() + 1e-9);
  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());

  // The budget trigger really did interleave with the fault window.
  bool budget_cycle_in_window = false;
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kCycleStart) continue;
    const std::string* trigger = e.find_str("trigger");
    if (trigger && *trigger == "budget" && e.t >= 0.2 && e.t < 0.55) {
      budget_cycle_in_window = true;
    }
  }
  EXPECT_TRUE(budget_cycle_in_window);
}

TEST(ControlLoopFaults, IdleExitMidIntervalRecoversFrequency) {
  // cpu 2's workload drains mid-run (idle enter), then new work arrives in
  // the middle of a sampling interval (idle exit).  The loop must pin the
  // idle CPU to the floor and lift it again after the mid-interval wakeup.
  Rig rig;
  rig.cluster.core({0, 2}).add_workload(workload::make_uniform_synthetic(
      100.0, 1e8, /*loop=*/false));  // drains in ~0.2 s

  sim::EventLog journal;
  DaemonConfig cfg;
  cfg.journal = &journal;
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table, rig.budget,
                     cfg);

  bool was_idle_at_floor = false;
  rig.sim.schedule_at(0.45, [&] {
    was_idle_at_floor = rig.cluster.core({0, 2}).idle() &&
                        rig.cluster.core({0, 2}).frequency_hz() ==
                            rig.machine.freq_table.min_hz();
  });
  // New work lands at 0.473 — mid-interval, off every tick boundary.
  rig.sim.schedule_at(0.473, [&] {
    rig.cluster.core({0, 2}).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  });
  rig.sim.run_for(1.0);

  EXPECT_TRUE(was_idle_at_floor);
  EXPECT_FALSE(rig.cluster.core({0, 2}).idle());
  EXPECT_GT(rig.cluster.core({0, 2}).frequency_hz(),
            rig.machine.freq_table.min_hz());

  // Both transitions were journalled for cpu 2, in order.
  double idle_enter_t = -1.0;
  double idle_exit_t = -1.0;
  for (const sim::Event& e : journal.events()) {
    if (e.cpu != 2) continue;
    if (e.type == sim::EventType::kIdleEnter && idle_enter_t < 0.0) {
      idle_enter_t = e.t;
    }
    if (e.type == sim::EventType::kIdleExit && idle_exit_t < 0.0) {
      idle_exit_t = e.t;
    }
  }
  ASSERT_GE(idle_enter_t, 0.0);
  ASSERT_GE(idle_exit_t, 0.0);
  EXPECT_LT(idle_enter_t, idle_exit_t);
  EXPECT_GE(idle_exit_t, 0.473);
  EXPECT_TRUE(sim::check_journal(journal).ok());
}

// --- MetricRegistry and sinks --------------------------------------------

TEST(MetricRegistry, FindOrCreateAndCounters) {
  sim::MetricRegistry reg;
  sim::TimeSeries& s1 = reg.series("cpu0/granted_hz", "granted_hz");
  sim::TimeSeries& s2 = reg.series("cpu0/granted_hz", "ignored-second-name");
  EXPECT_EQ(&s1, &s2);
  EXPECT_EQ(s1.name(), "granted_hz");
  EXPECT_EQ(reg.series_count(), 1u);
  EXPECT_EQ(reg.find_series("nope"), nullptr);
  EXPECT_THROW(reg.at("nope"), std::out_of_range);

  reg.counter("loop/cycles") = 12.0;
  reg.counter("loop/cycles") += 1.0;
  EXPECT_DOUBLE_EQ(reg.counter_value("loop/cycles"), 13.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("absent"), 0.0);
}

TEST(MetricRegistry, JsonLinesExport) {
  sim::MetricRegistry reg;
  reg.series("cpu0/granted_hz", "granted_hz").add(0.0, 1e9);
  reg.counter("loop/cycles") = 3.0;
  std::ostringstream out;
  sim::JsonLinesSink sink(out);
  reg.export_to(sink);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"metric\":\"cpu0/granted_hz\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"granted_hz\""), std::string::npos);
  EXPECT_NE(text.find("\"metric\":\"loop/cycles\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":3"), std::string::npos);
}

TEST(MetricRegistry, CsvDirectorySinkWritesPerMetricFiles) {
  sim::MetricRegistry reg;
  auto& s = reg.series("cpu0/granted_hz", "granted_hz");
  s.add(0.0, 1e9);
  s.add(0.1, 2e9);
  reg.counter("loop/cycles") = 2.0;

  char dir_template[] = "/tmp/fvsst_telemetry_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  {
    sim::CsvDirectorySink sink(dir);
    reg.export_to(sink);
    EXPECT_EQ(sink.failures(), 0u);
  }  // destructor flushes counters.csv

  std::FILE* f = std::fopen((dir + "/cpu0_granted_hz.csv").c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[64] = {0};
  ASSERT_NE(std::fgets(header, sizeof header, f), nullptr);
  std::fclose(f);
  EXPECT_NE(std::string(header).find("granted_hz"), std::string::npos);

  std::FILE* c = std::fopen((dir + "/counters.csv").c_str(), "r");
  ASSERT_NE(c, nullptr);
  std::fclose(c);
  std::remove((dir + "/cpu0_granted_hz.csv").c_str());
  std::remove((dir + "/counters.csv").c_str());
  rmdir(dir.c_str());
}

}  // namespace
}  // namespace fvsst::core
