// Tests for the comparator policies (baselines/policies.h).
#include "baselines/policies.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/rng.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::baselines {
namespace {

using units::GHz;
using units::MHz;

const mach::MemoryLatencies kLat = mach::p630().latencies;
const mach::FrequencyTable kTable = mach::p630_frequency_table();

ProcSample sample_from_phase(const workload::Phase& p, bool idle = false) {
  ProcSample s;
  s.estimate = oracle_estimate(p, kLat);
  s.idle = idle;
  s.naive_utilization = 1.0;  // hot idle looks 100% busy
  return s;
}

std::vector<workload::Phase> diverse_truth() {
  return {
      workload::synthetic_phase("cpu-a", 100.0, 1e9),
      workload::synthetic_phase("cpu-b", 90.0, 1e9),
      workload::synthetic_phase("mem-a", 15.0, 1e9),
      workload::synthetic_phase("mem-b", 20.0, 1e9),
  };
}

std::vector<ProcSample> diverse_samples() {
  std::vector<ProcSample> out;
  for (const auto& p : diverse_truth()) out.push_back(sample_from_phase(p));
  return out;
}

TEST(OracleEstimate, MatchesGroundTruth) {
  const auto p = workload::synthetic_phase("x", 30.0, 1e9);
  const auto est = oracle_estimate(p, kLat);
  EXPECT_TRUE(est.valid);
  EXPECT_DOUBLE_EQ(est.alpha_inv, 1.0 / p.alpha);
  EXPECT_DOUBLE_EQ(est.mem_time_per_instr,
                   workload::mem_time_per_instruction(p, kLat));
}

TEST(MaxFrequencyPolicy, IgnoresBudget) {
  MaxFrequencyPolicy policy;
  const auto out = policy.decide(diverse_samples(), kTable, 100.0);
  for (const auto& a : out) {
    EXPECT_DOUBLE_EQ(a.hz, 1 * GHz);
    EXPECT_TRUE(a.powered_on);
  }
}

TEST(UniformScalingPolicy, FitsBudgetWithEqualFrequencies) {
  UniformScalingPolicy policy;
  const auto out = policy.decide(diverse_samples(), kTable, 294.0);
  ASSERT_EQ(out.size(), 4u);
  for (const auto& a : out) EXPECT_DOUBLE_EQ(a.hz, out[0].hz);
  // 294/4 = 73.5 W per CPU -> 700 MHz (66 W).
  EXPECT_DOUBLE_EQ(out[0].hz, 700 * MHz);
  EXPECT_LE(4 * kTable.power(out[0].hz), 294.0);
}

TEST(UniformScalingPolicy, FloorsWhenBudgetTiny) {
  UniformScalingPolicy policy;
  const auto out = policy.decide(diverse_samples(), kTable, 10.0);
  for (const auto& a : out) EXPECT_DOUBLE_EQ(a.hz, 250 * MHz);
}

TEST(PowerDownPolicy, ShutsIdleProcessorsFirst) {
  PowerDownPolicy policy;
  auto samples = diverse_samples();
  samples[1].idle = true;
  // Budget fits 3 of 4 CPUs at f_max.
  const auto out = policy.decide(samples, kTable, 3 * 140.0);
  EXPECT_FALSE(out[1].powered_on);
  EXPECT_TRUE(out[0].powered_on);
  EXPECT_TRUE(out[2].powered_on);
  EXPECT_TRUE(out[3].powered_on);
}

TEST(PowerDownPolicy, ThenSheddsLowestDemand) {
  PowerDownPolicy policy;
  const auto samples = diverse_samples();  // none idle
  // Budget fits 2 CPUs: the two memory-bound ones (lower perf at f_max)
  // are shut first.
  const auto out = policy.decide(samples, kTable, 2 * 140.0);
  EXPECT_TRUE(out[0].powered_on);
  EXPECT_TRUE(out[1].powered_on);
  EXPECT_FALSE(out[2].powered_on);
  EXPECT_FALSE(out[3].powered_on);
}

TEST(DemandBasedSwitching, HotIdleDrivenToFmax) {
  DemandBasedSwitchingPolicy policy(/*budget_capped=*/false);
  std::vector<ProcSample> samples{sample_from_phase(
      workload::synthetic_phase("idle-ish", 100.0, 1e9), /*idle=*/true)};
  samples[0].naive_utilization = 1.0;  // non-halted cycles say "busy"
  const auto out = policy.decide(samples, kTable, 1e9);
  // The pathology the paper describes: an idle hot-loop runs at f_max.
  EXPECT_DOUBLE_EQ(out[0].hz, 1 * GHz);
}

TEST(DemandBasedSwitching, FollowsUtilization) {
  DemandBasedSwitchingPolicy policy(/*budget_capped=*/false);
  auto samples = diverse_samples();
  samples[0].naive_utilization = 0.42;
  const auto out = policy.decide(samples, kTable, 1e9);
  // 0.42 * 1000 MHz = 420 -> snaps up to 450 MHz.
  EXPECT_DOUBLE_EQ(out[0].hz, 450 * MHz);
}

TEST(DemandBasedSwitching, CappedVariantFitsBudget) {
  DemandBasedSwitchingPolicy policy(/*budget_capped=*/true);
  const auto out = policy.decide(diverse_samples(), kTable, 294.0);
  double power = 0.0;
  for (const auto& a : out) power += kTable.power(a.hz);
  EXPECT_LE(power, 294.0);
}

TEST(FvsstPolicy, MatchesSchedulerBehaviour) {
  FvsstPolicy policy;
  const auto out = policy.decide(diverse_samples(), kTable, 294.0);
  double power = 0.0;
  for (const auto& a : out) power += kTable.power(a.hz);
  EXPECT_LE(power, 294.0);
  // CPU-bound processors keep more frequency than memory-bound ones.
  EXPECT_GT(out[0].hz, out[2].hz);
}

TEST(Evaluate, AccountsPowerAndPerformance) {
  const auto truth = diverse_truth();
  const std::vector<bool> idle(4, false);
  std::vector<Assignment> all_max(4, {1 * GHz, true});
  const auto ev = evaluate(all_max, truth, idle, kLat, kTable, 560.0);
  EXPECT_TRUE(ev.within_budget);
  EXPECT_DOUBLE_EQ(ev.total_power_w, 560.0);
  EXPECT_DOUBLE_EQ(ev.worst_proc_loss, 0.0);
  EXPECT_GT(ev.total_performance, 0.0);
}

TEST(Evaluate, PoweredOffRealWorkIsTotalLoss) {
  const auto truth = diverse_truth();
  const std::vector<bool> idle(4, false);
  std::vector<Assignment> a(4, {1 * GHz, true});
  a[2].powered_on = false;
  const auto ev = evaluate(a, truth, idle, kLat, kTable, 560.0);
  EXPECT_DOUBLE_EQ(ev.worst_proc_loss, 1.0);
  EXPECT_DOUBLE_EQ(ev.per_proc_performance[2], 0.0);
}

TEST(Comparison, FvsstBeatsUniformOnDiverseWorkloads) {
  // The paper's core claim: slowing nodes *non-uniformly* by predicted
  // demand loses less performance than uniform scaling at the same budget.
  const auto truth = diverse_truth();
  const std::vector<bool> idle(4, false);
  const auto samples = diverse_samples();
  const double budget = 294.0;

  FvsstPolicy fvsst;
  UniformScalingPolicy uniform;
  const auto ev_fvsst = evaluate(fvsst.decide(samples, kTable, budget),
                                 truth, idle, kLat, kTable, budget);
  const auto ev_uniform = evaluate(uniform.decide(samples, kTable, budget),
                                   truth, idle, kLat, kTable, budget);
  EXPECT_TRUE(ev_fvsst.within_budget);
  EXPECT_TRUE(ev_uniform.within_budget);
  EXPECT_GT(ev_fvsst.total_performance, ev_uniform.total_performance);
}

TEST(Comparison, FvsstBeatsPowerDownOnBusyCluster) {
  const auto truth = diverse_truth();
  const std::vector<bool> idle(4, false);
  const auto samples = diverse_samples();
  const double budget = 294.0;
  FvsstPolicy fvsst;
  PowerDownPolicy down;
  const auto ev_fvsst = evaluate(fvsst.decide(samples, kTable, budget),
                                 truth, idle, kLat, kTable, budget);
  const auto ev_down = evaluate(down.decide(samples, kTable, budget), truth,
                                idle, kLat, kTable, budget);
  EXPECT_LT(ev_fvsst.worst_proc_loss, ev_down.worst_proc_loss);
  EXPECT_GT(ev_fvsst.total_performance, ev_down.total_performance);
}

TEST(StandardPolicies, AllPresentWithFvsstLast) {
  const auto policies = standard_policies();
  ASSERT_EQ(policies.size(), 8u);
  EXPECT_EQ(policies.front()->name(), "no-dvfs");
  EXPECT_EQ(policies[5]->name(), "two-freq-split");
  EXPECT_EQ(policies[6]->name(), "lp-optimal");
  EXPECT_EQ(policies.back()->name(), "fvsst");
}

TEST(ConsolidationPolicy, PowersOffAllButBudgetedHosts) {
  ConsolidationPolicy policy;
  const auto out = policy.decide(diverse_samples(), kTable, 2 * 140.0);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(out[0].powered_on);
  EXPECT_TRUE(out[1].powered_on);
  EXPECT_FALSE(out[2].powered_on);
  EXPECT_FALSE(out[3].powered_on);
  EXPECT_DOUBLE_EQ(out[0].hz, 1 * GHz);
}

TEST(ConsolidationPolicy, AtLeastOneHostSurvives) {
  ConsolidationPolicy policy;
  const auto out = policy.decide(diverse_samples(), kTable, 10.0);
  int on = 0;
  for (const auto& a : out) on += a.powered_on ? 1 : 0;
  EXPECT_EQ(on, 1);
}

TEST(ConsolidationPolicy, ConsolidatedPerformanceMath) {
  const auto truth = diverse_truth();
  const std::vector<bool> idle(4, false);
  // 4 jobs on 4 hosts at f_max: the full aggregate.
  const double full = ConsolidationPolicy::consolidated_performance(
      truth, idle, 4, 1 * GHz, kLat);
  double expected = 0.0;
  for (const auto& p : truth) {
    expected += workload::true_performance(p, kLat, 1 * GHz);
  }
  EXPECT_NEAR(full, expected, expected * 1e-9);
  // 4 jobs on 2 hosts: half the pipelines, half the aggregate (mean mix).
  const double halved = ConsolidationPolicy::consolidated_performance(
      truth, idle, 2, 1 * GHz, kLat);
  EXPECT_NEAR(halved, expected / 2.0, expected * 1e-9);
  // More hosts than jobs doesn't help.
  const double extra = ConsolidationPolicy::consolidated_performance(
      truth, idle, 10, 1 * GHz, kLat);
  EXPECT_NEAR(extra, expected, expected * 1e-9);
  // No jobs -> nothing.
  EXPECT_DOUBLE_EQ(ConsolidationPolicy::consolidated_performance(
                       truth, {true, true, true, true}, 4, 1 * GHz, kLat),
                   0.0);
}

// Property sweep: every budget-respecting policy stays within budget for
// random diverse workloads at random feasible budgets.
class PolicyBudgetProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PolicyBudgetProperty, BudgetedPoliciesComply) {
  sim::Rng rng(GetParam());
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 10));
  std::vector<ProcSample> samples;
  std::vector<workload::Phase> truth;
  std::vector<bool> idle;
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = workload::synthetic_phase(
        "p" + std::to_string(i), rng.uniform(0.0, 100.0), 1e9);
    truth.push_back(p);
    idle.push_back(rng.bernoulli(0.2));
    samples.push_back(sample_from_phase(p, idle.back()));
  }
  const double budget =
      rng.uniform(9.0 * static_cast<double>(n), 140.0 * n);
  for (const char* name : {"uniform", "power-down", "dbs-capped", "fvsst"}) {
    for (const auto& policy : standard_policies()) {
      if (policy->name() != name) continue;
      const auto ev = evaluate(policy->decide(samples, kTable, budget),
                               truth, idle, kLat, kTable, budget);
      EXPECT_TRUE(ev.within_budget)
          << policy->name() << " n=" << n << " budget=" << budget;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, PolicyBudgetProperty,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace fvsst::baselines
