// End-to-end tests for heterogeneous clusters: mixed machine generations
// and leaky bins under the distributed ClusterDaemon.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/cluster_daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst {
namespace {

using units::GHz;
using units::MHz;

struct HeteroRig {
  HeteroRig() {
    const mach::MachineConfig fast = mach::p630();
    // A previous-generation node: 600 MHz top; and a leaky bin: +20% power.
    const mach::MachineConfig slow = mach::derated(fast, 600 * MHz);
    const mach::MachineConfig leaky = mach::derated(fast, 1 * GHz, 1.2);
    cluster = std::make_unique<cluster::Cluster>(
        cluster::Cluster::heterogeneous(sim, {fast, slow, leaky}, rng));
  }
  sim::Simulation sim;
  sim::Rng rng{17};
  std::unique_ptr<cluster::Cluster> cluster;
};

TEST(DeratedMachine, CapsTableAndScalesPower) {
  const mach::MachineConfig base = mach::p630();
  const mach::MachineConfig slow = mach::derated(base, 600 * MHz, 1.1);
  EXPECT_DOUBLE_EQ(slow.nominal_hz, 600 * MHz);
  EXPECT_EQ(slow.freq_table.size(), 8u);  // 250..600 MHz
  EXPECT_NEAR(slow.freq_table.power(600 * MHz), 48.0 * 1.1, 1e-9);
  EXPECT_DOUBLE_EQ(slow.freq_table.min_voltage(600 * MHz),
                   base.freq_table.min_voltage(600 * MHz));
  // Base untouched.
  EXPECT_DOUBLE_EQ(base.freq_table.power(600 * MHz), 48.0);
}

TEST(HeteroCluster, NodesKeepTheirOwnLimits) {
  HeteroRig rig;
  EXPECT_DOUBLE_EQ(rig.cluster->node(0).machine().nominal_hz, 1 * GHz);
  EXPECT_DOUBLE_EQ(rig.cluster->node(1).machine().nominal_hz, 600 * MHz);
  EXPECT_DOUBLE_EQ(rig.cluster->node(1).core(0).frequency_hz(), 600 * MHz);
  // Setting a slow node above its top is rejected by the core itself.
  EXPECT_THROW(rig.cluster->node(1).core(0).set_frequency(1 * GHz),
               std::invalid_argument);
}

TEST(HeteroCluster, PowerUsesPerNodeTables) {
  HeteroRig rig;
  // fast: 4x140; slow: 4x48; leaky: 4x168.
  EXPECT_NEAR(rig.cluster->cpu_power_w(),
              4 * 140.0 + 4 * 48.0 + 4 * 140.0 * 1.2, 1e-9);
}

TEST(HeteroClusterDaemon, SchedulesEachNodeWithinItsTable) {
  HeteroRig rig;
  for (const auto& addr : rig.cluster->all_procs()) {
    rig.cluster->core(addr).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  power::PowerBudget budget(1e9);  // unconstrained
  core::ClusterDaemon daemon(rig.sim, *rig.cluster,
                             mach::p630_frequency_table(), budget, {});
  rig.sim.run_for(1.0);
  // CPU-bound work: every node at its own f_max.
  EXPECT_DOUBLE_EQ(rig.cluster->node(0).core(0).frequency_hz(), 1 * GHz);
  EXPECT_DOUBLE_EQ(rig.cluster->node(1).core(0).frequency_hz(), 600 * MHz);
  EXPECT_DOUBLE_EQ(rig.cluster->node(2).core(0).frequency_hz(), 1 * GHz);
}

TEST(HeteroClusterDaemon, BudgetUsesTruePerNodeWatts) {
  HeteroRig rig;
  for (const auto& addr : rig.cluster->all_procs()) {
    rig.cluster->core(addr).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  // Demand: 560 (fast) + 192 (slow) + 672 (leaky) = 1424 W.  Cap at 900 W.
  power::PowerBudget budget(900.0);
  core::ClusterDaemon daemon(rig.sim, *rig.cluster,
                             mach::p630_frequency_table(), budget, {});
  rig.sim.run_for(1.0);
  EXPECT_LE(rig.cluster->cpu_power_w(), 900.0);
  EXPECT_GT(rig.cluster->cpu_power_w(), 500.0);  // not collapsed to floor
}

TEST(HeteroClusterDaemon, HaltedIdleSignalWorksClusterWide) {
  mach::MachineConfig halting = mach::p630();
  halting.idles_by_halting = true;
  sim::Simulation sim;
  sim::Rng rng(9);
  cluster::Cluster cluster = cluster::Cluster::heterogeneous(
      sim, {halting, mach::derated(halting, 600 * MHz)}, rng);
  cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(100.0, 1e12));
  power::PowerBudget budget(1e9);
  core::ClusterDaemonConfig cfg;
  cfg.idle_signal = core::IdleSignal::kHaltedCounter;
  core::ClusterDaemon daemon(sim, cluster, mach::p630_frequency_table(),
                             budget, cfg);
  sim.run_for(1.0);
  EXPECT_DOUBLE_EQ(cluster.core({0, 0}).frequency_hz(), 1 * GHz);  // busy
  EXPECT_DOUBLE_EQ(cluster.core({0, 1}).frequency_hz(), 250 * MHz);
  EXPECT_DOUBLE_EQ(cluster.core({1, 3}).frequency_hz(), 250 * MHz);
}

}  // namespace
}  // namespace fvsst
