// Cross-module integration tests: the motivating scenario of paper Sec. 2
// (power-supply failure, cascade window) run end to end through supplies,
// sensor, budget, daemon, cores and workloads.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "power/sensor.h"
#include "power/margin_controller.h"
#include "power/supply.h"
#include "power/thermal.h"

#include "cluster/load_generator.h"
#include "simkit/units.h"
#include "workload/mixes.h"
#include "workload/synthetic.h"

namespace fvsst {
namespace {

using units::GHz;
using units::MHz;
using units::ms;

// The Section 2 system: 746 W total, two 480 W supplies, CPUs are 75%.
struct MotivatingRig {
  MotivatingRig()
      : machine(mach::p630_motivating_example()),
        cluster(cluster::Cluster::homogeneous(sim, machine, 1, rng)),
        domain({{"ps0", 480.0, true}, {"ps1", 480.0, true}}),
        // CPU budget = supply capacity minus non-CPU power.
        budget(960.0 - machine.non_cpu_power_w) {
    domain.on_capacity_change([this](double capacity_w) {
      budget.set_limit_w(
          std::max(0.0, capacity_w - machine.non_cpu_power_w));
    });
    for (std::size_t c = 0; c < 4; ++c) {
      cluster.core({0, c}).add_workload(
          workload::make_uniform_synthetic(
              c < 2 ? 100.0 : 20.0, 1e12));  // diverse: 2 CPU + 2 memory
    }
  }

  double total_power() const {
    return cluster.cpu_power_w() + machine.non_cpu_power_w;
  }

  sim::Simulation sim;
  sim::Rng rng{13};
  mach::MachineConfig machine;
  cluster::Cluster cluster;
  power::PowerDomain domain;
  power::PowerBudget budget;
};

TEST(MotivatingScenario, WithFvsstNoCascade) {
  MotivatingRig rig;
  core::DaemonConfig cfg;
  core::FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                           rig.budget, cfg);
  // DT = 100 ms cascade tolerance.
  power::CascadeMonitor monitor(rig.sim, rig.domain,
                                [&] { return rig.total_power(); }, 0.1,
                                1 * ms);
  rig.sim.run_for(1.0);
  EXPECT_GT(rig.total_power(), 480.0);  // healthy: drawing from both supplies

  rig.sim.schedule_at(1.5, [&] { rig.domain.fail_supply(0); });
  rig.sim.run_for(2.0);
  EXPECT_FALSE(monitor.cascaded());
  EXPECT_LE(rig.total_power(), 480.0);
}

TEST(MotivatingScenario, WithoutManagementCascadeOccurs) {
  MotivatingRig rig;  // no daemon: frequencies stay at f_max
  power::CascadeMonitor monitor(rig.sim, rig.domain,
                                [&] { return rig.total_power(); }, 0.1,
                                1 * ms);
  rig.sim.schedule_at(1.5, [&] { rig.domain.fail_supply(0); });
  rig.sim.run_for(3.0);
  EXPECT_TRUE(monitor.cascaded());
}

TEST(MotivatingScenario, ResponseWellInsideCascadeWindow) {
  MotivatingRig rig;
  core::DaemonConfig cfg;
  core::FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                           rig.budget, cfg);
  rig.sim.run_for(1.0);

  rig.sim.schedule_at(1.2345, [&] { rig.domain.fail_supply(1); });
  // Find the first time total power is compliant after the failure.
  double compliant_at = -1.0;
  rig.sim.schedule_every(1 * ms, [&] {
    if (compliant_at < 0.0 && rig.sim.now() > 1.2345 &&
        rig.total_power() <= 480.0) {
      compliant_at = rig.sim.now();
    }
  });
  rig.sim.run_for(1.0);
  ASSERT_GT(compliant_at, 0.0);
  // The budget trigger acts immediately; compliance within a couple of
  // sampling periods, far inside a typical 100 ms supply tolerance.
  EXPECT_LT(compliant_at - 1.2345, 0.02);
}

TEST(MotivatingScenario, RestoredSupplyRestoresPerformance) {
  MotivatingRig rig;
  core::DaemonConfig cfg;
  core::FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                           rig.budget, cfg);
  rig.sim.run_for(1.0);
  const double power_before = rig.cluster.cpu_power_w();
  rig.domain.fail_supply(0);
  rig.sim.run_for(0.5);
  EXPECT_LT(rig.cluster.cpu_power_w(), power_before);
  rig.domain.restore_supply(0);
  rig.sim.run_for(0.5);
  EXPECT_DOUBLE_EQ(rig.cluster.cpu_power_w(), power_before);
}

TEST(FullStack, SuppliesMarginThermalAndLoadTogether) {
  // Everything at once: a loaded server behind redundant supplies with a
  // cascade window, a margin controller correcting a 10% optimistic power
  // model, a thermal governor in a warm room, and a request stream — then
  // a supply failure.  The system must stay alive (no cascade), end
  // compliant with the true (biased) power, keep temperatures at the
  // limit, and keep serving requests throughout.
  sim::Simulation sim;
  sim::Rng rng(31);
  const mach::MachineConfig machine = mach::p630_motivating_example();
  cluster::Cluster server =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);

  auto true_cpu_power = [&] { return server.cpu_power_w() * 1.10; };
  auto total_power = [&] {
    return true_cpu_power() + machine.non_cpu_power_w;
  };

  power::PowerDomain domain({{"ps0", 480.0, true}, {"ps1", 480.0, true}});
  power::PowerBudget budget(domain.available_capacity_w() -
                            machine.non_cpu_power_w);
  domain.on_capacity_change([&](double capacity_w) {
    budget.set_limit_w(std::max(0.0, capacity_w - machine.non_cpu_power_w));
  });
  // DT = 0.5 s supply tolerance; the margin controller must out-pace it.
  power::CascadeMonitor cascade(sim, domain, total_power, 0.5, 1 * ms);
  power::MarginControllerConfig mcfg;
  mcfg.check_period_s = 0.02;
  mcfg.grow_step = 0.05;
  power::MarginController margin(sim, budget, true_cpu_power, mcfg);
  power::ThermalGovernor::Config tcfg;
  tcfg.thermal.ambient_c = 35.0;
  power::ThermalGovernor thermal(
      sim, budget, 4,
      [&](std::size_t i) {
        return machine.freq_table.power(server.core({0, i}).frequency_hz());
      },
      tcfg);
  core::FvsstDaemon daemon(sim, server, machine.freq_table, budget,
                           core::DaemonConfig{});

  cluster::LoadGenerator::Options lopts;
  lopts.request = workload::make_uniform_synthetic(60.0, 2e6, false);
  lopts.closed_users = 12;
  lopts.think_time_s = 0.002;
  cluster::LoadGenerator load(sim, server, server.all_procs(), lopts,
                              sim::Rng(8));

  sim.run_for(20.0);
  const std::size_t served_before = load.completions();
  domain.fail_supply(0);
  sim.run_for(20.0);

  EXPECT_FALSE(cascade.cascaded());
  EXPECT_LE(total_power(), domain.available_capacity_w() + 1e-9);
  EXPECT_LT(thermal.hottest_c(), tcfg.limit_c + 2.0);
  EXPECT_GT(load.completions(), served_before + 1000);
}

TEST(Section5Timeline, DaemonReproducesWorkedExample) {
  // Run the Section 5 mixes through the full daemon (not just the bare
  // scheduler): after settling, the granted vector under the 294 W budget
  // must match a greedy downgrade of the paper's epsilon vector, and the
  // T1 workload shift must let every processor run at its desired point.
  sim::Simulation sim;
  sim::Rng rng(3);
  mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  auto mixes = workload::section5_example_mixes(false);
  for (std::size_t c = 0; c < 4; ++c) {
    cluster.core({0, c}).add_workload(mixes[c]);
  }
  power::PowerBudget budget(294.0);
  core::DaemonConfig cfg;
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.run_for(2.0);

  const core::ScheduleResult r = daemon.last_result();  // copy: later
  // schedules overwrite the daemon's last_result.
  EXPECT_DOUBLE_EQ(r.decisions[0].desired_hz, 1000 * MHz);
  EXPECT_DOUBLE_EQ(r.decisions[1].desired_hz, 700 * MHz);
  EXPECT_DOUBLE_EQ(r.decisions[2].desired_hz, 800 * MHz);
  EXPECT_DOUBLE_EQ(r.decisions[3].desired_hz, 800 * MHz);
  EXPECT_LE(cluster.cpu_power_w(), 294.0);

  // T1: processor 0's job mix becomes more memory-intensive (a heavy
  // memory job joins the time-slice).  The aggregate counters shift and
  // the scheduler lowers processor 0's desired frequency, freeing budget
  // for the others.
  auto t1 = workload::section5_example_mixes(true);
  cluster.core({0, 0}).add_workload(t1[0]);
  sim.run_for(3.0);
  const auto& r1 = daemon.last_result();
  EXPECT_LT(r1.decisions[0].desired_hz, 1000 * MHz);
  EXPECT_LE(cluster.cpu_power_w(), 294.0);
  // Processors 1-3 end up no slower than at T0.
  for (std::size_t c = 1; c < 4; ++c) {
    EXPECT_GE(r1.decisions[c].hz, r.decisions[c].hz) << c;
  }
}

}  // namespace
}  // namespace fvsst
