// Tests for the batch job manager (cluster/job_manager.h).
#include "cluster/job_manager.h"

#include <gtest/gtest.h>

#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::cluster {
namespace {

using units::GHz;
using units::MHz;

struct Rig {
  Rig() : cluster(Cluster::homogeneous(sim, mach::p630(), 1, rng)) {}
  sim::Simulation sim;
  sim::Rng rng{9};
  Cluster cluster;
};

workload::WorkloadSpec small_job(double intensity = 100.0) {
  return workload::make_uniform_synthetic(intensity, 1e8, /*loop=*/false);
}

TEST(JobManager, RejectsLoopingJobs) {
  Rig rig;
  JobManager jm(rig.sim, rig.cluster);
  EXPECT_THROW(jm.submit(workload::make_uniform_synthetic(50.0, 1e8, true)),
               std::invalid_argument);
}

TEST(JobManager, RoundRobinCyclesProcessors) {
  Rig rig;
  JobManager jm(rig.sim, rig.cluster, PlacementPolicy::kRoundRobin);
  for (int i = 0; i < 6; ++i) jm.submit(small_job());
  EXPECT_EQ(jm.job(0).placed_on.cpu, 0u);
  EXPECT_EQ(jm.job(1).placed_on.cpu, 1u);
  EXPECT_EQ(jm.job(4).placed_on.cpu, 0u);
  EXPECT_EQ(jm.job(5).placed_on.cpu, 1u);
}

TEST(JobManager, LeastLoadedBalances) {
  Rig rig;
  JobManager jm(rig.sim, rig.cluster, PlacementPolicy::kLeastLoaded);
  // Long jobs so none finish while placing.
  for (int i = 0; i < 8; ++i) {
    jm.submit(workload::make_uniform_synthetic(100.0, 1e11, false));
  }
  const auto load = jm.load_vector();
  for (std::size_t p = 0; p < load.size(); ++p) {
    EXPECT_EQ(load[p], 2u) << p;
  }
}

TEST(JobManager, PackFirstFitConsolidates) {
  Rig rig;
  JobManager jm(rig.sim, rig.cluster, PlacementPolicy::kPackFirstFit);
  for (int i = 0; i < 4; ++i) {
    jm.submit(workload::make_uniform_synthetic(100.0, 1e11, false));
  }
  const auto load = jm.load_vector();
  EXPECT_EQ(load[0], 2u);
  EXPECT_EQ(load[1], 2u);
  EXPECT_EQ(load[2], 0u);  // two processors left fully idle
  EXPECT_EQ(load[3], 0u);
}

TEST(JobManager, TracksCompletionAndTurnaround) {
  Rig rig;
  JobManager jm(rig.sim, rig.cluster);
  const std::size_t id = jm.submit(small_job());
  EXPECT_EQ(jm.completed(), 0u);
  rig.sim.run_for(1.0);  // 1e8 instructions finish in ~70 ms
  EXPECT_EQ(jm.completed(), 1u);
  const auto& record = jm.job(id);
  EXPECT_GT(record.finished_at, 0.0);
  EXPECT_NEAR(jm.turnaround_times().mean(), record.finished_at, 1e-9);
}

TEST(JobManager, DeferredSubmissionAndSteadyThroughput) {
  Rig rig;
  JobManager jm(rig.sim, rig.cluster, PlacementPolicy::kRoundRobin);
  for (int i = 0; i < 20; ++i) {
    jm.submit_at(0.1 * i, small_job());
  }
  rig.sim.run_for(5.0);
  EXPECT_EQ(jm.submitted(), 20u);
  EXPECT_EQ(jm.completed(), 20u);
  // Light load: turnaround ~ service time (~69 ms), well under 0.2 s.
  EXPECT_LT(jm.turnaround_times().percentile(0.95), 0.2);
}

TEST(JobManager, ConsolidatingPlacementPlusIdleDetectionSavesPower) {
  // The interaction the module exists to study: packed placement leaves
  // idle processors that fvsst's idle detection parks at the floor.
  auto mean_power = [](PlacementPolicy policy) {
    Rig rig;
    power::PowerBudget budget(560.0);
    core::FvsstDaemon daemon(rig.sim, rig.cluster,
                             mach::p630().freq_table, budget, {});
    JobManager jm(rig.sim, rig.cluster, policy);
    for (int i = 0; i < 4; ++i) {
      jm.submit(workload::make_uniform_synthetic(100.0, 1e11, false));
    }
    rig.sim.run_for(2.0);
    double watts = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
      watts += daemon.cpu_mean_power_w(c);
    }
    return watts;
  };
  const double packed = mean_power(PlacementPolicy::kPackFirstFit);
  const double spread = mean_power(PlacementPolicy::kRoundRobin);
  // Packed: 2 CPUs busy at 140 W + 2 idle at 9 W ≈ 298 W.
  // Spread: 4 CPUs busy at 140 W = 560 W.
  EXPECT_LT(packed, spread - 200.0);
}

}  // namespace
}  // namespace fvsst::cluster
