// Tests for the log post-processing helpers (core/analysis.h).
#include "core/analysis.h"

#include <gtest/gtest.h>

namespace fvsst::core {
namespace {

sim::TimeSeries step_trace() {
  sim::TimeSeries ts("freq");
  ts.add(0.0, 1000.0);
  ts.add(2.0, 650.0);
  ts.add(5.0, 1000.0);
  return ts;
}

TEST(Residency, TimeWeightedShares) {
  const auto hist = residency(step_trace(), 10.0);
  // 1000 for [0,2) and [5,10) = 7s; 650 for [2,5) = 3s.
  EXPECT_DOUBLE_EQ(hist.total(), 10.0);
  EXPECT_DOUBLE_EQ(hist.fraction(1000.0), 0.7);
  EXPECT_DOUBLE_EQ(hist.fraction(650.0), 0.3);
}

TEST(Residency, TruncatesAtTEnd) {
  const auto hist = residency(step_trace(), 3.0);
  // 1000 for [0,2), 650 for [2,3).
  EXPECT_DOUBLE_EQ(hist.total(), 3.0);
  EXPECT_NEAR(hist.fraction(1000.0), 2.0 / 3.0, 1e-12);
}

TEST(Residency, EmptyAndSingleSample) {
  sim::TimeSeries empty;
  EXPECT_DOUBLE_EQ(residency(empty, 5.0).total(), 0.0);
  sim::TimeSeries one;
  one.add(1.0, 42.0);
  const auto hist = residency(one, 4.0);
  EXPECT_DOUBLE_EQ(hist.total(), 3.0);
  EXPECT_DOUBLE_EQ(hist.fraction(42.0), 1.0);
}

TEST(MeanExcluding, DropsWindowedSamples) {
  sim::TimeSeries s("dev");
  for (int i = 0; i < 10; ++i) {
    s.add(static_cast<double>(i), i < 2 || i >= 8 ? 100.0 : 1.0);
  }
  // Exclude the noisy head [0,2) and tail [8,10).
  const double mean =
      mean_excluding(s, {{0.0, 2.0}, {8.0, 10.0}});
  EXPECT_DOUBLE_EQ(mean, 1.0);
  // No exclusion: the noise dominates.
  EXPECT_GT(mean_excluding(s, {}), 30.0);
  // Everything excluded: defined as 0.
  EXPECT_DOUBLE_EQ(mean_excluding(s, {{0.0, 100.0}}), 0.0);
}

TEST(MeanWithin, WindowOnly) {
  sim::TimeSeries s("x");
  s.add(0.0, 10.0);
  s.add(1.0, 20.0);
  s.add(2.0, 30.0);
  EXPECT_DOUBLE_EQ(mean_within(s, {1.0, 2.0}), 20.0);  // [1,2) half-open
  EXPECT_DOUBLE_EQ(mean_within(s, {5.0, 9.0}), 0.0);
}

TEST(Normalised, RescalesAndRenames) {
  const auto out = normalised(step_trace(), 1000.0, "freq/1GHz");
  EXPECT_EQ(out.name(), "freq/1GHz");
  EXPECT_DOUBLE_EQ(out[0].value, 1.0);
  EXPECT_DOUBLE_EQ(out[1].value, 0.65);
}

}  // namespace
}  // namespace fvsst::core
