// test_tree_daemon - The hierarchical coordinator tree: the headline
// guarantee that shard count, thread count and advance mode are invisible
// (bit-identical journals and final core state), under clean runs and
// under chaos; plus failover, fail-safe and validation behavior.
#include "core/tree_daemon.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "workload/synthetic.h"

namespace fvsst {
namespace {

struct Scenario {
  const char* name;
  bool standby = false;
  double failsafe_factor = 0.0;
  cluster::TransportMode transport = cluster::TransportMode::kDatagram;
  std::vector<sim::FaultSpec> faults = {};
};

struct RunShape {
  std::size_t shards;
  int threads;
  core::AdvanceMode mode;
};

struct RunResult {
  std::string digest;     ///< Journal + final core state + counters.
  std::size_t rounds = 0;
  cluster::Epoch epoch = 1;
  std::size_t failsafe_shards = 0;
};

RunResult run_tree(const Scenario& sc, const RunShape& shape,
                   double duration = 2.5) {
  sim::Simulation sim;
  sim::Rng rng(23);
  const mach::MachineConfig machine = mach::p630();
  constexpr std::size_t kNodes = 12;
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, kNodes, rng);
  cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(90.0, 1e12));
  cluster.core({5, 1}).add_workload(
      workload::make_uniform_synthetic(60.0, 1e12));
  cluster.core({11, 0}).add_workload(
      workload::make_uniform_synthetic(25.0, 1e12));

  const double peak = static_cast<double>(cluster.cpu_count()) * 140.0;
  power::PowerBudget budget(peak);
  sim.schedule_at(0.9, [&] { budget.set_limit_w(peak * 0.35); });

  sim::FaultPlan plan(5);
  for (const sim::FaultSpec& f : sc.faults) plan.add(f);

  sim::EventLog journal;
  core::TreeDaemonConfig cfg;
  cfg.shards = shape.shards;
  cfg.step_threads = shape.threads;
  cfg.advance_mode = shape.mode;
  cfg.journal = &journal;
  if (!plan.empty()) cfg.fault_plan = &plan;
  cfg.standby_root = sc.standby;
  cfg.failsafe_factor = sc.failsafe_factor;
  cfg.transport = sc.transport;
  core::TreeDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.run_for(duration);

  RunResult out;
  out.rounds = daemon.rounds();
  out.epoch = daemon.epoch();
  out.failsafe_shards = daemon.failsafe_shard_count();

  std::ostringstream digest;
  sim::write_jsonl(digest, journal);
  for (const auto& addr : cluster.all_procs()) {
    auto& core = cluster.core(addr);
    char buf[160];
    std::snprintf(buf, sizeof buf, "core %zu.%zu hz=%.17g instr=%.17g\n",
                  addr.node, addr.cpu, core.frequency_hz(),
                  core.instructions_retired());
    digest << buf;
  }
  // Note: summaries_sent() is *not* part of the digest — more shards send
  // more (identical-sum) summaries per round by design.
  digest << "rounds=" << daemon.rounds() << " epoch=" << daemon.epoch()
         << '\n';
  out.digest = digest.str();
  return out;
}

// --- Shard/thread/mode invariance -----------------------------------------

/// Scenarios whose default journal is shard-invariant: faults (if any)
/// target node indices or root coordinators 0/1, never a specific shard's
/// leaf coordinator or a transport channel keyed by shard id.
class TreeInvariance : public ::testing::TestWithParam<Scenario> {};

TEST_P(TreeInvariance, ShardThreadAndModeAreInvisible) {
  const Scenario& sc = GetParam();
  const RunResult ref =
      run_tree(sc, {1, 1, core::AdvanceMode::kTick});
  ASSERT_FALSE(ref.digest.empty());
  ASSERT_GT(ref.rounds, 0u);
  const RunShape shapes[] = {
      {1, 1, core::AdvanceMode::kEvent},
      {4, 1, core::AdvanceMode::kTick},
      {4, 4, core::AdvanceMode::kEvent},
      {16, 8, core::AdvanceMode::kTick},
      {16, 2, core::AdvanceMode::kEvent},
  };
  for (const RunShape& shape : shapes) {
    const RunResult got = run_tree(sc, shape);
    EXPECT_EQ(ref.digest, got.digest)
        << sc.name << ": shards=" << shape.shards
        << " threads=" << shape.threads << " mode="
        << (shape.mode == core::AdvanceMode::kEvent ? "event" : "tick")
        << " changed the simulation";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, TreeInvariance,
    ::testing::Values(
        Scenario{"budget_step"},
        Scenario{"node_crash",
                 false,
                 0.0,
                 cluster::TransportMode::kDatagram,
                 {{sim::FaultKind::kNodeCrash, 0.55, 1.45, 3, 0.0}}},
        Scenario{"root_crash_failsafe",
                 false,
                 2.0,
                 cluster::TransportMode::kDatagram,
                 {{sim::FaultKind::kCoordinatorCrash, 0.55, 1.45, 0, 0.0}}},
        Scenario{"root_partition_standby",
                 true,
                 0.0,
                 cluster::TransportMode::kDatagram,
                 {{sim::FaultKind::kPartition, 0.55, 1.75, 0, 0.0}}}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return std::string(info.param.name);
    });

// --- Fixed-shard chaos ----------------------------------------------------

/// Faults keyed by shard-dependent ids (leaf coordinators, per-child
/// transport draws) change the default journal when the shard count
/// changes — but threads and advance mode must stay invisible at any
/// fixed shard count.
class TreeFixedShardChaos : public ::testing::TestWithParam<Scenario> {};

TEST_P(TreeFixedShardChaos, ThreadAndModeAreInvisibleAtFixedShards) {
  const Scenario& sc = GetParam();
  const RunResult ref = run_tree(sc, {4, 1, core::AdvanceMode::kTick});
  ASSERT_GT(ref.rounds, 0u);
  for (const RunShape& shape :
       {RunShape{4, 2, core::AdvanceMode::kEvent},
        RunShape{4, 8, core::AdvanceMode::kTick}}) {
    const RunResult got = run_tree(sc, shape);
    EXPECT_EQ(ref.digest, got.digest)
        << sc.name << ": threads=" << shape.threads << " mode="
        << (shape.mode == core::AdvanceMode::kEvent ? "event" : "tick");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, TreeFixedShardChaos,
    ::testing::Values(
        Scenario{"leaf_coordinator_crash",
                 false,
                 2.0,
                 cluster::TransportMode::kDatagram,
                 // Target 2 + s: shard 1's leaf coordinator.
                 {{sim::FaultKind::kCoordinatorCrash, 0.55, 1.45, 3, 0.0}}},
        Scenario{"reliable_corrupt_channel",
                 false,
                 0.0,
                 cluster::TransportMode::kReliable,
                 {{sim::FaultKind::kChannelCorrupt, 0.35, 1.35, -1, 0.4}}},
        Scenario{"standby_plus_node_crash",
                 true,
                 2.0,
                 cluster::TransportMode::kDatagram,
                 {{sim::FaultKind::kCoordinatorCrash, 0.55, 2.6, 0, 0.0},
                  {sim::FaultKind::kNodeCrash, 0.8, 1.3, 7, 0.0}}}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return std::string(info.param.name);
    });

// --- Protocol behavior ----------------------------------------------------

TEST(TreeDaemon, StandbyTakesOverAfterRootCrash) {
  Scenario sc{"takeover"};
  sc.standby = true;
  sc.faults = {{sim::FaultKind::kCoordinatorCrash, 0.55, 2.6, 0, 0.0}};
  const RunResult r = run_tree(sc, {4, 1, core::AdvanceMode::kTick});
  // The standby claimed a higher epoch and kept rounds flowing through
  // the outage (the crash window covers the rest of the run).
  EXPECT_GT(r.epoch, 1u);
  EXPECT_GT(r.rounds, 15u);
}

TEST(TreeDaemon, ShardsDropToFailsafeWhenRootSilent) {
  Scenario sc{"failsafe"};
  sc.failsafe_factor = 2.0;
  sc.faults = {{sim::FaultKind::kCoordinatorCrash, 0.55, 2.6, 0, 0.0}};
  const RunResult r = run_tree(sc, {4, 1, core::AdvanceMode::kTick});
  // No standby: every shard should be running its autonomous fail-safe
  // frequency at the end of the run.
  EXPECT_EQ(r.failsafe_shards, 4u);
}

TEST(TreeDaemon, RecoversFromFailsafeWhenRootReturns) {
  Scenario sc{"failsafe_recovery"};
  sc.failsafe_factor = 2.0;
  sc.faults = {{sim::FaultKind::kCoordinatorCrash, 0.55, 1.45, 0, 0.0}};
  const RunResult r = run_tree(sc, {4, 1, core::AdvanceMode::kTick});
  EXPECT_EQ(r.failsafe_shards, 0u);
  EXPECT_GT(r.rounds, 10u);
}

TEST(TreeDaemon, RejectsHeterogeneousClusters) {
  sim::Simulation sim;
  sim::Rng rng(7);
  const mach::MachineConfig machine = mach::p630();
  std::vector<mach::MachineConfig> configs(3, machine);
  configs[2] = mach::derated(machine, 600e6);
  cluster::Cluster cluster =
      cluster::Cluster::heterogeneous(sim, configs, rng);
  power::PowerBudget budget(1000.0);
  core::TreeDaemonConfig cfg;
  EXPECT_THROW(core::TreeDaemon(sim, cluster, machine.freq_table, budget,
                                cfg),
               std::invalid_argument);
}

TEST(TreeDaemon, CapsClusterUnderBudgetWithinOneRound) {
  Scenario sc{"caps"};
  const RunResult r = run_tree(sc, {4, 1, core::AdvanceMode::kTick});
  EXPECT_GT(r.rounds, 20u);
  EXPECT_EQ(r.epoch, 1u);

  // Re-run and inspect the cluster state directly: the post-step budget
  // (35% of peak) must be respected by the granted frequencies.
  sim::Simulation sim;
  sim::Rng rng(23);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 12, rng);
  cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(90.0, 1e12));
  const double peak = static_cast<double>(cluster.cpu_count()) * 140.0;
  power::PowerBudget budget(peak);
  sim.schedule_at(0.9, [&] { budget.set_limit_w(peak * 0.35); });
  core::TreeDaemonConfig cfg;
  cfg.shards = 4;
  core::TreeDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.run_for(2.5);
  double power = 0.0;
  for (const auto& addr : cluster.all_procs()) {
    power += machine.freq_table.power(cluster.core(addr).frequency_hz());
  }
  EXPECT_LE(power, budget.effective_limit_w() + 1e-6);
}

}  // namespace
}  // namespace fvsst
