// Tests for the analytic power model and its calibration against Table 1.
#include "power/power_model.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/units.h"

namespace fvsst::power {
namespace {

using units::GHz;
using units::MHz;

TEST(PowerModel, ComponentsAddUp) {
  const PowerModel m(80e-9, 2.0);
  const double hz = 1 * GHz, v = 1.3;
  EXPECT_NEAR(m.power(hz, v), m.active_power(hz, v) + m.static_power(v),
              1e-12);
  EXPECT_NEAR(m.active_power(hz, v), 80e-9 * 1.69 * 1e9, 1e-6);
  EXPECT_NEAR(m.static_power(v), 2.0 * 1.69, 1e-12);
}

TEST(PowerModel, RejectsNegativeCoefficients) {
  EXPECT_THROW(PowerModel(-1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(PowerModel(0.0, -1.0), std::invalid_argument);
}

TEST(PowerModel, PowerIncreasesWithFrequencyAndVoltage) {
  const PowerModel m(80e-9, 2.0);
  EXPECT_LT(m.power(500 * MHz, 1.0), m.power(1000 * MHz, 1.0));
  EXPECT_LT(m.power(1000 * MHz, 1.0), m.power(1000 * MHz, 1.3));
}

TEST(PowerModelCalibration, FitsPaperTable1Closely) {
  // The analytic CV^2f + BV^2 form should reproduce the Lava-generated
  // Table 1 within a few percent across all 16 points — this is the
  // "Lava substitute" validation (see DESIGN.md).
  const auto report =
      PowerModel::calibrate_report(mach::p630_frequency_table());
  EXPECT_GT(report.capacitance_f, 0.0);
  EXPECT_GE(report.leakage_w_per_v2, 0.0);
  EXPECT_LT(report.max_rel_error, 0.10);
  EXPECT_LT(report.rms_error_w, 4.0);
}

TEST(PowerModelCalibration, ExactOnSyntheticData) {
  // Generate a table from known coefficients; calibration must recover
  // them almost exactly (the system is linear).
  const double c_true = 7.5e-8, b_true = 1.8;
  const PowerModel truth(c_true, b_true);
  std::vector<mach::OperatingPoint> points;
  for (int mhz = 300; mhz <= 1000; mhz += 100) {
    const double hz = mhz * MHz;
    const double v = 0.8 + 0.5 * (hz / (1 * GHz));
    points.push_back({hz, v, truth.power(hz, v)});
  }
  const PowerModel fit =
      PowerModel::calibrate(mach::FrequencyTable(std::move(points)));
  EXPECT_NEAR(fit.capacitance(), c_true, c_true * 1e-6);
  EXPECT_NEAR(fit.leakage_coefficient(), b_true, b_true * 1e-5);
}

TEST(PowerModelCalibration, RequiresTwoPoints) {
  mach::FrequencyTable one({{1 * GHz, 1.3, 140.0}});
  EXPECT_THROW(PowerModel::calibrate(one), std::invalid_argument);
}

TEST(PowerModelCalibration, ClampsNegativeLeakage) {
  // A table with power *sub-linear* in V^2 would drive B negative; the fit
  // must clamp to the physical domain instead.
  std::vector<mach::OperatingPoint> points;
  for (int mhz = 300; mhz <= 1000; mhz += 100) {
    const double hz = mhz * MHz;
    const double v = 0.8 + 0.5 * (hz / (1 * GHz));
    // Pure active power: B should fit to ~0, never negative.
    points.push_back({hz, v, 8e-8 * v * v * hz});
  }
  const PowerModel fit =
      PowerModel::calibrate(mach::FrequencyTable(std::move(points)));
  EXPECT_GE(fit.leakage_coefficient(), 0.0);
  EXPECT_NEAR(fit.capacitance(), 8e-8, 1e-12);
}

// Parameterized check: model prediction within 10% of every Table 1 row.
class Table1FitTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Table1FitTest, PointWithinTolerance) {
  static const mach::FrequencyTable table = mach::p630_frequency_table();
  static const PowerModel model = PowerModel::calibrate(table);
  const auto& p = table[GetParam()];
  EXPECT_NEAR(model.power(p.hz, p.volts), p.watts, 0.10 * p.watts)
      << "at " << p.hz / MHz << " MHz";
}

INSTANTIATE_TEST_SUITE_P(AllPoints, Table1FitTest,
                         ::testing::Range<std::size_t>(0, 16));

}  // namespace
}  // namespace fvsst::power
