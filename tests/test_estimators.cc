// Tests for the alternative estimators (core/estimators.h): the
// two-frequency solve and the best/worst-case latency bounds from the
// paper's footnote 1.
#include "core/estimators.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst::core {
namespace {

using units::GHz;
using units::MHz;

const mach::MemoryLatencies kLat = mach::p630().latencies;

CounterObservation observe(const workload::Phase& p, double g,
                           double instructions = 1e8) {
  CounterObservation obs;
  obs.measured_hz = g;
  obs.delta.instructions = instructions;
  // Ground truth uses the phase's *true* latencies (latency_scale applied).
  obs.delta.cycles = instructions / workload::true_ipc(p, kLat, g);
  obs.delta.l2_accesses = instructions * p.apki_l2 / 1000.0;
  obs.delta.l3_accesses = instructions * p.apki_l3 / 1000.0;
  obs.delta.mem_accesses = instructions * p.apki_mem / 1000.0;
  return obs;
}

TEST(TwoPointEstimator, RecoversExactlyFromTwoFrequencies) {
  const auto p = workload::synthetic_phase("x", 30.0, 1e9);
  const auto est = TwoPointEstimator::estimate(observe(p, 1 * GHz),
                                               observe(p, 600 * MHz));
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.alpha_inv, 1.0 / p.alpha, 1e-9);
  EXPECT_NEAR(est.mem_time_per_instr,
              workload::mem_time_per_instruction(p, kLat), 1e-15);
}

TEST(TwoPointEstimator, ImmuneToLatencyMisModelling) {
  // The whole point of the two-frequency approach: a 40% latency error
  // that fools the single-point predictor does not affect it, because no
  // latency constants enter the solve.
  workload::Phase p = workload::synthetic_phase("x", 30.0, 1e9);
  p.latency_scale = 1.4;
  const auto two = TwoPointEstimator::estimate(observe(p, 1 * GHz),
                                               observe(p, 600 * MHz));
  ASSERT_TRUE(two.valid);
  // Recovered M is the *true* M (latency_scale included).
  EXPECT_NEAR(two.mem_time_per_instr,
              workload::mem_time_per_instruction(p, kLat), 1e-15);
  EXPECT_NEAR(two.alpha_inv, 1.0 / p.alpha, 1e-9);

  // The single-point predictor is biased on the same data.
  const IpcPredictor single(kLat);
  const auto one = single.estimate(observe(p, 1 * GHz));
  EXPECT_GT(one.alpha_inv, two.alpha_inv + 0.1);
}

TEST(TwoPointEstimator, OrderOfObservationsIrrelevant) {
  const auto p = workload::synthetic_phase("x", 50.0, 1e9);
  const auto a = TwoPointEstimator::estimate(observe(p, 1 * GHz),
                                             observe(p, 500 * MHz));
  const auto b = TwoPointEstimator::estimate(observe(p, 500 * MHz),
                                             observe(p, 1 * GHz));
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_DOUBLE_EQ(a.alpha_inv, b.alpha_inv);
  EXPECT_DOUBLE_EQ(a.mem_time_per_instr, b.mem_time_per_instr);
}

TEST(TwoPointEstimator, RejectsTooCloseFrequencies) {
  const auto p = workload::synthetic_phase("x", 50.0, 1e9);
  const auto est = TwoPointEstimator::estimate(
      observe(p, 1 * GHz), observe(p, 1 * GHz - 1 * MHz));
  EXPECT_FALSE(est.valid);
}

TEST(TwoPointEstimator, RejectsDegenerateObservations) {
  const auto p = workload::synthetic_phase("x", 50.0, 1e9);
  CounterObservation empty;
  EXPECT_FALSE(
      TwoPointEstimator::estimate(observe(p, 1 * GHz), empty).valid);
}

TEST(TwoPointEstimator, ClampsNegativeSlope) {
  // Non-stationary workload: higher CPI at the *lower* frequency implies a
  // negative M; the estimator clamps into the physical domain.
  CounterObservation a, b;
  a.measured_hz = 1 * GHz;
  a.delta.instructions = 1e8;
  a.delta.cycles = 1e8;  // CPI 1 at 1 GHz
  b.measured_hz = 500 * MHz;
  b.delta.instructions = 1e8;
  b.delta.cycles = 2e8;  // CPI 2 at 500 MHz (!)
  const auto est = TwoPointEstimator::estimate(a, b);
  ASSERT_TRUE(est.valid);
  EXPECT_DOUBLE_EQ(est.mem_time_per_instr, 0.0);
  EXPECT_GT(est.alpha_inv, 0.0);
}

TEST(BoundsEstimator, BoundsBracketTruthUnderLatencyError) {
  // True latencies are 1.2x nominal; bounds [0.85, 1.3] must bracket the
  // true performance at every frequency.
  workload::Phase p = workload::synthetic_phase("x", 25.0, 1e9);
  p.latency_scale = 1.2;
  const BoundsEstimator estimator(kLat, 0.85, 1.30);
  const auto bounds = estimator.estimate(observe(p, 1 * GHz));
  ASSERT_TRUE(bounds.valid);
  const IpcPredictor pred(kLat);
  for (double mhz = 300; mhz <= 1000; mhz += 100) {
    const double truth =
        workload::true_performance(p, kLat, mhz * MHz);
    const double lo =
        std::min(pred.predict_performance(bounds.best, mhz * MHz),
                 pred.predict_performance(bounds.worst, mhz * MHz));
    const double hi =
        std::max(pred.predict_performance(bounds.best, mhz * MHz),
                 pred.predict_performance(bounds.worst, mhz * MHz));
    EXPECT_LE(lo, truth * 1.001) << mhz;
    EXPECT_GE(hi, truth * 0.999) << mhz;
  }
}

TEST(BoundsEstimator, WorstCaseLossDominatesPointLoss) {
  const auto p = workload::synthetic_phase("x", 25.0, 1e9);
  const BoundsEstimator estimator(kLat, 0.85, 1.30);
  const auto bounds = estimator.estimate(observe(p, 1 * GHz));
  ASSERT_TRUE(bounds.valid);
  const IpcPredictor pred(kLat);
  const auto point = pred.estimate(observe(p, 1 * GHz));
  for (double mhz = 300; mhz <= 950; mhz += 50) {
    const double point_loss =
        perf_loss(pred.predict_performance(point, 1 * GHz),
                  pred.predict_performance(point, mhz * MHz));
    const double wc =
        BoundsEstimator::worst_case_loss(bounds, mhz * MHz, 1 * GHz);
    EXPECT_GE(wc, point_loss - 1e-9) << mhz;
  }
}

// Property sweep: whenever the true latency scale lies within the bound
// interval, the bounds bracket true IPC at *every* frequency — including
// heavily memory-bound workloads where the pessimistic bound would imply
// an infeasible (sub-floor) alpha.
class BoundsBracketProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BoundsBracketProperty, BracketsTruthEverywhere) {
  const double scale = std::get<0>(GetParam());
  const double intensity = std::get<1>(GetParam());
  workload::Phase p = workload::synthetic_phase("x", intensity, 1e9);
  p.latency_scale = scale;
  const BoundsEstimator estimator(kLat, 0.85, 1.40);
  const auto bounds = estimator.estimate(observe(p, 1 * GHz));
  ASSERT_TRUE(bounds.valid);
  const IpcPredictor pred(kLat);
  for (double mhz = 250; mhz <= 1000; mhz += 50) {
    const double truth = workload::true_ipc(p, kLat, mhz * MHz);
    const double a = pred.predict_ipc(bounds.best, mhz * MHz);
    const double b = pred.predict_ipc(bounds.worst, mhz * MHz);
    EXPECT_LE(std::min(a, b), truth + 1e-9)
        << "scale=" << scale << " intensity=" << intensity << " mhz=" << mhz;
    EXPECT_GE(std::max(a, b), truth - 1e-9)
        << "scale=" << scale << " intensity=" << intensity << " mhz=" << mhz;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScaleByIntensity, BoundsBracketProperty,
    ::testing::Combine(::testing::Values(0.85, 0.95, 1.0, 1.1, 1.25, 1.4),
                       ::testing::Values(5.0, 25.0, 50.0, 75.0, 100.0)));

TEST(BoundsEstimator, InvalidInputGivesInvalidBounds) {
  const BoundsEstimator estimator(kLat, 0.85, 1.30);
  CounterObservation empty;
  const auto bounds = estimator.estimate(empty);
  EXPECT_FALSE(bounds.valid);
  EXPECT_DOUBLE_EQ(BoundsEstimator::worst_case_loss(bounds, 500 * MHz, 1e9),
                   0.0);
}

}  // namespace
}  // namespace fvsst::core
