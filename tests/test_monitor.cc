// Tests for the online monitoring layer (simkit/monitor.h): the streaming
// aggregators' accuracy against exact references, the rule DSL, alert
// fire/clear semantics with journal payloads, registry bindings, and the
// Prometheus exposition.
#include "simkit/monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <vector>

#include "simkit/event_log.h"
#include "simkit/prometheus.h"
#include "simkit/stats.h"
#include "simkit/telemetry.h"

namespace fvsst::sim::monitor {
namespace {

// ---------------------------------------------------------------------------
// SlidingWindow

TEST(SlidingWindow, AggregatesInsideWindow) {
  SlidingWindow w(1.0, 10);
  w.observe(0.1, 4.0);
  w.observe(0.5, 2.0);
  w.observe(0.9, 6.0);
  EXPECT_EQ(w.count(1.0), 3u);
  EXPECT_DOUBLE_EQ(w.sum(1.0), 12.0);
  EXPECT_DOUBLE_EQ(w.mean(1.0), 4.0);
  EXPECT_DOUBLE_EQ(w.min(1.0), 2.0);
  EXPECT_DOUBLE_EQ(w.max(1.0), 6.0);
  EXPECT_DOUBLE_EQ(w.rate(1.0), 12.0);  // sum / 1 s window
}

TEST(SlidingWindow, ExpiresOldObservations) {
  SlidingWindow w(1.0, 10);
  w.observe(0.05, 100.0);
  w.observe(1.5, 1.0);
  // At t = 2.2 the window is [1.2, 2.2]: the first observation is gone.
  EXPECT_EQ(w.count(2.2), 1u);
  EXPECT_DOUBLE_EQ(w.max(2.2), 1.0);
  // Far past both, the window is empty again.
  EXPECT_EQ(w.count(10.0), 0u);
  EXPECT_TRUE(std::isnan(w.mean(10.0)));
  EXPECT_DOUBLE_EQ(w.sum(10.0), 0.0);
}

TEST(SlidingWindow, ExpiryIsBucketGranular) {
  // Expiry happens in whole buckets: an observation may expire up to one
  // bucket width *before* the nominal window edge, never after.
  const double window = 1.0;
  const std::size_t buckets = 10;
  const double bucket = window / static_cast<double>(buckets);
  SlidingWindow w(window, buckets);
  w.observe(0.0, 1.0);
  EXPECT_EQ(w.count(window - bucket), 1u);
  EXPECT_EQ(w.count(window), 0u);
}

TEST(SlidingWindow, MatchesExactReferenceOnRandomStream) {
  // The contract is exact at bucket granularity: the window ending at t
  // holds precisely the observations whose bucket index lies in
  // (idx(t) - buckets, idx(t)].  Check count and sum against a brute-force
  // reference applying that rule directly.
  std::mt19937 rng(20250807);
  std::uniform_real_distribution<double> value(0.0, 10.0);
  std::uniform_real_distribution<double> gap(0.001, 0.02);
  const double window = 0.5;
  const std::int64_t buckets = 16;
  const double bucket = window / static_cast<double>(buckets);
  SlidingWindow w(window, buckets);
  std::vector<std::pair<double, double>> all;
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += gap(rng);
    const double v = value(rng);
    w.observe(t, v);
    all.emplace_back(t, v);
    const auto idx = [&](double at) {
      return static_cast<std::int64_t>(std::floor(at / bucket));
    };
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& [ot, ov] : all) {
      if (idx(ot) > idx(t) - buckets && idx(ot) <= idx(t)) {
        sum += ov;
        ++n;
      }
    }
    ASSERT_EQ(w.count(t), n) << "at t=" << t;
    ASSERT_NEAR(w.sum(t), sum, 1e-9) << "at t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Ewma

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.1);
  EXPECT_TRUE(e.empty());
  EXPECT_TRUE(std::isnan(e.value()));
  for (int i = 0; i <= 100; ++i) e.observe(i * 0.01, 5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-9);
}

TEST(Ewma, DecayDependsOnElapsedTimeNotSampleCount) {
  // One observation after 1 s must decay exactly as much as many
  // observations of the same value spread over that second: the property
  // that makes tick-driven and event-driven runs agree.
  Ewma sparse(0.5), dense(0.5);
  sparse.observe(0.0, 10.0);
  dense.observe(0.0, 10.0);
  sparse.observe(1.0, 0.0);
  for (int i = 1; i <= 100; ++i) dense.observe(i * 0.01, 0.0);
  // Both pulled from 10 toward 0 over the same second with tau = 0.5 s.
  EXPECT_NEAR(sparse.value(), 10.0 * std::exp(-2.0), 1e-9);
  EXPECT_NEAR(dense.value(), 10.0 * std::exp(-2.0), 1e-6);
}

// ---------------------------------------------------------------------------
// P2Quantile

TEST(P2Quantile, ExactForFirstFiveObservations) {
  P2Quantile q(0.5);
  EXPECT_TRUE(std::isnan(q.value()));
  q.observe(9.0);
  EXPECT_DOUBLE_EQ(q.value(), 9.0);
  q.observe(1.0);
  q.observe(5.0);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);  // exact median of {1, 5, 9}
  q.observe(3.0);
  q.observe(7.0);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);  // exact median of {1, 3, 5, 7, 9}
}

/// Shared harness: stream `samples` through a P² sketch and compare its
/// estimate against SampleSet's exact order statistic, as a fraction of
/// the distribution's interquartile-ish scale.
void expect_sketch_close(const std::vector<double>& samples, double q,
                         double tolerance_frac) {
  P2Quantile sketch(q);
  SampleSet exact;
  for (double x : samples) {
    sketch.observe(x);
    exact.add(x);
  }
  const double truth = exact.percentile(q);
  const double scale = exact.percentile(0.9) - exact.percentile(0.1);
  ASSERT_GT(scale, 0.0);
  EXPECT_NEAR(sketch.value(), truth, tolerance_frac * scale)
      << "q=" << q << " n=" << samples.size();
}

TEST(P2Quantile, AccurateOnUniform) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> d(0.0, 100.0);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(d(rng));
  for (double q : {0.5, 0.9, 0.99}) expect_sketch_close(samples, q, 0.02);
}

TEST(P2Quantile, AccurateOnBimodal) {
  std::mt19937 rng(22);
  std::normal_distribution<double> lo(10.0, 1.0), hi(50.0, 2.0);
  std::bernoulli_distribution pick(0.3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(pick(rng) ? hi(rng) : lo(rng));
  }
  // The median sits inside the dense low mode; P² handles the gap between
  // modes worse than a smooth density, hence the looser p90 bound.
  expect_sketch_close(samples, 0.5, 0.02);
  expect_sketch_close(samples, 0.9, 0.10);
}

TEST(P2Quantile, AccurateOnHeavyTail) {
  std::mt19937 rng(33);
  std::lognormal_distribution<double> d(0.0, 1.0);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(d(rng));
  expect_sketch_close(samples, 0.5, 0.02);
  expect_sketch_close(samples, 0.9, 0.05);
}

TEST(P2Quantile, DeterministicInObservationSequence) {
  std::mt19937 rng(44);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(d(rng));
  P2Quantile a(0.9), b(0.9);
  for (double x : samples) {
    a.observe(x);
    b.observe(x);
  }
  // Bit-identical, not merely close: the estimator is pure state-machine.
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.count(), b.count());
}

// ---------------------------------------------------------------------------
// Rule DSL

TEST(RuleSet, ParsesFullRuleLine) {
  const RuleSet rules = RuleSet::parse_string(
      "# comment\n"
      "\n"
      "alert overshoot severity critical when min(over_budget_w, 600ms) "
      "> 0.001 for 2 windows\n");
  ASSERT_EQ(rules.size(), 1u);
  const Rule& r = rules.rules()[0];
  EXPECT_EQ(r.name, "overshoot");
  EXPECT_EQ(r.severity, Severity::kCritical);
  EXPECT_EQ(r.func, AggFunc::kMin);
  EXPECT_EQ(r.input, "over_budget_w");
  EXPECT_DOUBLE_EQ(r.window_s, 0.6);
  EXPECT_EQ(r.op, CmpOp::kGt);
  EXPECT_DOUBLE_EQ(r.threshold, 0.001);
  EXPECT_EQ(r.for_windows, 2);
}

TEST(RuleSet, SeverityDefaultsToWarningAndForToOne) {
  const RuleSet rules =
      RuleSet::parse_string("alert x when rate(drops, 5s) > 0\n");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules.rules()[0].severity, Severity::kWarning);
  EXPECT_EQ(rules.rules()[0].for_windows, 1);
  EXPECT_DOUBLE_EQ(rules.rules()[0].window_s, 5.0);
}

TEST(RuleSet, ExpressionRendersBackInDslForm) {
  const std::string line =
      "alert x severity critical when max(frac, 1s) >= 0.25 for 3 windows";
  const RuleSet rules = RuleSet::parse_string(line + "\n");
  ASSERT_EQ(rules.size(), 1u);
  // expression() renders the when-clause; wrapped back into an alert line
  // it must re-parse to the same rule.
  const RuleSet again = RuleSet::parse_string(
      "alert x when " + rules.rules()[0].expression() + "\n");
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again.rules()[0].name, "x");
  EXPECT_EQ(again.rules()[0].func, AggFunc::kMax);
  EXPECT_DOUBLE_EQ(again.rules()[0].threshold, 0.25);
  EXPECT_EQ(again.rules()[0].for_windows, 3);
}

TEST(RuleSet, RejectsMalformedInputWithLineNumber) {
  const auto expect_throws_mentioning = [](const std::string& text,
                                           const std::string& needle) {
    try {
      RuleSet::parse_string(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "error was: " << e.what();
    }
  };
  expect_throws_mentioning("alert x when frob(a, 1s) > 0\n", "frob");
  expect_throws_mentioning("alert x when mean(a, 10) > 0\n", "suffix");
  expect_throws_mentioning("bogus line\n", "line 1");
  expect_throws_mentioning(
      "alert x when mean(a, 1s) > 0\nalert x when mean(b, 1s) > 0\n",
      "line 2");
}

TEST(RuleSet, DefaultRulePackParses) {
  const RuleSet rules = RuleSet::parse_string(default_rule_pack());
  EXPECT_GE(rules.size(), 6u);
  bool has_overshoot = false, has_silent = false, has_agg_lag = false;
  for (const Rule& r : rules.rules()) {
    if (r.name == "budget_overshoot") {
      has_overshoot = true;
      EXPECT_EQ(r.severity, Severity::kCritical);
    }
    if (r.name == "coordinator_silent") has_silent = true;
    if (r.name == "aggregation_lag") {
      has_agg_lag = true;
      EXPECT_EQ(r.severity, Severity::kWarning);
    }
  }
  EXPECT_TRUE(has_overshoot);
  EXPECT_TRUE(has_silent);
  EXPECT_TRUE(has_agg_lag);
}

// ---------------------------------------------------------------------------
// Monitor: fire/clear, journal payloads, bindings

TEST(Monitor, FiresAfterForWindowsAndJournalsPayload) {
  const RuleSet rules = RuleSet::parse_string(
      "alert hot severity critical when max(temp, 1s) > 50 for 2 windows\n");
  EventLog journal;
  Monitor::Options options;
  options.journal = &journal;
  Monitor mon(rules, std::move(options));
  const InputId temp = mon.input("temp");

  mon.observe(temp, 0.1, 80.0);
  mon.evaluate(0.1);  // predicate holds: 1 of 2 windows
  EXPECT_EQ(mon.alerts_raised(), 0u);
  EXPECT_EQ(mon.firing_count(), 0u);

  mon.observe(temp, 0.2, 81.0);
  mon.evaluate(0.2);  // 2 of 2: raise
  EXPECT_EQ(mon.alerts_raised(), 1u);
  EXPECT_EQ(mon.firing_count(), 1u);

  ASSERT_EQ(journal.size(), 1u);
  const Event& raised = journal.events()[0];
  EXPECT_EQ(raised.type, EventType::kAlertRaised);
  EXPECT_DOUBLE_EQ(raised.t, 0.2);
  ASSERT_NE(raised.find_str("rule"), nullptr);
  EXPECT_EQ(*raised.find_str("rule"), "hot");
  ASSERT_NE(raised.find_str("severity"), nullptr);
  EXPECT_EQ(*raised.find_str("severity"), "critical");
  ASSERT_NE(raised.find_str("expr"), nullptr);
  EXPECT_DOUBLE_EQ(raised.num_or("threshold"), 50.0);
  EXPECT_DOUBLE_EQ(raised.num_or("value"), 81.0);

  // Cool down past the window: the alert clears with its duration.
  mon.observe(temp, 2.0, 10.0);
  mon.evaluate(2.0);
  EXPECT_EQ(mon.alerts_cleared(), 1u);
  EXPECT_EQ(mon.firing_count(), 0u);
  ASSERT_EQ(journal.size(), 2u);
  const Event& cleared = journal.events()[1];
  EXPECT_EQ(cleared.type, EventType::kAlertCleared);
  EXPECT_DOUBLE_EQ(cleared.num_or("raised_t"), 0.2);
  EXPECT_NEAR(cleared.num_or("duration_s"), 1.8, 1e-9);
}

TEST(Monitor, InterruptedStreakDoesNotFire) {
  const RuleSet rules = RuleSet::parse_string(
      "alert hot when max(temp, 1s) > 50 for 3 windows\n");
  Monitor mon(rules);
  const InputId temp = mon.input("temp");
  const double hot = 60.0, cold = 0.0;
  const double seq[] = {hot, hot, cold, hot, hot};
  double t = 0.0;
  for (double v : seq) {
    // Advance past the window each step so only the newest value counts.
    t += 2.0;
    mon.observe(temp, t, v);
    mon.evaluate(t);
  }
  // Two streaks of length 2, never 3: must not raise.
  EXPECT_EQ(mon.alerts_raised(), 0u);
}

TEST(Monitor, BindCounterObservesDeltas) {
  MetricRegistry registry;
  double& drops = registry.counter("journal/dropped");
  const RuleSet rules =
      RuleSet::parse_string("alert loss when rate(drops, 2s) > 2\n");
  Monitor mon(rules);
  mon.bind_counter("drops", &registry, registry.intern_counter("journal/dropped"));

  mon.evaluate(0.5);  // counter still 0: no deltas, no alert
  EXPECT_EQ(mon.alerts_raised(), 0u);
  drops += 10.0;  // 10 drops land within one 2 s window -> rate 5 > 2
  mon.evaluate(1.0);
  EXPECT_EQ(mon.alerts_raised(), 1u);
  // No further counter movement: the delta stream goes to zero and the
  // rate falls back under the threshold once the window slides past.
  mon.evaluate(4.0);
  EXPECT_EQ(mon.alerts_cleared(), 1u);
}

TEST(Monitor, InputSketchesTrackQuantiles) {
  Monitor mon(RuleSet{});
  const InputId load = mon.input("load");
  std::mt19937 rng(55);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  SampleSet exact;
  for (int i = 0; i < 10000; ++i) {
    const double v = d(rng);
    mon.observe(load, i * 0.01, v);
    exact.add(v);
  }
  ASSERT_EQ(mon.sketch_quantiles().size(), 3u);  // default {0.5, 0.9, 0.99}
  EXPECT_NEAR(mon.input_quantile(load, 0), exact.percentile(0.5), 0.02);
  EXPECT_NEAR(mon.input_quantile(load, 1), exact.percentile(0.9), 0.02);
  EXPECT_EQ(mon.input_count(load), 10000u);
}

TEST(Monitor, EvaluationSequenceIsDeterministic) {
  // Two monitors fed the identical observation/evaluation sequence must
  // agree bit for bit on every exposed aggregate and alert transition.
  const RuleSet rules = RuleSet::parse_string(default_rule_pack());
  Monitor a(rules), b(rules);
  std::mt19937 rng(66);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  const InputId ia = a.input("over_budget_w");
  const InputId ib = b.input("over_budget_w");
  for (int i = 1; i <= 500; ++i) {
    const double t = i * 0.01;
    const double v = d(rng);
    a.observe(ia, t, v);
    b.observe(ib, t, v);
    a.evaluate(t);
    b.evaluate(t);
  }
  EXPECT_EQ(a.alerts_raised(), b.alerts_raised());
  EXPECT_EQ(a.alerts_cleared(), b.alerts_cleared());
  ASSERT_EQ(a.alerts().size(), b.alerts().size());
  for (std::size_t i = 0; i < a.alerts().size(); ++i) {
    EXPECT_EQ(a.alerts()[i].firing, b.alerts()[i].firing);
    // NaN == NaN is false; compare through bit-equality semantics.
    const double va = a.alerts()[i].value, vb = b.alerts()[i].value;
    EXPECT_TRUE(va == vb || (std::isnan(va) && std::isnan(vb)));
  }
  EXPECT_EQ(a.input_quantile(ia, 2), b.input_quantile(ib, 2));
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, SanitizesMetricNames) {
  EXPECT_EQ(prometheus_metric_name("cpu0/granted_hz"),
            "fvsst_cpu0_granted_hz");
  EXPECT_EQ(prometheus_metric_name("a-b.c"), "fvsst_a_b_c");
}

TEST(Prometheus, WritesRegistryAndAlertState) {
  MetricRegistry registry;
  registry.counter("cycles/total") = 42.0;
  const RuleSet rules = RuleSet::parse_string(
      "alert hot severity critical when max(temp, 1s) > 50\n");
  Monitor mon(rules);
  const InputId temp = mon.input("temp");
  mon.observe(temp, 0.1, 80.0);
  mon.evaluate(0.1);
  ASSERT_EQ(mon.firing_count(), 1u);

  std::ostringstream out;
  write_prometheus(out, &registry, &mon, 0.1);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("fvsst_cycles_total 42"), std::string::npos);
  EXPECT_NE(text.find("rule=\"hot\""), std::string::npos);
  EXPECT_NE(text.find("fvsst_snapshot_time_seconds"), std::string::npos);
  // Every non-comment line is NAME{labels} VALUE or NAME VALUE.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.compare(0, 6, "fvsst_"), 0) << line;
  }

  // Null registry / null monitor are both legal.
  std::ostringstream none;
  write_prometheus(none, nullptr, nullptr, 0.0);
  EXPECT_NE(none.str().find("fvsst_snapshot_time_seconds"), std::string::npos);
}

}  // namespace
}  // namespace fvsst::sim::monitor
