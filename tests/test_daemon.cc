// End-to-end tests for the fvsst daemon (core/daemon.h) on the simulated
// P630: the paper's prototype behaviour in miniature.
#include "core/daemon.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/units.h"
#include "workload/app_profiles.h"
#include "workload/synthetic.h"

namespace fvsst::core {
namespace {

using units::GHz;
using units::MHz;
using units::ms;

struct Rig {
  sim::Simulation sim;
  sim::Rng rng{42};
  mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  power::PowerBudget budget{4 * 140.0};
};

DaemonConfig default_config() {
  DaemonConfig cfg;
  cfg.t_sample_s = 10 * ms;
  cfg.schedule_every_n_samples = 10;
  return cfg;
}

TEST(FvsstDaemon, SchedulesEveryT) {
  Rig rig;
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                     rig.budget, default_config());
  rig.sim.run_for(1.001);
  // T = 100 ms -> 10 schedules in one second.
  EXPECT_EQ(daemon.schedules_run(), 10u);
}

TEST(FvsstDaemon, IdleCoresPinnedToMinimum) {
  Rig rig;
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                     rig.budget, default_config());
  rig.sim.run_for(0.5);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(rig.cluster.core({0, c}).frequency_hz(), 250 * MHz);
  }
}

TEST(FvsstDaemon, WithoutIdleDetectionIdlesHotAtFmax) {
  Rig rig;
  DaemonConfig cfg = default_config();
  cfg.scheduler.idle_detection = false;
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                     rig.budget, cfg);
  rig.sim.run_for(0.5);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(rig.cluster.core({0, c}).frequency_hz(), 1 * GHz);
  }
}

TEST(FvsstDaemon, MemoryBoundWorkloadSettlesAtSaturation) {
  Rig rig;
  rig.cluster.core({0, 3}).add_workload(
      workload::make_uniform_synthetic(20.0, 1e12));
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                     rig.budget, default_config());
  rig.sim.run_for(2.0);
  const double hz = rig.cluster.core({0, 3}).frequency_hz();
  EXPECT_GE(hz, 650 * MHz);
  EXPECT_LE(hz, 800 * MHz);
  // Stable: the same frequency for the whole second half of the run.
  const auto& trace = daemon.granted_freq_trace(3);
  EXPECT_DOUBLE_EQ(trace.min(1.0, 2.0), trace.max(1.0, 2.0));
}

TEST(FvsstDaemon, BudgetDropTriggersImmediateCompliance) {
  Rig rig;
  for (std::size_t c = 0; c < 4; ++c) {
    rig.cluster.core({0, c}).add_workload(
        workload::make_uniform_synthetic(100.0, 1e12));
  }
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                     rig.budget, default_config());
  rig.sim.run_for(1.0);
  EXPECT_DOUBLE_EQ(rig.cluster.cpu_power_w(), 4 * 140.0);

  // Supply failure: the trigger reschedules instantly, between T boundaries.
  rig.sim.schedule_at(1.005, [&] { rig.budget.set_limit_w(294.0); });
  rig.sim.run_for(0.006);
  EXPECT_LE(rig.cluster.cpu_power_w(), 294.0);
  // Restoring the budget brings frequencies back up at the next T.
  rig.budget.set_limit_w(560.0);
  rig.sim.run_for(0.2);
  EXPECT_DOUBLE_EQ(rig.cluster.cpu_power_w(), 4 * 140.0);
}

TEST(FvsstDaemon, TracksPhaseChanges) {
  Rig rig;
  workload::SyntheticParams params;
  params.phase1 = {100.0, 6e8};  // ~400 ms at full speed
  params.phase2 = {15.0, 1.2e8}; // several hundred ms when memory-bound
  rig.cluster.core({0, 0}).add_workload(workload::make_synthetic(params));
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                     rig.budget, default_config());
  rig.sim.run_for(5.0);
  // The granted frequency must visit both the top and a saturated setting.
  const auto& trace = daemon.granted_freq_trace(0);
  EXPECT_DOUBLE_EQ(trace.max(0.5, 5.0), 1 * GHz);
  EXPECT_LE(trace.min(0.5, 5.0), 800 * MHz);
}

TEST(FvsstDaemon, PredictionDeviationIsSmall) {
  Rig rig;
  rig.cluster.core({0, 3}).add_workload(
      workload::make_uniform_synthetic(50.0, 1e12));
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                     rig.budget, default_config());
  rig.sim.run_for(3.0);
  const auto& dev = daemon.deviation_stat(3);
  ASSERT_GT(dev.count(), 10u);
  // Paper Table 2 reports deviations of 0.008-0.025 IPC; allow headroom.
  EXPECT_LT(dev.mean(), 0.05);
}

TEST(FvsstDaemon, OverheadStaysBelowThreePercent) {
  // Paper Fig. 4: fvsst costs at most ~3% throughput.  Compare passes of
  // the looping synthetic benchmark with and without the daemon.
  const double intensity = 100.0;
  auto run_passes = [&](bool with_daemon) {
    Rig rig;
    rig.cluster.core({0, 3}).add_workload(
        workload::make_uniform_synthetic(intensity, 2e7, true));
    std::unique_ptr<FvsstDaemon> daemon;
    if (with_daemon) {
      daemon = std::make_unique<FvsstDaemon>(rig.sim, rig.cluster,
                                             rig.machine.freq_table,
                                             rig.budget, default_config());
    }
    rig.sim.run_for(3.0);
    return rig.cluster.core({0, 3}).instructions_retired();
  };
  const double with = run_passes(true);
  const double without = run_passes(false);
  EXPECT_LT(1.0 - with / without, 0.03);
}

TEST(FvsstDaemon, TracesAreRecorded) {
  Rig rig;
  rig.cluster.core({0, 1}).add_workload(
      workload::make_uniform_synthetic(60.0, 1e12));
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                     rig.budget, default_config());
  rig.sim.run_for(1.0);
  EXPECT_GT(daemon.granted_freq_trace(1).size(), 5u);
  EXPECT_GT(daemon.desired_freq_trace(1).size(), 5u);
  EXPECT_GT(daemon.predicted_ipc_trace(1).size(), 5u);
  EXPECT_GT(daemon.measured_ipc_trace(1).size(), 3u);
  EXPECT_GT(daemon.deviation_trace(1).size(), 3u);
}

TEST(FvsstDaemon, EstimateSmoothingDelaysPhaseResponse) {
  // With heavy smoothing the scheduler reacts to a CPU->memory phase flip
  // over several intervals instead of one; both end at the same frequency.
  auto first_downshift_time = [](double smoothing) {
    Rig rig;
    workload::SyntheticParams params;
    params.phase1 = {100.0, 1.5e9};  // ~1 s CPU-bound
    params.phase2 = {10.0, 1e12};    // then memory-bound "forever"
    rig.cluster.core({0, 0}).add_workload(workload::make_synthetic(params));
    DaemonConfig cfg;
    cfg.estimate_smoothing = smoothing;
    FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                       rig.budget, cfg);
    rig.sim.run_for(6.0);
    // First time the granted frequency reaches 800 MHz or below after the
    // CPU-bound phase has clearly started (t > 0.5 s).
    for (const auto& s : daemon.granted_freq_trace(0).samples()) {
      if (s.t > 0.5 && s.value <= 800 * MHz) return s.t;
    }
    return 1e9;
  };
  const double sharp = first_downshift_time(0.0);
  const double smooth = first_downshift_time(0.9);
  ASSERT_LT(sharp, 1e9);
  ASSERT_LT(smooth, 1e9);
  EXPECT_GT(smooth, sharp + 0.25);  // several extra intervals
}

TEST(FvsstDaemon, WorksUnderFetchThrottling) {
  // The paper's actual prototype actuated via fetch throttling, not real
  // DVFS: delivered frequencies are duty-quantised.  The daemon must still
  // schedule sensibly (the predictor measures effective frequency from the
  // cycle counter) and keep the budget.
  sim::Simulation sim;
  sim::Rng rng(42);
  const mach::MachineConfig machine = mach::p630();
  cluster::NodeOptions opts;
  opts.scaling_mode = cpu::ScalingMode::kFetchThrottle;
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng, opts);
  cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(20.0, 1e12));
  cluster.core({0, 1}).add_workload(
      workload::make_uniform_synthetic(100.0, 1e12));
  power::PowerBudget budget(250.0);
  FvsstDaemon daemon(sim, cluster, machine.freq_table, budget,
                     default_config());
  sim.run_for(3.0);
  EXPECT_LE(cluster.cpu_power_w(), 250.0);
  // The memory-bound CPU settles at a saturated setting; the CPU-bound one
  // keeps more frequency.
  EXPECT_LT(cluster.core({0, 0}).frequency_hz(),
            cluster.core({0, 1}).frequency_hz());
  // Effective (throttled) frequency is within one duty step of requested.
  const double step = machine.nominal_hz / 32.0;
  for (std::size_t c = 0; c < 4; ++c) {
    auto& core = cluster.core({0, c});
    EXPECT_LE(core.frequency_hz() - core.effective_hz(), step + 1e-6) << c;
  }
  // Predictions stay usable despite the quantisation.
  EXPECT_LT(daemon.deviation_stat(0).mean(), 0.08);
}

TEST(FvsstDaemon, PerCpuEnergyAccounting) {
  Rig rig;
  rig.cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(100.0, 1e12));
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                     rig.budget, default_config());
  rig.sim.run_for(2.0);
  // CPU 0 runs at f_max after the first round (140 W); idle CPUs at 9 W.
  // The first 100 ms everything is at f_max.
  EXPECT_NEAR(daemon.cpu_energy_j(0), 2.0 * 140.0, 1.0);
  EXPECT_NEAR(daemon.cpu_energy_j(1), 0.1 * 140.0 + 1.9 * 9.0, 1.0);
  EXPECT_NEAR(daemon.cpu_mean_power_w(0), 140.0, 0.5);
  EXPECT_LT(daemon.cpu_mean_power_w(3), 20.0);
}

TEST(FvsstDaemon, ZeroBudgetIsInfeasibleButFloorsSafely) {
  Rig rig;
  rig.cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(100.0, 1e12));
  rig.budget.set_limit_w(0.0);
  FvsstDaemon daemon(rig.sim, rig.cluster, rig.machine.freq_table,
                     rig.budget, default_config());
  rig.sim.run_for(0.5);
  EXPECT_FALSE(daemon.last_result().feasible);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(rig.cluster.core({0, c}).frequency_hz(), 250 * MHz);
  }
  // Restoring a sane budget recovers.
  rig.budget.set_limit_w(560.0);
  rig.sim.run_for(0.3);
  EXPECT_TRUE(daemon.last_result().feasible);
  EXPECT_DOUBLE_EQ(rig.cluster.core({0, 0}).frequency_hz(), 1 * GHz);
}

TEST(FvsstDaemon, DesiredCanExceedGrantedUnderConstraint) {
  Rig rig;
  rig.budget.set_limit_w(75.0);  // single-CPU experiments: 750 MHz cap
  rig.cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(100.0, 1e12));
  // Use a 1-CPU machine so the budget maps to a clean frequency cap.
  mach::MachineConfig one_cpu = mach::p630();
  one_cpu.num_cpus = 1;
  sim::Simulation sim;
  sim::Rng rng(5);
  cluster::Cluster cluster = cluster::Cluster::homogeneous(sim, one_cpu, 1, rng);
  cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(100.0, 1e12));
  power::PowerBudget budget(75.0);
  FvsstDaemon daemon(sim, cluster, one_cpu.freq_table, budget,
                     default_config());
  sim.run_for(1.0);
  const auto& d = daemon.last_result().decisions[0];
  EXPECT_DOUBLE_EQ(d.desired_hz, 1 * GHz);
  EXPECT_DOUBLE_EQ(d.hz, 750 * MHz);
}

}  // namespace
}  // namespace fvsst::core
