// Tests for halting-idle machines and the daemon's idle-signal sources
// (paper Sec. 5: halted-cycle counters make the explicit idle indicator
// unnecessary).
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst {
namespace {

using units::GHz;
using units::MHz;
using units::ms;

cpu::Core::Config halting_config() {
  cpu::Core::Config cfg;
  cfg.latencies = mach::p630().latencies;
  cfg.max_hz = 1 * GHz;
  cfg.idles_by_halting = true;
  cfg.counter_noise_sigma = 0.0;
  cfg.execution_noise_sigma = 0.0;
  return cfg;
}

TEST(HaltingCore, IdleAccumulatesHaltedCycles) {
  sim::Simulation sim;
  cpu::Core core(sim, halting_config(), sim::Rng(1));
  sim.run_for(0.25);
  const cpu::PerfCounters c = core.read_counters();
  EXPECT_NEAR(c.cycles, 0.25e9, 1.0);
  EXPECT_NEAR(c.halted_cycles, 0.25e9, 1.0);
  EXPECT_DOUBLE_EQ(c.instructions, 0.0);
}

TEST(HaltingCore, BusyCoreHasNoHaltedCycles) {
  sim::Simulation sim;
  cpu::Core core(sim, halting_config(), sim::Rng(1));
  core.add_workload(workload::make_uniform_synthetic(50.0, 1e12));
  sim.run_for(0.25);
  const cpu::PerfCounters c = core.read_counters();
  EXPECT_DOUBLE_EQ(c.halted_cycles, 0.0);
  EXPECT_GT(c.instructions, 0.0);
}

TEST(HaltingCore, MixedPeriodSplitsCycles) {
  sim::Simulation sim;
  cpu::Core core(sim, halting_config(), sim::Rng(1));
  sim.run_for(0.1);  // idle (halted)
  core.add_workload(workload::make_uniform_synthetic(100.0, 1e12));
  sim.run_for(0.1);  // busy
  const cpu::PerfCounters c = core.read_counters();
  EXPECT_NEAR(c.halted_cycles / c.cycles, 0.5, 0.01);
}

struct HaltingRig {
  HaltingRig() {
    machine = mach::p630();
    machine.idles_by_halting = true;
    cluster = std::make_unique<cluster::Cluster>(
        cluster::Cluster::homogeneous(sim, machine, 1, rng));
  }
  sim::Simulation sim;
  sim::Rng rng{4};
  mach::MachineConfig machine;
  std::unique_ptr<cluster::Cluster> cluster;
  power::PowerBudget budget{4 * 140.0};
};

TEST(HaltedIdleSignal, DaemonInfersIdleFromCounterAlone) {
  HaltingRig rig;
  core::DaemonConfig cfg;
  cfg.idle_signal = core::IdleSignal::kHaltedCounter;  // no OS signal used
  rig.cluster->core({0, 2}).add_workload(
      workload::make_uniform_synthetic(60.0, 1e12));
  core::FvsstDaemon daemon(rig.sim, *rig.cluster, rig.machine.freq_table,
                           rig.budget, cfg);
  rig.sim.run_for(0.5);
  // Idle (halting) CPUs inferred idle -> pinned to the floor.
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 0}).frequency_hz(), 250 * MHz);
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 1}).frequency_hz(), 250 * MHz);
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 3}).frequency_hz(), 250 * MHz);
  // The busy CPU is not mistaken for idle.
  EXPECT_GT(rig.cluster->core({0, 2}).frequency_hz(), 700 * MHz);
}

TEST(HaltedIdleSignal, WakeupRestoresFrequency) {
  HaltingRig rig;
  core::DaemonConfig cfg;
  cfg.idle_signal = core::IdleSignal::kHaltedCounter;
  core::FvsstDaemon daemon(rig.sim, *rig.cluster, rig.machine.freq_table,
                           rig.budget, cfg);
  rig.sim.run_for(0.5);
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 0}).frequency_hz(), 250 * MHz);
  // Work arrives on CPU 0: within a couple of intervals it runs fast again.
  rig.cluster->core({0, 0}).add_workload(
      workload::make_uniform_synthetic(100.0, 1e12));
  rig.sim.run_for(0.3);
  EXPECT_DOUBLE_EQ(rig.cluster->core({0, 0}).frequency_hz(), 1 * GHz);
}

TEST(HaltedIdleSignal, KNoneLeavesHotIdleAtFmax) {
  // On the hot-idle Power4+ with no idle knowledge (the paper's prototype),
  // idle CPUs run at f_max.
  sim::Simulation sim;
  sim::Rng rng(4);
  const mach::MachineConfig machine = mach::p630();  // hot idle
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  power::PowerBudget budget(4 * 140.0);
  core::DaemonConfig cfg;
  cfg.idle_signal = core::IdleSignal::kNone;
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.run_for(0.5);
  EXPECT_DOUBLE_EQ(cluster.core({0, 0}).frequency_hz(), 1 * GHz);
}

TEST(HaltedIdleSignal, HaltingMachineSavesPowerEvenWithoutOsSignal) {
  // The headline of the halted-counter path: on halting machines, the
  // counter alone achieves what the Power4+ needs an explicit signal for.
  HaltingRig rig;
  core::DaemonConfig cfg;
  cfg.idle_signal = core::IdleSignal::kHaltedCounter;
  core::FvsstDaemon daemon(rig.sim, *rig.cluster, rig.machine.freq_table,
                           rig.budget, cfg);
  rig.sim.run_for(1.0);
  EXPECT_DOUBLE_EQ(rig.cluster->cpu_power_w(), 4 * 9.0);
}

TEST(PerCpuThreads, DistributesSamplingOverhead) {
  // With single-threaded sampling all dead time lands on the daemon CPU;
  // with per-CPU collector threads it spreads evenly (paper Sec. 9).
  auto lost_instructions = [](bool per_cpu_threads) {
    sim::Simulation sim;
    sim::Rng rng(6);
    const mach::MachineConfig machine = mach::p630();
    cluster::Cluster cluster =
        cluster::Cluster::homogeneous(sim, machine, 1, rng);
    for (std::size_t c = 0; c < 4; ++c) {
      cluster.core({0, c}).add_workload(
          workload::make_uniform_synthetic(100.0, 1e12));
    }
    power::PowerBudget budget(4 * 140.0);
    core::DaemonConfig cfg;
    cfg.per_cpu_threads = per_cpu_threads;
    cfg.overhead_per_cpu_sample_s = 50e-6;  // exaggerated, to be measurable
    cfg.daemon_cpu = 0;
    core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
    sim.run_for(2.0);
    std::vector<double> retired(4);
    for (std::size_t c = 0; c < 4; ++c) {
      retired[c] = cluster.core({0, c}).instructions_retired();
    }
    return retired;
  };
  const auto single = lost_instructions(false);
  const auto spread = lost_instructions(true);
  // Single-threaded: CPU 0 noticeably behind its peers.
  EXPECT_LT(single[0], single[1] * 0.99);
  // Per-CPU threads: all CPUs within 0.5% of each other.
  for (std::size_t c = 1; c < 4; ++c) {
    EXPECT_NEAR(spread[c] / spread[0], 1.0, 0.005) << c;
  }
}

}  // namespace
}  // namespace fvsst
