// Tests for the table printer and CSV writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "simkit/csv.h"
#include "simkit/table.h"
#include "simkit/time_series.h"

namespace fvsst::sim {
namespace {

namespace fs = std::filesystem;

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t("Title");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"much-longer-name", "23456"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("much-longer-name"), std::string::npos);
  // All data lines equal length (aligned).
  std::istringstream in(s);
  std::string line;
  std::getline(in, line);  // title
  std::size_t len = 0;
  while (std::getline(in, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << line;
  }
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  t.add_row({"1", "2", "3", "4"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(5.0, 0), "5");
  EXPECT_EQ(TextTable::pct(0.0351, 1), "3.5%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "fvsst_csv_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string read_all(const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  fs::path dir_;
};

TEST_F(CsvTest, WritesRows) {
  const fs::path p = dir_ / "out.csv";
  {
    CsvWriter w(p.string());
    w.write_row(std::vector<std::string>{"a", "b"});
    w.write_row(std::vector<double>{1.5, 2.5});
  }
  EXPECT_EQ(read_all(p), "a,b\n1.5,2.5\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  const fs::path p = dir_ / "esc.csv";
  {
    CsvWriter w(p.string());
    w.write_row(std::vector<std::string>{"has,comma", "has\"quote"});
  }
  EXPECT_EQ(read_all(p), "\"has,comma\",\"has\"\"quote\"\n");
}

TEST_F(CsvTest, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

TEST_F(CsvTest, SeriesCsvAlignsColumns) {
  TimeSeries a("alpha"), b("beta");
  a.add(0.0, 1.0);
  a.add(1.0, 2.0);
  b.add(0.0, 10.0);
  b.add(1.0, 20.0);
  const fs::path p = dir_ / "series.csv";
  ASSERT_TRUE(write_series_csv(p.string(), {&a, &b}, 0.5));
  const std::string content = read_all(p);
  EXPECT_NE(content.find("time_s,alpha,beta"), std::string::npos);
  EXPECT_NE(content.find("0.5,1,10"), std::string::npos);
}

TEST_F(CsvTest, SeriesCsvBadPathReturnsFalse) {
  TimeSeries a("a");
  a.add(0.0, 1.0);
  EXPECT_FALSE(
      write_series_csv("/nonexistent-dir-xyz/s.csv", {&a}, 0.1));
}

}  // namespace
}  // namespace fvsst::sim
