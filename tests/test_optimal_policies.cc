// Property tests for the optimization-based baselines (baselines/optimal.h):
// the simplex itself on small known programs, then 1000 seeded scenarios
// asserting the algebraic relationships between the LPs, the two-frequency
// split and the paper's two-pass heuristic:
//
//   * the energy LP lower-bounds the heuristic's power whenever the
//     heuristic's assignment lies inside the LP's feasible set;
//   * the performance LP upper-bounds the heuristic's model performance
//     (optimality gap >= 0) for every within-budget always-on assignment;
//   * the two-frequency split only ever uses adjacent table entries;
//   * the LP is infeasible exactly when greedy pass 2 is (n * w_min > B);
//   * both duty-cycled policies are bit-deterministic across fresh runs.
//
// Failures print the seed for one-line repro (see tests/proptest.h).
#include "baselines/optimal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/scheduler.h"
#include "mach/machine_config.h"
#include "proptest.h"
#include "simkit/rng.h"

namespace fvsst {
namespace {

using baselines::LinearProgram;
using Relation = LinearProgram::Relation;

// ---------------------------------------------------------------------------
// Simplex unit tests.
// ---------------------------------------------------------------------------

TEST(Simplex, SolvesSmallMaximisation) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  x = 2, y = 2, value 10.
  LinearProgram lp;
  lp.c = {-3.0, -2.0};
  lp.rows.push_back({{1.0, 1.0}, Relation::kLe, 4.0});
  lp.rows.push_back({{1.0, 0.0}, Relation::kLe, 2.0});
  const auto sol = baselines::solve_lp(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, -10.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
}

TEST(Simplex, HandlesEqualityRows) {
  // min x s.t. x + y == 2  ->  x = 0, y = 2.
  LinearProgram lp;
  lp.c = {1.0, 0.0};
  lp.rows.push_back({{1.0, 1.0}, Relation::kEq, 2.0});
  const auto sol = baselines::solve_lp(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2 cannot both hold.
  LinearProgram lp;
  lp.c = {1.0};
  lp.rows.push_back({{1.0}, Relation::kLe, 1.0});
  lp.rows.push_back({{1.0}, Relation::kGe, 2.0});
  const auto sol = baselines::solve_lp(lp);
  EXPECT_FALSE(sol.feasible);
}

TEST(Simplex, NegativeRhsNormalised) {
  // -x <= -3 is x >= 3; min x -> 3.
  LinearProgram lp;
  lp.c = {1.0};
  lp.rows.push_back({{-1.0}, Relation::kLe, -3.0});
  const auto sol = baselines::solve_lp(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 3.0, 1e-9);
}

TEST(Simplex, DeterministicAcrossCalls) {
  LinearProgram lp;
  lp.c = {-1.0, -1.0, -1.0};
  lp.rows.push_back({{2.0, 1.0, 0.0}, Relation::kLe, 4.0});
  lp.rows.push_back({{0.0, 1.0, 3.0}, Relation::kLe, 6.0});
  lp.rows.push_back({{1.0, 1.0, 1.0}, Relation::kLe, 5.0});
  const auto a = baselines::solve_lp(lp);
  const auto b = baselines::solve_lp(lp);
  ASSERT_TRUE(a.feasible);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]) << "var " << i;  // bitwise, not approximate
  }
  EXPECT_EQ(a.objective, b.objective);
}

// ---------------------------------------------------------------------------
// Scenario generation shared by the seeded properties.
// ---------------------------------------------------------------------------

struct Scenario {
  std::vector<baselines::ProcSample> procs;
  std::vector<core::ProcView> views;  ///< Same workloads, scheduler shape.
  double budget_w = 0.0;
  double epsilon = 0.04;
};

Scenario random_scenario(sim::Rng& rng, const mach::FrequencyTable& table) {
  Scenario s;
  s.epsilon = rng.uniform(0.005, 0.3);
  const std::size_t cpus = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
  s.procs.resize(cpus);
  s.views.resize(cpus);
  for (std::size_t i = 0; i < cpus; ++i) {
    baselines::ProcSample& p = s.procs[i];
    p.estimate.valid = rng.bernoulli(0.9);
    p.estimate.alpha_inv = rng.uniform(0.3, 3.0);
    p.estimate.mem_time_per_instr = rng.uniform(0.0, 4e-9);
    p.idle = rng.bernoulli(0.15);
    p.naive_utilization = rng.uniform(0.0, 1.0);
    s.views[i].estimate = p.estimate;
    s.views[i].idle = p.idle;
    s.views[i].current_hz = table.max_hz();
  }
  s.budget_w =
      rng.uniform(0.8 * static_cast<double>(cpus) * table.min_point().watts,
                  1.2 * static_cast<double>(cpus) * table.max_point().watts);
  return s;
}

double assignment_power(const std::vector<baselines::Assignment>& assignments,
                        const mach::FrequencyTable& table) {
  double total = 0.0;
  for (const auto& a : assignments) {
    if (a.powered_on) total += table.power(a.hz);
  }
  return total;
}

/// Does `assignments` satisfy every constraint of lp_min_energy's feasible
/// set?  (Fractions are a relaxation, so membership of the integral
/// assignment implies the LP optimum lower-bounds its power.)
bool in_energy_feasible_set(const Scenario& s,
                            const std::vector<baselines::Assignment>& a,
                            const mach::FrequencyTable& table) {
  double power = 0.0;
  for (std::size_t p = 0; p < s.procs.size(); ++p) {
    if (!a[p].powered_on) return false;
    power += table.power(a[p].hz);
    if (s.procs[p].idle) continue;
    if (!s.procs[p].estimate.valid) {
      if (a[p].hz != table.max_hz()) return false;  // LP pins these.
      continue;
    }
    const double perf_max =
        baselines::model_performance(s.procs[p].estimate, table.max_hz());
    const double perf =
        baselines::model_performance(s.procs[p].estimate, a[p].hz);
    if (perf < (1.0 - s.epsilon) * perf_max - 1e-9) return false;
  }
  return power <= s.budget_w + 1e-9;
}

// ---------------------------------------------------------------------------
// The seeded properties.
// ---------------------------------------------------------------------------

void run_property(std::uint64_t seed) {
  sim::Rng rng(seed);
  const mach::FrequencyTable table = mach::p630_frequency_table();
  const mach::MemoryLatencies latencies = mach::p630().latencies;
  const Scenario s = random_scenario(rng, table);
  const double n_wmin =
      static_cast<double>(s.procs.size()) * table.min_point().watts;

  // --- Feasibility equivalence: LP <=> greedy pass 2 (n * w_min <= B). ---
  const auto lp_perf =
      baselines::lp_max_performance(s.procs, table, s.budget_w);
  core::FrequencyScheduler::Options opts;
  opts.epsilon = s.epsilon;
  const core::FrequencyScheduler scheduler(table, latencies, opts);
  const core::ScheduleResult greedy = scheduler.schedule(s.views, s.budget_w);
  // Skip the knife-edge: the two sides use different (tiny) comparison
  // slacks, so a budget within 1e-6 W of the floor may legitimately split.
  if (std::abs(s.budget_w - n_wmin) > 1e-6) {
    EXPECT_EQ(lp_perf.feasible, greedy.feasible)
        << "budget " << s.budget_w << " floor " << n_wmin;
  }
  if (!lp_perf.feasible) return;  // Nothing below bounds anything.

  // --- The performance LP upper-bounds every within-budget always-on
  // assignment, heuristic included: optimality gap >= 0. -----------------
  baselines::FvsstPolicy fvsst(opts);
  const auto fvsst_assign = fvsst.decide(s.procs, table, s.budget_w);
  ASSERT_EQ(fvsst_assign.size(), s.procs.size());
  const auto gap = baselines::optimality_gap(s.procs, fvsst_assign, table,
                                             s.budget_w, s.epsilon);
  if (gap.reference_performance > 0.0) {
    EXPECT_GE(gap.gap, -1e-7) << "LP bound violated at budget " << s.budget_w;
  }

  // --- The energy LP lower-bounds the heuristic's power whenever the
  // heuristic's assignment sits inside the LP's feasible set. ------------
  const auto energy =
      baselines::lp_min_energy(s.procs, table, s.budget_w, s.epsilon);
  if (in_energy_feasible_set(s, fvsst_assign, table)) {
    ASSERT_TRUE(energy.feasible)
        << "heuristic found an energy-feasible point the LP missed";
    EXPECT_LE(energy.total_power_w,
              assignment_power(fvsst_assign, table) + 1e-6);
  }

  // --- Two-frequency split: adjacency and planned budget compliance. ----
  baselines::TwoFrequencySplitPolicy split_policy(s.epsilon);
  const auto plan = split_policy.plan(s.procs, table, s.budget_w);
  ASSERT_EQ(plan.size(), s.procs.size());
  double planned_power = 0.0;
  for (std::size_t p = 0; p < plan.size(); ++p) {
    const auto& sp = plan[p];
    ASSERT_LT(sp.hi, table.size()) << "cpu " << p;
    ASSERT_LE(sp.lo, sp.hi) << "cpu " << p;
    EXPECT_LE(sp.hi - sp.lo, 1u) << "cpu " << p << ": non-adjacent split";
    EXPECT_GE(sp.hi_fraction, 0.0) << "cpu " << p;
    EXPECT_LE(sp.hi_fraction, 1.0) << "cpu " << p;
    planned_power += sp.hi_fraction * table[sp.hi].watts +
                     (1.0 - sp.hi_fraction) * table[sp.lo].watts;
  }
  EXPECT_LE(planned_power, s.budget_w + 1e-6)
      << "planned expected power exceeds the budget";

  // --- Realised intervals: table settings only, within budget. ----------
  baselines::LpFrequencySelectionPolicy lp_policy(s.epsilon);
  for (const baselines::Policy* policy :
       {static_cast<const baselines::Policy*>(&split_policy),
        static_cast<const baselines::Policy*>(&lp_policy)}) {
    const auto out = policy->decide(s.procs, table, s.budget_w);
    ASSERT_EQ(out.size(), s.procs.size()) << policy->name();
    double power = 0.0;
    for (const auto& a : out) {
      EXPECT_TRUE(a.powered_on) << policy->name();
      EXPECT_TRUE(table.contains(a.hz))
          << policy->name() << " granted off-table " << a.hz;
      power += table.power(a.hz);
    }
    EXPECT_LE(power, s.budget_w + 1e-9)
        << policy->name() << ": interval over budget";
  }
}

TEST(OptimalPolicyProperties, ThousandSeededScenarios) {
  proptest::run_seeded(110000, 1000, "./tests/test_optimal_policies",
                       run_property);
}

// ---------------------------------------------------------------------------
// Bit-determinism: two fresh instances fed the same interval sequence give
// byte-identical grants (duty-cycle credits start at zero, evolve purely
// from the inputs).
// ---------------------------------------------------------------------------

void run_determinism(std::uint64_t seed) {
  const mach::FrequencyTable table = mach::p630_frequency_table();
  sim::Rng rng_a(seed);
  sim::Rng rng_b(seed);
  baselines::TwoFrequencySplitPolicy split_a(0.04), split_b(0.04);
  baselines::LpFrequencySelectionPolicy lp_a(0.04), lp_b(0.04);
  for (int interval = 0; interval < 6; ++interval) {
    const Scenario sa = random_scenario(rng_a, table);
    const Scenario sb = random_scenario(rng_b, table);
    const auto oa = split_a.decide(sa.procs, table, sa.budget_w);
    const auto ob = split_b.decide(sb.procs, table, sb.budget_w);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t p = 0; p < oa.size(); ++p) {
      EXPECT_EQ(oa[p].hz, ob[p].hz) << "split interval " << interval;
    }
    const auto la = lp_a.decide(sa.procs, table, sa.budget_w);
    const auto lb = lp_b.decide(sb.procs, table, sb.budget_w);
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t p = 0; p < la.size(); ++p) {
      EXPECT_EQ(la[p].hz, lb[p].hz) << "lp interval " << interval;
    }
  }
}

TEST(OptimalPolicyProperties, BitDeterministicAcrossRuns) {
  proptest::run_seeded(120000, 50, "./tests/test_optimal_policies",
                       run_determinism);
}

// ---------------------------------------------------------------------------
// Directed cases.
// ---------------------------------------------------------------------------

TEST(LpMinEnergy, DrivesIdleProcessorsToFloor) {
  const mach::FrequencyTable table = mach::p630_frequency_table();
  std::vector<baselines::ProcSample> procs(2);
  procs[0].idle = true;
  procs[1].estimate = {1.0, 0.0, true};
  procs[1].idle = false;
  const auto sched =
      baselines::lp_min_energy(procs, table, 2 * 140.0, 0.04);
  ASSERT_TRUE(sched.feasible);
  // The idle CPU spends all its time at the lowest point.
  EXPECT_NEAR(sched.fractions[0][0], 1.0, 1e-6);
}

TEST(LpMinEnergy, InfeasibleWhenBudgetForcesMoreThanEpsilonLoss) {
  const mach::FrequencyTable table = mach::p630_frequency_table();
  std::vector<baselines::ProcSample> procs(4);
  for (auto& p : procs) p.estimate = {1.0, 0.0, true};  // pure CPU-bound
  // 4 CPUs, pure CPU work, epsilon 1%: needs ~0.99 * f_max everywhere,
  // ~4 * 137 W; a 100 W budget cannot fit even fractionally.
  const auto sched = baselines::lp_min_energy(procs, table, 100.0, 0.01);
  EXPECT_FALSE(sched.feasible);
  // The performance LP still is feasible (4 * 9 W floor fits) — the
  // policy's documented fallback.
  EXPECT_TRUE(baselines::lp_max_performance(procs, table, 100.0).feasible);
}

TEST(TwoFrequencySplit, PinsFloorWhenInfeasible) {
  const mach::FrequencyTable table = mach::p630_frequency_table();
  std::vector<baselines::ProcSample> procs(4);
  for (auto& p : procs) p.estimate = {1.0, 0.0, true};
  baselines::TwoFrequencySplitPolicy policy(0.04);
  // 4 * 9 W = 36 W floor; 20 W is infeasible even at minimum.
  const auto out = policy.decide(procs, table, 20.0);
  for (const auto& a : out) {
    EXPECT_EQ(a.hz, table.min_hz());
    EXPECT_TRUE(a.powered_on);
  }
}

TEST(LpPolicy, PinsFloorWhenInfeasible) {
  const mach::FrequencyTable table = mach::p630_frequency_table();
  std::vector<baselines::ProcSample> procs(4);
  for (auto& p : procs) p.estimate = {1.0, 0.0, true};
  baselines::LpFrequencySelectionPolicy policy(0.04);
  const auto out = policy.decide(procs, table, 20.0);
  for (const auto& a : out) {
    EXPECT_EQ(a.hz, table.min_hz());
    EXPECT_TRUE(a.powered_on);
  }
}

TEST(TwoFrequencySplit, DutyCycleConvergesToPlannedFraction) {
  const mach::FrequencyTable table = mach::p630_frequency_table();
  std::vector<baselines::ProcSample> procs(1);
  procs[0].estimate = {1.0, 1e-9, true};
  baselines::TwoFrequencySplitPolicy policy(0.04);
  const auto plan = policy.plan(procs, table, 140.0);
  ASSERT_EQ(plan.size(), 1u);
  if (plan[0].lo == plan[0].hi) GTEST_SKIP() << "degenerate pure point";
  int hi_grants = 0;
  const int intervals = 10000;
  for (int i = 0; i < intervals; ++i) {
    const auto out = policy.decide(procs, table, 140.0);
    if (out[0].hz == table[plan[0].hi].hz) ++hi_grants;
  }
  const double residency = static_cast<double>(hi_grants) / intervals;
  EXPECT_NEAR(residency, plan[0].hi_fraction, 0.01)
      << "long-run residency drifted from the planned split";
}

}  // namespace
}  // namespace fvsst
