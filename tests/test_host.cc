// Tests for the real-host backends (src/host).  CpufreqSysfs is tested
// against a synthetic sysfs tree; PerfEventGroup degrades gracefully when
// the kernel denies perf_event_open (common in containers).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "host/cpufreq_sysfs.h"
#include "host/perf_events.h"

namespace fvsst::host {
namespace {

namespace fs = std::filesystem;

class FakeSysfs : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() / "fvsst_sysfs_test";
    fs::remove_all(root_);
    for (int cpu = 0; cpu < 2; ++cpu) {
      const fs::path dir = root_ / ("cpu" + std::to_string(cpu)) / "cpufreq";
      fs::create_directories(dir);
      write(dir / "scaling_available_frequencies",
            "1000000 750000 500000 250000\n");
      write(dir / "cpuinfo_min_freq", "250000\n");
      write(dir / "cpuinfo_max_freq", "1000000\n");
      write(dir / "scaling_cur_freq", "750000\n");
      write(dir / "scaling_governor", "userspace\n");
    }
    // A cpu directory without cpufreq must be skipped.
    fs::create_directories(root_ / "cpu7");
    // Non-cpu entries must be ignored.
    fs::create_directories(root_ / "cpufreq");
    fs::create_directories(root_ / "cpuidle");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const fs::path& p, const std::string& content) {
    std::ofstream out(p);
    out << content;
  }

  fs::path root_;
};

TEST_F(FakeSysfs, EnumeratesCpusWithCpufreq) {
  CpufreqSysfs sysfs(root_.string());
  EXPECT_TRUE(sysfs.available());
  EXPECT_EQ(sysfs.cpus(), (std::vector<int>{0, 1}));
}

TEST_F(FakeSysfs, ReadsFullInfo) {
  CpufreqSysfs sysfs(root_.string());
  const auto info = sysfs.info(0);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->cpu, 0);
  ASSERT_EQ(info->available_hz.size(), 4u);
  EXPECT_DOUBLE_EQ(info->available_hz.front(), 250e6);  // sorted ascending
  EXPECT_DOUBLE_EQ(info->available_hz.back(), 1000e6);
  EXPECT_DOUBLE_EQ(info->min_hz, 250e6);
  EXPECT_DOUBLE_EQ(info->max_hz, 1000e6);
  EXPECT_DOUBLE_EQ(info->current_hz, 750e6);
  EXPECT_EQ(info->governor, "userspace");
}

TEST_F(FakeSysfs, MissingCpuReturnsNullopt) {
  CpufreqSysfs sysfs(root_.string());
  EXPECT_FALSE(sysfs.info(7).has_value());  // no cpufreq dir
  EXPECT_FALSE(sysfs.info(99).has_value());
}

TEST_F(FakeSysfs, SetFrequencyWritesKhz) {
  CpufreqSysfs sysfs(root_.string());
  ASSERT_TRUE(sysfs.set_frequency(1, 500e6));
  std::ifstream in(root_ / "cpu1" / "cpufreq" / "scaling_setspeed");
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "500000");
}

TEST_F(FakeSysfs, SetGovernorWrites) {
  CpufreqSysfs sysfs(root_.string());
  ASSERT_TRUE(sysfs.set_governor(0, "performance"));
  std::ifstream in(root_ / "cpu0" / "cpufreq" / "scaling_governor");
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "performance");
}

TEST(CpufreqSysfs, UnavailableRootDegradesGracefully) {
  CpufreqSysfs sysfs("/nonexistent-dir-xyz");
  EXPECT_FALSE(sysfs.available());
  EXPECT_TRUE(sysfs.cpus().empty());
  EXPECT_FALSE(sysfs.info(0).has_value());
  EXPECT_FALSE(sysfs.set_frequency(0, 1e9));
  EXPECT_FALSE(sysfs.set_governor(0, "userspace"));
}

TEST(PerfEvents, GracefulWhetherOrNotAvailable) {
  PerfEventGroup group;
  if (!group.valid()) {
    // Denied (container): all operations fail cleanly.
    EXPECT_FALSE(group.start());
    EXPECT_FALSE(group.stop());
    EXPECT_FALSE(group.read().has_value());
    GTEST_SKIP() << "perf_event_open unavailable in this environment";
  }
  ASSERT_TRUE(group.start());
  // Burn some instructions.
  volatile double x = 1.0;
  for (int i = 0; i < 1000000; ++i) x = x * 1.0000001 + 0.5;
  ASSERT_TRUE(group.stop());
  const auto counters = group.read();
  ASSERT_TRUE(counters.has_value());
  EXPECT_GT(counters->instructions, 1e6);
  EXPECT_GT(counters->cycles, 0.0);
  EXPECT_GT(counters->ipc(), 0.0);
}

}  // namespace
}  // namespace fvsst::host
