// Property-based scheduler tests: 1000 seeded (workload, counters, budget)
// triples against the paper's two-pass procedure, asserting the algebraic
// properties Fig. 3 promises rather than golden outputs:
//
//   * pass 2 only ever downgrades (granted <= desired), and a tighter
//     budget never raises any processor's grant (greedy monotonicity);
//   * the epsilon cutoff is exact: a kEpsilon grant is the lowest setting
//     whose predicted loss is under epsilon, and the next-lower setting
//     was rejected at >= epsilon;
//   * predicted power respects the budget whenever the scheduler claims
//     feasibility, and an infeasible budget pins everything to the floor;
//   * every grant is a table operating point at table-minimum voltage.
//
// Failures print the seed for one-line repro (see tests/proptest.h).
#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/policies.h"
#include "mach/machine_config.h"
#include "proptest.h"
#include "simkit/rng.h"

namespace fvsst {
namespace {

void run_property(std::uint64_t seed) {
  sim::Rng rng(seed);
  const mach::FrequencyTable table = mach::p630_frequency_table();
  const mach::MemoryLatencies latencies = mach::p630().latencies;

  core::FrequencyScheduler::Options options;
  options.epsilon = rng.uniform(0.005, 0.3);
  const core::FrequencyScheduler scheduler(table, latencies, options);

  const std::size_t cpus = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
  std::vector<core::ProcView> views(cpus);
  for (core::ProcView& view : views) {
    view.estimate.valid = rng.bernoulli(0.9);
    view.estimate.alpha_inv = rng.uniform(0.3, 3.0);
    view.estimate.mem_time_per_instr = rng.uniform(0.0, 4e-9);
    view.idle = rng.bernoulli(0.15);
    view.current_hz =
        table.points()[static_cast<std::size_t>(
                           rng.uniform_int(0, static_cast<std::int64_t>(
                                                  table.size() - 1)))]
            .hz;
  }
  // Spans clearly-infeasible (below the all-minimum floor) through
  // unconstrained (above the all-maximum peak).
  const double budget =
      rng.uniform(0.8 * static_cast<double>(cpus) * table.min_point().watts,
                  1.2 * static_cast<double>(cpus) * table.max_point().watts);

  const core::ScheduleResult result = scheduler.schedule(views, budget);
  ASSERT_EQ(result.decisions.size(), cpus);

  double total = 0.0;
  for (std::size_t i = 0; i < cpus; ++i) {
    const core::ScheduleDecision& d = result.decisions[i];
    // Pass 3: every grant is a table point at its minimum stable voltage.
    ASSERT_TRUE(table.contains(d.hz)) << "cpu " << i << " hz " << d.hz;
    EXPECT_DOUBLE_EQ(d.volts, table.min_voltage(d.hz)) << "cpu " << i;
    EXPECT_DOUBLE_EQ(d.watts, table.power(d.hz)) << "cpu " << i;
    // Pass 2 never upgrades past the pass-1 desire.
    EXPECT_LE(d.hz, d.desired_hz + 1e-9) << "cpu " << i;
    total += d.watts;

    switch (d.pass1_reason) {
      case core::Pass1Reason::kIdle:
        EXPECT_TRUE(views[i].idle) << "cpu " << i;
        EXPECT_DOUBLE_EQ(d.desired_hz, table.min_hz()) << "cpu " << i;
        break;
      case core::Pass1Reason::kNoEstimate:
        EXPECT_FALSE(views[i].estimate.valid) << "cpu " << i;
        EXPECT_DOUBLE_EQ(d.desired_hz, table.max_hz()) << "cpu " << i;
        break;
      case core::Pass1Reason::kEpsilon: {
        // The cutoff is exact: desired is under epsilon, the next-lower
        // setting (when one exists) was rejected at >= epsilon.
        EXPECT_LT(scheduler.predicted_loss(views[i].estimate, d.desired_hz),
                  options.epsilon)
            << "cpu " << i;
        if (const auto lower = table.next_lower(d.desired_hz)) {
          EXPECT_GE(scheduler.predicted_loss(views[i].estimate, lower->hz),
                    options.epsilon)
              << "cpu " << i;
        }
        break;
      }
      case core::Pass1Reason::kFmax: {
        EXPECT_DOUBLE_EQ(d.desired_hz, table.max_hz()) << "cpu " << i;
        // Loss shrinks as frequency grows, so the setting just under f_max
        // bounds every lower one: all were rejected at >= epsilon.
        if (const auto lower = table.next_lower(table.max_hz())) {
          EXPECT_GE(scheduler.predicted_loss(views[i].estimate, lower->hz),
                    options.epsilon)
              << "cpu " << i;
        }
        break;
      }
      case core::Pass1Reason::kUnspecified:
        ADD_FAILURE() << "two-pass scheduler left cpu " << i
                      << " unclassified";
        break;
    }
  }
  EXPECT_NEAR(total, result.total_cpu_power_w, 1e-6);

  if (result.feasible) {
    EXPECT_LE(result.total_cpu_power_w, budget + 1e-9);
  } else {
    // Infeasible means even the all-minimum configuration exceeds the
    // budget, and that floor is what must have been granted.
    EXPECT_GT(static_cast<double>(cpus) * table.min_point().watts,
              budget - 1e-9);
    for (const core::ScheduleDecision& d : result.decisions) {
      EXPECT_DOUBLE_EQ(d.hz, table.min_hz());
    }
  }

  // Greedy monotonicity: a tighter budget never raises any grant.
  const double tighter_budget = budget * rng.uniform(0.3, 0.95);
  const core::ScheduleResult tighter = scheduler.schedule(views, tighter_budget);
  ASSERT_EQ(tighter.decisions.size(), cpus);
  for (std::size_t i = 0; i < cpus; ++i) {
    EXPECT_LE(tighter.decisions[i].hz, result.decisions[i].hz + 1e-9)
        << "cpu " << i << " budget " << budget << " -> " << tighter_budget;
  }
}

TEST(SchedulerProperties, ThousandSeededTriples) {
  proptest::run_seeded(100000, 1000,
                       "./tests/test_scheduler_properties",
                       run_property);
}

// --- Cross-policy invariants ----------------------------------------------
//
// Every registered comparator (baselines::standard_policies) must, on any
// scenario: grant only table operating points while powered on, respect
// the budget whenever it is honourable (policies documented as
// budget-blind or power-gating are exempt — no-dvfs ignores the budget,
// power-down/consolidate keep a last host alive even over it), and be
// bit-deterministic across two fresh registry instances.

bool budget_exempt(const std::string& name) {
  return name == "no-dvfs" || name == "power-down" || name == "consolidate";
}

void run_cross_policy_property(std::uint64_t seed) {
  sim::Rng rng(seed);
  const mach::FrequencyTable table = mach::p630_frequency_table();

  const std::size_t cpus = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
  std::vector<baselines::ProcSample> procs(cpus);
  for (auto& p : procs) {
    p.estimate.valid = rng.bernoulli(0.9);
    p.estimate.alpha_inv = rng.uniform(0.3, 3.0);
    p.estimate.mem_time_per_instr = rng.uniform(0.0, 4e-9);
    p.idle = rng.bernoulli(0.15);
    p.naive_utilization = rng.uniform(0.0, 1.0);
  }
  const double budget =
      rng.uniform(0.8 * static_cast<double>(cpus) * table.min_point().watts,
                  1.2 * static_cast<double>(cpus) * table.max_point().watts);
  const bool floor_fits =
      static_cast<double>(cpus) * table.min_point().watts <=
      budget - 1e-6;  // clear of the knife-edge

  const auto registry_a = baselines::standard_policies();
  const auto registry_b = baselines::standard_policies();
  ASSERT_EQ(registry_a.size(), registry_b.size());
  for (std::size_t k = 0; k < registry_a.size(); ++k) {
    const auto& policy = *registry_a[k];
    SCOPED_TRACE(policy.name());
    const auto out = policy.decide(procs, table, budget);
    ASSERT_EQ(out.size(), cpus);
    double power = 0.0;
    for (const auto& a : out) {
      if (!a.powered_on) continue;
      // Never a frequency outside the table.
      ASSERT_TRUE(table.contains(a.hz)) << "off-table grant " << a.hz;
      power += table.power(a.hz);
    }
    if (floor_fits && !budget_exempt(policy.name())) {
      EXPECT_LE(power, budget + 1e-9) << "over budget";
    }
    // Bit-determinism: a fresh instance from a fresh registry makes the
    // same decisions (no hidden wall-clock or cross-instance state).
    const auto again = registry_b[k]->decide(procs, table, budget);
    ASSERT_EQ(again.size(), out.size());
    for (std::size_t p = 0; p < out.size(); ++p) {
      EXPECT_EQ(out[p].hz, again[p].hz) << "cpu " << p;
      EXPECT_EQ(out[p].powered_on, again[p].powered_on) << "cpu " << p;
    }
  }
}

TEST(CrossPolicyProperties, EveryRegisteredPolicyKeepsCoreInvariants) {
  proptest::run_seeded(130000, 300,
                       "./tests/test_scheduler_properties "
                       "--gtest_filter=CrossPolicyProperties.*",
                       run_cross_policy_property);
}

}  // namespace
}  // namespace fvsst
