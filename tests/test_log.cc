// Tests for the logging subsystem (simkit/log.h).
#include "simkit/log.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace fvsst::sim {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override {
    set_log_level(previous_);
    unsetenv("FVSST_LOG");
  }
  LogLevel previous_;
};

TEST_F(LogTest, LevelFiltering) {
  set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  log_message(LogLevel::kDebug, "t", "dropped");
  log_message(LogLevel::kInfo, "t", "dropped too");
  log_message(LogLevel::kWarn, "t", "kept-warn");
  log_message(LogLevel::kError, "t", "kept-error");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept-warn"), std::string::npos);
  EXPECT_NE(out.find("kept-error"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log_message(LogLevel::kError, "t", "should not appear");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST_F(LogTest, SimTimestampFormatting) {
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log_message(LogLevel::kInfo, "sched", "with time", 1.25);
  log_message(LogLevel::kInfo, "sched", "without time");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[t=1.2500s]"), std::string::npos);
  EXPECT_NE(out.find("[sched] without time"), std::string::npos);
}

TEST_F(LogTest, StreamStyleLogLine) {
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  { LogLine(LogLevel::kInfo, "x", 2.0) << "value=" << 42 << " ok"; }
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("value=42 ok"), std::string::npos);
}

TEST_F(LogTest, EnvInitialisation) {
  setenv("FVSST_LOG", "debug", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  setenv("FVSST_LOG", "off", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kOff);
  setenv("FVSST_LOG", "nonsense", 1);
  const LogLevel before = log_level();
  init_log_level_from_env();
  EXPECT_EQ(log_level(), before);  // unknown values leave the level alone
  unsetenv("FVSST_LOG");
  set_log_level(LogLevel::kInfo);
  init_log_level_from_env();  // unset: no change
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

}  // namespace
}  // namespace fvsst::sim
