// test_parallel_stepper - The deterministic parallel node stepper: the
// StepPool's fixed-partition contract, and the headline guarantee that
// step_threads is invisible to the simulation — identical journals,
// telemetry and final core state at any thread count, including under
// fault plans, coordinator failover and network partitions.
#include "cluster/parallel_stepper.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "core/cluster_daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "simkit/telemetry.h"
#include "workload/synthetic.h"

namespace fvsst {
namespace {

// --- StepPool contract ----------------------------------------------------

TEST(StepPool, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    cluster::StepPool pool(threads);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                          std::size_t{8}, std::size_t{100}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.run(n, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "index " << i << " with n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(StepPool, PartitionIsFixedByIndexModulus) {
  // The worker that processes index i is determined by i % threads alone:
  // same residue, same thread — across indices and across run() calls.
  constexpr int kThreads = 4;
  constexpr std::size_t kN = 64;
  cluster::StepPool pool(kThreads);
  std::vector<std::thread::id> owner_a(kN), owner_b(kN);
  pool.run(kN, [&](std::size_t i) { owner_a[i] = std::this_thread::get_id(); });
  pool.run(kN, [&](std::size_t i) { owner_b[i] = std::this_thread::get_id(); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(owner_a[i], owner_a[i % kThreads])
        << "index " << i << " not on its residue's thread";
    EXPECT_EQ(owner_a[i], owner_b[i]) << "partition moved between runs";
  }
  // The caller itself is worker 0.
  EXPECT_EQ(owner_a[0], std::this_thread::get_id());
}

TEST(StepPool, ReusableAcrossGenerations) {
  cluster::StepPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.run(7, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 200 * 7);
}

TEST(StepPool, SingleThreadRunsInline) {
  cluster::StepPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::thread::id caller = std::this_thread::get_id();
  pool.run(5, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

// --- Serial-vs-parallel equivalence ---------------------------------------

/// The journal's actuation events carry host wall-clock stage timings
/// (estimate_s and friends) that measure this machine, not the simulated
/// cluster; strip them before comparing runs.
bool is_wall_clock_field(const std::string& key) {
  return key == "estimate_s" || key == "policy_s" || key == "actuate_s" ||
         key == "sample_s" || key == "cycle_s";
}

std::string normalized_jsonl(const sim::EventLog& log) {
  std::string out;
  for (const sim::Event& e : log.events()) {
    sim::Event copy = e;
    std::erase_if(copy.num,
                  [](const auto& kv) { return is_wall_clock_field(kv.first); });
    sim::append_event_jsonl(out, copy);
  }
  return out;
}

struct Scenario {
  const char* name;
  bool standby = false;
  double failsafe_factor = 0.0;
  std::vector<sim::FaultSpec> faults;
};

/// One cluster run at the given thread count; returns everything the
/// simulation can observe: the normalized journal, the telemetry export,
/// and the final per-core state.
std::string run_scenario(const Scenario& sc, int threads) {
  sim::Simulation sim;
  sim::Rng rng(23);
  const mach::MachineConfig machine = mach::p630();
  constexpr std::size_t kNodes = 6;
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, kNodes, rng);
  // Mixed load: two busy nodes, one light, the rest idle.
  cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(90.0, 1e12));
  cluster.core({1, 0}).add_workload(
      workload::make_uniform_synthetic(60.0, 1e12));
  cluster.core({4, 2}).add_workload(
      workload::make_uniform_synthetic(25.0, 1e12));

  const double peak = static_cast<double>(cluster.cpu_count()) * 140.0;
  power::PowerBudget budget(peak);
  sim.schedule_at(0.9, [&] { budget.set_limit_w(peak * 0.4); });

  sim::FaultPlan plan(5);
  for (const sim::FaultSpec& f : sc.faults) plan.add(f);

  sim::EventLog journal;
  core::ClusterDaemonConfig cfg;
  cfg.journal = &journal;
  cfg.step_threads = threads;
  if (!plan.empty()) cfg.fault_plan = &plan;
  cfg.failover.standby = sc.standby;
  cfg.failover.node_failsafe_factor = sc.failsafe_factor;
  core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.run_for(2.5);

  std::ostringstream out;
  out << normalized_jsonl(journal);
  // Telemetry: everything except the loop/*_s counters, which accumulate
  // host wall-clock stage costs (the *_count and cycle counters are
  // simulation facts and must match).
  std::ostringstream metrics;
  sim::JsonLinesSink sink(metrics);
  daemon.telemetry().export_to(sink);
  std::istringstream metric_lines(metrics.str());
  for (std::string line; std::getline(metric_lines, line);) {
    const auto metric = line.find("\"metric\":\"");
    const auto name_end = line.find('"', metric + 10);
    if (metric != std::string::npos && name_end != std::string::npos &&
        line.compare(name_end - 2, 2, "_s") == 0) {
      continue;
    }
    out << line << '\n';
  }
  for (const auto& addr : cluster.all_procs()) {
    auto& core = cluster.core(addr);
    char buf[160];
    std::snprintf(buf, sizeof buf, "core %zu.%zu hz=%.17g instr=%.17g\n",
                  addr.node, addr.cpu, core.frequency_hz(),
                  core.instructions_retired());
    out << buf;
  }
  return out.str();
}

class ParallelEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(ParallelEquivalence, ThreadCountIsInvisible) {
  const Scenario& sc = GetParam();
  const std::string serial = run_scenario(sc, 1);
  ASSERT_FALSE(serial.empty());
  for (int threads : {2, 8}) {
    const std::string parallel = run_scenario(sc, threads);
    EXPECT_EQ(serial, parallel)
        << sc.name << ": --threads " << threads
        << " changed the simulation";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ParallelEquivalence,
    ::testing::Values(
        Scenario{"budget_drop", false, 0.0, {}},
        Scenario{"node_crash",
                 false,
                 0.0,
                 {{sim::FaultKind::kNodeCrash, 0.7, 1.6, 1, 0.0}}},
        Scenario{"channel_loss_stale",
                 false,
                 0.0,
                 {{sim::FaultKind::kChannelLoss, 0.4, 1.4, 0, 0.6},
                  {sim::FaultKind::kStaleSummaries, 1.0, 1.8, 4, 0.0}}},
        Scenario{"coordinator_crash_failover",
                 true,
                 2.0,
                 {{sim::FaultKind::kCoordinatorCrash, 0.85, 1.9, 0, 0.0}}},
        Scenario{"partition",
                 true,
                 0.0,
                 {{sim::FaultKind::kPartition, 0.8, 1.7, 0, 0.0}}}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return std::string(info.param.name);
    });

// Crashed nodes must not be pre-synced by the worker pool: syncing a core
// at a time the serial run would not introduces extra RNG chunk
// boundaries and changes the bits.  This scenario crashes a node over a
// window that is not aligned to any tick and checks the recovery path too.
TEST(ParallelStepperFaults, CrashWindowUnalignedToTicks) {
  Scenario sc{"unaligned_crash",
              false,
              0.0,
              {{sim::FaultKind::kNodeCrash, 0.7037, 1.6113, 0, 0.0}}};
  EXPECT_EQ(run_scenario(sc, 1), run_scenario(sc, 8));
}

}  // namespace
}  // namespace fvsst
