// Tests for the workload trace format (workload/trace.h).
#include "workload/trace.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "simkit/rng.h"

#include "workload/app_profiles.h"

namespace fvsst::workload {
namespace {

namespace fs = std::filesystem;

constexpr const char* kValid = R"(
# a comment
workload my-app
loop
phase init 1.2 18 3 4 3e8 1.3
phase main 1.5 5 0.3 0.1 7e9   # trailing comment
)";

TEST(Trace, ParsesValidDefinition) {
  const WorkloadSpec spec = parse_workload_trace_string(kValid);
  EXPECT_EQ(spec.name, "my-app");
  EXPECT_TRUE(spec.loop);
  ASSERT_EQ(spec.phases.size(), 2u);
  EXPECT_EQ(spec.phases[0].name, "init");
  EXPECT_DOUBLE_EQ(spec.phases[0].alpha, 1.2);
  EXPECT_DOUBLE_EQ(spec.phases[0].apki_mem, 4.0);
  EXPECT_DOUBLE_EQ(spec.phases[0].instructions, 3e8);
  EXPECT_DOUBLE_EQ(spec.phases[0].latency_scale, 1.3);
  EXPECT_DOUBLE_EQ(spec.phases[1].latency_scale, 1.0);  // defaulted
}

TEST(Trace, ErrorsCarryLineNumbers) {
  try {
    parse_workload_trace_string("workload x\nphase bad 1.0 0 0 0 oops\n");
    FAIL() << "expected TraceParseError";
  } catch (const TraceParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("instructions"), std::string::npos);
  }
}

TEST(Trace, RejectsMalformedInput) {
  EXPECT_THROW(parse_workload_trace_string(""), TraceParseError);
  EXPECT_THROW(parse_workload_trace_string("workload x\n"), TraceParseError);
  EXPECT_THROW(parse_workload_trace_string("phase p 1 0 0 0 1e9\n"),
               TraceParseError);  // phase before workload
  EXPECT_THROW(parse_workload_trace_string("loop\n"), TraceParseError);
  EXPECT_THROW(parse_workload_trace_string("workload a\nworkload b\n"),
               TraceParseError);
  EXPECT_THROW(parse_workload_trace_string("banana\n"), TraceParseError);
  EXPECT_THROW(
      parse_workload_trace_string("workload x\nphase p 1 0 0 0\n"),
      TraceParseError);  // too few fields
  EXPECT_THROW(
      parse_workload_trace_string("workload x\nphase p 1 0 0 0 1e9 1 1\n"),
      TraceParseError);  // too many fields
}

TEST(Trace, RejectsOutOfDomainValues) {
  EXPECT_THROW(
      parse_workload_trace_string("workload x\nphase p 0 0 0 0 1e9\n"),
      TraceParseError);  // alpha
  EXPECT_THROW(
      parse_workload_trace_string("workload x\nphase p 1 -1 0 0 1e9\n"),
      TraceParseError);  // negative rate
  EXPECT_THROW(
      parse_workload_trace_string("workload x\nphase p 1 0 0 0 0\n"),
      TraceParseError);  // instructions
  EXPECT_THROW(
      parse_workload_trace_string("workload x\nphase p 1 0 0 0 1e9 -1\n"),
      TraceParseError);  // latency_scale
  EXPECT_THROW(
      parse_workload_trace_string("workload x\nphase p 1 0 0 0 1e9x\n"),
      TraceParseError);  // trailing junk
}

TEST(Trace, RoundTripsThroughFormatter) {
  const WorkloadSpec original = mcf();
  const WorkloadSpec reparsed =
      parse_workload_trace_string(format_workload_trace(original));
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.loop, original.loop);
  ASSERT_EQ(reparsed.phases.size(), original.phases.size());
  for (std::size_t i = 0; i < original.phases.size(); ++i) {
    EXPECT_EQ(reparsed.phases[i].name, original.phases[i].name);
    EXPECT_DOUBLE_EQ(reparsed.phases[i].alpha, original.phases[i].alpha);
    EXPECT_DOUBLE_EQ(reparsed.phases[i].apki_l2, original.phases[i].apki_l2);
    EXPECT_DOUBLE_EQ(reparsed.phases[i].apki_l3, original.phases[i].apki_l3);
    EXPECT_DOUBLE_EQ(reparsed.phases[i].apki_mem,
                     original.phases[i].apki_mem);
    EXPECT_DOUBLE_EQ(reparsed.phases[i].instructions,
                     original.phases[i].instructions);
    EXPECT_DOUBLE_EQ(reparsed.phases[i].latency_scale,
                     original.phases[i].latency_scale);
  }
}

TEST(Trace, SaveAndLoadFile) {
  const fs::path dir = fs::temp_directory_path() / "fvsst_trace_test";
  fs::create_directories(dir);
  const fs::path file = dir / "wl.trace";
  save_workload_trace(file.string(), gzip());
  const WorkloadSpec loaded = load_workload_trace(file.string());
  EXPECT_EQ(loaded.name, "gzip");
  EXPECT_EQ(loaded.phases.size(), gzip().phases.size());
  fs::remove_all(dir);
}

TEST(Trace, LoadMissingFileThrows) {
  EXPECT_THROW(load_workload_trace("/nonexistent-dir-xyz/wl.trace"),
               std::runtime_error);
}

// Fuzz-ish robustness: random token soup either parses or raises
// TraceParseError — never crashes, never returns a half-formed spec.
class TraceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceFuzz, GarbageNeverCrashes) {
  sim::Rng rng(GetParam());
  static const char* kTokens[] = {
      "workload", "loop", "phase", "p", "1.5", "-3", "1e9", "0", "abc",
      "#", "\n", "1e", "nan", "inf", "9e999", "2.5", "100", "x1",
  };
  std::string text;
  const int lines = static_cast<int>(rng.uniform_int(1, 12));
  for (int l = 0; l < lines; ++l) {
    const int words = static_cast<int>(rng.uniform_int(0, 8));
    for (int w = 0; w < words; ++w) {
      text += kTokens[rng.uniform_int(0, std::size(kTokens) - 1)];
      text += ' ';
    }
    text += '\n';
  }
  try {
    const WorkloadSpec spec = parse_workload_trace_string(text);
    // If it parsed, it must be a usable spec.
    EXPECT_FALSE(spec.phases.empty());
    for (const auto& p : spec.phases) {
      EXPECT_GT(p.alpha, 0.0);
      EXPECT_GT(p.instructions, 0.0);
    }
  } catch (const TraceParseError& e) {
    EXPECT_GE(e.line(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz,
                         ::testing::Range<std::uint64_t>(1, 65));

}  // namespace
}  // namespace fvsst::workload
