// Tests for streaming statistics (simkit/stats.h).
#include "simkit/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fvsst::sim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleVarianceZero) {
  RunningStat s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(RunningStat, MergeMatchesCombined) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(TimeWeightedStat, PiecewiseConstantMean) {
  TimeWeightedStat s;
  s.record(0.0, 10.0);  // 10 for [0, 2)
  s.record(2.0, 20.0);  // 20 for [2, 3)
  EXPECT_NEAR(s.mean_until(3.0), (10.0 * 2 + 20.0 * 1) / 3.0, 1e-12);
}

TEST(TimeWeightedStat, IntegralIsEnergy) {
  TimeWeightedStat s;
  s.record(0.0, 100.0);
  s.record(5.0, 50.0);
  // 100 W for 5 s + 50 W for 5 s = 750 J.
  EXPECT_NEAR(s.integral_until(10.0), 750.0, 1e-9);
}

TEST(TimeWeightedStat, RepeatedSameTimeKeepsLast) {
  TimeWeightedStat s;
  s.record(0.0, 1.0);
  s.record(0.0, 9.0);  // overrides before any time passes
  EXPECT_NEAR(s.mean_until(1.0), 9.0, 1e-12);
}

TEST(TimeWeightedStat, EmptyIsZero) {
  TimeWeightedStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean_until(5.0), 0.0);
  EXPECT_DOUBLE_EQ(s.integral_until(5.0), 0.0);
}

TEST(Histogram, BinningAndFractions) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(9.99);  // bin 4
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.fraction(4), 0.5);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(+100.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, WeightedSamples) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  h.add(0.75, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(CategoryHistogram, ExactKeys) {
  CategoryHistogram h;
  h.add(650e6, 2.0);
  h.add(1000e6, 1.0);
  h.add(650e6, 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.fraction(650e6), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1000e6), 0.25);
  EXPECT_DOUBLE_EQ(h.fraction(42.0), 0.0);
}

TEST(CategoryHistogram, SortedAscending) {
  CategoryHistogram h;
  h.add(3.0);
  h.add(1.0);
  h.add(2.0);
  const auto entries = h.sorted();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_DOUBLE_EQ(entries[0].key, 1.0);
  EXPECT_DOUBLE_EQ(entries[1].key, 2.0);
  EXPECT_DOUBLE_EQ(entries[2].key, 3.0);
}

TEST(CategoryHistogram, EmptyFractionIsZero) {
  CategoryHistogram h;
  EXPECT_DOUBLE_EQ(h.fraction(1.0), 0.0);
  EXPECT_TRUE(h.sorted().empty());
}

// Histogram::quantile is a total function: every input returns a value
// (possibly NaN), nothing throws, and the endpoints pin to the observed
// support rather than the configured range.

TEST(HistogramQuantile, EmptyReturnsNaN) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.quantile(1.0)));
}

TEST(HistogramQuantile, NaNProbabilityReturnsNaN) {
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  EXPECT_TRUE(std::isnan(h.quantile(std::nan(""))));
}

TEST(HistogramQuantile, ProbabilityClampsIntoUnitInterval) {
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
}

TEST(HistogramQuantile, EndpointsPinToObservedSupport) {
  Histogram h(0.0, 10.0, 10);
  h.add(5.2);  // lands in bin [5, 6)
  // A single sample spans exactly its own bin, not the configured range.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);
}

TEST(HistogramQuantile, InterpolatesWithinCrossingBin) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 4; ++i) h.add(2.5);  // bin [2, 3)
  for (int i = 0; i < 4; ++i) h.add(7.5);  // bin [7, 8)
  // The median falls between the two occupied bins; whichever bin the
  // cumulative crossing lands in, the estimate stays inside the support.
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 2.0);
  EXPECT_LE(median, 8.0);
  // p = 0.25 sits mid-way through the first bin's mass.
  EXPECT_NEAR(h.quantile(0.25), 2.5, 0.51);
}

TEST(HistogramQuantile, MonotoneInProbability) {
  Histogram h(0.0, 100.0, 50);
  unsigned state = 12345;
  for (int i = 0; i < 1000; ++i) {
    state = state * 1664525u + 1013904223u;
    h.add(static_cast<double>(state % 10000u) / 100.0);
  }
  double prev = h.quantile(0.0);
  for (double p = 0.05; p <= 1.0 + 1e-12; p += 0.05) {
    const double q = h.quantile(p);
    EXPECT_GE(q, prev - 1e-12) << "p=" << p;
    prev = q;
  }
}

}  // namespace
}  // namespace fvsst::sim
