// Edge cases for the telemetry export sinks (simkit/telemetry.h): JSON
// string escaping, the JSON-lines format, resampled CSV export, and the
// CsvDirectorySink's directory-creation/failure accounting.
#include "simkit/telemetry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace fvsst::sim {
namespace {

namespace fs = std::filesystem;

std::string escaped(std::string_view in) {
  std::ostringstream out;
  write_json_string(out, in);
  return out.str();
}

TEST(JsonString, EscapesQuotesBackslashesAndShortForms) {
  EXPECT_EQ(escaped("plain"), "\"plain\"");
  EXPECT_EQ(escaped("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(escaped("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(escaped("a\nb\tc\rd\be\ff"), "\"a\\nb\\tc\\rd\\be\\ff\"");
}

TEST(JsonString, EscapesRemainingControlCharsAsUnicode) {
  // Every control character < 0x20 without a short form must come out as
  // \u00XX — a bare 0x01 or 0x1f in the stream is invalid JSON.
  EXPECT_EQ(escaped(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(escaped(std::string(1, '\x0b')), "\"\\u000b\"");
  EXPECT_EQ(escaped(std::string(1, '\x1f')), "\"\\u001f\"");
  // 0x20 and up pass through.
  EXPECT_EQ(escaped(" ~"), "\" ~\"");
}

TEST(JsonLinesSink, WritesOneParseableObjectPerMetric) {
  MetricRegistry registry;
  TimeSeries& s = registry.series("cpu0/granted_hz", "granted_hz");
  s.add(0.0, 1e9);
  s.add(0.1, 8e8);
  registry.counter("loop/cycles") = 20.0;

  std::ostringstream out;
  JsonLinesSink sink(out);
  registry.export_to(sink);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"metric\":\"cpu0/granted_hz\""), std::string::npos);
  EXPECT_NE(line.find("\"samples\":[[0,1e+09],[0.1,8e+08]]"),
            std::string::npos)
      << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"metric\":\"loop/cycles\""), std::string::npos);
  EXPECT_NE(line.find("\"value\":20"), std::string::npos);
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(MetricRegistry, HandlesAliasTheStringApi) {
  MetricRegistry registry;
  const MetricId sid = registry.intern_series("cpu0/granted_hz", "granted0");
  ASSERT_TRUE(sid.valid());
  // Same storage whichever way it is reached.
  registry.series(sid).add(0.0, 1e9);
  registry.series("cpu0/granted_hz").add(0.1, 8e8);
  EXPECT_EQ(registry.series(sid).size(), 2u);
  EXPECT_EQ(&registry.series(sid), &registry.series("cpu0/granted_hz"));
  EXPECT_EQ(registry.series_key(sid), "cpu0/granted_hz");
  // Re-interning an existing key returns the same handle.
  EXPECT_EQ(registry.intern_series("cpu0/granted_hz").index, sid.index);

  const CounterId cid = registry.intern_counter("loop/cycles");
  registry.counter(cid) = 41.0;
  ++registry.counter("loop/cycles");
  EXPECT_DOUBLE_EQ(registry.counter(cid), 42.0);
  EXPECT_EQ(registry.counter_key(cid), "loop/cycles");
  EXPECT_EQ(registry.intern_counter("loop/cycles").index, cid.index);
}

TEST(MetricRegistry, HandleAccessDoesNotTouchTheHashMap) {
  MetricRegistry registry;
  const MetricId sid = registry.intern_series("cpu0/granted_hz");
  const CounterId cid = registry.intern_counter("loop/cycles");
  const std::uint64_t before = registry.map_lookups();
  for (int i = 0; i < 1000; ++i) {
    registry.series(sid).add(i * 0.01, 1e9);
    ++registry.counter(cid);
  }
  EXPECT_EQ(registry.map_lookups(), before);
  // The string paths do count, one lookup per call.
  registry.series("cpu0/granted_hz");
  registry.counter("loop/cycles");
  registry.counter_value("loop/cycles");
  EXPECT_EQ(registry.map_lookups(), before + 3);
}

TEST(MetricRegistry, KeyListsAreRegistrationOrdered) {
  MetricRegistry registry;
  registry.series("b");
  registry.series("a");
  registry.series("b");  // no duplicate registration
  registry.counter("z");
  registry.counter("y");
  const std::vector<std::string>& series = registry.series_keys();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0], "b");
  EXPECT_EQ(series[1], "a");
  const std::vector<std::string>& counters = registry.counter_keys();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0], "z");
  EXPECT_EQ(counters[1], "y");
}

class CsvSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("fvsst_sink_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void fill(MetricRegistry& registry) {
    TimeSeries& s = registry.series("cpu0/granted_hz");
    s.add(0.0, 1e9);
    s.add(0.05, 8e8);
    s.add(0.20, 9e8);
    registry.counter("loop/cycles") = 3.0;
  }

  fs::path root_;
};

TEST_F(CsvSinkTest, CreatesMissingDirectoryTree) {
  // The target (including intermediate components) does not exist yet; the
  // sink must create it rather than failing every write.
  const fs::path dir = root_ / "nested" / "csv";
  ASSERT_FALSE(fs::exists(dir));
  MetricRegistry registry;
  fill(registry);
  {
    CsvDirectorySink sink(dir.string());
    registry.export_to(sink);
    EXPECT_EQ(sink.failures(), 0u);
  }
  EXPECT_TRUE(fs::exists(dir / "cpu0_granted_hz.csv"));
  EXPECT_TRUE(fs::exists(dir / "counters.csv"));
}

TEST_F(CsvSinkTest, ResamplesOntoUniformGridWhenDtPositive) {
  MetricRegistry registry;
  fill(registry);
  {
    CsvDirectorySink sink((root_ / "csv").string(), /*dt=*/0.1);
    registry.export_to(sink);
    EXPECT_EQ(sink.failures(), 0u);
  }
  std::ifstream in(root_ / "csv" / "cpu0_granted_hz.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  // Header + samples on the 0.1 s grid over [0, 0.2]: t = 0, 0.1, 0.2.
  EXPECT_EQ(rows, 4u);
}

TEST_F(CsvSinkTest, CountsFailuresWhenDirectoryIsAFile) {
  // A plain file where the directory should go: create_directories fails,
  // and every subsequent write is counted in failures() instead of thrown.
  fs::create_directories(root_);
  const fs::path clash = root_ / "not_a_dir";
  std::ofstream(clash).put('x');
  MetricRegistry registry;
  fill(registry);
  std::size_t failures = 0;
  {
    CsvDirectorySink sink(clash.string());
    registry.export_to(sink);
    failures = sink.failures();
  }
  EXPECT_GT(failures, 0u);
}

}  // namespace
}  // namespace fvsst::sim
