// Tests for the reliable cluster transport (cluster/transport.h): framing
// and checksums, ack/retransmit sessions, duplicate suppression, epoch
// fencing, the channel fault shim, the fault-plan parser's validation of
// the new channel kinds, and the daemon-level guarantees — journal
// invariants (bounded convergence included) and bit determinism under
// adversarial channels.
//
// The property sweep drives a synthetic coordinator/node harness over
// 1000 seeded fault scenarios; a CI failure reproduces locally with
//   FVSST_CHAOS_SEED=<seed> ./tests/test_transport
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/transport.h"
#include "core/cluster_daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "proptest.h"
#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst {
namespace {

using cluster::Envelope;
using cluster::Frame;
using cluster::Transport;
using cluster::TransportMode;
using cluster::TransportOptions;
using units::ms;

// --- Framing ---------------------------------------------------------------

TEST(Frame, ChecksumDetectsAnySingleFieldDamage) {
  Frame frame;
  frame.envelope.epoch = 7;
  frame.envelope.sender = 1;
  frame.seq = 42;
  frame.ack = 13;
  frame.checksum = cluster::frame_checksum(frame);
  EXPECT_FALSE(cluster::frame_corrupt(frame));

  Frame damaged = frame;
  damaged.seq ^= 1;
  EXPECT_TRUE(cluster::frame_corrupt(damaged));
  damaged = frame;
  damaged.ack += 1;
  EXPECT_TRUE(cluster::frame_corrupt(damaged));
  damaged = frame;
  damaged.envelope.epoch = 8;
  EXPECT_TRUE(cluster::frame_corrupt(damaged));
  damaged = frame;
  damaged.envelope.sender = 0;
  EXPECT_TRUE(cluster::frame_corrupt(damaged));
  damaged = frame;
  damaged.checksum ^= 0x5a5a5a5a5a5a5a5aull;
  EXPECT_TRUE(cluster::frame_corrupt(damaged));
}

// --- Session-layer unit tests ----------------------------------------------

struct Harness {
  sim::Simulation sim;
  cluster::Channel channel;
  TransportOptions opts;

  explicit Harness(TransportMode mode, double latency = 0.002)
      : channel(sim, latency, 0.0, sim::Rng(404)) {
    opts.mode = mode;
    opts.round_period_s = 0.1;
  }
};

TEST(Transport, DatagramFramesAreUnsequenced) {
  Harness h(TransportMode::kDatagram);
  Transport t(h.sim, h.channel, nullptr, h.opts, 2, 1, "down");
  std::vector<std::uint64_t> seqs;
  Envelope envelope;
  t.send(0, envelope, 0, true,
         [&](const Frame& f) { seqs.push_back(f.seq); });
  t.send(0, envelope, 0, true,
         [&](const Frame& f) { seqs.push_back(f.seq); });
  h.sim.run_for(0.05);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 0}));
  EXPECT_FALSE(t.has_pending());  // datagram tracks nothing
  EXPECT_EQ(t.retransmits(), 0u);
}

TEST(Transport, ReliableSequencesPerNodeAndAcksRelease) {
  Harness h(TransportMode::kReliable);
  Transport t(h.sim, h.channel, nullptr, h.opts, 2, 1, "down");
  std::vector<std::uint64_t> node0;
  std::vector<std::uint64_t> node1;
  Envelope envelope;
  envelope.epoch = 1;
  t.send(0, envelope, 0, true, [&](const Frame& f) { node0.push_back(f.seq); });
  t.send(1, envelope, 0, true, [&](const Frame& f) { node1.push_back(f.seq); });
  t.send(0, envelope, 0, true, [&](const Frame& f) { node0.push_back(f.seq); });
  h.sim.run_for(0.05);
  EXPECT_EQ(node0, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(node1, (std::vector<std::uint64_t>{1}));
  EXPECT_TRUE(t.has_pending());
  t.on_ack(0, 1, 2);
  t.on_ack(1, 1, 1);
  EXPECT_FALSE(t.has_pending());
  h.sim.run_for(2.0);  // no timer retries after release
  EXPECT_EQ(t.retransmits(), 0u);
}

TEST(Transport, TimerRetransmitsThroughLossBurstThenDelivers) {
  // A 100%-loss window shorter than the retransmit schedule: the first
  // transmission and early retries are eaten, a later retry lands.
  sim::FaultPlan plan(3);
  plan.add({sim::FaultKind::kChannelLoss, 0.0, 0.3, /*target=*/0, 1.0});
  Harness h(TransportMode::kReliable);
  Transport t(h.sim, h.channel, &plan, h.opts, 1, 1, "down");
  int fault_drops = 0;
  Transport::Hooks hooks;
  hooks.on_fault_drop = [&](int) { ++fault_drops; };
  t.set_hooks(std::move(hooks));
  std::vector<double> applied_at;
  Envelope envelope;
  envelope.epoch = 1;
  // A minimal node: dedup-admitted frames apply and ack immediately, as
  // the daemon's apply path does via the next summary.
  t.send(0, envelope, 0, true, [&](const Frame& f) {
    if (t.receive_at_node(0, f) == Transport::Verdict::kDuplicate) return;
    applied_at.push_back(h.sim.now());
    t.on_ack(0, f.envelope.epoch, f.seq);
  });
  h.sim.run_for(1.5);
  ASSERT_EQ(applied_at.size(), 1u);
  EXPECT_GT(applied_at.front(), 0.3);
  EXPECT_GT(t.retransmits(), 0u);
  EXPECT_GT(fault_drops, 0);
  EXPECT_FALSE(t.has_pending());
  EXPECT_EQ(t.expired(), 0u);
}

TEST(Transport, PermanentLossExpiresAfterMaxRetransmits) {
  sim::FaultPlan plan(4);
  plan.add({sim::FaultKind::kChannelLoss, 0.0, 100.0, /*target=*/0, 1.0});
  Harness h(TransportMode::kReliable);
  h.opts.rto_s = 0.05;  // tighten so all retries fit in a short run
  Transport t(h.sim, h.channel, &plan, h.opts, 1, 1, "down");
  std::vector<std::pair<std::uint64_t, std::string>> expirations;
  Transport::Hooks hooks;
  hooks.on_expired = [&](int, std::uint64_t seq, int attempts,
                         const char* cause) {
    EXPECT_EQ(attempts, 5);
    expirations.emplace_back(seq, cause);
  };
  t.set_hooks(std::move(hooks));
  Envelope envelope;
  envelope.epoch = 1;
  bool delivered = false;
  t.send(0, envelope, 0, true, [&](const Frame&) { delivered = true; });
  h.sim.run_for(30.0);
  EXPECT_FALSE(delivered);
  ASSERT_EQ(expirations.size(), 1u);
  EXPECT_EQ(expirations.front().first, 1u);
  EXPECT_EQ(expirations.front().second, "retries");
  EXPECT_EQ(t.retransmits(), 5u);
  EXPECT_EQ(t.expired(), 1u);
  EXPECT_FALSE(t.has_pending());
}

TEST(Transport, StaleAckFastRetransmitsAfterFlightTime) {
  Harness h(TransportMode::kReliable);
  Transport t(h.sim, h.channel, nullptr, h.opts, 1, 1, "down");
  Envelope envelope;
  envelope.epoch = 1;
  t.send(0, envelope, 0, true, [](const Frame&) {});
  // Immediately stale ack: inside the ack flight window, must NOT trigger
  // a retransmit (the ack may simply predate the send).
  t.on_ack(0, 1, 0);
  EXPECT_EQ(t.retransmits(), 0u);
  // Past the flight window the same stale ack proves the frame was missed.
  h.sim.run_for(2.0 * (h.channel.latency_s() + h.channel.jitter_s()) + 0.001);
  t.on_ack(0, 1, 0);
  EXPECT_EQ(t.retransmits(), 1u);
}

TEST(Transport, FenceExpiresOlderEpochsOnly) {
  Harness h(TransportMode::kReliable);
  Transport t(h.sim, h.channel, nullptr, h.opts, 2, 1, "down");
  std::vector<std::string> causes;
  Transport::Hooks hooks;
  hooks.on_expired = [&](int, std::uint64_t, int, const char* cause) {
    causes.emplace_back(cause);
  };
  t.set_hooks(std::move(hooks));
  Envelope old_epoch;
  old_epoch.epoch = 1;
  Envelope new_epoch;
  new_epoch.epoch = 2;
  t.send(0, old_epoch, 0, true, [](const Frame&) {});
  t.send(1, new_epoch, 0, true, [](const Frame&) {});
  t.fence(2);
  EXPECT_EQ(causes, (std::vector<std::string>{"epoch"}));
  EXPECT_TRUE(t.has_pending());  // node 1's epoch-2 frame survives
  EXPECT_EQ(t.expired(), 1u);
}

TEST(Transport, DeposedSenderCannotSupersedeNewerPending) {
  Harness h(TransportMode::kReliable);
  Transport t(h.sim, h.channel, nullptr, h.opts, 1, 1, "down");
  Envelope new_epoch;
  new_epoch.epoch = 5;
  Envelope old_epoch;
  old_epoch.epoch = 4;
  t.send(0, new_epoch, 0, true, [](const Frame&) {});
  t.send(0, old_epoch, 0, true, [](const Frame&) {});
  // The stale sender's frame went out untracked; fencing at the newer
  // epoch must find the epoch-5 frame still pending, not expired.
  t.fence(5);
  EXPECT_TRUE(t.has_pending());
  EXPECT_EQ(t.expired(), 0u);
}

TEST(Transport, NodeReceiveSuppressesDuplicatesWithinEpoch) {
  Harness h(TransportMode::kReliable);
  Transport t(h.sim, h.channel, nullptr, h.opts, 1, 1, "down");
  Frame frame;
  frame.envelope.epoch = 1;
  frame.seq = 1;
  EXPECT_EQ(t.receive_at_node(0, frame), Transport::Verdict::kDeliver);
  EXPECT_EQ(t.receive_at_node(0, frame), Transport::Verdict::kDuplicate);
  frame.seq = 3;  // a gap is fine: cumulative semantics
  EXPECT_EQ(t.receive_at_node(0, frame), Transport::Verdict::kDeliver);
  frame.seq = 2;  // late straggler behind the applied watermark
  EXPECT_EQ(t.receive_at_node(0, frame), Transport::Verdict::kDuplicate);
  // A newer epoch resets the sequence space.
  frame.envelope.epoch = 2;
  frame.seq = 1;
  EXPECT_EQ(t.receive_at_node(0, frame), Transport::Verdict::kDeliver);
  EXPECT_EQ(t.node_ack(0), 1u);
  EXPECT_EQ(t.node_ack_epoch(0), 2u);
  EXPECT_EQ(t.duplicates_suppressed(), 2u);
}

TEST(Transport, CoordinatorReceiveDedupsPerCoordinator) {
  Harness h(TransportMode::kReliable);
  Transport t(h.sim, h.channel, nullptr, h.opts, 1, 2, "up");
  Frame frame;
  frame.envelope.epoch = 1;
  frame.seq = 1;
  EXPECT_EQ(t.receive_at_coordinator(0, 0, frame),
            Transport::Verdict::kDeliver);
  // The standby (coordinator 1) sees the same frame for the first time.
  EXPECT_EQ(t.receive_at_coordinator(1, 0, frame),
            Transport::Verdict::kDeliver);
  EXPECT_EQ(t.receive_at_coordinator(0, 0, frame),
            Transport::Verdict::kDuplicate);
}

TEST(Transport, DuplicateFaultDeliversTwiceOnWireOnceAfterDedup) {
  sim::FaultPlan plan(6);
  plan.add({sim::FaultKind::kChannelDuplicate, 0.0, 1.0, /*target=*/0, 1.0});
  Harness h(TransportMode::kReliable);
  Transport t(h.sim, h.channel, &plan, h.opts, 1, 1, "down");
  int wire_deliveries = 0;
  int applied = 0;
  Envelope envelope;
  envelope.epoch = 1;
  t.send(0, envelope, 0, true, [&](const Frame& f) {
    ++wire_deliveries;
    if (t.receive_at_node(0, f) == Transport::Verdict::kDeliver) ++applied;
  });
  t.on_ack(0, 1, 1);  // release before the timer fires: isolate the fault
  h.sim.run_for(0.5);
  EXPECT_EQ(wire_deliveries, 2);
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(t.duplicates_suppressed(), 1u);
}

TEST(Transport, CorruptFaultIsDetectedNeverMisdelivered) {
  sim::FaultPlan plan(7);
  plan.add({sim::FaultKind::kChannelCorrupt, 0.0, 1.0, /*target=*/0, 1.0});
  Harness h(TransportMode::kReliable);
  Transport t(h.sim, h.channel, &plan, h.opts, 1, 1, "down");
  int corrupt = 0;
  int applied = 0;
  Envelope envelope;
  envelope.epoch = 1;
  t.send(0, envelope, 0, true, [&](const Frame& f) {
    if (cluster::frame_corrupt(f)) {
      ++corrupt;
      return;
    }
    ++applied;
  });
  h.sim.run_for(0.01);
  EXPECT_EQ(corrupt, 1);
  EXPECT_EQ(applied, 0);
}

TEST(Transport, ReorderFaultDelaysBehindLaterTraffic) {
  sim::FaultPlan plan(8);
  // Reorder only the first round's frame (window closes before round 2).
  plan.add({sim::FaultKind::kChannelReorder, 0.0, 0.001, /*target=*/0, 1.0});
  Harness h(TransportMode::kDatagram);
  Transport t(h.sim, h.channel, &plan, h.opts, 1, 1, "down");
  std::vector<int> arrivals;
  Envelope envelope;
  t.send(0, envelope, 0, false, [&](const Frame&) { arrivals.push_back(1); });
  h.sim.schedule_at(0.01, [&] {
    t.send(0, envelope, 0, false,
           [&](const Frame&) { arrivals.push_back(2); });
  });
  h.sim.run_for(1.0);
  EXPECT_EQ(arrivals, (std::vector<int>{2, 1}));
}

TEST(Transport, RoundBudgetDefersExcessRetransmits) {
  sim::FaultPlan plan(9);
  plan.add({sim::FaultKind::kChannelLoss, 0.0, 0.35, /*target=*/-1, 1.0});
  Harness h(TransportMode::kReliable);
  h.opts.rto_s = 0.02;
  h.opts.round_retransmit_budget = 1;  // one retry per round window
  Transport t(h.sim, h.channel, &plan, h.opts, 4, 1, "down");
  Envelope envelope;
  envelope.epoch = 1;
  for (int n = 0; n < 4; ++n) {
    t.send(n, envelope, 0, true, [](const Frame&) {});
  }
  h.sim.run_for(0.1);  // one full round window after the sends
  // Four frames wanted to retry (rto 20 ms), but the budget admits one per
  // 100 ms window; deferral must consume no retry attempts.
  EXPECT_LE(t.retransmits(), 2u);
  EXPECT_EQ(t.expired(), 0u);
  h.sim.run_for(3.0);  // budget refills each window; all deliver eventually
  EXPECT_TRUE(!t.has_pending() || t.expired() == 0u);
}

// --- Fault-plan parser: new channel kinds ----------------------------------

sim::FaultPlan parse_plan(const std::string& text) {
  std::istringstream in(text);
  return sim::FaultPlan::parse(in);
}

TEST(TransportFaultParser, AcceptsAllChannelKinds) {
  const sim::FaultPlan plan = parse_plan(
      "seed 5\n"
      "channel_reorder 0.1 0.4 node=0 p=0.5\n"
      "channel_duplicate 0.1 0.4 node=1 p=0.25\n"
      "channel_delay_spike 0.2 0.5 node=0 delay=0.02\n"
      "channel_corrupt 0.3 0.6 p=0.75\n");
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.specs()[0].kind, sim::FaultKind::kChannelReorder);
  EXPECT_EQ(plan.specs()[1].kind, sim::FaultKind::kChannelDuplicate);
  EXPECT_EQ(plan.specs()[2].kind, sim::FaultKind::kChannelDelaySpike);
  EXPECT_EQ(plan.specs()[3].kind, sim::FaultKind::kChannelCorrupt);
  EXPECT_DOUBLE_EQ(plan.specs()[2].value, 0.02);
  EXPECT_EQ(plan.specs()[3].target, -1);
}

TEST(TransportFaultParser, RejectsOutOfRangeProbabilityWithLineNumber) {
  try {
    parse_plan("channel_loss 0.0 1.0 p=0.5\nchannel_reorder 0.1 0.4 p=1.5\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("[0, 1]"), std::string::npos) << what;
  }
}

TEST(TransportFaultParser, RejectsNaNProbability) {
  // NaN passes strtod but must fail the range check (NaN compares false
  // against everything, so only a negated comparison catches it).
  EXPECT_THROW(parse_plan("channel_corrupt 0.0 1.0 p=nan\n"),
               std::runtime_error);
  EXPECT_THROW(parse_plan("channel_duplicate 0.0 1.0 p=-0.1\n"),
               std::runtime_error);
}

TEST(TransportFaultParser, RejectsNegativeDelaySpike) {
  try {
    parse_plan("channel_delay_spike 0.0 1.0 delay=-0.005\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

// --- Property sweep: the bounded-convergence guarantee ---------------------

// A synthetic coordinator/node harness: settings rounds every T to three
// nodes over a faulted channel, summaries carrying cumulative acks back,
// one mid-run coordinator epoch bump.  Asserts the transport's contract:
// applied sequences are strictly increasing within an epoch (no duplicate
// or rolled-back apply), and once the fault windows close every node
// converges to the final grant within a bounded number of rounds.
void run_transport_scenario(std::uint64_t seed) {
  constexpr double kDuration = 2.0;
  constexpr double kPeriod = 0.1;
  constexpr std::size_t kNodes = 3;
  constexpr double kLastRound = 0.8 * kDuration;
  sim::Simulation sim;
  sim::Rng rng(seed);

  // Random channel-fault windows, all inside [0, 0.5 * duration].
  sim::FaultPlan plan(seed);
  const int n_faults = 1 + static_cast<int>(rng.uniform_int(0, 2));
  for (int i = 0; i < n_faults; ++i) {
    constexpr sim::FaultKind kKinds[] = {
        sim::FaultKind::kChannelLoss, sim::FaultKind::kChannelReorder,
        sim::FaultKind::kChannelDuplicate, sim::FaultKind::kChannelDelaySpike,
        sim::FaultKind::kChannelCorrupt};
    sim::FaultSpec spec;
    spec.kind = kKinds[rng.uniform_int(0, 4)];
    spec.start_s = rng.uniform(0.0, 0.3 * kDuration);
    spec.end_s = spec.start_s + rng.uniform(0.05, 0.2 * kDuration);
    spec.end_s = std::min(spec.end_s, 0.5 * kDuration);
    spec.target = rng.bernoulli(0.5)
                      ? -1
                      : static_cast<int>(rng.uniform_int(0, kNodes - 1));
    spec.value = spec.kind == sim::FaultKind::kChannelDelaySpike
                     ? rng.uniform(0.001, 0.03)
                     : rng.uniform(0.2, 0.8);
    plan.add(spec);
  }

  cluster::Channel down_ch(sim, 0.002, 0.001, sim::Rng(seed));
  cluster::Channel up_ch(sim, 0.002, 0.001, sim::Rng(seed ^ 0x5555));
  TransportOptions opts;
  opts.mode = TransportMode::kReliable;
  opts.round_period_s = kPeriod;
  Transport down(sim, down_ch, &plan, opts, kNodes, 1, "down");
  Transport up(sim, up_ch, &plan, opts, kNodes, 1, "up");

  cluster::Epoch coordinator_epoch = 1;
  std::vector<cluster::Epoch> node_epoch(kNodes, 0);
  std::vector<std::uint64_t> node_applied(kNodes, 0);
  std::vector<std::uint64_t> last_sent(kNodes, 0);
  std::vector<double> last_apply_t(kNodes, -1.0);

  auto node_receive = [&](std::size_t n, const Frame& frame) {
    if (cluster::frame_corrupt(frame)) return;
    if (frame.envelope.epoch < node_epoch[n]) return;  // fenced
    if (down.receive_at_node(static_cast<int>(n), frame) ==
        Transport::Verdict::kDuplicate) {
      return;
    }
    // The transport's effectively-once contract: within an epoch the
    // applied sequence strictly increases (no duplicate, no rollback).
    if (frame.envelope.epoch == node_epoch[n]) {
      ASSERT_GT(frame.seq, node_applied[n]) << "duplicate apply on node " << n;
    }
    node_epoch[n] = frame.envelope.epoch;
    node_applied[n] = frame.seq;
    last_apply_t[n] = sim.now();
  };

  sim.schedule_every(kPeriod, [&] {
    if (sim.now() > kLastRound) return;
    for (std::size_t n = 0; n < kNodes; ++n) {
      Envelope envelope;
      envelope.epoch = coordinator_epoch;
      down.send(static_cast<int>(n), envelope, 0, /*track=*/true,
                [&, n](const Frame& frame) { node_receive(n, frame); });
      ++last_sent[n];
    }
  });

  // Summaries: each node acks its applied watermark once per round,
  // offset from the settings rounds as in the daemon.
  sim.schedule_every(kPeriod, [&] {
    for (std::size_t n = 0; n < kNodes; ++n) {
      Envelope envelope;
      envelope.epoch = down.node_ack_epoch(static_cast<int>(n));
      up.send(static_cast<int>(n), envelope,
              down.node_ack(static_cast<int>(n)), /*track=*/false,
              [&, n](const Frame& frame) {
                if (cluster::frame_corrupt(frame)) return;
                if (up.receive_at_coordinator(0, static_cast<int>(n), frame) ==
                    Transport::Verdict::kDuplicate) {
                  return;
                }
                down.on_ack(static_cast<int>(n), frame.envelope.epoch,
                            frame.ack);
              });
    }
  });

  // Mid-run failover: a new coordinator epoch; the old queue drains.
  sim.schedule_at(0.45 * kDuration, [&] {
    coordinator_epoch = 2;
    down.fence(2);
  });

  sim.run_for(kDuration);

  // Bounded convergence: the fault windows all closed by 0.5 * duration
  // and the last settings round went out at 0.8 * duration on a clean
  // channel, so every node must hold the final grant by the end of the
  // run, and must have reached it within a few rounds of the last send.
  for (std::size_t n = 0; n < kNodes; ++n) {
    EXPECT_EQ(node_applied[n], last_sent[n]) << "node " << n;
    EXPECT_EQ(node_epoch[n], 2u) << "node " << n;
    EXPECT_LE(last_apply_t[n], kLastRound + 3.0 * kPeriod) << "node " << n;
  }
  EXPECT_FALSE(down.has_pending());
}

TEST(TransportProperty, SeededScenariosConvergeWithoutDuplicateApply) {
  proptest::run_seeded(40000, 1000,
                       "./tests/test_transport "
                       "--gtest_filter=TransportProperty.*",
                       run_transport_scenario);
}

// --- Daemon-level acceptance -----------------------------------------------

sim::FaultPlan adversarial_plan() {
  sim::FaultPlan plan(77);
  plan.add({sim::FaultKind::kChannelLoss, 0.3, 0.9, /*target=*/-1, 0.5});
  plan.add({sim::FaultKind::kChannelReorder, 0.3, 0.9, /*target=*/-1, 0.4});
  plan.add({sim::FaultKind::kChannelDuplicate, 0.3, 0.9, /*target=*/-1, 0.3});
  plan.add({sim::FaultKind::kChannelCorrupt, 0.4, 0.8, /*target=*/-1, 0.3});
  plan.add({sim::FaultKind::kChannelDelaySpike, 0.3, 0.9, /*target=*/-1,
            0.01});
  return plan;
}

void run_daemon(cluster::TransportMode mode, const sim::FaultPlan* plan,
                sim::EventLog* journal, core::ClusterDaemon** out_daemon,
                int step_threads = 1,
                core::AdvanceMode advance = core::AdvanceMode::kTick) {
  sim::Simulation sim;
  sim::Rng rng(31);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 2, rng);
  for (const auto& addr : cluster.all_procs()) {
    cluster.core(addr).add_workload(
        workload::make_uniform_synthetic(70.0, 1e12));
  }
  power::PowerBudget budget(2 * 4 * 140.0);
  core::ClusterDaemonConfig config;
  config.journal = journal;
  config.fault_plan = plan;
  config.transport = mode;
  config.step_threads = step_threads;
  config.advance_mode = advance;
  core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget,
                             config);
  sim.schedule_at(0.5, [&] { budget.set_limit_w(2 * 4 * 140.0 * 0.5); });
  sim.run_for(2.0);
  if (out_daemon) *out_daemon = nullptr;  // daemon dies with this scope
}

std::size_t count_type(const sim::EventLog& log, sim::EventType type) {
  std::size_t n = 0;
  for (const sim::Event& e : log.events()) n += e.type == type;
  return n;
}

TEST(TransportDaemon, ReliableUnderAdversarialChannelKeepsInvariants) {
  const sim::FaultPlan plan = adversarial_plan();
  sim::EventLog journal;
  run_daemon(cluster::TransportMode::kReliable, &plan, &journal, nullptr);
  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());
  // The session layer actually worked for its living: retransmissions
  // fired, duplicates were suppressed, corruption was detected (never
  // silently applied), and the run promised a convergence window.
  EXPECT_GT(count_type(journal, sim::EventType::kMessageRetransmit), 0u);
  EXPECT_GT(count_type(journal, sim::EventType::kMessageDuplicate), 0u);
  EXPECT_GT(count_type(journal, sim::EventType::kMessageCorrupt), 0u);
  bool promised = false;
  for (const sim::Event& e : journal.events()) {
    if (e.type == sim::EventType::kRunMeta && e.has_num("convergence_window_s")) {
      promised = true;
      const std::string* mode = e.find_str("transport");
      ASSERT_NE(mode, nullptr);
      EXPECT_EQ(*mode, "reliable");
    }
  }
  EXPECT_TRUE(promised);
}

TEST(TransportDaemon, DatagramUnderSameChannelKeepsInvariants) {
  // Fire-and-forget under the same adversary: no retransmissions (there is
  // no session), but corruption is still detected by checksum and the
  // journal still passes every check, bounded convergence included (the
  // next round's natural repair converges within the promised window).
  const sim::FaultPlan plan = adversarial_plan();
  sim::EventLog journal;
  run_daemon(cluster::TransportMode::kDatagram, &plan, &journal, nullptr);
  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(count_type(journal, sim::EventType::kMessageRetransmit), 0u);
  EXPECT_GT(count_type(journal, sim::EventType::kMessageCorrupt), 0u);
}

// Deep event comparison ignoring the host wall-clock stage timings, which
// measure this machine rather than the simulated cluster.
void expect_journals_identical(const sim::EventLog& a, const sim::EventLog& b) {
  auto is_wall_clock = [](const std::string& key) {
    return key == "estimate_s" || key == "policy_s" || key == "actuate_s" ||
           key == "sample_s" || key == "cycle_s";
  };
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const sim::Event& ea = a.events()[i];
    const sim::Event& eb = b.events()[i];
    ASSERT_EQ(ea.type, eb.type) << "event " << i;
    ASSERT_DOUBLE_EQ(ea.t, eb.t) << "event " << i;
    ASSERT_EQ(ea.cpu, eb.cpu) << "event " << i;
    ASSERT_EQ(ea.num.size(), eb.num.size()) << "event " << i;
    for (std::size_t k = 0; k < ea.num.size(); ++k) {
      ASSERT_EQ(ea.num[k].first, eb.num[k].first) << "event " << i;
      if (is_wall_clock(ea.num[k].first)) continue;
      ASSERT_DOUBLE_EQ(ea.num[k].second, eb.num[k].second)
          << "event " << i << " key " << ea.num[k].first;
    }
    ASSERT_EQ(ea.str, eb.str) << "event " << i;
  }
}

TEST(TransportDaemon, ReliableUnderFaultsIsBitDeterministic) {
  const sim::FaultPlan plan = adversarial_plan();
  sim::EventLog a;
  run_daemon(cluster::TransportMode::kReliable, &plan, &a, nullptr);
  sim::EventLog b;
  run_daemon(cluster::TransportMode::kReliable, &plan, &b, nullptr);
  expect_journals_identical(a, b);

  // Neither the parallel node stepper nor event-driven time advance may
  // perturb the retransmit schedule.
  sim::EventLog threaded;
  run_daemon(cluster::TransportMode::kReliable, &plan, &threaded, nullptr,
             /*step_threads=*/4);
  expect_journals_identical(a, threaded);
  sim::EventLog event_mode;
  run_daemon(cluster::TransportMode::kReliable, &plan, &event_mode, nullptr,
             /*step_threads=*/1, core::AdvanceMode::kEvent);
  expect_journals_identical(a, event_mode);
}

TEST(TransportDaemon, CleanChannelReliableCostsNothing) {
  // On a clean channel the session layer is pure bookkeeping: zero
  // retransmissions, zero expirations, zero suppressed duplicates.
  sim::EventLog journal;
  run_daemon(cluster::TransportMode::kReliable, nullptr, &journal, nullptr);
  EXPECT_EQ(count_type(journal, sim::EventType::kMessageRetransmit), 0u);
  EXPECT_EQ(count_type(journal, sim::EventType::kMessageExpired), 0u);
  EXPECT_EQ(count_type(journal, sim::EventType::kMessageDuplicate), 0u);
  EXPECT_TRUE(sim::check_journal(journal).ok());
}

}  // namespace
}  // namespace fvsst
