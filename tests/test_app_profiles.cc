// Tests for the application profiles (workload/app_profiles.h): the
// CPU-vs-memory dichotomy the paper's evaluation rests on must hold.
#include "workload/app_profiles.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/units.h"
#include "workload/phase.h"

namespace fvsst::workload {
namespace {

using units::GHz;

const mach::MemoryLatencies kLat = mach::p630().latencies;

// Runtime-weighted performance loss of a whole workload at `hz` vs 1 GHz.
double app_loss(const WorkloadSpec& spec, double hz) {
  const double t_ref = spec.duration_at(kLat, 1 * GHz);
  const double t_at = spec.duration_at(kLat, hz);
  return 1.0 - t_ref / t_at;
}

TEST(AppProfiles, AllFourPresent) {
  const auto apps = paper_applications();
  ASSERT_EQ(apps.size(), 4u);
  EXPECT_EQ(apps[0].name, "gzip");
  EXPECT_EQ(apps[1].name, "gap");
  EXPECT_EQ(apps[2].name, "mcf");
  EXPECT_EQ(apps[3].name, "health");
}

TEST(AppProfiles, AllPhasesValid) {
  for (const auto& app : paper_applications()) {
    EXPECT_FALSE(app.loop) << app.name;
    EXPECT_GE(app.phases.size(), 3u) << app.name;
    for (const auto& p : app.phases) {
      EXPECT_GT(p.alpha, 0.0) << app.name << "/" << p.name;
      EXPECT_GT(p.instructions, 0.0) << app.name << "/" << p.name;
      EXPECT_GE(p.apki_l2, 0.0);
      EXPECT_GE(p.apki_l3, 0.0);
      EXPECT_GE(p.apki_mem, 0.0);
    }
  }
}

TEST(AppProfiles, HaveInitAndExitPhases) {
  for (const auto& app : paper_applications()) {
    EXPECT_EQ(app.phases.front().name, "init") << app.name;
    EXPECT_EQ(app.phases.back().name, "exit") << app.name;
    EXPECT_GT(app.phases.front().latency_scale, 1.1) << app.name;
  }
}

TEST(AppProfiles, CpuAppsLoseNearLinearlyUnderCaps) {
  // Paper Table 3: gzip/gap at 750 MHz keep ~0.79-0.80, at 500 MHz ~0.52-0.54.
  for (const auto& app : {gzip(), gap()}) {
    const double loss750 = app_loss(app, 0.75 * GHz);
    const double loss500 = app_loss(app, 0.50 * GHz);
    EXPECT_GT(loss750, 0.15) << app.name;
    EXPECT_LT(loss750, 0.25) << app.name;
    EXPECT_GT(loss500, 0.40) << app.name;
    EXPECT_LT(loss500, 0.50) << app.name;
  }
}

TEST(AppProfiles, MemoryAppsSaturateBy750) {
  // Paper Table 3: mcf/health lose <= 1% at 750 MHz.
  for (const auto& app : {mcf(), health()}) {
    EXPECT_LT(app_loss(app, 0.75 * GHz), 0.05) << app.name;
  }
}

TEST(AppProfiles, MemoryAppsLoseFarLessThanCpuAppsAt500) {
  const double mcf_loss = app_loss(mcf(), 0.5 * GHz);
  const double health_loss = app_loss(health(), 0.5 * GHz);
  const double gzip_loss = app_loss(gzip(), 0.5 * GHz);
  EXPECT_LT(mcf_loss, 0.5 * gzip_loss);
  EXPECT_LT(health_loss, 0.75 * gzip_loss);
  // And the ordering the paper reports at 35 W: health dips harder than mcf.
  EXPECT_GT(health_loss, mcf_loss);
}

TEST(AppProfiles, DominantPhaseMemoryIntensity) {
  // The longest-running phase of mcf must be far more memory-intensive
  // than the longest-running phase of gzip.
  auto dominant_m = [](const WorkloadSpec& spec) {
    double best_time = 0.0, m = 0.0;
    for (const auto& p : spec.phases) {
      const double t = p.instructions / true_performance(p, kLat, 1 * GHz);
      if (t > best_time) {
        best_time = t;
        m = mem_time_per_instruction(p, kLat);
      }
    }
    return m;
  };
  EXPECT_GT(dominant_m(mcf()), 20.0 * dominant_m(gzip()));
}

TEST(AppProfiles, RuntimesAreSimulationFriendly) {
  // Each application should take seconds (not milliseconds or hours) at
  // full frequency, so benches can run them end to end.
  for (const auto& app : extended_applications()) {
    const double t = app.duration_at(kLat, 1 * GHz);
    EXPECT_GT(t, 5.0) << app.name;
    EXPECT_LT(t, 300.0) << app.name;
  }
}

TEST(ExtendedProfiles, EightApplicationsWithPaperSetFirst) {
  const auto apps = extended_applications();
  ASSERT_EQ(apps.size(), 8u);
  EXPECT_EQ(apps[0].name, "gzip");
  EXPECT_EQ(apps[4].name, "crafty");
  EXPECT_EQ(apps[7].name, "equake");
  for (const auto& app : apps) {
    EXPECT_EQ(app.phases.front().name.find("init") != std::string::npos ||
                  app.phases.front().name.find("mesh") != std::string::npos,
              true)
        << app.name;
    EXPECT_FALSE(app.loop) << app.name;
  }
}

TEST(ExtendedProfiles, SpectrumOrdering) {
  // crafty is the most CPU-bound of all eight; art/equake sit between the
  // paper's CPU-bound and memory-bound extremes.
  const double crafty_loss = app_loss(crafty(), 0.5 * GHz);
  const double gzip_loss = app_loss(gzip(), 0.5 * GHz);
  const double art_loss = app_loss(art(), 0.5 * GHz);
  const double equake_loss = app_loss(equake(), 0.5 * GHz);
  const double mcf_loss = app_loss(mcf(), 0.5 * GHz);
  EXPECT_GT(crafty_loss, gzip_loss);   // even more frequency-hungry
  EXPECT_LT(art_loss, gzip_loss);      // memory-bound side
  EXPECT_LT(equake_loss, gzip_loss);
  EXPECT_GT(art_loss, mcf_loss);       // but less extreme than mcf
  // parser is CPU-leaning: closer to gzip than to mcf.
  const double parser_loss = app_loss(parser(), 0.5 * GHz);
  EXPECT_GT(parser_loss, 2.0 * mcf_loss);
}

TEST(ExtendedProfiles, MemoryAppsSaturateBy800) {
  for (const auto& app : {art(), equake()}) {
    EXPECT_LT(app_loss(app, 0.8 * GHz), 0.04) << app.name;
  }
}

}  // namespace
}  // namespace fvsst::workload
