// Tests for the set-associative cache model (mem/cache.h).
#include "mem/cache.h"

#include <gtest/gtest.h>

namespace fvsst::mem {
namespace {

CacheConfig tiny() {
  // 4 sets x 2 ways x 64 B lines = 512 B.
  return {512, 64, 2};
}

TEST(Cache, ValidatesGeometry) {
  EXPECT_THROW(Cache({0, 64, 2}), std::invalid_argument);
  EXPECT_THROW(Cache({512, 0, 2}), std::invalid_argument);
  EXPECT_THROW(Cache({512, 64, 0}), std::invalid_argument);
  EXPECT_THROW(Cache({512, 48, 2}), std::invalid_argument);   // non-pow2 line
  EXPECT_THROW(Cache({500, 64, 2}), std::invalid_argument);   // not divisible
  EXPECT_THROW(Cache({512, 64, 3}), std::invalid_argument);   // 8 lines % 3
  EXPECT_NO_THROW(Cache valid(tiny()));
  // Non-power-of-two set counts are allowed (the P630's 1.44 MB L2).
  const CacheConfig p630_l2{1440ull * 1024, 128, 8};
  EXPECT_NO_THROW(Cache l2(p630_l2));
}

TEST(Cache, GeometryDerivedCounts) {
  const Cache c(tiny());
  EXPECT_EQ(c.config().num_lines(), 8u);
  EXPECT_EQ(c.config().num_sets(), 4u);
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny());
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1008));  // same 64 B line
  EXPECT_EQ(c.accesses(), 3u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LineGranularity) {
  Cache c(tiny());
  c.access(0x0);
  EXPECT_TRUE(c.contains(0x3F));   // last byte of the line
  EXPECT_FALSE(c.contains(0x40));  // next line
}

TEST(Cache, AssociativityHoldsConflictingLines) {
  Cache c(tiny());
  // Two addresses mapping to set 0 (line 0 and line 4*64 = 0x100).
  c.access(0x000);
  c.access(0x100);
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_TRUE(c.contains(0x100));
}

TEST(Cache, LruEvictionOrder) {
  Cache c(tiny());  // 2 ways per set
  c.access(0x000);  // set 0
  c.access(0x100);  // set 0
  c.access(0x000);  // touch: 0x100 is now LRU
  c.access(0x200);  // set 0: evicts 0x100
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_TRUE(c.contains(0x200));
}

TEST(Cache, DistinctSetsDoNotConflict) {
  Cache c(tiny());
  for (std::uint64_t line = 0; line < 8; ++line) {
    c.access(line * 64);  // fills all 4 sets x 2 ways
  }
  for (std::uint64_t line = 0; line < 8; ++line) {
    EXPECT_TRUE(c.contains(line * 64)) << line;
  }
}

TEST(Cache, FlushInvalidatesKeepsStats) {
  Cache c(tiny());
  c.access(0x0);
  c.flush();
  EXPECT_FALSE(c.contains(0x0));
  EXPECT_EQ(c.accesses(), 1u);
  c.reset_stats();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, WorkingSetFitsMeansNoSteadyStateMisses) {
  Cache c({64ull * 1024, 128, 2});  // P630 L1D
  // 32 KB working set, strided by line.
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < 32 * 1024; a += 128) c.access(a);
  }
  c.reset_stats();
  for (std::uint64_t a = 0; a < 32 * 1024; a += 128) c.access(a);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, WorkingSetTwiceCapacityThrashesWithLru) {
  // Cyclic sweep over 2x capacity with true LRU: every access misses.
  Cache c({512, 64, 2});
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t a = 0; a < 1024; a += 64) c.access(a);
  }
  c.reset_stats();
  for (std::uint64_t a = 0; a < 1024; a += 64) c.access(a);
  EXPECT_EQ(c.misses(), 16u);
}

TEST(Cache, FifoEvictsOldestFillDespiteReuse) {
  CacheConfig cfg = tiny();
  cfg.replacement = ReplacementPolicy::kFifo;
  Cache c(cfg);
  c.access(0x000);  // filled first
  c.access(0x100);
  c.access(0x000);  // reuse does NOT protect it under FIFO
  c.access(0x200);  // set 0 full: evicts 0x000 (oldest fill)
  EXPECT_FALSE(c.contains(0x000));
  EXPECT_TRUE(c.contains(0x100));
  EXPECT_TRUE(c.contains(0x200));
}

TEST(Cache, RandomReplacementIsDeterministicPerSeed) {
  CacheConfig cfg = tiny();
  cfg.replacement = ReplacementPolicy::kRandom;
  auto run = [&](std::uint64_t seed) {
    Cache c(cfg, seed);
    std::uint64_t misses = 0;
    for (std::uint64_t i = 0; i < 5000; ++i) {
      c.access((i * 7919) % 4096);
      misses = c.misses();
    }
    return misses;
  };
  EXPECT_EQ(run(1), run(1));
  // Different seeds usually give different victim streams.
  EXPECT_NE(run(1), run(999));
}

TEST(Cache, RandomBreaksLruWorstCaseThrashing) {
  // Cyclic sweep of 2x capacity: LRU misses 100% in steady state; random
  // replacement retains some lines and hits occasionally.
  CacheConfig lru_cfg{512, 64, 2, ReplacementPolicy::kLru};
  CacheConfig rnd_cfg{512, 64, 2, ReplacementPolicy::kRandom};
  Cache lru(lru_cfg), rnd(rnd_cfg);
  for (int pass = 0; pass < 50; ++pass) {
    for (std::uint64_t a = 0; a < 1024; a += 64) {
      lru.access(a);
      rnd.access(a);
    }
  }
  lru.reset_stats();
  rnd.reset_stats();
  for (int pass = 0; pass < 50; ++pass) {
    for (std::uint64_t a = 0; a < 1024; a += 64) {
      lru.access(a);
      rnd.access(a);
    }
  }
  EXPECT_DOUBLE_EQ(lru.miss_rate(), 1.0);
  EXPECT_LT(rnd.miss_rate(), 0.95);
}

TEST(Cache, ContainsHasNoSideEffects) {
  Cache c(tiny());
  c.access(0x000);
  c.access(0x100);
  // Probing 0x000 must not refresh its LRU position.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(c.contains(0x000));
  EXPECT_EQ(c.accesses(), 2u);
}

}  // namespace
}  // namespace fvsst::mem
