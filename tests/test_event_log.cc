// Tests for the decision journal (simkit/event_log.h): ring-buffer
// semantics, JSONL round-trip, Chrome-trace shape, the end-to-end journal a
// daemon run emits, explain-mode rationale, the invariant checker, and the
// run differ.
#include "simkit/event_log.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/daemon.h"
#include "core/scheduler.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "proptest.h"
#include "simkit/rng.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

namespace fvsst {
namespace {

using units::GHz;
using units::MHz;

TEST(EventLog, TypeNamesRoundTrip) {
  for (sim::EventType type :
       {sim::EventType::kRunMeta, sim::EventType::kTablePoint,
        sim::EventType::kCycleStart, sim::EventType::kDecision,
        sim::EventType::kDowngrade, sim::EventType::kBudgetChange,
        sim::EventType::kIdleEnter, sim::EventType::kIdleExit,
        sim::EventType::kInfeasibleBudget, sim::EventType::kActuation}) {
    const auto name = sim::event_type_name(type);
    const auto back = sim::event_type_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, type) << name;
  }
  EXPECT_FALSE(sim::event_type_from_name("nonsense").has_value());
}

TEST(EventLog, UnboundedKeepsEverything) {
  sim::EventLog log;
  for (int i = 0; i < 100; ++i) {
    log.append(i * 0.01, sim::EventType::kCycleStart).set("cycle", i);
  }
  EXPECT_EQ(log.size(), 100u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, RingBufferDropsOldest) {
  sim::EventLog log(10);
  for (int i = 0; i < 25; ++i) {
    log.append(i * 0.01, sim::EventType::kCycleStart).set("cycle", i);
  }
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.dropped(), 15u);
  // Survivors are the newest ten, oldest first.
  EXPECT_DOUBLE_EQ(log.events().front().num_or("cycle"), 15.0);
  EXPECT_DOUBLE_EQ(log.events().back().num_or("cycle"), 24.0);
}

TEST(EventLog, JsonlRoundTripPreservesPayload) {
  sim::EventLog log;
  log.append(0.0, sim::EventType::kRunMeta)
      .set("t_sample_s", 0.010)
      .set("multiplier", 10.0)
      .set("daemon", std::string("fvsst"));
  log.append(0.1, sim::EventType::kDecision, 3)
      .set("granted_hz", 8e8)
      .set("predicted_loss", 0.031)
      .set("pass1", std::string("epsilon"));
  log.append(0.2, sim::EventType::kCycleStart)
      .set("trigger", std::string("line\nbreak\tand \"quote\" \x01 end"));

  std::ostringstream out;
  sim::write_jsonl(out, log);
  std::istringstream in(out.str());
  const sim::EventLog back = sim::read_jsonl(in);

  ASSERT_EQ(back.size(), 3u);
  const sim::Event& meta = back.events()[0];
  EXPECT_EQ(meta.type, sim::EventType::kRunMeta);
  EXPECT_DOUBLE_EQ(meta.num_or("t_sample_s"), 0.010);
  ASSERT_NE(meta.find_str("daemon"), nullptr);
  EXPECT_EQ(*meta.find_str("daemon"), "fvsst");

  const sim::Event& decision = back.events()[1];
  EXPECT_EQ(decision.cpu, 3);
  EXPECT_DOUBLE_EQ(decision.num_or("granted_hz"), 8e8);
  EXPECT_DOUBLE_EQ(decision.num_or("predicted_loss"), 0.031);
  ASSERT_NE(decision.find_str("pass1"), nullptr);
  EXPECT_EQ(*decision.find_str("pass1"), "epsilon");

  // Control characters survive the escape round trip.
  const sim::Event& cycle = back.events()[2];
  ASSERT_NE(cycle.find_str("trigger"), nullptr);
  EXPECT_EQ(*cycle.find_str("trigger"),
            "line\nbreak\tand \"quote\" \x01 end");
}

TEST(EventLog, JsonlClampsNonFiniteNumbers) {
  sim::EventLog log;
  log.append(0.0, sim::EventType::kBudgetChange)
      .set("budget_w", std::numeric_limits<double>::infinity())
      .set("undefined", std::nan(""));
  std::ostringstream out;
  sim::write_jsonl(out, log);
  // Valid JSON: no bare inf/nan tokens on the wire.
  EXPECT_EQ(out.str().find("inf"), std::string::npos);
  EXPECT_EQ(out.str().find("nan"), std::string::npos);
  std::istringstream in(out.str());
  const sim::EventLog back = sim::read_jsonl(in);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_DOUBLE_EQ(back.events()[0].num_or("budget_w"),
                   std::numeric_limits<double>::max());
  EXPECT_DOUBLE_EQ(back.events()[0].num_or("undefined"), 0.0);
}

TEST(EventLog, ReaderRejectsMalformedLines) {
  std::istringstream bad_json("{\"t\":0.0,\"type\":\"decision\"");
  EXPECT_THROW(sim::read_jsonl(bad_json), std::runtime_error);
  std::istringstream bad_type("{\"t\":0.0,\"type\":\"warp_drive\"}");
  EXPECT_THROW(sim::read_jsonl(bad_type), std::runtime_error);
  std::istringstream blank_ok("\n{\"t\":1.5,\"type\":\"idle_enter\",\"cpu\":2}\n\n");
  const sim::EventLog log = sim::read_jsonl(blank_ok);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.events()[0].type, sim::EventType::kIdleEnter);
  EXPECT_EQ(log.events()[0].cpu, 2);
}

// --- Reader fuzzing ------------------------------------------------------

// A log of random events whose string payloads deliberately include control
// characters, quotes, backslashes, and the occasional multi-KB blob —
// everything the JSONL escaper has to survive.
sim::EventLog random_log(std::uint64_t seed) {
  sim::Rng rng(seed);
  static const sim::EventType kTypes[] = {
      sim::EventType::kCycleStart,   sim::EventType::kDecision,
      sim::EventType::kActuation,    sim::EventType::kFault,
      sim::EventType::kDegradedMode, sim::EventType::kMessageLost,
      sim::EventType::kIdleEnter};
  sim::EventLog log;
  const int events = static_cast<int>(rng.uniform_int(1, 60));
  double t = 0.0;
  for (int i = 0; i < events; ++i) {
    t += rng.uniform(0.0, 0.1);
    auto& e = log.append(t, kTypes[rng.uniform_int(0, 6)],
                         static_cast<int>(rng.uniform_int(-1, 7)));
    const int nums = static_cast<int>(rng.uniform_int(0, 4));
    for (int k = 0; k < nums; ++k) {
      e.set("n" + std::to_string(k),
            rng.uniform(-1e6, 1e6) *
                std::pow(10.0, static_cast<double>(rng.uniform_int(-9, 9))));
    }
    const int strs = static_cast<int>(rng.uniform_int(0, 2));
    for (int k = 0; k < strs; ++k) {
      const std::size_t len =
          rng.bernoulli(0.05)
              ? 4096
              : static_cast<std::size_t>(rng.uniform_int(0, 40));
      std::string payload;
      payload.reserve(len);
      for (std::size_t c = 0; c < len; ++c) {
        payload.push_back(static_cast<char>(rng.uniform_int(1, 126)));
      }
      e.set("s" + std::to_string(k), payload);
    }
  }
  return log;
}

TEST(EventLogFuzz, RandomLogsRoundTripThroughJsonl) {
  // write -> read -> write is the identity on the wire: every payload key,
  // control character, and double survives exactly.
  proptest::run_seeded(41000, 200, "./tests/test_event_log",
                       [](std::uint64_t seed) {
    const sim::EventLog log = random_log(seed);
    std::ostringstream first;
    sim::write_jsonl(first, log);
    std::istringstream in(first.str());
    const sim::EventLog back = sim::read_jsonl(in);
    ASSERT_EQ(back.size(), log.size());
    std::ostringstream second;
    sim::write_jsonl(second, back);
    EXPECT_EQ(second.str(), first.str());
  });
}

TEST(EventLogFuzz, TruncatedTailsRecoverCompleteEvents) {
  // Cutting a journal at any byte must never crash the tolerant reader: it
  // recovers exactly the complete lines, and flags a torn tail that the
  // strict reader would have rejected.
  proptest::run_seeded(43000, 100, "./tests/test_event_log",
                       [](std::uint64_t seed) {
    sim::Rng cuts(seed ^ 0x9e3779b97f4a7c15ull);
    const sim::EventLog log = random_log(seed);
    std::ostringstream out;
    sim::write_jsonl(out, log);
    const std::string full = out.str();
    ASSERT_FALSE(full.empty());
    for (int i = 0; i < 20; ++i) {
      const std::size_t at = static_cast<std::size_t>(
          cuts.uniform_int(0, static_cast<std::int64_t>(full.size())));
      const std::string torn = full.substr(0, at);
      const std::size_t complete_lines = static_cast<std::size_t>(
          std::count(torn.begin(), torn.end(), '\n'));
      std::istringstream in(torn);
      sim::JsonlReadReport report;
      sim::EventLog recovered;
      ASSERT_NO_THROW(recovered = sim::read_jsonl(in, &report))
          << "cut at byte " << at;
      // A cut exactly after a closing brace leaves a complete unterminated
      // final line; every other cut loses only the torn line.
      EXPECT_TRUE(recovered.size() == complete_lines ||
                  recovered.size() == complete_lines + 1)
          << "cut at byte " << at << " recovered " << recovered.size();
      if (report.torn_tail) {
        EXPECT_EQ(recovered.size(), complete_lines) << "cut at byte " << at;
        EXPECT_FALSE(report.error.empty());
        std::istringstream strict(torn);
        EXPECT_THROW(sim::read_jsonl(strict), std::runtime_error)
            << "cut at byte " << at;
      }
    }
  });
}

TEST(EventLogFuzz, MidFileCorruptionThrowsEvenWithReport) {
  // The tolerant overload forgives only the tail; a corrupt line with valid
  // lines after it is real damage and must still throw.
  sim::EventLog log;
  for (int i = 0; i < 3; ++i) {
    log.append(i * 0.1, sim::EventType::kCycleStart).set("cycle", i);
  }
  std::ostringstream out;
  sim::write_jsonl(out, log);
  std::string text = out.str();
  text[0] = 'X';
  std::istringstream in(text);
  sim::JsonlReadReport report;
  EXPECT_THROW(sim::read_jsonl(in, &report), std::runtime_error);
}

// --- End-to-end journals from a daemon run ------------------------------

sim::EventLog run_daemon_journal(bool explain, double budget_w = 300.0,
                                 std::size_t capacity = 0) {
  sim::EventLog journal(capacity);
  sim::Simulation simulation;
  sim::Rng rng(4242);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(simulation, machine, 1, rng);
  cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(100.0, 1e12));
  cluster.core({0, 1}).add_workload(
      workload::make_uniform_synthetic(25.0, 1e12));
  power::PowerBudget budget(budget_w);
  core::DaemonConfig config;
  config.journal = &journal;
  config.scheduler.explain = explain;
  core::FvsstDaemon daemon(simulation, cluster, machine.freq_table, budget,
                           config);
  simulation.run_for(1.0);
  budget.set_limit_w(budget_w * 0.6);  // exercise the budget trigger
  simulation.run_for(1.0);
  return journal;
}

std::size_t count_type(const sim::EventLog& log, sim::EventType type) {
  std::size_t n = 0;
  for (const sim::Event& e : log.events()) n += e.type == type;
  return n;
}

TEST(EventLogDaemon, JournalHasExpectedShape) {
  const sim::EventLog journal = run_daemon_journal(/*explain=*/false);
  ASSERT_FALSE(journal.empty());

  // run_meta leads, before the machine's operating-point dump.
  EXPECT_EQ(journal.events().front().type, sim::EventType::kRunMeta);
  EXPECT_DOUBLE_EQ(journal.events().front().num_or("t_restarts"), 1.0);
  // 4 CPUs x 16 operating points.
  EXPECT_EQ(count_type(journal, sim::EventType::kTablePoint), 64u);

  const std::size_t cycles = count_type(journal, sim::EventType::kCycleStart);
  EXPECT_GT(cycles, 15u);  // ~20 timer cycles over 2 s with T = 100 ms
  // Every cycle carries one decision per CPU and one actuation record.
  EXPECT_EQ(count_type(journal, sim::EventType::kDecision), cycles * 4);
  EXPECT_EQ(count_type(journal, sim::EventType::kActuation), cycles);
  EXPECT_EQ(count_type(journal, sim::EventType::kBudgetChange), 1u);

  // The budget move produced a budget-triggered cycle.
  std::size_t budget_cycles = 0;
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kCycleStart) continue;
    const std::string* trigger = e.find_str("trigger");
    ASSERT_NE(trigger, nullptr);
    budget_cycles += *trigger == "budget";
  }
  EXPECT_EQ(budget_cycles, 1u);

  // Off-explain journals still carry the pass-1 rationale name.
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kDecision) continue;
    ASSERT_NE(e.find_str("pass1"), nullptr);
    break;
  }
}

TEST(EventLogDaemon, CheckPassesOnRealRun) {
  const sim::EventLog journal = run_daemon_journal(/*explain=*/true);
  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
  EXPECT_GT(report.checks_run, 0u);
  // An SMP journal has no cluster-failover or transport data, so exactly
  // the three protocol checks (epoch fencing, failover window, transport
  // convergence) report as skipped.
  EXPECT_EQ(report.skipped.size(), 3u);
  for (const std::string& s : report.skipped) {
    EXPECT_TRUE(s.find("epoch") != std::string::npos ||
                s.find("failover") != std::string::npos ||
                s.find("transport-convergence") != std::string::npos)
        << s;
  }
}

TEST(EventLogDaemon, ExplainRecordsDowngradeSequence) {
  // Budget 150 W for four CPUs forces pass 2 below the 2x140 W peak ask.
  const sim::EventLog journal =
      run_daemon_journal(/*explain=*/true, /*budget_w=*/150.0);
  const std::size_t downgrades =
      count_type(journal, sim::EventType::kDowngrade);
  ASSERT_GT(downgrades, 0u);

  // Downgrade records carry the greedy-choice evidence and each step's
  // sequence number restarts per cycle.
  std::size_t last_seq = 0;
  for (const sim::Event& e : journal.events()) {
    if (e.type == sim::EventType::kActuation) last_seq = 0;
    if (e.type != sim::EventType::kDowngrade) continue;
    EXPECT_GE(e.cpu, 0);
    EXPECT_GT(e.num_or("from_hz"), e.num_or("to_hz"));
    EXPECT_GT(e.num_or("watts_saved"), 0.0);
    EXPECT_GE(e.num_or("marginal_loss"), 0.0);
    EXPECT_EQ(e.num_or("seq"), static_cast<double>(last_seq));
    ++last_seq;
  }

  // Explain decisions expose the pass-1 cutoff: when a lower setting was
  // rejected, its loss must be at or above epsilon (0.04 default).
  bool saw_rejection = false;
  for (const sim::Event& e : journal.events()) {
    if (e.type != sim::EventType::kDecision) continue;
    ASSERT_TRUE(e.has_num("pass1_loss"));
    const double rejected = e.num_or("rejected_loss", -1.0);
    if (rejected >= 0.0 && e.find_str("pass1") &&
        *e.find_str("pass1") == "epsilon") {
      EXPECT_GE(rejected, 0.04);
      saw_rejection = true;
    }
  }
  EXPECT_TRUE(saw_rejection);
}

TEST(EventLogDaemon, RingBufferJournalSkipsTableChecks) {
  // A small ring drops run_meta and the table dump; the checker must
  // degrade to "skipped", not report false violations.
  const sim::EventLog journal =
      run_daemon_journal(/*explain=*/false, 300.0, /*capacity=*/50);
  EXPECT_EQ(journal.size(), 50u);
  EXPECT_GT(journal.dropped(), 0u);
  const sim::JournalCheckReport report = sim::check_journal(journal);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.skipped.empty());
}

TEST(EventLogDaemon, ChromeTraceIsBalancedJson) {
  const sim::EventLog journal = run_daemon_journal(/*explain=*/false);
  std::ostringstream out;
  sim::write_chrome_trace(out, journal);
  const std::string trace = out.str();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);  // slices
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);  // counters

  // Structurally valid: braces and brackets balance outside strings.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const char c = trace[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

// --- Invariant checker on hand-built journals ---------------------------

sim::EventLog minimal_table_journal() {
  sim::EventLog log;
  log.append(0.0, sim::EventType::kRunMeta)
      .set("t_sample_s", 0.01)
      .set("multiplier", 10.0)
      .set("cpus", 1.0)
      .set("t_restarts", 1.0)
      .set("daemon", std::string("fvsst"));
  log.append(0.0, sim::EventType::kTablePoint, 0)
      .set("hz", 500 * MHz)
      .set("volts", 1.1)
      .set("watts", 35.0);
  log.append(0.0, sim::EventType::kTablePoint, 0)
      .set("hz", 1 * GHz)
      .set("volts", 1.3)
      .set("watts", 140.0);
  return log;
}

TEST(JournalCheck, DetectsBudgetOverrunClaimedFeasible) {
  sim::EventLog log = minimal_table_journal();
  log.append(0.1, sim::EventType::kActuation)
      .set("total_power_w", 180.0)
      .set("budget_w", 140.0)
      .set("feasible", 1.0)
      .set("downgrade_steps", 0.0);
  const auto report = sim::check_journal(log);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations.front().find("budget"), std::string::npos);
}

TEST(JournalCheck, AcceptsOverrunWhenMarkedInfeasible) {
  sim::EventLog log = minimal_table_journal();
  log.append(0.1, sim::EventType::kActuation)
      .set("total_power_w", 180.0)
      .set("budget_w", 140.0)
      .set("feasible", 0.0)
      .set("downgrade_steps", 5.0);
  EXPECT_TRUE(sim::check_journal(log).ok());
}

TEST(JournalCheck, DetectsVoltageOffTableMinimum) {
  sim::EventLog log = minimal_table_journal();
  log.append(0.1, sim::EventType::kDecision, 0)
      .set("granted_hz", 500 * MHz)
      .set("volts", 1.3)  // table minimum for 500 MHz is 1.1 V
      .set("watts", 35.0);
  const auto report = sim::check_journal(log);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations.front().find("volt"), std::string::npos);
}

TEST(JournalCheck, DetectsGrantOffTheFrequencyGrid) {
  sim::EventLog log = minimal_table_journal();
  log.append(0.1, sim::EventType::kDecision, 0)
      .set("granted_hz", 777 * MHz)
      .set("volts", 1.2);
  EXPECT_FALSE(sim::check_journal(log).ok());
}

TEST(JournalCheck, DetectsMissedPeriodRestart) {
  sim::EventLog log = minimal_table_journal();  // t = 10 ms, T = 100 ms
  auto cycle = [&log](double t, const char* trigger) {
    log.append(t, sim::EventType::kCycleStart)
        .set("cycle", 0.0)
        .set("budget_w", 200.0)
        .set("trigger", std::string(trigger));
  };
  cycle(0.10, "timer");
  cycle(0.15, "budget");
  // A restarted period would next fire no earlier than ~0.24; firing at
  // 0.20 means the old timer phase survived the trigger.
  cycle(0.20, "timer");
  const auto report = sim::check_journal(log);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations.front().find("restart"), std::string::npos);

  // The same timeline is fine when the run declares no-restart semantics
  // (the cluster daemon's global timer).
  sim::EventLog global;
  global.append(0.0, sim::EventType::kRunMeta)
      .set("t_sample_s", 0.01)
      .set("multiplier", 10.0)
      .set("t_restarts", 0.0)
      .set("daemon", std::string("cluster"));
  global.push(log.events()[3]);
  global.push(log.events()[4]);
  global.push(log.events()[5]);
  const auto global_report = sim::check_journal(global);
  EXPECT_TRUE(global_report.ok());
}

// --- Diff ----------------------------------------------------------------

TEST(JournalDiff, IdenticalRunsAgree) {
  const sim::EventLog a = run_daemon_journal(/*explain=*/false);
  const sim::EventLog b = run_daemon_journal(/*explain=*/false);
  const sim::JournalDiff diff = sim::diff_journals(a, b);
  EXPECT_TRUE(diff.identical_decisions());
  EXPECT_GT(diff.decisions_compared, 0u);
  EXPECT_LT(diff.first_divergence_t, 0.0);
}

TEST(JournalDiff, DivergingBudgetsDetected) {
  const sim::EventLog a = run_daemon_journal(/*explain=*/false, 300.0);
  const sim::EventLog b = run_daemon_journal(/*explain=*/false, 150.0);
  const sim::JournalDiff diff = sim::diff_journals(a, b);
  EXPECT_FALSE(diff.identical_decisions());
  EXPECT_GT(diff.decisions_differing, 0u);
  EXPECT_GE(diff.first_divergence_t, 0.0);
  EXPECT_GE(diff.first_divergence_cpu, 0);
}

// --- Streaming writer -----------------------------------------------------

TEST(JsonlStream, StreamedBytesMatchEndOfRunExport) {
  // Attach the stream before the run: every event travels through the
  // writer incrementally, and the file must still be byte-identical to
  // what write_jsonl would have produced from the full in-memory log.
  const sim::EventLog reference = run_daemon_journal(/*explain=*/true);
  std::ostringstream buffered;
  sim::write_jsonl(buffered, reference);

  std::ostringstream streamed;
  {
    sim::JsonlStreamWriter writer(streamed, /*flush_bytes=*/256);
    sim::EventLog log;
    log.stream_to(&writer);
    for (const sim::Event& e : reference.events()) log.push(e);
    log.flush_stream();
    EXPECT_EQ(log.streamed(), reference.size());
    EXPECT_LE(log.size(), 1u);  // the tail never accumulates
  }
  EXPECT_EQ(streamed.str(), buffered.str());
}

TEST(JsonlStream, AttachMidRunDrainsSealedPrefix) {
  sim::EventLog log;
  log.append(0.0, sim::EventType::kCycleStart).set("trigger", "timer");
  log.append(0.1, sim::EventType::kCycleStart).set("trigger", "timer");
  std::ostringstream out;
  sim::JsonlStreamWriter writer(out);
  log.stream_to(&writer);
  // Everything but the newest (still mutable) event is handed over.
  EXPECT_EQ(log.streamed(), 1u);
  EXPECT_EQ(log.size(), 1u);
  log.flush_stream();
  EXPECT_EQ(log.streamed(), 2u);
}

TEST(JsonlStream, CappedRingRefusesToStream) {
  sim::EventLog ring(8);
  std::ostringstream out;
  sim::JsonlStreamWriter writer(out);
  EXPECT_THROW(ring.stream_to(&writer), std::logic_error);
}

TEST(JsonlStream, ForEachMatchesReadJsonl) {
  const sim::EventLog reference = run_daemon_journal(/*explain=*/false);
  std::ostringstream out;
  sim::write_jsonl(out, reference);

  std::istringstream in(out.str());
  std::size_t seen = 0;
  const std::size_t delivered = sim::for_each_jsonl(in, [&](sim::Event&& e) {
    EXPECT_EQ(e.type, reference.events()[seen].type);
    EXPECT_DOUBLE_EQ(e.t, reference.events()[seen].t);
    ++seen;
  });
  EXPECT_EQ(delivered, reference.size());
  EXPECT_EQ(seen, reference.size());
}

TEST(JsonlStream, ForEachTolerantRecoversTornTail) {
  sim::EventLog log;
  log.append(0.0, sim::EventType::kCycleStart).set("trigger", "timer");
  log.append(0.1, sim::EventType::kDecision).set("granted_hz", 1e9);
  std::ostringstream out;
  sim::write_jsonl(out, log);
  std::string text = out.str();
  text.resize(text.size() - 10);  // tear the final line

  // Strict mode (no report) refuses the torn file outright.
  std::istringstream strict_in(text);
  EXPECT_THROW(sim::for_each_jsonl(strict_in, [](sim::Event&&) {}),
               std::runtime_error);

  // Tolerant mode delivers the complete prefix and reports the tear.
  std::istringstream tolerant_in(text);
  sim::JsonlReadReport report;
  std::size_t seen = 0;
  const std::size_t delivered = sim::for_each_jsonl(
      tolerant_in, [&](sim::Event&&) { ++seen; }, &report);
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(seen, 1u);
  EXPECT_TRUE(report.torn_tail);
  EXPECT_FALSE(report.error.empty());
}

// --- Incremental checker --------------------------------------------------

sim::JournalCheckReport check_incrementally(const sim::EventLog& log) {
  sim::JournalChecker checker;
  for (const sim::Event& e : log.events()) checker.observe(e);
  return checker.finish();
}

void expect_same_report(const sim::JournalCheckReport& a,
                        const sim::JournalCheckReport& b) {
  EXPECT_EQ(a.checks_run, b.checks_run);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.skipped, b.skipped);
}

TEST(JournalChecker, MatchesBatchCheckerOnRealRuns) {
  for (double budget_w : {300.0, 150.0}) {
    const sim::EventLog log = run_daemon_journal(/*explain=*/true, budget_w);
    expect_same_report(check_incrementally(log), sim::check_journal(log));
  }
}

TEST(JournalChecker, MatchesBatchCheckerOnViolations) {
  sim::EventLog log = minimal_table_journal();
  log.append(0.1, sim::EventType::kActuation)
      .set("total_power_w", 180.0)
      .set("budget_w", 140.0)
      .set("feasible", 1.0)
      .set("downgrade_steps", 0.0);
  log.append(0.2, sim::EventType::kDecision, 0)
      .set("granted_hz", 1 * GHz)
      .set("volts", 1.05)  // off the table's 1.3 V point for 1 GHz
      .set("watts", 140.0);
  const auto batch = sim::check_journal(log);
  ASSERT_FALSE(batch.ok());
  expect_same_report(check_incrementally(log), batch);
}

}  // namespace
}  // namespace fvsst
