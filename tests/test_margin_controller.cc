// Tests for the measured-power feedback loop (power/margin_controller.h).
#include "power/margin_controller.h"

#include <gtest/gtest.h>

#include "simkit/event_queue.h"

namespace fvsst::power {
namespace {

TEST(MarginController, GrowsMarginOnViolation) {
  sim::Simulation sim;
  PowerBudget budget(100.0);
  double measured = 110.0;  // over the absolute limit
  MarginController controller(sim, budget, [&] { return measured; });
  sim.run_for(0.3);
  EXPECT_GT(controller.violations(), 0u);
  EXPECT_GT(budget.margin_fraction(), 0.0);
  EXPECT_LT(budget.effective_limit_w(), 100.0);
}

TEST(MarginController, MarginCapped) {
  sim::Simulation sim;
  PowerBudget budget(100.0);
  MarginController controller(sim, budget, [] { return 500.0; });
  sim.run_for(10.0);
  EXPECT_LE(budget.margin_fraction(),
            controller.config().max_margin + 1e-12);
}

TEST(MarginController, DecaysWhenComfortable) {
  sim::Simulation sim;
  PowerBudget budget(100.0, 0.2);  // start with a 20% margin
  MarginController controller(sim, budget, [] { return 50.0; });
  sim.run_for(2.0);
  EXPECT_LT(budget.margin_fraction(), 0.2);
  sim.run_for(20.0);
  EXPECT_DOUBLE_EQ(budget.margin_fraction(), 0.0);
}

TEST(MarginController, HoldsSteadyInsideHeadroomBand) {
  // Measured power just under the limit (within headroom): neither grow
  // nor decay.
  sim::Simulation sim;
  PowerBudget budget(100.0, 0.1);
  MarginController controller(sim, budget, [] { return 97.0; });
  sim.run_for(2.0);
  EXPECT_DOUBLE_EQ(budget.margin_fraction(), 0.1);
  EXPECT_EQ(controller.violations(), 0u);
}

TEST(MarginController, ClosedLoopConvergesUnderModelBias) {
  // Scheduler model underestimates power by 15%: consumption follows the
  // effective limit * 1.15.  The controller must find a margin that brings
  // true consumption under the absolute limit and then stop growing.
  sim::Simulation sim;
  PowerBudget budget(100.0);
  MarginController controller(sim, budget,
                              [&] { return budget.effective_limit_w() * 1.15; });
  sim.run_for(5.0);
  EXPECT_LE(budget.effective_limit_w() * 1.15, 100.0 + 1e-9);
  const double settled = budget.margin_fraction();
  sim.run_for(5.0);
  // Stable: margin oscillates at most one step around the fixed point.
  EXPECT_NEAR(budget.margin_fraction(), settled,
              controller.config().grow_step + 1e-12);
}

TEST(MarginController, StopsAfterDestruction) {
  sim::Simulation sim;
  PowerBudget budget(100.0);
  {
    MarginController controller(sim, budget, [] { return 200.0; });
    sim.run_for(0.2);
  }
  const double margin = budget.margin_fraction();
  sim.run_for(5.0);
  EXPECT_DOUBLE_EQ(budget.margin_fraction(), margin);
}

}  // namespace
}  // namespace fvsst::power
