// Tests for the heterogeneous (per-processor table) scheduler overload —
// the paper's process-variation case and mixed-generation clusters.
#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "mach/machine_config.h"
#include "simkit/rng.h"
#include "simkit/units.h"

namespace fvsst::core {
namespace {

using units::GHz;
using units::MHz;

const mach::MemoryLatencies kLat = mach::p630().latencies;

WorkloadEstimate make_estimate(double alpha, double stall_cpi_at_1ghz) {
  WorkloadEstimate est;
  est.valid = true;
  est.alpha_inv = 1.0 / alpha;
  est.mem_time_per_instr = stall_cpi_at_1ghz / 1e9;
  return est;
}

// A "leaky part" table: same frequencies, higher minimum voltage and power
// at every point (the paper's process-variation scenario).
mach::FrequencyTable leaky_table() {
  const mach::FrequencyTable base = mach::p630_frequency_table();
  std::vector<mach::OperatingPoint> points;
  for (const auto& p : base.points()) {
    points.push_back({p.hz, p.volts * 1.05, p.watts * 1.20});
  }
  return mach::FrequencyTable(std::move(points));
}

// A slower machine generation: 600 MHz top, its own voltage/power points.
mach::FrequencyTable slow_table() {
  return mach::p630_frequency_table().capped_at(600 * MHz);
}

TEST(HeteroScheduler, ValidatesTableVector) {
  const FrequencyScheduler sched(mach::p630_frequency_table(), kLat, {});
  std::vector<ProcView> procs(2, ProcView{make_estimate(1.6, 1.0), false});
  std::vector<const mach::FrequencyTable*> wrong_size{nullptr};
  EXPECT_THROW(sched.schedule(procs, wrong_size, 1e9),
               std::invalid_argument);
  std::vector<const mach::FrequencyTable*> with_null{nullptr, nullptr};
  EXPECT_THROW(sched.schedule(procs, with_null, 1e9), std::invalid_argument);
}

TEST(HeteroScheduler, HomogeneousOverloadMatchesSingleTable) {
  const FrequencyScheduler sched(mach::p630_frequency_table(), kLat, {});
  const mach::FrequencyTable table = mach::p630_frequency_table();
  std::vector<ProcView> procs{{make_estimate(1.6, 0.06), false},
                              {make_estimate(1.6, 6.4), false},
                              {make_estimate(1.3, 10.4), true}};
  std::vector<const mach::FrequencyTable*> tables(procs.size(), &table);
  const auto a = sched.schedule(procs, 294.0);
  const auto b = sched.schedule(procs, tables, 294.0);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.decisions[i].hz, b.decisions[i].hz);
    EXPECT_DOUBLE_EQ(a.decisions[i].volts, b.decisions[i].volts);
  }
}

TEST(HeteroScheduler, ProcessVariationUsesPerPartVoltages) {
  const FrequencyScheduler sched(mach::p630_frequency_table(), kLat, {});
  const mach::FrequencyTable nominal = mach::p630_frequency_table();
  const mach::FrequencyTable leaky = leaky_table();
  std::vector<ProcView> procs(2, ProcView{make_estimate(1.6, 6.4), false});
  const auto r = sched.schedule(procs, {&nominal, &leaky}, 1e9);
  // Same epsilon frequency (same workload, same frequency grid)...
  EXPECT_DOUBLE_EQ(r.decisions[0].hz, r.decisions[1].hz);
  // ...but the leaky part needs its own, higher minimum voltage and burns
  // its own, higher power.
  EXPECT_GT(r.decisions[1].volts, r.decisions[0].volts);
  EXPECT_NEAR(r.decisions[1].watts, r.decisions[0].watts * 1.20, 1e-9);
}

TEST(HeteroScheduler, LeakyPartsAbsorbBudgetCutsFirst) {
  // Under a tight budget the leaky processor is the cheaper downgrade in
  // watts-per-loss terms only through the loss metric — both lose equally
  // per step here, so the tie-break picks the lower index; what matters is
  // that the *aggregate* uses per-part watts and lands under budget.
  const FrequencyScheduler sched(mach::p630_frequency_table(), kLat, {});
  const mach::FrequencyTable nominal = mach::p630_frequency_table();
  const mach::FrequencyTable leaky = leaky_table();
  std::vector<ProcView> procs(2, ProcView{make_estimate(1.6, 0.06), false});
  // Full-speed demand: 140 + 168 = 308 W.  Budget 280 W.
  const auto r = sched.schedule(procs, {&nominal, &leaky}, 280.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.total_cpu_power_w, 280.0);
  EXPECT_DOUBLE_EQ(r.total_cpu_power_w,
                   r.decisions[0].watts + r.decisions[1].watts);
}

TEST(HeteroScheduler, MixedGenerationsUseOwnFmax) {
  // A CPU-bound job on the slow machine is "at f_max" for *its* table: no
  // predicted loss, no pointless upgrade attempts.
  const FrequencyScheduler sched(mach::p630_frequency_table(), kLat, {});
  const mach::FrequencyTable fast = mach::p630_frequency_table();
  const mach::FrequencyTable slow = slow_table();
  std::vector<ProcView> procs(2, ProcView{make_estimate(1.6, 0.06), false});
  const auto r = sched.schedule(procs, {&fast, &slow}, 1e9);
  EXPECT_DOUBLE_EQ(r.decisions[0].hz, 1 * GHz);
  EXPECT_DOUBLE_EQ(r.decisions[1].hz, 600 * MHz);
  EXPECT_DOUBLE_EQ(r.decisions[1].predicted_loss, 0.0);
}

TEST(HeteroScheduler, MemoryBoundOnSlowMachineStillSaturates) {
  const FrequencyScheduler sched(mach::p630_frequency_table(), kLat, {});
  const mach::FrequencyTable slow = slow_table();
  // Very memory-bound: saturates below even the slow machine's 600 MHz.
  std::vector<ProcView> procs{{make_estimate(1.3, 20.0), false}};
  const auto r = sched.schedule(procs, {&slow}, 1e9);
  EXPECT_LT(r.decisions[0].hz, 600 * MHz);
  EXPECT_LT(r.decisions[0].predicted_loss, 0.04);
}

TEST(HeteroScheduler, SinglePassMatchesTwoPassHeterogeneous) {
  const mach::FrequencyTable fast = mach::p630_frequency_table();
  const mach::FrequencyTable slow = slow_table();
  const mach::FrequencyTable leaky = leaky_table();
  sim::Rng rng(314);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ProcView> procs(6);
    std::vector<const mach::FrequencyTable*> tables(6);
    const mach::FrequencyTable* options[] = {&fast, &slow, &leaky};
    for (std::size_t p = 0; p < 6; ++p) {
      procs[p].estimate =
          make_estimate(rng.uniform(0.9, 2.0), rng.uniform(0.0, 15.0));
      procs[p].idle = rng.bernoulli(0.2);
      tables[p] = options[rng.uniform_int(0, 2)];
    }
    const double budget = rng.uniform(100.0, 800.0);
    FrequencyScheduler::Options o1;
    o1.variant = SchedulerVariant::kSinglePass;
    const auto two = FrequencyScheduler(fast, kLat, {})
                         .schedule(procs, tables, budget);
    const auto one = FrequencyScheduler(fast, kLat, o1)
                         .schedule(procs, tables, budget);
    for (std::size_t p = 0; p < 6; ++p) {
      ASSERT_DOUBLE_EQ(two.decisions[p].hz, one.decisions[p].hz)
          << "trial " << trial << " proc " << p;
    }
    EXPECT_EQ(two.feasible, one.feasible);
  }
}

}  // namespace
}  // namespace fvsst::core
