// test_event_mode - Event-driven time advance: AdvanceMode::kEvent must be
// byte-identical to the tick-driven run (journals, telemetry, traces and
// final core state — the same referee the parallel stepper answers to)
// while actually skipping work, and cpu::Core's skip-ahead primitives must
// reproduce per-tick stepping bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/cluster_daemon.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/event_log.h"
#include "simkit/fault_plan.h"
#include "simkit/telemetry.h"
#include "workload/synthetic.h"

namespace fvsst {
namespace {

// --- cpu::Core skip-ahead primitives --------------------------------------

cpu::Core::Config core_config(const mach::MachineConfig& machine) {
  cpu::Core::Config cfg;
  cfg.latencies = machine.latencies;
  cfg.max_hz = machine.freq_table.max_hz();
  return cfg;
}

/// Drives one core by per-tick advance_to calls, the other by jumping
/// straight to the horizon with a registered sampling grid: counters,
/// finish times and the RNG stream consumption must match bit-for-bit.
TEST(CoreSkipAhead, GridSubdivisionMatchesPerTickStepping) {
  const mach::MachineConfig machine = mach::p630();
  const double t = 0.010;
  const double horizon = 2.5;

  auto make = [&](sim::Simulation& sim) {
    auto core = std::make_unique<cpu::Core>(sim, core_config(machine),
                                            sim::Rng(99));
    workload::SyntheticParams params;
    params.phase1 = {100.0, 3e8};
    params.phase2 = {20.0, 1e8};
    core->add_workload(workload::make_synthetic(params));
    core->add_workload(workload::make_uniform_synthetic(40.0, 5e9));
    return core;
  };

  sim::Simulation sim_tick;
  auto tick = make(sim_tick);
  sim::Simulation sim_jump;
  auto jump = make(sim_jump);
  // Lattice convention matches sim::Simulation::schedule_every: the origin
  // IS the first instant, and tick k (1-based) lands at origin + (k-1)*t.
  jump->set_sampling_grid(t, t, /*recurring_steal_s=*/3e-6,
                          /*record_history=*/true);

  std::vector<cpu::PerfCounters> tick_history;
  for (int k = 1;; ++k) {
    const double now = t + static_cast<double>(k - 1) * t;
    if (now > horizon) break;
    sim_tick.run_until(now);
    tick->steal_time(3e-6);
    tick_history.push_back(tick->read_counters());
    // A mid-span frequency change lands on both cores at the same instant.
    if (k == 120) {
      tick->set_frequency(machine.freq_table.min_hz());
    }
  }
  jump->advance_to(t + 119.0 * t);  // Tick 120's exact instant.
  jump->set_frequency(machine.freq_table.min_hz());
  jump->advance_to(horizon);

  std::vector<cpu::PerfCounters> jump_history;
  jump->drain_counter_history(jump_history);
  ASSERT_EQ(jump_history.size(), tick_history.size());
  for (std::size_t i = 0; i < tick_history.size(); ++i) {
    const cpu::PerfCounters& a = tick_history[i];
    const cpu::PerfCounters& b = jump_history[i];
    ASSERT_DOUBLE_EQ(a.instructions, b.instructions) << "tick " << i;
    ASSERT_DOUBLE_EQ(a.cycles, b.cycles) << "tick " << i;
    ASSERT_DOUBLE_EQ(a.l2_accesses, b.l2_accesses) << "tick " << i;
    ASSERT_DOUBLE_EQ(a.l3_accesses, b.l3_accesses) << "tick " << i;
    ASSERT_DOUBLE_EQ(a.mem_accesses, b.mem_accesses) << "tick " << i;
    ASSERT_DOUBLE_EQ(a.halted_cycles, b.halted_cycles) << "tick " << i;
  }
  EXPECT_DOUBLE_EQ(tick->job_finish_time(1), jump->job_finish_time(1));
  EXPECT_DOUBLE_EQ(tick->job_instructions_retired(0),
                   jump->job_instructions_retired(0));
  // The grid subdivides the jump into the same advance segments a per-tick
  // driver produces — identical work per segment is what buys the
  // bit-identical counters.  (The advance-call savings live on the
  // grid-free skip-ahead path and in the daemon's event count; the
  // substrate bench pins both.)
  EXPECT_LE(jump->advance_calls(), tick->advance_calls() + 1);
}

TEST(CoreSkipAhead, NextInterestingTimeBoundsThePhase) {
  const mach::MachineConfig machine = mach::p630();
  sim::Simulation sim;
  cpu::Core::Config cfg = core_config(machine);
  cfg.execution_noise_sigma = 0.0;  // noise-free: the ETA is exact
  cfg.counter_noise_sigma = 0.0;
  cfg.quantum_s = 1e9;  // single job: keep quantum expiry out of the way
  cpu::Core core(sim, cfg, sim::Rng(1));
  workload::SyntheticParams params;
  params.phase1 = {100.0, 3e8};
  params.phase2 = {20.0, 1e8};
  core.add_workload(workload::make_synthetic(params));

  const double eta = core.next_interesting_time();
  ASSERT_GT(eta, 0.0);
  ASSERT_TRUE(std::isfinite(eta));
  // Jumping to just before the boundary keeps the compute phase; crossing
  // it lands in the memory-bound one.
  core.advance_to(eta * 0.999);
  const workload::Phase* before = core.active_phase();
  ASSERT_NE(before, nullptr);
  const double before_apki = before->apki_mem;
  // next_interesting_time is relative to the last advance; re-query.
  core.advance_to(core.next_interesting_time() + 1e-9);
  const workload::Phase* after = core.active_phase();
  ASSERT_NE(after, nullptr);
  EXPECT_GT(after->apki_mem, before_apki);
}

TEST(CoreSkipAhead, SamplingGridValidation) {
  const mach::MachineConfig machine = mach::p630();
  sim::Simulation sim;
  cpu::Core core(sim, core_config(machine), sim::Rng(1));
  EXPECT_FALSE(core.has_sampling_grid());
  EXPECT_THROW(core.set_sampling_grid(0.0, 0.0, 0.0, false),
               std::invalid_argument);
  core.set_sampling_grid(0.0, 0.010, 0.0, true);
  EXPECT_TRUE(core.has_sampling_grid());
  // Re-registering the same lattice is fine; a different one throws.
  core.set_sampling_grid(0.0, 0.010, 1e-6, true);
  EXPECT_THROW(core.set_sampling_grid(0.0, 0.020, 0.0, true),
               std::logic_error);
  EXPECT_THROW(core.set_sampling_grid(0.5, 0.010, 0.0, true),
               std::logic_error);
}

// --- Whole-daemon byte-identity -------------------------------------------

bool is_wall_clock_field(const std::string& key) {
  return key == "estimate_s" || key == "policy_s" || key == "actuate_s" ||
         key == "sample_s" || key == "cycle_s";
}

std::string normalized_jsonl(const sim::EventLog& log) {
  std::string out;
  for (const sim::Event& e : log.events()) {
    sim::Event copy = e;
    std::erase_if(copy.num,
                  [](const auto& kv) { return is_wall_clock_field(kv.first); });
    sim::append_event_jsonl(out, copy);
  }
  return out;
}

/// Telemetry export with the host wall-clock counters (loop/*_s and the
/// quantile trios) stripped; counts and every simulation-fact metric stay.
std::string normalized_metrics(const sim::MetricRegistry& telemetry) {
  std::ostringstream metrics;
  sim::JsonLinesSink sink(metrics);
  telemetry.export_to(sink);
  std::ostringstream out;
  std::istringstream lines(metrics.str());
  for (std::string line; std::getline(lines, line);) {
    const auto metric = line.find("\"metric\":\"");
    const auto name_end = line.find('"', metric + 10);
    if (metric != std::string::npos && name_end != std::string::npos &&
        line.compare(name_end - 2, 2, "_s") == 0) {
      continue;
    }
    out << line << '\n';
  }
  return out.str();
}

void append_core_state(std::ostringstream& out, cluster::Cluster& cluster) {
  for (const auto& addr : cluster.all_procs()) {
    auto& core = cluster.core(addr);
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "core %zu.%zu hz=%.17g instr=%.17g cycles=%.17g\n",
                  addr.node, addr.cpu, core.frequency_hz(),
                  core.instructions_retired(),
                  core.read_counters().cycles);
    out << buf;
  }
}

struct SmpRun {
  std::string fingerprint;   ///< Journal + telemetry + traces + core state.
  std::uint64_t advance_calls = 0;
  std::size_t events_executed = 0;
};

/// One SMP-daemon run: multiprogrammed phased workloads, a mid-run budget
/// drop (at an instant coincident with the tick lattice: 1.0 == 100 * 0.01
/// exactly in binary floating point), and a second off-lattice drop.
SmpRun run_smp(core::AdvanceMode mode, bool per_cpu_threads = false,
               double budget_drop_at = 1.0) {
  sim::Simulation sim;
  sim::Rng rng(4242);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  workload::SyntheticParams params;
  params.phase1 = {100.0, 3e8};
  params.phase2 = {20.0, 1e8};
  cluster.core({0, 1}).add_workload(workload::make_synthetic(params));
  cluster.core({0, 2}).add_workload(
      workload::make_uniform_synthetic(50.0, 1e12));
  cluster.core({0, 3}).add_workload(
      workload::make_uniform_synthetic(85.0, 4e9));
  power::PowerBudget budget(560.0);
  sim.schedule_at(budget_drop_at, [&] { budget.set_limit_w(180.0); });

  sim::EventLog journal;
  core::DaemonConfig config;
  config.journal = &journal;
  config.advance_mode = mode;
  config.per_cpu_threads = per_cpu_threads;
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, config);
  sim.run_for(3.0);

  std::ostringstream out;
  out << normalized_jsonl(journal);
  out << normalized_metrics(daemon.telemetry());
  append_core_state(out, cluster);
  SmpRun r;
  r.fingerprint = out.str();
  for (const auto& addr : cluster.all_procs()) {
    r.advance_calls += cluster.core(addr).advance_calls();
  }
  r.events_executed = sim.events_executed();
  return r;
}

TEST(EventModeSmp, ByteIdenticalToTickMode) {
  const SmpRun tick = run_smp(core::AdvanceMode::kTick);
  const SmpRun event = run_smp(core::AdvanceMode::kEvent);
  ASSERT_FALSE(tick.fingerprint.empty());
  EXPECT_EQ(tick.fingerprint, event.fingerprint);
  // The point of the refactor: materially fewer scheduler events.  The
  // cores' advance segments stay equal by construction (the sampling grid
  // subdivides exactly where the ticks did — that is what buys the byte
  // identity); the win is the n-fold drop in queue traffic.
  EXPECT_GE(tick.events_executed, 3 * event.events_executed)
      << "skip-ahead did not skip";
  EXPECT_LE(event.advance_calls, tick.advance_calls + 8);
}

TEST(EventModeSmp, ByteIdenticalWithPerCpuThreads) {
  const SmpRun tick = run_smp(core::AdvanceMode::kTick, true);
  const SmpRun event = run_smp(core::AdvanceMode::kEvent, true);
  EXPECT_EQ(tick.fingerprint, event.fingerprint);
}

TEST(EventModeSmp, ByteIdenticalWithOffLatticeBudgetDrop) {
  const SmpRun tick = run_smp(core::AdvanceMode::kTick, false, 1.0437);
  const SmpRun event = run_smp(core::AdvanceMode::kEvent, false, 1.0437);
  EXPECT_EQ(tick.fingerprint, event.fingerprint);
}

TEST(EventModeSmp, FaultPlanForcesTickFallback) {
  // With tick-granular machinery in play (actuation retries) the daemon
  // must quietly run tick-driven; both modes then take the identical path.
  sim::Simulation sim;
  sim::Rng rng(7);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  cluster.core({0, 1}).add_workload(
      workload::make_uniform_synthetic(50.0, 1e12));
  power::PowerBudget budget(300.0);
  sim::FaultPlan plan(7);
  plan.add({sim::FaultKind::kActuationReject, 0.5, 1.0, 1, 0.0});
  core::DaemonConfig config;
  config.fault_plan = &plan;
  config.advance_mode = core::AdvanceMode::kEvent;
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget, config);
  EXPECT_FALSE(daemon.event_driven());
  sim.run_for(1.5);
  EXPECT_GT(daemon.schedules_run(), 0u);
}

// --- Cluster daemon --------------------------------------------------------

struct ClusterRun {
  std::string fingerprint;
  std::uint64_t advance_calls = 0;
  std::size_t events_executed = 0;
};

ClusterRun run_cluster(core::AdvanceMode mode, int threads,
                       double channel_loss = 0.0) {
  sim::Simulation sim;
  sim::Rng rng(23);
  const mach::MachineConfig machine = mach::p630();
  constexpr std::size_t kNodes = 4;
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, kNodes, rng);
  cluster.core({0, 0}).add_workload(
      workload::make_uniform_synthetic(90.0, 1e12));
  cluster.core({1, 0}).add_workload(
      workload::make_uniform_synthetic(60.0, 1e12));
  cluster.core({3, 2}).add_workload(
      workload::make_uniform_synthetic(25.0, 1e12));
  const double peak = static_cast<double>(cluster.cpu_count()) * 140.0;
  power::PowerBudget budget(peak);
  sim.schedule_at(0.9, [&] { budget.set_limit_w(peak * 0.4); });

  sim::EventLog journal;
  core::ClusterDaemonConfig cfg;
  cfg.journal = &journal;
  cfg.step_threads = threads;
  cfg.advance_mode = mode;
  cfg.channel_loss_probability = channel_loss;
  core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
  sim.run_for(2.5);

  std::ostringstream out;
  out << normalized_jsonl(journal);
  out << normalized_metrics(daemon.telemetry());
  append_core_state(out, cluster);
  ClusterRun r;
  r.fingerprint = out.str();
  for (const auto& addr : cluster.all_procs()) {
    r.advance_calls += cluster.core(addr).advance_calls();
  }
  r.events_executed = sim.events_executed();
  return r;
}

TEST(EventModeCluster, ByteIdenticalToTickMode) {
  const ClusterRun tick = run_cluster(core::AdvanceMode::kTick, 1);
  const ClusterRun event = run_cluster(core::AdvanceMode::kEvent, 1);
  ASSERT_FALSE(tick.fingerprint.empty());
  EXPECT_EQ(tick.fingerprint, event.fingerprint);
  // Channel deliveries dominate the cluster's queue either way, so the
  // saving is smaller than the SMP daemon's n-fold drop — but it must be
  // a strict saving, with no extra per-core advance work.
  EXPECT_GT(tick.events_executed, event.events_executed);
  EXPECT_LE(event.advance_calls, tick.advance_calls + 8);
}

TEST(EventModeCluster, ByteIdenticalAcrossThreadCounts) {
  const ClusterRun serial = run_cluster(core::AdvanceMode::kEvent, 1);
  for (int threads : {2, 8}) {
    const ClusterRun parallel = run_cluster(core::AdvanceMode::kEvent, threads);
    EXPECT_EQ(serial.fingerprint, parallel.fingerprint)
        << "--threads " << threads << " changed the event-driven simulation";
  }
}

TEST(EventModeCluster, ByteIdenticalUnderChannelLoss) {
  // Random channel loss draws happen per send; sends land at the same
  // instants in both modes, so the loss pattern must be identical too.
  const ClusterRun tick = run_cluster(core::AdvanceMode::kTick, 1, 0.3);
  const ClusterRun event = run_cluster(core::AdvanceMode::kEvent, 1, 0.3);
  EXPECT_EQ(tick.fingerprint, event.fingerprint);
}

TEST(EventModeCluster, FaultsAndFailoverForceTickFallback) {
  // Chaos/failover scenarios are tick-granular; kEvent must quietly take
  // the tick path and reproduce it exactly.
  auto run = [](core::AdvanceMode mode) {
    sim::Simulation sim;
    sim::Rng rng(23);
    const mach::MachineConfig machine = mach::p630();
    cluster::Cluster cluster =
        cluster::Cluster::homogeneous(sim, machine, 4, rng);
    cluster.core({0, 0}).add_workload(
        workload::make_uniform_synthetic(90.0, 1e12));
    power::PowerBudget budget(2000.0);
    sim::FaultPlan plan(5);
    plan.add({sim::FaultKind::kNodeCrash, 0.7, 1.6, 1, 0.0});
    sim::EventLog journal;
    core::ClusterDaemonConfig cfg;
    cfg.journal = &journal;
    cfg.fault_plan = &plan;
    cfg.advance_mode = mode;
    core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);
    sim.run_for(2.0);
    std::ostringstream out;
    out << normalized_jsonl(journal);
    append_core_state(out, cluster);
    return out.str();
  };
  EXPECT_EQ(run(core::AdvanceMode::kTick), run(core::AdvanceMode::kEvent));
}

}  // namespace
}  // namespace fvsst
