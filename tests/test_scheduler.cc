// Tests for the frequency/voltage scheduling algorithm (core/scheduler.h).
#include "core/scheduler.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/rng.h"
#include "simkit/units.h"
#include "workload/mixes.h"

namespace fvsst::core {
namespace {

using units::GHz;
using units::MHz;

const mach::MemoryLatencies kLat = mach::p630().latencies;

WorkloadEstimate make_estimate(double alpha, double stall_cpi_at_1ghz) {
  WorkloadEstimate est;
  est.valid = true;
  est.alpha_inv = 1.0 / alpha;
  est.mem_time_per_instr = stall_cpi_at_1ghz / 1e9;
  return est;
}

FrequencyScheduler make_scheduler(
    SchedulerVariant variant = SchedulerVariant::kTwoPass,
    double epsilon = 0.04) {
  FrequencyScheduler::Options opts;
  opts.epsilon = epsilon;
  opts.variant = variant;
  return FrequencyScheduler(mach::p630_frequency_table(), kLat, opts);
}

TEST(Scheduler, ValidatesOptions) {
  FrequencyScheduler::Options opts;
  opts.epsilon = 0.0;
  EXPECT_THROW(
      FrequencyScheduler(mach::p630_frequency_table(), kLat, opts),
      std::invalid_argument);
  opts.epsilon = 1.0;
  EXPECT_THROW(
      FrequencyScheduler(mach::p630_frequency_table(), kLat, opts),
      std::invalid_argument);
}

TEST(Scheduler, CpuBoundUnconstrainedGetsFmax) {
  const auto sched = make_scheduler();
  std::vector<ProcView> procs{{make_estimate(1.6, 0.06), false}};
  const auto result = sched.schedule(procs, 1e9);
  EXPECT_DOUBLE_EQ(result.decisions[0].hz, 1 * GHz);
  EXPECT_DOUBLE_EQ(result.decisions[0].desired_hz, 1 * GHz);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.downgrade_steps, 0u);
}

TEST(Scheduler, MemoryBoundGetsSaturationFrequency) {
  // Stall CPI 6.4 at 1 GHz with alpha 1.6 was calibrated (mixes.cc) to
  // epsilon-schedule at 700 MHz for epsilon = 0.04.
  const auto sched = make_scheduler();
  std::vector<ProcView> procs{{make_estimate(1.6, 6.4), false}};
  const auto result = sched.schedule(procs, 1e9);
  EXPECT_DOUBLE_EQ(result.decisions[0].hz, 700 * MHz);
}

TEST(Scheduler, PredictedLossRespectsEpsilonWhenUnconstrained) {
  const auto sched = make_scheduler();
  for (double stall_cpi : {0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    std::vector<ProcView> procs{{make_estimate(1.5, stall_cpi), false}};
    const auto result = sched.schedule(procs, 1e9);
    EXPECT_LT(result.decisions[0].predicted_loss, 0.04) << stall_cpi;
  }
}

TEST(Scheduler, ChoosesLowestFrequencyWithinEpsilon) {
  // The setting just below the chosen one must violate epsilon.
  const auto sched = make_scheduler();
  const auto table = mach::p630_frequency_table();
  const WorkloadEstimate est = make_estimate(1.6, 3.9);
  std::vector<ProcView> procs{{est, false}};
  const auto result = sched.schedule(procs, 1e9);
  const auto lower = table.next_lower(result.decisions[0].hz);
  ASSERT_TRUE(lower.has_value());
  EXPECT_GE(sched.predicted_loss(est, lower->hz), 0.04);
}

TEST(Scheduler, PowerConstraintForcesDowngrades) {
  const auto sched = make_scheduler();
  // Four CPU-bound processors want 4 x 140 W = 560 W; only 294 W allowed.
  std::vector<ProcView> procs(4, ProcView{make_estimate(1.6, 0.06), false});
  const auto result = sched.schedule(procs, 294.0);
  EXPECT_TRUE(result.feasible);
  EXPECT_LE(result.total_cpu_power_w, 294.0);
  EXPECT_GT(result.downgrade_steps, 0u);
  // Desired frequencies stay at f_max even though granted ones dropped.
  for (const auto& d : result.decisions) {
    EXPECT_DOUBLE_EQ(d.desired_hz, 1 * GHz);
    EXPECT_LT(d.hz, 1 * GHz);
  }
}

TEST(Scheduler, DowngradesHitMemoryBoundProcessorsFirst) {
  const auto sched = make_scheduler();
  // One CPU-bound, one memory-bound; small squeeze below their epsilon sum.
  std::vector<ProcView> procs{{make_estimate(1.6, 0.06), false},
                              {make_estimate(1.6, 6.4), false}};
  // Epsilon choice: 140 + 66 = 206 W.  Budget 197.5 W needs one downgrade,
  // and the memory-bound processor's step (700 -> 650 MHz, ~4.6% predicted
  // loss) is marginally cheaper than the CPU-bound one's, so it goes first.
  const auto result = sched.schedule(procs, 197.5);
  EXPECT_TRUE(result.feasible);
  EXPECT_LE(result.total_cpu_power_w, 197.5);
  EXPECT_EQ(result.downgrade_steps, 1u);
  EXPECT_DOUBLE_EQ(result.decisions[0].hz, 1 * GHz);
  EXPECT_DOUBLE_EQ(result.decisions[1].hz, 650 * MHz);
}

TEST(Scheduler, InfeasibleBudgetReportsAndFloors) {
  const auto sched = make_scheduler();
  std::vector<ProcView> procs(4, ProcView{make_estimate(1.6, 0.06), false});
  const auto result = sched.schedule(procs, 20.0);  // < 4 x 9 W floor
  EXPECT_FALSE(result.feasible);
  for (const auto& d : result.decisions) {
    EXPECT_DOUBLE_EQ(d.hz, 250 * MHz);
  }
  EXPECT_DOUBLE_EQ(result.total_cpu_power_w, 36.0);
}

TEST(Scheduler, BudgetAdmittingOnlyTheFloorExactlyIsFeasible) {
  // Boundary regression: a budget that admits the all-minimum
  // configuration exactly (4 x 9 W) must be feasible.  Pass 2 reaches it
  // through a long chain of downgrades with the running power total
  // maintained incrementally, so the comparison has to tolerate
  // accumulated rounding (mach::kPowerSlackW) instead of declaring the
  // floor infeasible by an ulp.
  const auto sched = make_scheduler();
  std::vector<ProcView> procs(4, ProcView{make_estimate(1.6, 0.06), false});
  const auto table = mach::p630_frequency_table();
  const double budget = 4.0 * table.min_point().watts;
  const auto result = sched.schedule(procs, budget);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.total_cpu_power_w, budget);
  for (const auto& d : result.decisions) {
    EXPECT_DOUBLE_EQ(d.hz, 250 * MHz);
  }
  // One watt less and the floor no longer fits: infeasible, still floored.
  const auto under = sched.schedule(procs, budget - 1.0);
  EXPECT_FALSE(under.feasible);
  for (const auto& d : under.decisions) {
    EXPECT_DOUBLE_EQ(d.hz, 250 * MHz);
  }
}

TEST(Scheduler, BudgetExactlyAtEpsilonDemandNeedsNoDowngrade) {
  // Epsilon demand for [cpu-bound, memory-bound] is 140 + 66 = 206 W.  A
  // budget of exactly 206 W admits it, and the boundary comparison must
  // not trigger a spurious extra downgrade.
  const auto sched = make_scheduler();
  std::vector<ProcView> procs{{make_estimate(1.6, 0.06), false},
                              {make_estimate(1.6, 6.4), false}};
  const auto result = sched.schedule(procs, 206.0);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.downgrade_steps, 0u);
  EXPECT_DOUBLE_EQ(result.decisions[0].hz, 1 * GHz);
  EXPECT_DOUBLE_EQ(result.decisions[1].hz, 700 * MHz);
  EXPECT_DOUBLE_EQ(result.total_cpu_power_w, 206.0);
}

TEST(Scheduler, Pass1EpsilonCutoffIsStrictAtExactBoundary) {
  // Pure-CPU work on a two-point table: with mem_time 0 performance
  // scales linearly with frequency, so predicted loss at half speed is
  // exactly 0.5.  The paper's pass-1 test is strict (`loss < epsilon`),
  // so epsilon = 0.5 must reject the 500 MHz point and desire f_max.
  const mach::FrequencyTable table(
      {{500 * MHz, 1.0, 35.0}, {1000 * MHz, 1.3, 140.0}});
  FrequencyScheduler::Options opts;
  opts.epsilon = 0.5;
  const FrequencyScheduler sched(table, kLat, opts);
  WorkloadEstimate est;
  est.valid = true;
  est.alpha_inv = 1.0;
  est.mem_time_per_instr = 0.0;
  ASSERT_DOUBLE_EQ(sched.predicted_loss(est, 500 * MHz), 0.5);
  std::vector<ProcView> procs{{est, false}};
  const auto at_boundary = sched.schedule(procs, 1e9);
  EXPECT_DOUBLE_EQ(at_boundary.decisions[0].desired_hz, 1 * GHz);
  EXPECT_EQ(at_boundary.decisions[0].pass1_reason, Pass1Reason::kFmax);

  // Nudge epsilon past the boundary and the half-speed point qualifies.
  opts.epsilon = 0.5 + 1e-9;
  const FrequencyScheduler above(table, kLat, opts);
  const auto past_boundary = above.schedule(procs, 1e9);
  EXPECT_DOUBLE_EQ(past_boundary.decisions[0].desired_hz, 500 * MHz);
  EXPECT_EQ(past_boundary.decisions[0].pass1_reason, Pass1Reason::kEpsilon);
}

TEST(Scheduler, IdleDetectionPinsToMinimum) {
  const auto sched = make_scheduler();
  std::vector<ProcView> procs{
      {make_estimate(1.3, 0.0), true},   // idle with hot-idle counters
      {make_estimate(1.6, 0.06), false}};
  const auto result = sched.schedule(procs, 1e9);
  EXPECT_DOUBLE_EQ(result.decisions[0].hz, 250 * MHz);
  EXPECT_DOUBLE_EQ(result.decisions[1].hz, 1 * GHz);
}

TEST(Scheduler, WithoutIdleDetectionHotIdleDemandsFmax) {
  FrequencyScheduler::Options opts;
  opts.idle_detection = false;
  const FrequencyScheduler sched(mach::p630_frequency_table(), kLat, opts);
  std::vector<ProcView> procs{{make_estimate(1.3, 0.0), true}};
  const auto result = sched.schedule(procs, 1e9);
  // The predictor sees a CPU-intensive loop and schedules f_max: the
  // paper's "idles hot" pathology.
  EXPECT_DOUBLE_EQ(result.decisions[0].hz, 1 * GHz);
}

TEST(Scheduler, InvalidEstimateRunsAtFmax) {
  const auto sched = make_scheduler();
  std::vector<ProcView> procs{{WorkloadEstimate{}, false}};
  const auto result = sched.schedule(procs, 1e9);
  EXPECT_DOUBLE_EQ(result.decisions[0].hz, 1 * GHz);
}

TEST(Scheduler, VoltageIsTableMinimumForGrantedFrequency) {
  const auto sched = make_scheduler();
  const auto table = mach::p630_frequency_table();
  std::vector<ProcView> procs{{make_estimate(1.6, 6.4), false}};
  const auto result = sched.schedule(procs, 1e9);
  const auto& d = result.decisions[0];
  EXPECT_DOUBLE_EQ(d.volts, table.min_voltage(d.hz));
  EXPECT_DOUBLE_EQ(d.watts, table.power(d.hz));
}

TEST(Scheduler, UpwardAdjustmentWhenWorkloadBecomesCpuBound) {
  // Same processor, two consecutive scheduling rounds: memory-bound then
  // CPU-bound.  The second round must raise the frequency (paper: pass 1
  // "may, in fact, adjust it upward").
  const auto sched = make_scheduler();
  std::vector<ProcView> memory{{make_estimate(1.6, 6.4), false}};
  std::vector<ProcView> cpu{{make_estimate(1.6, 0.06), false}};
  const double f1 = sched.schedule(memory, 1e9).decisions[0].hz;
  const double f2 = sched.schedule(cpu, 1e9).decisions[0].hz;
  EXPECT_LT(f1, f2);
}

TEST(Scheduler, Section5WorkedExampleVectors) {
  // The paper's Section 5 example: epsilon-constrained vector
  // [1.0, 0.7, 0.8, 0.8] GHz at T0; power-constrained under 294 W; at T1
  // processor 0 becomes memory-intensive and the epsilon vector
  // [0.6, 0.7, 0.8, 0.8] GHz fits the budget outright.
  const auto sched = make_scheduler();
  const auto t0_mixes = workload::section5_example_mixes(false);
  std::vector<ProcView> t0(4);
  for (int p = 0; p < 4; ++p) {
    const auto& phase = t0_mixes[static_cast<std::size_t>(p)].phases[0];
    t0[static_cast<std::size_t>(p)].estimate =
        make_estimate(phase.alpha,
                      workload::mem_time_per_instruction(phase, kLat) * 1e9);
  }
  const auto r0 = sched.schedule(t0, 294.0);
  EXPECT_DOUBLE_EQ(r0.decisions[0].desired_hz, 1000 * MHz);
  EXPECT_DOUBLE_EQ(r0.decisions[1].desired_hz, 700 * MHz);
  EXPECT_DOUBLE_EQ(r0.decisions[2].desired_hz, 800 * MHz);
  EXPECT_DOUBLE_EQ(r0.decisions[3].desired_hz, 800 * MHz);
  EXPECT_LE(r0.total_cpu_power_w, 294.0);
  EXPECT_GT(r0.downgrade_steps, 0u);

  const auto t1_mixes = workload::section5_example_mixes(true);
  std::vector<ProcView> t1(4);
  for (int p = 0; p < 4; ++p) {
    const auto& phase = t1_mixes[static_cast<std::size_t>(p)].phases[0];
    t1[static_cast<std::size_t>(p)].estimate =
        make_estimate(phase.alpha,
                      workload::mem_time_per_instruction(phase, kLat) * 1e9);
  }
  const auto r1 = sched.schedule(t1, 294.0);
  EXPECT_DOUBLE_EQ(r1.decisions[0].desired_hz, 600 * MHz);
  // All epsilon frequencies now fit: 48 + 66 + 84 + 84 = 282 W <= 294 W.
  EXPECT_EQ(r1.downgrade_steps, 0u);
  EXPECT_NEAR(r1.total_cpu_power_w, 282.0, 1e-9);
}

TEST(Scheduler, WattsPerLossVariantCompliesAndOftenWins) {
  // The beyond-paper greedy must always meet the budget, and on diverse
  // workloads it should deliver at least the paper greedy's aggregate
  // predicted performance at the same budget.
  // Both greedies are heuristics for the same knapsack-like problem;
  // neither dominates per-instance.  Require: always budget-compliant,
  // comparable on average, and each wins a nontrivial share of systems.
  const auto paper = make_scheduler(SchedulerVariant::kTwoPass);
  const auto ratio = make_scheduler(SchedulerVariant::kWattsPerLoss);
  const IpcPredictor pred(kLat);
  sim::Rng rng(2718);
  int ratio_at_least = 0, trials = 0;
  double sum_ratio = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 10));
    std::vector<ProcView> procs(n);
    for (auto& p : procs) {
      p.estimate = make_estimate(rng.uniform(0.9, 2.0),
                                 rng.uniform(0.0, 14.0));
    }
    const double budget = rng.uniform(9.0 * n, 140.0 * n);
    const auto a = paper.schedule(procs, budget);
    const auto b = ratio.schedule(procs, budget);
    if (a.feasible) {
      ASSERT_LE(b.total_cpu_power_w, budget + 1e-9);
      double perf_a = 0.0, perf_b = 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        perf_a += pred.predict_performance(procs[p].estimate,
                                           a.decisions[p].hz);
        perf_b += pred.predict_performance(procs[p].estimate,
                                           b.decisions[p].hz);
      }
      ++trials;
      sum_ratio += perf_b / perf_a;
      if (perf_b >= perf_a * 0.999) ++ratio_at_least;
    }
  }
  ASSERT_GT(trials, 100);
  EXPECT_GT(sum_ratio / trials, 0.98);  // comparable on average
  EXPECT_GT(static_cast<double>(ratio_at_least) / trials, 0.5);
}

// --- Variant equivalence & budget-compliance property sweep ---------------

struct RandomCase {
  std::uint64_t seed;
};

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, SinglePassMatchesTwoPassAndBudgetHolds) {
  sim::Rng rng(GetParam());
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 12));
  std::vector<ProcView> procs(n);
  for (auto& p : procs) {
    p.estimate = make_estimate(rng.uniform(0.8, 2.0), rng.uniform(0.0, 20.0));
    p.idle = rng.bernoulli(0.2);
  }
  const double floor = 9.0 * static_cast<double>(n);
  const double budget = rng.uniform(floor * 0.5, 140.0 * n * 1.1);

  const auto two = make_scheduler(SchedulerVariant::kTwoPass)
                       .schedule(procs, budget);
  const auto one = make_scheduler(SchedulerVariant::kSinglePass)
                       .schedule(procs, budget);

  ASSERT_EQ(two.decisions.size(), one.decisions.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(two.decisions[i].hz, one.decisions[i].hz) << i;
  }
  EXPECT_EQ(two.feasible, one.feasible);
  EXPECT_EQ(two.downgrade_steps, one.downgrade_steps);
  if (two.feasible) {
    EXPECT_LE(two.total_cpu_power_w, budget + 1e-9);
  } else {
    EXPECT_DOUBLE_EQ(two.total_cpu_power_w, floor);
  }
}

TEST_P(SchedulerProperty, ContinuousVariantNeverBelowDiscreteDemand) {
  sim::Rng rng(GetParam() ^ 0xabcdef);
  std::vector<ProcView> procs(4);
  for (auto& p : procs) {
    p.estimate = make_estimate(rng.uniform(0.8, 2.0), rng.uniform(0.0, 15.0));
  }
  const auto cont = make_scheduler(SchedulerVariant::kContinuous)
                        .schedule(procs, 1e9);
  const FrequencyScheduler sched = make_scheduler();
  for (std::size_t i = 0; i < procs.size(); ++i) {
    // Snapping f_ideal up onto the grid keeps predicted loss under epsilon.
    EXPECT_LT(sched.predicted_loss(procs[i].estimate, cont.decisions[i].hz),
              0.04 + 1e-12);
    // And never differs from the discrete choice by more than one step.
    const auto disc = sched.schedule(procs, 1e9);
    const double diff =
        std::abs(disc.decisions[i].hz - cont.decisions[i].hz);
    EXPECT_LE(diff, 50 * MHz + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, SchedulerProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace fvsst::core
