// Tests for the synthetic benchmark (workload/synthetic.h).
#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include "mach/machine_config.h"
#include "simkit/units.h"

namespace fvsst::workload {
namespace {

using units::GHz;

const mach::MemoryLatencies kLat = mach::p630().latencies;

TEST(Synthetic, IntensityBoundsChecked) {
  EXPECT_THROW(synthetic_phase("x", -1.0, 1e9), std::invalid_argument);
  EXPECT_THROW(synthetic_phase("x", 100.1, 1e9), std::invalid_argument);
  EXPECT_NO_THROW(synthetic_phase("x", 0.0, 1e9));
  EXPECT_NO_THROW(synthetic_phase("x", 100.0, 1e9));
}

TEST(Synthetic, HigherIntensityMeansFewerMemoryAccesses) {
  double prev_mem = 1e18;
  for (double intensity : {0.0, 25.0, 50.0, 75.0, 100.0}) {
    const Phase p = synthetic_phase("x", intensity, 1e9);
    EXPECT_LT(p.apki_mem, prev_mem);
    prev_mem = p.apki_mem;
  }
}

TEST(Synthetic, FullIntensityStillHasResidualStalls) {
  // The paper's CPU-intensive phase degrades "slightly less than
  // one-to-one" under a frequency cap: some memory stalls remain.
  const Phase p = synthetic_phase("x", 100.0, 1e9);
  EXPECT_GT(mem_time_per_instruction(p, kLat), 0.0);
  // But it must be small: IPC at 1 GHz within ~10% of alpha, so the phase
  // still reads as CPU-bound to the scheduler.
  EXPECT_GT(true_ipc(p, kLat, 1 * GHz), 0.90 * kSyntheticAlpha);
}

TEST(Synthetic, MemoryIntensePhaseSaturates) {
  // 20% CPU intensity should lose well under 10% of its 1 GHz performance
  // when run at 750 MHz (performance saturation).
  const Phase p = synthetic_phase("x", 20.0, 1e9);
  const double loss = 1.0 - true_performance(p, kLat, 0.75 * GHz) /
                                true_performance(p, kLat, 1.0 * GHz);
  EXPECT_LT(loss, 0.06);
  EXPECT_GT(loss, 0.0);
}

TEST(Synthetic, TwoPhaseStructure) {
  SyntheticParams params;
  params.phase1 = {100.0, 4e8};
  params.phase2 = {25.0, 2e8};
  const WorkloadSpec spec = make_synthetic(params);
  ASSERT_EQ(spec.phases.size(), 2u);
  EXPECT_TRUE(spec.loop);
  EXPECT_DOUBLE_EQ(spec.phases[0].instructions, 4e8);
  EXPECT_DOUBLE_EQ(spec.phases[1].instructions, 2e8);
  EXPECT_LT(spec.phases[0].apki_mem, spec.phases[1].apki_mem);
}

TEST(Synthetic, InitExitPhasesAddedAndDisableLoop) {
  SyntheticParams params;
  params.phase1 = {100.0, 4e8};
  params.phase2 = {25.0, 2e8};
  params.with_init_exit = true;
  const WorkloadSpec spec = make_synthetic(params);
  ASSERT_EQ(spec.phases.size(), 4u);
  EXPECT_FALSE(spec.loop);
  EXPECT_EQ(spec.phases.front().name, "init");
  EXPECT_EQ(spec.phases.back().name, "exit");
  // Init/exit phases carry the latency mis-modelling that degrades the
  // predictor (paper Table 2, CPU3 vs CPU3*).
  EXPECT_GT(spec.phases.front().latency_scale, 1.1);
  EXPECT_GT(spec.phases.back().latency_scale, 1.1);
}

TEST(Synthetic, MultiphaseGeneralisation) {
  const WorkloadSpec spec = make_multiphase_synthetic(
      {{100.0, 1e8}, {60.0, 2e8}, {20.0, 3e8}, {80.0, 4e8}}, true);
  ASSERT_EQ(spec.phases.size(), 4u);
  EXPECT_TRUE(spec.loop);
  EXPECT_EQ(spec.phases[2].name, "phase3");
  EXPECT_DOUBLE_EQ(spec.phases[3].instructions, 4e8);
  // Memory intensity ordering follows the intensity parameters.
  EXPECT_LT(spec.phases[0].apki_mem, spec.phases[1].apki_mem);
  EXPECT_GT(spec.phases[2].apki_mem, spec.phases[1].apki_mem);
  EXPECT_THROW(make_multiphase_synthetic({}), std::invalid_argument);
}

TEST(Synthetic, UniformHelper) {
  const WorkloadSpec spec = make_uniform_synthetic(50.0, 3e8, false);
  ASSERT_EQ(spec.phases.size(), 1u);
  EXPECT_FALSE(spec.loop);
  EXPECT_DOUBLE_EQ(spec.phases[0].instructions, 3e8);
}

// Property sweep: saturation frequency is monotone in intensity — more
// memory-bound workloads saturate earlier.
class SyntheticSweep : public ::testing::TestWithParam<double> {};

TEST_P(SyntheticSweep, SaturationPerformanceDecreasesWithMemoryShare) {
  const double intensity = GetParam();
  const Phase p = synthetic_phase("x", intensity, 1e9);
  const Phase p_more_mem =
      synthetic_phase("y", std::max(0.0, intensity - 10.0), 1e9);
  EXPECT_GT(saturation_performance(p, kLat),
            saturation_performance(p_more_mem, kLat));
}

TEST_P(SyntheticSweep, PerfLossAtHalfFrequencyBounded) {
  // At 500 MHz no workload can lose more than 50% (the frequency ratio) of
  // its 1 GHz performance, and every workload loses something.
  const Phase p = synthetic_phase("x", GetParam(), 1e9);
  const double loss = 1.0 - true_performance(p, kLat, 0.5 * GHz) /
                                true_performance(p, kLat, 1.0 * GHz);
  EXPECT_GT(loss, 0.0);
  EXPECT_LE(loss, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Intensities, SyntheticSweep,
                         ::testing::Values(10.0, 20.0, 25.0, 40.0, 50.0,
                                           60.0, 75.0, 90.0, 100.0));

}  // namespace
}  // namespace fvsst::workload
