// Tests for HostScheduler against a synthetic sysfs tree.
#include "host/host_scheduler.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace fvsst::host {
namespace {

namespace fs = std::filesystem;

class HostSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() / "fvsst_hostsched_test";
    fs::remove_all(root_);
    for (int cpu = 0; cpu < 4; ++cpu) {
      const fs::path dir = root_ / ("cpu" + std::to_string(cpu)) / "cpufreq";
      fs::create_directories(dir);
      write(dir / "scaling_available_frequencies",
            "2400000 2000000 1600000 1200000 800000\n");
      write(dir / "cpuinfo_min_freq", "800000\n");
      write(dir / "cpuinfo_max_freq", "2400000\n");
      write(dir / "scaling_cur_freq", "2400000\n");
      write(dir / "scaling_governor", "userspace\n");
    }
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const fs::path& p, const std::string& content) {
    std::ofstream out(p);
    out << content;
  }

  std::string read_setspeed(int cpu) {
    std::ifstream in(root_ / ("cpu" + std::to_string(cpu)) / "cpufreq" /
                     "scaling_setspeed");
    std::string s;
    std::getline(in, s);
    return s;
  }

  HostScheduler::Options options() {
    HostScheduler::Options opts;
    opts.sysfs_root = root_.string();
    return opts;
  }

  fs::path root_;
};

TEST(TableFromHost, BuildsAscendingTableWithModelPower) {
  CpuFreqInfo info;
  info.available_hz = {800e6, 1600e6, 2400e6};
  const power::PowerModel model(50e-9, 1.0);
  const auto table = table_from_host(info, model, 0.8, 1.2);
  ASSERT_TRUE(table.has_value());
  ASSERT_EQ(table->size(), 3u);
  EXPECT_DOUBLE_EQ((*table)[0].hz, 800e6);
  EXPECT_DOUBLE_EQ((*table)[0].volts, 0.8);
  EXPECT_DOUBLE_EQ((*table)[2].volts, 1.2);
  EXPECT_LT((*table)[0].watts, (*table)[2].watts);
}

TEST(TableFromHost, EmptyFrequencyListGivesNullopt) {
  CpuFreqInfo info;
  const power::PowerModel model(50e-9, 1.0);
  EXPECT_FALSE(table_from_host(info, model).has_value());
}

TEST_F(HostSchedulerTest, ActivatesOnFakeSysfs) {
  HostScheduler sched(options());
  EXPECT_TRUE(sched.active());
  EXPECT_EQ(sched.cpus().size(), 4u);
}

TEST_F(HostSchedulerTest, InactiveWithoutSysfs) {
  HostScheduler::Options opts = options();
  opts.sysfs_root = "/nonexistent-dir-xyz";
  HostScheduler sched(opts);
  EXPECT_FALSE(sched.active());
  EXPECT_TRUE(sched.step(0.1).empty());
}

TEST_F(HostSchedulerTest, StepWritesFrequenciesWithinBudget) {
  HostScheduler::Options opts = options();
  // Budget forces everyone below the top setting.  Model power at 2.4 GHz
  // / 1.2 V is ~173 W per CPU; cap the aggregate well below 4x that.
  opts.power_budget_w = 300.0;
  HostScheduler sched(opts);
  ASSERT_TRUE(sched.active());
  const auto decisions = sched.step(0.1);
  ASSERT_EQ(decisions.size(), 4u);
  double total = 0.0;
  for (const auto& d : decisions) total += d.watts;
  EXPECT_LE(total, 300.0 + 1e-9);
  // scaling_setspeed written in kHz, matching each CPU's own decision
  // (estimate-less downgrades are tie-broken by index, so they differ).
  for (int cpu = 0; cpu < 4; ++cpu) {
    const std::string written = read_setspeed(cpu);
    ASSERT_FALSE(written.empty()) << cpu;
    EXPECT_EQ(written,
              std::to_string(static_cast<long>(
                  decisions[static_cast<std::size_t>(cpu)].hz / 1e3)))
        << cpu;
  }
  EXPECT_EQ(sched.failed_writes(), 0u);
  EXPECT_EQ(sched.steps(), 1u);
}

TEST_F(HostSchedulerTest, UnconstrainedWithoutCountersRunsFmax) {
  // In containers counters are typically denied: with no estimate and no
  // budget pressure, the safe choice is f_max.
  HostScheduler sched(options());
  ASSERT_TRUE(sched.active());
  const auto decisions = sched.step(0.1);
  ASSERT_EQ(decisions.size(), 4u);
  if (!sched.counters_available()) {
    for (const auto& d : decisions) EXPECT_DOUBLE_EQ(d.hz, 2400e6);
  }
}

TEST_F(HostSchedulerTest, BudgetCanChangeBetweenSteps) {
  HostScheduler::Options opts = options();
  HostScheduler sched(opts);
  ASSERT_TRUE(sched.active());
  sched.step(0.1);
  sched.set_power_budget_w(150.0);
  const auto decisions = sched.step(0.1);
  double total = 0.0;
  for (const auto& d : decisions) total += d.watts;
  EXPECT_LE(total, 150.0 + 1e-9);
}

}  // namespace
}  // namespace fvsst::host
