# Empty dependencies file for bench_abl_thermal.
# This may be replaced when dependencies are built.
