# Empty compiler generated dependencies file for bench_fig6_power_limits.
# This may be replaced when dependencies are built.
