file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_power_limits.dir/bench_fig6_power_limits.cpp.o"
  "CMakeFiles/bench_fig6_power_limits.dir/bench_fig6_power_limits.cpp.o.d"
  "bench_fig6_power_limits"
  "bench_fig6_power_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_power_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
