file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_governors.dir/bench_abl_governors.cpp.o"
  "CMakeFiles/bench_abl_governors.dir/bench_abl_governors.cpp.o.d"
  "bench_abl_governors"
  "bench_abl_governors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
