# Empty compiler generated dependencies file for bench_abl_governors.
# This may be replaced when dependencies are built.
