# Empty compiler generated dependencies file for bench_abl_response_time.
# This may be replaced when dependencies are built.
