file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_intervals.dir/bench_abl_intervals.cpp.o"
  "CMakeFiles/bench_abl_intervals.dir/bench_abl_intervals.cpp.o.d"
  "bench_abl_intervals"
  "bench_abl_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
