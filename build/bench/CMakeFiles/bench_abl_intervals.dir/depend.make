# Empty dependencies file for bench_abl_intervals.
# This may be replaced when dependencies are built.
