# Empty dependencies file for bench_fig7_constrained_phases.
# This may be replaced when dependencies are built.
