file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_estimators.dir/bench_abl_estimators.cpp.o"
  "CMakeFiles/bench_abl_estimators.dir/bench_abl_estimators.cpp.o.d"
  "bench_abl_estimators"
  "bench_abl_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
