# Empty compiler generated dependencies file for bench_abl_estimators.
# This may be replaced when dependencies are built.
