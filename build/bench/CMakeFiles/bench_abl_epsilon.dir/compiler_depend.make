# Empty compiler generated dependencies file for bench_abl_epsilon.
# This may be replaced when dependencies are built.
