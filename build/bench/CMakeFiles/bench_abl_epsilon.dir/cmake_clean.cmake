file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_epsilon.dir/bench_abl_epsilon.cpp.o"
  "CMakeFiles/bench_abl_epsilon.dir/bench_abl_epsilon.cpp.o.d"
  "bench_abl_epsilon"
  "bench_abl_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
