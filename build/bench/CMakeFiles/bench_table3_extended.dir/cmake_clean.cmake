file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_extended.dir/bench_table3_extended.cpp.o"
  "CMakeFiles/bench_table3_extended.dir/bench_table3_extended.cpp.o.d"
  "bench_table3_extended"
  "bench_table3_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
