# Empty dependencies file for bench_table3_extended.
# This may be replaced when dependencies are built.
