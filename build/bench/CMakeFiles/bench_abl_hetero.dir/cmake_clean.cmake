file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_hetero.dir/bench_abl_hetero.cpp.o"
  "CMakeFiles/bench_abl_hetero.dir/bench_abl_hetero.cpp.o.d"
  "bench_abl_hetero"
  "bench_abl_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
