# Empty compiler generated dependencies file for bench_abl_hetero.
# This may be replaced when dependencies are built.
