# Empty dependencies file for bench_abl_hierarchy.
# This may be replaced when dependencies are built.
