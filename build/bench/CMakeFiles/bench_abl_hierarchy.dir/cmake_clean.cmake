file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_hierarchy.dir/bench_abl_hierarchy.cpp.o"
  "CMakeFiles/bench_abl_hierarchy.dir/bench_abl_hierarchy.cpp.o.d"
  "bench_abl_hierarchy"
  "bench_abl_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
