file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_latency.dir/bench_abl_latency.cpp.o"
  "CMakeFiles/bench_abl_latency.dir/bench_abl_latency.cpp.o.d"
  "bench_abl_latency"
  "bench_abl_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
