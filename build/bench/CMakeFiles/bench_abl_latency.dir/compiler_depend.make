# Empty compiler generated dependencies file for bench_abl_latency.
# This may be replaced when dependencies are built.
