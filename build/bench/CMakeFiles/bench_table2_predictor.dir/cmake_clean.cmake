file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_predictor.dir/bench_table2_predictor.cpp.o"
  "CMakeFiles/bench_table2_predictor.dir/bench_table2_predictor.cpp.o.d"
  "bench_table2_predictor"
  "bench_table2_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
