# Empty dependencies file for bench_table2_predictor.
# This may be replaced when dependencies are built.
