file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_placement.dir/bench_abl_placement.cpp.o"
  "CMakeFiles/bench_abl_placement.dir/bench_abl_placement.cpp.o.d"
  "bench_abl_placement"
  "bench_abl_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
