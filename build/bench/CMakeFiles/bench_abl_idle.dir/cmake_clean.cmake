file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_idle.dir/bench_abl_idle.cpp.o"
  "CMakeFiles/bench_abl_idle.dir/bench_abl_idle.cpp.o.d"
  "bench_abl_idle"
  "bench_abl_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
