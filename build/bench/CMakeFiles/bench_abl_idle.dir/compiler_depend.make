# Empty compiler generated dependencies file for bench_abl_idle.
# This may be replaced when dependencies are built.
