file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_margin.dir/bench_abl_margin.cpp.o"
  "CMakeFiles/bench_abl_margin.dir/bench_abl_margin.cpp.o.d"
  "bench_abl_margin"
  "bench_abl_margin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_margin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
