# Empty dependencies file for bench_abl_margin.
# This may be replaced when dependencies are built.
