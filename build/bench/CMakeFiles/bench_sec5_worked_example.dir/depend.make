# Empty dependencies file for bench_sec5_worked_example.
# This may be replaced when dependencies are built.
