# Empty compiler generated dependencies file for bench_abl_variants.
# This may be replaced when dependencies are built.
