file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_variants.dir/bench_abl_variants.cpp.o"
  "CMakeFiles/bench_abl_variants.dir/bench_abl_variants.cpp.o.d"
  "bench_abl_variants"
  "bench_abl_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
