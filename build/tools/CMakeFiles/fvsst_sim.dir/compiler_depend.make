# Empty compiler generated dependencies file for fvsst_sim.
# This may be replaced when dependencies are built.
