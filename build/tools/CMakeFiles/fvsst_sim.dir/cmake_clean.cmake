file(REMOVE_RECURSE
  "CMakeFiles/fvsst_sim.dir/fvsst_sim.cpp.o"
  "CMakeFiles/fvsst_sim.dir/fvsst_sim.cpp.o.d"
  "fvsst_sim"
  "fvsst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvsst_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
