file(REMOVE_RECURSE
  "CMakeFiles/test_proc_stat.dir/test_proc_stat.cc.o"
  "CMakeFiles/test_proc_stat.dir/test_proc_stat.cc.o.d"
  "test_proc_stat"
  "test_proc_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proc_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
