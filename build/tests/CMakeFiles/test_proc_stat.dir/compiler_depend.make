# Empty compiler generated dependencies file for test_proc_stat.
# This may be replaced when dependencies are built.
