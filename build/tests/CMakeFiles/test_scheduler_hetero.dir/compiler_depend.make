# Empty compiler generated dependencies file for test_scheduler_hetero.
# This may be replaced when dependencies are built.
