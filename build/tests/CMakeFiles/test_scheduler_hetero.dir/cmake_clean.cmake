file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_hetero.dir/test_scheduler_hetero.cc.o"
  "CMakeFiles/test_scheduler_hetero.dir/test_scheduler_hetero.cc.o.d"
  "test_scheduler_hetero"
  "test_scheduler_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
