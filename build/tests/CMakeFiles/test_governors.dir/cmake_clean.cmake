file(REMOVE_RECURSE
  "CMakeFiles/test_governors.dir/test_governors.cc.o"
  "CMakeFiles/test_governors.dir/test_governors.cc.o.d"
  "test_governors"
  "test_governors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
