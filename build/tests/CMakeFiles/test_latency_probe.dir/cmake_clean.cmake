file(REMOVE_RECURSE
  "CMakeFiles/test_latency_probe.dir/test_latency_probe.cc.o"
  "CMakeFiles/test_latency_probe.dir/test_latency_probe.cc.o.d"
  "test_latency_probe"
  "test_latency_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
