# Empty dependencies file for test_latency_probe.
# This may be replaced when dependencies are built.
