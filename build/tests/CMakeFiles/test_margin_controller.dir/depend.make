# Empty dependencies file for test_margin_controller.
# This may be replaced when dependencies are built.
