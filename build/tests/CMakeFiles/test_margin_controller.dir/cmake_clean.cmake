file(REMOVE_RECURSE
  "CMakeFiles/test_margin_controller.dir/test_margin_controller.cc.o"
  "CMakeFiles/test_margin_controller.dir/test_margin_controller.cc.o.d"
  "test_margin_controller"
  "test_margin_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_margin_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
