# Empty compiler generated dependencies file for test_supply_budget.
# This may be replaced when dependencies are built.
