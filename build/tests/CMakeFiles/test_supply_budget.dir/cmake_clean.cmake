file(REMOVE_RECURSE
  "CMakeFiles/test_supply_budget.dir/test_supply_budget.cc.o"
  "CMakeFiles/test_supply_budget.dir/test_supply_budget.cc.o.d"
  "test_supply_budget"
  "test_supply_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_supply_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
