# Empty compiler generated dependencies file for test_throttle.
# This may be replaced when dependencies are built.
