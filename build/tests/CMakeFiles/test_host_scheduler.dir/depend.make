# Empty dependencies file for test_host_scheduler.
# This may be replaced when dependencies are built.
