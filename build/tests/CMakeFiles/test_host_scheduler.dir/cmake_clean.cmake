file(REMOVE_RECURSE
  "CMakeFiles/test_host_scheduler.dir/test_host_scheduler.cc.o"
  "CMakeFiles/test_host_scheduler.dir/test_host_scheduler.cc.o.d"
  "test_host_scheduler"
  "test_host_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
