# Empty compiler generated dependencies file for test_cluster_daemon.
# This may be replaced when dependencies are built.
