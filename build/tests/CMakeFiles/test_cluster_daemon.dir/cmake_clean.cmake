file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_daemon.dir/test_cluster_daemon.cc.o"
  "CMakeFiles/test_cluster_daemon.dir/test_cluster_daemon.cc.o.d"
  "test_cluster_daemon"
  "test_cluster_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
