# Empty dependencies file for test_hetero_cluster.
# This may be replaced when dependencies are built.
