file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_cluster.dir/test_hetero_cluster.cc.o"
  "CMakeFiles/test_hetero_cluster.dir/test_hetero_cluster.cc.o.d"
  "test_hetero_cluster"
  "test_hetero_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
