file(REMOVE_RECURSE
  "CMakeFiles/test_halted_idle.dir/test_halted_idle.cc.o"
  "CMakeFiles/test_halted_idle.dir/test_halted_idle.cc.o.d"
  "test_halted_idle"
  "test_halted_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_halted_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
