# Empty compiler generated dependencies file for test_halted_idle.
# This may be replaced when dependencies are built.
