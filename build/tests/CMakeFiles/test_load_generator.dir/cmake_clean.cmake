file(REMOVE_RECURSE
  "CMakeFiles/test_load_generator.dir/test_load_generator.cc.o"
  "CMakeFiles/test_load_generator.dir/test_load_generator.cc.o.d"
  "test_load_generator"
  "test_load_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
