# Empty compiler generated dependencies file for test_load_generator.
# This may be replaced when dependencies are built.
