# Empty compiler generated dependencies file for test_counter_trace.
# This may be replaced when dependencies are built.
