file(REMOVE_RECURSE
  "CMakeFiles/test_counter_trace.dir/test_counter_trace.cc.o"
  "CMakeFiles/test_counter_trace.dir/test_counter_trace.cc.o.d"
  "test_counter_trace"
  "test_counter_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counter_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
