
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_app_profiles.cc" "tests/CMakeFiles/test_app_profiles.dir/test_app_profiles.cc.o" "gcc" "tests/CMakeFiles/test_app_profiles.dir/test_app_profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/fvsst_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fvsst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fvsst_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fvsst_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/fvsst_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fvsst_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/fvsst_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mach/CMakeFiles/fvsst_mach.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/fvsst_simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/fvsst_host.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
