file(REMOVE_RECURSE
  "CMakeFiles/test_app_profiles.dir/test_app_profiles.cc.o"
  "CMakeFiles/test_app_profiles.dir/test_app_profiles.cc.o.d"
  "test_app_profiles"
  "test_app_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
