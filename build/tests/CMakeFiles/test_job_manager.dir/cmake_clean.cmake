file(REMOVE_RECURSE
  "CMakeFiles/test_job_manager.dir/test_job_manager.cc.o"
  "CMakeFiles/test_job_manager.dir/test_job_manager.cc.o.d"
  "test_job_manager"
  "test_job_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
