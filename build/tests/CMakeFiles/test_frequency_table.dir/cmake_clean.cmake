file(REMOVE_RECURSE
  "CMakeFiles/test_frequency_table.dir/test_frequency_table.cc.o"
  "CMakeFiles/test_frequency_table.dir/test_frequency_table.cc.o.d"
  "test_frequency_table"
  "test_frequency_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frequency_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
