# Empty compiler generated dependencies file for test_frequency_table.
# This may be replaced when dependencies are built.
