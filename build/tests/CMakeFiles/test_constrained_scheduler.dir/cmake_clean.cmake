file(REMOVE_RECURSE
  "CMakeFiles/test_constrained_scheduler.dir/test_constrained_scheduler.cc.o"
  "CMakeFiles/test_constrained_scheduler.dir/test_constrained_scheduler.cc.o.d"
  "test_constrained_scheduler"
  "test_constrained_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constrained_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
