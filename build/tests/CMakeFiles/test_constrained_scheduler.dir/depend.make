# Empty dependencies file for test_constrained_scheduler.
# This may be replaced when dependencies are built.
