file(REMOVE_RECURSE
  "CMakeFiles/power_supply_failure.dir/power_supply_failure.cpp.o"
  "CMakeFiles/power_supply_failure.dir/power_supply_failure.cpp.o.d"
  "power_supply_failure"
  "power_supply_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_supply_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
