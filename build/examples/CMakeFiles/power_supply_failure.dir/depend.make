# Empty dependencies file for power_supply_failure.
# This may be replaced when dependencies are built.
