file(REMOVE_RECURSE
  "CMakeFiles/host_probe.dir/host_probe.cpp.o"
  "CMakeFiles/host_probe.dir/host_probe.cpp.o.d"
  "host_probe"
  "host_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
