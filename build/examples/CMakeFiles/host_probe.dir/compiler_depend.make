# Empty compiler generated dependencies file for host_probe.
# This may be replaced when dependencies are built.
