file(REMOVE_RECURSE
  "CMakeFiles/cluster_tiers.dir/cluster_tiers.cpp.o"
  "CMakeFiles/cluster_tiers.dir/cluster_tiers.cpp.o.d"
  "cluster_tiers"
  "cluster_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
