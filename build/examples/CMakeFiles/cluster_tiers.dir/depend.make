# Empty dependencies file for cluster_tiers.
# This may be replaced when dependencies are built.
