file(REMOVE_RECURSE
  "CMakeFiles/derive_profile.dir/derive_profile.cpp.o"
  "CMakeFiles/derive_profile.dir/derive_profile.cpp.o.d"
  "derive_profile"
  "derive_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derive_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
