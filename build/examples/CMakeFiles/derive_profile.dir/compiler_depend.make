# Empty compiler generated dependencies file for derive_profile.
# This may be replaced when dependencies are built.
