# Empty dependencies file for fvsst_baselines.
# This may be replaced when dependencies are built.
