file(REMOVE_RECURSE
  "CMakeFiles/fvsst_baselines.dir/governor_daemon.cc.o"
  "CMakeFiles/fvsst_baselines.dir/governor_daemon.cc.o.d"
  "CMakeFiles/fvsst_baselines.dir/policies.cc.o"
  "CMakeFiles/fvsst_baselines.dir/policies.cc.o.d"
  "libfvsst_baselines.a"
  "libfvsst_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvsst_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
