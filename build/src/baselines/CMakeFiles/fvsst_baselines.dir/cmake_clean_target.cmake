file(REMOVE_RECURSE
  "libfvsst_baselines.a"
)
