file(REMOVE_RECURSE
  "libfvsst_simkit.a"
)
