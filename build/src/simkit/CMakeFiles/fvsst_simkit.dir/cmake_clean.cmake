file(REMOVE_RECURSE
  "CMakeFiles/fvsst_simkit.dir/csv.cc.o"
  "CMakeFiles/fvsst_simkit.dir/csv.cc.o.d"
  "CMakeFiles/fvsst_simkit.dir/event_queue.cc.o"
  "CMakeFiles/fvsst_simkit.dir/event_queue.cc.o.d"
  "CMakeFiles/fvsst_simkit.dir/log.cc.o"
  "CMakeFiles/fvsst_simkit.dir/log.cc.o.d"
  "CMakeFiles/fvsst_simkit.dir/rng.cc.o"
  "CMakeFiles/fvsst_simkit.dir/rng.cc.o.d"
  "CMakeFiles/fvsst_simkit.dir/stats.cc.o"
  "CMakeFiles/fvsst_simkit.dir/stats.cc.o.d"
  "CMakeFiles/fvsst_simkit.dir/table.cc.o"
  "CMakeFiles/fvsst_simkit.dir/table.cc.o.d"
  "CMakeFiles/fvsst_simkit.dir/time_series.cc.o"
  "CMakeFiles/fvsst_simkit.dir/time_series.cc.o.d"
  "libfvsst_simkit.a"
  "libfvsst_simkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvsst_simkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
