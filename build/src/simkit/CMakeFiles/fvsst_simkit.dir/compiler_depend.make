# Empty compiler generated dependencies file for fvsst_simkit.
# This may be replaced when dependencies are built.
