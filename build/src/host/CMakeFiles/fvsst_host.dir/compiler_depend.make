# Empty compiler generated dependencies file for fvsst_host.
# This may be replaced when dependencies are built.
