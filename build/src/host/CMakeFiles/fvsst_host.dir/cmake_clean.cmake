file(REMOVE_RECURSE
  "CMakeFiles/fvsst_host.dir/cpufreq_sysfs.cc.o"
  "CMakeFiles/fvsst_host.dir/cpufreq_sysfs.cc.o.d"
  "CMakeFiles/fvsst_host.dir/host_scheduler.cc.o"
  "CMakeFiles/fvsst_host.dir/host_scheduler.cc.o.d"
  "CMakeFiles/fvsst_host.dir/latency_probe.cc.o"
  "CMakeFiles/fvsst_host.dir/latency_probe.cc.o.d"
  "CMakeFiles/fvsst_host.dir/perf_events.cc.o"
  "CMakeFiles/fvsst_host.dir/perf_events.cc.o.d"
  "CMakeFiles/fvsst_host.dir/proc_stat.cc.o"
  "CMakeFiles/fvsst_host.dir/proc_stat.cc.o.d"
  "libfvsst_host.a"
  "libfvsst_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvsst_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
