file(REMOVE_RECURSE
  "libfvsst_host.a"
)
