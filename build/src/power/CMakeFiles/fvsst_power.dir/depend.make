# Empty dependencies file for fvsst_power.
# This may be replaced when dependencies are built.
