
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/budget.cc" "src/power/CMakeFiles/fvsst_power.dir/budget.cc.o" "gcc" "src/power/CMakeFiles/fvsst_power.dir/budget.cc.o.d"
  "/root/repo/src/power/margin_controller.cc" "src/power/CMakeFiles/fvsst_power.dir/margin_controller.cc.o" "gcc" "src/power/CMakeFiles/fvsst_power.dir/margin_controller.cc.o.d"
  "/root/repo/src/power/power_model.cc" "src/power/CMakeFiles/fvsst_power.dir/power_model.cc.o" "gcc" "src/power/CMakeFiles/fvsst_power.dir/power_model.cc.o.d"
  "/root/repo/src/power/sensor.cc" "src/power/CMakeFiles/fvsst_power.dir/sensor.cc.o" "gcc" "src/power/CMakeFiles/fvsst_power.dir/sensor.cc.o.d"
  "/root/repo/src/power/supply.cc" "src/power/CMakeFiles/fvsst_power.dir/supply.cc.o" "gcc" "src/power/CMakeFiles/fvsst_power.dir/supply.cc.o.d"
  "/root/repo/src/power/thermal.cc" "src/power/CMakeFiles/fvsst_power.dir/thermal.cc.o" "gcc" "src/power/CMakeFiles/fvsst_power.dir/thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mach/CMakeFiles/fvsst_mach.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/fvsst_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
