file(REMOVE_RECURSE
  "libfvsst_power.a"
)
