file(REMOVE_RECURSE
  "CMakeFiles/fvsst_power.dir/budget.cc.o"
  "CMakeFiles/fvsst_power.dir/budget.cc.o.d"
  "CMakeFiles/fvsst_power.dir/margin_controller.cc.o"
  "CMakeFiles/fvsst_power.dir/margin_controller.cc.o.d"
  "CMakeFiles/fvsst_power.dir/power_model.cc.o"
  "CMakeFiles/fvsst_power.dir/power_model.cc.o.d"
  "CMakeFiles/fvsst_power.dir/sensor.cc.o"
  "CMakeFiles/fvsst_power.dir/sensor.cc.o.d"
  "CMakeFiles/fvsst_power.dir/supply.cc.o"
  "CMakeFiles/fvsst_power.dir/supply.cc.o.d"
  "CMakeFiles/fvsst_power.dir/thermal.cc.o"
  "CMakeFiles/fvsst_power.dir/thermal.cc.o.d"
  "libfvsst_power.a"
  "libfvsst_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvsst_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
