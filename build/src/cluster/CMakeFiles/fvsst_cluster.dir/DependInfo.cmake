
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/channel.cc" "src/cluster/CMakeFiles/fvsst_cluster.dir/channel.cc.o" "gcc" "src/cluster/CMakeFiles/fvsst_cluster.dir/channel.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/fvsst_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/fvsst_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/job_manager.cc" "src/cluster/CMakeFiles/fvsst_cluster.dir/job_manager.cc.o" "gcc" "src/cluster/CMakeFiles/fvsst_cluster.dir/job_manager.cc.o.d"
  "/root/repo/src/cluster/load_generator.cc" "src/cluster/CMakeFiles/fvsst_cluster.dir/load_generator.cc.o" "gcc" "src/cluster/CMakeFiles/fvsst_cluster.dir/load_generator.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/cluster/CMakeFiles/fvsst_cluster.dir/node.cc.o" "gcc" "src/cluster/CMakeFiles/fvsst_cluster.dir/node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/fvsst_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mach/CMakeFiles/fvsst_mach.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/fvsst_simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fvsst_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
