file(REMOVE_RECURSE
  "libfvsst_cluster.a"
)
