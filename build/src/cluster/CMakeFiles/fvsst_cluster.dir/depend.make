# Empty dependencies file for fvsst_cluster.
# This may be replaced when dependencies are built.
