file(REMOVE_RECURSE
  "CMakeFiles/fvsst_cluster.dir/channel.cc.o"
  "CMakeFiles/fvsst_cluster.dir/channel.cc.o.d"
  "CMakeFiles/fvsst_cluster.dir/cluster.cc.o"
  "CMakeFiles/fvsst_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/fvsst_cluster.dir/job_manager.cc.o"
  "CMakeFiles/fvsst_cluster.dir/job_manager.cc.o.d"
  "CMakeFiles/fvsst_cluster.dir/load_generator.cc.o"
  "CMakeFiles/fvsst_cluster.dir/load_generator.cc.o.d"
  "CMakeFiles/fvsst_cluster.dir/node.cc.o"
  "CMakeFiles/fvsst_cluster.dir/node.cc.o.d"
  "libfvsst_cluster.a"
  "libfvsst_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvsst_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
