# Empty dependencies file for fvsst_mach.
# This may be replaced when dependencies are built.
