file(REMOVE_RECURSE
  "libfvsst_mach.a"
)
