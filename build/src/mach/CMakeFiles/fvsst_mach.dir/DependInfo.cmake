
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mach/frequency_table.cc" "src/mach/CMakeFiles/fvsst_mach.dir/frequency_table.cc.o" "gcc" "src/mach/CMakeFiles/fvsst_mach.dir/frequency_table.cc.o.d"
  "/root/repo/src/mach/machine_config.cc" "src/mach/CMakeFiles/fvsst_mach.dir/machine_config.cc.o" "gcc" "src/mach/CMakeFiles/fvsst_mach.dir/machine_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/fvsst_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
