file(REMOVE_RECURSE
  "CMakeFiles/fvsst_mach.dir/frequency_table.cc.o"
  "CMakeFiles/fvsst_mach.dir/frequency_table.cc.o.d"
  "CMakeFiles/fvsst_mach.dir/machine_config.cc.o"
  "CMakeFiles/fvsst_mach.dir/machine_config.cc.o.d"
  "libfvsst_mach.a"
  "libfvsst_mach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvsst_mach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
