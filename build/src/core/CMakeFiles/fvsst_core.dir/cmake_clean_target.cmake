file(REMOVE_RECURSE
  "libfvsst_core.a"
)
