file(REMOVE_RECURSE
  "CMakeFiles/fvsst_core.dir/analysis.cc.o"
  "CMakeFiles/fvsst_core.dir/analysis.cc.o.d"
  "CMakeFiles/fvsst_core.dir/cluster_daemon.cc.o"
  "CMakeFiles/fvsst_core.dir/cluster_daemon.cc.o.d"
  "CMakeFiles/fvsst_core.dir/constrained_scheduler.cc.o"
  "CMakeFiles/fvsst_core.dir/constrained_scheduler.cc.o.d"
  "CMakeFiles/fvsst_core.dir/daemon.cc.o"
  "CMakeFiles/fvsst_core.dir/daemon.cc.o.d"
  "CMakeFiles/fvsst_core.dir/estimators.cc.o"
  "CMakeFiles/fvsst_core.dir/estimators.cc.o.d"
  "CMakeFiles/fvsst_core.dir/predictor.cc.o"
  "CMakeFiles/fvsst_core.dir/predictor.cc.o.d"
  "CMakeFiles/fvsst_core.dir/scheduler.cc.o"
  "CMakeFiles/fvsst_core.dir/scheduler.cc.o.d"
  "libfvsst_core.a"
  "libfvsst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvsst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
