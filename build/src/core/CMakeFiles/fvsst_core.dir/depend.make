# Empty dependencies file for fvsst_core.
# This may be replaced when dependencies are built.
