
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/fvsst_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/fvsst_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/cluster_daemon.cc" "src/core/CMakeFiles/fvsst_core.dir/cluster_daemon.cc.o" "gcc" "src/core/CMakeFiles/fvsst_core.dir/cluster_daemon.cc.o.d"
  "/root/repo/src/core/constrained_scheduler.cc" "src/core/CMakeFiles/fvsst_core.dir/constrained_scheduler.cc.o" "gcc" "src/core/CMakeFiles/fvsst_core.dir/constrained_scheduler.cc.o.d"
  "/root/repo/src/core/daemon.cc" "src/core/CMakeFiles/fvsst_core.dir/daemon.cc.o" "gcc" "src/core/CMakeFiles/fvsst_core.dir/daemon.cc.o.d"
  "/root/repo/src/core/estimators.cc" "src/core/CMakeFiles/fvsst_core.dir/estimators.cc.o" "gcc" "src/core/CMakeFiles/fvsst_core.dir/estimators.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/fvsst_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/fvsst_core.dir/predictor.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/fvsst_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/fvsst_core.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/fvsst_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/fvsst_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/fvsst_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mach/CMakeFiles/fvsst_mach.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/fvsst_simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fvsst_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
