file(REMOVE_RECURSE
  "CMakeFiles/fvsst_mem.dir/address_stream.cc.o"
  "CMakeFiles/fvsst_mem.dir/address_stream.cc.o.d"
  "CMakeFiles/fvsst_mem.dir/cache.cc.o"
  "CMakeFiles/fvsst_mem.dir/cache.cc.o.d"
  "CMakeFiles/fvsst_mem.dir/hierarchy.cc.o"
  "CMakeFiles/fvsst_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/fvsst_mem.dir/profile_extractor.cc.o"
  "CMakeFiles/fvsst_mem.dir/profile_extractor.cc.o.d"
  "libfvsst_mem.a"
  "libfvsst_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvsst_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
