file(REMOVE_RECURSE
  "libfvsst_mem.a"
)
