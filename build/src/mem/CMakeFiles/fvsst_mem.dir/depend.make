# Empty dependencies file for fvsst_mem.
# This may be replaced when dependencies are built.
