# Empty dependencies file for fvsst_workload.
# This may be replaced when dependencies are built.
