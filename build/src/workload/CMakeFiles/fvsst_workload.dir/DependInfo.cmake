
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_profiles.cc" "src/workload/CMakeFiles/fvsst_workload.dir/app_profiles.cc.o" "gcc" "src/workload/CMakeFiles/fvsst_workload.dir/app_profiles.cc.o.d"
  "/root/repo/src/workload/mixes.cc" "src/workload/CMakeFiles/fvsst_workload.dir/mixes.cc.o" "gcc" "src/workload/CMakeFiles/fvsst_workload.dir/mixes.cc.o.d"
  "/root/repo/src/workload/phase.cc" "src/workload/CMakeFiles/fvsst_workload.dir/phase.cc.o" "gcc" "src/workload/CMakeFiles/fvsst_workload.dir/phase.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/fvsst_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/fvsst_workload.dir/synthetic.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/fvsst_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/fvsst_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mach/CMakeFiles/fvsst_mach.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/fvsst_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
