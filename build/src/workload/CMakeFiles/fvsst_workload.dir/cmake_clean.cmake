file(REMOVE_RECURSE
  "CMakeFiles/fvsst_workload.dir/app_profiles.cc.o"
  "CMakeFiles/fvsst_workload.dir/app_profiles.cc.o.d"
  "CMakeFiles/fvsst_workload.dir/mixes.cc.o"
  "CMakeFiles/fvsst_workload.dir/mixes.cc.o.d"
  "CMakeFiles/fvsst_workload.dir/phase.cc.o"
  "CMakeFiles/fvsst_workload.dir/phase.cc.o.d"
  "CMakeFiles/fvsst_workload.dir/synthetic.cc.o"
  "CMakeFiles/fvsst_workload.dir/synthetic.cc.o.d"
  "CMakeFiles/fvsst_workload.dir/trace.cc.o"
  "CMakeFiles/fvsst_workload.dir/trace.cc.o.d"
  "libfvsst_workload.a"
  "libfvsst_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvsst_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
