file(REMOVE_RECURSE
  "libfvsst_workload.a"
)
