file(REMOVE_RECURSE
  "CMakeFiles/fvsst_cpu.dir/core.cc.o"
  "CMakeFiles/fvsst_cpu.dir/core.cc.o.d"
  "CMakeFiles/fvsst_cpu.dir/counter_trace.cc.o"
  "CMakeFiles/fvsst_cpu.dir/counter_trace.cc.o.d"
  "CMakeFiles/fvsst_cpu.dir/runner.cc.o"
  "CMakeFiles/fvsst_cpu.dir/runner.cc.o.d"
  "CMakeFiles/fvsst_cpu.dir/sampler.cc.o"
  "CMakeFiles/fvsst_cpu.dir/sampler.cc.o.d"
  "CMakeFiles/fvsst_cpu.dir/throttle.cc.o"
  "CMakeFiles/fvsst_cpu.dir/throttle.cc.o.d"
  "libfvsst_cpu.a"
  "libfvsst_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvsst_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
