file(REMOVE_RECURSE
  "libfvsst_cpu.a"
)
