
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/fvsst_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/fvsst_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/counter_trace.cc" "src/cpu/CMakeFiles/fvsst_cpu.dir/counter_trace.cc.o" "gcc" "src/cpu/CMakeFiles/fvsst_cpu.dir/counter_trace.cc.o.d"
  "/root/repo/src/cpu/runner.cc" "src/cpu/CMakeFiles/fvsst_cpu.dir/runner.cc.o" "gcc" "src/cpu/CMakeFiles/fvsst_cpu.dir/runner.cc.o.d"
  "/root/repo/src/cpu/sampler.cc" "src/cpu/CMakeFiles/fvsst_cpu.dir/sampler.cc.o" "gcc" "src/cpu/CMakeFiles/fvsst_cpu.dir/sampler.cc.o.d"
  "/root/repo/src/cpu/throttle.cc" "src/cpu/CMakeFiles/fvsst_cpu.dir/throttle.cc.o" "gcc" "src/cpu/CMakeFiles/fvsst_cpu.dir/throttle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/fvsst_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mach/CMakeFiles/fvsst_mach.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/fvsst_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
