# Empty dependencies file for fvsst_cpu.
# This may be replaced when dependencies are built.
