// derive_profile.cpp - From address stream to frequency schedule.
//
// Demonstrates the full substrate chain: synthesise a data-reference
// stream, push it through the P630's simulated L1/L2/L3 hierarchy to
// derive a workload profile (the per-level access rates the paper reads
// from hardware counters), and hand that profile to the fvsst scheduler to
// see where it lands on the frequency table.
//
//   $ ./derive_profile
#include <cstdio>
#include <memory>

#include "core/scheduler.h"
#include "mach/machine_config.h"
#include "mem/address_stream.h"
#include "mem/hierarchy.h"
#include "mem/profile_extractor.h"
#include "simkit/table.h"
#include "simkit/units.h"

using namespace fvsst;
using units::MHz;

namespace {

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

struct Scenario {
  const char* name;
  std::unique_ptr<mem::AddressStream> stream;
  double alpha;
  double accesses_per_instruction;
};

}  // namespace

int main() {
  std::vector<Scenario> scenarios;
  scenarios.push_back({"hot-loop (16KB strided)",
                       std::make_unique<mem::StridedStream>(0, 16 * KiB, 128),
                       1.7, 0.25});
  scenarios.push_back(
      {"L2-resident (512KB random)",
       std::make_unique<mem::UniformRandomStream>(0, 512 * KiB,
                                                  sim::Rng(1)),
       1.5, 0.30});
  scenarios.push_back(
      {"L3-resident (16MB random)",
       std::make_unique<mem::UniformRandomStream>(0, 16 * MiB, sim::Rng(2)),
       1.4, 0.30});
  scenarios.push_back(
      {"pointer-chase (256MB)",
       std::make_unique<mem::PointerChaseStream>(0, 256 * MiB, 128,
                                                 sim::Rng(3)),
       1.3, 0.35});

  const mach::MachineConfig machine = mach::p630();
  const core::FrequencyScheduler sched(machine.freq_table, machine.latencies,
                                       {});

  sim::TextTable out(
      "Derived profiles (P630 hierarchy: 64KB L1 / 1.44MB L2 / 32MB L3)");
  out.set_header({"reference stream", "L1", "L2", "L3", "mem",
                  "apki_mem", "granted MHz", "pred. loss"});
  for (auto& s : scenarios) {
    mem::MemoryHierarchy hierarchy = mem::MemoryHierarchy::p630();
    const mem::ExtractedProfile profile =
        mem::extract_profile(*s.stream, hierarchy, 60000, 60000);
    const workload::Phase phase = mem::to_phase(
        s.name, s.alpha, profile, s.accesses_per_instruction, 1e9);

    core::ProcView view;
    view.estimate.valid = true;
    view.estimate.alpha_inv = 1.0 / phase.alpha;
    view.estimate.mem_time_per_instr =
        workload::mem_time_per_instruction(phase, machine.latencies);
    const auto result = sched.schedule({view}, 1e9);

    out.add_row({s.name, sim::TextTable::pct(profile.l1_fraction, 0),
                 sim::TextTable::pct(profile.l2_fraction, 0),
                 sim::TextTable::pct(profile.l3_fraction, 0),
                 sim::TextTable::pct(profile.mem_fraction, 0),
                 sim::TextTable::num(phase.apki_mem, 1),
                 sim::TextTable::num(result.decisions[0].hz / MHz, 0),
                 sim::TextTable::pct(result.decisions[0].predicted_loss)});
  }
  out.print();
  std::printf(
      "The fvsst scheduler never sees the addresses — only the per-level\n"
      "rates, exactly as on real hardware.  Streams that fit in cache get\n"
      "f_max; the big pointer chase saturates and is scheduled far lower,\n"
      "at a predicted loss below epsilon = 4%%.\n");
  return 0;
}
