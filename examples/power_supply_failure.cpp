// power_supply_failure.cpp - The paper's motivating scenario (Sec. 2) as a
// full timeline: a 746 W system on two 480 W supplies loses one supply at
// T0 and must come under the surviving capacity before the cascade window
// DT expires; later the supply is repaired and performance returns.
//
//   $ ./power_supply_failure
//
// The run is executed twice: once with fvsst managing frequencies and once
// with no power management, to show the cascade that fvsst prevents.
#include <cstdio>

#include "cluster/cluster.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "power/sensor.h"
#include "power/supply.h"
#include "simkit/table.h"
#include "simkit/time_series.h"
#include "simkit/units.h"
#include "workload/mixes.h"

using namespace fvsst;
using units::GHz;
using units::MHz;
using units::ms;

namespace {

constexpr double kCascadeToleranceS = 0.100;  // the supply's DT

struct Outcome {
  bool cascaded = false;
  double compliance_latency_s = -1.0;
  sim::TimeSeries power{"system_W"};
};

Outcome run_scenario(bool with_fvsst) {
  sim::Simulation sim;
  sim::Rng rng(11);
  const mach::MachineConfig machine = mach::p630_motivating_example();
  cluster::Cluster system =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);

  // The Section 5 worked example's per-processor job mixes.
  const auto mixes = workload::section5_example_mixes(false);
  for (std::size_t c = 0; c < 4; ++c) {
    system.node(0).core(c).add_workload(mixes[c]);
  }

  power::PowerDomain domain({{"ps0", 480.0, true}, {"ps1", 480.0, true}});
  power::PowerBudget budget(domain.available_capacity_w() -
                            machine.non_cpu_power_w);
  domain.on_capacity_change([&](double capacity_w) {
    budget.set_limit_w(std::max(0.0, capacity_w - machine.non_cpu_power_w));
  });

  auto total_power = [&] {
    return system.cpu_power_w() + machine.non_cpu_power_w;
  };
  power::CascadeMonitor monitor(sim, domain, total_power,
                                kCascadeToleranceS, 1 * ms);

  std::unique_ptr<core::FvsstDaemon> daemon;
  if (with_fvsst) {
    daemon = std::make_unique<core::FvsstDaemon>(
        sim, system, machine.freq_table, budget, core::DaemonConfig{});
  }

  Outcome out;
  out.power = sim::TimeSeries(with_fvsst ? "with_fvsst_W" : "unmanaged_W");
  const double t_fail = 2.0, t_repair = 5.0;
  sim.schedule_at(t_fail, [&] { domain.fail_supply(0); });
  sim.schedule_at(t_repair, [&] { domain.restore_supply(0); });
  sim.schedule_every(5 * ms, [&] {
    out.power.add(sim.now(), total_power());
    if (out.compliance_latency_s < 0.0 && sim.now() > t_fail &&
        total_power() <= domain.available_capacity_w()) {
      out.compliance_latency_s = sim.now() - t_fail;
    }
  });
  sim.run_for(7.0);
  out.cascaded = monitor.cascaded();
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Motivating scenario (paper Sec. 2): 746 W system, two 480 W\n"
      "supplies, supply 0 fails at t=2.0 s (cascade tolerance DT = %.0f ms),\n"
      "repaired at t=5.0 s.\n\n",
      kCascadeToleranceS * 1e3);

  const Outcome with = run_scenario(true);
  const Outcome without = run_scenario(false);

  std::printf("System power over time:\n%s\n",
              sim::render_ascii_chart({&with.power, &without.power}, 72, 12)
                  .c_str());
  std::printf("  [*] with fvsst   [o] without power management\n\n");

  sim::TextTable out("Outcome");
  out.set_header({"configuration", "cascade?", "time to comply"});
  out.add_row({"with fvsst", with.cascaded ? "CASCADE" : "no",
               with.compliance_latency_s >= 0
                   ? sim::TextTable::num(with.compliance_latency_s * 1e3, 1) +
                         " ms"
                   : "never"});
  out.add_row({"no management", without.cascaded ? "CASCADE" : "no",
               without.compliance_latency_s >= 0
                   ? sim::TextTable::num(
                         without.compliance_latency_s * 1e3, 1) + " ms"
                   : "never"});
  out.print();

  // Wall-power view: PSU conversion losses on top of the DC load.
  const power::SupplyEfficiency eta;
  const double dc = 480.0;  // post-failure DC ceiling on one supply
  std::printf(
      "\nWall draw at the 480 W DC ceiling on the surviving supply:\n"
      "  %.0f W AC (efficiency %.0f%% at %.0f%% load)\n",
      eta.wall_power_w(dc, 480.0), eta.at(dc / 480.0) * 100.0,
      dc / 480.0 * 100.0);
  std::printf(
      "\nfvsst's budget trigger reschedules immediately on the capacity\n"
      "drop, landing the system under 480 W well inside DT; without it the\n"
      "overload persists and the second supply fails too.\n");
  return with.cascaded ? 1 : 0;
}
