// batch_cluster.cpp - A batch cluster under power management: jobs arrive,
// the job manager places them, fvsst schedules frequencies underneath,
// and a supply failure mid-run forces the whole stack to adapt.
//
//   $ ./batch_cluster
#include <cstdio>

#include "cluster/cluster.h"
#include "cluster/job_manager.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "power/sensor.h"
#include "simkit/table.h"
#include "simkit/units.h"
#include "workload/app_profiles.h"
#include "workload/synthetic.h"

using namespace fvsst;
using units::MHz;

int main() {
  sim::Simulation sim;
  sim::Rng rng(2026);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, 2, rng);

  power::PowerBudget budget(8 * 140.0);
  core::FvsstDaemon daemon(sim, cluster, machine.freq_table, budget,
                           core::DaemonConfig{});
  power::PowerSensor sensor(sim, [&] { return cluster.cpu_power_w(); },
                            0.01);

  cluster::JobManager jm(sim, cluster, cluster::PlacementPolicy::kLeastLoaded);
  // A morning's batch queue: the paper's applications plus synthetic fill.
  jm.submit_at(0.2, workload::gzip());
  jm.submit_at(0.5, workload::mcf());
  jm.submit_at(0.9, workload::health());
  jm.submit_at(1.4, workload::gap());
  sim::Rng mix(7);
  for (int i = 0; i < 6; ++i) {
    jm.submit_at(mix.uniform(0.0, 4.0),
                 workload::make_uniform_synthetic(mix.uniform(20.0, 100.0),
                                                  2e9, false));
  }

  // A power supply fails at t = 10 s and is repaired at t = 40 s.
  sim.schedule_at(10.0, [&] {
    std::printf("t=10s  supply failure: CPU budget 1120 W -> 500 W\n");
    budget.set_limit_w(500.0);
  });
  sim.schedule_at(40.0, [&] {
    std::printf("t=40s  supply repaired: budget restored\n");
    budget.set_limit_w(8 * 140.0);
  });

  constexpr std::size_t kExpectedJobs = 10;
  while ((jm.submitted() < kExpectedJobs ||
          jm.completed() < jm.submitted()) &&
         sim.now() < 300.0) {
    sim.run_for(1.0);
  }
  const double done_at = sim.now();

  std::printf("\nAll %zu jobs finished by t=%.0fs\n", jm.submitted(),
              done_at);
  sim::TextTable out("Batch results");
  out.set_header({"job", "placed on", "turnaround"});
  for (std::size_t j = 0; j < jm.submitted(); ++j) {
    const auto& record = jm.job(j);
    out.add_row({record.name,
                 "node" + std::to_string(record.placed_on.node) + ".cpu" +
                     std::to_string(record.placed_on.cpu),
                 sim::TextTable::num(record.finished_at - record.submitted_at,
                                     1) + " s"});
  }
  out.print();
  std::printf("mean cluster CPU power over the run: %.0f W "
              "(peak capacity %.0f W)\n",
              sensor.mean_power_w(), 8 * 140.0);
  std::printf("compliance now: %.0f W <= %.0f W\n", cluster.cpu_power_w(),
              budget.effective_limit_w());
  return 0;
}
