// capture_replay.cpp - Counter-trace capture and replay.
//
// Capture a run's performance-counter log (the data the paper's prototype
// wrote for post-processing), save it to a file, load it back, convert it
// into a replayable workload, and schedule the replay under a power budget
// — the "record in production, study in the simulator" loop.
//
//   $ ./capture_replay [trace_file]
#include <cstdio>

#include "cluster/cluster.h"
#include "core/daemon.h"
#include "cpu/counter_trace.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/table.h"
#include "simkit/units.h"
#include "workload/app_profiles.h"

using namespace fvsst;
using units::MHz;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/fvsst_capture.ctrace";

  // --- Capture: mcf running free on one core, recorded at t = 50 ms.
  sim::Simulation sim;
  sim::Rng rng(3);
  mach::MachineConfig machine = mach::p630();
  machine.num_cpus = 1;
  cluster::Cluster capture_rig =
      cluster::Cluster::homogeneous(sim, machine, 1, rng);
  capture_rig.core({0, 0}).add_workload(workload::mcf());
  cpu::CounterTraceRecorder recorder(sim, capture_rig.core({0, 0}), 0.05,
                                     "mcf-capture");
  sim.run_for(20.0);
  cpu::save_counter_trace(path, recorder.trace());
  std::printf("captured %zu intervals of mcf -> %s\n",
              recorder.trace().intervals.size(), path.c_str());

  // --- Replay: load the file, rebuild a workload, schedule it capped.
  const cpu::CounterTrace loaded = cpu::load_counter_trace(path);
  const workload::WorkloadSpec replay =
      cpu::counter_trace_to_workload(loaded, machine.latencies);
  std::printf("replay workload: %zu phases, %.3g instructions\n",
              replay.phases.size(), replay.total_instructions());

  sim::Simulation sim2;
  sim::Rng rng2(4);
  cluster::Cluster replay_rig =
      cluster::Cluster::homogeneous(sim2, machine, 1, rng2);
  replay_rig.core({0, 0}).add_workload(replay);
  power::PowerBudget budget(75.0);  // the paper's 750 MHz cap
  core::FvsstDaemon daemon(sim2, replay_rig, machine.freq_table, budget,
                           core::DaemonConfig{});
  sim2.run_for(20.0);

  sim::TextTable out("Replay under a 75 W budget");
  out.set_header({"metric", "value"});
  out.add_row({"granted frequency now",
               sim::TextTable::num(
                   replay_rig.core({0, 0}).frequency_hz() / MHz, 0) +
                   " MHz"});
  out.add_row({"mean CPU power",
               sim::TextTable::num(daemon.cpu_mean_power_w(0), 1) + " W"});
  out.add_row({"instructions replayed",
               sim::TextTable::num(
                   replay_rig.core({0, 0}).instructions_retired() / 1e9, 2) +
                   "e9"});
  out.print();
  std::printf(
      "The scheduler sees the replay exactly as it saw the original mcf:\n"
      "same counter rates, same saturation, same frequency choices — from\n"
      "a text file instead of a live application.\n");
  return 0;
}
