// cluster_tiers.cpp - fvsst on a three-tier cluster (web / app / db).
//
// The paper argues clusters assigned by tier exhibit strong, persistent
// workload diversity, which frequency scheduling can exploit: under a
// global budget cut, memory-bound database nodes give up frequency cheaply
// while CPU-bound application nodes keep theirs.  This example runs the
// distributed ClusterDaemon (node agents + global scheduler over a
// latency-modelled network) through a budget cut and prints the per-tier
// frequency picture, then compares against uniform scaling.
//
//   $ ./cluster_tiers
#include <cstdio>
#include <map>

#include "baselines/policies.h"
#include "cluster/cluster.h"
#include "core/cluster_daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "simkit/table.h"
#include "simkit/units.h"
#include "workload/mixes.h"

using namespace fvsst;
using units::MHz;
using units::us;

namespace {

const char* tier_of(std::size_t node) {
  switch (node % 4) {
    case 0:
    case 1: return "web";
    case 2: return "app";
    default: return "db";
  }
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 8;
  sim::Simulation sim;
  sim::Rng rng(2025);
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster cluster =
      cluster::Cluster::homogeneous(sim, machine, kNodes, rng);

  sim::Rng wl_rng(7);
  const auto assignment =
      workload::tiered_cluster_assignment(kNodes, 4, wl_rng);
  for (std::size_t n = 0; n < kNodes; ++n) {
    for (std::size_t c = 0; c < 4; ++c) {
      cluster.core({n, c}).add_workload(assignment[n][c]);
    }
  }

  const double full = kNodes * 4 * 140.0;
  power::PowerBudget budget(full);
  core::ClusterDaemonConfig cfg;
  cfg.channel_latency_s = 200 * us;
  core::ClusterDaemon daemon(sim, cluster, machine.freq_table, budget, cfg);

  sim.run_for(2.0);
  std::printf("t=2.0s  cluster settled, budget %.0f W, CPU power %.0f W\n",
              full, cluster.cpu_power_w());

  // A site-wide power cap request arrives: 45% of peak.
  const double cap = full * 0.45;
  sim.schedule_at(2.5, [&] { budget.set_limit_w(cap); });
  sim.run_for(2.0);

  std::printf("t=4.5s  after cap to %.0f W: CPU power %.0f W (%s)\n\n", cap,
              cluster.cpu_power_w(),
              cluster.cpu_power_w() <= cap ? "compliant" : "OVER");

  // Per-tier mean frequency.
  std::map<std::string, std::pair<double, int>> tier_mhz;
  for (std::size_t n = 0; n < kNodes; ++n) {
    for (std::size_t c = 0; c < 4; ++c) {
      auto& acc = tier_mhz[tier_of(n)];
      acc.first += cluster.core({n, c}).frequency_hz() / MHz;
      acc.second += 1;
    }
  }
  sim::TextTable tiers("Mean granted frequency per tier under the cap");
  tiers.set_header({"tier", "mean MHz"});
  for (const auto& [tier, acc] : tier_mhz) {
    tiers.add_row({tier, sim::TextTable::num(acc.first / acc.second, 0)});
  }
  tiers.print();

  // Compare against uniform scaling at the same cap (static snapshot).
  std::vector<baselines::ProcSample> samples;
  std::vector<workload::Phase> truth;
  std::vector<bool> idle;
  for (std::size_t n = 0; n < kNodes; ++n) {
    for (std::size_t c = 0; c < 4; ++c) {
      const auto& phase = assignment[n][c].phases[0];
      truth.push_back(phase);
      idle.push_back(false);
      baselines::ProcSample s;
      s.estimate = baselines::oracle_estimate(phase, machine.latencies);
      samples.push_back(s);
    }
  }
  const baselines::FvsstPolicy fvsst;
  const baselines::UniformScalingPolicy uniform;
  const auto ev_f = baselines::evaluate(
      fvsst.decide(samples, machine.freq_table, cap), truth, idle,
      machine.latencies, machine.freq_table, cap);
  const auto ev_u = baselines::evaluate(
      uniform.decide(samples, machine.freq_table, cap), truth, idle,
      machine.latencies, machine.freq_table, cap);
  std::printf(
      "\nAggregate throughput at the %.0f W cap:\n"
      "  fvsst (non-uniform): %.3g instr/s\n"
      "  uniform scaling:     %.3g instr/s  (fvsst is %.1f%% faster)\n",
      cap, ev_f.total_performance, ev_u.total_performance,
      (ev_f.total_performance / ev_u.total_performance - 1.0) * 100.0);
  return 0;
}
