// quickstart.cpp - Minimal end-to-end fvsst example.
//
// Builds the paper's experimental platform (IBM P630: 4x Power4+ at 1 GHz),
// runs the synthetic benchmark on CPU 3 with the other CPUs in their hot
// idle loop (the paper's single-benchmark setup), starts the fvsst daemon,
// and then drops the power budget mid-run as if a power supply had failed.
//
//   $ ./quickstart
//
// Watch for: CPU 3 settling at its saturation frequency, the idle CPUs
// pinned at the 250 MHz floor, and the budget drop forcing a cluster-wide
// downshift within one scheduling interval.
#include <cstdio>

#include "cluster/cluster.h"
#include "core/daemon.h"
#include "mach/machine_config.h"
#include "power/budget.h"
#include "power/sensor.h"
#include "simkit/event_queue.h"
#include "simkit/rng.h"
#include "simkit/table.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

using namespace fvsst;
using units::GHz;
using units::MHz;
using units::ms;

int main() {
  sim::Simulation sim;
  sim::Rng rng(42);

  // The paper's machine: 4 CPUs, the 16-point frequency table of Table 1.
  const mach::MachineConfig machine = mach::p630();
  cluster::Cluster system =
      cluster::Cluster::homogeneous(sim, machine, /*count=*/1, rng);

  // Synthetic benchmark on CPU 3: alternating 100%-CPU and 20%-CPU phases.
  workload::SyntheticParams params;
  params.phase1 = {/*cpu_intensity_pct=*/100.0, /*instructions=*/4e8};
  params.phase2 = {/*cpu_intensity_pct=*/20.0, /*instructions=*/1e8};
  system.node(0).core(3).add_workload(workload::make_synthetic(params));

  // Unconstrained budget to start: all four CPUs at full power fit.
  power::PowerBudget budget(4 * 140.0);

  // The fvsst daemon: t = 10 ms, T = 100 ms, epsilon = 4%.
  core::DaemonConfig cfg;
  cfg.t_sample_s = 10 * ms;
  cfg.schedule_every_n_samples = 10;
  core::FvsstDaemon daemon(sim, system, machine.freq_table, budget, cfg);

  power::PowerSensor sensor(sim, [&] { return system.cpu_power_w(); },
                            10 * ms);

  sim.run_for(2.0);
  std::printf("t=2.0s  (unconstrained, budget %.0fW)\n", budget.limit_w());
  sim::TextTable before("Per-CPU state");
  before.set_header({"cpu", "granted", "desired", "pred.loss", "idle"});
  for (std::size_t c = 0; c < 4; ++c) {
    const auto& d = daemon.last_result().decisions[c];
    before.add_row({"cpu" + std::to_string(c),
                    sim::TextTable::num(d.hz / MHz, 0) + " MHz",
                    sim::TextTable::num(d.desired_hz / MHz, 0) + " MHz",
                    sim::TextTable::pct(d.predicted_loss),
                    system.node(0).core(c).idle() ? "yes" : "no"});
  }
  before.print();
  std::printf("cluster CPU power: %.1f W (mean %.1f W)\n\n",
              system.cpu_power_w(), sensor.mean_power_w());

  // A power supply fails: only 294 W remains for the CPUs.
  sim.schedule_at(2.5, [&] {
    std::printf("t=2.5s  POWER SUPPLY FAILURE -> CPU budget 294 W\n");
    budget.set_limit_w(294.0);
  });

  sim.run_for(2.0);
  std::printf("\nt=4.0s  (constrained, budget %.0fW)\n", budget.limit_w());
  sim::TextTable after("Per-CPU state");
  after.set_header({"cpu", "granted", "desired", "pred.loss", "idle"});
  for (std::size_t c = 0; c < 4; ++c) {
    const auto& d = daemon.last_result().decisions[c];
    after.add_row({"cpu" + std::to_string(c),
                   sim::TextTable::num(d.hz / MHz, 0) + " MHz",
                   sim::TextTable::num(d.desired_hz / MHz, 0) + " MHz",
                   sim::TextTable::pct(d.predicted_loss),
                   system.node(0).core(c).idle() ? "yes" : "no"});
  }
  after.print();
  std::printf("cluster CPU power: %.1f W <= budget %.1f W : %s\n",
              system.cpu_power_w(), budget.effective_limit_w(),
              system.cpu_power_w() <= budget.effective_limit_w() ? "OK"
                                                                 : "VIOLATED");
  std::printf("schedules run: %zu, benchmark passes: %zu\n",
              daemon.schedules_run(),
              system.node(0).core(3).passes_completed());
  return 0;
}
