// phase_explorer.cpp - Interactive-style exploration of performance
// saturation: sweep the synthetic benchmark's CPU intensity and print, for
// each setting, the saturation curve, the epsilon-constrained frequency,
// and the power saved by running there instead of f_max.
//
//   $ ./phase_explorer [intensity_pct ...]
//
// With no arguments a standard sweep is shown.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/predictor.h"
#include "core/scheduler.h"
#include "mach/machine_config.h"
#include "simkit/table.h"
#include "simkit/time_series.h"
#include "simkit/units.h"
#include "workload/synthetic.h"

using namespace fvsst;
using units::MHz;

int main(int argc, char** argv) {
  std::vector<double> intensities;
  for (int i = 1; i < argc; ++i) {
    const double v = std::atof(argv[i]);
    if (v >= 0.0 && v <= 100.0) intensities.push_back(v);
  }
  if (intensities.empty()) intensities = {100, 80, 60, 40, 20, 5};

  const mach::MachineConfig machine = mach::p630();
  const core::FrequencyScheduler sched(machine.freq_table, machine.latencies,
                                       {});

  sim::TextTable out("Synthetic benchmark: saturation and scheduling");
  out.set_header({"intensity", "IPC@1GHz", "mem-CPI@1GHz", "f_ideal MHz",
                  "granted MHz", "power W", "saved vs f_max"});
  for (double c : intensities) {
    const auto phase = workload::synthetic_phase("p", c, 1e9);
    core::WorkloadEstimate est;
    est.valid = true;
    est.alpha_inv = 1.0 / phase.alpha;
    est.mem_time_per_instr =
        workload::mem_time_per_instruction(phase, machine.latencies);

    const double f_ideal =
        core::ideal_frequency(est, machine.freq_table.max_hz(), 0.04);
    const auto result =
        sched.schedule({core::ProcView{est, false}}, 1e9);
    const auto& d = result.decisions[0];
    out.add_row({sim::TextTable::num(c, 0) + "%",
                 sim::TextTable::num(
                     workload::true_ipc(phase, machine.latencies, 1e9), 3),
                 sim::TextTable::num(est.mem_time_per_instr * 1e9, 2),
                 sim::TextTable::num(f_ideal / MHz, 0),
                 sim::TextTable::num(d.hz / MHz, 0),
                 sim::TextTable::num(d.watts, 0),
                 sim::TextTable::num(140.0 - d.watts, 0) + " W"});
  }
  out.print();
  std::printf(
      "f_ideal is the continuous ideal frequency (paper Sec. 5); granted is\n"
      "the discrete two-pass choice — the next table setting at or above\n"
      "f_ideal.  Power saved comes at a predicted loss below epsilon = 4%%.\n");
  return 0;
}
