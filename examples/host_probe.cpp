// host_probe.cpp - Probe the real host's DVFS and performance-counter
// capabilities through the src/host backends (the sysfs/perf_event
// equivalents of the paper's kernel support).
//
//   $ ./host_probe
//
// Everything degrades gracefully: in a container without cpufreq or
// perf_event access the probe reports what is missing and exits 0.
#include <cstdio>

#include "host/cpufreq_sysfs.h"
#include "host/latency_probe.h"
#include "host/perf_events.h"
#include "host/proc_stat.h"
#include "simkit/table.h"

using namespace fvsst;

int main() {
  std::printf("== memory-hierarchy latencies (dependent pointer chase) ==\n");
  // The paper's Sec. 7.1 methodology on this machine: per-access time vs
  // working-set size, then distilled predictor constants.
  const auto curve = host::latency_curve(16ull << 10, 64ull << 20, 1u << 17);
  sim::TextTable lat_table("Chase latency vs working set");
  lat_table.set_header({"working set", "ns/access"});
  for (const auto& p : curve) {
    const double kib = static_cast<double>(p.working_set_bytes) / 1024.0;
    lat_table.add_row({kib >= 1024.0
                           ? sim::TextTable::num(kib / 1024.0, 0) + " MiB"
                           : sim::TextTable::num(kib, 0) + " KiB",
                       sim::TextTable::num(p.ns_per_access, 2)});
  }
  lat_table.print();
  const auto lat = host::latencies_from_curve(curve);
  std::printf("distilled predictor constants: T_l2=%.1fns T_l3=%.1fns "
              "T_mem=%.1fns\n(feed these into HostScheduler::Options::"
              "latencies)\n\n",
              lat.t_l2 * 1e9, lat.t_l3 * 1e9, lat.t_mem * 1e9);

  std::printf("== cpufreq (sysfs) ==\n");
  const host::CpufreqSysfs sysfs;
  if (!sysfs.available()) {
    std::printf(
        "no cpufreq support visible at %s — typical inside containers or\n"
        "on hosts without frequency scaling.  The simulator backends\n"
        "(src/cpu) provide the same interfaces for experiments.\n",
        sysfs.root().c_str());
  } else {
    sim::TextTable out("Per-CPU cpufreq state");
    out.set_header({"cpu", "governor", "cur MHz", "min MHz", "max MHz",
                    "settings"});
    for (int cpu : sysfs.cpus()) {
      const auto info = sysfs.info(cpu);
      if (!info) continue;
      out.add_row({std::to_string(cpu), info->governor,
                   sim::TextTable::num(info->current_hz / 1e6, 0),
                   sim::TextTable::num(info->min_hz / 1e6, 0),
                   sim::TextTable::num(info->max_hz / 1e6, 0),
                   std::to_string(info->available_hz.size())});
    }
    out.print();
    std::printf(
        "(A real deployment would set the userspace governor and drive\n"
        "scaling_setspeed from the fvsst scheduler's decisions.)\n");
  }

  std::printf("\n== utilisation (/proc/stat) ==\n");
  const auto stat = host::read_proc_stat();
  if (stat.empty()) {
    std::printf("/proc/stat not readable on this host.\n");
  } else {
    std::printf("%zu cpu rows; aggregate busy share since boot: %.1f%%\n",
                stat.size(),
                100.0 * static_cast<double>(stat.front().busy()) /
                    static_cast<double>(stat.front().total()));
    std::printf(
        "(two snapshots of these rows give the live utilisation signal\n"
        "the DBS-style governors consume — and exactly what they miss:\n"
        "memory stalls count as busy.)\n");
  }

  std::printf("\n== hardware counters (perf_event_open) ==\n");
  host::PerfEventGroup group;
  if (!group.valid()) {
    std::printf(
        "perf_event_open denied or unavailable — run with\n"
        "CAP_PERFMON / perf_event_paranoid <= 2 on a host with a PMU.\n");
    return 0;
  }
  group.start();
  // A small, memory-touching busy loop to count.
  double acc = 0.0;
  std::vector<double> buffer(1 << 20, 1.5);
  for (std::size_t pass = 0; pass < 8; ++pass) {
    for (std::size_t i = 0; i < buffer.size(); i += 64) acc += buffer[i];
  }
  volatile double sink = acc;  // keep the loop alive
  (void)sink;
  group.stop();
  if (const auto counters = group.read()) {
    std::printf("instructions: %.3e\ncycles:       %.3e\nIPC:          %.3f\n"
                "LLC misses:   %.3e\n",
                counters->instructions, counters->cycles, counters->ipc(),
                counters->mem_accesses);
    std::printf(
        "These are exactly the inputs the fvsst predictor consumes; on a\n"
        "DVFS-capable host the scheduler could drive real frequencies from\n"
        "them (paper Sec. 6's kernel support, via modern interfaces).\n");
  }
  return 0;
}
