// daemon.h - The fvsst daemon: the paper's prototype as a simulated process.
//
// The prototype (paper Sec. 6) is "a privileged user-level daemon ...
// single-threaded" that collects performance-counter data every dispatch
// interval t, and "after some number of collection cycles or when given a
// signal with a new frequency limit, executes the scheduling calculation
// and throttles the processors accordingly".  FvsstDaemon mirrors that:
//
//   - samples every core's counters each `t_sample_s` (paper: 10 ms);
//   - runs the FrequencyScheduler every `schedule_every_n_samples` samples
//     (paper: T = 10 * t = 100 ms);
//   - reacts immediately to power-budget changes (the supply-failure
//     trigger), rescheduling from the most recent estimates;
//   - polls each core's idle state as a stand-in for the firmware/OS idle
//     signal the paper calls for;
//   - charges its own execution cost to the processor hosting the daemon
//     (dead cycles), so benches can measure fvsst's overhead (Fig. 4);
//   - keeps the scheduling and performance-counter logs the paper's
//     post-processing relies on: per-CPU granted/desired frequency traces,
//     predicted and measured IPC, and the running IPC-deviation statistics
//     behind Table 2.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "core/scheduler.h"
#include "power/budget.h"
#include "simkit/event_queue.h"
#include "simkit/stats.h"
#include "simkit/time_series.h"

namespace fvsst::core {

/// How the daemon learns that a processor is idle (paper Sec. 5).
enum class IdleSignal {
  /// Poll the OS/firmware idle state (the explicit indicator the paper
  /// calls for on hot-idle processors like the Power4+).
  kOsSignal,
  /// Infer idleness from the halted-cycle counter: on processors that
  /// idle by halting, "there is no need for the idle indicator".
  kHaltedCounter,
  /// No idle knowledge at all (the paper's prototype, which implemented
  /// none of the idle-detection techniques).
  kNone,
};

/// Daemon configuration.
struct DaemonConfig {
  double t_sample_s = 0.010;            ///< Counter sampling period t.
  int schedule_every_n_samples = 10;    ///< T = n * t.
  FrequencyScheduler::Options scheduler;
  IdleSignal idle_signal = IdleSignal::kOsSignal;
  /// Halted-cycle fraction above which a processor counts as idle when
  /// idle_signal == kHaltedCounter.
  double halted_idle_threshold = 0.90;
  /// EWMA weight of the *previous* estimate in [0, 1): 0 uses each
  /// interval's fresh estimate alone (the paper's prototype); larger
  /// values damp counter noise at the cost of slower phase response —
  /// the stability the paper otherwise buys with a large T.
  double estimate_smoothing = 0.0;
  /// Daemon cost of reading one CPU's counters once (charged per sample).
  double overhead_per_cpu_sample_s = 2e-6;
  /// Daemon cost of one scheduling calculation (charged per schedule).
  double overhead_per_schedule_s = 100e-6;
  /// Flattened index of the processor hosting the daemon process.
  std::size_t daemon_cpu = 0;
  /// Paper Sec. 9's improved design: "multiple threads, two per processor"
  /// — one collector and one actuator per CPU.  When true, per-CPU sampling
  /// cost is charged to each CPU itself (local counter reads) instead of
  /// funnelling everything through the daemon CPU.
  bool per_cpu_threads = false;
  /// Record per-CPU traces (disable for long bulk runs).
  bool record_traces = true;
};

/// The frequency/voltage scheduling daemon.
class FvsstDaemon {
 public:
  /// Starts sampling immediately.  The daemon registers itself on
  /// `budget.on_change` and reschedules whenever the limit moves.
  FvsstDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
              const mach::FrequencyTable& table, power::PowerBudget& budget,
              DaemonConfig config);
  ~FvsstDaemon();

  FvsstDaemon(const FvsstDaemon&) = delete;
  FvsstDaemon& operator=(const FvsstDaemon&) = delete;

  std::size_t cpu_count() const { return procs_.size(); }

  /// Scheduling calculations executed so far (timer- and trigger-driven).
  std::size_t schedules_run() const { return schedules_run_; }

  /// Result of the most recent scheduling calculation.
  const ScheduleResult& last_result() const { return last_result_; }

  /// Most recent workload estimate per flattened CPU index.
  const WorkloadEstimate& estimate(std::size_t cpu) const {
    return states_.at(cpu).estimate;
  }

  // --- Logs (valid when record_traces) ---------------------------------
  /// Granted frequency over time (Hz).
  const sim::TimeSeries& granted_freq_trace(std::size_t cpu) const;
  /// Epsilon-constrained ("desired") frequency over time (Hz).
  const sim::TimeSeries& desired_freq_trace(std::size_t cpu) const;
  /// IPC the predictor promised for each interval.
  const sim::TimeSeries& predicted_ipc_trace(std::size_t cpu) const;
  /// IPC actually measured over each interval.
  const sim::TimeSeries& measured_ipc_trace(std::size_t cpu) const;
  /// |predicted - measured| IPC per interval.
  const sim::TimeSeries& deviation_trace(std::size_t cpu) const;

  /// Running |predicted - measured| statistics (Table 2's "IPC deviation").
  const sim::RunningStat& deviation_stat(std::size_t cpu) const {
    return states_.at(cpu).deviation;
  }

  /// Energy charged to one CPU so far (peak-power convention: table watts
  /// of the granted operating point integrated over time) — the quantity
  /// behind the paper's Table 3 energy rows.
  double cpu_energy_j(std::size_t cpu) const;

  /// Time-weighted mean power of one CPU since the daemon started.
  double cpu_mean_power_w(std::size_t cpu) const;

  const FrequencyScheduler& scheduler() const { return scheduler_; }

 private:
  struct CpuState {
    cpu::PerfCounters last_snapshot;     ///< At the previous t boundary.
    cpu::PerfCounters aggregate;         ///< Sum of deltas since last schedule.
    double aggregate_started_at = 0.0;
    WorkloadEstimate estimate;           ///< From the last completed interval.
    double halted_fraction = 0.0;        ///< Of the last completed interval.
    bool has_prediction = false;
    double predicted_ipc = 0.0;          ///< Promise made at the last schedule.
    sim::RunningStat deviation;
    sim::TimeSeries granted{"granted_hz"};
    sim::TimeSeries desired{"desired_hz"};
    sim::TimeSeries pred_ipc{"predicted_ipc"};
    sim::TimeSeries meas_ipc{"measured_ipc"};
    sim::TimeSeries dev{"ipc_deviation"};
    sim::TimeWeightedStat power_acc;  ///< Table watts of the granted point.
  };

  void on_sample_tick();
  void run_schedule(bool triggered_by_budget);
  std::vector<ProcView> build_views();
  void apply(const ScheduleResult& result);

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  power::PowerBudget& budget_;
  DaemonConfig config_;
  FrequencyScheduler scheduler_;
  std::vector<cluster::ProcAddress> procs_;
  /// Per-processor operating-point tables (each node's own machine), so
  /// heterogeneous clusters are scheduled within their real options.
  std::vector<const mach::FrequencyTable*> proc_tables_;
  std::vector<CpuState> states_;
  sim::EventId tick_event_ = 0;
  int samples_since_schedule_ = 0;
  std::size_t schedules_run_ = 0;
  ScheduleResult last_result_;
};

}  // namespace fvsst::core
