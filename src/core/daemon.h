// daemon.h - The fvsst daemon: the paper's prototype as a simulated process.
//
// The prototype (paper Sec. 6) is "a privileged user-level daemon ...
// single-threaded" that collects performance-counter data every dispatch
// interval t, and "after some number of collection cycles or when given a
// signal with a new frequency limit, executes the scheduling calculation
// and throttles the processors accordingly".  FvsstDaemon is a thin facade
// over the shared ControlLoop engine wired with the simulator stages:
//
//   SimCoreSampler -> IpcEstimator -> SchedulerPolicyStage -> SimCoreActuator
//
// The facade owns what is specific to the prototype: the sampling timer
// (paper: t = 10 ms, T = 10 * t), the power-budget trigger (the
// supply-failure signal), and the modelled daemon cost charged to the
// processor hosting the daemon (dead cycles, paper Fig. 4).  Everything
// else — prediction scoring, per-CPU power accounting, the scheduling and
// performance-counter logs the paper's post-processing relies on — lives in
// the engine and its telemetry registry.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "core/control_loop.h"
#include "core/scheduler.h"
#include "power/budget.h"
#include "simkit/event_queue.h"
#include "simkit/stats.h"
#include "simkit/telemetry.h"
#include "simkit/time_series.h"

namespace fvsst::core {

/// Daemon configuration.
struct DaemonConfig {
  double t_sample_s = 0.010;            ///< Counter sampling period t.
  int schedule_every_n_samples = 10;    ///< T = n * t.
  FrequencyScheduler::Options scheduler;
  IdleSignal idle_signal = IdleSignal::kOsSignal;
  /// Halted-cycle fraction above which a processor counts as idle when
  /// idle_signal == kHaltedCounter.
  double halted_idle_threshold = 0.90;
  /// EWMA weight of the *previous* estimate in [0, 1): 0 uses each
  /// interval's fresh estimate alone (the paper's prototype); larger
  /// values damp counter noise at the cost of slower phase response —
  /// the stability the paper otherwise buys with a large T.
  double estimate_smoothing = 0.0;
  /// Daemon cost of reading one CPU's counters once (charged per sample).
  double overhead_per_cpu_sample_s = 2e-6;
  /// Daemon cost of one scheduling calculation (charged per schedule).
  double overhead_per_schedule_s = 100e-6;
  /// Flattened index of the processor hosting the daemon process.
  std::size_t daemon_cpu = 0;
  /// Paper Sec. 9's improved design: "multiple threads, two per processor"
  /// — one collector and one actuator per CPU.  When true, per-CPU sampling
  /// cost is charged to each CPU itself (local counter reads) instead of
  /// funnelling everything through the daemon CPU.
  bool per_cpu_threads = false;
  /// Record per-CPU traces (disable for long bulk runs).
  bool record_traces = true;
  /// Decision journal (not owned; must outlive the daemon).  The daemon
  /// contributes run_meta and budget_change events; the engine emits the
  /// per-cycle record.  Null disables journalling.
  sim::EventLog* journal = nullptr;
  /// Injected faults (not owned; must outlive the daemon).  Actuation
  /// kinds (reject / sticky / delay) apply to the daemon's frequency
  /// writes; the engine answers rejects with retry-with-backoff escalating
  /// to an f_min fail-safe.  Null or empty: no injection, bit-for-bit
  /// identical behaviour.
  const sim::FaultPlan* fault_plan = nullptr;
  /// kEvent wakes the daemon only at scheduling instants T = n*t and lets
  /// the cores subdivide the skipped span (Core::set_sampling_grid) —
  /// byte-identical decisions and journals at ~1/n the event count.  The
  /// daemon silently falls back to kTick when a non-empty fault plan is
  /// installed: actuation retries are tick-counted and must see every tick.
  AdvanceMode advance_mode = AdvanceMode::kTick;
  /// Online monitor (not owned; must outlive the daemon).  The daemon
  /// feeds `over_budget_w` (measured power above the effective limit) and
  /// `journal_dropped` at the end of every cycle and evaluates the rule
  /// set there — a scheduling instant shared by both advance modes, so
  /// monitored journals stay byte-identical across kTick and kEvent.
  /// Observation only: null leaves the run bit-for-bit unchanged.
  sim::monitor::Monitor* monitor = nullptr;
  /// Replaces the default SchedulerPolicyStage when set: the daemon calls
  /// the factory with its table, latencies and scheduler options and runs
  /// the returned stage instead (fvsst_sim --policy wires the comparator
  /// policies through here).  Null keeps the paper's scheduler.
  PolicyStageFactory policy_factory;
};

/// The frequency/voltage scheduling daemon.
class FvsstDaemon {
 public:
  /// Starts sampling immediately.  The daemon registers itself on
  /// `budget.on_change` and reschedules whenever the limit moves.
  FvsstDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
              const mach::FrequencyTable& table, power::PowerBudget& budget,
              DaemonConfig config);
  ~FvsstDaemon();

  FvsstDaemon(const FvsstDaemon&) = delete;
  FvsstDaemon& operator=(const FvsstDaemon&) = delete;

  std::size_t cpu_count() const { return loop_->cpu_count(); }

  /// Scheduling calculations executed so far (timer- and trigger-driven).
  std::size_t schedules_run() const { return loop_->cycles_run(); }

  /// Result of the most recent scheduling calculation.
  const ScheduleResult& last_result() const { return loop_->last_result(); }

  /// Most recent workload estimate per flattened CPU index.
  const WorkloadEstimate& estimate(std::size_t cpu) const {
    return loop_->views().at(cpu).estimate;
  }

  // --- Logs (valid when record_traces) ---------------------------------
  /// Granted frequency over time (Hz).
  const sim::TimeSeries& granted_freq_trace(std::size_t cpu) const;
  /// Epsilon-constrained ("desired") frequency over time (Hz).
  const sim::TimeSeries& desired_freq_trace(std::size_t cpu) const;
  /// IPC the predictor promised for each interval.
  const sim::TimeSeries& predicted_ipc_trace(std::size_t cpu) const;
  /// IPC actually measured over each interval.
  const sim::TimeSeries& measured_ipc_trace(std::size_t cpu) const;
  /// |predicted - measured| IPC per interval.
  const sim::TimeSeries& deviation_trace(std::size_t cpu) const;

  /// Running |predicted - measured| statistics (Table 2's "IPC deviation").
  const sim::RunningStat& deviation_stat(std::size_t cpu) const {
    return loop_->deviation_stat(cpu);
  }

  /// Energy charged to one CPU so far (peak-power convention: table watts
  /// of the granted operating point integrated over time) — the quantity
  /// behind the paper's Table 3 energy rows.
  double cpu_energy_j(std::size_t cpu) const;

  /// Time-weighted mean power of one CPU since the daemon started.
  double cpu_mean_power_w(std::size_t cpu) const;

  /// The paper scheduler behind the default policy stage.  Throws
  /// std::logic_error when a DaemonConfig::policy_factory replaced the
  /// stage (there is no FrequencyScheduler to expose then).
  const FrequencyScheduler& scheduler() const;

  /// The underlying engine (per-stage timings, latest views).
  const ControlLoop& loop() const { return *loop_; }

  /// Registry holding the per-CPU traces ("cpu<i>/granted_hz", ...) and the
  /// engine's stage-timing counters ("loop/policy_s", ...).
  sim::MetricRegistry& telemetry() { return telemetry_; }
  const sim::MetricRegistry& telemetry() const { return telemetry_; }

  /// True when running event-driven (advance_mode == kEvent and no fault
  /// plan forced the tick fallback).
  bool event_driven() const { return event_driven_; }

 private:
  void on_sample_tick();
  void on_event_wake();
  void run_cycle(CycleTrigger trigger);
  /// Schedules the next event-mode wake at lattice index next_cycle_k_.
  void schedule_wake();

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  power::PowerBudget& budget_;
  DaemonConfig config_;
  sim::MetricRegistry telemetry_;
  std::vector<cluster::ProcAddress> procs_;
  /// Per-processor operating-point tables (each node's own machine), so
  /// heterogeneous clusters are scheduled within their real options.
  std::vector<const mach::FrequencyTable*> proc_tables_;
  SchedulerPolicyStage* policy_ = nullptr;  ///< Owned by loop_.
  std::unique_ptr<ControlLoop> loop_;
  sim::EventId tick_event_ = 0;
  // Event-driven mode: grid_origin_ is the FIRST tick instant (ctor time
  // + t), and tick number m fires at grid_origin_ + (m-1) * t_sample_s in
  // that exact floating-point form (the expression the event queue uses to
  // re-arm periodic timers), so wakes compare equal to the ticks they
  // replace.
  bool event_driven_ = false;
  double grid_origin_ = 0.0;
  std::uint64_t next_cycle_k_ = 0;  ///< Tick number (1-based) of next cycle.
  /// Ticks already folded into loop/sample_count (telemetry parity).
  std::uint64_t ticks_accounted_ = 0;
  sim::EventId wake_event_ = 0;
  // Monitor input channels (interned once in the ctor; unused when the
  // config carries no monitor).
  sim::monitor::InputId mon_over_budget_;
  sim::monitor::InputId mon_journal_dropped_;
  std::size_t mon_last_dropped_ = 0;  ///< Last pushed journal drop count.
};

}  // namespace fvsst::core
