// coordinator.h - The cluster's global-scheduler role, made survivable.
//
// PR 3 could crash node agents but never the coordinator — the one
// remaining single point of failure in the paper's cluster design.  This
// module factors the global-scheduler role out of ClusterDaemon into a
// Coordinator object so the daemon can host two of them (a primary and a
// shadowing standby) and so the role itself is crash-safe:
//
//   * Leadership and epochs.  Exactly one coordinator should lead; every
//     settings/heartbeat message it sends is stamped with its epoch
//     (cluster::Epoch).  A standby that stops hearing leader heartbeats
//     elects itself after a deterministic, seeded timeout and announces a
//     strictly higher epoch; nodes fence off anything older, so a deposed
//     leader can never over-grant power (see cluster/election.h).
//
//   * Crash-safe state.  Every round appends a grant record to the
//     coordinator's StableStore (its private "disk"), and a checksummed
//     snapshot of (epoch, round, budget, last grants, mailbox freshness)
//     is saved every few rounds, truncating the record log.  A restarted
//     coordinator loses all volatile state (mailbox, engine) and recovers
//     snapshot + replay, then waits one period T for fresh summaries
//     before scheduling again — so it resumes from its pre-crash grants
//     instead of cold-starting into a power spike.
//
//   * Shadowing.  A passive standby consumes the same summary traffic as
//     the leader (its mailbox stays fresh) and records the grants the
//     leader replicates over heartbeats, so takeover needs no warm-up.
//
// The Coordinator owns the mailbox, the ControlLoop engine and the
// silent-node accounting; the ClusterDaemon keeps owning the node agents,
// the channels, and all node-side state (epoch fences, the node-local
// fail-safe, response-latency accounting).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/election.h"
#include "core/control_loop.h"
#include "core/scheduler.h"

namespace fvsst::core {

/// Coordinator high-availability knobs.  All timing knobs are in units of
/// the global period T; the defaults keep the whole feature off, which is
/// bit-for-bit identical to the single-coordinator daemon.
struct FailoverConfig {
  /// Build a standby coordinator that shadows summaries and elects itself
  /// when leader heartbeats stop.
  bool standby = false;
  /// Leader heartbeat period, in T.
  double heartbeat_factor = 0.5;
  /// Leader silence before a standby starts an election, in T.
  double takeover_factor = 3.0;
  /// Maximum deterministic election jitter on top of the timeout, in T.
  double takeover_jitter_factor = 0.5;
  /// A node that has seen no coordinator settings/heartbeat for this many
  /// T autonomously drops to the frequency that keeps budget/N per node
  /// (0: disabled).  Honours the global budget through total coordinator
  /// loss — the budget signal itself is a hardware broadcast (paper
  /// Sec. 2), so nodes know the post-failure limit without a coordinator.
  double node_failsafe_factor = 0.0;
  /// Snapshot the coordinator state every this many rounds.
  int snapshot_every_rounds = 4;
  /// Seed for the deterministic election jitter.
  std::uint64_t election_seed = 0x5eed;

  /// Any behaviour-changing part of the protocol on?
  bool enabled() const { return standby || node_failsafe_factor > 0.0; }
};

/// One scheduling round's durable record: what was granted, under which
/// budget, in which epoch.
struct GrantRecord {
  double t = 0.0;
  cluster::Epoch epoch = 0;
  double budget_w = 0.0;
  std::uint64_t round = 0;
  std::vector<double> grants_hz;  ///< Per flattened CPU.
};

/// The coordinator state worth surviving a crash: enough to resume
/// scheduling from the pre-crash operating point instead of cold-starting.
struct CoordinatorSnapshot {
  cluster::Epoch epoch = 0;
  std::uint64_t round = 0;
  double taken_at = 0.0;
  double budget_w = 0.0;
  std::vector<double> grants_hz;        ///< Last grants, per flattened CPU.
  std::vector<double> last_summary_at;  ///< Mailbox freshness, per node.

  /// Serialises to a self-checking blob (FNV-1a checksum over the body).
  std::string encode() const;
  /// Decodes what encode() wrote; nullopt on length/checksum mismatch —
  /// a torn or corrupted snapshot is discarded, never half-applied.
  static std::optional<CoordinatorSnapshot> decode(const std::string& blob);
};

/// A coordinator's private durable store: the latest checksummed snapshot
/// plus every grant record appended since (a write-ahead log the snapshot
/// truncates).  Recovery = decode snapshot, then replay the log in order.
class StableStore {
 public:
  /// Saves `snap` and truncates the grant log (records are folded in).
  void save_snapshot(const CoordinatorSnapshot& snap);

  void append_grant(GrantRecord record);

  struct Recovery {
    bool had_snapshot = false;   ///< A snapshot blob existed.
    bool checksum_ok = false;    ///< ... and decoded cleanly.
    std::size_t replayed = 0;    ///< Grant records applied on top.
    CoordinatorSnapshot state;   ///< The recovered state (default-empty on
                                 ///< a cold start with nothing stored).
  };

  /// Rebuilds the freshest consistent state: snapshot (if it verifies)
  /// plus the grant log replayed in append order.  A corrupt snapshot is
  /// discarded and recovery proceeds from the log alone.
  Recovery recover() const;

  std::size_t grant_log_size() const { return log_.size(); }
  bool has_snapshot() const { return !snapshot_blob_.empty(); }

  /// Test hook: flip one byte of the stored snapshot blob, as a torn or
  /// bit-rotted write would.
  void corrupt_snapshot_for_test(std::size_t byte_index);

 private:
  std::string snapshot_blob_;
  std::vector<GrantRecord> log_;
};

/// The global-scheduler role: mailbox + engine + silent-node accounting +
/// leadership/epoch state + stable store.  Passive objects — the daemon
/// owns all timers and channels and drives every entry point.
class Coordinator {
 public:
  struct Wiring {
    int id = 0;                    ///< 0 = primary, 1 = standby.
    bool initially_leader = false;
    sim::Simulation* sim = nullptr;
    sim::EventLog* journal = nullptr;     ///< Not owned; may be null.
    /// Emit protocol events (epoch_change / snapshot) into the journal.
    /// Off in the default single-coordinator mode so journals stay
    /// byte-identical to the pre-failover daemon.
    bool journal_protocol = false;
    const sim::FaultPlan* faults = nullptr;  ///< Not owned; may be null.
    FailoverConfig failover;
    double period_s = 0.1;               ///< The global period T.
    double silent_node_factor = 3.0;
    /// Per node: (first flattened CPU, CPU count).
    std::vector<std::pair<std::size_t, std::size_t>> node_spans;
    /// Engine construction parameters (the loop is rebuilt on restart —
    /// a crash loses RAM, so the engine must not survive it either).
    ControlLoopConfig loop_config;
    const mach::FrequencyTable* default_table = nullptr;
    const mach::MemoryLatencies* latencies = nullptr;
    FrequencyScheduler::Options scheduler;
    /// Replaces the default SchedulerPolicyStage when set; called again on
    /// every crash restart (the engine is rebuilt, so the stage is too).
    PolicyStageFactory policy_factory;
    std::vector<const mach::FrequencyTable*> proc_tables;
    sim::MetricRegistry* telemetry = nullptr;  ///< Null for the standby.
    /// Fans a round's settings out over the network (the daemon owns the
    /// channels).  Arguments: this coordinator, the result, and whether a
    /// budget change triggered the round.
    std::function<void(const Coordinator&, const ScheduleResult&, bool)>
        fan_out;
  };

  explicit Coordinator(Wiring wiring);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  int id() const { return wiring_.id; }
  bool leader() const { return leader_; }
  bool crashed() const { return crashed_; }
  cluster::Epoch epoch() const { return epoch_; }
  std::uint64_t rounds() const { return rounds_; }
  const ControlLoop& loop() const { return *loop_; }
  const std::vector<double>& last_grants() const { return last_grants_; }
  std::size_t stale_node_count() const;
  StableStore& store() { return store_; }
  const StableStore& store() const { return store_; }
  std::size_t restarts() const { return restarts_; }

  /// Applies kCoordinatorCrash transitions from the fault plan (crash on
  /// window entry: journal + mark down; restart on window exit: wipe
  /// volatile state, recover from the store, wait one T for fresh
  /// summaries).  Call before delivering any stimulus.  Returns true when
  /// the coordinator is up.
  bool refresh_fault_state(double now);

  /// Is this coordinator currently network-partitioned (kPartition)?
  bool partitioned(double now) const;

  /// A node's summary arrived (leaders and shadowing standbys alike).
  void on_summary(std::size_t node, std::size_t first_cpu,
                  const std::vector<ProcView>& summary, double now);

  /// The peer coordinator's heartbeat arrived: reset the failure
  /// detector, track the highest epoch seen, shadow the replicated
  /// grants; a leader hearing a *higher* epoch steps down (it was
  /// deposed while unreachable).
  void on_peer_heartbeat(cluster::Epoch epoch,
                         const std::vector<double>& grants, double budget_w,
                         double now);

  /// One scheduling round.  No-ops unless this coordinator is the live
  /// leader and past its post-recovery warm-up; otherwise refreshes
  /// silent-node accounting, runs the engine, fans out (via the wiring
  /// callback) and appends/snapshots durable state.
  void run_round(double now, double budget_w, CycleTrigger trigger);

  /// Leader side of the heartbeat protocol; the daemon sends when due.
  bool heartbeat_due(double now) const;
  void heartbeat_sent(double now) { last_heartbeat_sent_ = now; }

  /// Standby side: elects itself once leader silence exceeds the timeout
  /// plus its deterministic jitter.  Returns true when it just took over
  /// (the daemon then heartbeats the new epoch and runs an immediate
  /// round).
  bool maybe_take_over(double now);

 private:
  class SummarySampler;
  class MailboxEstimator;
  class SettingsActuator;

  void build_loop();
  void crash(double now);
  void restart(double now);
  void refresh_silent_nodes(double now);
  void journal_epoch(double now, const char* reason);

  Wiring wiring_;
  StableStore store_;
  cluster::FailureDetector detector_;
  cluster::Epoch epoch_ = 0;
  cluster::Epoch max_heard_ = 0;
  bool leader_ = false;
  bool crashed_ = false;
  std::uint64_t rounds_ = 0;
  std::size_t restarts_ = 0;
  double warm_until_ = 0.0;  ///< Post-recovery: no rounds before this.
  double last_heartbeat_sent_ = -1.0;
  double shadow_budget_w_ = 0.0;  ///< Budget replicated by the leader.
  std::vector<ProcView> mailbox_;
  std::vector<double> last_summary_at_;  ///< Per node.
  std::vector<char> node_silent_;        ///< Per node: pinned at f_max.
  std::vector<double> last_grants_;      ///< Per flattened CPU.
  std::unique_ptr<ControlLoop> loop_;
};

}  // namespace fvsst::core
