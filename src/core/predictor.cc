#include "core/predictor.h"

#include <algorithm>

namespace fvsst::core {
namespace {

// Below this many instructions an interval is treated as noise.
constexpr double kMinInstructions = 1e3;

}  // namespace

IpcPredictor::IpcPredictor(const mach::MemoryLatencies& nominal_latencies)
    : nominal_(nominal_latencies) {}

WorkloadEstimate IpcPredictor::estimate(const CounterObservation& obs) const {
  WorkloadEstimate est;
  const auto& d = obs.delta;
  if (d.instructions < kMinInstructions || d.cycles <= 0.0 ||
      obs.measured_hz <= 0.0) {
    return est;  // invalid
  }
  const double cpi_observed = d.cycles / d.instructions;
  const double mem_time = (d.l2_accesses * nominal_.t_l2 +
                           d.l3_accesses * nominal_.t_l3 +
                           d.mem_accesses * nominal_.t_mem) /
                          d.instructions;
  // 1/alpha is whatever CPI is left after removing the memory component at
  // the measurement frequency.  Noise or latency mis-modelling can push the
  // residue negative; clamp to a small positive floor (IPC <= 10).
  est.mem_time_per_instr = mem_time;
  est.alpha_inv = std::max(cpi_observed - mem_time * obs.measured_hz, 0.1);
  est.valid = true;
  return est;
}

double IpcPredictor::predict_ipc(const WorkloadEstimate& est,
                                 double hz) const {
  const double cpi = est.alpha_inv + est.mem_time_per_instr * hz;
  return cpi > 0.0 ? 1.0 / cpi : 0.0;
}

double IpcPredictor::predict_performance(const WorkloadEstimate& est,
                                         double hz) const {
  return predict_ipc(est, hz) * hz;
}

double perf_loss(double perf_ref, double perf_f) {
  if (perf_ref <= 0.0) return 0.0;
  return (perf_ref - perf_f) / perf_ref;
}

double ideal_frequency(const WorkloadEstimate& est, double f_max,
                       double epsilon) {
  if (!est.valid) return f_max;
  // Target performance: within epsilon of performance at f_max.
  const double perf_max = f_max / (est.alpha_inv + est.mem_time_per_instr *
                                                       f_max);
  const double target = perf_max * (1.0 - epsilon);
  // Solve Perf(f) = f / (a + M f) = target  =>  f = target*a/(1 - target*M).
  const double denom = 1.0 - target * est.mem_time_per_instr;
  if (denom <= 0.0) return f_max;  // demand unreachable below f_max
  const double f = target * est.alpha_inv / denom;
  return std::clamp(f, 0.0, f_max);
}

}  // namespace fvsst::core
