#include "core/scheduler.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace fvsst::core {

std::string_view pass1_reason_name(Pass1Reason reason) {
  switch (reason) {
    case Pass1Reason::kUnspecified: return "unspecified";
    case Pass1Reason::kIdle: return "idle";
    case Pass1Reason::kNoEstimate: return "no_estimate";
    case Pass1Reason::kEpsilon: return "epsilon";
    case Pass1Reason::kFmax: return "fmax";
  }
  return "?";
}

FrequencyScheduler::FrequencyScheduler(mach::FrequencyTable table,
                                       mach::MemoryLatencies nominal_latencies,
                                       Options options)
    : table_(std::move(table)),
      predictor_(nominal_latencies),
      options_(options) {
  if (table_.empty()) {
    throw std::invalid_argument("FrequencyScheduler: empty frequency table");
  }
  if (options_.epsilon <= 0.0 || options_.epsilon >= 1.0) {
    throw std::invalid_argument("FrequencyScheduler: epsilon out of (0,1)");
  }
}

double FrequencyScheduler::loss_at(const WorkloadEstimate& est, double hz,
                                   double f_max) const {
  const double perf_max = predictor_.predict_performance(est, f_max);
  const double perf_f = predictor_.predict_performance(est, hz);
  return perf_loss(perf_max, perf_f);
}

double FrequencyScheduler::predicted_loss(const WorkloadEstimate& est,
                                          double hz) const {
  return loss_at(est, hz, table_.max_hz());
}

std::size_t FrequencyScheduler::pass1_index(const ProcView& proc,
                                            const mach::FrequencyTable& table,
                                            Pass1Reason* reason) const {
  const auto classified = [&](std::size_t i, Pass1Reason r) {
    if (reason) *reason = r;
    return i;
  };
  if (proc.idle && options_.idle_detection) {
    // Idle: ignore the predictor, go to the minimum point.
    return classified(0, Pass1Reason::kIdle);
  }
  if (!proc.estimate.valid) {
    // No usable counter data yet (first interval): run at f_max; the next
    // interval will produce an estimate.
    return classified(table.size() - 1, Pass1Reason::kNoEstimate);
  }
  for (std::size_t i = 0; i + 1 < table.size(); ++i) {
    if (loss_at(proc.estimate, table[i].hz, table.max_hz()) <
        options_.epsilon) {
      return classified(i, Pass1Reason::kEpsilon);
    }
  }
  // Loss at f_max itself is 0 < epsilon; no lower setting qualified.
  return classified(table.size() - 1, Pass1Reason::kFmax);
}

void FrequencyScheduler::record_downgrade(std::size_t proc,
                                          std::size_t from_idx,
                                          const std::vector<ProcView>& procs,
                                          const Tables& tables,
                                          ScheduleResult& result) const {
  const auto& table = *tables[proc];
  DowngradeStep step;
  step.proc = proc;
  step.from_hz = table[from_idx].hz;
  step.to_hz = table[from_idx - 1].hz;
  step.watts_saved = table[from_idx].watts - table[from_idx - 1].watts;
  const bool no_loss =
      (procs[proc].idle && options_.idle_detection) ||
      !procs[proc].estimate.valid;
  if (!no_loss) {
    const double before =
        loss_at(procs[proc].estimate, step.from_hz, table.max_hz());
    step.loss_after =
        loss_at(procs[proc].estimate, step.to_hz, table.max_hz());
    step.marginal_loss = std::max(step.loss_after - before, 0.0);
  }
  result.downgrades.push_back(step);
}

void FrequencyScheduler::pass2_power_fit(std::vector<std::size_t>& idx,
                                         const std::vector<ProcView>& procs,
                                         const Tables& tables,
                                         double power_budget_w,
                                         ScheduleResult& result) const {
  auto total_power = [&] {
    double w = 0.0;
    for (std::size_t p = 0; p < idx.size(); ++p) {
      w += (*tables[p])[idx[p]].watts;
    }
    return w;
  };

  double power = total_power();
  // kPowerSlackW: `power` is maintained incrementally across downgrades,
  // so at a budget that equals a reachable configuration exactly the
  // running total can sit an ulp above it; a strict comparison would then
  // take a spurious extra downgrade (or report infeasible at the floor).
  while (power > power_budget_w + mach::kPowerSlackW) {
    // Pick the processor whose next-lower setting costs the least
    // performance ("select n,p with smallest PerfLoss(f_max, f_less)").
    std::size_t best_proc = procs.size();
    double best_loss = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < procs.size(); ++p) {
      if (idx[p] == 0) continue;  // already at the floor
      const auto& table = *tables[p];
      const double candidate_hz = table[idx[p] - 1].hz;
      // Idle or estimate-less processors lose nothing by slowing down.
      const double loss =
          (procs[p].idle && options_.idle_detection) || !procs[p].estimate.valid
              ? 0.0
              : loss_at(procs[p].estimate, candidate_hz, table.max_hz());
      if (loss < best_loss) {
        best_loss = loss;
        best_proc = p;
      }
    }
    if (best_proc == procs.size()) {
      // Everyone is at the minimum point and the budget is still exceeded:
      // frequency scaling alone cannot satisfy it.
      result.feasible = false;
      break;
    }
    if (options_.explain) {
      record_downgrade(best_proc, idx[best_proc], procs, tables, result);
    }
    power -= (*tables[best_proc])[idx[best_proc]].watts;
    --idx[best_proc];
    power += (*tables[best_proc])[idx[best_proc]].watts;
    ++result.downgrade_steps;
  }
}

ScheduleResult FrequencyScheduler::finalize(
    const std::vector<ProcView>& procs, const Tables& tables,
    const std::vector<std::size_t>& desired_idx,
    std::vector<std::size_t> granted_idx,
    const std::vector<Pass1Reason>& reasons, ScheduleResult partial) const {
  ScheduleResult result = std::move(partial);
  result.explained = options_.explain;
  result.decisions.resize(procs.size());
  result.total_cpu_power_w = 0.0;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    auto& d = result.decisions[p];
    const auto& table = *tables[p];
    const auto& granted = table[granted_idx[p]];
    const bool no_loss =
        (procs[p].idle && options_.idle_detection) || !procs[p].estimate.valid;
    d.desired_hz = table[desired_idx[p]].hz;
    d.hz = granted.hz;
    d.volts = granted.volts;  // pass 3: minimum-voltage table look-up
    d.watts = granted.watts;
    d.predicted_loss =
        no_loss ? 0.0 : loss_at(procs[p].estimate, granted.hz, table.max_hz());
    d.pass1_reason = reasons[p];
    if (options_.explain) {
      d.pass1_loss =
          no_loss ? 0.0
                  : loss_at(procs[p].estimate, d.desired_hz, table.max_hz());
      if (desired_idx[p] > 0 && !no_loss) {
        d.rejected_loss = loss_at(procs[p].estimate,
                                  table[desired_idx[p] - 1].hz,
                                  table.max_hz());
      }
    }
    result.total_cpu_power_w += granted.watts;
  }
  return result;
}

ScheduleResult FrequencyScheduler::schedule_two_pass(
    const std::vector<ProcView>& procs, const Tables& tables,
    double power_budget_w) const {
  ScheduleResult result;
  std::vector<std::size_t> idx(procs.size());
  std::vector<Pass1Reason> reasons(procs.size());
  for (std::size_t p = 0; p < procs.size(); ++p) {
    idx[p] = pass1_index(procs[p], *tables[p], &reasons[p]);
  }
  const std::vector<std::size_t> desired = idx;
  pass2_power_fit(idx, procs, tables, power_budget_w, result);
  return finalize(procs, tables, desired, std::move(idx), reasons,
                  std::move(result));
}

ScheduleResult FrequencyScheduler::schedule_single_pass(
    const std::vector<ProcView>& procs, const Tables& tables,
    double power_budget_w) const {
  // Single sweep with a priority queue of candidate downgrades.  Decisions
  // are identical to the two-pass procedure (verified by test): the greedy
  // order of downgrades is the same, only the bookkeeping differs.
  ScheduleResult result;
  std::vector<std::size_t> idx(procs.size());
  std::vector<Pass1Reason> reasons(procs.size());
  double power = 0.0;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    idx[p] = pass1_index(procs[p], *tables[p], &reasons[p]);
    power += (*tables[p])[idx[p]].watts;
  }
  const std::vector<std::size_t> desired = idx;

  struct Candidate {
    double loss;
    std::size_t proc;
    std::size_t to_index;
  };
  struct Worse {
    bool operator()(const Candidate& a, const Candidate& b) const {
      if (a.loss != b.loss) return a.loss > b.loss;
      return a.proc > b.proc;  // deterministic tie-break: lowest proc first
    }
  };
  std::priority_queue<Candidate, std::vector<Candidate>, Worse> queue;
  auto push_candidate = [&](std::size_t p) {
    if (idx[p] == 0) return;
    const auto& table = *tables[p];
    const double hz = table[idx[p] - 1].hz;
    const double loss =
        (procs[p].idle && options_.idle_detection) || !procs[p].estimate.valid
            ? 0.0
            : loss_at(procs[p].estimate, hz, table.max_hz());
    queue.push({loss, p, idx[p] - 1});
  };
  for (std::size_t p = 0; p < procs.size(); ++p) push_candidate(p);

  while (power > power_budget_w + mach::kPowerSlackW) {
    // Skip stale candidates (a proc may have been downgraded since).
    bool applied = false;
    while (!queue.empty()) {
      const Candidate c = queue.top();
      queue.pop();
      if (c.to_index + 1 != idx[c.proc]) continue;  // stale entry
      if (options_.explain) {
        record_downgrade(c.proc, idx[c.proc], procs, tables, result);
      }
      power -= (*tables[c.proc])[idx[c.proc]].watts;
      idx[c.proc] = c.to_index;
      power += (*tables[c.proc])[idx[c.proc]].watts;
      ++result.downgrade_steps;
      push_candidate(c.proc);
      applied = true;
      break;
    }
    if (!applied) {
      result.feasible = false;
      break;
    }
  }
  return finalize(procs, tables, desired, std::move(idx), reasons,
                  std::move(result));
}

ScheduleResult FrequencyScheduler::schedule_continuous(
    const std::vector<ProcView>& procs, const Tables& tables,
    double power_budget_w) const {
  ScheduleResult result;
  std::vector<std::size_t> idx(procs.size());
  std::vector<Pass1Reason> reasons(procs.size());
  for (std::size_t p = 0; p < procs.size(); ++p) {
    const auto& proc = procs[p];
    const auto& table = *tables[p];
    if (proc.idle && options_.idle_detection) {
      idx[p] = 0;
      reasons[p] = Pass1Reason::kIdle;
    } else if (!proc.estimate.valid) {
      idx[p] = table.size() - 1;
      reasons[p] = Pass1Reason::kNoEstimate;
    } else {
      const double f_ideal =
          ideal_frequency(proc.estimate, table.max_hz(), options_.epsilon);
      // Snap upward: any grid point below f_ideal loses more than epsilon.
      const auto& point = table.ceil_point(f_ideal);
      idx[p] = *table.index_of(point.hz);
      reasons[p] = idx[p] + 1 == table.size() ? Pass1Reason::kFmax
                                              : Pass1Reason::kEpsilon;
    }
  }
  const std::vector<std::size_t> desired = idx;
  pass2_power_fit(idx, procs, tables, power_budget_w, result);
  return finalize(procs, tables, desired, std::move(idx), reasons,
                  std::move(result));
}

ScheduleResult FrequencyScheduler::schedule_watts_per_loss(
    const std::vector<ProcView>& procs, const Tables& tables,
    double power_budget_w) const {
  ScheduleResult result;
  std::vector<std::size_t> idx(procs.size());
  std::vector<Pass1Reason> reasons(procs.size());
  double power = 0.0;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    idx[p] = pass1_index(procs[p], *tables[p], &reasons[p]);
    power += (*tables[p])[idx[p]].watts;
  }
  const std::vector<std::size_t> desired = idx;

  while (power > power_budget_w + mach::kPowerSlackW) {
    // Pick the downgrade with the most watts saved per unit of *extra*
    // predicted loss (the marginal cost, not the absolute loss).
    std::size_t best_proc = procs.size();
    double best_score = -1.0;
    for (std::size_t p = 0; p < procs.size(); ++p) {
      if (idx[p] == 0) continue;
      const auto& table = *tables[p];
      const double watts_saved =
          table[idx[p]].watts - table[idx[p] - 1].watts;
      double marginal_loss = 0.0;
      if (!((procs[p].idle && options_.idle_detection) ||
            !procs[p].estimate.valid)) {
        const double loss_now =
            loss_at(procs[p].estimate, table[idx[p]].hz, table.max_hz());
        const double loss_next = loss_at(procs[p].estimate,
                                         table[idx[p] - 1].hz,
                                         table.max_hz());
        marginal_loss = std::max(loss_next - loss_now, 0.0);
      }
      const double score = watts_saved / (marginal_loss + 1e-6);
      if (score > best_score) {
        best_score = score;
        best_proc = p;
      }
    }
    if (best_proc == procs.size()) {
      result.feasible = false;
      break;
    }
    if (options_.explain) {
      record_downgrade(best_proc, idx[best_proc], procs, tables, result);
    }
    power -= (*tables[best_proc])[idx[best_proc]].watts;
    --idx[best_proc];
    power += (*tables[best_proc])[idx[best_proc]].watts;
    ++result.downgrade_steps;
  }
  return finalize(procs, tables, desired, std::move(idx), reasons,
                  std::move(result));
}

ScheduleResult FrequencyScheduler::schedule(
    const std::vector<ProcView>& procs,
    const std::vector<const mach::FrequencyTable*>& tables,
    double power_budget_w) const {
  if (tables.size() != procs.size()) {
    throw std::invalid_argument(
        "FrequencyScheduler: tables must parallel procs");
  }
  for (const auto* t : tables) {
    if (t == nullptr || t->empty()) {
      throw std::invalid_argument("FrequencyScheduler: null/empty table");
    }
  }
  switch (options_.variant) {
    case SchedulerVariant::kTwoPass:
      return schedule_two_pass(procs, tables, power_budget_w);
    case SchedulerVariant::kSinglePass:
      return schedule_single_pass(procs, tables, power_budget_w);
    case SchedulerVariant::kContinuous:
      return schedule_continuous(procs, tables, power_budget_w);
    case SchedulerVariant::kWattsPerLoss:
      return schedule_watts_per_loss(procs, tables, power_budget_w);
  }
  throw std::logic_error("FrequencyScheduler: unknown variant");
}

ScheduleResult FrequencyScheduler::schedule(const std::vector<ProcView>& procs,
                                            double power_budget_w) const {
  const Tables tables(procs.size(), &table_);
  return schedule(procs, tables, power_budget_w);
}

}  // namespace fvsst::core
