// predictor.h - The paper's performance model (Sec. 4.3).
//
// The model splits cycles per instruction into a frequency-independent part
// (1/alpha: ideal IPC with infinite L1 and no stalls) and a
// frequency-dependent part (memory stall time per instruction, which costs
// more cycles the faster the core runs):
//
//   CPI(f) = 1/alpha + (N_L2*T_L2 + N_L3*T_L3 + N_mem*T_mem)/Instr * f
//
// Given counters measured at frequency g, the predictor recovers
// 1/alpha = CPI(g) - M*g using the machine's *nominal* latency constants
// T_i ("T_i is pre-determined for the particular processor by measurement
// of memory latencies and is assumed constant for simplicity" — a stated
// source of error), then projects IPC and performance at any candidate
// frequency.  Performance is Perf(f) = IPC(f) * f, and
// PerfLoss(f_ref, f) = (Perf(f_ref) - Perf(f)) / Perf(f_ref).
#pragma once

#include "cpu/perf_counters.h"
#include "mach/machine_config.h"

namespace fvsst::core {

/// Counter aggregate plus the frequency it was measured at.
struct CounterObservation {
  cpu::PerfCounters delta;  ///< Interval delta, not a monotonic snapshot.
  double measured_hz = 0.0; ///< Frequency the core ran at during the interval.
};

/// Frequency-independent summary the scheduler carries per processor.
struct WorkloadEstimate {
  double alpha_inv = 0.0;          ///< Estimated 1/alpha (ideal CPI).
  double mem_time_per_instr = 0.0; ///< Estimated M in seconds.
  bool valid = false;              ///< False when the interval was unusable.
};

/// Predicts IPC/performance at candidate frequencies from counter data.
class IpcPredictor {
 public:
  explicit IpcPredictor(const mach::MemoryLatencies& nominal_latencies);

  /// Distils an observation into the two-parameter workload estimate.
  /// Returns an invalid estimate when the interval has (near-)zero
  /// instructions or cycles.
  WorkloadEstimate estimate(const CounterObservation& obs) const;

  /// Predicted IPC at frequency `hz`.
  double predict_ipc(const WorkloadEstimate& est, double hz) const;

  /// Predicted performance (instructions/second) at `hz`.
  double predict_performance(const WorkloadEstimate& est, double hz) const;

  const mach::MemoryLatencies& latencies() const { return nominal_; }

 private:
  mach::MemoryLatencies nominal_;
};

/// The paper's PerfLoss: fractional performance lost at `perf_f` relative
/// to `perf_ref`.  Positive values are losses; negative values are gains.
double perf_loss(double perf_ref, double perf_f);

/// Continuous "ideal frequency" extension (paper Sec. 5): the lowest
/// frequency at which predicted performance stays within `epsilon` of the
/// performance at `f_max`.  Clamps into [0, f_max]; returns `f_max` for
/// workloads whose demand cannot be met below it.
double ideal_frequency(const WorkloadEstimate& est, double f_max,
                       double epsilon);

}  // namespace fvsst::core
