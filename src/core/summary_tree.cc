#include "core/summary_tree.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fvsst::core {

MicroWatts to_microwatts(double watts) {
  if (watts <= 0.0) return 0;
  return static_cast<MicroWatts>(std::llround(watts * 1e6));
}

void ShardSummary::merge(const ShardSummary& other) {
  if (other.desired.size() > desired.size()) {
    desired.resize(other.desired.size(), 0);
  }
  for (std::size_t b = 0; b < other.desired.size(); ++b) {
    desired[b] += other.desired[b];
  }
  cpus += other.cpus;
  idle += other.idle;
  desired_power_uw += other.desired_power_uw;
  round = std::max(round, other.round);
}

std::uint64_t ShardSummary::above(std::size_t cap) const {
  std::uint64_t n = 0;
  for (std::size_t b = cap + 1; b < desired.size(); ++b) n += desired[b];
  return n;
}

std::size_t ShardSummary::wire_bytes() const {
  // round(8) + cpus(4) + idle(4) + power(8) + bucket count(2) + 4/bucket.
  return 26 + 4 * desired.size();
}

CapProfile compute_cap_profile(const ShardSummary& total,
                               const mach::FrequencyTable& table,
                               double budget_w) {
  const std::size_t k = table.size();
  if (k == 0) throw std::invalid_argument("cap profile: empty table");
  std::vector<MicroWatts> pw(k);
  for (std::size_t b = 0; b < k; ++b) pw[b] = to_microwatts(table[b].watts);
  // +1 uW of slack mirrors mach::kPowerSlackW: a budget that admits an
  // assignment exactly must not lose it to the rounding of to_microwatts.
  const MicroWatts budget_uw = to_microwatts(budget_w) + 1;

  CapProfile out;
  if (total.desired_power_uw <= budget_uw) {
    // The desired assignment already fits: no capping at all.
    out.cap = k - 1;
    out.promote = 0;
    out.power_uw = total.desired_power_uw;
    return out;
  }
  // Power of "cap everyone at c": CPUs at or below c keep their desired
  // point, CPUs above run at c.  Scan caps descending; the first fit wins
  // (low_power(c) is monotone non-decreasing in c only above the optimum,
  // but scanning all caps keeps this robust for arbitrary tables).
  std::uint64_t below_cnt = 0;  // CPUs with desired <= c
  MicroWatts below_pw = 0;      // their desired power
  std::vector<MicroWatts> low_power(k, 0);
  for (std::size_t c = 0; c < k; ++c) {
    const std::uint32_t cnt =
        c < total.desired.size() ? total.desired[c] : 0;
    below_cnt += cnt;
    below_pw += static_cast<MicroWatts>(cnt) * pw[c];
    const std::uint64_t above = total.cpus - below_cnt;
    low_power[c] = below_pw + above * pw[c];
  }
  for (std::size_t c1 = k; c1-- > 0;) {
    if (low_power[c1] > budget_uw) continue;
    out.cap = c1;
    const std::uint64_t above = total.above(c1);
    // Spend the remainder promoting above-cap CPUs one step to c+1.
    if (c1 + 1 < k && above > 0) {
      const MicroWatts step = pw[c1 + 1] - pw[c1];
      if (step == 0) {
        out.promote = above;
      } else {
        out.promote = std::min<std::uint64_t>(
            above, (budget_uw - low_power[c1]) / step);
      }
      out.power_uw = low_power[c1] + out.promote * step;
    } else {
      out.power_uw = low_power[c1];
    }
    return out;
  }
  // Even all-minimum overshoots: infeasible.  Grant everyone the floor
  // (the flat daemon's convention for an infeasible budget).
  out.feasible = false;
  out.cap = 0;
  out.promote = 0;
  out.power_uw = low_power[0];
  return out;
}

std::vector<std::uint64_t> split_quota(
    const std::vector<std::uint64_t>& child_above, std::uint64_t quota) {
  std::vector<std::uint64_t> out(child_above.size(), 0);
  for (std::size_t i = 0; i < child_above.size() && quota > 0; ++i) {
    out[i] = std::min(child_above[i], quota);
    quota -= out[i];
  }
  return out;
}

void apply_cap_profile(const std::vector<std::uint16_t>& desired,
                       const CapProfile& profile, std::uint64_t quota,
                       std::vector<std::uint16_t>& granted) {
  granted.clear();
  granted.reserve(desired.size());
  const auto cap = static_cast<std::uint16_t>(profile.cap);
  std::uint64_t left = quota;
  for (const std::uint16_t d : desired) {
    if (d <= cap) {
      granted.push_back(d);
    } else if (left > 0) {
      --left;
      granted.push_back(static_cast<std::uint16_t>(cap + 1));
    } else {
      granted.push_back(cap);
    }
  }
}

}  // namespace fvsst::core
