// tree_daemon.h - The hierarchical (sharded) cluster daemon: a coordinator
// tree over contiguous node shards, scaling the paper's global scheduler
// to O(10k-100k) nodes.
//
// The flat ClusterDaemon keeps one agent, two channel endpoints and one
// coordinator mailbox slot per *node* — O(N) state at a single actor and
// O(N) messages per round through one pair of channels.  TreeDaemon
// restructures the same control loop as a three-tier tree:
//
//   leaf (rack)       one coordinator per Shard (cluster/shard.h): samples
//                     only its slab's CPUs, runs the paper's pass 1
//                     locally, and ships one *compressed summary*
//                     (core/summary_tree.h) upward per round;
//   aggregate (row)   merges its child leaves' summaries (exact integer
//                     sums) and forwards one summary per round;
//   root (datacenter) folds the aggregate summaries, computes the cap
//                     profile under the global budget — the histogram
//                     analogue of the paper's pass 2 — and pushes
//                     (cap, promotion-quota) splits back down the tree.
//
// No actor ever touches more than O(sqrt N) children or O(slab) CPUs.
// Protocol machinery from the flat daemon carries over at every tier:
// every downward message is epoch-fenced (cluster::EpochFence per leaf),
// both tiers' links run through cluster::Transport sessions (reliable
// mode: sequenced, acked via piggyback on the next upward summary,
// retransmitted, epoch-fenced), a standby root can take over with a
// deterministic takeover delay, and a leaf that stops hearing grants
// drops its shard to the autonomous budget/N fail-safe frequency.
//
// Determinism: tree rounds use fixed link latency (no jitter), integer
// summary aggregation and the closed-form cap profile, so the journal is
// bit-identical across shard counts, thread counts and advance modes —
// see summary_tree.h for why.  Per-shard journal detail (which *does*
// depend on the shard count) is emitted only when
// TreeDaemonConfig::journal_topology is set, the same opt-in pattern the
// flat daemon uses for transport-level events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/channel.h"
#include "cluster/cluster.h"
#include "cluster/election.h"
#include "cluster/parallel_stepper.h"
#include "cluster/shard.h"
#include "cluster/transport.h"
#include "core/control_loop.h"
#include "core/scheduler.h"
#include "core/summary_tree.h"
#include "power/budget.h"
#include "simkit/event_log.h"
#include "simkit/event_queue.h"
#include "simkit/fault_plan.h"
#include "simkit/monitor.h"
#include "simkit/telemetry.h"

namespace fvsst::core {

struct TreeDaemonConfig {
  double t_sample_s = 0.010;          ///< The paper's dispatch interval t.
  int schedule_every_n_samples = 10;  ///< T = n * t.
  /// Leaf shards; 0 picks ~sqrt(nodes) (ShardMap::auto_shards).
  std::size_t shards = 0;
  /// Aggregate-tier fan-in; 0 picks ~sqrt(shards).
  std::size_t aggregates = 0;
  /// One-hop link latency (leaf->aggregate, aggregate->root, and the two
  /// downward hops).  Fixed — no jitter — so round timing cannot depend
  /// on the shard count (the tree determinism guarantee).
  double link_latency_s = 100e-6;
  AdvanceMode advance_mode = AdvanceMode::kTick;
  /// Worker threads for the batched shard pre-sync (1 = serial).
  int step_threads = 1;
  IdleSignal idle_signal = IdleSignal::kOsSignal;
  double halted_idle_threshold = 0.90;
  FrequencyScheduler::Options scheduler;
  cluster::TransportMode transport = cluster::TransportMode::kDatagram;
  /// Enable the standby root (takes over after silence).
  bool standby_root = false;
  /// Root-silence multiplier (in units of T) before the standby claims;
  /// also the base of the shard fail-safe clock.
  double takeover_factor = 3.0;
  /// Shard fail-safe: a leaf silent for this many T drops its slab to the
  /// budget/N share frequency.  0 disables.
  double failsafe_factor = 0.0;
  const sim::FaultPlan* fault_plan = nullptr;
  sim::EventLog* journal = nullptr;
  sim::monitor::Monitor* monitor = nullptr;
  /// Emit per-shard / per-tier journal detail (aggregation events with
  /// shard ids, mailbox depths and summary bytes).  Off by default: the
  /// detail depends on the shard count, and default journals must not.
  bool journal_topology = false;
};

/// The hierarchical coordinator tree.  Construction requires a
/// homogeneous cluster (one shared operating-point table): the compressed
/// histogram is indexed by table point, so mixed tables have no shared
/// bucket space — heterogeneous clusters keep the flat daemon.
class TreeDaemon {
 public:
  TreeDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
             const mach::FrequencyTable& table, power::PowerBudget& budget,
             TreeDaemonConfig config);
  ~TreeDaemon();

  TreeDaemon(const TreeDaemon&) = delete;
  TreeDaemon& operator=(const TreeDaemon&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t aggregate_count() const { return agg_children_.size(); }
  std::size_t rounds() const { return rounds_applied_; }
  cluster::Epoch epoch() const { return epoch_; }
  double last_lag_s() const { return last_lag_s_; }
  std::size_t summaries_sent() const { return summaries_sent_; }
  std::size_t summary_bytes_sent() const { return summary_bytes_sent_; }
  std::size_t failsafe_shard_count() const;
  std::uint64_t cores_advanced() const;
  const cluster::Shard& shard(std::size_t s) const { return shards_[s]; }
  sim::MetricRegistry& telemetry() { return telemetry_; }

 private:
  struct Leaf {
    std::size_t id = 0;
    std::unique_ptr<SimCoreSampler> sampler;
    std::unique_ptr<IpcEstimator> estimator;
    std::vector<ProcView> views;
    std::vector<std::uint16_t> desired;   ///< Pass-1 indices, per CPU.
    std::vector<std::uint16_t> granted;   ///< Scratch for apply.
    cluster::EpochFence fence;
    std::vector<IntervalSample> interval;  ///< Reused end_interval buffer.
    double last_grant_t = 0.0;
    bool failsafe = false;
  };

  struct RootState {
    int id = 0;           ///< 0 = primary, 1 = standby.
    bool leader = false;
    /// Latest summary per aggregate child (the warm mailbox both roots
    /// keep, so a takeover decides from shadowed state immediately).
    std::vector<ShardSummary> agg_mail;
    std::vector<char> agg_have;
    std::vector<std::uint64_t> agg_above;  ///< Scratch: per-agg above-cap.
    double last_decide_t = 0.0;
    bool any_mail() const {
      for (char h : agg_have)
        if (h) return true;
      return false;
    }
  };

  /// Downward grant payload (travels inside the delivery closure; the
  /// Frame carries only the protocol envelope).
  struct Grant {
    std::uint64_t round = 0;
    double sample_t = 0.0;   ///< Summary instant the decision answers.
    std::uint32_t cap = 0;   ///< Cap index c*.
    std::uint64_t quota = 0; ///< Promotions granted to this subtree.
    bool feasible = true;
  };

  // --- Round pipeline (times relative to the summary instant t_k) ------
  void on_tick();                    // tick mode: per-t collect
  void schedule_summary_wake();      // next summary on the tick lattice
  void on_summary_wake();            // the summary instant (both modes)
  void presync_shards(double now);
  void summary_instant(double now);  // t_k: close intervals, send up
  void leaf_close_interval(Leaf& leaf, double now);
  void agg_flush(std::size_t agg);   // t_k + L: merge, forward up
  void root_flush();                 // t_k + 2L: decide, fan down
  void root_decide(RootState& root, CycleTrigger trigger);
  void agg_receive_down(std::size_t agg, const Grant& grant,
                        const cluster::Frame& frame);
  void leaf_apply(std::size_t leaf_id, const Grant& grant,
                  const cluster::Frame& frame);

  // --- Protocol helpers -------------------------------------------------
  bool leaf_down(std::size_t leaf, double now) const;
  bool node_crashed(std::size_t node, double now) const;
  bool root_down(const RootState& root, double now) const;
  void maybe_take_over(double now);
  void failsafe_check(double now);
  double failsafe_hz() const;
  void monitor_sample(double now);
  void journal_message_lost(int child, const char* direction,
                            const char* cause);
  void wire_transport_hooks(cluster::Transport& transport);

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  power::PowerBudget& budget_;
  TreeDaemonConfig config_;
  const mach::FrequencyTable& table_;

  cluster::ShardMap shard_map_;
  std::vector<cluster::Shard> shards_;
  std::vector<Leaf> leaves_;
  /// agg_children_[a] = leaf ids under aggregate a (contiguous range).
  std::vector<std::vector<std::size_t>> agg_children_;
  std::vector<std::size_t> leaf_agg_;   ///< Aggregate owning each leaf.
  /// Per-aggregate mailbox: the latest summary per child leaf (needed at
  /// down time to split the promotion quota by child demand).
  std::vector<std::vector<ShardSummary>> agg_child_mail_;
  std::vector<std::vector<char>> agg_child_have_;
  std::vector<std::uint64_t> agg_above_scratch_;

  RootState primary_;
  RootState standby_;
  cluster::Epoch epoch_ = 1;
  cluster::FailureDetector root_watch_{1.0};

  // Four physical hops, each its own channel + transport session layer.
  cluster::Channel up_leaf_channel_, up_root_channel_;
  cluster::Channel down_root_channel_, down_leaf_channel_;
  std::unique_ptr<cluster::Transport> up_leaf_, up_root_;
  std::unique_ptr<cluster::Transport> down_root_, down_leaf_;

  std::unique_ptr<cluster::StepPool> step_pool_;
  std::unique_ptr<FrequencyScheduler> scheduler_;
  sim::MetricRegistry telemetry_;
  sim::TimeSeries* power_trace_ = nullptr;

  /// Integer microwatts per table point (the summary compression basis).
  std::vector<MicroWatts> pw_uw_;
  std::size_t total_cpus_ = 0;
  double start_t_ = 0.0;

  bool event_driven_ = false;
  /// Tick-lattice origin (start + t); summary wakes fire at
  /// grid_origin_ + (next_summary_k_ - 1) * t in both advance modes, the
  /// exact arithmetic of Core's sampling grid.
  double grid_origin_ = 0.0;
  std::uint64_t next_summary_k_ = 0;
  sim::EventId tick_event_ = 0;
  sim::EventId summary_wake_event_ = 0;

  std::uint64_t round_seq_ = 0;        ///< Summary instants so far.
  std::size_t rounds_applied_ = 0;
  std::uint64_t last_applied_round_ = 0;
  ShardSummary totals_scratch_;
  double last_sample_t_ = 0.0;
  double last_apply_t_ = 0.0;
  double last_lag_s_ = 0.0;
  std::size_t summaries_sent_ = 0;
  std::size_t summary_bytes_sent_ = 0;
  std::size_t agg_flushed_ = 0;        ///< Aggregates flushed this round.
  bool protocol_visible_ = false;
  bool transport_visible_ = false;

  // Interned monitor inputs (resolved at construction when a monitor is
  // attached; the flat daemon's idiom).
  sim::monitor::InputId mon_lag_, mon_over_budget_, mon_since_round_,
      mon_failsafe_frac_;
  double mon_last_round_t_ = 0.0;
  std::size_t mon_rounds_seen_ = 0;
};

}  // namespace fvsst::core
