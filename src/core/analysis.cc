#include "core/analysis.h"

#include <algorithm>

namespace fvsst::core {

sim::CategoryHistogram residency(const sim::TimeSeries& trace, double t_end) {
  sim::CategoryHistogram hist;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double seg_end = std::min(trace[i].t, t_end);
    const double dt = seg_end - trace[i - 1].t;
    if (dt > 0.0) hist.add(trace[i - 1].value, dt);
  }
  // The final (open) segment up to t_end.
  if (!trace.empty() && t_end > trace[trace.size() - 1].t) {
    hist.add(trace[trace.size() - 1].value,
             t_end - trace[trace.size() - 1].t);
  }
  return hist;
}

double mean_excluding(const sim::TimeSeries& samples,
                      const std::vector<TimeWindow>& excluded) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples.samples()) {
    bool drop = false;
    for (const auto& w : excluded) {
      if (s.t >= w.begin && s.t < w.end) {
        drop = true;
        break;
      }
    }
    if (!drop) {
      sum += s.value;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double mean_within(const sim::TimeSeries& samples, const TimeWindow& window) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples.samples()) {
    if (s.t >= window.begin && s.t < window.end) {
      sum += s.value;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

sim::TimeSeries normalised(const sim::TimeSeries& in, double scale,
                           const std::string& name) {
  sim::TimeSeries out(name);
  for (const auto& s : in.samples()) out.add(s.t, s.value / scale);
  return out;
}

}  // namespace fvsst::core
