// summary_tree.h - Compressed demand summaries and the root cap profile
// for the hierarchical coordinator tree.
//
// The flat cluster daemon ships one ProcView per CPU to a coordinator that
// runs the paper's two-pass schedule over all of them — O(total CPUs)
// state and messages at a single actor, which is what makes 100k-node
// clusters architecturally impossible.  The tree replaces the upward
// per-CPU views with a *compressed summary* per shard:
//
//   desired[b]        how many of the shard's CPUs want operating point b
//                     (pass 1 of the paper's algorithm, run leaf-locally);
//   cpus, idle        population and idle counts;
//   desired_power_uw  exact power of the desired assignment, in integer
//                     microwatts.
//
// Everything is integer on purpose: integer addition is associative and
// exact, so merging summaries up any tree shape — any shard count, any
// fan-in, any merge order — produces bit-identical aggregates.  That is
// the whole determinism story for `--topology tree`: the root's decision
// is a pure function of the aggregate histogram and the budget, and the
// per-CPU grant is a pure function of (per-CPU desired index, cap
// profile, flat CPU order), none of which can see shard boundaries.
//
// The root's decision is a *cap profile*: the largest cap index c such
// that granting min(desired, c) to everyone fits the budget, plus a
// promotion quota m — the first m above-cap CPUs in flat order run one
// step higher at c+1, consuming the budget remainder.  The profile is the
// histogram analogue of the paper's pass 2 (downgrade until the budget
// holds): with one shared table, uniform capping with a one-step
// remainder is exactly the family of assignments pass-2-style downgrading
// reaches, computed in closed form over bucket counts instead of
// per-CPU greedy steps.  Quotas split down the tree in child order
// (split_quota), which reproduces the flat-order rule exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mach/frequency_table.h"

namespace fvsst::core {

/// Integer microwatts: the tree's exact power arithmetic.
using MicroWatts = std::uint64_t;

/// Rounds table watts to integer microwatts (the compression quantum; a
/// microwatt is far below the table's own model error).
MicroWatts to_microwatts(double watts);

/// One shard's compressed upward summary (or any merge of them).
struct ShardSummary {
  std::uint64_t round = 0;  ///< Scheduling round the summary closes.
  /// desired[b] = CPUs whose pass-1 desired operating point is index b.
  std::vector<std::uint32_t> desired;
  std::uint32_t cpus = 0;
  std::uint32_t idle = 0;
  MicroWatts desired_power_uw = 0;

  /// Folds `other` in (exact integer sums; associative and commutative,
  /// so any merge tree yields the same aggregate).
  void merge(const ShardSummary& other);

  /// CPUs desiring an operating point strictly above index `cap`.
  std::uint64_t above(std::size_t cap) const;

  /// Modelled wire size of the encoded summary (the per-tier bandwidth
  /// statistic journals and the inspector report).
  std::size_t wire_bytes() const;
};

/// The root's decision over an aggregate summary.
struct CapProfile {
  std::size_t cap = 0;              ///< c*: grants are capped at this index.
  std::uint64_t promote = 0;        ///< First m above-cap CPUs run at c*+1.
  bool feasible = true;             ///< False: even all-minimum overshoots.
  MicroWatts power_uw = 0;          ///< Exact power of the final assignment.
};

/// Computes the cap profile for `total` under `budget_w` against the
/// (shared, homogeneous) operating-point table.  Pure and integer-exact:
/// the same aggregate and budget always yield the same profile.
CapProfile compute_cap_profile(const ShardSummary& total,
                               const mach::FrequencyTable& table,
                               double budget_w);

/// Splits a promotion quota over children in child order: child i gets
/// min(child_above[i], what remains).  Applied at every tier, this
/// reproduces "the first m above-cap CPUs in flat order" exactly, because
/// shard slabs are contiguous and tiers group contiguous shard ranges.
std::vector<std::uint64_t> split_quota(
    const std::vector<std::uint64_t>& child_above, std::uint64_t quota);

/// Applies a cap profile to one leaf's per-CPU desired indices (flat
/// order within the leaf).  `quota` of the leaf's above-cap CPUs are
/// promoted to cap+1, first-come in flat order; the rest are capped.
/// Appends granted indices to `granted` (cleared first).
void apply_cap_profile(const std::vector<std::uint16_t>& desired,
                       const CapProfile& profile, std::uint64_t quota,
                       std::vector<std::uint16_t>& granted);

}  // namespace fvsst::core
