// estimators.h - Alternative workload estimators from the paper's
// footnote 1.
//
// The baseline IpcPredictor assumes constant, nominal memory latencies,
// "a source of error" the paper acknowledges.  It sketches two remedies,
// both implemented here:
//
//  1. **Two-frequency estimation** (the approach of Kotla et al. [2]):
//     observe the same workload at two different frequencies and solve
//       CPI(f1) = 1/alpha + M*f1
//       CPI(f2) = 1/alpha + M*f2
//     for (1/alpha, M) directly — no latency constants needed at all, so
//     latency mis-modelling cancels out.
//
//  2. **Best/worst-case latency bounds**: evaluate the predictor with both
//     a lower and an upper latency bound, yielding a performance *interval*
//     at each candidate frequency.  A conservative scheduler can then bound
//     the worst-case loss instead of trusting a point estimate.
#pragma once

#include "core/predictor.h"

namespace fvsst::core {

/// Two-frequency estimator: recovers (1/alpha, M) from observations of the
/// same (stationary) workload at two different frequencies.
class TwoPointEstimator {
 public:
  /// Minimum frequency separation for a well-conditioned solve, as a
  /// fraction of the higher frequency.
  static constexpr double kMinSeparation = 0.02;

  /// Solves for the estimate.  Returns an invalid estimate when either
  /// observation is unusable or the frequencies are too close (the system
  /// becomes singular).  Negative solutions (non-stationary workload
  /// between the observations) are clamped into the physical domain.
  static WorkloadEstimate estimate(const CounterObservation& a,
                                   const CounterObservation& b);
};

/// A performance interval from latency bounds.
struct EstimateBounds {
  WorkloadEstimate best;   ///< Using the optimistic (low) latencies.
  WorkloadEstimate worst;  ///< Using the pessimistic (high) latencies.
  bool valid = false;
};

/// Bounds estimator: runs the standard single-observation estimation with
/// latencies scaled by [lo_scale, hi_scale] (e.g. 0.85 and 1.30 around the
/// nominal constants).
class BoundsEstimator {
 public:
  BoundsEstimator(const mach::MemoryLatencies& nominal, double lo_scale,
                  double hi_scale);

  EstimateBounds estimate(const CounterObservation& obs) const;

  /// Worst-case (largest) predicted performance loss at `hz` vs `f_max`
  /// across the bound interval.  A scheduler using this instead of the
  /// point estimate never under-provisions frequency because of latency
  /// mis-modelling.
  static double worst_case_loss(const EstimateBounds& bounds, double hz,
                                double f_max);

 private:
  mach::MemoryLatencies lo_;
  mach::MemoryLatencies hi_;
};

}  // namespace fvsst::core
