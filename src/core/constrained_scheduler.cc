#include "core/constrained_scheduler.h"

#include <limits>
#include <stdexcept>

namespace fvsst::core {

ConstrainedScheduler::ConstrainedScheduler(
    mach::FrequencyTable table, mach::MemoryLatencies nominal_latencies,
    FrequencyScheduler::Options options)
    : base_(table, nominal_latencies, options), table_(std::move(table)) {}

ConstrainedResult ConstrainedScheduler::schedule(
    const std::vector<ProcView>& procs,
    const std::vector<PowerConstraint>& constraints) const {
  for (const auto& c : constraints) {
    for (const std::size_t p : c.procs) {
      if (p >= procs.size()) {
        throw std::invalid_argument(
            "ConstrainedScheduler: processor index out of range in '" +
            c.name + "'");
      }
    }
  }

  // Pass 1: the paper's epsilon-constrained choice, via the base scheduler
  // with an unconstrained budget.
  const ScheduleResult unconstrained =
      base_.schedule(procs, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> idx(procs.size());
  for (std::size_t p = 0; p < procs.size(); ++p) {
    idx[p] = *table_.index_of(unconstrained.decisions[p].hz);
  }
  const std::vector<std::size_t> desired = idx;

  auto constraint_power = [&](const PowerConstraint& c) {
    double w = 0.0;
    for (const std::size_t p : c.procs) w += table_[idx[p]].watts;
    return w;
  };
  auto loss_after_downgrade = [&](std::size_t p) {
    const auto& view = procs[p];
    if ((view.idle && base_.options().idle_detection) ||
        !view.estimate.valid) {
      return 0.0;
    }
    return base_.predicted_loss(view.estimate, table_[idx[p] - 1].hz);
  };

  ConstrainedResult out;
  out.schedule.downgrade_steps = 0;

  // Pass 2: while any constraint is violated, downgrade the least-loss
  // processor covered by some violated constraint.
  while (true) {
    bool any_violated = false;
    std::size_t best_proc = procs.size();
    double best_loss = std::numeric_limits<double>::infinity();
    for (const auto& c : constraints) {
      if (constraint_power(c) <= c.limit_w) continue;
      any_violated = true;
      for (const std::size_t p : c.procs) {
        if (idx[p] == 0) continue;
        const double loss = loss_after_downgrade(p);
        if (loss < best_loss) {
          best_loss = loss;
          best_proc = p;
        }
      }
    }
    if (!any_violated) break;
    if (best_proc == procs.size()) {
      out.feasible = false;  // everyone relevant is at the floor
      break;
    }
    --idx[best_proc];
    ++out.schedule.downgrade_steps;
  }

  // Finalize decisions.
  out.schedule.decisions.resize(procs.size());
  out.schedule.total_cpu_power_w = 0.0;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    auto& d = out.schedule.decisions[p];
    const auto& granted = table_[idx[p]];
    d.desired_hz = table_[desired[p]].hz;
    d.hz = granted.hz;
    d.volts = granted.volts;
    d.watts = granted.watts;
    d.predicted_loss =
        (procs[p].idle && base_.options().idle_detection) ||
                !procs[p].estimate.valid
            ? 0.0
            : base_.predicted_loss(procs[p].estimate, granted.hz);
    out.schedule.total_cpu_power_w += granted.watts;
  }
  out.schedule.feasible = out.feasible;
  out.constraint_w.reserve(constraints.size());
  for (const auto& c : constraints) {
    out.constraint_w.push_back(constraint_power(c));
    out.satisfied.push_back(out.constraint_w.back() <= c.limit_w + 1e-12);
  }
  for (bool ok : out.satisfied) {
    if (!ok) out.feasible = false;
  }
  out.schedule.feasible = out.feasible;
  return out;
}

std::vector<PowerConstraint> node_and_site_constraints(
    std::size_t nodes, std::size_t cpus_per_node, double per_node_limit_w,
    double site_limit_w) {
  std::vector<PowerConstraint> out;
  std::vector<std::size_t> all;
  for (std::size_t n = 0; n < nodes; ++n) {
    PowerConstraint c;
    c.name = "node" + std::to_string(n);
    c.limit_w = per_node_limit_w;
    for (std::size_t k = 0; k < cpus_per_node; ++k) {
      c.procs.push_back(n * cpus_per_node + k);
      all.push_back(n * cpus_per_node + k);
    }
    out.push_back(std::move(c));
  }
  out.push_back({"site", std::move(all), site_limit_w});
  return out;
}

}  // namespace fvsst::core
