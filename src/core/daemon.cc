#include "core/daemon.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "simkit/log.h"

namespace fvsst::core {

FvsstDaemon::FvsstDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
                         const mach::FrequencyTable& table,
                         power::PowerBudget& budget, DaemonConfig config)
    : sim_(sim),
      cluster_(cluster),
      budget_(budget),
      config_(config),
      procs_(cluster.all_procs()) {
  for (const auto& addr : procs_) {
    proc_tables_.push_back(&cluster_.node(addr.node).machine().freq_table);
  }

  auto sampler = std::make_unique<SimCoreSampler>(
      cluster_, procs_, SimCoreSampler::ResetPolicy::kOnValidInterval,
      sim_.now());
  IpcEstimator::Options est_opts;
  est_opts.idle_signal = config_.idle_signal;
  est_opts.halted_idle_threshold = config_.halted_idle_threshold;
  est_opts.smoothing = config_.estimate_smoothing;
  auto estimator = std::make_unique<IpcEstimator>(
      cluster_.node(0).machine().latencies, est_opts);
  std::unique_ptr<PolicyStage> policy;
  if (config_.policy_factory) {
    policy = config_.policy_factory(table, cluster_.node(0).machine().latencies,
                                    config_.scheduler);
  } else {
    auto scheduler_stage = std::make_unique<SchedulerPolicyStage>(
        table, cluster_.node(0).machine().latencies, config_.scheduler);
    policy_ = scheduler_stage.get();
    policy = std::move(scheduler_stage);
  }
  auto actuator = std::make_unique<SimCoreActuator>(cluster_, procs_);
  actuator->set_fault_plan(config_.fault_plan, &sim_);

  ControlLoopConfig loop_config;
  loop_config.schedule_every_n_samples = config_.schedule_every_n_samples;
  loop_config.record_traces = config_.record_traces;
  loop_config.journal = config_.journal;
  // Sticky-write surveillance only makes sense when writes can actually go
  // wrong; keeping it off otherwise keeps fault-free journals unchanged.
  loop_config.detect_actuation_mismatch =
      config_.fault_plan && !config_.fault_plan->empty();
  if (config_.journal) {
    // t_restarts = 1: a budget trigger resets the tick count, restarting T
    // (the paper's SMP daemon semantic the inspector verifies).
    config_.journal->append(sim_.now(), sim::EventType::kRunMeta)
        .set("t_sample_s", config_.t_sample_s)
        .set("multiplier", static_cast<double>(config_.schedule_every_n_samples))
        .set("cpus", static_cast<double>(procs_.size()))
        .set("t_restarts", 1.0)
        .set("daemon", std::string("fvsst"));
  }
  // The scheduling calculation itself costs daemon time (dead cycles on the
  // hosting CPU), charged just before the policy runs.
  loop_config.pre_policy = [this](CycleTrigger) {
    cluster_.core(procs_[config_.daemon_cpu])
        .steal_time(config_.overhead_per_schedule_s);
  };
  loop_config.monitor = config_.monitor;
  if (config_.monitor) {
    mon_over_budget_ = config_.monitor->input("over_budget_w");
    mon_journal_dropped_ = config_.monitor->input("journal_dropped");
  }
  loop_ = std::make_unique<ControlLoop>(
      std::move(loop_config), std::move(sampler), std::move(estimator),
      std::move(policy), std::move(actuator), proc_tables_, &telemetry_);

  std::vector<double> hz(procs_.size());
  std::vector<double> watts(procs_.size());
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    hz[i] = cluster_.core(procs_[i]).frequency_hz();
    watts[i] = proc_tables_[i]->power(hz[i]);
  }
  loop_->prime(sim_.now(), hz, watts);

  budget_.on_change([this](double limit) {
    if (config_.journal) {
      config_.journal->append(sim_.now(), sim::EventType::kBudgetChange)
          .set("budget_w", limit);
    }
    if (event_driven_) {
      // A budget trigger restarts T (t_restarts = 1): in tick mode the tick
      // count resets and the next timer cycle lands n counted ticks later,
      // where a tick at exactly now still counts (budget events carry
      // setup-time sequence numbers, so they fire before the re-armed tick
      // at a coincident instant).  Reproduce that arithmetic on the
      // lattice: j0 = min{j : g_j >= now}, next cycle at index j0 + n - 1.
      // Tick number m (1-based) fires at grid_origin_ + (m-1)*t; find the
      // first tick at or after the trigger by lattice index i = m - 1.
      const double tau = sim_.now();
      const double t = config_.t_sample_s;
      double est = std::ceil((tau - grid_origin_) / t);
      if (!(est > 0.0)) est = 0.0;
      std::uint64_t i = static_cast<std::uint64_t>(est);
      while (grid_origin_ + static_cast<double>(i) * t < tau) ++i;
      while (i > 0 && grid_origin_ + static_cast<double>(i - 1) * t >= tau) {
        --i;
      }
      const std::uint64_t j = i + 1;  // First tick number at or after tau.
      // Ticks fired strictly before this trigger: numbers 1 .. j-1.  Fold
      // the ones no wake accounted yet so the telemetry this cycle
      // publishes matches tick mode.
      const std::uint64_t fired = j - 1;
      if (fired > ticks_accounted_) {
        loop_->note_skipped_collects(fired - ticks_accounted_);
        ticks_accounted_ = fired;
      }
      run_cycle(CycleTrigger::kBudget);
      next_cycle_k_ =
          j + static_cast<std::uint64_t>(config_.schedule_every_n_samples) - 1;
      sim_.cancel(wake_event_);
      schedule_wake();
    } else {
      run_cycle(CycleTrigger::kBudget);
    }
  });
  // Event-driven advance needs every tick-granular mechanism disabled:
  // actuation retries count ticks, so a non-empty fault plan forces the
  // tick fallback (behaviour, not just timing, would diverge otherwise).
  event_driven_ = config_.advance_mode == AdvanceMode::kEvent &&
                  !(config_.fault_plan && !config_.fault_plan->empty());
  if (event_driven_) {
    // The lattice a tick-driven daemon would sample on: schedule_every
    // fires first at now + t, and re-arms firing m at that SAME origin
    // plus (m-1)*t — so the first firing, not the schedule time, anchors
    // every later instant's floating-point value.
    grid_origin_ = sim_.now() + config_.t_sample_s;
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      // The overhead a tick-driven daemon would have stolen at each tick:
      // locally per CPU with per-CPU collector threads, else all charged
      // to the CPU hosting the daemon process.
      double steal = 0.0;
      if (config_.per_cpu_threads) {
        steal = config_.overhead_per_cpu_sample_s;
      } else if (i == config_.daemon_cpu) {
        steal = config_.overhead_per_cpu_sample_s *
                static_cast<double>(procs_.size());
      }
      cluster_.core(procs_[i]).set_sampling_grid(
          grid_origin_, config_.t_sample_s, steal, /*record_history=*/true);
    }
    next_cycle_k_ =
        static_cast<std::uint64_t>(config_.schedule_every_n_samples);
    schedule_wake();
  } else {
    tick_event_ =
        sim_.schedule_every(config_.t_sample_s, [this] { on_sample_tick(); });
  }
}

FvsstDaemon::~FvsstDaemon() {
  sim_.cancel(tick_event_);
  sim_.cancel(wake_event_);
}

const FrequencyScheduler& FvsstDaemon::scheduler() const {
  if (policy_ == nullptr) {
    throw std::logic_error(
        "FvsstDaemon::scheduler: a custom policy_factory replaced the "
        "default scheduler stage");
  }
  return policy_->scheduler();
}

const sim::TimeSeries& FvsstDaemon::granted_freq_trace(std::size_t cpu) const {
  return loop_->trace(cpu, ControlLoop::Trace::kGranted);
}
const sim::TimeSeries& FvsstDaemon::desired_freq_trace(std::size_t cpu) const {
  return loop_->trace(cpu, ControlLoop::Trace::kDesired);
}
const sim::TimeSeries& FvsstDaemon::predicted_ipc_trace(
    std::size_t cpu) const {
  return loop_->trace(cpu, ControlLoop::Trace::kPredictedIpc);
}
const sim::TimeSeries& FvsstDaemon::measured_ipc_trace(std::size_t cpu) const {
  return loop_->trace(cpu, ControlLoop::Trace::kMeasuredIpc);
}
const sim::TimeSeries& FvsstDaemon::deviation_trace(std::size_t cpu) const {
  return loop_->trace(cpu, ControlLoop::Trace::kDeviation);
}

void FvsstDaemon::on_sample_tick() {
  // Reading counters costs CPU time: either all on the single daemon
  // thread's CPU, or locally on every CPU when per-CPU collector threads
  // are used (paper Sec. 9's improved design).
  if (config_.per_cpu_threads) {
    for (const auto& addr : procs_) {
      cluster_.core(addr).steal_time(config_.overhead_per_cpu_sample_s);
    }
  } else {
    cluster_.core(procs_[config_.daemon_cpu])
        .steal_time(config_.overhead_per_cpu_sample_s *
                    static_cast<double>(procs_.size()));
  }
  if (loop_->collect(sim_.now())) {
    run_cycle(CycleTrigger::kTimer);
  }
}

void FvsstDaemon::schedule_wake() {
  // Tick number next_cycle_k_ fires at origin + (k-1)*t: grid_origin_ is
  // the first tick itself, matching sim::Simulation's re-arm expression.
  wake_event_ = sim_.schedule_at(
      grid_origin_ +
          static_cast<double>(next_cycle_k_ - 1) * config_.t_sample_s,
      [this] { on_event_wake(); });
}

void FvsstDaemon::on_event_wake() {
  // The per-tick steals were applied by the cores' sampling grids; collect
  // replays the skipped per-tick counter folds from the recorded history.
  // Its due-cycle return is ignored: in event mode a wake *is* the cycle.
  loop_->collect(sim_.now());
  // This wake is tick number next_cycle_k_; fold the ticks it absorbed so
  // the loop/sample_count published below matches a tick-driven run.
  loop_->note_skipped_collects(next_cycle_k_ - ticks_accounted_ - 1);
  ticks_accounted_ = next_cycle_k_;
  run_cycle(CycleTrigger::kTimer);
  next_cycle_k_ +=
      static_cast<std::uint64_t>(config_.schedule_every_n_samples);
  schedule_wake();
}

void FvsstDaemon::run_cycle(CycleTrigger trigger) {
  const double now = sim_.now();
  const ScheduleResult& result =
      loop_->run_cycle(now, budget_.effective_limit_w(), trigger);
  if (config_.monitor) {
    // Measured draw, not the grant: sticky or rejected writes leave the
    // hardware above budget even when the schedule looks feasible, and
    // that is exactly the overshoot the default rule pack watches for.
    const double drawn = cluster_.cpu_power_w();
    config_.monitor->observe(
        mon_over_budget_, now,
        std::max(0.0, drawn - budget_.effective_limit_w()));
    if (config_.journal) {
      const std::size_t dropped = config_.journal->dropped();
      config_.monitor->observe(
          mon_journal_dropped_, now,
          static_cast<double>(dropped - mon_last_dropped_));
      mon_last_dropped_ = dropped;
    }
    config_.monitor->evaluate(now);
  }
  if (!result.feasible) {
    sim::LogLine(sim::LogLevel::kWarn, "fvsst", now)
        << "budget " << budget_.effective_limit_w()
        << "W infeasible even at minimum frequencies";
  }
  if (trigger == CycleTrigger::kBudget) {
    sim::LogLine(sim::LogLevel::kInfo, "fvsst", now)
        << "budget trigger: rescheduled to "
        << result.total_cpu_power_w << "W (limit "
        << budget_.effective_limit_w() << "W)";
  }
}

double FvsstDaemon::cpu_energy_j(std::size_t cpu) const {
  return loop_->cpu_energy_j(cpu, sim_.now());
}

double FvsstDaemon::cpu_mean_power_w(std::size_t cpu) const {
  return loop_->cpu_mean_power_w(cpu, sim_.now());
}

}  // namespace fvsst::core
