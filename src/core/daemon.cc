#include "core/daemon.h"

#include <cmath>

#include "simkit/log.h"

namespace fvsst::core {

FvsstDaemon::FvsstDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
                         const mach::FrequencyTable& table,
                         power::PowerBudget& budget, DaemonConfig config)
    : sim_(sim),
      cluster_(cluster),
      budget_(budget),
      config_(config),
      scheduler_(table, cluster.node(0).machine().latencies,
                 config.scheduler),
      procs_(cluster.all_procs()) {
  states_.resize(procs_.size());
  for (const auto& addr : procs_) {
    proc_tables_.push_back(&cluster_.node(addr.node).machine().freq_table);
  }
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    states_[i].last_snapshot = cluster_.core(procs_[i]).read_counters();
    states_[i].aggregate_started_at = sim_.now();
    states_[i].power_acc.record(
        sim_.now(),
        proc_tables_[i]->power(cluster_.core(procs_[i]).frequency_hz()));
    if (config_.record_traces) {
      states_[i].granted.add(sim_.now(),
                             cluster_.core(procs_[i]).frequency_hz());
      states_[i].desired.add(sim_.now(),
                             cluster_.core(procs_[i]).frequency_hz());
    }
  }
  budget_.on_change([this](double) { run_schedule(/*triggered_by_budget=*/true); });
  tick_event_ =
      sim_.schedule_every(config_.t_sample_s, [this] { on_sample_tick(); });
}

FvsstDaemon::~FvsstDaemon() {
  sim_.cancel(tick_event_);
}

const sim::TimeSeries& FvsstDaemon::granted_freq_trace(std::size_t cpu) const {
  return states_.at(cpu).granted;
}
const sim::TimeSeries& FvsstDaemon::desired_freq_trace(std::size_t cpu) const {
  return states_.at(cpu).desired;
}
const sim::TimeSeries& FvsstDaemon::predicted_ipc_trace(
    std::size_t cpu) const {
  return states_.at(cpu).pred_ipc;
}
const sim::TimeSeries& FvsstDaemon::measured_ipc_trace(std::size_t cpu) const {
  return states_.at(cpu).meas_ipc;
}
const sim::TimeSeries& FvsstDaemon::deviation_trace(std::size_t cpu) const {
  return states_.at(cpu).dev;
}

void FvsstDaemon::on_sample_tick() {
  // Reading counters costs CPU time: either all on the single daemon
  // thread's CPU, or locally on every CPU when per-CPU collector threads
  // are used (paper Sec. 9's improved design).
  if (config_.per_cpu_threads) {
    for (const auto& addr : procs_) {
      cluster_.core(addr).steal_time(config_.overhead_per_cpu_sample_s);
    }
  } else {
    cluster_.core(procs_[config_.daemon_cpu])
        .steal_time(config_.overhead_per_cpu_sample_s *
                    static_cast<double>(procs_.size()));
  }
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const cpu::PerfCounters now = cluster_.core(procs_[i]).read_counters();
    states_[i].aggregate += now - states_[i].last_snapshot;
    states_[i].last_snapshot = now;
  }
  if (++samples_since_schedule_ >= config_.schedule_every_n_samples) {
    run_schedule(/*triggered_by_budget=*/false);
  }
}

std::vector<ProcView> FvsstDaemon::build_views() {
  std::vector<ProcView> views(procs_.size());
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    views[i].estimate = states_[i].estimate;
    switch (config_.idle_signal) {
      case IdleSignal::kOsSignal:
        views[i].idle = cluster_.core(procs_[i]).idle();
        break;
      case IdleSignal::kHaltedCounter:
        views[i].idle =
            states_[i].halted_fraction > config_.halted_idle_threshold;
        break;
      case IdleSignal::kNone:
        views[i].idle = false;
        break;
    }
  }
  return views;
}

void FvsstDaemon::run_schedule(bool triggered_by_budget) {
  const double now = sim_.now();

  // Fold any counters gathered since the last tick into the aggregates so a
  // budget-triggered run uses the freshest data available.
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const cpu::PerfCounters snap = cluster_.core(procs_[i]).read_counters();
    states_[i].aggregate += snap - states_[i].last_snapshot;
    states_[i].last_snapshot = snap;
  }

  // Close out the previous interval: measure IPC, score the prediction,
  // and refresh the workload estimate.
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    auto& st = states_[i];
    const double elapsed = now - st.aggregate_started_at;
    if (elapsed <= 0.0 || st.aggregate.cycles <= 0.0) continue;
    const double measured_ipc = st.aggregate.ipc();
    // Effective frequency over the interval, robust to mid-interval
    // changes and throttle quantisation: cycles happened / wall time.
    const double measured_hz = st.aggregate.cycles / elapsed;
    if (st.has_prediction && config_.record_traces) {
      st.meas_ipc.add(now, measured_ipc);
      st.dev.add(now, std::abs(st.predicted_ipc - measured_ipc));
    }
    if (st.has_prediction) {
      st.deviation.add(std::abs(st.predicted_ipc - measured_ipc));
    }
    st.halted_fraction =
        st.aggregate.cycles > 0.0
            ? st.aggregate.halted_cycles / st.aggregate.cycles
            : 0.0;
    CounterObservation obs;
    obs.delta = st.aggregate;
    obs.measured_hz = measured_hz;
    const WorkloadEstimate est = scheduler_.predictor().estimate(obs);
    if (est.valid) {
      const double s = config_.estimate_smoothing;
      if (s > 0.0 && st.estimate.valid) {
        st.estimate.alpha_inv = s * st.estimate.alpha_inv +
                                (1.0 - s) * est.alpha_inv;
        st.estimate.mem_time_per_instr =
            s * st.estimate.mem_time_per_instr +
            (1.0 - s) * est.mem_time_per_instr;
      } else {
        st.estimate = est;
      }
    }
    st.aggregate = cpu::PerfCounters{};
    st.aggregate_started_at = now;
  }

  // The scheduling calculation itself costs daemon time.
  cluster_.core(procs_[config_.daemon_cpu])
      .steal_time(config_.overhead_per_schedule_s);

  const std::vector<ProcView> views = build_views();
  last_result_ =
      scheduler_.schedule(views, proc_tables_, budget_.effective_limit_w());
  ++schedules_run_;
  samples_since_schedule_ = 0;

  if (!last_result_.feasible) {
    sim::LogLine(sim::LogLevel::kWarn, "fvsst", now)
        << "budget " << budget_.effective_limit_w()
        << "W infeasible even at minimum frequencies";
  }
  if (triggered_by_budget) {
    sim::LogLine(sim::LogLevel::kInfo, "fvsst", now)
        << "budget trigger: rescheduled to "
        << last_result_.total_cpu_power_w << "W (limit "
        << budget_.effective_limit_w() << "W)";
  }

  apply(last_result_);
}

void FvsstDaemon::apply(const ScheduleResult& result) {
  const double now = sim_.now();
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const auto& d = result.decisions[i];
    cluster_.core(procs_[i]).set_frequency(d.hz);
    auto& st = states_[i];
    // Record the promise so the next interval can score it.
    if (st.estimate.valid) {
      st.predicted_ipc =
          scheduler_.predictor().predict_ipc(st.estimate, d.hz);
      st.has_prediction = true;
      if (config_.record_traces) st.pred_ipc.add(now, st.predicted_ipc);
    } else {
      st.has_prediction = false;
    }
    st.power_acc.record(now, d.watts);
    if (config_.record_traces) {
      st.granted.add(now, d.hz);
      st.desired.add(now, d.desired_hz);
    }
  }
}

double FvsstDaemon::cpu_energy_j(std::size_t cpu) const {
  return states_.at(cpu).power_acc.integral_until(sim_.now());
}

double FvsstDaemon::cpu_mean_power_w(std::size_t cpu) const {
  return states_.at(cpu).power_acc.mean_until(sim_.now());
}

}  // namespace fvsst::core
