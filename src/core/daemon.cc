#include "core/daemon.h"

#include <utility>

#include "simkit/log.h"

namespace fvsst::core {

FvsstDaemon::FvsstDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
                         const mach::FrequencyTable& table,
                         power::PowerBudget& budget, DaemonConfig config)
    : sim_(sim),
      cluster_(cluster),
      budget_(budget),
      config_(config),
      procs_(cluster.all_procs()) {
  for (const auto& addr : procs_) {
    proc_tables_.push_back(&cluster_.node(addr.node).machine().freq_table);
  }

  auto sampler = std::make_unique<SimCoreSampler>(
      cluster_, procs_, SimCoreSampler::ResetPolicy::kOnValidInterval,
      sim_.now());
  IpcEstimator::Options est_opts;
  est_opts.idle_signal = config_.idle_signal;
  est_opts.halted_idle_threshold = config_.halted_idle_threshold;
  est_opts.smoothing = config_.estimate_smoothing;
  auto estimator = std::make_unique<IpcEstimator>(
      cluster_.node(0).machine().latencies, est_opts);
  auto policy = std::make_unique<SchedulerPolicyStage>(
      table, cluster_.node(0).machine().latencies, config_.scheduler);
  policy_ = policy.get();
  auto actuator = std::make_unique<SimCoreActuator>(cluster_, procs_);
  actuator->set_fault_plan(config_.fault_plan, &sim_);

  ControlLoopConfig loop_config;
  loop_config.schedule_every_n_samples = config_.schedule_every_n_samples;
  loop_config.record_traces = config_.record_traces;
  loop_config.journal = config_.journal;
  // Sticky-write surveillance only makes sense when writes can actually go
  // wrong; keeping it off otherwise keeps fault-free journals unchanged.
  loop_config.detect_actuation_mismatch =
      config_.fault_plan && !config_.fault_plan->empty();
  if (config_.journal) {
    // t_restarts = 1: a budget trigger resets the tick count, restarting T
    // (the paper's SMP daemon semantic the inspector verifies).
    config_.journal->append(sim_.now(), sim::EventType::kRunMeta)
        .set("t_sample_s", config_.t_sample_s)
        .set("multiplier", static_cast<double>(config_.schedule_every_n_samples))
        .set("cpus", static_cast<double>(procs_.size()))
        .set("t_restarts", 1.0)
        .set("daemon", std::string("fvsst"));
  }
  // The scheduling calculation itself costs daemon time (dead cycles on the
  // hosting CPU), charged just before the policy runs.
  loop_config.pre_policy = [this](CycleTrigger) {
    cluster_.core(procs_[config_.daemon_cpu])
        .steal_time(config_.overhead_per_schedule_s);
  };
  loop_ = std::make_unique<ControlLoop>(
      std::move(loop_config), std::move(sampler), std::move(estimator),
      std::move(policy), std::move(actuator), proc_tables_, &telemetry_);

  std::vector<double> hz(procs_.size());
  std::vector<double> watts(procs_.size());
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    hz[i] = cluster_.core(procs_[i]).frequency_hz();
    watts[i] = proc_tables_[i]->power(hz[i]);
  }
  loop_->prime(sim_.now(), hz, watts);

  budget_.on_change([this](double limit) {
    if (config_.journal) {
      config_.journal->append(sim_.now(), sim::EventType::kBudgetChange)
          .set("budget_w", limit);
    }
    run_cycle(CycleTrigger::kBudget);
  });
  tick_event_ =
      sim_.schedule_every(config_.t_sample_s, [this] { on_sample_tick(); });
}

FvsstDaemon::~FvsstDaemon() {
  sim_.cancel(tick_event_);
}

const sim::TimeSeries& FvsstDaemon::granted_freq_trace(std::size_t cpu) const {
  return loop_->trace(cpu, ControlLoop::Trace::kGranted);
}
const sim::TimeSeries& FvsstDaemon::desired_freq_trace(std::size_t cpu) const {
  return loop_->trace(cpu, ControlLoop::Trace::kDesired);
}
const sim::TimeSeries& FvsstDaemon::predicted_ipc_trace(
    std::size_t cpu) const {
  return loop_->trace(cpu, ControlLoop::Trace::kPredictedIpc);
}
const sim::TimeSeries& FvsstDaemon::measured_ipc_trace(std::size_t cpu) const {
  return loop_->trace(cpu, ControlLoop::Trace::kMeasuredIpc);
}
const sim::TimeSeries& FvsstDaemon::deviation_trace(std::size_t cpu) const {
  return loop_->trace(cpu, ControlLoop::Trace::kDeviation);
}

void FvsstDaemon::on_sample_tick() {
  // Reading counters costs CPU time: either all on the single daemon
  // thread's CPU, or locally on every CPU when per-CPU collector threads
  // are used (paper Sec. 9's improved design).
  if (config_.per_cpu_threads) {
    for (const auto& addr : procs_) {
      cluster_.core(addr).steal_time(config_.overhead_per_cpu_sample_s);
    }
  } else {
    cluster_.core(procs_[config_.daemon_cpu])
        .steal_time(config_.overhead_per_cpu_sample_s *
                    static_cast<double>(procs_.size()));
  }
  if (loop_->collect(sim_.now())) {
    run_cycle(CycleTrigger::kTimer);
  }
}

void FvsstDaemon::run_cycle(CycleTrigger trigger) {
  const double now = sim_.now();
  const ScheduleResult& result =
      loop_->run_cycle(now, budget_.effective_limit_w(), trigger);
  if (!result.feasible) {
    sim::LogLine(sim::LogLevel::kWarn, "fvsst", now)
        << "budget " << budget_.effective_limit_w()
        << "W infeasible even at minimum frequencies";
  }
  if (trigger == CycleTrigger::kBudget) {
    sim::LogLine(sim::LogLevel::kInfo, "fvsst", now)
        << "budget trigger: rescheduled to "
        << result.total_cpu_power_w << "W (limit "
        << budget_.effective_limit_w() << "W)";
  }
}

double FvsstDaemon::cpu_energy_j(std::size_t cpu) const {
  return loop_->cpu_energy_j(cpu, sim_.now());
}

double FvsstDaemon::cpu_mean_power_w(std::size_t cpu) const {
  return loop_->cpu_mean_power_w(cpu, sim_.now());
}

}  // namespace fvsst::core
