#include "core/estimators.h"

#include <algorithm>
#include <cmath>

namespace fvsst::core {
namespace {

constexpr double kMinInstructions = 1e3;

bool usable(const CounterObservation& obs) {
  return obs.delta.instructions >= kMinInstructions &&
         obs.delta.cycles > 0.0 && obs.measured_hz > 0.0;
}

}  // namespace

WorkloadEstimate TwoPointEstimator::estimate(const CounterObservation& a,
                                             const CounterObservation& b) {
  WorkloadEstimate est;
  if (!usable(a) || !usable(b)) return est;
  const double f1 = a.measured_hz, f2 = b.measured_hz;
  const double f_hi = std::max(f1, f2);
  if (std::abs(f1 - f2) < kMinSeparation * f_hi) return est;

  const double cpi1 = a.delta.cycles / a.delta.instructions;
  const double cpi2 = b.delta.cycles / b.delta.instructions;
  // CPI(f) = 1/alpha + M*f  =>  M from the slope, 1/alpha from either point.
  double m = (cpi1 - cpi2) / (f1 - f2);
  m = std::max(m, 0.0);  // noise/non-stationarity can push it negative
  const double alpha_inv = std::max(cpi1 - m * f1, 0.1);

  est.mem_time_per_instr = m;
  est.alpha_inv = alpha_inv;
  est.valid = true;
  return est;
}

BoundsEstimator::BoundsEstimator(const mach::MemoryLatencies& nominal,
                                 double lo_scale, double hi_scale) {
  lo_ = {nominal.t_l2 * lo_scale, nominal.t_l3 * lo_scale,
         nominal.t_mem * lo_scale};
  hi_ = {nominal.t_l2 * hi_scale, nominal.t_l3 * hi_scale,
         nominal.t_mem * hi_scale};
}

EstimateBounds BoundsEstimator::estimate(const CounterObservation& obs) const {
  // Both bound lines must pass through the observation:
  //   CPI_pred(f) = CPI_obs + M_bound * (f - f_meas).
  // Since the true M lies between the two bound slopes, the true CPI line
  // is bracketed at every frequency.  When a bound's implied 1/alpha falls
  // below the physical floor, that latency assumption is infeasible given
  // the observation; the slope is reduced to the steepest feasible one
  // (instead of breaking the line the way a plain clamp would).
  EstimateBounds out;
  if (!usable(obs)) return out;
  const double cpi_obs = obs.delta.cycles / obs.delta.instructions;
  const double f = obs.measured_hz;
  constexpr double kAlphaInvFloor = 0.1;

  auto bound_estimate = [&](const mach::MemoryLatencies& lat) {
    WorkloadEstimate est;
    double m = (obs.delta.l2_accesses * lat.t_l2 +
                obs.delta.l3_accesses * lat.t_l3 +
                obs.delta.mem_accesses * lat.t_mem) /
               obs.delta.instructions;
    double alpha_inv = cpi_obs - m * f;
    if (alpha_inv < kAlphaInvFloor) {
      alpha_inv = kAlphaInvFloor;
      m = std::max((cpi_obs - kAlphaInvFloor) / f, 0.0);
    }
    est.alpha_inv = alpha_inv;
    est.mem_time_per_instr = m;
    est.valid = true;
    return est;
  };
  out.best = bound_estimate(lo_);
  out.worst = bound_estimate(hi_);
  out.valid = true;
  return out;
}

double BoundsEstimator::worst_case_loss(const EstimateBounds& bounds,
                                        double hz, double f_max) {
  if (!bounds.valid) return 0.0;
  double worst = 0.0;
  for (const WorkloadEstimate* est : {&bounds.best, &bounds.worst}) {
    const IpcPredictor pred(mach::MemoryLatencies{});  // latencies unused
    const double loss = perf_loss(pred.predict_performance(*est, f_max),
                                  pred.predict_performance(*est, hz));
    worst = std::max(worst, loss);
  }
  return worst;
}

}  // namespace fvsst::core
