#include "core/tree_daemon.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace fvsst::core {

namespace {

/// Tree coordinator ids in FaultPlan coordinator-fault targets: 0 is the
/// primary root, 1 the standby root, 2 + s the leaf coordinator of shard
/// s.  (Aggregate-tier faults are modelled through their links.)
constexpr int kLeafCoordinatorBase = 2;

bool tables_equal(const mach::FrequencyTable& a,
                  const mach::FrequencyTable& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].hz != b[i].hz || a[i].volts != b[i].volts ||
        a[i].watts != b[i].watts) {
      return false;
    }
  }
  return true;
}

}  // namespace

TreeDaemon::TreeDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
                       const mach::FrequencyTable& table,
                       power::PowerBudget& budget, TreeDaemonConfig config)
    : sim_(sim),
      cluster_(cluster),
      budget_(budget),
      config_(std::move(config)),
      table_(table),
      shard_map_(cluster, config_.shards
                              ? config_.shards
                              : cluster::ShardMap::auto_shards(
                                    cluster.node_count())),
      up_leaf_channel_(sim, config_.link_latency_s, 0.0, sim::Rng(0x7e01)),
      up_root_channel_(sim, config_.link_latency_s, 0.0, sim::Rng(0x7e02)),
      down_root_channel_(sim, config_.link_latency_s, 0.0, sim::Rng(0x7e03)),
      down_leaf_channel_(sim, config_.link_latency_s, 0.0, sim::Rng(0x7e04)) {
  if (table_.size() == 0) {
    throw std::invalid_argument("TreeDaemon: empty operating-point table");
  }
  if (config_.t_sample_s <= 0.0 || config_.schedule_every_n_samples < 1) {
    throw std::invalid_argument("TreeDaemon: bad sampling configuration");
  }
  for (std::size_t n = 0; n < cluster_.node_count(); ++n) {
    if (!tables_equal(cluster_.node(n).machine().freq_table, table_)) {
      throw std::invalid_argument(
          "TreeDaemon: tree topology requires a homogeneous cluster (every "
          "node sharing one operating-point table); heterogeneous clusters "
          "keep the flat daemon");
    }
  }

  start_t_ = sim_.now();
  total_cpus_ = shard_map_.total_cpus();
  pw_uw_.resize(table_.size());
  for (std::size_t b = 0; b < table_.size(); ++b) {
    pw_uw_[b] = to_microwatts(table_[b].watts);
  }

  shards_ = cluster::make_shards(cluster_, shard_map_);

  const mach::MemoryLatencies& latencies =
      cluster_.node(0).machine().latencies;
  scheduler_ = std::make_unique<FrequencyScheduler>(table_, latencies,
                                                    config_.scheduler);

  // Leaves: one coordinator per shard, sampling only its slab.
  leaves_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Leaf& leaf = leaves_[s];
    leaf.id = s;
    const cluster::ShardSpan& span = shard_map_.span(s);
    std::vector<cluster::ProcAddress> procs;
    procs.reserve(span.cpu_count);
    for (std::size_t n = span.first_node; n < span.end_node(); ++n) {
      for (std::size_t c = 0; c < cluster_.node(n).cpu_count(); ++c) {
        procs.push_back({n, c});
      }
    }
    leaf.sampler = std::make_unique<SimCoreSampler>(
        cluster_, std::move(procs), SimCoreSampler::ResetPolicy::kOnElapsed,
        start_t_);
    IpcEstimator::Options est;
    est.idle_signal = config_.idle_signal;
    est.halted_idle_threshold = config_.halted_idle_threshold;
    leaf.estimator = std::make_unique<IpcEstimator>(latencies, est);
    leaf.views.resize(span.cpu_count);
    leaf.desired.assign(span.cpu_count, 0);
    leaf.granted.reserve(span.cpu_count);
    leaf.last_grant_t = start_t_;
  }

  // Aggregate tier: contiguous leaf ranges, ~sqrt(shards) groups.
  std::size_t aggs = config_.aggregates;
  if (aggs == 0) {
    aggs = static_cast<std::size_t>(
        std::llround(std::sqrt(static_cast<double>(shards_.size()))));
  }
  aggs = std::min(std::max<std::size_t>(aggs, 1), shards_.size());
  agg_children_.resize(aggs);
  leaf_agg_.resize(shards_.size());
  for (std::size_t a = 0, next = 0; a < aggs; ++a) {
    const std::size_t end = ((a + 1) * shards_.size()) / aggs;
    for (; next < end; ++next) {
      agg_children_[a].push_back(next);
      leaf_agg_[next] = a;
    }
  }
  agg_child_mail_.resize(aggs);
  agg_child_have_.resize(aggs);
  for (std::size_t a = 0; a < aggs; ++a) {
    agg_child_mail_[a].resize(agg_children_[a].size());
    agg_child_have_[a].assign(agg_children_[a].size(), 0);
  }

  primary_.id = 0;
  primary_.leader = true;
  standby_.id = 1;
  for (RootState* root : {&primary_, &standby_}) {
    root->agg_mail.resize(aggs);
    root->agg_have.assign(aggs, 0);
    root->agg_above.assign(aggs, 0);
    root->last_decide_t = start_t_;
  }
  const double period_T =
      config_.t_sample_s * config_.schedule_every_n_samples;
  root_watch_ =
      cluster::FailureDetector(config_.takeover_factor * period_T, start_t_);

  // Session layers, one per physical hop.  The leaf-edge transports key
  // their sessions (and the channel fault shim) by leaf id; the backbone
  // transports by aggregate id.
  cluster::TransportOptions topts;
  topts.mode = config_.transport;
  topts.round_period_s = period_T;
  up_leaf_ = std::make_unique<cluster::Transport>(
      sim_, up_leaf_channel_, config_.fault_plan, topts, shards_.size(), aggs,
      "up");
  up_root_ = std::make_unique<cluster::Transport>(
      sim_, up_root_channel_, config_.fault_plan, topts, aggs, 2, "up");
  down_root_ = std::make_unique<cluster::Transport>(
      sim_, down_root_channel_, config_.fault_plan, topts, aggs, 1, "down");
  down_leaf_ = std::make_unique<cluster::Transport>(
      sim_, down_leaf_channel_, config_.fault_plan, topts, shards_.size(), 1,
      "down");

  protocol_visible_ = config_.journal != nullptr && config_.standby_root;
  transport_visible_ =
      config_.journal != nullptr &&
      (config_.transport == cluster::TransportMode::kReliable ||
       (config_.fault_plan != nullptr && !config_.fault_plan->empty()));
  wire_transport_hooks(*up_leaf_);
  wire_transport_hooks(*up_root_);
  wire_transport_hooks(*down_root_);
  wire_transport_hooks(*down_leaf_);

  step_pool_ = std::make_unique<cluster::StepPool>(config_.step_threads);

  power_trace_ = &telemetry_.series(
      telemetry_.intern_series("tree/granted_power_w", "granted_power_w"));

  if (config_.journal) {
    sim::Event& meta =
        config_.journal->append(start_t_, sim::EventType::kRunMeta);
    meta.set("t_sample_s", config_.t_sample_s)
        .set("multiplier", static_cast<double>(config_.schedule_every_n_samples))
        .set("cpus", static_cast<double>(total_cpus_))
        .set("t_restarts", 0.0)
        .set("daemon", std::string("tree"));
    if (config_.journal_topology) {
      meta.set("shards", static_cast<double>(shards_.size()))
          .set("aggregates", static_cast<double>(aggs))
          .set("link_latency_s", config_.link_latency_s);
    }
    for (std::size_t b = 0; b < table_.size(); ++b) {
      config_.journal->append(start_t_, sim::EventType::kTablePoint, -1)
          .set("hz", table_[b].hz)
          .set("volts", table_[b].volts)
          .set("watts", table_[b].watts);
    }
    if (protocol_visible_) {
      config_.journal->append(start_t_, sim::EventType::kEpochChange)
          .set("epoch", static_cast<double>(epoch_))
          .set("coordinator", 0.0)
          .set("reason", std::string("boot"));
    }
  }

  if (config_.monitor) {
    mon_lag_ = config_.monitor->input("aggregation_lag_s");
    mon_over_budget_ = config_.monitor->input("over_budget_w");
    mon_since_round_ = config_.monitor->input("since_round_s");
    mon_failsafe_frac_ = config_.monitor->input("failsafe_frac");
    mon_last_round_t_ = start_t_;
  }
  last_sample_t_ = start_t_;
  last_apply_t_ = start_t_;

  budget_.on_change([this](double effective_w) {
    const double now = sim_.now();
    if (config_.journal) {
      config_.journal->append(now, sim::EventType::kBudgetChange)
          .set("budget_w", effective_w);
    }
    RootState& leader = primary_.leader ? primary_ : standby_;
    if (!root_down(leader, now) && leader.any_mail()) {
      root_decide(leader, CycleTrigger::kBudget);
    }
  });

  event_driven_ = config_.advance_mode == AdvanceMode::kEvent;
  const double t = config_.t_sample_s;
  grid_origin_ = start_t_ + t;
  if (event_driven_) {
    for (cluster::Shard& shard : shards_) {
      for (std::size_t i = 0; i < shard.core_count(); ++i) {
        shard.core(i).set_sampling_grid(grid_origin_, t, 0.0,
                                        /*record_history=*/true);
      }
    }
  } else {
    tick_event_ = sim_.schedule_every(t, [this] { on_tick(); });
  }
  // Both modes place the summary instant on the tick lattice with the same
  // arithmetic as Core's sampling grid (origin + j*t, integer j) — the
  // flat daemon's idiom.  Repeated-addition re-arm (schedule_every) would
  // drift by an ulp from the grid after a few rounds, and the round
  // timestamps would then differ between tick and event journals.
  next_summary_k_ = static_cast<std::uint64_t>(config_.schedule_every_n_samples);
  schedule_summary_wake();
}

void TreeDaemon::schedule_summary_wake() {
  summary_wake_event_ = sim_.schedule_at(
      grid_origin_ +
          static_cast<double>(next_summary_k_ - 1) * config_.t_sample_s,
      [this] { on_summary_wake(); });
}

TreeDaemon::~TreeDaemon() {
  if (tick_event_) sim_.cancel(tick_event_);
  if (summary_wake_event_) sim_.cancel(summary_wake_event_);
}

std::size_t TreeDaemon::failsafe_shard_count() const {
  std::size_t n = 0;
  for (const Leaf& leaf : leaves_) n += leaf.failsafe ? 1 : 0;
  return n;
}

std::uint64_t TreeDaemon::cores_advanced() const {
  std::uint64_t n = 0;
  for (const cluster::Shard& shard : shards_) n += shard.cores_advanced();
  return n;
}

// --------------------------------------------------------------------------
// Time advance
// --------------------------------------------------------------------------

void TreeDaemon::presync_shards(double now) {
  // Batched SoA sweep, one contiguous slab per pool task.  Unlike the flat
  // daemon, crashed nodes keep advancing: a node crash downs the *agent*
  // (no summaries, no applies), not the machine — and the unconditional
  // sweep is what keeps tick and event advance bit-identical under faults.
  step_pool_->run(shards_.size(),
                  [this, now](std::size_t s) { shards_[s].advance_to(now); });
}

void TreeDaemon::on_tick() {
  // Tick mode: per-t collection only.  The summary instant runs on its own
  // lattice event (schedule_summary_wake) in both modes; a tick coinciding
  // with it contributes a zero-length slice whichever runs first.
  const double now = sim_.now();
  presync_shards(now);
  for (Leaf& leaf : leaves_) leaf.sampler->collect();
}

void TreeDaemon::on_summary_wake() {
  const double now = sim_.now();
  presync_shards(now);  // event mode: grid subdivision replays skipped ticks
  for (Leaf& leaf : leaves_) leaf.sampler->collect();
  summary_instant(now);
  next_summary_k_ +=
      static_cast<std::uint64_t>(config_.schedule_every_n_samples);
  schedule_summary_wake();
}

// --------------------------------------------------------------------------
// Round pipeline
// --------------------------------------------------------------------------

void TreeDaemon::summary_instant(double now) {
  maybe_take_over(now);
  failsafe_check(now);

  ++round_seq_;
  last_sample_t_ = now;
  agg_flushed_ = 0;

  // Close every leaf's interval and launch its summary (deliveries land at
  // now + L, in leaf order).  The aggregate flushes are scheduled *after*
  // the send loop, so at now + L the FIFO queue runs every delivery before
  // any flush.
  for (Leaf& leaf : leaves_) leaf_close_interval(leaf, now);
  for (std::size_t a = 0; a < agg_children_.size(); ++a) {
    sim_.schedule_at(now + config_.link_latency_s,
                     [this, a] { agg_flush(a); });
  }

  monitor_sample(now);
}

void TreeDaemon::leaf_close_interval(Leaf& leaf, double now) {
  if (leaf_down(leaf.id, now)) return;  // coordinator down: no close, no send

  cluster::Shard& shard = shards_[leaf.id];
  leaf.sampler->end_interval(now, leaf.interval);
  leaf.estimator->update(leaf.interval, leaf.views);

  // The paper's pass 1, leaf-locally: an unbounded budget never triggers
  // pass-2 downgrades, so decisions[i].hz IS the desired operating point.
  const ScheduleResult result = scheduler_->schedule(
      leaf.views, std::numeric_limits<double>::infinity());

  ShardSummary summary;
  summary.round = round_seq_;
  summary.desired.assign(table_.size(), 0);
  for (std::size_t i = 0; i < leaf.views.size(); ++i) {
    const std::size_t idx = *table_.index_of(result.decisions[i].hz);
    leaf.desired[i] = static_cast<std::uint16_t>(idx);
    if (node_crashed(shard.node_of_core(i), now)) continue;  // agent down
    summary.desired[idx] += 1;
    summary.cpus += 1;
    summary.idle += leaf.views[i].idle ? 1 : 0;
    summary.desired_power_uw += pw_uw_[idx];
  }

  ++summaries_sent_;
  summary_bytes_sent_ += summary.wire_bytes();
  if (config_.journal && config_.journal_topology) {
    config_.journal->append(now, sim::EventType::kAggregation)
        .set("tier", 0.0)
        .set("shard", static_cast<double>(leaf.id))
        .set("cpus", static_cast<double>(summary.cpus))
        .set("bytes", static_cast<double>(summary.wire_bytes()))
        .set("mailbox", static_cast<double>(leaf.views.size()));
  }

  const std::size_t lid = leaf.id;
  const std::size_t agg = leaf_agg_[lid];
  const std::size_t child = lid - agg_children_[agg].front();
  cluster::Envelope env;
  env.epoch = leaf.fence.current();
  env.sender = static_cast<int>(lid);
  up_leaf_->send(
      static_cast<int>(lid), env, down_leaf_->node_ack(static_cast<int>(lid)),
      /*track=*/false,
      [this, lid, agg, child, summary](const cluster::Frame& frame) {
        if (cluster::frame_corrupt(frame)) {
          if (config_.journal && transport_visible_) {
            config_.journal
                ->append(sim_.now(), sim::EventType::kMessageCorrupt)
                .set("node", static_cast<double>(lid))
                .set("direction", std::string("up"));
          }
          return;
        }
        if (up_leaf_->receive_at_coordinator(static_cast<int>(agg),
                                             static_cast<int>(lid), frame) !=
            cluster::Transport::Verdict::kDeliver) {
          return;
        }
        down_leaf_->on_ack(static_cast<int>(lid), frame.envelope.epoch,
                           frame.ack);
        agg_child_mail_[agg][child] = summary;
        agg_child_have_[agg][child] = 1;
      });
}

void TreeDaemon::agg_flush(std::size_t agg) {
  const double now = sim_.now();
  ++agg_flushed_;
  const bool last = agg_flushed_ == agg_children_.size();

  bool any = false;
  ShardSummary merged;
  merged.desired.assign(table_.size(), 0);
  for (std::size_t c = 0; c < agg_child_mail_[agg].size(); ++c) {
    if (!agg_child_have_[agg][c]) continue;
    merged.merge(agg_child_mail_[agg][c]);
    any = true;
  }
  if (any) {
    if (config_.journal && config_.journal_topology) {
      config_.journal->append(now, sim::EventType::kAggregation)
          .set("tier", 1.0)
          .set("agg", static_cast<double>(agg))
          .set("cpus", static_cast<double>(merged.cpus))
          .set("bytes", static_cast<double>(merged.wire_bytes()))
          .set("mailbox", static_cast<double>(agg_child_mail_[agg].size()));
    }
    ++summaries_sent_;
    summary_bytes_sent_ += merged.wire_bytes();
    cluster::Envelope env;
    env.sender = static_cast<int>(agg);
    up_root_->send(
        static_cast<int>(agg), env,
        down_root_->node_ack(static_cast<int>(agg)), /*track=*/false,
        [this, agg, merged](const cluster::Frame& frame) {
          if (cluster::frame_corrupt(frame)) {
            if (config_.journal && transport_visible_) {
              config_.journal
                  ->append(sim_.now(), sim::EventType::kMessageCorrupt)
                  .set("node", static_cast<double>(agg))
                  .set("direction", std::string("up"));
            }
            return;
          }
          down_root_->on_ack(static_cast<int>(agg), frame.envelope.epoch,
                             frame.ack);
          const double t_rx = sim_.now();
          for (RootState* root : {&primary_, &standby_}) {
            if (root->id == 1 && !config_.standby_root) continue;
            if (root_down(*root, t_rx)) continue;  // down: mailbox misses it
            if (up_root_->receive_at_coordinator(
                    root->id, static_cast<int>(agg), frame) !=
                cluster::Transport::Verdict::kDeliver) {
              continue;
            }
            root->agg_mail[agg] = merged;
            root->agg_have[agg] = 1;
          }
        });
  }

  // The last flush of the instant schedules the root decision: its own
  // upward sends (and every earlier flush's) are already enqueued for
  // now + L, so the decision runs after all of this round's deliveries.
  if (last) {
    sim_.schedule_at(now + config_.link_latency_s, [this] { root_flush(); });
  }
}

void TreeDaemon::root_flush() {
  const double now = sim_.now();
  RootState& leader = primary_.leader ? primary_ : standby_;
  if (root_down(leader, now)) return;  // leaves fail-safe; standby claims
  if (!leader.any_mail()) return;
  root_decide(leader, CycleTrigger::kTimer);
}

void TreeDaemon::root_decide(RootState& root, CycleTrigger trigger) {
  const double now = sim_.now();

  totals_scratch_ = ShardSummary{};
  totals_scratch_.desired.assign(table_.size(), 0);
  std::size_t summaries = 0;
  for (std::size_t a = 0; a < root.agg_mail.size(); ++a) {
    if (!root.agg_have[a]) continue;
    totals_scratch_.merge(root.agg_mail[a]);
    ++summaries;
  }

  const double budget_w = budget_.effective_limit_w();
  const CapProfile profile =
      compute_cap_profile(totals_scratch_, table_, budget_w);

  for (std::size_t a = 0; a < root.agg_mail.size(); ++a) {
    root.agg_above[a] =
        root.agg_have[a] ? root.agg_mail[a].above(profile.cap) : 0;
  }
  const std::vector<std::uint64_t> quotas =
      split_quota(root.agg_above, profile.promote);

  if (config_.journal) {
    sim::Event& e =
        config_.journal->append(now, sim::EventType::kAggregation);
    e.set("round", static_cast<double>(totals_scratch_.round))
        .set("cpus", static_cast<double>(totals_scratch_.cpus))
        .set("idle", static_cast<double>(totals_scratch_.idle))
        .set("desired_power_w",
             static_cast<double>(totals_scratch_.desired_power_uw) * 1e-6)
        .set("power_w", static_cast<double>(profile.power_uw) * 1e-6)
        .set("budget_w", budget_w)
        .set("cap_hz", table_[profile.cap].hz)
        .set("promoted", static_cast<double>(profile.promote))
        .set("feasible", profile.feasible ? 1.0 : 0.0)
        .set("lag_s", now - last_sample_t_)
        .set("trigger", std::string(cycle_trigger_name(trigger)));
    if (config_.journal_topology) {
      e.set("tier", 2.0)
          .set("summaries", static_cast<double>(summaries))
          .set("coordinator", static_cast<double>(root.id));
    }
    if (!profile.feasible) {
      config_.journal->append(now, sim::EventType::kInfeasibleBudget)
          .set("budget_w", budget_w)
          .set("total_power_w",
               static_cast<double>(profile.power_uw) * 1e-6);
    }
  }

  power_trace_->add(now, static_cast<double>(profile.power_uw) * 1e-6);
  root_watch_.heard(now);  // the standby hears the leader's round broadcast
  root.last_decide_t = now;
  if (config_.monitor) mon_last_round_t_ = now;

  for (std::size_t a = 0; a < agg_children_.size(); ++a) {
    Grant grant;
    grant.round = totals_scratch_.round;
    grant.sample_t = last_sample_t_;
    grant.cap = static_cast<std::uint32_t>(profile.cap);
    grant.quota = quotas[a];
    grant.feasible = profile.feasible;
    cluster::Envelope env;
    env.epoch = epoch_;
    env.sender = root.id;
    down_root_->send(static_cast<int>(a), env, /*ack=*/0,
                     /*track=*/down_root_->reliable(),
                     [this, a, grant](const cluster::Frame& frame) {
                       agg_receive_down(a, grant, frame);
                     });
  }
}

void TreeDaemon::agg_receive_down(std::size_t agg, const Grant& grant,
                                  const cluster::Frame& frame) {
  if (cluster::frame_corrupt(frame)) {
    if (config_.journal && transport_visible_) {
      config_.journal->append(sim_.now(), sim::EventType::kMessageCorrupt)
          .set("node", static_cast<double>(agg))
          .set("direction", std::string("down"));
    }
    return;
  }
  if (down_root_->receive_at_node(static_cast<int>(agg), frame) !=
      cluster::Transport::Verdict::kDeliver) {
    if (config_.journal && transport_visible_) {
      config_.journal->append(sim_.now(), sim::EventType::kMessageDuplicate)
          .set("node", static_cast<double>(agg))
          .set("seq", static_cast<double>(frame.seq))
          .set("direction", std::string("down"));
    }
    return;
  }

  // Split this subtree's promotion quota over the child leaves in child
  // (= flat shard) order, by each child's above-cap demand.
  std::uint64_t remaining = grant.quota;
  for (std::size_t c = 0; c < agg_children_[agg].size(); ++c) {
    const std::size_t leaf = agg_children_[agg][c];
    std::uint64_t share = 0;
    if (remaining > 0 && agg_child_have_[agg][c]) {
      share = std::min<std::uint64_t>(
          remaining, agg_child_mail_[agg][c].above(grant.cap));
      remaining -= share;
    }
    Grant forwarded = grant;
    forwarded.quota = share;
    down_leaf_->send(static_cast<int>(leaf), frame.envelope, /*ack=*/0,
                     /*track=*/down_leaf_->reliable(),
                     [this, leaf, forwarded](const cluster::Frame& f) {
                       leaf_apply(leaf, forwarded, f);
                     });
  }
}

void TreeDaemon::leaf_apply(std::size_t leaf_id, const Grant& grant,
                            const cluster::Frame& frame) {
  const double now = sim_.now();
  if (cluster::frame_corrupt(frame)) {
    if (config_.journal && transport_visible_) {
      config_.journal->append(now, sim::EventType::kMessageCorrupt)
          .set("node", static_cast<double>(leaf_id))
          .set("direction", std::string("down"));
    }
    return;
  }
  if (leaf_down(leaf_id, now)) {
    journal_message_lost(static_cast<int>(leaf_id), "down", "fault");
    return;
  }
  if (down_leaf_->receive_at_node(static_cast<int>(leaf_id), frame) !=
      cluster::Transport::Verdict::kDeliver) {
    if (config_.journal && transport_visible_) {
      config_.journal->append(now, sim::EventType::kMessageDuplicate)
          .set("node", static_cast<double>(leaf_id))
          .set("seq", static_cast<double>(frame.seq))
          .set("direction", std::string("down"));
    }
    return;
  }
  Leaf& leaf = leaves_[leaf_id];
  if (!leaf.fence.admit(frame.envelope.epoch)) {
    if (config_.journal && protocol_visible_) {
      config_.journal->append(now, sim::EventType::kSettingsRejected)
          .set("node", static_cast<double>(leaf_id))
          .set("msg_epoch", static_cast<double>(frame.envelope.epoch))
          .set("epoch", static_cast<double>(leaf.fence.current()));
    }
    return;
  }

  // Commit through the shard's deferred queue: applies stay an ordered,
  // shard-local serial effect even though the sweeps run on the pool.
  cluster::Shard& shard = shards_[leaf_id];
  shard.enqueue([this, &leaf, &shard, grant, now] {
    const auto cap = static_cast<std::uint16_t>(grant.cap);
    std::uint64_t left = grant.quota;
    for (std::size_t i = 0; i < shard.core_count(); ++i) {
      if (node_crashed(shard.node_of_core(i), now)) continue;  // agent down
      const std::uint16_t d = leaf.desired[i];
      std::uint16_t g = d;
      if (d > cap) {
        if (left > 0) {
          --left;
          g = static_cast<std::uint16_t>(cap + 1);
        } else {
          g = cap;
        }
      }
      const double hz = table_[g].hz;
      cpu::Core& core = shard.core(i);
      if (core.frequency_hz() != hz) core.set_frequency(hz);
    }
  });
  shard.drain();

  leaf.last_grant_t = now;
  if (leaf.failsafe) {
    leaf.failsafe = false;
    if (config_.journal && config_.journal_topology) {
      config_.journal->append(now, sim::EventType::kDegradedMode)
          .set("state", std::string("exit"))
          .set("reason", std::string("root_silent"))
          .set("shard", static_cast<double>(leaf_id));
    }
    // The default journal records only the aggregate transition (emitted
    // when the *last* fail-safe shard recovers): per-shard events would
    // make the default journal depend on the shard count.
    if (config_.journal && !config_.journal_topology &&
        failsafe_shard_count() == 0) {
      config_.journal->append(now, sim::EventType::kDegradedMode)
          .set("state", std::string("exit"))
          .set("reason", std::string("root_silent"));
    }
  }
  if (grant.round >= last_applied_round_) {
    last_apply_t_ = now;
    last_lag_s_ = now - grant.sample_t;
    if (grant.round > last_applied_round_) {
      last_applied_round_ = grant.round;
      ++rounds_applied_;
    }
  }
  if (config_.journal && config_.journal_topology) {
    config_.journal->append(now, sim::EventType::kActuation)
        .set("stage", std::string("shard_apply"))
        .set("shard", static_cast<double>(leaf_id))
        .set("round", static_cast<double>(grant.round))
        .set("quota", static_cast<double>(grant.quota));
  }
}

// --------------------------------------------------------------------------
// Protocol helpers
// --------------------------------------------------------------------------

bool TreeDaemon::leaf_down(std::size_t leaf, double now) const {
  if (!config_.fault_plan) return false;
  const int target = kLeafCoordinatorBase + static_cast<int>(leaf);
  return config_.fault_plan->active(sim::FaultKind::kCoordinatorCrash, target,
                                    now) != nullptr ||
         config_.fault_plan->active(sim::FaultKind::kPartition, target,
                                    now) != nullptr;
}

bool TreeDaemon::node_crashed(std::size_t node, double now) const {
  if (!config_.fault_plan) return false;
  return config_.fault_plan->active(sim::FaultKind::kNodeCrash,
                                    static_cast<int>(node), now) != nullptr;
}

bool TreeDaemon::root_down(const RootState& root, double now) const {
  if (!config_.fault_plan) return false;
  return config_.fault_plan->active(sim::FaultKind::kCoordinatorCrash,
                                    root.id, now) != nullptr ||
         config_.fault_plan->active(sim::FaultKind::kPartition, root.id,
                                    now) != nullptr;
}

void TreeDaemon::maybe_take_over(double now) {
  if (!config_.standby_root || standby_.leader) return;
  if (!root_watch_.expired(now)) return;
  if (root_down(standby_, now)) return;  // the standby is down too
  epoch_ = cluster::claim_epoch(epoch_, standby_.id);
  primary_.leader = false;
  standby_.leader = true;
  // A deposed primary's tracked grants drain instead of fighting the new
  // epoch; elections are round-granular, so no jitter is needed (one
  // standby, no contention) and tick/event advance stay identical.
  down_root_->fence(epoch_);
  down_leaf_->fence(epoch_);
  root_watch_.heard(now);
  if (config_.journal && protocol_visible_) {
    config_.journal->append(now, sim::EventType::kEpochChange)
        .set("epoch", static_cast<double>(epoch_))
        .set("coordinator", static_cast<double>(standby_.id))
        .set("reason", std::string("takeover"));
  }
}

void TreeDaemon::failsafe_check(double now) {
  if (config_.failsafe_factor <= 0.0) return;
  const double threshold = config_.failsafe_factor * config_.t_sample_s *
                           config_.schedule_every_n_samples;
  const bool none_before = failsafe_shard_count() == 0;
  std::size_t entered_cpus = 0;
  double entered_hz = 0.0;
  for (Leaf& leaf : leaves_) {
    if (leaf.failsafe || leaf_down(leaf.id, now)) continue;
    if (now - leaf.last_grant_t <= threshold) continue;
    // Root silent past the threshold: the shard drops to the autonomous
    // budget/N share, the same per-CPU convention as the flat daemon.
    const double hz = failsafe_hz();
    cluster::Shard& shard = shards_[leaf.id];
    for (std::size_t i = 0; i < shard.core_count(); ++i) {
      if (node_crashed(shard.node_of_core(i), now)) continue;
      cpu::Core& core = shard.core(i);
      if (core.frequency_hz() != hz) core.set_frequency(hz);
    }
    leaf.failsafe = true;
    entered_cpus += shard.core_count();
    entered_hz = hz;
    if (config_.journal && config_.journal_topology) {
      config_.journal->append(now, sim::EventType::kDegradedMode)
          .set("state", std::string("enter"))
          .set("reason", std::string("root_silent"))
          .set("shard", static_cast<double>(leaf.id))
          .set("hz", hz);
    }
  }
  // Default journal: one aggregate entry per outage.  Global root silence
  // drops every shard at the same summary instant, so the CPU count (and
  // the event itself) cannot depend on how the cluster is sharded.
  if (config_.journal && !config_.journal_topology && none_before &&
      entered_cpus > 0) {
    config_.journal->append(now, sim::EventType::kDegradedMode)
        .set("state", std::string("enter"))
        .set("reason", std::string("root_silent"))
        .set("cpus", static_cast<double>(entered_cpus))
        .set("hz", entered_hz);
  }
}

double TreeDaemon::failsafe_hz() const {
  const double share =
      budget_.effective_limit_w() / static_cast<double>(total_cpus_);
  const auto point = table_.highest_under_power(share);
  return point ? point->hz : table_[0].hz;
}

void TreeDaemon::monitor_sample(double now) {
  if (!config_.monitor) return;
  sim::monitor::Monitor& mon = *config_.monitor;
  mon.observe(mon_lag_, now, now - last_apply_t_);
  mon.observe(mon_over_budget_, now,
              cluster_.cpu_power_w() - budget_.effective_limit_w());
  mon.observe(mon_since_round_, now, now - mon_last_round_t_);
  mon.observe(mon_failsafe_frac_, now,
              static_cast<double>(failsafe_shard_count()) /
                  static_cast<double>(leaves_.size()));
  mon.evaluate(now);
}

void TreeDaemon::journal_message_lost(int child, const char* direction,
                                      const char* cause) {
  if (!config_.journal || !transport_visible_) return;
  config_.journal->append(sim_.now(), sim::EventType::kMessageLost)
      .set("node", static_cast<double>(child))
      .set("direction", std::string(direction))
      .set("cause", std::string(cause));
}

void TreeDaemon::wire_transport_hooks(cluster::Transport& transport) {
  cluster::Transport::Hooks hooks;
  const char* direction = transport.direction();
  hooks.on_fault_drop = [this, direction](int node) {
    journal_message_lost(node, direction, "fault");
  };
  hooks.on_retransmit = [this, direction](int node, std::uint64_t seq,
                                          int attempt) {
    if (!config_.journal || !transport_visible_) return;
    config_.journal->append(sim_.now(), sim::EventType::kMessageRetransmit)
        .set("node", static_cast<double>(node))
        .set("seq", static_cast<double>(seq))
        .set("attempt", static_cast<double>(attempt))
        .set("direction", std::string(direction));
  };
  hooks.on_expired = [this, direction](int node, std::uint64_t seq,
                                       int attempts, const char* cause) {
    if (!config_.journal || !transport_visible_) return;
    config_.journal->append(sim_.now(), sim::EventType::kMessageExpired)
        .set("node", static_cast<double>(node))
        .set("seq", static_cast<double>(seq))
        .set("attempts", static_cast<double>(attempts))
        .set("cause", std::string(cause))
        .set("direction", std::string(direction));
  };
  transport.set_hooks(std::move(hooks));
}

}  // namespace fvsst::core
