#include "core/coordinator.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "simkit/log.h"

namespace fvsst::core {

// ---------------------------------------------------------------------------
// Snapshot serialisation: fixed-width little-endian fields with a trailing
// FNV-1a checksum, so a torn or bit-rotted snapshot is detected and
// discarded instead of half-applied.
// ---------------------------------------------------------------------------

namespace {

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_double(std::string& out, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  put_u64(out, bits);
}

bool get_u64(const std::string& in, std::size_t& pos, std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return true;
}

bool get_double(const std::string& in, std::size_t& pos, double& d) {
  std::uint64_t bits = 0;
  if (!get_u64(in, pos, bits)) return false;
  std::memcpy(&d, &bits, sizeof d);
  return true;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

bool get_vector(const std::string& in, std::size_t& pos,
                std::vector<double>& out) {
  std::uint64_t count = 0;
  if (!get_u64(in, pos, count)) return false;
  if (count > (in.size() - pos) / 8) return false;  // Impossible length.
  out.resize(static_cast<std::size_t>(count));
  for (auto& v : out) {
    if (!get_double(in, pos, v)) return false;
  }
  return true;
}

}  // namespace

std::string CoordinatorSnapshot::encode() const {
  std::string body;
  put_u64(body, epoch);
  put_u64(body, round);
  put_double(body, taken_at);
  put_double(body, budget_w);
  put_u64(body, grants_hz.size());
  for (double g : grants_hz) put_double(body, g);
  put_u64(body, last_summary_at.size());
  for (double t : last_summary_at) put_double(body, t);
  put_u64(body, fnv1a(body));
  return body;
}

std::optional<CoordinatorSnapshot> CoordinatorSnapshot::decode(
    const std::string& blob) {
  if (blob.size() < 8) return std::nullopt;
  const std::string body = blob.substr(0, blob.size() - 8);
  std::size_t sum_pos = blob.size() - 8;
  std::uint64_t stored_sum = 0;
  get_u64(blob, sum_pos, stored_sum);
  if (stored_sum != fnv1a(body)) return std::nullopt;

  CoordinatorSnapshot snap;
  std::size_t pos = 0;
  if (!get_u64(body, pos, snap.epoch)) return std::nullopt;
  if (!get_u64(body, pos, snap.round)) return std::nullopt;
  if (!get_double(body, pos, snap.taken_at)) return std::nullopt;
  if (!get_double(body, pos, snap.budget_w)) return std::nullopt;
  if (!get_vector(body, pos, snap.grants_hz)) return std::nullopt;
  if (!get_vector(body, pos, snap.last_summary_at)) return std::nullopt;
  if (pos != body.size()) return std::nullopt;
  return snap;
}

// ---------------------------------------------------------------------------
// StableStore
// ---------------------------------------------------------------------------

void StableStore::save_snapshot(const CoordinatorSnapshot& snap) {
  snapshot_blob_ = snap.encode();
  log_.clear();
}

void StableStore::append_grant(GrantRecord record) {
  log_.push_back(std::move(record));
}

StableStore::Recovery StableStore::recover() const {
  Recovery r;
  if (!snapshot_blob_.empty()) {
    r.had_snapshot = true;
    if (auto snap = CoordinatorSnapshot::decode(snapshot_blob_)) {
      r.checksum_ok = true;
      r.state = *snap;
    }
  }
  for (const auto& rec : log_) {
    r.state.epoch = std::max(r.state.epoch, rec.epoch);
    r.state.round = rec.round;
    r.state.taken_at = rec.t;
    r.state.budget_w = rec.budget_w;
    r.state.grants_hz = rec.grants_hz;
    ++r.replayed;
  }
  return r;
}

void StableStore::corrupt_snapshot_for_test(std::size_t byte_index) {
  if (byte_index < snapshot_blob_.size()) {
    snapshot_blob_[byte_index] =
        static_cast<char>(snapshot_blob_[byte_index] ^ 0x01);
  }
}

// ---------------------------------------------------------------------------
// Coordinator engine stages (moved here from ClusterDaemon: the global
// scheduler has no counters of its own; its knowledge is the mailbox).
// ---------------------------------------------------------------------------

class Coordinator::SummarySampler final : public Sampler {
 public:
  explicit SummarySampler(std::size_t cpus) : cpus_(cpus) {}

  std::size_t cpu_count() const override { return cpus_; }
  std::vector<IntervalSample> end_interval(double now) override {
    (void)now;
    return std::vector<IntervalSample>(cpus_);
  }

 private:
  std::size_t cpus_;
};

class Coordinator::MailboxEstimator final : public Estimator {
 public:
  explicit MailboxEstimator(const std::vector<ProcView>* mailbox)
      : mailbox_(mailbox) {}

  void update(const std::vector<IntervalSample>& samples,
              std::vector<ProcView>& views) override {
    (void)samples;
    views = *mailbox_;
  }

 private:
  const std::vector<ProcView>* mailbox_;
};

class Coordinator::SettingsActuator final : public Actuator {
 public:
  explicit SettingsActuator(Coordinator& coordinator)
      : coordinator_(coordinator) {}

  ActuationReport apply(const ScheduleResult& result, double now,
                        CycleTrigger trigger) override {
    (void)now;
    // Remember the grants before they leave: they are the durable state a
    // restarted coordinator resumes from, and what a leader replicates to
    // the standby over heartbeats.
    auto& grants = coordinator_.last_grants_;
    grants.resize(result.decisions.size());
    for (std::size_t i = 0; i < result.decisions.size(); ++i) {
      grants[i] = result.decisions[i].hz;
    }
    if (coordinator_.wiring_.fan_out) {
      coordinator_.wiring_.fan_out(coordinator_, result,
                                   trigger == CycleTrigger::kBudget);
    }
    // Message loss is handled by the protocol (the next round repairs a
    // lost settings message), not by per-CPU retries.
    return {};
  }

 private:
  Coordinator& coordinator_;
};

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

Coordinator::Coordinator(Wiring wiring)
    : wiring_(std::move(wiring)),
      detector_(wiring_.failover.takeover_factor * wiring_.period_s,
                wiring_.sim ? wiring_.sim->now() : 0.0) {
  std::size_t cpus = 0;
  for (const auto& [first, count] : wiring_.node_spans) {
    cpus = std::max(cpus, first + count);
  }
  mailbox_.resize(cpus);
  last_grants_.assign(cpus, 0.0);
  const double now = wiring_.sim ? wiring_.sim->now() : 0.0;
  last_summary_at_.assign(wiring_.node_spans.size(), now);
  node_silent_.assign(wiring_.node_spans.size(), 0);
  leader_ = wiring_.initially_leader;
  epoch_ = leader_ ? 1 : 0;
  build_loop();
  if (leader_) journal_epoch(now, "boot");
}

void Coordinator::build_loop() {
  // The standby keeps the journal: its engine only journals cycles while
  // it actually leads (run_round gates on leadership), so post-takeover
  // rounds stay auditable without double-journalling the shadow phase.
  std::unique_ptr<PolicyStage> policy;
  if (wiring_.policy_factory) {
    policy = wiring_.policy_factory(*wiring_.default_table, *wiring_.latencies,
                                    wiring_.scheduler);
  } else {
    policy = std::make_unique<SchedulerPolicyStage>(
        *wiring_.default_table, *wiring_.latencies, wiring_.scheduler);
  }
  loop_ = std::make_unique<ControlLoop>(
      wiring_.loop_config, std::make_unique<SummarySampler>(mailbox_.size()),
      std::make_unique<MailboxEstimator>(&mailbox_), std::move(policy),
      std::make_unique<SettingsActuator>(*this), wiring_.proc_tables,
      wiring_.telemetry);
}

std::size_t Coordinator::stale_node_count() const {
  std::size_t n = 0;
  for (char s : node_silent_) n += s ? 1 : 0;
  return n;
}

bool Coordinator::refresh_fault_state(double now) {
  const bool down =
      wiring_.faults != nullptr &&
      wiring_.faults->active(sim::FaultKind::kCoordinatorCrash, wiring_.id,
                             now) != nullptr;
  if (down && !crashed_) {
    crash(now);
  } else if (!down && crashed_) {
    restart(now);
  }
  return !crashed_;
}

bool Coordinator::partitioned(double now) const {
  return wiring_.faults != nullptr &&
         wiring_.faults->active(sim::FaultKind::kPartition, wiring_.id, now) !=
             nullptr;
}

void Coordinator::crash(double now) {
  crashed_ = true;
  if (wiring_.journal) {
    wiring_.journal->append(now, sim::EventType::kFault)
        .set("coordinator", static_cast<double>(wiring_.id))
        .set("kind", std::string("coordinator_crash"))
        .set("state", std::string("enter"));
  }
  sim::LogLine(sim::LogLevel::kWarn, "cluster-fvsst", now)
      << "coordinator " << wiring_.id << " crashed (epoch " << epoch_ << ")";
}

void Coordinator::restart(double now) {
  crashed_ = false;
  ++restarts_;

  // The crash took all RAM with it: mailbox, engine state, silent-node
  // pins.  Recover the durable half from the stable store and rebuild the
  // rest empty.
  const StableStore::Recovery rec = store_.recover();
  epoch_ = std::max(epoch_, rec.state.epoch);
  rounds_ = rec.state.round;
  if (!rec.state.grants_hz.empty()) last_grants_ = rec.state.grants_hz;
  if (rec.state.last_summary_at.size() == last_summary_at_.size()) {
    last_summary_at_ = rec.state.last_summary_at;
  } else {
    // Nothing recovered about node freshness: presume contact as of now and
    // let the silent-node accounting re-learn.
    std::fill(last_summary_at_.begin(), last_summary_at_.end(), now);
  }
  std::fill(mailbox_.begin(), mailbox_.end(), ProcView{});
  std::fill(node_silent_.begin(), node_silent_.end(), 0);
  build_loop();

  // No scheduling until one period's worth of fresh summaries has arrived:
  // a cold mailbox would read as all-idle and cold-start the cluster into
  // a power spike when real load reports back in.
  warm_until_ = now + wiring_.period_s;

  if (wiring_.failover.standby) {
    // With a standby configured, leadership is re-earned through election:
    // come back passive and let the failure detector decide (the peer may
    // have taken over with a higher epoch while we were down).
    leader_ = false;
    detector_.heard(now);
  }

  if (wiring_.journal) {
    wiring_.journal->append(now, sim::EventType::kFault)
        .set("coordinator", static_cast<double>(wiring_.id))
        .set("kind", std::string("coordinator_crash"))
        .set("state", std::string("exit"));
  }
  if (wiring_.journal && wiring_.journal_protocol) {
    wiring_.journal->append(now, sim::EventType::kSnapshot)
        .set("coordinator", static_cast<double>(wiring_.id))
        .set("epoch", static_cast<double>(epoch_))
        .set("round", static_cast<double>(rounds_))
        .set("budget_w", rec.state.budget_w)
        .set("replayed", static_cast<double>(rec.replayed))
        .set("checksum_ok", (rec.had_snapshot && !rec.checksum_ok) ? 0.0 : 1.0)
        .set("op", std::string("recover"));
  }
  sim::LogLine(sim::LogLevel::kInfo, "cluster-fvsst", now)
      << "coordinator " << wiring_.id << " restarted: epoch " << epoch_
      << ", " << rec.replayed << " grant records replayed, leader="
      << (leader_ ? 1 : 0);
}

void Coordinator::on_summary(std::size_t node, std::size_t first_cpu,
                             const std::vector<ProcView>& summary,
                             double now) {
  for (std::size_t c = 0; c < summary.size(); ++c) {
    mailbox_[first_cpu + c] = summary[c];
  }
  last_summary_at_[node] = now;
  if (!node_silent_[node]) return;
  // The node is talking again: lift the conservative f_max accounting.
  node_silent_[node] = 0;
  for (std::size_t c = 0; c < summary.size(); ++c) {
    loop_->unpin_cpu(first_cpu + c);
  }
  if (wiring_.journal && leader_) {
    wiring_.journal->append(now, sim::EventType::kDegradedMode)
        .set("node", static_cast<double>(node))
        .set("state", std::string("exit"))
        .set("reason", std::string("node_silent"));
  }
}

void Coordinator::refresh_silent_nodes(double now) {
  if (wiring_.silent_node_factor <= 0.0) return;
  const double threshold = wiring_.silent_node_factor * wiring_.period_s;
  for (std::size_t n = 0; n < wiring_.node_spans.size(); ++n) {
    if (node_silent_[n]) continue;
    if (now - last_summary_at_[n] <= threshold) continue;
    // No word from the node for > k*T: its true draw is unknown, so the
    // budget math assumes the worst case — every CPU flat out at f_max.
    node_silent_[n] = 1;
    const auto& [first, count] = wiring_.node_spans[n];
    for (std::size_t c = 0; c < count; ++c) {
      const std::size_t flat = first + c;
      loop_->pin_cpu(flat, wiring_.proc_tables[flat]->max_hz());
    }
    if (wiring_.journal && leader_) {
      wiring_.journal->append(now, sim::EventType::kDegradedMode)
          .set("node", static_cast<double>(n))
          .set("silent_s", now - last_summary_at_[n])
          .set("state", std::string("enter"))
          .set("reason", std::string("node_silent"));
    }
  }
}

void Coordinator::on_peer_heartbeat(cluster::Epoch epoch,
                                    const std::vector<double>& grants,
                                    double budget_w, double now) {
  if (crashed_) return;
  if (epoch < epoch_) return;  // A deposed peer's stale heartbeat.
  max_heard_ = std::max(max_heard_, epoch);
  if (leader_) {
    if (epoch > epoch_) {
      // The peer was elected while we were unreachable: we are deposed.
      // Step down immediately — the nodes' fences are already rejecting
      // our grants, so continuing to lead could only waste rounds.
      leader_ = false;
      epoch_ = epoch;
      detector_.heard(now);
      journal_epoch(now, "stepdown");
      sim::LogLine(sim::LogLevel::kWarn, "cluster-fvsst", now)
          << "coordinator " << wiring_.id << " deposed by epoch " << epoch;
    }
    return;
  }
  // Passive: the leader is alive.  Shadow its replicated grants so a later
  // takeover resumes from the cluster's actual operating point.
  detector_.heard(now);
  epoch_ = epoch;
  if (!grants.empty()) last_grants_ = grants;
  shadow_budget_w_ = budget_w;
}

void Coordinator::run_round(double now, double budget_w,
                            CycleTrigger trigger) {
  if (crashed_ || !leader_ || now < warm_until_) return;
  refresh_silent_nodes(now);
  loop_->run_cycle(now, budget_w, trigger);
  ++rounds_;

  // Durable state is maintained unconditionally: it is pure in-memory
  // bookkeeping (no randomness, no events), and a coordinator crash can be
  // injected even without the standby configured.
  store_.append_grant({now, epoch_, budget_w, rounds_, last_grants_});
  const int every = wiring_.failover.snapshot_every_rounds;
  if (every > 0 && rounds_ % static_cast<std::uint64_t>(every) == 0) {
    CoordinatorSnapshot snap;
    snap.epoch = epoch_;
    snap.round = rounds_;
    snap.taken_at = now;
    snap.budget_w = budget_w;
    snap.grants_hz = last_grants_;
    snap.last_summary_at = last_summary_at_;
    store_.save_snapshot(snap);
    if (wiring_.journal && wiring_.journal_protocol) {
      wiring_.journal->append(now, sim::EventType::kSnapshot)
          .set("coordinator", static_cast<double>(wiring_.id))
          .set("epoch", static_cast<double>(epoch_))
          .set("round", static_cast<double>(rounds_))
          .set("budget_w", budget_w)
          .set("op", std::string("save"));
    }
  }
}

bool Coordinator::heartbeat_due(double now) const {
  if (!wiring_.failover.standby || crashed_ || !leader_) return false;
  if (last_heartbeat_sent_ < 0.0) return true;
  return now - last_heartbeat_sent_ >=
         wiring_.failover.heartbeat_factor * wiring_.period_s;
}

bool Coordinator::maybe_take_over(double now) {
  if (!wiring_.failover.standby || crashed_ || leader_) return false;
  const double timeout =
      wiring_.failover.takeover_factor * wiring_.period_s;
  // The jitter spreads concurrent candidates apart deterministically: it
  // hashes (seed, id, claim), so a rerun with the same seed elects the
  // same coordinator at the same instant.
  const cluster::Epoch claim =
      cluster::claim_epoch(std::max(epoch_, max_heard_), wiring_.id);
  const double jitter = cluster::takeover_jitter_s(
      wiring_.failover.election_seed, wiring_.id, claim,
      wiring_.failover.takeover_jitter_factor * wiring_.period_s);
  if (detector_.silent_for(now) <= timeout + jitter) return false;

  leader_ = true;
  epoch_ = claim;
  max_heard_ = std::max(max_heard_, claim);
  journal_epoch(now, "takeover");
  sim::LogLine(sim::LogLevel::kWarn, "cluster-fvsst", now)
      << "coordinator " << wiring_.id << " took over as epoch " << epoch_
      << " after " << detector_.silent_for(now) << " s of leader silence";
  return true;
}

void Coordinator::journal_epoch(double now, const char* reason) {
  if (!wiring_.journal || !wiring_.journal_protocol) return;
  wiring_.journal->append(now, sim::EventType::kEpochChange)
      .set("epoch", static_cast<double>(epoch_))
      .set("coordinator", static_cast<double>(wiring_.id))
      .set("reason", std::string(reason));
}

}  // namespace fvsst::core
