// cluster_daemon.h - Distributed fvsst for clusters.
//
// The paper's prototype ran on a single SMP; "the development of a
// prototype for the cluster environment remains as future work."  This is
// that future work, built to the design the paper sketches: per-node agents
// gather counter data locally and a global scheduler enforces the single,
// global power limit, with the inter-node communication the paper's large
// T amortises modelled as explicit message latency.
//
//   node agent  --(summary, latency)-->  global scheduler
//   node agent  <--(freq vector, latency)--  global scheduler
//
// Both halves are built from the shared control-loop stages: every node
// agent is a SimCoreSampler + IpcEstimator pair whose views are shipped as
// the summary message, and the global side is a ControlLoop whose Sampler
// is the summary mailbox and whose Actuator fans settings back out over the
// down channel.
//
// The global scheduler runs on the paper's two triggers: the periodic timer
// and a power-budget change.  Because summaries and settings both cross the
// network, there is a measurable delay between a supply failure and cluster
// compliance — bench_abl_response_time compares it against the supply's
// cascade tolerance DT.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/channel.h"
#include "cluster/cluster.h"
#include "core/control_loop.h"
#include "core/scheduler.h"
#include "power/budget.h"
#include "simkit/telemetry.h"
#include "simkit/time_series.h"

namespace fvsst::core {

/// Distributed scheduler configuration.
struct ClusterDaemonConfig {
  double t_sample_s = 0.010;         ///< Node-local sampling period.
  int schedule_every_n_samples = 10; ///< Global period T = n * t.
  FrequencyScheduler::Options scheduler;
  double channel_latency_s = 200e-6; ///< One-way network latency.
  double channel_jitter_s = 50e-6;
  /// Message-loss probability on each channel direction.  The protocol is
  /// loss-tolerant: the global round runs on its own timer from the
  /// freshest summaries it has, and a lost settings message is repaired by
  /// the next round.
  double channel_loss_probability = 0.0;
  IdleSignal idle_signal = IdleSignal::kOsSignal;
  double halted_idle_threshold = 0.90;
  /// Decision journal (not owned; must outlive the daemon).  Records the
  /// global scheduler's rounds plus deferred per-node applies (actuation
  /// events with stage = "node_apply"), lost messages and degraded modes.
  sim::EventLog* journal = nullptr;
  /// Injected faults (not owned; must outlive the daemon).  Cluster kinds
  /// consulted here: kNodeCrash (agent stops sampling/summarising and
  /// arriving settings are lost), kStaleSummaries (agent ships frozen
  /// views), kChannelLoss (per-node loss bursts on both directions).
  /// Null or empty: no injection, bit-for-bit identical behaviour.
  const sim::FaultPlan* fault_plan = nullptr;
  /// A node silent for more than this many global periods T is pinned at
  /// f_max in the power accounting (the conservative assumption that keeps
  /// the global budget honoured when its true draw is unknown).  0
  /// disables silent-node detection.
  double silent_node_factor = 3.0;
};

/// Global scheduler plus one agent per node.
///
/// Heterogeneous clusters are handled natively: each processor is
/// scheduled against its own node's operating-point table (paper Sec. 5's
/// process-variation case and mixed machine generations); `table` is only
/// the scheduler's default/validation table.
class ClusterDaemon {
 public:
  ClusterDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
                const mach::FrequencyTable& table, power::PowerBudget& budget,
                ClusterDaemonConfig config);
  ~ClusterDaemon();

  ClusterDaemon(const ClusterDaemon&) = delete;
  ClusterDaemon& operator=(const ClusterDaemon&) = delete;

  /// Global scheduling rounds completed.
  std::size_t rounds() const { return loop_->cycles_run(); }

  /// Result of the latest global round.
  const ScheduleResult& last_result() const { return loop_->last_result(); }

  /// Simulated time of the most recent budget-triggered round (< 0: none).
  double last_budget_trigger_time() const { return last_trigger_time_; }

  /// Simulated time when the last budget-triggered settings finished
  /// applying on every node (< 0 until it happens).  The difference to
  /// last_budget_trigger_time() is the cluster's response latency.
  double last_trigger_applied_time() const { return last_applied_time_; }

  /// Trace of aggregate cluster CPU power as the scheduler believes it
  /// (updated when settings are applied).
  const sim::TimeSeries& scheduled_power_trace() const { return *power_trace_; }

  /// Summary messages lost on the up (agents -> global) channel so far.
  std::size_t summaries_dropped() const { return up_channel_.dropped(); }

  /// Settings messages lost on the down (global -> agents) channel so far.
  /// Each loss leaves one node on stale settings until the next round.
  std::size_t settings_dropped() const { return down_channel_.dropped(); }

  /// Messages counted lost via the channels' drop callbacks plus those a
  /// fault plan forced (the journal's message_lost events).
  std::size_t messages_lost() const { return messages_lost_; }

  /// Nodes currently treated as silent (accounted at f_max).
  std::size_t stale_node_count() const;

  /// The global scheduler's engine (stage timings, latest mailbox views).
  const ControlLoop& loop() const { return *loop_; }

  sim::MetricRegistry& telemetry() { return telemetry_; }
  const sim::MetricRegistry& telemetry() const { return telemetry_; }

 private:
  /// One per node: the local half of the distributed daemon, built from the
  /// same stages the SMP daemon uses.
  struct NodeAgent {
    NodeAgent(cluster::Cluster& cluster,
              std::vector<cluster::ProcAddress> procs,
              const mach::MemoryLatencies& latencies,
              IpcEstimator::Options options, double start_time)
        : sampler(cluster, std::move(procs),
                  SimCoreSampler::ResetPolicy::kOnElapsed, start_time),
          estimator(latencies, options) {
      views.resize(sampler.cpu_count());
    }

    SimCoreSampler sampler;
    IpcEstimator estimator;
    /// Latest local views; shipped wholesale as the summary message.
    std::vector<ProcView> views;
    std::size_t first_cpu = 0;  ///< Flattened index of this node's cpu 0.
    sim::EventId tick_event = 0;
    int samples = 0;
  };

  class SummarySampler;
  class MailboxEstimator;
  class SettingsActuator;

  void node_tick(std::size_t node);
  void node_send_summary(std::size_t node);
  void global_cycle(CycleTrigger trigger);
  void fan_out(const ScheduleResult& result, bool budget_triggered);
  void apply_on_node(std::size_t node, std::vector<double> freqs,
                     bool budget_triggered);
  void journal_message_lost(std::size_t node, const char* direction,
                            const char* cause);
  void on_summary_arrived(std::size_t node);
  void refresh_silent_nodes();

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  power::PowerBudget& budget_;
  ClusterDaemonConfig config_;
  cluster::Channel up_channel_;    ///< Agents -> global.
  cluster::Channel down_channel_;  ///< Global -> agents.
  std::vector<std::unique_ptr<NodeAgent>> agents_;
  /// Freshest delivered summary per flattened processor (the global
  /// scheduler's knowledge of the cluster).
  std::vector<ProcView> mailbox_;
  /// Per flattened processor: its node's operating-point table.
  std::vector<const mach::FrequencyTable*> proc_tables_;
  sim::MetricRegistry telemetry_;
  std::unique_ptr<ControlLoop> loop_;
  sim::EventId global_event_ = 0;  ///< The global scheduler's own timer.
  double last_trigger_time_ = -1.0;
  double last_applied_time_ = -1.0;
  std::size_t pending_trigger_applies_ = 0;
  sim::TimeSeries* power_trace_ = nullptr;  ///< Registry-owned.
  /// Node a send is in flight for, so the channels' drop callbacks can
  /// attribute the loss (everything is single-threaded).
  std::size_t sending_node_ = 0;
  std::size_t messages_lost_ = 0;
  std::vector<double> last_summary_at_;  ///< Per node, simulated seconds.
  std::vector<char> node_silent_;        ///< Per node: pinned at f_max.
};

}  // namespace fvsst::core
