// cluster_daemon.h - Distributed fvsst for clusters.
//
// The paper's prototype ran on a single SMP; "the development of a
// prototype for the cluster environment remains as future work."  This is
// that future work, built to the design the paper sketches: per-node agents
// gather counter data locally and a global scheduler enforces the single,
// global power limit, with the inter-node communication the paper's large
// T amortises modelled as explicit message latency.
//
//   node agent  --(summary, latency)-->  global scheduler
//   node agent  <--(freq vector, latency)--  global scheduler
//
// Both halves are built from the shared control-loop stages: every node
// agent is a SimCoreSampler + IpcEstimator pair whose views are shipped as
// the summary message, and the global side is a core::Coordinator — a
// ControlLoop whose Sampler is the summary mailbox and whose Actuator fans
// settings back out over the down channel.
//
// The global scheduler runs on the paper's two triggers: the periodic timer
// and a power-budget change.  Because summaries and settings both cross the
// network, there is a measurable delay between a supply failure and cluster
// compliance — bench_abl_response_time compares it against the supply's
// cascade tolerance DT.
//
// The coordinator role itself is made survivable (see core/coordinator.h):
// an optional standby shadows the summary traffic and elects itself over
// epoch-fenced heartbeats when the leader goes silent, every settings
// message carries the sender's epoch so nodes reject grants from a deposed
// coordinator, and a node-local fail-safe drops a node to its budget/N
// frequency when no coordinator has been heard from at all.  All of it is
// off by default: with FailoverConfig at defaults and no coordinator
// faults in the plan, the daemon is bit-for-bit the single-coordinator
// scheduler (messages, randomness and journal included).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/channel.h"
#include "cluster/cluster.h"
#include "cluster/election.h"
#include "cluster/parallel_stepper.h"
#include "cluster/shard.h"
#include "cluster/transport.h"
#include "core/control_loop.h"
#include "core/coordinator.h"
#include "core/scheduler.h"
#include "power/budget.h"
#include "simkit/telemetry.h"
#include "simkit/time_series.h"

namespace fvsst::core {

/// Distributed scheduler configuration.
struct ClusterDaemonConfig {
  double t_sample_s = 0.010;         ///< Node-local sampling period.
  int schedule_every_n_samples = 10; ///< Global period T = n * t.
  FrequencyScheduler::Options scheduler;
  double channel_latency_s = 200e-6; ///< One-way network latency.
  double channel_jitter_s = 50e-6;
  /// Message-loss probability on each channel direction.  The protocol is
  /// loss-tolerant: the global round runs on its own timer from the
  /// freshest summaries it has, and a lost settings message is repaired by
  /// the next round.
  double channel_loss_probability = 0.0;
  IdleSignal idle_signal = IdleSignal::kOsSignal;
  double halted_idle_threshold = 0.90;
  /// Decision journal (not owned; must outlive the daemon).  Records the
  /// global scheduler's rounds plus deferred per-node applies (actuation
  /// events with stage = "node_apply"), lost messages and degraded modes.
  sim::EventLog* journal = nullptr;
  /// Injected faults (not owned; must outlive the daemon).  Cluster kinds
  /// consulted here: kNodeCrash (agent stops sampling/summarising and
  /// arriving settings are lost), kStaleSummaries (agent ships frozen
  /// views), kChannelLoss (per-node loss bursts on both directions),
  /// kCoordinatorCrash (a coordinator is down until the window closes,
  /// then recovers from its stable store) and kPartition (every message to
  /// or from a coordinator is dropped).  Null or empty: no injection,
  /// bit-for-bit identical behaviour.
  const sim::FaultPlan* fault_plan = nullptr;
  /// A node silent for more than this many global periods T is pinned at
  /// f_max in the power accounting (the conservative assumption that keeps
  /// the global budget honoured when its true draw is unknown).  0
  /// disables silent-node detection.
  double silent_node_factor = 3.0;
  /// Coordinator high availability (standby election, epoch fencing,
  /// node-local fail-safe).  Defaults keep everything off.
  FailoverConfig failover;
  /// Worker threads for the deterministic parallel node stepper.  At every
  /// node-tick instant the live nodes' core models are advanced to the
  /// tick time on a fixed partition of this many threads *before* the
  /// serial, node-ordered tick commits run.  Any value produces
  /// bit-identical journals, telemetry and schedules to 1 (the default):
  /// parallelism only relocates the pure per-core state advance, never the
  /// ordered event processing, and each core is advanced to exactly the
  /// sync boundaries the serial run would use.
  int step_threads = 1;
  /// kEvent wakes the node agents only at summary instants (every n
  /// node-ticks); the cores subdivide the skipped span on their sampling
  /// grids (Core::set_sampling_grid), so summaries, rounds and journals
  /// are byte-identical to kTick at ~1/n the event count.  The daemon
  /// silently falls back to kTick when a non-empty fault plan is installed
  /// or failover is enabled: crash windows, fail-safe clocks and election
  /// monitors are tick-granular and must observe every tick.
  AdvanceMode advance_mode = AdvanceMode::kTick;
  /// Online monitor (not owned; must outlive the daemon).  The daemon
  /// feeds the cluster rule inputs (over_budget_w, failsafe_frac,
  /// stale_frac, failover_breach, since_round_s, messages_lost,
  /// journal_dropped) and evaluates once per summary instant — in both
  /// advance modes the same instants, so monitored journals stay
  /// byte-identical across kTick and kEvent.  Evaluation runs on the
  /// daemon's own clock, not the coordinators', so alerting keeps working
  /// while every coordinator is crashed (that silence is itself a rule).
  /// Observation only: null leaves the run bit-for-bit unchanged.
  sim::monitor::Monitor* monitor = nullptr;
  /// Replaces the coordinators' default SchedulerPolicyStage when set (see
  /// core::PolicyStageFactory).  Both coordinators share the factory, and
  /// a crash-restarted coordinator rebuilds its stage through it, so the
  /// policy in force survives failover.  Null keeps the paper's scheduler.
  PolicyStageFactory policy_factory;
  /// Transport mode for coordinator <-> node messaging (see
  /// cluster/transport.h).  kDatagram keeps the fire-and-forget protocol
  /// and is byte-identical to runs built before the session layer existed;
  /// kReliable sequences settings, piggybacks cumulative acks on the
  /// summaries, retransmits unacked settings with bounded backoff and
  /// suppresses duplicates, all epoch-fenced across failover.  The four
  /// transport-level channel faults (kChannelReorder, kChannelDuplicate,
  /// kChannelDelaySpike, kChannelCorrupt) act in both modes.
  cluster::TransportMode transport = cluster::TransportMode::kDatagram;
};

/// Global scheduler plus one agent per node.
///
/// Heterogeneous clusters are handled natively: each processor is
/// scheduled against its own node's operating-point table (paper Sec. 5's
/// process-variation case and mixed machine generations); `table` is only
/// the scheduler's default/validation table.
class ClusterDaemon {
 public:
  ClusterDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
                const mach::FrequencyTable& table, power::PowerBudget& budget,
                ClusterDaemonConfig config);
  ~ClusterDaemon();

  ClusterDaemon(const ClusterDaemon&) = delete;
  ClusterDaemon& operator=(const ClusterDaemon&) = delete;

  /// Global scheduling rounds completed (across both coordinators; a
  /// coordinator's count survives its own crash via the stable store).
  std::size_t rounds() const {
    return static_cast<std::size_t>(primary_->rounds() +
                                    (standby_ ? standby_->rounds() : 0));
  }

  /// Result of the latest global round (from the current leader).
  const ScheduleResult& last_result() const {
    return leader_coordinator().loop().last_result();
  }

  /// Simulated time of the most recent budget-triggered round (< 0: none).
  double last_budget_trigger_time() const { return last_trigger_time_; }

  /// Simulated time when the last budget-triggered settings finished
  /// applying on every node (< 0 until it happens).  The difference to
  /// last_budget_trigger_time() is the cluster's response latency.  A node
  /// whose triggered settings were lost closes its slot with the next
  /// settings message it accepts (the protocol's repair round), so a lost
  /// message delays the measurement instead of wedging it open forever.
  double last_trigger_applied_time() const { return last_applied_time_; }

  /// Trace of aggregate cluster CPU power as the scheduler believes it
  /// (updated when settings are applied).
  const sim::TimeSeries& scheduled_power_trace() const { return *power_trace_; }

  /// Summary messages lost on the up (agents -> global) channel so far.
  std::size_t summaries_dropped() const { return up_channel_.dropped(); }

  /// Settings messages lost on the down (global -> agents) channel so far.
  /// Each loss leaves one node on stale settings until the next round.
  std::size_t settings_dropped() const { return down_channel_.dropped(); }

  /// Messages counted lost via the channels' drop callbacks plus those a
  /// fault plan forced (the journal's message_lost events).
  std::size_t messages_lost() const { return messages_lost_; }

  /// Settings messages a node's epoch fence rejected (grants from a
  /// deposed coordinator; the journal's settings_rejected events).
  std::size_t settings_rejected() const { return settings_rejected_; }

  /// Settings retransmissions performed by the reliable transport (the
  /// journal's message_retransmit events); 0 in datagram mode.
  std::size_t messages_retransmitted() const {
    return down_transport_->retransmits() + up_transport_->retransmits();
  }

  /// Frames the reliable transport's duplicate suppression swallowed (the
  /// journal's message_duplicate events).
  std::size_t messages_duplicate() const {
    return down_transport_->duplicates_suppressed() +
           up_transport_->duplicates_suppressed();
  }

  /// Tracked settings the transport gave up on — retransmit budget
  /// exhausted or epoch-fenced (the journal's message_expired events).
  std::size_t messages_expired() const {
    return down_transport_->expired() + up_transport_->expired();
  }

  /// Frames dropped because their checksum no longer matched (the
  /// channel_corrupt fault; the journal's message_corrupt events).
  std::size_t messages_corrupt() const { return messages_corrupt_; }

  const cluster::Transport& up_transport() const { return *up_transport_; }
  const cluster::Transport& down_transport() const { return *down_transport_; }

  /// Nodes currently treated as silent (accounted at f_max).
  std::size_t stale_node_count() const {
    return leader_coordinator().stale_node_count();
  }

  /// Nodes currently in the coordinator-silence fail-safe (running at
  /// their autonomous budget/N frequency).
  std::size_t failsafe_node_count() const;

  /// The current leader's epoch (what nodes' fences converge to).
  cluster::Epoch epoch() const { return leader_coordinator().epoch(); }

  /// The global scheduler's engine (stage timings, latest mailbox views),
  /// from the current leader.
  const ControlLoop& loop() const { return leader_coordinator().loop(); }

  const Coordinator& primary() const { return *primary_; }
  /// The standby coordinator; null unless failover.standby was configured.
  const Coordinator* standby() const { return standby_.get(); }
  Coordinator* mutable_primary() { return primary_.get(); }

  sim::MetricRegistry& telemetry() { return telemetry_; }
  const sim::MetricRegistry& telemetry() const { return telemetry_; }

 private:
  /// One per node: the local half of the distributed daemon, built from the
  /// same stages the SMP daemon uses.
  struct NodeAgent {
    NodeAgent(cluster::Cluster& cluster,
              std::vector<cluster::ProcAddress> procs,
              const mach::MemoryLatencies& latencies,
              IpcEstimator::Options options, double start_time)
        : sampler(cluster, std::move(procs),
                  SimCoreSampler::ResetPolicy::kOnElapsed, start_time),
          estimator(latencies, options) {
      views.resize(sampler.cpu_count());
    }

    SimCoreSampler sampler;
    IpcEstimator estimator;
    /// Latest local views; shipped wholesale as the summary message.
    std::vector<ProcView> views;
    std::size_t first_cpu = 0;  ///< Flattened index of this node's cpu 0.
    int samples = 0;
  };

  const Coordinator& leader_coordinator() const {
    if (standby_ && standby_->leader() && !primary_->leader()) {
      return *standby_;
    }
    return *primary_;
  }

  Coordinator::Wiring make_wiring(int id, bool initially_leader,
                                  const mach::FrequencyTable& table);
  void agents_tick();
  void on_summary_wake();
  /// Schedules the next event-mode summary wake at lattice index
  /// next_summary_k_.
  void schedule_summary_wake();
  void node_tick(std::size_t node);
  void node_failsafe_tick(std::size_t node);
  double node_failsafe_hz(std::size_t node) const;
  void node_send_summary(std::size_t node);
  void deliver_summary(std::size_t node, const std::vector<ProcView>& summary,
                       const cluster::Frame& frame);
  /// Acquires a pool slot no in-flight closure references any more (or
  /// grows the pool): the round-trip buffers for grants and summary
  /// snapshots are recycled instead of allocated per node per round.
  template <typename T>
  static std::shared_ptr<std::vector<T>> acquire_pooled(
      std::vector<std::shared_ptr<std::vector<T>>>& pool);
  void global_round(CycleTrigger trigger);
  void monitor_tick();
  /// Feeds the cluster rule inputs and evaluates the monitor (one summary
  /// instant's worth); no-op without a configured monitor.
  void monitor_sample();
  void send_heartbeat(Coordinator& from);
  void deliver_heartbeat(const cluster::Envelope& envelope,
                         const std::vector<double>& grants, double budget_w);
  void fan_out(const Coordinator& from, const ScheduleResult& result,
               bool budget_triggered);
  void apply_on_node(std::size_t node,
                     const std::shared_ptr<const std::vector<double>>& freqs,
                     const cluster::Frame& frame);
  void journal_message_lost(int node, const char* direction,
                            const char* cause);
  void journal_retransmit(int node, std::uint64_t seq, int attempt,
                          const char* direction);
  void journal_expired(int node, std::uint64_t seq, int attempts,
                       const char* cause, const char* direction);
  void journal_duplicate(int node, std::uint64_t seq, std::uint64_t applied,
                         const char* direction);
  void journal_corrupt(int node, const char* direction);

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  power::PowerBudget& budget_;
  ClusterDaemonConfig config_;
  cluster::Channel up_channel_;    ///< Agents -> global.
  cluster::Channel down_channel_;  ///< Global -> agents.
  std::vector<std::unique_ptr<NodeAgent>> agents_;
  /// Per flattened processor: its node's operating-point table.
  std::vector<const mach::FrequencyTable*> proc_tables_;
  /// Owned copy of the scheduler's default table: a coordinator rebuilding
  /// its engine on restart must not chase the caller's (possibly
  /// temporary) table argument.
  mach::FrequencyTable default_table_;
  sim::MetricRegistry telemetry_;
  /// The failover protocol is in play (failover enabled or coordinator
  /// faults planned): gates every new journal field/event and the run-meta
  /// additions, so default runs keep byte-identical journals.
  bool protocol_visible_ = false;
  /// The session layer is in play (reliable mode selected or transport
  /// faults planned): gates the transport run-meta fields and the seq
  /// field on node applies, so default datagram runs keep byte-identical
  /// journals.
  bool transport_visible_ = false;
  /// Bounded-convergence promise recorded in run_meta when
  /// transport_visible_: every live node re-applies settings within this
  /// many seconds of the last channel disturbance (checked by
  /// JournalChecker).
  double convergence_window_s_ = 0.0;
  std::unique_ptr<cluster::Transport> up_transport_;
  std::unique_ptr<cluster::Transport> down_transport_;
  std::unique_ptr<Coordinator> primary_;
  std::unique_ptr<Coordinator> standby_;  ///< Null unless configured.
  sim::EventId agents_tick_event_ = 0;  ///< The merged per-node tick clock.
  sim::EventId global_event_ = 0;   ///< The global scheduler's own timer.
  sim::EventId monitor_event_ = 0;  ///< Heartbeat/election clock (standby).
  // Event-driven mode: grid_origin_ is the FIRST agents-tick instant (ctor
  // time + t); summary wake k lands on grid_origin_ + (k-1) * t_sample_s
  // in that exact floating-point form (the event queue's re-arm
  // expression), so they compare equal to the node ticks they replace.
  bool event_driven_ = false;
  double grid_origin_ = 0.0;
  std::uint64_t next_summary_k_ = 0;  ///< Tick number (1-based) of next summary.
  sim::EventId summary_wake_event_ = 0;
  /// Worker pool for the parallel pre-sync; null when step_threads <= 1.
  std::unique_ptr<cluster::StepPool> step_pool_;
  /// Locality-aware partition for the pre-sync: one contiguous node slab
  /// per worker, swept in SoA form (cluster/shard.h) instead of the old
  /// `i mod N` interleave.  Built only when step_pool_ exists.
  std::unique_ptr<cluster::ShardMap> shard_map_;
  std::vector<cluster::Shard> shards_;
  /// Scratch, sized per tick on the simulation thread: nodes whose crash
  /// fault is active (their cores must not gain a sync boundary).
  std::vector<char> node_skip_;
  /// Recycled buffers for the per-round messaging: the round's grant
  /// snapshot (shared by every node's deliver closure) and the in-flight
  /// per-node summary copies.  A slot is reusable once its refcount drops
  /// to the pool's own reference, so steady state allocates nothing.
  std::vector<std::shared_ptr<std::vector<double>>> grant_pool_;
  std::vector<std::shared_ptr<std::vector<ProcView>>> views_pool_;
  std::vector<IntervalSample> interval_scratch_;
  double last_trigger_time_ = -1.0;
  double last_applied_time_ = -1.0;
  std::size_t pending_trigger_applies_ = 0;
  /// Per node: still owes an apply for the latest budget-triggered round.
  std::vector<char> pending_apply_;
  sim::TimeSeries* power_trace_ = nullptr;  ///< Registry-owned.
  /// Node a send is in flight for (-1: a coordinator heartbeat), so the
  /// channels' drop callbacks can attribute the loss (single-threaded).
  int sending_node_ = 0;
  std::size_t messages_lost_ = 0;
  std::size_t settings_rejected_ = 0;
  std::size_t messages_corrupt_ = 0;
  // --- Node-side protocol state (each node's own tiny piece of the
  // failover machinery; lives here because the daemon *is* the nodes'
  // receive path). ---
  std::vector<cluster::EpochFence> node_fence_;    ///< Per node.
  std::vector<double> node_last_contact_;          ///< Coordinator heard at.
  std::vector<char> node_failsafe_;                ///< In budget/N mode.
  std::vector<double> node_failsafe_hz_;           ///< Current fail-safe grant.
  // --- Monitor state (unused when config_.monitor is null). ---
  /// Compliance deadline after a budget drop (the run_meta
  /// failover_window_s value); the failover_breach rule input trips when a
  /// triggered round's applies are still pending past it.
  double failover_window_s_ = 0.0;
  int monitor_samples_ = 0;  ///< Tick-mode countdown to the next evaluate.
  /// Round count at the last evaluate, to timestamp coordinator progress:
  /// since_round_s grows from the last evaluate that saw a fresh round.
  std::size_t mon_rounds_seen_ = 0;
  double mon_last_round_time_ = 0.0;
  std::size_t mon_last_messages_lost_ = 0;
  std::size_t mon_last_dropped_ = 0;
  std::size_t mon_last_retransmits_ = 0;
  sim::monitor::InputId mon_over_budget_;
  sim::monitor::InputId mon_failsafe_frac_;
  sim::monitor::InputId mon_stale_frac_;
  sim::monitor::InputId mon_failover_breach_;
  sim::monitor::InputId mon_since_round_;
  sim::monitor::InputId mon_messages_lost_;
  sim::monitor::InputId mon_journal_dropped_;
  sim::monitor::InputId mon_retransmits_;
};

}  // namespace fvsst::core
