// scheduler.h - The frequency/voltage scheduling algorithm (paper Fig. 3).
//
//   Let F = f_0, f_1, ..., f_max be the available frequencies ascending.
//   (1) for every processor: pick the lowest f whose predicted PerfLoss
//       versus f_max is < epsilon;
//   (2) while total CPU power exceeds P_max: downgrade the processor whose
//       next-lower setting has the smallest PerfLoss versus f_max;
//   (3) assign each processor the minimum stable voltage for its frequency
//       (table look-up).
//
// Idle processors are special-cased (paper Sec. 5): the Power4+ idles in a
// hot, CPU-intensive loop, so without an explicit idle signal the predictor
// would demand f_max for an idle CPU.  With idle detection on, the
// scheduler "ignores the predictor and sets the frequency and voltage to
// their minimum values".
//
// Three variants are provided: the paper's two-pass procedure, an
// equivalent single-sweep implementation using a priority queue (the paper
// notes "it is possible to implement in a single pass scheduler"), and the
// continuous f_ideal extension that computes an ideal frequency per
// processor and snaps it up onto the available grid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/predictor.h"
#include "mach/frequency_table.h"

namespace fvsst::core {

/// Everything the scheduler knows about one processor.
struct ProcView {
  WorkloadEstimate estimate;  ///< From the latest T-interval counters.
  bool idle = false;          ///< Idle signal from firmware/OS, if enabled.
  /// Busy fraction as a naive non-halted-cycle monitor reports it (the
  /// utilisation governors' input; stuck at 1.0 on hot-idle hardware).
  double utilization = 1.0;
  /// Set-point frequency when the latest interval closed.
  double current_hz = 0.0;
};

/// Why pass 1 picked a processor's desired frequency.
enum class Pass1Reason : std::uint8_t {
  kUnspecified,  ///< Policy did not classify (baseline governors).
  kIdle,         ///< Idle signal: predictor ignored, minimum point.
  kNoEstimate,   ///< No usable counter data yet: run at f_max.
  kEpsilon,      ///< Lowest frequency whose predicted loss < epsilon.
  kFmax,         ///< No lower setting satisfied epsilon; pinned to f_max.
};

/// Stable wire name ("idle", "epsilon", ...).
std::string_view pass1_reason_name(Pass1Reason reason);

/// Per-processor outcome.
struct ScheduleDecision {
  double desired_hz = 0.0;  ///< Pass-1 (epsilon-constrained) frequency.
  double hz = 0.0;          ///< Final granted frequency (after pass 2).
  double volts = 0.0;       ///< Minimum stable voltage for `hz`.
  double watts = 0.0;       ///< Peak power at (hz, volts).
  double predicted_loss = 0.0;  ///< Predicted PerfLoss(f_max, hz).
  Pass1Reason pass1_reason = Pass1Reason::kUnspecified;
  // Explain mode (SchedulerOptions::explain) only:
  double pass1_loss = 0.0;     ///< Predicted loss at the desired frequency.
  /// Predicted loss at the next setting below desired — the cutoff that
  /// pass 1 rejected (>= epsilon by construction); -1 when desired is
  /// already the table floor.
  double rejected_loss = -1.0;
};

/// One pass-2 downgrade, in the order taken (explain mode only).
struct DowngradeStep {
  std::size_t proc = 0;        ///< Index into the scheduled views.
  double from_hz = 0.0;
  double to_hz = 0.0;
  double loss_after = 0.0;     ///< Predicted loss at to_hz — the greedy key.
  double marginal_loss = 0.0;  ///< loss_after minus loss before the step.
  double watts_saved = 0.0;
};

/// Whole-system outcome.
struct ScheduleResult {
  std::vector<ScheduleDecision> decisions;  ///< Parallel to the input views.
  double total_cpu_power_w = 0.0;
  bool feasible = true;     ///< False when even all-minimum exceeds budget.
  std::size_t downgrade_steps = 0;  ///< Pass-2 iterations taken.
  /// The ordered pass-2 sequence; populated only in explain mode (in which
  /// case explained is true and downgrades.size() == downgrade_steps).
  std::vector<DowngradeStep> downgrades;
  bool explained = false;
};

/// Algorithm variants.
enum class SchedulerVariant {
  kTwoPass,     ///< The paper's Figure 3 procedure.
  kSinglePass,  ///< Priority-queue single sweep; same decisions as kTwoPass.
  kContinuous,  ///< f_ideal extension snapped onto the frequency grid.
  /// Beyond the paper: pass 2 downgrades the processor with the best
  /// watts-saved per *marginal* predicted-loss ratio instead of the
  /// smallest absolute loss.  Both greedies are heuristics for the same
  /// knapsack-like problem; on random diverse systems they are comparable
  /// on average, each winning some instances (see bench_abl_variants).
  kWattsPerLoss,
};

/// Scheduler tuning knobs.
struct SchedulerOptions {
  /// Acceptable predicted performance loss (the paper's epsilon).  Must
  /// exceed the minimum per-step loss or pass 1 degenerates to f_max.
  double epsilon = 0.04;
  SchedulerVariant variant = SchedulerVariant::kTwoPass;
  /// Honour ProcView::idle by pinning idle processors to the minimum
  /// operating point.
  bool idle_detection = true;
  /// Record decision rationale: pass-1 cutoff losses on every decision and
  /// the ordered pass-2 downgrade sequence (ScheduleResult::downgrades).
  /// Costs extra predictor evaluations; never changes the decisions.
  bool explain = false;
};

/// The frequency/voltage scheduler.
class FrequencyScheduler {
 public:
  using Options = SchedulerOptions;

  FrequencyScheduler(mach::FrequencyTable table,
                     mach::MemoryLatencies nominal_latencies,
                     Options options = SchedulerOptions());

  /// Computes frequency and voltage for every processor under the given
  /// aggregate CPU power budget (watts).
  ScheduleResult schedule(const std::vector<ProcView>& procs,
                          double power_budget_w) const;

  /// Heterogeneous overload: per-processor operating-point tables.  The
  /// paper notes "the voltage table may be different for each processor if
  /// there is significant process variation"; this also covers clusters
  /// mixing machine generations.  `tables` must parallel `procs`, each
  /// pointer non-null and outliving the call.  Each processor's loss is
  /// measured against its own table's f_max.
  ScheduleResult schedule(const std::vector<ProcView>& procs,
                          const std::vector<const mach::FrequencyTable*>& tables,
                          double power_budget_w) const;

  /// Predicted PerfLoss(f_max, hz) for one workload estimate; exposed for
  /// tests and benches.
  double predicted_loss(const WorkloadEstimate& est, double hz) const;

  const mach::FrequencyTable& table() const { return table_; }
  const Options& options() const { return options_; }
  const IpcPredictor& predictor() const { return predictor_; }

 private:
  using Tables = std::vector<const mach::FrequencyTable*>;

  double loss_at(const WorkloadEstimate& est, double hz, double f_max) const;
  std::size_t pass1_index(const ProcView& proc,
                          const mach::FrequencyTable& table,
                          Pass1Reason* reason = nullptr) const;
  void record_downgrade(std::size_t proc, std::size_t from_idx,
                        const std::vector<ProcView>& procs,
                        const Tables& tables, ScheduleResult& result) const;
  void pass2_power_fit(std::vector<std::size_t>& idx,
                       const std::vector<ProcView>& procs,
                       const Tables& tables, double power_budget_w,
                       ScheduleResult& result) const;
  ScheduleResult schedule_two_pass(const std::vector<ProcView>& procs,
                                   const Tables& tables,
                                   double power_budget_w) const;
  ScheduleResult schedule_single_pass(const std::vector<ProcView>& procs,
                                      const Tables& tables,
                                      double power_budget_w) const;
  ScheduleResult schedule_continuous(const std::vector<ProcView>& procs,
                                     const Tables& tables,
                                     double power_budget_w) const;
  ScheduleResult schedule_watts_per_loss(const std::vector<ProcView>& procs,
                                         const Tables& tables,
                                         double power_budget_w) const;
  ScheduleResult finalize(const std::vector<ProcView>& procs,
                          const Tables& tables,
                          const std::vector<std::size_t>& desired_idx,
                          std::vector<std::size_t> granted_idx,
                          const std::vector<Pass1Reason>& reasons,
                          ScheduleResult partial) const;

  mach::FrequencyTable table_;
  IpcPredictor predictor_;
  Options options_;
};

}  // namespace fvsst::core
