// control_loop.h - The generic sample -> estimate -> decide -> actuate
// engine behind every fvsst daemon.
//
// The paper's daemon (Sec. 6) is one control cycle: collect
// performance-counter data every dispatch interval t, estimate each
// processor's workload, run the scheduling calculation every T = n*t (or
// when the power budget moves), and throttle the processors accordingly.
// The repo used to implement that cycle four separate times — the SMP
// daemon, the distributed cluster scheduler, the Linux-host port and the
// baseline governors — each with its own trace bookkeeping.  ControlLoop
// is the one implementation, split into four pluggable stages:
//
//   Sampler    where counters come from: simulated cores, cluster-channel
//              summaries, or a real host's perf_event_open(2);
//   Estimator  interval samples -> per-CPU ProcViews (the predictor's
//              workload estimate + EWMA smoothing + idle resolution);
//   Policy     views -> frequency decisions (the paper's two-pass
//              scheduler, its variants, or a comparator governor);
//   Actuator   decisions -> the world (core throttles, cluster settings
//              messages, sysfs scaling_setspeed).
//
// The engine owns the shared telemetry: per-CPU granted/desired frequency,
// predicted/measured IPC, prediction deviation and power are registered in
// a sim::MetricRegistry, and every stage's wall-clock cost is accumulated
// in per-stage timing counters, so the daemon overhead the paper estimates
// for Fig. 4 is measured by the framework itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/scheduler.h"
#include "simkit/event_log.h"
#include "simkit/event_queue.h"
#include "simkit/fault_plan.h"
#include "simkit/monitor.h"
#include "simkit/stats.h"
#include "simkit/telemetry.h"

namespace fvsst::core {

/// How a daemon advances simulated time between decisions.
enum class AdvanceMode {
  /// A periodic event every sampling interval t drives collect() —
  /// simple, and required when tick-granular machinery (fault-plan
  /// retries, failover clocks) must observe every tick.
  kTick,
  /// The daemon wakes only at scheduling instants T = n*t; cores
  /// subdivide the skipped span internally (Core::set_sampling_grid), so
  /// decisions, telemetry and journals stay byte-identical to kTick at a
  /// fraction of the event count.
  kEvent,
};

/// How a loop learns that a processor is idle (paper Sec. 5).
enum class IdleSignal {
  /// Poll the OS/firmware idle state (the explicit indicator the paper
  /// calls for on hot-idle processors like the Power4+).
  kOsSignal,
  /// Infer idleness from the halted-cycle counter: on processors that
  /// idle by halting, "there is no need for the idle indicator".
  kHaltedCounter,
  /// No idle knowledge at all (the paper's prototype, which implemented
  /// none of the idle-detection techniques).
  kNone,
};

/// One CPU's measurements over a closed sampling interval.
struct IntervalSample {
  cpu::PerfCounters delta;   ///< Counter deltas accumulated this interval.
  double elapsed_s = 0.0;    ///< Interval length in (simulated) seconds.
  double measured_hz = 0.0;  ///< Effective frequency: cycles / elapsed.
  double current_hz = 0.0;   ///< Set-point frequency at interval close.
  bool os_idle = false;      ///< OS/firmware idle flag at interval close.
  bool valid = false;        ///< Usable: elapsed > 0 and cycles > 0.
};

/// Stage 1: where counter data comes from.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Number of processors under management.
  virtual std::size_t cpu_count() const = 0;

  /// Cheap per-t accumulation (fold counter deltas into the running
  /// interval).  On-demand backends may no-op.
  virtual void collect() {}

  /// Folds outstanding counters, closes the measurement interval ending at
  /// `now`, and returns one sample per CPU.
  virtual std::vector<IntervalSample> end_interval(double now) = 0;

  /// Allocation-free variant: fills `out` (cleared and resized to
  /// cpu_count()) instead of returning a fresh vector, so a caller closing
  /// intervals every round can reuse one buffer.  The default forwards to
  /// the returning overload; hot-path samplers override both.
  virtual void end_interval(double now, std::vector<IntervalSample>& out) {
    out = end_interval(now);
  }
};

/// Stage 2: interval samples -> persistent per-CPU views.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Folds this interval's samples into `views` (one per CPU, persistent
  /// across cycles — estimators carry smoothing state forward).
  virtual void update(const std::vector<IntervalSample>& samples,
                      std::vector<ProcView>& views) = 0;
};

/// Stage 3: views -> frequency decisions.  One contract for the paper's
/// FrequencyScheduler variants, the utilisation governors, and the
/// comparator policies in baselines/ (see baselines::PolicyStageAdapter).
class PolicyStage {
 public:
  virtual ~PolicyStage() = default;

  /// Decides every processor's operating point under the aggregate budget.
  /// `tables` parallels `views` (per-processor operating points).
  virtual ScheduleResult decide(
      const std::vector<ProcView>& views,
      const std::vector<const mach::FrequencyTable*>& tables,
      double power_budget_w) = 0;

  /// IPC this policy's model promises for `view` at `hz`; negative when
  /// the policy makes no prediction (the engine then skips scoring).
  virtual double predict_ipc(const ProcView& view, double hz) const {
    (void)view;
    (void)hz;
    return -1.0;
  }
};

/// Builds a replacement policy stage for a daemon.  Facades that hardwire
/// SchedulerPolicyStage (the SMP daemon, the cluster coordinators) accept
/// one of these in their configs so comparator policies — the baselines
/// adapter in particular — can drive the same live engine; the factory
/// form (rather than a unique_ptr) keeps configs copyable and lets a
/// crash-restarted coordinator rebuild its stage from scratch.  Arguments:
/// the daemon's default table, its nominal latencies and the configured
/// scheduler options (epsilon et al.).
using PolicyStageFactory = std::function<std::unique_ptr<PolicyStage>(
    const mach::FrequencyTable& table, const mach::MemoryLatencies& latencies,
    const FrequencyScheduler::Options& options)>;

/// What caused a scheduling cycle.
enum class CycleTrigger {
  kTimer,   ///< The periodic T boundary.
  kBudget,  ///< A power-budget change (the supply-failure trigger).
  kManual,  ///< Externally driven (the host port's step()).
};

/// Stable wire name ("timer", "budget", "manual") for journals and logs.
std::string_view cycle_trigger_name(CycleTrigger trigger);

/// What an actuation attempt accomplished.  Real actuation paths fail —
/// cpufreq writes get refused, settings messages get lost — and the engine
/// reacts (retry, then fail-safe) rather than assuming success.
struct ActuationReport {
  /// CPUs whose frequency write was refused.  Empty on full success; the
  /// engine starts a bounded retry for each listed CPU.
  std::vector<std::size_t> rejected;
};

/// Stage 4: applies decisions to the world.
class Actuator {
 public:
  virtual ~Actuator() = default;

  /// Applies every decision; reports the CPUs whose write was refused.
  virtual ActuationReport apply(const ScheduleResult& result, double now,
                                CycleTrigger trigger) = 0;

  /// Retries a single CPU's frequency write (the engine's retry path
  /// between cycles).  Returns false when the write was refused again.
  virtual bool write_one(std::size_t cpu, double hz, double now) {
    (void)cpu;
    (void)hz;
    (void)now;
    return true;
  }
};

/// Wall-clock cost of one stage, accumulated across cycles.
struct StageTiming {
  std::uint64_t invocations = 0;
  double total_s = 0.0;
  /// Every per-invocation cost, kept for order statistics (a mean hides
  /// the tail the paper's overhead argument cares about).
  sim::SampleSet samples;

  double mean_s() const {
    return invocations ? total_s / static_cast<double>(invocations) : 0.0;
  }
  /// p-quantile of the per-invocation cost (p in [0, 1]); 0 before the
  /// first invocation.
  double quantile_s(double p) const {
    return samples.count() ? samples.percentile(p) : 0.0;
  }
};

/// Per-stage timing of the whole loop (real host time, measured with a
/// monotonic clock; purely observational, so simulations stay
/// deterministic).
struct ControlLoopTimings {
  StageTiming sample;    ///< Sampler::collect ticks.
  StageTiming estimate;  ///< Interval close + Estimator::update.
  StageTiming policy;    ///< PolicyStage::decide.
  StageTiming actuate;   ///< Actuator::apply + telemetry recording.

  /// Total measured cost of one full scheduling cycle (excluding ticks).
  double cycle_total_s() const {
    return estimate.total_s + policy.total_s + actuate.total_s;
  }
};

/// Display names for the engine's per-CPU trace metrics.  Keys in the
/// registry are structured ("cpu3/granted_hz"); display names keep the
/// historical labels benches and CSV headers rely on.
struct TraceNaming {
  std::string granted = "granted_hz";
  std::string desired = "desired_hz";
  std::string predicted_ipc = "predicted_ipc";
  std::string measured_ipc = "measured_ipc";
  std::string deviation = "ipc_deviation";
  std::string power = "power_w";
  /// Appends the CPU index to each display name (the governors' historic
  /// "gov_hz_cpu0" style).
  bool append_cpu_index = false;
};

/// Engine configuration.
struct ControlLoopConfig {
  /// Scheduling cycle every n collect() ticks (the paper's T = n * t).
  int schedule_every_n_samples = 10;
  /// Register and append the per-CPU trace series.
  bool record_traces = true;
  /// Registry key prefix: "<metric_prefix><cpu>/<metric>".
  std::string metric_prefix = "cpu";
  TraceNaming naming;
  /// Invoked between estimation and the policy run — facades charge their
  /// modelled scheduling cost (dead cycles) here.
  std::function<void(CycleTrigger)> pre_policy;
  /// Rejected frequency writes are retried this many times (with a
  /// doubling tick backoff) before the engine fail-safes the CPU to its
  /// table minimum frequency.
  int actuation_max_retries = 3;
  /// Ticks until the first retry of a rejected write; doubles per failure,
  /// capped so a CPU recovers within about one scheduling period T.
  int actuation_backoff_ticks = 1;
  /// Journal (observation only) when a CPU's measured set-point disagrees
  /// with the last successfully written grant — the sticky-actuation
  /// failure that raises no error.  Needs a journal to matter.
  bool detect_actuation_mismatch = false;
  /// Decision journal (not owned; must outlive the loop).  When set, the
  /// engine emits table_point events at construction and cycle_start /
  /// idle transitions / decision / downgrade / infeasible_budget /
  /// actuation events per cycle.  Purely observational: with it null the
  /// loop's behaviour is bit-for-bit identical.
  sim::EventLog* journal = nullptr;
  /// Online monitor (not owned; must outlive the loop).  When set, every
  /// cycle feeds the `downgrade_steps` and `infeasible` rule inputs from
  /// the schedule result — the facade that owns the loop decides when to
  /// evaluate().  Observation only: with it null the loop is unchanged.
  sim::monitor::Monitor* monitor = nullptr;
};

/// The unified control-loop engine.  Passive: facades own the timers (or
/// wall clock) and drive collect()/run_cycle(); the engine owns the stage
/// pipeline, per-CPU prediction scoring, power accounting, trace recording
/// and per-stage timing.
class ControlLoop {
 public:
  ControlLoop(ControlLoopConfig config, std::unique_ptr<Sampler> sampler,
              std::unique_ptr<Estimator> estimator,
              std::unique_ptr<PolicyStage> policy,
              std::unique_ptr<Actuator> actuator,
              std::vector<const mach::FrequencyTable*> tables,
              sim::MetricRegistry* telemetry = nullptr);

  ControlLoop(const ControlLoop&) = delete;
  ControlLoop& operator=(const ControlLoop&) = delete;

  /// Registers the starting operating point of every CPU for power
  /// accounting and the trace baselines (the pre-first-cycle state).
  void prime(double now, const std::vector<double>& hz,
             const std::vector<double>& watts);

  /// One sampling tick.  Returns true when a scheduled cycle is now due
  /// (i.e. n ticks have elapsed since the last cycle).  Due actuation
  /// retries (rejected writes being retried with backoff) run here.
  bool collect(double now);

  /// Folds `k` sampling ticks an event-driven facade skipped into the
  /// sample-stage invocation count, so the loop/sample_count telemetry a
  /// cycle publishes matches the tick-driven run (the skipped ticks cost
  /// no host time, so the *_s totals stay honest).
  void note_skipped_collects(std::uint64_t k) {
    timings_.sample.invocations += k;
  }

  /// One full cycle: close interval -> estimate -> policy -> actuate.
  /// Resets the tick count (a budget-triggered cycle restarts T).
  const ScheduleResult& run_cycle(double now, double power_budget_w,
                                  CycleTrigger trigger);

  std::size_t cpu_count() const { return views_.size(); }
  std::size_t cycles_run() const { return cycles_run_; }
  const ScheduleResult& last_result() const { return last_result_; }

  /// Latest per-CPU views (estimate, idle, utilisation).
  const std::vector<ProcView>& views() const { return views_; }

  const ControlLoopTimings& timings() const { return timings_; }

  /// Running |predicted - measured| IPC statistics (paper Table 2).
  const sim::RunningStat& deviation_stat(std::size_t cpu) const;

  /// Energy charged to one CPU up to `now` (peak-power convention: table
  /// watts of the granted point integrated over time).
  double cpu_energy_j(std::size_t cpu, double now) const;

  /// Time-weighted mean power of one CPU up to `now`.
  double cpu_mean_power_w(std::size_t cpu, double now) const;

  /// Trace metrics recorded by the engine.
  enum class Trace { kGranted, kDesired, kPredictedIpc, kMeasuredIpc, kDeviation };

  /// Engine-recorded trace for one CPU.  Returns a shared empty series
  /// when traces are disabled (matching the pre-engine daemons' empty
  /// members).
  const sim::TimeSeries& trace(std::size_t cpu, Trace which) const;

  Sampler& sampler() { return *sampler_; }
  const Sampler& sampler() const { return *sampler_; }
  PolicyStage& policy() { return *policy_; }
  const PolicyStage& policy() const { return *policy_; }
  Actuator& actuator() { return *actuator_; }

  sim::MetricRegistry* telemetry() { return telemetry_; }

  // --- Degraded-mode scheduling --------------------------------------
  // A pinned CPU is scheduled against a one-point table at its *actual*
  // operating point, so the policy accounts its true power draw and
  // downgrades the others to keep the aggregate under budget.  The engine
  // pins CPUs whose writes are rejected; facades pin for their own reasons
  // (a cluster node gone silent is accounted at f_max).

  /// Pins `cpu` to the operating point of its real table nearest at or
  /// above `hz` (table max when hz is 0 or out of range).
  void pin_cpu(std::size_t cpu, double hz);

  /// Restores `cpu` to its full operating-point table.
  void unpin_cpu(std::size_t cpu);

  bool pinned(std::size_t cpu) const;

  /// CPUs currently in the actuation fail-safe (writes kept failing past
  /// the retry budget; the engine is holding an f_min grant for them).
  std::size_t degraded_cpu_count() const;

  /// CPUs with an actuation retry in flight (including degraded ones).
  std::size_t retrying_cpu_count() const;

 private:
  struct CpuState {
    bool has_prediction = false;
    double predicted_ipc = 0.0;   ///< Promise made at the last cycle.
    sim::RunningStat deviation;
    sim::TimeWeightedStat power_acc;
    // Registry-owned series; null when traces are disabled.
    sim::TimeSeries* granted = nullptr;
    sim::TimeSeries* desired = nullptr;
    sim::TimeSeries* pred_ipc = nullptr;
    sim::TimeSeries* meas_ipc = nullptr;
    sim::TimeSeries* dev = nullptr;
  };

  /// Interned handles for the loop/* timing counters.  Base counters
  /// resolve at the first publish and each stage's quantile trio at the
  /// first publish where that stage has samples — the same lazy gating the
  /// string-keyed path had, so counter registration order (and with it
  /// every counters.csv / JSONL export) is unchanged, while steady-state
  /// publishes do no string building or hashing.
  struct TimingCounterIds {
    bool base_resolved = false;
    sim::CounterId cycles, sample_count, sample_s, estimate_count,
        estimate_s, policy_count, policy_s, actuate_count, actuate_s;
    struct Quantiles {
      bool resolved = false;
      sim::CounterId p50, p95, p99;
    };
    Quantiles sample, estimate, policy, actuate;
  };

  /// Interned monitor input channels, resolved once at the first cycle
  /// (the TimingCounterIds idiom: steady-state feeds hash no strings).
  struct MonitorInputIds {
    bool resolved = false;
    sim::monitor::InputId downgrade_steps, infeasible;
  };

  /// Bounded retry of one CPU's rejected write, escalating to the f_min
  /// fail-safe once the retry budget is spent.
  struct RetryState {
    bool active = false;
    bool degraded = false;   ///< Past the retry budget; holding f_min.
    int attempts = 0;
    int backoff_ticks = 1;   ///< Doubles per failure, capped near T/2.
    int ticks_until_retry = 0;
    double target_hz = 0.0;  ///< What the retry is trying to write.
  };

  void publish_timings();
  void journal_cycle(double now, CycleTrigger trigger, double power_budget_w,
                     double estimate_s, double policy_s, double actuate_s);
  void handle_rejections(const ActuationReport& report, double now);
  void process_retries(double now);
  void finish_recovery(std::size_t cpu, double hz_written, double now);

  ControlLoopConfig config_;
  std::unique_ptr<Sampler> sampler_;
  std::unique_ptr<Estimator> estimator_;
  std::unique_ptr<PolicyStage> policy_;
  std::unique_ptr<Actuator> actuator_;
  std::vector<const mach::FrequencyTable*> tables_;
  /// The construction-time tables; tables_ entries divert to
  /// pinned_tables_ while a CPU is pinned.
  std::vector<const mach::FrequencyTable*> real_tables_;
  /// Owned one-point tables for pinned CPUs (null when unpinned).
  std::vector<std::unique_ptr<mach::FrequencyTable>> pinned_tables_;
  std::vector<RetryState> retries_;
  /// Last grant the actuator accepted (sticky-write detection baseline);
  /// negative until the first successful write.
  std::vector<double> last_written_hz_;
  sim::MetricRegistry* telemetry_;
  std::vector<ProcView> views_;
  std::vector<CpuState> states_;
  std::vector<char> prev_idle_;  ///< Journal-only idle-transition memory.
  int samples_since_cycle_ = 0;
  std::size_t cycles_run_ = 0;
  ScheduleResult last_result_;
  ControlLoopTimings timings_;
  TimingCounterIds timing_ids_;
  MonitorInputIds monitor_ids_;
};

// ---------------------------------------------------------------------------
// Reusable concrete stages (the simulator backends).
// ---------------------------------------------------------------------------

/// Samples simulated cores' performance counters.  Used directly by the
/// SMP daemon and the governors, and per node by the cluster agents.
class SimCoreSampler final : public Sampler {
 public:
  /// What an unusable interval (elapsed <= 0 or no cycles) does to the
  /// running aggregate, mirroring the historical daemons:
  enum class ResetPolicy {
    /// Keep accumulating into the next interval (the SMP daemon).
    kOnValidInterval,
    /// Reset whenever any time elapsed, even with no cycles (the cluster
    /// node agents).
    kOnElapsed,
  };

  /// Takes the construction-time snapshot of every core's counters.
  /// `start_time` is the current simulated time (the first interval's
  /// start).
  SimCoreSampler(cluster::Cluster& cluster,
                 std::vector<cluster::ProcAddress> procs,
                 ResetPolicy reset = ResetPolicy::kOnValidInterval,
                 double start_time = 0.0);

  std::size_t cpu_count() const override { return procs_.size(); }
  void collect() override;
  std::vector<IntervalSample> end_interval(double now) override;
  void end_interval(double now, std::vector<IntervalSample>& out) override;

  const std::vector<cluster::ProcAddress>& procs() const { return procs_; }

 private:
  cluster::Cluster& cluster_;
  std::vector<cluster::ProcAddress> procs_;
  ResetPolicy reset_;
  std::vector<cpu::PerfCounters> last_snapshot_;
  std::vector<cpu::PerfCounters> aggregate_;
  std::vector<double> aggregate_started_at_;
  /// Reused buffer for draining grid-instant counter snapshots
  /// (event-driven mode); avoids a per-collect allocation.
  std::vector<cpu::PerfCounters> history_scratch_;
};

/// The paper's workload estimation stage: distils counter deltas into
/// (1/alpha, M) estimates, optionally EWMA-smoothed, and resolves each
/// processor's idle flag from the configured signal.
class IpcEstimator final : public Estimator {
 public:
  struct Options {
    IdleSignal idle_signal = IdleSignal::kOsSignal;
    /// Halted-cycle fraction above which a processor counts as idle when
    /// idle_signal == kHaltedCounter.
    double halted_idle_threshold = 0.90;
    /// EWMA weight of the *previous* estimate in [0, 1): 0 uses each
    /// interval's fresh estimate alone (the paper's prototype).
    double smoothing = 0.0;
    /// Invalidate a CPU's estimate when its interval was unusable instead
    /// of keeping the last good one (the host port's stateless behaviour).
    bool reset_on_invalid = false;
  };

  IpcEstimator(const mach::MemoryLatencies& latencies, Options options);

  void update(const std::vector<IntervalSample>& samples,
              std::vector<ProcView>& views) override;

  const IpcPredictor& predictor() const { return predictor_; }

 private:
  IpcPredictor predictor_;
  Options options_;
  std::vector<double> halted_fraction_;  ///< Of the last valid interval.
};

/// The paper's frequency/voltage scheduler as a policy stage.
class SchedulerPolicyStage final : public PolicyStage {
 public:
  SchedulerPolicyStage(const mach::FrequencyTable& table,
                       const mach::MemoryLatencies& latencies,
                       FrequencyScheduler::Options options);

  ScheduleResult decide(
      const std::vector<ProcView>& views,
      const std::vector<const mach::FrequencyTable*>& tables,
      double power_budget_w) override;

  double predict_ipc(const ProcView& view, double hz) const override;

  const FrequencyScheduler& scheduler() const { return scheduler_; }

 private:
  FrequencyScheduler scheduler_;
};

/// Applies decisions straight to simulated cores.
class SimCoreActuator final : public Actuator {
 public:
  /// `skip_unchanged` suppresses writes that would not change the
  /// set-point (the governors' historical behaviour).
  SimCoreActuator(cluster::Cluster& cluster,
                  std::vector<cluster::ProcAddress> procs,
                  bool skip_unchanged = false);

  /// Subjects writes to an injected fault plan (rejected / sticky /
  /// delayed writes).  `sim` is needed only for kActuationDelay; without
  /// it delayed writes apply immediately.  Null plan (the default)
  /// restores perfect actuation.
  void set_fault_plan(const sim::FaultPlan* plan,
                      sim::Simulation* sim = nullptr);

  ActuationReport apply(const ScheduleResult& result, double now,
                        CycleTrigger trigger) override;
  bool write_one(std::size_t cpu, double hz, double now) override;

 private:
  bool write(std::size_t cpu, double hz, double now);

  cluster::Cluster& cluster_;
  std::vector<cluster::ProcAddress> procs_;
  bool skip_unchanged_;
  const sim::FaultPlan* faults_ = nullptr;
  sim::Simulation* sim_ = nullptr;
};

}  // namespace fvsst::core
