#include "core/control_loop.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace fvsst::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

std::string_view cycle_trigger_name(CycleTrigger trigger) {
  switch (trigger) {
    case CycleTrigger::kTimer: return "timer";
    case CycleTrigger::kBudget: return "budget";
    case CycleTrigger::kManual: return "manual";
  }
  return "?";
}

ControlLoop::ControlLoop(ControlLoopConfig config,
                         std::unique_ptr<Sampler> sampler,
                         std::unique_ptr<Estimator> estimator,
                         std::unique_ptr<PolicyStage> policy,
                         std::unique_ptr<Actuator> actuator,
                         std::vector<const mach::FrequencyTable*> tables,
                         sim::MetricRegistry* telemetry)
    : config_(std::move(config)),
      sampler_(std::move(sampler)),
      estimator_(std::move(estimator)),
      policy_(std::move(policy)),
      actuator_(std::move(actuator)),
      tables_(std::move(tables)),
      telemetry_(telemetry) {
  const std::size_t cpus = sampler_->cpu_count();
  if (tables_.size() != cpus) {
    throw std::invalid_argument(
        "ControlLoop: tables must parallel the sampler's CPUs");
  }
  views_.resize(cpus);
  states_.resize(cpus);
  real_tables_ = tables_;
  pinned_tables_.resize(cpus);
  retries_.resize(cpus);
  last_written_hz_.assign(cpus, -1.0);
  if (telemetry_ && config_.record_traces) {
    const auto& nm = config_.naming;
    for (std::size_t i = 0; i < cpus; ++i) {
      const std::string prefix = config_.metric_prefix + std::to_string(i) + "/";
      const std::string suffix =
          nm.append_cpu_index ? std::to_string(i) : std::string();
      auto& st = states_[i];
      // One-time interning: the hot loop appends through these pointers
      // and never touches the registry's hash map again.
      st.granted = &telemetry_->series(
          telemetry_->intern_series(prefix + "granted_hz", nm.granted + suffix));
      st.desired = &telemetry_->series(
          telemetry_->intern_series(prefix + "desired_hz", nm.desired + suffix));
      st.pred_ipc = &telemetry_->series(telemetry_->intern_series(
          prefix + "predicted_ipc", nm.predicted_ipc + suffix));
      st.meas_ipc = &telemetry_->series(telemetry_->intern_series(
          prefix + "measured_ipc", nm.measured_ipc + suffix));
      st.dev = &telemetry_->series(telemetry_->intern_series(
          prefix + "ipc_deviation", nm.deviation + suffix));
    }
  }
  if (config_.journal) {
    prev_idle_.assign(cpus, 0);
    // The operating-point tables are the inspector's ground truth for the
    // minimum-voltage check; record them up front.
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      for (std::size_t k = 0; k < tables_[i]->size(); ++k) {
        const auto& point = (*tables_[i])[k];
        config_.journal->append(0.0, sim::EventType::kTablePoint,
                                static_cast<int>(i))
            .set("hz", point.hz)
            .set("volts", point.volts)
            .set("watts", point.watts);
      }
    }
  }
}

void ControlLoop::prime(double now, const std::vector<double>& hz,
                        const std::vector<double>& watts) {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    auto& st = states_[i];
    if (i < watts.size()) st.power_acc.record(now, watts[i]);
    if (i < hz.size()) {
      if (st.granted) st.granted->add(now, hz[i]);
      if (st.desired) st.desired->add(now, hz[i]);
    }
  }
}

bool ControlLoop::collect(double now) {
  const auto t0 = Clock::now();
  sampler_->collect();
  ++timings_.sample.invocations;
  const double elapsed = seconds_since(t0);
  timings_.sample.total_s += elapsed;
  timings_.sample.samples.add(elapsed);
  process_retries(now);
  return ++samples_since_cycle_ >= config_.schedule_every_n_samples;
}

const ScheduleResult& ControlLoop::run_cycle(double now, double power_budget_w,
                                             CycleTrigger trigger) {
  if (config_.journal) {
    config_.journal->append(now, sim::EventType::kCycleStart)
        .set("cycle", static_cast<double>(cycles_run_))
        .set("budget_w", power_budget_w)
        .set("trigger", std::string(cycle_trigger_name(trigger)));
  }

  // --- Sample + Estimate: close the interval, score the previous cycle's
  // predictions against what was measured, refresh the workload views.
  auto t0 = Clock::now();
  const std::vector<IntervalSample> samples = sampler_->end_interval(now);
  for (std::size_t i = 0; i < states_.size() && i < samples.size(); ++i) {
    const IntervalSample& s = samples[i];
    if (!s.valid) continue;
    auto& st = states_[i];
    if (!st.has_prediction) continue;
    const double measured_ipc = s.delta.ipc();
    const double deviation = std::abs(st.predicted_ipc - measured_ipc);
    if (st.meas_ipc) st.meas_ipc->add(now, measured_ipc);
    if (st.dev) st.dev->add(now, deviation);
    st.deviation.add(deviation);
  }
  estimator_->update(samples, views_);
  ++timings_.estimate.invocations;
  const double estimate_s = seconds_since(t0);
  timings_.estimate.total_s += estimate_s;
  timings_.estimate.samples.add(estimate_s);

  if (config_.journal) {
    for (std::size_t i = 0; i < views_.size(); ++i) {
      const char idle = views_[i].idle ? 1 : 0;
      if (idle != prev_idle_[i]) {
        config_.journal->append(now,
                                idle ? sim::EventType::kIdleEnter
                                     : sim::EventType::kIdleExit,
                                static_cast<int>(i));
        prev_idle_[i] = idle;
      }
    }
    // Sticky-write detection (observation only): the set-point measured at
    // interval close disagrees with the last write the actuator accepted.
    if (config_.detect_actuation_mismatch) {
      for (std::size_t i = 0; i < views_.size(); ++i) {
        if (retries_[i].active || last_written_hz_[i] < 0.0) continue;
        const double measured = views_[i].current_hz;
        if (measured > 0.0 && measured != last_written_hz_[i]) {
          config_.journal->append(now, sim::EventType::kFault,
                                  static_cast<int>(i))
              .set("expected_hz", last_written_hz_[i])
              .set("observed_hz", measured)
              .set("kind", std::string("actuation_sticky"));
        }
      }
    }
  }

  // The facade's modelled scheduling cost (dead cycles) is charged here,
  // outside the stage timers, so measured and modelled overhead stay
  // separable.
  if (config_.pre_policy) config_.pre_policy(trigger);

  // --- Policy.
  t0 = Clock::now();
  last_result_ = policy_->decide(views_, tables_, power_budget_w);
  ++cycles_run_;
  samples_since_cycle_ = 0;
  ++timings_.policy.invocations;
  const double policy_s = seconds_since(t0);
  timings_.policy.total_s += policy_s;
  timings_.policy.samples.add(policy_s);

  // --- Actuate, then account for what was granted: record the promise the
  // policy's model makes for the next interval, and the operating point's
  // power/frequency traces.
  t0 = Clock::now();
  const ActuationReport report = actuator_->apply(last_result_, now, trigger);
  handle_rejections(report, now);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const ScheduleDecision& d = last_result_.decisions[i];
    auto& st = states_[i];
    const double predicted =
        views_[i].estimate.valid ? policy_->predict_ipc(views_[i], d.hz) : -1.0;
    if (predicted >= 0.0) {
      st.predicted_ipc = predicted;
      st.has_prediction = true;
      if (st.pred_ipc) st.pred_ipc->add(now, predicted);
    } else {
      st.has_prediction = false;
    }
    // A rejected write leaves the hardware at its pinned point; charge the
    // true draw, not the grant that never landed.
    const double actual_watts =
        retries_[i].active && pinned_tables_[i]
            ? pinned_tables_[i]->max_point().watts
            : d.watts;
    st.power_acc.record(now, actual_watts);
    if (st.granted) st.granted->add(now, d.hz);
    if (st.desired) st.desired->add(now, d.desired_hz);
  }
  ++timings_.actuate.invocations;
  const double actuate_s = seconds_since(t0);
  timings_.actuate.total_s += actuate_s;
  timings_.actuate.samples.add(actuate_s);
  publish_timings();
  if (config_.journal) {
    journal_cycle(now, trigger, power_budget_w, estimate_s, policy_s,
                  actuate_s);
  }
  if (config_.monitor) {
    if (!monitor_ids_.resolved) {
      monitor_ids_.downgrade_steps = config_.monitor->input("downgrade_steps");
      monitor_ids_.infeasible = config_.monitor->input("infeasible");
      monitor_ids_.resolved = true;
    }
    config_.monitor->observe(monitor_ids_.downgrade_steps, now,
                             static_cast<double>(last_result_.downgrade_steps));
    config_.monitor->observe(monitor_ids_.infeasible, now,
                             last_result_.feasible ? 0.0 : 1.0);
  }
  return last_result_;
}

void ControlLoop::journal_cycle(double now, CycleTrigger trigger,
                                double power_budget_w, double estimate_s,
                                double policy_s, double actuate_s) {
  (void)trigger;
  sim::EventLog& journal = *config_.journal;
  for (std::size_t i = 0; i < last_result_.decisions.size(); ++i) {
    const ScheduleDecision& d = last_result_.decisions[i];
    sim::Event& e = journal.append(now, sim::EventType::kDecision,
                                   static_cast<int>(i));
    e.set("granted_hz", d.hz)
        .set("desired_hz", d.desired_hz)
        .set("volts", d.volts)
        .set("watts", d.watts)
        .set("predicted_loss", d.predicted_loss)
        .set("idle", i < views_.size() && views_[i].idle ? 1.0 : 0.0);
    if (d.pass1_reason != Pass1Reason::kUnspecified) {
      e.set("pass1", std::string(pass1_reason_name(d.pass1_reason)));
    }
    if (last_result_.explained) {
      e.set("pass1_loss", d.pass1_loss);
      e.set("rejected_loss", d.rejected_loss);
      // The workload estimate behind the decision, so offline tooling
      // (tools/fvsst_oracle) can replay the cycle against the same model
      // the policy saw and bound what any policy could have achieved.
      if (i < views_.size()) {
        const WorkloadEstimate& est = views_[i].estimate;
        e.set("est_valid", est.valid ? 1.0 : 0.0)
            .set("est_alpha_inv", est.alpha_inv)
            .set("est_mem_s", est.mem_time_per_instr);
      }
    }
  }
  for (std::size_t k = 0; k < last_result_.downgrades.size(); ++k) {
    const DowngradeStep& step = last_result_.downgrades[k];
    journal.append(now, sim::EventType::kDowngrade,
                   static_cast<int>(step.proc))
        .set("seq", static_cast<double>(k))
        .set("from_hz", step.from_hz)
        .set("to_hz", step.to_hz)
        .set("loss_after", step.loss_after)
        .set("marginal_loss", step.marginal_loss)
        .set("watts_saved", step.watts_saved);
  }
  if (!last_result_.feasible) {
    journal.append(now, sim::EventType::kInfeasibleBudget)
        .set("budget_w", power_budget_w)
        .set("total_power_w", last_result_.total_cpu_power_w);
  }
  journal.append(now, sim::EventType::kActuation)
      .set("total_power_w", last_result_.total_cpu_power_w)
      .set("budget_w", power_budget_w)
      .set("feasible", last_result_.feasible ? 1.0 : 0.0)
      .set("downgrade_steps",
           static_cast<double>(last_result_.downgrade_steps))
      .set("estimate_s", estimate_s)
      .set("policy_s", policy_s)
      .set("actuate_s", actuate_s);
}

void ControlLoop::handle_rejections(const ActuationReport& report,
                                    double now) {
  for (std::size_t i = 0; i < last_result_.decisions.size(); ++i) {
    const bool rejected =
        std::find(report.rejected.begin(), report.rejected.end(), i) !=
        report.rejected.end();
    RetryState& retry = retries_[i];
    if (!rejected) {
      // The cycle's own write landed; an in-flight retry is moot.
      if (retry.active) finish_recovery(i, last_result_.decisions[i].hz, now);
      last_written_hz_[i] = last_result_.decisions[i].hz;
      continue;
    }
    const double target = last_result_.decisions[i].hz;
    if (!retry.active) {
      retry.active = true;
      retry.attempts = 1;
      retry.backoff_ticks = std::max(1, config_.actuation_backoff_ticks);
      retry.ticks_until_retry = retry.backoff_ticks;
      // The write failed, so the hardware is still at its pre-cycle point;
      // schedule it there until the write lands so the power accounting
      // stays honest and the others absorb the budget.
      pin_cpu(i, views_[i].current_hz);
    }
    // A fresh grant re-aims an in-flight retry without resetting its
    // attempt budget (otherwise a permanently failing CPU never
    // fail-safes).
    if (!retry.degraded) retry.target_hz = target;
    if (config_.journal) {
      config_.journal->append(now, sim::EventType::kFault,
                              static_cast<int>(i))
          .set("attempt", static_cast<double>(retry.attempts))
          .set("target_hz", retry.target_hz)
          .set("kind", std::string("actuation_reject"));
    }
  }
}

void ControlLoop::process_retries(double now) {
  for (std::size_t i = 0; i < retries_.size(); ++i) {
    RetryState& retry = retries_[i];
    if (!retry.active) continue;
    if (--retry.ticks_until_retry > 0) continue;
    if (actuator_->write_one(i, retry.target_hz, now)) {
      finish_recovery(i, retry.target_hz, now);
      continue;
    }
    ++retry.attempts;
    if (config_.journal) {
      config_.journal->append(now, sim::EventType::kFault,
                              static_cast<int>(i))
          .set("attempt", static_cast<double>(retry.attempts))
          .set("target_hz", retry.target_hz)
          .set("kind", std::string("actuation_reject"));
    }
    if (!retry.degraded && retry.attempts > config_.actuation_max_retries) {
      // Retry budget spent: fail-safe.  Hold the table-minimum grant (the
      // most conservative request) and keep knocking at a bounded pace.
      retry.degraded = true;
      retry.target_hz = real_tables_[i]->min_hz();
      if (config_.journal) {
        config_.journal->append(now, sim::EventType::kDegradedMode,
                                static_cast<int>(i))
            .set("hz", retry.target_hz)
            .set("state", std::string("enter"))
            .set("reason", std::string("actuation_failsafe"));
      }
    }
    // Exponential backoff capped near T/2 so a cleared fault is noticed
    // within about one scheduling period.
    const int cap = std::max(1, config_.schedule_every_n_samples / 2);
    retry.backoff_ticks = std::min(retry.backoff_ticks * 2, cap);
    retry.ticks_until_retry = retry.backoff_ticks;
  }
}

void ControlLoop::finish_recovery(std::size_t cpu, double hz_written,
                                  double now) {
  RetryState& retry = retries_[cpu];
  last_written_hz_[cpu] = hz_written;
  const bool was_degraded = retry.degraded;
  const int attempts = retry.attempts;
  retry = RetryState{};
  unpin_cpu(cpu);
  if (config_.journal) {
    if (was_degraded) {
      config_.journal->append(now, sim::EventType::kDegradedMode,
                              static_cast<int>(cpu))
          .set("hz", hz_written)
          .set("state", std::string("exit"))
          .set("reason", std::string("actuation_failsafe"));
    }
    config_.journal->append(now, sim::EventType::kFault,
                            static_cast<int>(cpu))
        .set("attempt", static_cast<double>(attempts))
        .set("recovered_hz", hz_written)
        .set("kind", std::string("actuation_reject"))
        .set("state", std::string("exit"));
  }
}

void ControlLoop::pin_cpu(std::size_t cpu, double hz) {
  const mach::FrequencyTable* real = real_tables_.at(cpu);
  const mach::OperatingPoint& point =
      hz > 0.0 ? real->ceil_point(hz) : real->max_point();
  pinned_tables_[cpu] = std::make_unique<mach::FrequencyTable>(
      std::vector<mach::OperatingPoint>{point});
  tables_[cpu] = pinned_tables_[cpu].get();
}

void ControlLoop::unpin_cpu(std::size_t cpu) {
  tables_.at(cpu) = real_tables_.at(cpu);
  pinned_tables_[cpu].reset();
}

bool ControlLoop::pinned(std::size_t cpu) const {
  return pinned_tables_.at(cpu) != nullptr;
}

std::size_t ControlLoop::degraded_cpu_count() const {
  std::size_t n = 0;
  for (const RetryState& r : retries_) n += r.degraded ? 1 : 0;
  return n;
}

std::size_t ControlLoop::retrying_cpu_count() const {
  std::size_t n = 0;
  for (const RetryState& r : retries_) n += r.active ? 1 : 0;
  return n;
}

void ControlLoop::publish_timings() {
  if (!telemetry_) return;
  if (!timing_ids_.base_resolved) {
    timing_ids_.cycles = telemetry_->intern_counter("loop/cycles");
    timing_ids_.sample_count = telemetry_->intern_counter("loop/sample_count");
    timing_ids_.sample_s = telemetry_->intern_counter("loop/sample_s");
    timing_ids_.estimate_count =
        telemetry_->intern_counter("loop/estimate_count");
    timing_ids_.estimate_s = telemetry_->intern_counter("loop/estimate_s");
    timing_ids_.policy_count = telemetry_->intern_counter("loop/policy_count");
    timing_ids_.policy_s = telemetry_->intern_counter("loop/policy_s");
    timing_ids_.actuate_count =
        telemetry_->intern_counter("loop/actuate_count");
    timing_ids_.actuate_s = telemetry_->intern_counter("loop/actuate_s");
    timing_ids_.base_resolved = true;
  }
  sim::MetricRegistry& reg = *telemetry_;
  reg.counter(timing_ids_.cycles) = static_cast<double>(cycles_run_);
  reg.counter(timing_ids_.sample_count) =
      static_cast<double>(timings_.sample.invocations);
  reg.counter(timing_ids_.sample_s) = timings_.sample.total_s;
  reg.counter(timing_ids_.estimate_count) =
      static_cast<double>(timings_.estimate.invocations);
  reg.counter(timing_ids_.estimate_s) = timings_.estimate.total_s;
  reg.counter(timing_ids_.policy_count) =
      static_cast<double>(timings_.policy.invocations);
  reg.counter(timing_ids_.policy_s) = timings_.policy.total_s;
  reg.counter(timing_ids_.actuate_count) =
      static_cast<double>(timings_.actuate.invocations);
  reg.counter(timing_ids_.actuate_s) = timings_.actuate.total_s;
  const auto put_quantiles = [&reg, this](TimingCounterIds::Quantiles& q,
                                          const char* stage,
                                          const StageTiming& t) {
    if (!t.samples.count()) return;
    if (!q.resolved) {
      // Resolved at the first publish where the stage has samples — the
      // same gate the string path applied per cycle — so a stage that
      // never runs never registers its trio.
      const std::string base = std::string("loop/") + stage;
      q.p50 = telemetry_->intern_counter(base + "_p50_s");
      q.p95 = telemetry_->intern_counter(base + "_p95_s");
      q.p99 = telemetry_->intern_counter(base + "_p99_s");
      q.resolved = true;
    }
    reg.counter(q.p50) = t.quantile_s(0.50);
    reg.counter(q.p95) = t.quantile_s(0.95);
    reg.counter(q.p99) = t.quantile_s(0.99);
  };
  put_quantiles(timing_ids_.sample, "sample", timings_.sample);
  put_quantiles(timing_ids_.estimate, "estimate", timings_.estimate);
  put_quantiles(timing_ids_.policy, "policy", timings_.policy);
  put_quantiles(timing_ids_.actuate, "actuate", timings_.actuate);
}

const sim::RunningStat& ControlLoop::deviation_stat(std::size_t cpu) const {
  return states_.at(cpu).deviation;
}

double ControlLoop::cpu_energy_j(std::size_t cpu, double now) const {
  return states_.at(cpu).power_acc.integral_until(now);
}

double ControlLoop::cpu_mean_power_w(std::size_t cpu, double now) const {
  return states_.at(cpu).power_acc.mean_until(now);
}

const sim::TimeSeries& ControlLoop::trace(std::size_t cpu, Trace which) const {
  static const sim::TimeSeries kEmpty{};
  const CpuState& st = states_.at(cpu);
  const sim::TimeSeries* s = nullptr;
  switch (which) {
    case Trace::kGranted: s = st.granted; break;
    case Trace::kDesired: s = st.desired; break;
    case Trace::kPredictedIpc: s = st.pred_ipc; break;
    case Trace::kMeasuredIpc: s = st.meas_ipc; break;
    case Trace::kDeviation: s = st.dev; break;
  }
  return s ? *s : kEmpty;
}

// ---------------------------------------------------------------------------
// SimCoreSampler
// ---------------------------------------------------------------------------

SimCoreSampler::SimCoreSampler(cluster::Cluster& cluster,
                               std::vector<cluster::ProcAddress> procs,
                               ResetPolicy reset, double start_time)
    : cluster_(cluster), procs_(std::move(procs)), reset_(reset) {
  last_snapshot_.resize(procs_.size());
  aggregate_.resize(procs_.size());
  aggregate_started_at_.assign(procs_.size(), start_time);
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    last_snapshot_[i] = cluster_.core(procs_[i]).read_counters();
  }
}

void SimCoreSampler::collect() {
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    auto& core = cluster_.core(procs_[i]);
    // read_counters() syncs the core first, so any grid instants crossed
    // since the last collect have already recorded their snapshots.
    const cpu::PerfCounters now = core.read_counters();
    if (core.has_sampling_grid()) {
      // Event-driven mode: replay the per-tick folds this wake-up skipped.
      // Each snapshot is the exact counter value a tick-driven collect
      // would have read at that instant, so folding them in order leaves
      // aggregate_ bit-identical to the per-tick sum.
      history_scratch_.clear();
      core.drain_counter_history(history_scratch_);
      for (const auto& snap : history_scratch_) {
        aggregate_[i] += snap - last_snapshot_[i];
        last_snapshot_[i] = snap;
      }
    }
    aggregate_[i] += now - last_snapshot_[i];
    last_snapshot_[i] = now;
  }
}

std::vector<IntervalSample> SimCoreSampler::end_interval(double now) {
  std::vector<IntervalSample> out;
  end_interval(now, out);
  return out;
}

void SimCoreSampler::end_interval(double now,
                                  std::vector<IntervalSample>& out) {
  collect();  // fold anything gathered since the last tick
  out.assign(procs_.size(), IntervalSample{});
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    IntervalSample& s = out[i];
    auto& core = cluster_.core(procs_[i]);
    const double elapsed = now - aggregate_started_at_[i];
    s.delta = aggregate_[i];
    s.elapsed_s = elapsed;
    s.os_idle = core.idle();
    s.current_hz = core.frequency_hz();
    s.valid = elapsed > 0.0 && s.delta.cycles > 0.0;
    if (s.valid) s.measured_hz = s.delta.cycles / elapsed;
    const bool reset =
        reset_ == ResetPolicy::kOnElapsed ? elapsed > 0.0 : s.valid;
    if (reset) {
      aggregate_[i] = cpu::PerfCounters{};
      aggregate_started_at_[i] = now;
    }
  }
}

// ---------------------------------------------------------------------------
// IpcEstimator
// ---------------------------------------------------------------------------

IpcEstimator::IpcEstimator(const mach::MemoryLatencies& latencies,
                           Options options)
    : predictor_(latencies), options_(options) {}

void IpcEstimator::update(const std::vector<IntervalSample>& samples,
                          std::vector<ProcView>& views) {
  if (halted_fraction_.size() < samples.size()) {
    halted_fraction_.resize(samples.size(), 0.0);
  }
  for (std::size_t i = 0; i < samples.size() && i < views.size(); ++i) {
    const IntervalSample& s = samples[i];
    ProcView& v = views[i];
    if (s.valid) {
      halted_fraction_[i] = s.delta.halted_cycles / s.delta.cycles;
      CounterObservation obs;
      obs.delta = s.delta;
      obs.measured_hz = s.measured_hz;
      const WorkloadEstimate est = predictor_.estimate(obs);
      if (est.valid) {
        const double sm = options_.smoothing;
        if (sm > 0.0 && v.estimate.valid) {
          v.estimate.alpha_inv =
              sm * v.estimate.alpha_inv + (1.0 - sm) * est.alpha_inv;
          v.estimate.mem_time_per_instr =
              sm * v.estimate.mem_time_per_instr +
              (1.0 - sm) * est.mem_time_per_instr;
        } else {
          v.estimate = est;
        }
      } else if (options_.reset_on_invalid) {
        v.estimate = est;
      }
    } else if (options_.reset_on_invalid) {
      v.estimate = WorkloadEstimate{};
    }
    switch (options_.idle_signal) {
      case IdleSignal::kOsSignal:
        v.idle = s.os_idle;
        break;
      case IdleSignal::kHaltedCounter:
        v.idle = halted_fraction_[i] > options_.halted_idle_threshold;
        break;
      case IdleSignal::kNone:
        v.idle = false;
        break;
    }
    v.current_hz = s.current_hz;
  }
}

// ---------------------------------------------------------------------------
// SchedulerPolicyStage
// ---------------------------------------------------------------------------

SchedulerPolicyStage::SchedulerPolicyStage(const mach::FrequencyTable& table,
                                           const mach::MemoryLatencies& latencies,
                                           FrequencyScheduler::Options options)
    : scheduler_(table, latencies, options) {}

ScheduleResult SchedulerPolicyStage::decide(
    const std::vector<ProcView>& views,
    const std::vector<const mach::FrequencyTable*>& tables,
    double power_budget_w) {
  return scheduler_.schedule(views, tables, power_budget_w);
}

double SchedulerPolicyStage::predict_ipc(const ProcView& view,
                                         double hz) const {
  return scheduler_.predictor().predict_ipc(view.estimate, hz);
}

// ---------------------------------------------------------------------------
// SimCoreActuator
// ---------------------------------------------------------------------------

SimCoreActuator::SimCoreActuator(cluster::Cluster& cluster,
                                 std::vector<cluster::ProcAddress> procs,
                                 bool skip_unchanged)
    : cluster_(cluster), procs_(std::move(procs)),
      skip_unchanged_(skip_unchanged) {}

void SimCoreActuator::set_fault_plan(const sim::FaultPlan* plan,
                                     sim::Simulation* sim) {
  faults_ = plan && !plan->empty() ? plan : nullptr;
  sim_ = sim;
}

// Performs one frequency write under the fault plan.  Returns false when
// the write was refused (kActuationReject); a sticky write (claims success,
// changes nothing) and a delayed write both return true — no error is the
// whole point of those failure modes.
bool SimCoreActuator::write(std::size_t cpu, double hz, double now) {
  const int target = static_cast<int>(cpu);
  if (faults_) {
    using sim::FaultKind;
    if (faults_->active(FaultKind::kActuationReject, target, now)) {
      return false;
    }
    if (faults_->active(FaultKind::kActuationSticky, target, now)) {
      return true;
    }
    if (const sim::FaultSpec* delay =
            faults_->active(FaultKind::kActuationDelay, target, now);
        delay && sim_ && delay->value > 0.0) {
      sim_->schedule_after(delay->value, [this, cpu, hz] {
        cluster_.core(procs_[cpu]).set_frequency(hz);
      });
      return true;
    }
  }
  cluster_.core(procs_[cpu]).set_frequency(hz);
  return true;
}

ActuationReport SimCoreActuator::apply(const ScheduleResult& result,
                                       double now, CycleTrigger trigger) {
  (void)trigger;
  ActuationReport report;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const double hz = result.decisions[i].hz;
    if (skip_unchanged_ && hz == cluster_.core(procs_[i]).frequency_hz()) {
      continue;
    }
    if (!write(i, hz, now)) report.rejected.push_back(i);
  }
  return report;
}

bool SimCoreActuator::write_one(std::size_t cpu, double hz, double now) {
  return write(cpu, hz, now);
}

}  // namespace fvsst::core
