#include "core/cluster_daemon.h"

#include "simkit/log.h"

namespace fvsst::core {

ClusterDaemon::ClusterDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
                             const mach::FrequencyTable& table,
                             power::PowerBudget& budget,
                             ClusterDaemonConfig config)
    : sim_(sim),
      cluster_(cluster),
      budget_(budget),
      config_(config),
      scheduler_(table, cluster.node(0).machine().latencies,
                 config.scheduler),
      up_channel_(sim, config.channel_latency_s, config.channel_jitter_s,
                  sim::Rng(0xc1a0)),
      down_channel_(sim, config.channel_latency_s, config.channel_jitter_s,
                    sim::Rng(0xc1a1)) {
  // Per-processor tables: each node's own operating points, so mixed
  // generations and leaky bins are scheduled against their real options.
  for (std::size_t n = 0; n < cluster_.node_count(); ++n) {
    for (std::size_t c = 0; c < cluster_.node(n).cpu_count(); ++c) {
      proc_tables_.push_back(&cluster_.node(n).machine().freq_table);
    }
  }
  agents_.resize(cluster_.node_count());
  for (std::size_t n = 0; n < cluster_.node_count(); ++n) {
    auto& agent = agents_[n];
    const std::size_t cpus = cluster_.node(n).cpu_count();
    agent.last_snapshot.resize(cpus);
    agent.aggregate.resize(cpus);
    agent.estimates.resize(cpus);
    agent.idle.assign(cpus, false);
    agent.aggregate_started_at = sim_.now();
    for (std::size_t c = 0; c < cpus; ++c) {
      agent.last_snapshot[c] = cluster_.node(n).core(c).read_counters();
    }
    agent.tick_event = sim_.schedule_every(config_.t_sample_s,
                                           [this, n] { node_tick(n); });
  }
  budget_.on_change(
      [this](double) { global_schedule(/*budget_triggered=*/true); });
  up_channel_.set_loss_probability(config.channel_loss_probability);
  down_channel_.set_loss_probability(config.channel_loss_probability);
  // The global scheduler runs on its own timer (the paper's periodic
  // trigger), offset so each round sees the freshest summaries even when
  // some were lost in transit.
  const double period =
      config_.t_sample_s * config_.schedule_every_n_samples;
  global_event_ = sim_.schedule_every_from(
      period + 2.0 * config_.channel_latency_s + config_.channel_jitter_s,
      period, [this] { global_schedule(/*budget_triggered=*/false); });
}

ClusterDaemon::~ClusterDaemon() {
  for (auto& agent : agents_) sim_.cancel(agent.tick_event);
  sim_.cancel(global_event_);
}

void ClusterDaemon::node_tick(std::size_t node) {
  auto& agent = agents_[node];
  for (std::size_t c = 0; c < cluster_.node(node).cpu_count(); ++c) {
    const cpu::PerfCounters now = cluster_.node(node).core(c).read_counters();
    agent.aggregate[c] += now - agent.last_snapshot[c];
    agent.last_snapshot[c] = now;
  }
  if (++agent.samples >= config_.schedule_every_n_samples) {
    agent.samples = 0;
    node_send_summary(node);
  }
}

void ClusterDaemon::node_send_summary(std::size_t node) {
  auto& agent = agents_[node];
  const double elapsed = sim_.now() - agent.aggregate_started_at;
  if (elapsed <= 0.0) return;

  // Distil this interval into estimates and idle flags; ship only the
  // summary across the network, as a real agent would.
  std::vector<WorkloadEstimate> estimates(agent.aggregate.size());
  std::vector<bool> idle(agent.aggregate.size());
  for (std::size_t c = 0; c < agent.aggregate.size(); ++c) {
    CounterObservation obs;
    obs.delta = agent.aggregate[c];
    obs.measured_hz = elapsed > 0.0 ? agent.aggregate[c].cycles / elapsed : 0;
    estimates[c] = scheduler_.predictor().estimate(obs);
    switch (config_.idle_signal) {
      case IdleSignal::kOsSignal:
        idle[c] = cluster_.node(node).core(c).idle();
        break;
      case IdleSignal::kHaltedCounter:
        idle[c] = obs.delta.cycles > 0.0 &&
                  obs.delta.halted_cycles / obs.delta.cycles >
                      config_.halted_idle_threshold;
        break;
      case IdleSignal::kNone:
        idle[c] = false;
        break;
    }
    agent.aggregate[c] = cpu::PerfCounters{};
  }
  agent.aggregate_started_at = sim_.now();

  up_channel_.send([this, node, estimates = std::move(estimates),
                    idle = std::move(idle)]() mutable {
    auto& remote = agents_[node];
    for (std::size_t c = 0; c < estimates.size(); ++c) {
      if (estimates[c].valid) remote.estimates[c] = estimates[c];
      remote.idle[c] = idle[c];
    }
  });
}

void ClusterDaemon::global_schedule(bool budget_triggered) {
  std::vector<ProcView> views;
  views.reserve(cluster_.cpu_count());
  for (const auto& agent : agents_) {
    for (std::size_t c = 0; c < agent.estimates.size(); ++c) {
      ProcView v;
      v.estimate = agent.estimates[c];
      v.idle = agent.idle[c];
      views.push_back(v);
    }
  }
  last_result_ =
      scheduler_.schedule(views, proc_tables_, budget_.effective_limit_w());
  ++rounds_;
  if (budget_triggered) {
    last_trigger_time_ = sim_.now();
    last_applied_time_ = -1.0;
    pending_trigger_applies_ = agents_.size();
  }

  // Fan the per-node frequency vectors back out over the network.
  std::size_t flat = 0;
  for (std::size_t n = 0; n < agents_.size(); ++n) {
    std::vector<double> freqs(cluster_.node(n).cpu_count());
    for (std::size_t c = 0; c < freqs.size(); ++c) {
      freqs[c] = last_result_.decisions[flat++].hz;
    }
    down_channel_.send([this, n, freqs = std::move(freqs),
                        budget_triggered]() mutable {
      apply_on_node(n, std::move(freqs), budget_triggered);
    });
  }
}

void ClusterDaemon::apply_on_node(std::size_t node, std::vector<double> freqs,
                                  bool budget_triggered) {
  for (std::size_t c = 0; c < freqs.size(); ++c) {
    cluster_.node(node).core(c).set_frequency(freqs[c]);
  }
  if (budget_triggered && pending_trigger_applies_ > 0) {
    if (--pending_trigger_applies_ == 0) {
      last_applied_time_ = sim_.now();
      sim::LogLine(sim::LogLevel::kInfo, "cluster-fvsst", sim_.now())
          << "budget trigger applied cluster-wide in "
          << (last_applied_time_ - last_trigger_time_) * 1e3 << " ms";
    }
  }
  power_trace_.add(sim_.now(), cluster_.cpu_power_w());
}

}  // namespace fvsst::core
