#include "core/cluster_daemon.h"

#include <utility>

#include "simkit/log.h"

namespace fvsst::core {

// The global scheduler has no counters of its own: its knowledge arrives as
// summary messages.  The sampler therefore reports every interval as
// invalid (there is nothing to score locally) and the estimator copies the
// freshest delivered views out of the mailbox.
class ClusterDaemon::SummarySampler final : public Sampler {
 public:
  explicit SummarySampler(std::size_t cpus) : cpus_(cpus) {}

  std::size_t cpu_count() const override { return cpus_; }
  std::vector<IntervalSample> end_interval(double now) override {
    (void)now;
    return std::vector<IntervalSample>(cpus_);
  }

 private:
  std::size_t cpus_;
};

class ClusterDaemon::MailboxEstimator final : public Estimator {
 public:
  explicit MailboxEstimator(const std::vector<ProcView>* mailbox)
      : mailbox_(mailbox) {}

  void update(const std::vector<IntervalSample>& samples,
              std::vector<ProcView>& views) override {
    (void)samples;
    views = *mailbox_;
  }

 private:
  const std::vector<ProcView>* mailbox_;
};

class ClusterDaemon::SettingsActuator final : public Actuator {
 public:
  explicit SettingsActuator(ClusterDaemon& daemon) : daemon_(daemon) {}

  ActuationReport apply(const ScheduleResult& result, double now,
                        CycleTrigger trigger) override {
    (void)now;
    daemon_.fan_out(result, trigger == CycleTrigger::kBudget);
    // Message loss is handled by the protocol (the next round repairs a
    // lost settings message), not by per-CPU retries.
    return {};
  }

 private:
  ClusterDaemon& daemon_;
};

ClusterDaemon::ClusterDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
                             const mach::FrequencyTable& table,
                             power::PowerBudget& budget,
                             ClusterDaemonConfig config)
    : sim_(sim),
      cluster_(cluster),
      budget_(budget),
      config_(config),
      up_channel_(sim, config.channel_latency_s, config.channel_jitter_s,
                  sim::Rng(0xc1a0)),
      down_channel_(sim, config.channel_latency_s, config.channel_jitter_s,
                    sim::Rng(0xc1a1)) {
  // Per-processor tables: each node's own operating points, so mixed
  // generations and leaky bins are scheduled against their real options.
  for (std::size_t n = 0; n < cluster_.node_count(); ++n) {
    for (std::size_t c = 0; c < cluster_.node(n).cpu_count(); ++c) {
      proc_tables_.push_back(&cluster_.node(n).machine().freq_table);
    }
  }
  mailbox_.resize(proc_tables_.size());

  IpcEstimator::Options est_opts;
  est_opts.idle_signal = config_.idle_signal;
  est_opts.halted_idle_threshold = config_.halted_idle_threshold;
  std::size_t flat = 0;
  for (std::size_t n = 0; n < cluster_.node_count(); ++n) {
    std::vector<cluster::ProcAddress> procs;
    for (std::size_t c = 0; c < cluster_.node(n).cpu_count(); ++c) {
      procs.push_back({n, c});
    }
    auto agent = std::make_unique<NodeAgent>(
        cluster_, std::move(procs), cluster_.node(0).machine().latencies,
        est_opts, sim_.now());
    agent->first_cpu = flat;
    flat += agent->sampler.cpu_count();
    agent->tick_event =
        sim_.schedule_every(config_.t_sample_s, [this, n] { node_tick(n); });
    agents_.push_back(std::move(agent));
  }

  ControlLoopConfig loop_config;
  loop_config.schedule_every_n_samples = config_.schedule_every_n_samples;
  loop_config.record_traces = false;  // Nothing to score at the global side.
  loop_config.journal = config_.journal;
  if (config_.journal) {
    // t_restarts = 0: the global round runs on its own absolute timer, so
    // a budget trigger does NOT restart T (unlike the SMP daemon).
    config_.journal->append(sim_.now(), sim::EventType::kRunMeta)
        .set("t_sample_s", config_.t_sample_s)
        .set("multiplier", static_cast<double>(config_.schedule_every_n_samples))
        .set("cpus", static_cast<double>(proc_tables_.size()))
        .set("t_restarts", 0.0)
        .set("daemon", std::string("cluster"));
  }
  loop_ = std::make_unique<ControlLoop>(
      std::move(loop_config),
      std::make_unique<SummarySampler>(proc_tables_.size()),
      std::make_unique<MailboxEstimator>(&mailbox_),
      std::make_unique<SchedulerPolicyStage>(
          table, cluster_.node(0).machine().latencies, config_.scheduler),
      std::make_unique<SettingsActuator>(*this), proc_tables_, &telemetry_);
  power_trace_ =
      &telemetry_.series("cluster/scheduled_power_w", "scheduled_cpu_power_w");

  budget_.on_change([this](double limit) {
    if (config_.journal) {
      config_.journal->append(sim_.now(), sim::EventType::kBudgetChange)
          .set("budget_w", limit);
    }
    global_cycle(CycleTrigger::kBudget);
  });
  up_channel_.set_loss_probability(config.channel_loss_probability);
  down_channel_.set_loss_probability(config.channel_loss_probability);
  // Losses are counted at the sender via the drop callbacks, not inferred
  // after the fact; sending_node_ attributes each drop (single-threaded).
  up_channel_.set_drop_handler(
      [this] { journal_message_lost(sending_node_, "up", "channel"); });
  down_channel_.set_drop_handler(
      [this] { journal_message_lost(sending_node_, "down", "channel"); });
  last_summary_at_.assign(cluster_.node_count(), sim_.now());
  node_silent_.assign(cluster_.node_count(), 0);
  // The global scheduler runs on its own timer (the paper's periodic
  // trigger), offset so each round sees the freshest summaries even when
  // some were lost in transit.
  const double period =
      config_.t_sample_s * config_.schedule_every_n_samples;
  global_event_ = sim_.schedule_every_from(
      period + 2.0 * config_.channel_latency_s + config_.channel_jitter_s,
      period, [this] { global_cycle(CycleTrigger::kTimer); });
}

ClusterDaemon::~ClusterDaemon() {
  for (auto& agent : agents_) sim_.cancel(agent->tick_event);
  sim_.cancel(global_event_);
}

void ClusterDaemon::node_tick(std::size_t node) {
  // A crashed node's agent does nothing: no sampling, no summaries.  Its
  // interval keeps accumulating and is shipped after the restart.
  if (config_.fault_plan &&
      config_.fault_plan->active(sim::FaultKind::kNodeCrash,
                                 static_cast<int>(node), sim_.now())) {
    return;
  }
  auto& agent = *agents_[node];
  agent.sampler.collect();
  if (++agent.samples >= config_.schedule_every_n_samples) {
    agent.samples = 0;
    node_send_summary(node);
  }
}

void ClusterDaemon::node_send_summary(std::size_t node) {
  auto& agent = *agents_[node];
  std::vector<IntervalSample> samples = agent.sampler.end_interval(sim_.now());
  if (samples.empty() || samples.front().elapsed_s <= 0.0) return;

  // Distil this interval into per-CPU views and ship only the summary
  // across the network, as a real agent would.  A wedged sensor path
  // (kStaleSummaries) keeps sending but the views stay frozen.
  const bool stale =
      config_.fault_plan &&
      config_.fault_plan->active(sim::FaultKind::kStaleSummaries,
                                 static_cast<int>(node), sim_.now());
  if (!stale) agent.estimator.update(samples, agent.views);

  // An injected loss burst drops the message before it ever leaves.
  if (const sim::FaultSpec* loss =
          config_.fault_plan
              ? config_.fault_plan->active(sim::FaultKind::kChannelLoss,
                                           static_cast<int>(node), sim_.now())
              : nullptr;
      loss && config_.fault_plan->chance(sim::FaultKind::kChannelLoss,
                                         static_cast<int>(node), sim_.now(),
                                         loss->value)) {
    journal_message_lost(node, "up", "fault");
    return;
  }

  sending_node_ = node;
  up_channel_.send([this, node, summary = agent.views]() {
    const auto& agent_at_arrival = *agents_[node];
    for (std::size_t c = 0; c < summary.size(); ++c) {
      mailbox_[agent_at_arrival.first_cpu + c] = summary[c];
    }
    on_summary_arrived(node);
  });
}

void ClusterDaemon::on_summary_arrived(std::size_t node) {
  last_summary_at_[node] = sim_.now();
  if (!node_silent_[node]) return;
  // The node is talking again: lift the conservative f_max accounting.
  node_silent_[node] = 0;
  const auto& agent = *agents_[node];
  for (std::size_t c = 0; c < agent.views.size(); ++c) {
    loop_->unpin_cpu(agent.first_cpu + c);
  }
  if (config_.journal) {
    config_.journal->append(sim_.now(), sim::EventType::kDegradedMode)
        .set("node", static_cast<double>(node))
        .set("state", std::string("exit"))
        .set("reason", std::string("node_silent"));
  }
}

void ClusterDaemon::refresh_silent_nodes() {
  if (config_.silent_node_factor <= 0.0) return;
  const double period =
      config_.t_sample_s * config_.schedule_every_n_samples;
  const double threshold = config_.silent_node_factor * period;
  for (std::size_t n = 0; n < agents_.size(); ++n) {
    if (node_silent_[n]) continue;
    if (sim_.now() - last_summary_at_[n] <= threshold) continue;
    // No word from the node for > k*T: its true draw is unknown, so the
    // budget math assumes the worst case — every CPU flat out at f_max.
    node_silent_[n] = 1;
    const auto& agent = *agents_[n];
    for (std::size_t c = 0; c < agent.views.size(); ++c) {
      const std::size_t flat = agent.first_cpu + c;
      loop_->pin_cpu(flat, proc_tables_[flat]->max_hz());
    }
    if (config_.journal) {
      config_.journal->append(sim_.now(), sim::EventType::kDegradedMode)
          .set("node", static_cast<double>(n))
          .set("silent_s", sim_.now() - last_summary_at_[n])
          .set("state", std::string("enter"))
          .set("reason", std::string("node_silent"));
    }
  }
}

std::size_t ClusterDaemon::stale_node_count() const {
  std::size_t n = 0;
  for (char s : node_silent_) n += s ? 1 : 0;
  return n;
}

void ClusterDaemon::journal_message_lost(std::size_t node,
                                         const char* direction,
                                         const char* cause) {
  ++messages_lost_;
  if (config_.journal) {
    config_.journal->append(sim_.now(), sim::EventType::kMessageLost)
        .set("node", static_cast<double>(node))
        .set("direction", std::string(direction))
        .set("cause", std::string(cause));
  }
}

void ClusterDaemon::global_cycle(CycleTrigger trigger) {
  refresh_silent_nodes();
  loop_->run_cycle(sim_.now(), budget_.effective_limit_w(), trigger);
}

void ClusterDaemon::fan_out(const ScheduleResult& result,
                            bool budget_triggered) {
  if (budget_triggered) {
    last_trigger_time_ = sim_.now();
    last_applied_time_ = -1.0;
    pending_trigger_applies_ = agents_.size();
  }

  // Fan the per-node frequency vectors back out over the network.
  std::size_t flat = 0;
  for (std::size_t n = 0; n < agents_.size(); ++n) {
    std::vector<double> freqs(cluster_.node(n).cpu_count());
    for (std::size_t c = 0; c < freqs.size(); ++c) {
      freqs[c] = result.decisions[flat++].hz;
    }
    if (const sim::FaultSpec* loss =
            config_.fault_plan
                ? config_.fault_plan->active(sim::FaultKind::kChannelLoss,
                                             static_cast<int>(n), sim_.now())
                : nullptr;
        loss && config_.fault_plan->chance(sim::FaultKind::kChannelLoss,
                                           static_cast<int>(n), sim_.now(),
                                           loss->value)) {
      journal_message_lost(n, "down", "fault");
      continue;
    }
    sending_node_ = n;
    down_channel_.send([this, n, freqs = std::move(freqs),
                        budget_triggered]() mutable {
      apply_on_node(n, std::move(freqs), budget_triggered);
    });
  }
}

void ClusterDaemon::apply_on_node(std::size_t node, std::vector<double> freqs,
                                  bool budget_triggered) {
  // Settings arriving at a crashed node land on nothing.
  if (config_.fault_plan &&
      config_.fault_plan->active(sim::FaultKind::kNodeCrash,
                                 static_cast<int>(node), sim_.now())) {
    journal_message_lost(node, "down", "node_crash");
    return;
  }
  for (std::size_t c = 0; c < freqs.size(); ++c) {
    cluster_.node(node).core(c).set_frequency(freqs[c]);
  }
  if (budget_triggered && pending_trigger_applies_ > 0) {
    if (--pending_trigger_applies_ == 0) {
      last_applied_time_ = sim_.now();
      sim::LogLine(sim::LogLevel::kInfo, "cluster-fvsst", sim_.now())
          << "budget trigger applied cluster-wide in "
          << (last_applied_time_ - last_trigger_time_) * 1e3 << " ms";
    }
  }
  power_trace_->add(sim_.now(), cluster_.cpu_power_w());
  if (config_.journal) {
    // The deferred, per-node half of the actuation: settings landed after
    // crossing the down channel.
    config_.journal->append(sim_.now(), sim::EventType::kActuation)
        .set("node", static_cast<double>(node))
        .set("cluster_power_w", cluster_.cpu_power_w())
        .set("stage", std::string("node_apply"));
  }
}

}  // namespace fvsst::core
