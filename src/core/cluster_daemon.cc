#include "core/cluster_daemon.h"

#include <algorithm>
#include <utility>

#include "simkit/log.h"

namespace fvsst::core {

namespace {

/// Does the plan schedule any coordinator-level fault?  Decides whether
/// the failover protocol's journal fields are emitted at all.
bool plan_has_coordinator_faults(const sim::FaultPlan* plan) {
  if (!plan) return false;
  for (const sim::FaultSpec& spec : plan->specs()) {
    if (spec.kind == sim::FaultKind::kCoordinatorCrash ||
        spec.kind == sim::FaultKind::kPartition) {
      return true;
    }
  }
  return false;
}

/// Does the plan schedule any transport-level channel fault?  Decides
/// whether the transport's journal fields/events are emitted in datagram
/// mode (reliable mode always emits them).
bool plan_has_transport_faults(const sim::FaultPlan* plan) {
  if (!plan) return false;
  for (const sim::FaultSpec& spec : plan->specs()) {
    if (spec.kind == sim::FaultKind::kChannelReorder ||
        spec.kind == sim::FaultKind::kChannelDuplicate ||
        spec.kind == sim::FaultKind::kChannelDelaySpike ||
        spec.kind == sim::FaultKind::kChannelCorrupt) {
      return true;
    }
  }
  return false;
}

}  // namespace

ClusterDaemon::ClusterDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
                             const mach::FrequencyTable& table,
                             power::PowerBudget& budget,
                             ClusterDaemonConfig config)
    : sim_(sim),
      cluster_(cluster),
      budget_(budget),
      config_(config),
      up_channel_(sim, config.channel_latency_s, config.channel_jitter_s,
                  sim::Rng(0xc1a0)),
      down_channel_(sim, config.channel_latency_s, config.channel_jitter_s,
                    sim::Rng(0xc1a1)),
      default_table_(table) {
  // Per-processor tables: each node's own operating points, so mixed
  // generations and leaky bins are scheduled against their real options.
  for (std::size_t n = 0; n < cluster_.node_count(); ++n) {
    for (std::size_t c = 0; c < cluster_.node(n).cpu_count(); ++c) {
      proc_tables_.push_back(&cluster_.node(n).machine().freq_table);
    }
  }
  protocol_visible_ = config_.failover.enabled() ||
                      plan_has_coordinator_faults(config_.fault_plan);
  transport_visible_ = config_.transport == cluster::TransportMode::kReliable ||
                       plan_has_transport_faults(config_.fault_plan);

  IpcEstimator::Options est_opts;
  est_opts.idle_signal = config_.idle_signal;
  est_opts.halted_idle_threshold = config_.halted_idle_threshold;
  std::size_t flat = 0;
  for (std::size_t n = 0; n < cluster_.node_count(); ++n) {
    std::vector<cluster::ProcAddress> procs;
    for (std::size_t c = 0; c < cluster_.node(n).cpu_count(); ++c) {
      procs.push_back({n, c});
    }
    auto agent = std::make_unique<NodeAgent>(
        cluster_, std::move(procs), cluster_.node(0).machine().latencies,
        est_opts, sim_.now());
    agent->first_cpu = flat;
    flat += agent->sampler.cpu_count();
    agents_.push_back(std::move(agent));
  }
  // Event-driven advance needs every tick-granular mechanism disabled:
  // crash windows, fail-safe clocks and the election monitor all count
  // ticks, so a non-empty fault plan or enabled failover forces the tick
  // fallback (behaviour, not just timing, would diverge otherwise).
  event_driven_ = config_.advance_mode == AdvanceMode::kEvent &&
                  !(config_.fault_plan && !config_.fault_plan->empty()) &&
                  !config_.failover.enabled();
  if (event_driven_) {
    // The lattice the merged agents clock would tick on: schedule_every
    // fires first at now + t and anchors every re-arm on that first
    // firing, so the first tick instant is the grid origin.
    grid_origin_ = sim_.now() + config_.t_sample_s;
    for (std::size_t n = 0; n < cluster_.node_count(); ++n) {
      for (std::size_t c = 0; c < cluster_.node(n).cpu_count(); ++c) {
        // The node agents charge no per-tick overhead (their cost is
        // modelled as channel latency), so the grid only subdivides the
        // advance and records snapshots for the samplers' replay.
        cluster_.node(n).core(c).set_sampling_grid(
            grid_origin_, config_.t_sample_s, /*recurring_steal_s=*/0.0,
            /*record_history=*/true);
      }
    }
  } else {
    // One merged clock for every node's tick.  The agents share a period
    // and phase, so N periodic events collapse into one whose action runs
    // the node ticks in node order — the same execution order the per-node
    // events produced (when-then-seq FIFO kept coincident ticks in node
    // order) — and gives the parallel stepper a single point to pre-sync
    // all live nodes' cores before any tick commits.
    agents_tick_event_ =
        sim_.schedule_every(config_.t_sample_s, [this] { agents_tick(); });
  }
  if (config_.step_threads > 1) {
    step_pool_ = std::make_unique<cluster::StepPool>(config_.step_threads);
    // One contiguous slab per worker: the pre-sync sweeps linear SoA
    // ranges instead of interleaving every worker across the whole core
    // array (the old `i mod N` partition).
    shard_map_ = std::make_unique<cluster::ShardMap>(
        cluster_, static_cast<std::size_t>(config_.step_threads));
    shards_ = cluster::make_shards(cluster_, *shard_map_);
  }

  const double period =
      config_.t_sample_s * config_.schedule_every_n_samples;
  {
    // The compliance deadline this run promises after a budget drop (the
    // inspector's failover-window check, and the monitor's failover_breach
    // rule input).  Base: one round plus the message flight both ways.
    // When coordinator crashes are in play, the bound stretches to
    // whichever protection recovers first — standby takeover or the
    // node-local fail-safe; with neither there is no bound to promise
    // (window 0).
    const double lat = config_.channel_latency_s;
    const double base = period + 2.0 * lat + config_.t_sample_s +
                        config_.channel_jitter_s;
    failover_window_s_ = base;
    if (plan_has_coordinator_faults(config_.fault_plan)) {
      double bound = -1.0;
      if (config_.failover.standby) {
        bound = (config_.failover.takeover_factor +
                 config_.failover.takeover_jitter_factor + 1.0) *
                    period +
                config_.t_sample_s + 2.0 * lat +
                config_.channel_jitter_s;
      }
      if (config_.failover.node_failsafe_factor > 0.0) {
        const double failsafe =
            config_.failover.node_failsafe_factor * period +
            2.0 * config_.t_sample_s;
        bound = bound < 0.0 ? failsafe : std::min(bound, failsafe);
      }
      failover_window_s_ = bound < 0.0 ? 0.0 : std::max(base, bound);
    }
  }
  {
    // The session layers (both directions route every unicast through
    // them; in datagram mode they are pure pass-throughs that consume
    // exactly the channels' pre-transport randomness).
    cluster::TransportOptions topts;
    topts.mode = config_.transport;
    topts.round_period_s = period;
    topts.pump_period_s = config_.t_sample_s;
    up_transport_ = std::make_unique<cluster::Transport>(
        sim_, up_channel_, config_.fault_plan, topts, cluster_.node_count(),
        /*coordinators=*/2, "up");
    down_transport_ = std::make_unique<cluster::Transport>(
        sim_, down_channel_, config_.fault_plan, topts, cluster_.node_count(),
        /*coordinators=*/2, "down");
    cluster::Transport::Hooks up_hooks;
    up_hooks.on_fault_drop = [this](int node) {
      journal_message_lost(node, "up", "fault");
    };
    up_transport_->set_hooks(std::move(up_hooks));
    cluster::Transport::Hooks down_hooks;
    down_hooks.on_fault_drop = [this](int node) {
      journal_message_lost(node, "down", "fault");
    };
    down_hooks.on_retransmit = [this](int node, std::uint64_t seq,
                                      int attempt) {
      journal_retransmit(node, seq, attempt, "down");
    };
    down_hooks.on_expired = [this](int node, std::uint64_t seq, int attempts,
                                   const char* cause) {
      journal_expired(node, seq, attempts, cause, "down");
    };
    down_transport_->set_hooks(std::move(down_hooks));
    // The bounded-convergence promise: after the last channel disturbance
    // (loss, corruption or an expired message), every live node re-applies
    // the coordinator's grant within this window.  Reliable mode repairs
    // with the first post-disturbance ack round (fast retransmit) and
    // datagram mode with the next scheduling round; three periods bound
    // both with slack for budget-deferred retries and message flight.
    convergence_window_s_ = 3.0 * period + config_.t_sample_s +
                            2.0 * (config_.channel_latency_s +
                                   config_.channel_jitter_s);
  }
  if (config_.journal) {
    // t_restarts = 0: the global round runs on its own absolute timer, so
    // a budget trigger does NOT restart T (unlike the SMP daemon).
    auto& meta =
        config_.journal->append(sim_.now(), sim::EventType::kRunMeta)
            .set("t_sample_s", config_.t_sample_s)
            .set("multiplier",
                 static_cast<double>(config_.schedule_every_n_samples))
            .set("cpus", static_cast<double>(proc_tables_.size()))
            .set("t_restarts", 0.0)
            .set("daemon", std::string("cluster"));
    if (protocol_visible_ && failover_window_s_ > 0.0) {
      meta.set("failover_window_s", failover_window_s_);
    }
    if (transport_visible_) {
      meta.set("transport",
               std::string(config_.transport ==
                                   cluster::TransportMode::kReliable
                               ? "reliable"
                               : "datagram"))
          .set("nodes", static_cast<double>(cluster_.node_count()))
          .set("convergence_window_s", convergence_window_s_);
    }
  }

  primary_ = std::make_unique<Coordinator>(make_wiring(0, true, default_table_));
  if (config_.failover.standby) {
    standby_ =
        std::make_unique<Coordinator>(make_wiring(1, false, default_table_));
  }
  power_trace_ = &telemetry_.series(telemetry_.intern_series(
      "cluster/scheduled_power_w", "scheduled_cpu_power_w"));
  if (config_.monitor) {
    mon_over_budget_ = config_.monitor->input("over_budget_w");
    mon_failsafe_frac_ = config_.monitor->input("failsafe_frac");
    mon_stale_frac_ = config_.monitor->input("stale_frac");
    mon_failover_breach_ = config_.monitor->input("failover_breach");
    mon_since_round_ = config_.monitor->input("since_round_s");
    mon_messages_lost_ = config_.monitor->input("messages_lost");
    mon_journal_dropped_ = config_.monitor->input("journal_dropped");
    mon_retransmits_ = config_.monitor->input("retransmits");
    mon_last_round_time_ = sim_.now();
  }

  budget_.on_change([this](double limit) {
    if (config_.journal) {
      config_.journal->append(sim_.now(), sim::EventType::kBudgetChange)
          .set("budget_w", limit);
    }
    global_round(CycleTrigger::kBudget);
  });
  up_channel_.set_loss_probability(config.channel_loss_probability);
  down_channel_.set_loss_probability(config.channel_loss_probability);
  // Losses are counted at the sender via the drop callbacks, not inferred
  // after the fact; sending_node_ attributes each drop (single-threaded).
  up_channel_.set_drop_handler(
      [this] { journal_message_lost(sending_node_, "up", "channel"); });
  down_channel_.set_drop_handler(
      [this] { journal_message_lost(sending_node_, "down", "channel"); });
  node_fence_.resize(cluster_.node_count());
  node_last_contact_.assign(cluster_.node_count(), sim_.now());
  node_failsafe_.assign(cluster_.node_count(), 0);
  node_failsafe_hz_.assign(cluster_.node_count(), 0.0);
  pending_apply_.assign(cluster_.node_count(), 0);
  // The global scheduler runs on its own timer (the paper's periodic
  // trigger), offset so each round sees the freshest summaries even when
  // some were lost in transit.
  global_event_ = sim_.schedule_every_from(
      period + 2.0 * config_.channel_latency_s + config_.channel_jitter_s,
      period, [this] { global_round(CycleTrigger::kTimer); });
  if (standby_) {
    // The heartbeat/election clock.  Scheduled after the global timer so
    // at a coincident instant the scheduling round runs first and the
    // protocol reacts to its outcome.
    monitor_event_ =
        sim_.schedule_every(config_.t_sample_s, [this] { monitor_tick(); });
  }
  if (event_driven_) {
    // Scheduled after the global timer: at a coincident instant
    // (zero-latency configs put global rounds on the tick lattice) the
    // round must fire first, as it does in tick mode — there the tick's
    // re-arm always carries a younger sequence number than the round's.
    // Each later wake is scheduled from inside the previous one, after
    // that instant's global re-arm, so the order holds inductively.
    next_summary_k_ =
        static_cast<std::uint64_t>(config_.schedule_every_n_samples);
    schedule_summary_wake();
  }
}

ClusterDaemon::~ClusterDaemon() {
  sim_.cancel(agents_tick_event_);
  sim_.cancel(global_event_);
  if (monitor_event_) sim_.cancel(monitor_event_);
  if (summary_wake_event_) sim_.cancel(summary_wake_event_);
}

Coordinator::Wiring ClusterDaemon::make_wiring(
    int id, bool initially_leader, const mach::FrequencyTable& table) {
  Coordinator::Wiring w;
  w.id = id;
  w.initially_leader = initially_leader;
  w.sim = &sim_;
  w.journal = config_.journal;
  w.journal_protocol = protocol_visible_;
  w.faults = config_.fault_plan;
  w.failover = config_.failover;
  w.period_s = config_.t_sample_s * config_.schedule_every_n_samples;
  w.silent_node_factor = config_.silent_node_factor;
  for (const auto& agent : agents_) {
    w.node_spans.emplace_back(agent->first_cpu, agent->sampler.cpu_count());
  }
  w.loop_config.schedule_every_n_samples = config_.schedule_every_n_samples;
  w.loop_config.record_traces = false;  // Nothing to score globally.
  w.loop_config.journal = config_.journal;
  // Both coordinators share the monitor's downgrade/infeasible channels:
  // run_round gates on leadership, so only the acting leader ever feeds.
  w.loop_config.monitor = config_.monitor;
  w.default_table = &table;
  w.latencies = &cluster_.node(0).machine().latencies;
  w.scheduler = config_.scheduler;
  w.policy_factory = config_.policy_factory;
  w.proc_tables = proc_tables_;
  // The standby shadows without telemetry; its engine journals only the
  // rounds it runs as leader.
  w.telemetry = id == 0 ? &telemetry_ : nullptr;
  w.fan_out = [this](const Coordinator& from, const ScheduleResult& result,
                     bool budget_triggered) {
    fan_out(from, result, budget_triggered);
  };
  return w;
}

std::size_t ClusterDaemon::failsafe_node_count() const {
  std::size_t n = 0;
  for (char f : node_failsafe_) n += f ? 1 : 0;
  return n;
}

void ClusterDaemon::agents_tick() {
  if (step_pool_) {
    // Parallel pre-sync: advance every live node's cores to the tick time
    // before the serial commits below.  Each core is advanced to exactly
    // the boundary the serial run would sync it to (node_tick's counter
    // read), by code that touches only that core's own state, so the
    // result is bit-identical — the per-core advance draws its noise at
    // the same chunk boundaries either way.  Crashed nodes must be left
    // alone: their agents skip sampling, so a sync here would insert a
    // chunk boundary (and extra noise draws) the serial run never has.
    // The crash predicate is evaluated on this thread; workers only read
    // the result.
    const double now = sim_.now();
    node_skip_.assign(agents_.size(), 0);
    if (config_.fault_plan) {
      for (std::size_t n = 0; n < agents_.size(); ++n) {
        if (config_.fault_plan->active(sim::FaultKind::kNodeCrash,
                                       static_cast<int>(n), now)) {
          node_skip_[n] = 1;
        }
      }
    }
    const unsigned char* skip =
        node_skip_.empty()
            ? nullptr
            : reinterpret_cast<const unsigned char*>(node_skip_.data());
    step_pool_->run(shards_.size(), [this, now, skip](std::size_t s) {
      shards_[s].advance_to(now, skip);
    });
  }
  // The ordered (node-id, tick) merge: journal events, channel sends and
  // summary deliveries are all emitted here, on the simulation thread, in
  // node order — byte-identical to a serial run at any thread count.
  for (std::size_t n = 0; n < agents_.size(); ++n) node_tick(n);
  // Monitor evaluation every n ticks — the same instants the event-mode
  // summary wakes land on, so alert journals match across advance modes.
  // Runs on the daemon's clock, after the node loop, even while every
  // coordinator is down (coordinator silence is a rule, not an outage of
  // the alerting itself).
  if (config_.monitor &&
      ++monitor_samples_ >= config_.schedule_every_n_samples) {
    monitor_samples_ = 0;
    monitor_sample();
  }
}

void ClusterDaemon::schedule_summary_wake() {
  summary_wake_event_ = sim_.schedule_at(
      grid_origin_ +
          static_cast<double>(next_summary_k_ - 1) * config_.t_sample_s,
      [this] { on_summary_wake(); });
}

void ClusterDaemon::on_summary_wake() {
  // Event-mode summary instant: every node's agent folds the grid-recorded
  // per-tick history (sampler.collect replays it) and ships its summary.
  // The per-tick sample counter is bypassed — a wake *is* the n-th tick.
  // Fault plans and failover force the tick fallback, so there are no
  // crashed nodes or fail-safe clocks to consult here.
  if (step_pool_) {
    // Parallel pre-sync, same contract as agents_tick(): advance every
    // node's cores to the wake time (the grid subdivides the span) before
    // the serial node-ordered commits.
    const double now = sim_.now();
    step_pool_->run(shards_.size(), [this, now](std::size_t s) {
      shards_[s].advance_to(now);
    });
  }
  for (std::size_t n = 0; n < agents_.size(); ++n) {
    agents_[n]->sampler.collect();
    node_send_summary(n);
  }
  // Same cadence and ordering as the tick path's every-n evaluation: after
  // the node loop, at the summary instant.
  if (config_.monitor) monitor_sample();
  next_summary_k_ +=
      static_cast<std::uint64_t>(config_.schedule_every_n_samples);
  schedule_summary_wake();
}

void ClusterDaemon::node_tick(std::size_t node) {
  // A crashed node's agent does nothing: no sampling, no summaries.  Its
  // interval keeps accumulating and is shipped after the restart.
  if (config_.fault_plan &&
      config_.fault_plan->active(sim::FaultKind::kNodeCrash,
                                 static_cast<int>(node), sim_.now())) {
    return;
  }
  if (config_.failover.node_failsafe_factor > 0.0) node_failsafe_tick(node);
  auto& agent = *agents_[node];
  agent.sampler.collect();
  if (++agent.samples >= config_.schedule_every_n_samples) {
    agent.samples = 0;
    node_send_summary(node);
  }
}

double ClusterDaemon::node_failsafe_hz(std::size_t node) const {
  // The power budget is a hardware broadcast (paper Sec. 2), so a node cut
  // off from every coordinator still knows the global limit; its fair,
  // coordination-free share is budget over the cluster's CPU count.
  const double share_w = budget_.effective_limit_w() /
                         static_cast<double>(proc_tables_.size());
  const auto& table = cluster_.node(node).machine().freq_table;
  if (const auto point = table.highest_under_power(share_w)) {
    return point->hz;
  }
  return table.min_hz();  // Even f_min exceeds the share: best effort.
}

void ClusterDaemon::node_failsafe_tick(std::size_t node) {
  const double now = sim_.now();
  if (!node_failsafe_[node]) {
    const double threshold =
        config_.failover.node_failsafe_factor *
        (config_.t_sample_s * config_.schedule_every_n_samples);
    if (now - node_last_contact_[node] <= threshold) return;
    // No coordinator heard from for > k*T: assume total coordinator loss
    // and autonomously drop to the frequency that keeps this node's share
    // of the budget honoured without any coordination.
    node_failsafe_[node] = 1;
    const double hz = node_failsafe_hz(node);
    node_failsafe_hz_[node] = hz;
    for (std::size_t c = 0; c < cluster_.node(node).cpu_count(); ++c) {
      cluster_.node(node).core(c).set_frequency(hz);
    }
    power_trace_->add(now, cluster_.cpu_power_w());
    if (config_.journal) {
      config_.journal->append(now, sim::EventType::kDegradedMode)
          .set("node", static_cast<double>(node))
          .set("hz", hz)
          .set("silent_s", now - node_last_contact_[node])
          .set("state", std::string("enter"))
          .set("reason", std::string("coordinator_silent"));
      // The autonomous apply, in the same shape as a coordinated one, so
      // the inspector's compliance checks see the recovery.
      config_.journal->append(now, sim::EventType::kActuation)
          .set("node", static_cast<double>(node))
          .set("cluster_power_w", cluster_.cpu_power_w())
          .set("failsafe", 1.0)
          .set("stage", std::string("node_apply"));
    }
    return;
  }
  // Already in the fail-safe: track budget moves (the broadcast keeps
  // arriving) until a coordinator's settings take over again.
  const double hz = node_failsafe_hz(node);
  if (hz != node_failsafe_hz_[node]) {
    node_failsafe_hz_[node] = hz;
    for (std::size_t c = 0; c < cluster_.node(node).cpu_count(); ++c) {
      cluster_.node(node).core(c).set_frequency(hz);
    }
    power_trace_->add(now, cluster_.cpu_power_w());
    if (config_.journal) {
      config_.journal->append(now, sim::EventType::kActuation)
          .set("node", static_cast<double>(node))
          .set("cluster_power_w", cluster_.cpu_power_w())
          .set("failsafe", 1.0)
          .set("stage", std::string("node_apply"));
    }
  }
}

template <typename T>
std::shared_ptr<std::vector<T>> ClusterDaemon::acquire_pooled(
    std::vector<std::shared_ptr<std::vector<T>>>& pool) {
  for (auto& slot : pool) {
    if (slot.use_count() == 1) return slot;
  }
  pool.push_back(std::make_shared<std::vector<T>>());
  return pool.back();
}

void ClusterDaemon::node_send_summary(std::size_t node) {
  auto& agent = *agents_[node];
  agent.sampler.end_interval(sim_.now(), interval_scratch_);
  if (interval_scratch_.empty() || interval_scratch_.front().elapsed_s <= 0.0) {
    return;
  }

  // Distil this interval into per-CPU views and ship only the summary
  // across the network, as a real agent would.  A wedged sensor path
  // (kStaleSummaries) keeps sending but the views stay frozen.
  const bool stale =
      config_.fault_plan &&
      config_.fault_plan->active(sim::FaultKind::kStaleSummaries,
                                 static_cast<int>(node), sim_.now());
  if (!stale) agent.estimator.update(interval_scratch_, agent.views);

  // The transport shim owns fault-injected loss (and the other channel
  // faults); summaries ride untracked — the next round's summary
  // supersedes a lost one by construction — but in reliable mode they are
  // sequenced for duplicate suppression and carry the node's cumulative
  // settings ack.
  // The in-flight copy rides in a pooled buffer: copy-assignment reuses
  // the slot's capacity, so a round's summaries cost no allocations once
  // the pool is warm.
  std::shared_ptr<std::vector<ProcView>> snapshot =
      acquire_pooled(views_pool_);
  *snapshot = agent.views;
  sending_node_ = static_cast<int>(node);
  cluster::Envelope envelope;
  envelope.epoch = down_transport_->node_ack_epoch(static_cast<int>(node));
  up_transport_->send(
      static_cast<int>(node), envelope,
      down_transport_->node_ack(static_cast<int>(node)), /*track=*/false,
      [this, node, summary = std::move(snapshot)](const cluster::Frame& frame) {
        deliver_summary(node, *summary, frame);
      });
}

void ClusterDaemon::deliver_summary(std::size_t node,
                                    const std::vector<ProcView>& summary,
                                    const cluster::Frame& frame) {
  const double now = sim_.now();
  const std::size_t first_cpu = agents_[node]->first_cpu;
  // A frame damaged in flight is detected here by its checksum and
  // dropped — never silently misdelivered as a good summary.
  if (cluster::frame_corrupt(frame)) {
    ++messages_corrupt_;
    journal_corrupt(static_cast<int>(node), "up");
    return;
  }
  // One summary reaches every coordinator (the standby shadows the same
  // traffic, which is what makes takeover warm).  A crashed or partitioned
  // coordinator misses it; the loss is journalled only when it deprives
  // the acting leader, so passive shadows don't inflate the loss count.
  bool acked = false;
  for (Coordinator* coordinator : {primary_.get(), standby_.get()}) {
    if (!coordinator) continue;
    if (!coordinator->refresh_fault_state(now)) {
      if (coordinator->leader()) {
        journal_message_lost(static_cast<int>(node), "up",
                             "coordinator_crash");
      }
      continue;
    }
    if (coordinator->partitioned(now)) {
      if (coordinator->leader()) {
        journal_message_lost(static_cast<int>(node), "up", "partition");
      }
      continue;
    }
    if (!acked && up_transport_->reliable()) {
      // The piggybacked cumulative ack reached a live coordinator:
      // release (or fast-retransmit) the node's pending settings.
      acked = true;
      down_transport_->on_ack(static_cast<int>(node), frame.envelope.epoch,
                              frame.ack);
    }
    if (up_transport_->receive_at_coordinator(coordinator->id(),
                                              static_cast<int>(node), frame) ==
        cluster::Transport::Verdict::kDuplicate) {
      if (coordinator->leader()) {
        journal_duplicate(static_cast<int>(node), frame.seq, frame.seq, "up");
      }
      continue;
    }
    coordinator->on_summary(node, first_cpu, summary, now);
  }
}

void ClusterDaemon::journal_message_lost(int node, const char* direction,
                                         const char* cause) {
  ++messages_lost_;
  if (config_.journal) {
    config_.journal->append(sim_.now(), sim::EventType::kMessageLost)
        .set("node", static_cast<double>(node))
        .set("direction", std::string(direction))
        .set("cause", std::string(cause));
  }
}

void ClusterDaemon::journal_retransmit(int node, std::uint64_t seq,
                                       int attempt, const char* direction) {
  if (config_.journal) {
    config_.journal->append(sim_.now(), sim::EventType::kMessageRetransmit)
        .set("node", static_cast<double>(node))
        .set("seq", static_cast<double>(seq))
        .set("attempt", static_cast<double>(attempt))
        .set("direction", std::string(direction));
  }
}

void ClusterDaemon::journal_expired(int node, std::uint64_t seq, int attempts,
                                    const char* cause,
                                    const char* direction) {
  if (config_.journal) {
    config_.journal->append(sim_.now(), sim::EventType::kMessageExpired)
        .set("node", static_cast<double>(node))
        .set("seq", static_cast<double>(seq))
        .set("attempts", static_cast<double>(attempts))
        .set("cause", std::string(cause))
        .set("direction", std::string(direction));
  }
}

void ClusterDaemon::journal_duplicate(int node, std::uint64_t seq,
                                      std::uint64_t applied,
                                      const char* direction) {
  if (config_.journal) {
    config_.journal->append(sim_.now(), sim::EventType::kMessageDuplicate)
        .set("node", static_cast<double>(node))
        .set("seq", static_cast<double>(seq))
        .set("applied_seq", static_cast<double>(applied))
        .set("direction", std::string(direction));
  }
}

void ClusterDaemon::journal_corrupt(int node, const char* direction) {
  if (config_.journal) {
    config_.journal->append(sim_.now(), sim::EventType::kMessageCorrupt)
        .set("node", static_cast<double>(node))
        .set("direction", std::string(direction));
  }
}

void ClusterDaemon::global_round(CycleTrigger trigger) {
  const double now = sim_.now();
  const double budget_w = budget_.effective_limit_w();
  primary_->refresh_fault_state(now);
  if (standby_) standby_->refresh_fault_state(now);
  // Every coordinator gets the trigger; run_round itself no-ops unless the
  // coordinator is the live leader past its recovery warm-up.
  primary_->run_round(now, budget_w, trigger);
  if (standby_) standby_->run_round(now, budget_w, trigger);
}

void ClusterDaemon::monitor_sample() {
  sim::monitor::Monitor& mon = *config_.monitor;
  const double now = sim_.now();
  const double nodes = static_cast<double>(agents_.size());
  // Measured draw, not the schedule's belief: silent or sticky nodes keep
  // drawing real power and that overshoot is what the rule pack watches.
  mon.observe(mon_over_budget_, now,
              std::max(0.0, cluster_.cpu_power_w() -
                                budget_.effective_limit_w()));
  mon.observe(mon_failsafe_frac_, now,
              static_cast<double>(failsafe_node_count()) / nodes);
  mon.observe(mon_stale_frac_, now,
              static_cast<double>(leader_coordinator().stale_node_count()) /
                  nodes);
  // A budget-triggered round whose applies are still outstanding past the
  // promised compliance window is a breach (0/1 level input).
  const bool breach = pending_trigger_applies_ > 0 &&
                      failover_window_s_ > 0.0 && last_trigger_time_ >= 0.0 &&
                      now - last_trigger_time_ > failover_window_s_;
  mon.observe(mon_failover_breach_, now, breach ? 1.0 : 0.0);
  // Coordinator progress clock: a fresh round since the last evaluation
  // resets the silence timer to that evaluation's instant, so the input
  // measures (to one period's granularity) how long no round has landed.
  const std::size_t seen = rounds();
  if (seen != mon_rounds_seen_) {
    mon_rounds_seen_ = seen;
    mon_last_round_time_ = now;
  }
  mon.observe(mon_since_round_, now, now - mon_last_round_time_);
  mon.observe(mon_messages_lost_, now,
              static_cast<double>(messages_lost_ - mon_last_messages_lost_));
  mon_last_messages_lost_ = messages_lost_;
  // Retransmission pressure (0 in datagram mode): the retransmit_storm
  // rule watches this delta for a channel so bad the reliable transport
  // is spinning instead of converging.
  const std::size_t retx = messages_retransmitted();
  mon.observe(mon_retransmits_, now,
              static_cast<double>(retx - mon_last_retransmits_));
  mon_last_retransmits_ = retx;
  if (config_.journal) {
    const std::size_t dropped = config_.journal->dropped();
    mon.observe(mon_journal_dropped_, now,
                static_cast<double>(dropped - mon_last_dropped_));
    mon_last_dropped_ = dropped;
  }
  mon.evaluate(now);
}

void ClusterDaemon::monitor_tick() {
  const double now = sim_.now();
  primary_->refresh_fault_state(now);
  standby_->refresh_fault_state(now);
  for (Coordinator* coordinator : {primary_.get(), standby_.get()}) {
    if (coordinator->heartbeat_due(now)) send_heartbeat(*coordinator);
  }
  for (Coordinator* coordinator : {primary_.get(), standby_.get()}) {
    if (coordinator->maybe_take_over(now)) {
      // Announce the new epoch at once (fencing off the old leader), then
      // schedule immediately — the shadowed mailbox is already warm and
      // the cluster may be sitting on a stale budget.
      send_heartbeat(*coordinator);
      coordinator->run_round(now, budget_.effective_limit_w(),
                             CycleTrigger::kManual);
    }
  }
}

void ClusterDaemon::send_heartbeat(Coordinator& from) {
  const double now = sim_.now();
  from.heartbeat_sent(now);
  if (from.partitioned(now)) {
    journal_message_lost(-1, "down", "partition");
    return;
  }
  const cluster::Envelope envelope{from.epoch(), from.id()};
  sending_node_ = -1;
  down_channel_.send(
      envelope, [this, grants = from.last_grants(),
                 budget_w = budget_.effective_limit_w()](
                    const cluster::Envelope& env) {
        deliver_heartbeat(env, grants, budget_w);
      });
}

void ClusterDaemon::deliver_heartbeat(const cluster::Envelope& envelope,
                                      const std::vector<double>& grants,
                                      double budget_w) {
  const double now = sim_.now();
  // The heartbeat doubles as the nodes' liveness signal: hearing a current
  // (fence-admitted) coordinator resets the fail-safe clock, so a leader
  // whose settings happen to be lost still keeps its nodes out of the
  // autonomous mode.
  for (std::size_t n = 0; n < node_fence_.size(); ++n) {
    if (node_fence_[n].admit(envelope.epoch)) node_last_contact_[n] = now;
  }
  // Epoch fencing for the retransmit queue: once a newer coordinator is
  // announced, a deposed leader's pending settings can never be acked —
  // drain them (message_expired cause "epoch") instead of retransmitting
  // into the nodes' fences.
  if (down_transport_->reliable()) down_transport_->fence(envelope.epoch);
  Coordinator* peer =
      envelope.sender == 0 ? standby_.get() : primary_.get();
  if (!peer) return;
  if (!peer->refresh_fault_state(now) || peer->partitioned(now)) return;
  peer->on_peer_heartbeat(envelope.epoch, grants, budget_w, now);
}

void ClusterDaemon::fan_out(const Coordinator& from,
                            const ScheduleResult& result,
                            bool budget_triggered) {
  if (budget_triggered) {
    last_trigger_time_ = sim_.now();
    last_applied_time_ = -1.0;
    pending_trigger_applies_ = agents_.size();
    pending_apply_.assign(agents_.size(), 1);
  }

  // Fan the round's grants back out over the network, each message fenced
  // with the sender's epoch.  One pooled, refcounted snapshot of the whole
  // round's frequencies is shared by every node's deliver closure (each
  // reads its own slice by first_cpu), replacing the per-node fresh
  // vectors; the slot recycles once no in-flight closure — including a
  // reliable-mode retransmit slot — still references it.
  const bool cut_off = from.partitioned(sim_.now());
  const cluster::Envelope envelope{from.epoch(), from.id()};
  std::shared_ptr<std::vector<double>> grants = acquire_pooled(grant_pool_);
  grants->resize(result.decisions.size());
  for (std::size_t i = 0; i < result.decisions.size(); ++i) {
    (*grants)[i] = result.decisions[i].hz;
  }
  const std::shared_ptr<const std::vector<double>> snapshot = grants;
  for (std::size_t n = 0; n < agents_.size(); ++n) {
    if (cut_off) {
      journal_message_lost(static_cast<int>(n), "down", "partition");
      continue;
    }
    // The transport owns fault-injected loss and, in reliable mode, tracks
    // the frame for ack-or-retransmit.  The deliver closure is re-invoked
    // on every retransmission, so it must not consume its captures.
    sending_node_ = static_cast<int>(n);
    down_transport_->send(
        static_cast<int>(n), envelope, /*ack=*/0, /*track=*/true,
        [this, n, snapshot](const cluster::Frame& frame) {
          apply_on_node(n, snapshot, frame);
        });
  }
}

void ClusterDaemon::apply_on_node(
    std::size_t node, const std::shared_ptr<const std::vector<double>>& freqs,
    const cluster::Frame& frame) {
  const cluster::Envelope& envelope = frame.envelope;
  // Settings arriving at a crashed node land on nothing.
  if (config_.fault_plan &&
      config_.fault_plan->active(sim::FaultKind::kNodeCrash,
                                 static_cast<int>(node), sim_.now())) {
    journal_message_lost(static_cast<int>(node), "down", "node_crash");
    return;
  }
  // A frame damaged in flight is detected here by its checksum and
  // dropped — never silently applied as good settings.
  if (cluster::frame_corrupt(frame)) {
    ++messages_corrupt_;
    journal_corrupt(static_cast<int>(node), "down");
    return;
  }
  // The epoch fence: grants from a deposed coordinator are refused, so a
  // stale leader can never over-commit the budget (split-brain guard).
  if (!node_fence_[node].admit(envelope.epoch)) {
    ++settings_rejected_;
    if (config_.journal) {
      config_.journal->append(sim_.now(), sim::EventType::kSettingsRejected)
          .set("node", static_cast<double>(node))
          .set("msg_epoch", static_cast<double>(envelope.epoch))
          .set("epoch", static_cast<double>(node_fence_[node].current()));
    }
    return;
  }
  // Duplicate suppression (retransmitted or fault-duplicated frames):
  // at-least-once delivery on the wire, effectively-once application
  // here.  A duplicate still refreshes the ack state above it, but must
  // not re-apply, re-journal or roll back newer settings.
  if (down_transport_->receive_at_node(static_cast<int>(node), frame) ==
      cluster::Transport::Verdict::kDuplicate) {
    journal_duplicate(
        static_cast<int>(node), frame.seq,
        down_transport_->node_ack(static_cast<int>(node)), "down");
    return;
  }
  node_last_contact_[node] = sim_.now();
  if (node_failsafe_[node]) {
    // Coordinated settings are back: leave the autonomous budget/N mode
    // (the grants below supersede the fail-safe frequency).
    node_failsafe_[node] = 0;
    if (config_.journal) {
      config_.journal->append(sim_.now(), sim::EventType::kDegradedMode)
          .set("node", static_cast<double>(node))
          .set("state", std::string("exit"))
          .set("reason", std::string("coordinator_silent"));
    }
  }
  const std::size_t first = agents_[node]->first_cpu;
  const std::size_t cpus = cluster_.node(node).cpu_count();
  for (std::size_t c = 0; c < cpus; ++c) {
    cluster_.node(node).core(c).set_frequency((*freqs)[first + c]);
  }
  // Response-latency accounting: a node's slot for the latest budget-
  // triggered round is closed by the first settings it *accepts* — if the
  // triggered message itself was lost, the next round's repair closes it,
  // so the measurement completes instead of wedging open forever.
  if (pending_apply_[node]) {
    pending_apply_[node] = 0;
    if (pending_trigger_applies_ > 0 && --pending_trigger_applies_ == 0) {
      last_applied_time_ = sim_.now();
      sim::LogLine(sim::LogLevel::kInfo, "cluster-fvsst", sim_.now())
          << "budget trigger applied cluster-wide in "
          << (last_applied_time_ - last_trigger_time_) * 1e3 << " ms";
    }
  }
  power_trace_->add(sim_.now(), cluster_.cpu_power_w());
  if (config_.journal) {
    // The deferred, per-node half of the actuation: settings landed after
    // crossing the down channel.
    auto& event =
        config_.journal->append(sim_.now(), sim::EventType::kActuation)
            .set("node", static_cast<double>(node))
            .set("cluster_power_w", cluster_.cpu_power_w());
    if (protocol_visible_ || (transport_visible_ && frame.seq > 0)) {
      event.set("epoch", static_cast<double>(envelope.epoch));
    }
    if (transport_visible_ && frame.seq > 0) {
      // The session sequence the checker's monotone-apply invariant runs
      // on (reliable mode only; datagram frames are unsequenced).
      event.set("seq", static_cast<double>(frame.seq));
    }
    event.set("stage", std::string("node_apply"));
  }
}

}  // namespace fvsst::core
