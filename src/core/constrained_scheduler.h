// constrained_scheduler.h - Scheduling under hierarchical power limits.
//
// The paper's budget is a single global number, but it motivates the
// problem with "limitations on their internal power-delivery and cooling
// systems" — which are per-enclosure: a node's voltage regulators, a
// chassis PDU, a rack's branch circuit, the site feed.  This extension
// schedules under a *set* of power constraints, each covering a subset of
// processors, using the same least-loss greedy the paper's pass 2 uses:
// while any constraint is violated, downgrade the cheapest processor that
// is under a violated constraint.
//
// The single-constraint case reduces exactly to the paper's algorithm.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/scheduler.h"

namespace fvsst::core {

/// One power constraint over a set of processors.
struct PowerConstraint {
  std::string name;                 ///< e.g. "rack0", "site".
  std::vector<std::size_t> procs;   ///< Flattened processor indices covered.
  double limit_w = 0.0;
};

/// Result of a constrained schedule.
struct ConstrainedResult {
  ScheduleResult schedule;             ///< Per-processor decisions.
  std::vector<double> constraint_w;    ///< Power under each constraint.
  std::vector<bool> satisfied;         ///< Per-constraint compliance.
  bool feasible = true;                ///< All constraints met.
};

/// Scheduler for hierarchical/overlapping power constraints.
class ConstrainedScheduler {
 public:
  ConstrainedScheduler(mach::FrequencyTable table,
                       mach::MemoryLatencies nominal_latencies,
                       FrequencyScheduler::Options options =
                           SchedulerOptions());

  /// Pass 1 follows the paper (epsilon-constrained frequencies); pass 2
  /// repeats least-loss downgrades until every constraint holds (or every
  /// processor under a violated constraint sits at its floor, in which
  /// case `feasible` is false).  Constraints may overlap arbitrarily;
  /// indices out of range throw std::invalid_argument.
  ConstrainedResult schedule(const std::vector<ProcView>& procs,
                             const std::vector<PowerConstraint>& constraints)
      const;

  const FrequencyScheduler& base() const { return base_; }

 private:
  FrequencyScheduler base_;
  mach::FrequencyTable table_;
};

/// Builds the standard two-level constraint set for a homogeneous cluster:
/// one per-node limit plus one global limit.
std::vector<PowerConstraint> node_and_site_constraints(
    std::size_t nodes, std::size_t cpus_per_node, double per_node_limit_w,
    double site_limit_w);

}  // namespace fvsst::core
