// analysis.h - Post-processing helpers for scheduler logs.
//
// The paper's figures were produced by post-processing the fvsst
// prototype's logs; these helpers are that post-processing as a library:
// frequency residency (paper Fig. 8), time-windowed prediction accuracy
// (Table 2's CPU3* exclusion of init/termination phases), and trace
// normalisation for overlay charts (Fig. 5).
#pragma once

#include <vector>

#include "simkit/stats.h"
#include "simkit/time_series.h"

namespace fvsst::core {

/// Time-weighted share of each distinct value of a piecewise-constant
/// trace over [trace start, t_end] — e.g. "% of time at each frequency"
/// from a granted-frequency trace.  Values after t_end are ignored.
sim::CategoryHistogram residency(const sim::TimeSeries& trace, double t_end);

/// A half-open time window [begin, end).
struct TimeWindow {
  double begin = 0.0;
  double end = 0.0;
};

/// Mean of a sampled series with every sample inside any of `excluded`
/// dropped — Table 2's CPU3* metric with init/exit windows excluded.
/// Returns 0 when nothing survives the filter.
double mean_excluding(const sim::TimeSeries& samples,
                      const std::vector<TimeWindow>& excluded);

/// Mean of samples strictly inside [begin, end).
double mean_within(const sim::TimeSeries& samples, const TimeWindow& window);

/// Rescales a series by 1/scale (for overlaying traces with different
/// units on one chart, as the paper's Fig. 5 does).
sim::TimeSeries normalised(const sim::TimeSeries& in, double scale,
                           const std::string& name);

}  // namespace fvsst::core
