#include "workload/app_profiles.h"

namespace fvsst::workload {
namespace {

Phase make_phase(std::string name, double alpha, double apki_l2,
                 double apki_l3, double apki_mem, double instructions,
                 double latency_scale = 1.0) {
  Phase p;
  p.name = std::move(name);
  p.alpha = alpha;
  p.apki_l2 = apki_l2;
  p.apki_l3 = apki_l3;
  p.apki_mem = apki_mem;
  p.instructions = instructions;
  p.latency_scale = latency_scale;
  return p;
}

}  // namespace

WorkloadSpec gzip() {
  WorkloadSpec spec;
  spec.name = "gzip";
  spec.phases = {
      // Reading/initialising buffers: cold misses, latencies above nominal.
      make_phase("init", 1.4, 10.0, 0.8, 1.0, 4e8, 1.30),
      // Deflate: match-finding in the 32 KB window, almost all L1/L2 hits.
      make_phase("deflate", 1.7, 3.0, 0.15, 0.04, 9e9, 1.02),
      // Huffman coding burst with slightly more L2 traffic.
      make_phase("huffman", 1.6, 5.0, 0.3, 0.08, 3e9, 0.98),
      // Second compression pass at higher effort level.
      make_phase("deflate-hi", 1.7, 3.5, 0.2, 0.05, 8e9, 1.01),
      make_phase("exit", 1.5, 5.0, 0.4, 0.3, 2e8, 1.20),
  };
  return spec;
}

WorkloadSpec gap() {
  WorkloadSpec spec;
  spec.name = "gap";
  spec.phases = {
      make_phase("init", 1.3, 12.0, 1.2, 1.5, 3e8, 1.30),
      // Interpreter dispatch loop: CPU-bound, modest L2 traffic.
      make_phase("interp", 1.5, 5.0, 0.3, 0.06, 7e9, 1.03),
      // Garbage collection sweeps: bursts of L3/memory traffic.
      make_phase("gc", 1.4, 18.0, 3.0, 1.5, 1.2e9, 1.05),
      make_phase("interp2", 1.5, 5.0, 0.3, 0.08, 7e9, 0.99),
      make_phase("gc2", 1.4, 18.0, 3.0, 1.5, 1.2e9, 1.05),
      make_phase("exit", 1.4, 8.0, 0.7, 0.4, 2e8, 1.20),
  };
  return spec;
}

WorkloadSpec mcf() {
  WorkloadSpec spec;
  spec.name = "mcf";
  spec.phases = {
      make_phase("init", 1.2, 18.0, 3.0, 4.0, 3e8, 1.30),
      // Pointer-chasing over the network arcs: dominated by memory, wants
      // ~650 MHz on the P630 table.
      make_phase("simplex-heavy", 1.3, 30.0, 10.0, 24.0, 2.6e9, 1.01),
      // Pricing phases with better locality: want ~800 MHz, so a 500 MHz
      // cap costs real performance (the paper's 0.81 at 35 W).
      make_phase("pricing", 1.4, 22.0, 5.0, 4.5, 1.1e9, 0.97),
      make_phase("simplex-heavy2", 1.3, 30.0, 10.0, 24.5, 2.6e9, 1.01),
      make_phase("pricing2", 1.4, 22.0, 5.0, 4.3, 1.1e9, 0.98),
      make_phase("exit", 1.3, 15.0, 3.0, 2.0, 1.5e8, 1.20),
  };
  return spec;
}

WorkloadSpec health() {
  WorkloadSpec spec;
  spec.name = "health";
  spec.phases = {
      make_phase("init", 1.2, 16.0, 3.0, 3.0, 2e8, 1.30),
      // Linked-list traversal of the patient lists: memory-bound.
      make_phase("traverse", 1.3, 26.0, 9.0, 24.0, 2.2e9, 1.01),
      // Village simulation step with moderate locality: wants ~750 MHz,
      // so health dips harder than mcf at the 35 W budget (0.72 vs 0.81).
      make_phase("simulate", 1.5, 18.0, 4.0, 2.8, 1.4e9, 0.98),
      make_phase("traverse2", 1.3, 26.0, 9.0, 24.5, 2.2e9, 1.01),
      make_phase("simulate2", 1.5, 18.0, 4.0, 2.6, 1.4e9, 0.99),
      make_phase("exit", 1.3, 14.0, 2.5, 1.5, 1.5e8, 1.20),
  };
  return spec;
}

std::vector<WorkloadSpec> paper_applications() {
  return {gzip(), gap(), mcf(), health()};
}

WorkloadSpec crafty() {
  WorkloadSpec spec;
  spec.name = "crafty";
  spec.phases = {
      make_phase("init", 1.5, 8.0, 0.6, 0.8, 2e8, 1.25),
      // Search tree fits the caches: the most CPU-bound profile here.
      make_phase("search", 1.8, 2.5, 0.08, 0.02, 1.1e10, 1.00),
      make_phase("eval", 1.7, 4.0, 0.15, 0.03, 4e9, 1.01),
      make_phase("exit", 1.5, 5.0, 0.4, 0.2, 1e8, 1.15),
  };
  return spec;
}

WorkloadSpec parser() {
  WorkloadSpec spec;
  spec.name = "parser";
  spec.phases = {
      make_phase("init", 1.3, 12.0, 1.0, 1.2, 3e8, 1.30),
      // Dictionary lookups and allocator churn: moderate L2 traffic.
      make_phase("parse", 1.4, 10.0, 0.8, 0.35, 9e9, 1.02),
      make_phase("linkage", 1.3, 14.0, 1.5, 0.8, 3e9, 1.03),
      make_phase("exit", 1.3, 10.0, 1.0, 0.5, 1.5e8, 1.20),
  };
  return spec;
}

WorkloadSpec art() {
  WorkloadSpec spec;
  spec.name = "art";
  spec.phases = {
      make_phase("init", 1.3, 14.0, 2.5, 3.0, 2e8, 1.30),
      // F1 layer scans: streaming reads over arrays bigger than the L3.
      make_phase("scan", 1.4, 24.0, 8.0, 17.0, 2.4e9, 1.02),
      make_phase("match", 1.4, 20.0, 6.0, 9.0, 1.0e9, 0.99),
      make_phase("scan2", 1.4, 24.0, 8.0, 17.5, 2.4e9, 1.01),
      make_phase("exit", 1.3, 12.0, 2.0, 1.5, 1e8, 1.20),
  };
  return spec;
}

WorkloadSpec equake() {
  WorkloadSpec spec;
  spec.name = "equake";
  spec.phases = {
      make_phase("mesh-init", 1.2, 16.0, 3.0, 4.0, 4e8, 1.30),
      // Sparse SMVP time steps: memory-bound with partial reuse.
      make_phase("smvp", 1.3, 26.0, 7.0, 11.0, 3.0e9, 1.03),
      make_phase("update", 1.5, 14.0, 2.5, 2.0, 1.2e9, 0.98),
      make_phase("smvp2", 1.3, 26.0, 7.0, 11.5, 3.0e9, 1.02),
      make_phase("exit", 1.3, 12.0, 2.0, 1.2, 1e8, 1.20),
  };
  return spec;
}

std::vector<WorkloadSpec> extended_applications() {
  auto apps = paper_applications();
  apps.push_back(crafty());
  apps.push_back(parser());
  apps.push_back(art());
  apps.push_back(equake());
  return apps;
}

}  // namespace fvsst::workload
