// mixes.h - Multiprogrammed mixes and cluster-tier workload generators.
//
// The paper targets "multi-programmed, multi-tasking systems" and argues
// that clusters assigned "by tiers, where some machines run the web server,
// some the processing logic and some the database" show strong, persistent
// workload diversity (Sec. 4.2).  These factories produce per-processor
// workload assignments that exhibit exactly that diversity.
#pragma once

#include <cstddef>

#include "simkit/rng.h"
#include "workload/phase.h"

namespace fvsst::workload {

/// A multiprogrammed mix: several jobs time-sliced on one processor.  The
/// scheduler only ever sees the aggregate counters — the paper notes this
/// "may mask the presence of a high CPU-intensity application among many
/// memory-intensive applications".
struct TaskMix {
  std::string name;
  std::vector<WorkloadSpec> jobs;
};

/// The paper's masking example: one CPU-bound job hidden among
/// memory-bound jobs.
TaskMix masked_cpu_job_mix();

/// Cluster tiers.  Each returns the aggregate per-processor workload of a
/// node in that tier.
///
/// Web tier: request parsing and response assembly; moderately CPU-bound
/// with bursts of buffer traffic.
WorkloadSpec web_tier(sim::Rng& rng);
/// Application/processing tier: business logic, CPU-heavy.
WorkloadSpec app_tier(sim::Rng& rng);
/// Database tier: index walks and buffer-pool misses, memory-heavy.
WorkloadSpec db_tier(sim::Rng& rng);

/// Per-processor assignments for a three-tier cluster of `nodes` nodes with
/// `procs_per_node` processors each, split web/app/db roughly 2:1:1.
/// The result is indexed [node][proc].
std::vector<std::vector<WorkloadSpec>> tiered_cluster_assignment(
    std::size_t nodes, std::size_t procs_per_node, sim::Rng& rng);

/// The four per-processor aggregate mixes of the paper's Section 5 worked
/// example at time T0: epsilon-constrained frequencies
/// [1.0, 0.7, 0.8, 0.8] GHz.  `processor0_more_memory_intensive` selects
/// the T1 variant where processor 0's jobs became more memory-intensive
/// (epsilon frequency 0.6 GHz).
std::vector<WorkloadSpec> section5_example_mixes(
    bool processor0_more_memory_intensive);

}  // namespace fvsst::workload
