// synthetic.h - The paper's adjustable synthetic benchmark.
//
// The paper evaluates fvsst with "a single-threaded program that accepts
// parameters that determine the ratio of memory-intensive to CPU-intensive
// work as well as the length of phases.  It currently supports two phases,
// but each phase may be of a different length and different memory-to-CPU
// intensity.  It is constructed so that a miss in the L1 is highly likely to
// result in a memory access due to the large memory footprint."
//
// Here a phase is parameterised by its *CPU intensity* in percent:
// 100 = pure compute (tiny residual memory traffic, so degradation under a
// frequency cap is "slightly less than one-to-one" as in the paper), and
// lower values add main-memory accesses roughly linearly (the large
// footprint sends most L1 misses to memory, with only light L2/L3 traffic).
#pragma once

#include "workload/phase.h"

namespace fvsst::workload {

/// Parameters of one synthetic phase.
struct SyntheticPhaseParams {
  double cpu_intensity_pct = 100.0;  ///< 100 = pure compute, 0 = max memory.
  double instructions = 1e9;         ///< Phase length.
};

/// Parameters of the full synthetic benchmark.
struct SyntheticParams {
  SyntheticPhaseParams phase1;
  SyntheticPhaseParams phase2;
  bool loop = true;  ///< Alternate phase1/phase2 until the run ends.
  /// When true, prepend a short CPU-bound initialisation phase and append a
  /// short termination phase whose behaviour the predictor tracks poorly —
  /// the distinction behind the paper's CPU3 vs CPU3* columns in Table 2.
  bool with_init_exit = false;
};

/// Ideal IPC used by all synthetic phases (a modest superscalar core).
inline constexpr double kSyntheticAlpha = 1.6;

/// Builds one phase from a CPU-intensity percentage.  The mapping is
/// calibrated so a 20%-intensity phase saturates near 650 MHz on the P630
/// table, matching the paper's memory-intensive benchmarks (Fig. 8).
Phase synthetic_phase(const std::string& name, double cpu_intensity_pct,
                      double instructions);

/// Builds the two-phase benchmark.
WorkloadSpec make_synthetic(const SyntheticParams& params);

/// Convenience: a single-phase benchmark at the given intensity.
WorkloadSpec make_uniform_synthetic(double cpu_intensity_pct,
                                    double instructions, bool loop = true);

/// Generalisation beyond the paper's two-phase tool: an arbitrary phase
/// list (the extension its Sec. 7.3 implies — "It currently supports two
/// (2) phases" was a prototype limit, not a design one).
WorkloadSpec make_multiphase_synthetic(
    const std::vector<SyntheticPhaseParams>& phases, bool loop = true);

}  // namespace fvsst::workload
