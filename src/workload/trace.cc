#include "workload/trace.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace fvsst::workload {
namespace {

double parse_number(const std::string& token, int line,
                    const std::string& what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw TraceParseError(line, "bad " + what + " '" + token + "'");
  }
  if (consumed != token.size()) {
    throw TraceParseError(line, "trailing junk in " + what + " '" + token +
                                    "'");
  }
  return value;
}

}  // namespace

WorkloadSpec parse_workload_trace(std::istream& in) {
  WorkloadSpec spec;
  bool have_workload = false;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments and tokenize.
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::vector<std::string> tokens;
    for (std::string tok; line >> tok;) tokens.push_back(tok);
    if (tokens.empty()) continue;

    const std::string& directive = tokens[0];
    if (directive == "workload") {
      if (tokens.size() != 2) {
        throw TraceParseError(line_no, "workload takes exactly one name");
      }
      if (have_workload) {
        throw TraceParseError(line_no, "duplicate workload directive");
      }
      spec.name = tokens[1];
      have_workload = true;
    } else if (directive == "loop") {
      if (tokens.size() != 1) {
        throw TraceParseError(line_no, "loop takes no arguments");
      }
      if (!have_workload) {
        throw TraceParseError(line_no, "loop before workload");
      }
      spec.loop = true;
    } else if (directive == "phase") {
      if (!have_workload) {
        throw TraceParseError(line_no, "phase before workload");
      }
      if (tokens.size() < 7 || tokens.size() > 8) {
        throw TraceParseError(
            line_no,
            "phase needs: name alpha apki_l2 apki_l3 apki_mem instructions "
            "[latency_scale]");
      }
      Phase p;
      p.name = tokens[1];
      p.alpha = parse_number(tokens[2], line_no, "alpha");
      p.apki_l2 = parse_number(tokens[3], line_no, "apki_l2");
      p.apki_l3 = parse_number(tokens[4], line_no, "apki_l3");
      p.apki_mem = parse_number(tokens[5], line_no, "apki_mem");
      p.instructions = parse_number(tokens[6], line_no, "instructions");
      if (tokens.size() == 8) {
        p.latency_scale =
            parse_number(tokens[7], line_no, "latency_scale");
      }
      if (p.alpha <= 0.0) throw TraceParseError(line_no, "alpha must be > 0");
      if (p.instructions <= 0.0) {
        throw TraceParseError(line_no, "instructions must be > 0");
      }
      if (p.apki_l2 < 0.0 || p.apki_l3 < 0.0 || p.apki_mem < 0.0) {
        throw TraceParseError(line_no, "access rates must be >= 0");
      }
      if (p.latency_scale <= 0.0) {
        throw TraceParseError(line_no, "latency_scale must be > 0");
      }
      spec.phases.push_back(std::move(p));
    } else {
      throw TraceParseError(line_no, "unknown directive '" + directive + "'");
    }
  }
  if (!have_workload) {
    throw TraceParseError(line_no, "missing workload directive");
  }
  if (spec.phases.empty()) {
    throw TraceParseError(line_no, "workload has no phases");
  }
  return spec;
}

WorkloadSpec parse_workload_trace_string(const std::string& text) {
  std::istringstream in(text);
  return parse_workload_trace(in);
}

WorkloadSpec load_workload_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open workload trace: " + path);
  }
  return parse_workload_trace(in);
}

std::string format_workload_trace(const WorkloadSpec& spec) {
  std::ostringstream out;
  out << "workload " << spec.name << "\n";
  if (spec.loop) out << "loop\n";
  out.precision(17);
  for (const auto& p : spec.phases) {
    out << "phase " << p.name << " " << p.alpha << " " << p.apki_l2 << " "
        << p.apki_l3 << " " << p.apki_mem << " " << p.instructions;
    if (p.latency_scale != 1.0) out << " " << p.latency_scale;
    out << "\n";
  }
  return out.str();
}

void save_workload_trace(const std::string& path, const WorkloadSpec& spec) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write workload trace: " + path);
  }
  out << format_workload_trace(spec);
  if (!out) {
    throw std::runtime_error("write failed: " + path);
  }
}

}  // namespace fvsst::workload
