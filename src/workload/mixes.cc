#include "workload/mixes.h"

#include "simkit/units.h"
#include "workload/app_profiles.h"
#include "workload/synthetic.h"

namespace fvsst::workload {
namespace {

using units::GHz;

// All mixes below are expressed against the P630's latency constants; the
// stall-CPI targets were chosen so the epsilon-constrained frequencies land
// where the paper's worked example puts them (see section5_example_mixes).
const mach::MemoryLatencies& p630_latencies() {
  static const mach::MemoryLatencies lat = mach::p630().latencies;
  return lat;
}

WorkloadSpec single_phase_mix(const std::string& name, double alpha,
                              double stall_cpi, double instructions) {
  WorkloadSpec spec;
  spec.name = name;
  spec.loop = true;
  spec.phases = {phase_from_stall_cpi(name, alpha, stall_cpi,
                                      p630_latencies(), 1.0 * GHz,
                                      instructions)};
  return spec;
}

}  // namespace

TaskMix masked_cpu_job_mix() {
  TaskMix mix;
  mix.name = "masked-cpu-job";
  // Three memory-bound jobs hide one CPU-bound job; the aggregate counters
  // look memory-intensive, so fvsst under-clocks and the CPU-bound job
  // loses more performance than predicted (paper Sec. 5).
  mix.jobs = {
      make_uniform_synthetic(15.0, 5e8),
      make_uniform_synthetic(20.0, 5e8),
      make_uniform_synthetic(10.0, 5e8),
      make_uniform_synthetic(100.0, 5e8),
  };
  return mix;
}

WorkloadSpec web_tier(sim::Rng& rng) {
  // Request parse/respond cycles: mostly CPU with buffer-copy misses.
  WorkloadSpec spec;
  spec.name = "web-tier";
  spec.loop = true;
  const double jitter = rng.uniform(0.9, 1.1);
  spec.phases = {
      phase_from_stall_cpi("parse", 1.6, 0.8 * jitter, p630_latencies(),
                           1.0 * GHz, 6e8),
      phase_from_stall_cpi("respond", 1.5, 1.6 * jitter, p630_latencies(),
                           1.0 * GHz, 4e8),
  };
  return spec;
}

WorkloadSpec app_tier(sim::Rng& rng) {
  // Business logic: CPU-heavy, near f_max demand.
  WorkloadSpec spec;
  spec.name = "app-tier";
  spec.loop = true;
  const double jitter = rng.uniform(0.9, 1.1);
  spec.phases = {
      phase_from_stall_cpi("logic", 1.7, 0.15 * jitter, p630_latencies(),
                           1.0 * GHz, 8e8),
      phase_from_stall_cpi("marshal", 1.5, 0.9 * jitter, p630_latencies(),
                           1.0 * GHz, 2e8),
  };
  return spec;
}

WorkloadSpec db_tier(sim::Rng& rng) {
  // Index walks and buffer-pool misses: memory-heavy, saturates early.
  WorkloadSpec spec;
  spec.name = "db-tier";
  spec.loop = true;
  const double jitter = rng.uniform(0.9, 1.1);
  spec.phases = {
      phase_from_stall_cpi("index-walk", 1.3, 6.5 * jitter, p630_latencies(),
                           1.0 * GHz, 5e8),
      phase_from_stall_cpi("scan", 1.4, 4.0 * jitter, p630_latencies(),
                           1.0 * GHz, 5e8),
  };
  return spec;
}

std::vector<std::vector<WorkloadSpec>> tiered_cluster_assignment(
    std::size_t nodes, std::size_t procs_per_node, sim::Rng& rng) {
  std::vector<std::vector<WorkloadSpec>> out(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    out[n].reserve(procs_per_node);
    for (std::size_t p = 0; p < procs_per_node; ++p) {
      // Tier assignment by node, web:app:db roughly 2:1:1 across nodes.
      switch (n % 4) {
        case 0:
        case 1:
          out[n].push_back(web_tier(rng));
          break;
        case 2:
          out[n].push_back(app_tier(rng));
          break;
        default:
          out[n].push_back(db_tier(rng));
          break;
      }
    }
  }
  return out;
}

std::vector<WorkloadSpec> section5_example_mixes(
    bool processor0_more_memory_intensive) {
  // Stall-CPI targets chosen (for epsilon = 0.04, alpha = 1.6) so pass 1 of
  // the scheduler lands on the paper's epsilon-constrained vector:
  //   T0: [1.0, 0.7, 0.8, 0.8] GHz;  T1: [0.6, 0.7, 0.8, 0.8] GHz.
  const double m0 = processor0_more_memory_intensive ? 10.4 : 0.06;
  return {
      single_phase_mix("mix-p0", 1.6, m0, 1e9),
      single_phase_mix("mix-p1", 1.6, 6.4, 1e9),
      single_phase_mix("mix-p2", 1.6, 3.9, 1e9),
      single_phase_mix("mix-p3", 1.6, 3.9, 1e9),
  };
}

}  // namespace fvsst::workload
