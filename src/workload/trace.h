// trace.h - Text-format workload definitions.
//
// Lets users describe workloads in files instead of code — the moral
// equivalent of the parameter files driving the paper's synthetic
// benchmark.  Format (one directive per line, '#' starts a comment):
//
//   workload <name>
//   loop                      # optional: repeat the phase list forever
//   phase <name> <alpha> <apki_l2> <apki_l3> <apki_mem> <instructions>
//         [latency_scale]          (all on one line; latency optional)
//
// Example:
//   workload my-mcf
//   phase init     1.2 18 3  4   3e8 1.3
//   phase simplex  1.3 30 10 24  2.6e9
//
// Parsing is strict: unknown directives, malformed numbers, out-of-domain
// values and phase-before-workload all raise TraceParseError with the
// offending line number.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "workload/phase.h"

namespace fvsst::workload {

/// Error with the 1-based line number where parsing failed.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses a workload definition from a stream.  Throws TraceParseError.
WorkloadSpec parse_workload_trace(std::istream& in);

/// Parses from a string (convenience for tests and embedding).
WorkloadSpec parse_workload_trace_string(const std::string& text);

/// Loads from a file.  Throws std::runtime_error if the file cannot be
/// opened, TraceParseError on malformed content.
WorkloadSpec load_workload_trace(const std::string& path);

/// Serialises a spec in the same format (round-trips through the parser).
std::string format_workload_trace(const WorkloadSpec& spec);

/// Writes to a file; throws std::runtime_error on I/O failure.
void save_workload_trace(const std::string& path, const WorkloadSpec& spec);

}  // namespace fvsst::workload
