#include "workload/synthetic.h"

#include <algorithm>
#include <stdexcept>

namespace fvsst::workload {

Phase synthetic_phase(const std::string& name, double cpu_intensity_pct,
                      double instructions) {
  if (cpu_intensity_pct < 0.0 || cpu_intensity_pct > 100.0) {
    throw std::invalid_argument("synthetic_phase: intensity out of [0,100]");
  }
  const double mem_share = (100.0 - cpu_intensity_pct) / 100.0;
  Phase p;
  p.name = name;
  p.alpha = kSyntheticAlpha;
  // Large-footprint accesses: L1 misses mostly go all the way to memory.
  // The residual traffic at 100% intensity gives the paper's "some
  // memory-related stalls even in the CPU-intensive phase".
  p.apki_mem = 16.0 * mem_share + 0.05;
  p.apki_l2 = 4.0 * mem_share + 2.0;
  p.apki_l3 = 2.0 * mem_share + 0.1;
  p.instructions = instructions;
  return p;
}

WorkloadSpec make_synthetic(const SyntheticParams& params) {
  WorkloadSpec spec;
  spec.name = "synthetic";
  spec.loop = params.loop;

  if (params.with_init_exit) {
    // Initialisation touches its whole footprint once: cold misses with
    // latencies the nominal constants underestimate (demand misses with no
    // reuse), which is why the paper's predictor error shrinks when init
    // and exit are excluded (Table 2, CPU3*).
    Phase init = synthetic_phase("init", 40.0, 4e8);
    init.latency_scale = 1.35;
    spec.phases.push_back(init);
  }

  spec.phases.push_back(synthetic_phase(
      "phase1", params.phase1.cpu_intensity_pct, params.phase1.instructions));
  spec.phases.push_back(synthetic_phase(
      "phase2", params.phase2.cpu_intensity_pct, params.phase2.instructions));

  if (params.with_init_exit) {
    Phase exit = synthetic_phase("exit", 90.0, 1e8);
    exit.latency_scale = 1.25;
    spec.phases.push_back(exit);
    // Init/exit only make sense for a finite run.
    spec.loop = false;
  }
  return spec;
}

WorkloadSpec make_multiphase_synthetic(
    const std::vector<SyntheticPhaseParams>& phases, bool loop) {
  if (phases.empty()) {
    throw std::invalid_argument("make_multiphase_synthetic: no phases");
  }
  WorkloadSpec spec;
  spec.name = "synthetic-multiphase";
  spec.loop = loop;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    spec.phases.push_back(synthetic_phase("phase" + std::to_string(i + 1),
                                          phases[i].cpu_intensity_pct,
                                          phases[i].instructions));
  }
  return spec;
}

WorkloadSpec make_uniform_synthetic(double cpu_intensity_pct,
                                    double instructions, bool loop) {
  WorkloadSpec spec;
  spec.name = "synthetic-uniform";
  spec.loop = loop;
  spec.phases.push_back(
      synthetic_phase("uniform", cpu_intensity_pct, instructions));
  return spec;
}

}  // namespace fvsst::workload
