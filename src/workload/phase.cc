#include "workload/phase.h"

#include <limits>

namespace fvsst::workload {

double mem_time_per_instruction(const Phase& phase,
                                const mach::MemoryLatencies& lat,
                                bool use_true_latency) {
  const double scale = use_true_latency ? phase.latency_scale : 1.0;
  return scale * (phase.apki_l2 / 1000.0 * lat.t_l2 +
                  phase.apki_l3 / 1000.0 * lat.t_l3 +
                  phase.apki_mem / 1000.0 * lat.t_mem);
}

double true_ipc(const Phase& phase, const mach::MemoryLatencies& lat,
                double hz) {
  const double cpi = 1.0 / phase.alpha +
                     mem_time_per_instruction(phase, lat) * hz;
  return 1.0 / cpi;
}

double true_performance(const Phase& phase, const mach::MemoryLatencies& lat,
                        double hz) {
  return true_ipc(phase, lat, hz) * hz;
}

double saturation_performance(const Phase& phase,
                              const mach::MemoryLatencies& lat) {
  const double m = mem_time_per_instruction(phase, lat);
  if (m <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / m;
}

double WorkloadSpec::total_instructions() const {
  double total = 0.0;
  for (const auto& p : phases) total += p.instructions;
  return total;
}

double WorkloadSpec::duration_at(const mach::MemoryLatencies& lat,
                                 double hz) const {
  double seconds = 0.0;
  for (const auto& p : phases) {
    seconds += p.instructions / true_performance(p, lat, hz);
  }
  return seconds;
}

Phase phase_from_stall_cpi(const std::string& name, double alpha,
                           double stall_cpi_at_nominal,
                           const mach::MemoryLatencies& lat,
                           double nominal_hz, double instructions,
                           double frac_l2, double frac_l3, double frac_mem) {
  const double m_seconds = stall_cpi_at_nominal / nominal_hz;
  Phase p;
  p.name = name;
  p.alpha = alpha;
  p.instructions = instructions;
  // apki_level = (fraction of stall time at level) * M / T_level * 1000.
  p.apki_l2 = frac_l2 * m_seconds / lat.t_l2 * 1000.0;
  p.apki_l3 = frac_l3 * m_seconds / lat.t_l3 * 1000.0;
  p.apki_mem = frac_mem * m_seconds / lat.t_mem * 1000.0;
  return p;
}

WorkloadSpec idle_loop(double idle_ipc) {
  Phase p;
  p.name = "hot-idle";
  p.alpha = idle_ipc;
  p.instructions = 1e9;  // length is irrelevant: the loop repeats forever
  WorkloadSpec spec;
  spec.name = "idle";
  spec.phases = {p};
  spec.loop = true;
  return spec;
}

}  // namespace fvsst::workload
