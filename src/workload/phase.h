// phase.h - The phase-based workload model.
//
// Following the paper's performance model, a workload phase is characterised
// by a frequency-independent ideal IPC (alpha: "the IPC of a perfect machine
// with infinite L1 caches and no stalls") plus per-instruction access counts
// to each level of the memory hierarchy below L1.  Cycles per instruction at
// frequency f decompose as
//
//   CPI(f) = 1/alpha + M * f,   M = sum_i (accesses_i / instr) * T_i
//
// where T_i are the *service times in seconds* of L2/L3/memory, so the
// memory term grows linearly with frequency: this is what produces
// performance saturation.  `latency_scale` lets a phase's true service
// times deviate from the machine's nominal constants — the predictor only
// knows the nominal values, which is one of the paper's stated error
// sources ("uses constant memory latencies").
#pragma once

#include <string>
#include <vector>

#include "mach/machine_config.h"

namespace fvsst::workload {

/// One phase of execution with stationary behaviour.
struct Phase {
  std::string name;

  /// Ideal IPC with infinite L1 and no stalls (paper's alpha).
  double alpha = 1.0;

  /// Accesses per kilo-instruction *serviced by* each level.
  double apki_l2 = 0.0;
  double apki_l3 = 0.0;
  double apki_mem = 0.0;

  /// Phase length in instructions.
  double instructions = 0.0;

  /// True service time = nominal latency * latency_scale.  Values != 1
  /// model latency variation the predictor cannot see (overlap, queueing).
  double latency_scale = 1.0;
};

/// Memory stall time per instruction (the paper's M, in seconds):
/// sum over levels of (accesses/instr) * T_level.  When `use_true_latency`
/// the phase's latency_scale is applied; the predictor variant uses the
/// nominal constants only.
double mem_time_per_instruction(const Phase& phase,
                                const mach::MemoryLatencies& lat,
                                bool use_true_latency = true);

/// Ground-truth IPC of the phase at frequency `hz`:
/// IPC(f) = 1 / (1/alpha + M*f).
double true_ipc(const Phase& phase, const mach::MemoryLatencies& lat,
                double hz);

/// Ground-truth performance (instructions per second) at `hz`:
/// Perf(f) = IPC(f) * f.
double true_performance(const Phase& phase, const mach::MemoryLatencies& lat,
                        double hz);

/// Saturation performance as f -> infinity: 1 / M (infinite for phases with
/// no memory accesses).
double saturation_performance(const Phase& phase,
                              const mach::MemoryLatencies& lat);

/// A complete workload: an ordered list of phases, optionally looped.
struct WorkloadSpec {
  std::string name;
  std::vector<Phase> phases;
  bool loop = false;  ///< Repeat the phase list until the run ends.

  /// Total instructions over one pass of the phase list.
  double total_instructions() const;

  /// Execution time of one pass at a fixed frequency (seconds).
  double duration_at(const mach::MemoryLatencies& lat, double hz) const;
};

/// Builds a phase from a target memory-stall CPI.  `stall_cpi_at_nominal`
/// is M * nominal_hz, i.e. the stall cycles per instruction the phase shows
/// at the machine's nominal frequency; the access counts are split across
/// L2/L3/memory by the given time fractions (which must sum to 1).  Used by
/// tests and by workload factories that target a specific saturation point.
Phase phase_from_stall_cpi(const std::string& name, double alpha,
                           double stall_cpi_at_nominal,
                           const mach::MemoryLatencies& lat,
                           double nominal_hz, double instructions,
                           double frac_l2 = 0.05, double frac_l3 = 0.15,
                           double frac_mem = 0.80);

/// The hot idle loop of the Power4+ (paper Sec. 7.1): a tight CPU-bound
/// loop observed at IPC ~1.3 with no memory-hierarchy traffic.  Looped
/// forever.  An fvsst without idle detection will schedule this at f_max.
WorkloadSpec idle_loop(double idle_ipc = 1.3);

}  // namespace fvsst::workload
