// app_profiles.h - Phase profiles of the paper's real-world benchmarks.
//
// The paper evaluates gzip, gap and mcf from SPEC CPU2000 plus health from
// the Olden suite: "gzip and gap are CPU-intensive applications while mcf
// and health are memory-intensive applications" (Sec. 7.3).  We cannot run
// the proprietary SPEC binaries, so each application is modelled as a
// multi-phase profile whose alpha and per-level access rates are chosen to
// match the published behaviour on the P630:
//
//   - gzip/gap: near-linear slowdown under a frequency cap
//     (Table 3: perf 0.79-0.8 at 75 W, 0.52-0.54 at 35 W), desired
//     frequencies concentrated at 950-1000 MHz (Fig. 8);
//   - mcf/health: saturation around 650 MHz, no loss at 75 W, and a
//     0.7-0.8 performance dip only at 35 W because some phases want
//     600+ MHz (Table 3 and the paper's discussion);
//   - every profile has short initialisation/termination phases with
//     latency behaviour the predictor tracks poorly (Table 2's CPU3*).
//
// The substitution preserves behaviour because fvsst observes applications
// *only* through aggregate counter streams; any workload with the same
// access-rate time series is indistinguishable to the scheduler.
#pragma once

#include "workload/phase.h"

namespace fvsst::workload {

/// SPEC CPU2000 164.gzip (compression): CPU-bound, small working set.
WorkloadSpec gzip();

/// SPEC CPU2000 254.gap (group theory interpreter): CPU-bound with
/// moderate cache traffic.
WorkloadSpec gap();

/// SPEC CPU2000 181.mcf (network simplex): severely memory-bound with
/// pointer-chasing phases of varying intensity.
WorkloadSpec mcf();

/// Olden health (hierarchical database simulation): memory-bound linked
/// structures, slightly less extreme than mcf.
WorkloadSpec health();

/// All four applications in the order the paper's tables use.
std::vector<WorkloadSpec> paper_applications();

// --- Beyond the paper: additional SPEC CPU2000 profiles -------------------
// Four more applications that appear throughout the contemporaneous DVFS
// literature, characterised the same way.  They widen the workload
// spectrum for ablations: crafty is the most CPU-bound workload in the
// set, art/equake are streaming/sparse memory-bound codes between gzip
// and mcf in intensity.

/// SPEC CPU2000 186.crafty (chess): tiny working set, high ILP.
WorkloadSpec crafty();

/// SPEC CPU2000 197.parser (link grammar): CPU-bound with moderate cache
/// traffic and allocator churn.
WorkloadSpec parser();

/// SPEC CPU2000 179.art (neural network image recognition): streaming
/// scans over feature arrays, strongly memory-bound.
WorkloadSpec art();

/// SPEC CPU2000 183.equake (FEM earthquake simulation): sparse
/// matrix-vector work, memory-bound with some locality.
WorkloadSpec equake();

/// paper_applications() plus the four extended profiles.
std::vector<WorkloadSpec> extended_applications();

}  // namespace fvsst::workload
