// optimal.h - Optimization-based baselines and the optimality oracle.
//
// The two-pass heuristic is one point in policy space.  PAPERS.md's
// optimal-frequency line of work gives the other end: "Some Observations
// on Optimal Frequency Selection in DVFS-based Energy Consumption
// Minimization" (arxiv 1201.1695) shows the continuous optimum is realised
// on a discrete table by time-slicing each CPU between the two table
// entries adjacent to its ideal continuous frequency, and "Multiple
// Frequency Selection in DVFS-Enabled Processors to Minimize Energy
// Consumption" (arxiv 1203.5160) formulates the general problem as a
// linear program over per-frequency time fractions.  This header provides
// both as baselines::Policy implementations plus the LP machinery the
// optimality-gap harness (bench_abl_policies, tools/fvsst_oracle) uses to
// lower-bound what any frequency-scaling policy could have achieved.
//
// Everything here is deterministic: the simplex pivots by Bland's rule
// (no randomness, no cycling), the duty-cycle realisation uses exact
// credit arithmetic, and no wall-clock state is consulted — two runs over
// the same inputs are byte-identical.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "baselines/policies.h"
#include "mach/frequency_table.h"

namespace fvsst::baselines {

// ---------------------------------------------------------------------------
// A small self-contained LP solver (no external dependencies).
// ---------------------------------------------------------------------------

/// min c.x subject to rows `a.x (<=|>=|==) b` and x >= 0.
struct LinearProgram {
  enum class Relation { kLe, kGe, kEq };
  struct Row {
    std::vector<double> a;
    Relation rel = Relation::kLe;
    double b = 0.0;
  };
  std::vector<double> c;
  std::vector<Row> rows;
};

/// Solution of a LinearProgram.
struct LpSolution {
  bool feasible = false;
  double objective = 0.0;   ///< c.x at the optimum (0 when infeasible).
  std::vector<double> x;    ///< Optimal point (empty when infeasible).
};

/// Two-phase dense simplex with Bland's rule: deterministic (pure
/// smallest-index pivoting, no randomness) and cycle-free.  Intended for
/// the small programs this file builds (tens of rows, hundreds of
/// columns); unbounded programs return feasible with the last vertex
/// visited (the programs here are all bounded by construction: every
/// variable is a time fraction in a unit simplex).
LpSolution solve_lp(const LinearProgram& lp);

// ---------------------------------------------------------------------------
// The frequency-selection LPs (arxiv 1203.5160).
// ---------------------------------------------------------------------------

/// Predicted performance (instructions/second) of the paper's model at
/// `hz`: hz / (alpha_inv + M * hz).  Zero for invalid estimates.
double model_performance(const core::WorkloadEstimate& est, double hz);

/// Sum of model_performance at f_max over busy CPUs with valid estimates —
/// the loss reference every gap below is measured against.
double reference_performance(const std::vector<ProcSample>& procs,
                             const mach::FrequencyTable& table);

/// A fractional (time-sliced) frequency schedule: fractions[p][i] is the
/// fraction of time processor p spends at table point i.  Rows sum to 1.
struct FractionalSchedule {
  bool feasible = false;
  std::vector<std::vector<double>> fractions;
  double total_performance = 0.0;  ///< Expected model performance (busy+valid).
  double total_power_w = 0.0;      ///< Expected aggregate power (watts).
};

/// Performance-optimal LP: maximize total expected model performance
/// subject to per-CPU fractions summing to 1 and expected aggregate power
/// <= budget_w.  Idle CPUs and CPUs without a valid estimate contribute
/// zero objective (the model predicts nothing for them), so the program is
/// feasible exactly when n * w_min <= budget_w — the same condition under
/// which the greedy pass 2 reports feasible.  Its optimum upper-bounds the
/// model performance of EVERY within-budget, always-on frequency
/// assignment (any such assignment is a vertex of this polytope), which is
/// what makes the optimality gap in bench_abl_policies nonnegative.
FractionalSchedule lp_max_performance(const std::vector<ProcSample>& procs,
                                      const mach::FrequencyTable& table,
                                      double budget_w);

/// Energy-optimal LP (the 1203.5160 objective): minimize expected power
/// subject to fractions summing to 1, expected aggregate power <= budget_w
/// and, per busy CPU with a valid estimate, expected performance >=
/// (1 - epsilon) * performance(f_max).  CPUs without a valid estimate are
/// pinned to f_max (the heuristic's kNoEstimate behaviour: predict
/// nothing, assume the worst); idle CPUs are unconstrained and the
/// objective drives them to f_min.  May be infeasible under budgets that
/// force more than epsilon loss even fractionally — callers fall back to
/// lp_max_performance then.
FractionalSchedule lp_min_energy(const std::vector<ProcSample>& procs,
                                 const mach::FrequencyTable& table,
                                 double budget_w, double epsilon);

// ---------------------------------------------------------------------------
// The optimality-gap report (bench_abl_policies, tools/fvsst_oracle).
// ---------------------------------------------------------------------------

/// How far a concrete assignment sits from the LP bounds, all in the
/// predictor's model (so a policy fed oracle estimates is scored against
/// the same physics the LP optimised).
struct GapReport {
  bool lp_feasible = false;        ///< n * w_min <= budget held.
  double reference_performance = 0.0;  ///< Everyone busy+valid at f_max.
  double lp_performance = 0.0;     ///< lp_max_performance optimum.
  double lp_loss = 0.0;            ///< (ref - lp_perf) / ref.
  double policy_performance = 0.0; ///< Model performance of `assignments`.
  double policy_loss = 0.0;        ///< (ref - policy_perf) / ref.
  /// policy_loss - lp_loss.  Nonnegative for every within-budget always-on
  /// assignment; policies that power processors off (power-down,
  /// consolidate) leave the LP's feasible set and may go negative.
  double gap = 0.0;
  double policy_power_w = 0.0;     ///< Table power of `assignments`.
  /// lp_min_energy optimum at the same epsilon; < 0 when that LP is
  /// infeasible (the budget forces more than epsilon loss).
  double lp_min_energy_w = -1.0;
};

/// Scores `assignments` (parallel to `procs`) against both LPs.
GapReport optimality_gap(const std::vector<ProcSample>& procs,
                         const std::vector<Assignment>& assignments,
                         const mach::FrequencyTable& table, double budget_w,
                         double epsilon);

// ---------------------------------------------------------------------------
// The policies.
// ---------------------------------------------------------------------------

/// The 1201.1695 optimum on a discrete table: each CPU time-slices between
/// the two table entries adjacent to its ideal continuous frequency
/// (core::ideal_frequency), with a shared continuous frequency cap bisected
/// so the expected aggregate power meets the budget.  decide() realises
/// the per-CPU split as a deterministic duty cycle: an error-diffusion
/// credit per CPU accumulates the high-point fraction and grants the high
/// point when it reaches one, so the long-run residency converges to the
/// planned split while every single interval stays a real table setting.
/// Intervals whose rounding would overshoot the budget defer the high
/// grant (the all-low configuration always fits whenever the plan is
/// feasible), so per-interval budget compliance is unconditional.
class TwoFrequencySplitPolicy final : public Policy {
 public:
  explicit TwoFrequencySplitPolicy(double epsilon = 0.04)
      : epsilon_(epsilon) {}
  std::string name() const override { return "two-freq-split"; }

  /// One CPU's planned split: table indices of the adjacent pair (lo ==
  /// hi for a pure point) and the fraction of time at the high entry.
  struct Split {
    std::size_t lo = 0;
    std::size_t hi = 0;
    double hi_fraction = 0.0;
  };

  /// The stateless per-interval plan (exposed for the property tests:
  /// adjacency and budget feasibility are properties of the plan).
  std::vector<Split> plan(const std::vector<ProcSample>& procs,
                          const mach::FrequencyTable& table,
                          double budget_w) const;

  std::vector<Assignment> decide(const std::vector<ProcSample>& procs,
                                 const mach::FrequencyTable& table,
                                 double budget_w) const override;

 private:
  double epsilon_;
  /// Duty-cycle state: accumulated high-point credit per CPU.  decide() is
  /// const across the Policy interface, but the duty cycle is inherently
  /// stateful; mutable keeps the interface unchanged.  Fresh instances
  /// start at zero credit, so two runs from the same seed (each with its
  /// own instance) are bit-identical.
  mutable std::vector<double> credit_;
};

/// The 1203.5160 multiple-frequency LP as a live policy: solve the
/// energy-optimal LP each interval and realise the per-CPU fractional
/// schedule as a deterministic duty cycle (largest-credit selection per
/// CPU, budget-aware rounding).  When the energy LP is infeasible — the
/// budget forces more than epsilon loss — the policy degrades to the
/// performance-optimal LP (mirroring pass 2's "relax epsilon until the
/// budget fits"); when even that is infeasible (n * w_min > budget) every
/// CPU pins to f_min, exactly the greedy's infeasible behaviour.
class LpFrequencySelectionPolicy final : public Policy {
 public:
  explicit LpFrequencySelectionPolicy(double epsilon = 0.04)
      : epsilon_(epsilon) {}
  std::string name() const override { return "lp-optimal"; }

  /// The fractional plan decide() realises: lp_min_energy, falling back to
  /// lp_max_performance (exposed for the property tests).
  FractionalSchedule solve(const std::vector<ProcSample>& procs,
                           const mach::FrequencyTable& table,
                           double budget_w) const;

  std::vector<Assignment> decide(const std::vector<ProcSample>& procs,
                                 const mach::FrequencyTable& table,
                                 double budget_w) const override;

 private:
  double epsilon_;
  /// Per-CPU, per-table-point duty-cycle credits (see TwoFrequencySplit).
  mutable std::vector<std::vector<double>> credit_;
};

/// Builds a comparator policy by wire name ("no-dvfs", "uniform",
/// "power-down", "consolidate", "dbs", "dbs-capped", "two-freq-split",
/// "lp-optimal").  The optimization policies take their epsilon from
/// `options`; returns nullptr for unknown names (note "fvsst" is the
/// default scheduler stage, not a comparator — callers wanting it should
/// not construct an adapter at all).
std::unique_ptr<Policy> make_policy(const std::string& name,
                                    const core::FrequencyScheduler::Options&
                                        options);

}  // namespace fvsst::baselines
