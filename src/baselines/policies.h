// policies.h - Comparator power-management policies.
//
// The paper motivates fvsst against the practical alternatives for meeting
// a shrinking power budget: "powering down some nodes or slowing all nodes
// in a system uniformly", plus the utilisation-driven scaling of
// Transmeta's LongRun and Intel's Demand Based Switching, which "rely on
// simple metrics like the number of non-halted cycles" and ignore memory
// behaviour.  Each policy here maps per-processor samples to frequency
// assignments so the benches can compare them on identical workloads.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/control_loop.h"
#include "core/predictor.h"
#include "core/scheduler.h"
#include "mach/frequency_table.h"
#include "workload/phase.h"

namespace fvsst::baselines {

/// Per-processor input to a policy.
struct ProcSample {
  core::WorkloadEstimate estimate;  ///< Workload model (oracle or measured).
  bool idle = false;                ///< True idle state (OS knowledge).
  /// Utilisation as a naive non-halted-cycle monitor reports it.  On
  /// hot-idle hardware like the Power4+ this reads 1.0 even when idle —
  /// exactly why the paper says such metrics mislead.
  double naive_utilization = 1.0;
};

/// Per-processor outcome.
struct Assignment {
  double hz = 0.0;         ///< Assigned frequency (a table setting).
  bool powered_on = true;  ///< False: processor/node switched off (0 W).
};

/// Interface for all policies.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  /// Chooses assignments under an aggregate CPU power budget (watts).
  virtual std::vector<Assignment> decide(const std::vector<ProcSample>& procs,
                                         const mach::FrequencyTable& table,
                                         double budget_w) const = 0;
};

/// No power management: everything at f_max regardless of budget.  Under a
/// reduced budget this policy rides straight into a cascade failure.
class MaxFrequencyPolicy final : public Policy {
 public:
  std::string name() const override { return "no-dvfs"; }
  std::vector<Assignment> decide(const std::vector<ProcSample>&,
                                 const mach::FrequencyTable&,
                                 double) const override;
};

/// Uniform scaling: every processor runs at the highest common frequency
/// whose aggregate power fits the budget.
class UniformScalingPolicy final : public Policy {
 public:
  std::string name() const override { return "uniform"; }
  std::vector<Assignment> decide(const std::vector<ProcSample>&,
                                 const mach::FrequencyTable&,
                                 double budget_w) const override;
};

/// Node power-down: keep processors at f_max but switch processors off
/// (idle ones first, then the lowest-demand ones) until the rest fit.
class PowerDownPolicy final : public Policy {
 public:
  std::string name() const override { return "power-down"; }
  std::vector<Assignment> decide(const std::vector<ProcSample>&,
                                 const mach::FrequencyTable&,
                                 double budget_w) const override;
};

/// Work consolidation: the "schedule work, not frequencies" alternative
/// the paper's introduction weighs.  Migrates all jobs onto the fewest
/// processors that fit the budget at f_max (each processor can absorb one
/// extra job time-sliced), powers the rest off.  Requires the work
/// migration the paper notes is "difficult or impossible" in clusters;
/// included to quantify what fvsst gives up by not migrating.
class ConsolidationPolicy final : public Policy {
 public:
  std::string name() const override { return "consolidate"; }
  std::vector<Assignment> decide(const std::vector<ProcSample>&,
                                 const mach::FrequencyTable&,
                                 double budget_w) const override;

  /// Consolidation changes which processor runs what, so evaluation
  /// differs: total performance is preserved workloads time-shared on the
  /// surviving processors.  Returns aggregate performance when `jobs`
  /// real workloads are packed onto `hosts` processors at `hz`.
  static double consolidated_performance(
      const std::vector<workload::Phase>& jobs,
      const std::vector<bool>& idle, std::size_t hosts, double hz,
      const mach::MemoryLatencies& lat);
};

/// Utilisation-driven scaling in the style of LongRun / Demand Based
/// Switching: frequency proportional to naive utilisation, snapped up to a
/// table setting.  Knows nothing about memory behaviour or budgets; the
/// optional uniform cap bolts budget compliance on top so it can be
/// compared under constraint.
class DemandBasedSwitchingPolicy final : public Policy {
 public:
  explicit DemandBasedSwitchingPolicy(bool budget_capped = true)
      : budget_capped_(budget_capped) {}
  std::string name() const override {
    return budget_capped_ ? "dbs-capped" : "dbs";
  }
  std::vector<Assignment> decide(const std::vector<ProcSample>&,
                                 const mach::FrequencyTable&,
                                 double budget_w) const override;

 private:
  bool budget_capped_;
};

/// fvsst's scheduler wrapped as a Policy for apples-to-apples comparison.
class FvsstPolicy final : public Policy {
 public:
  explicit FvsstPolicy(core::FrequencyScheduler::Options options = {})
      : options_(options) {}
  std::string name() const override { return "fvsst"; }
  std::vector<Assignment> decide(const std::vector<ProcSample>&,
                                 const mach::FrequencyTable&,
                                 double budget_w) const override;

 private:
  core::FrequencyScheduler::Options options_;
};

/// Runs any comparator Policy as a core::ControlLoop policy stage, so the
/// alternatives can be driven by the same live engine as fvsst itself.
/// ProcViews map onto ProcSamples (estimate, idle, utilisation) and
/// assignments map back onto ScheduleDecisions; a powered-off processor
/// keeps its assigned frequency but contributes 0 W.  The wrapped Policy
/// takes a single table, so the cluster must be homogeneous (the stage
/// uses the first per-processor table).
class PolicyStageAdapter final : public core::PolicyStage {
 public:
  explicit PolicyStageAdapter(std::unique_ptr<Policy> policy)
      : policy_(std::move(policy)) {}

  core::ScheduleResult decide(
      const std::vector<core::ProcView>& views,
      const std::vector<const mach::FrequencyTable*>& tables,
      double power_budget_w) override;

  const Policy& policy() const { return *policy_; }

 private:
  std::unique_ptr<Policy> policy_;
};

/// Builds an oracle estimate straight from a phase's ground truth, so
/// policies can be compared free of measurement noise.
core::WorkloadEstimate oracle_estimate(const workload::Phase& phase,
                                       const mach::MemoryLatencies& lat);

/// Outcome of evaluating a set of assignments against ground truth.
struct Evaluation {
  double total_performance = 0.0;  ///< Sum of instructions/second.
  double total_power_w = 0.0;      ///< Aggregate CPU power.
  double worst_proc_loss = 0.0;    ///< Max per-proc loss vs f_max.
  bool within_budget = true;
  std::vector<double> per_proc_performance;
};

/// Scores assignments on the true phases (idle processors contribute no
/// performance but full power when on).
Evaluation evaluate(const std::vector<Assignment>& assignments,
                    const std::vector<workload::Phase>& truth,
                    const std::vector<bool>& idle,
                    const mach::MemoryLatencies& lat,
                    const mach::FrequencyTable& table, double budget_w);

/// All standard policies, fvsst last.
std::vector<std::unique_ptr<Policy>> standard_policies();

}  // namespace fvsst::baselines
