#include "baselines/governor_daemon.h"

#include <algorithm>

namespace fvsst::baselines {

std::string governor_name(GovernorPolicy policy) {
  switch (policy) {
    case GovernorPolicy::kPerformance: return "performance";
    case GovernorPolicy::kPowersave: return "powersave";
    case GovernorPolicy::kOndemand: return "ondemand";
    case GovernorPolicy::kConservative: return "conservative";
  }
  return "?";
}

GovernorDaemon::GovernorDaemon(sim::Simulation& sim,
                               cluster::Cluster& cluster,
                               const mach::FrequencyTable& table,
                               Config config)
    : sim_(sim),
      cluster_(cluster),
      table_(table),
      config_(config),
      procs_(cluster.all_procs()) {
  last_.resize(procs_.size());
  util_.assign(procs_.size(), 1.0);
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    last_[i] = cluster_.core(procs_[i]).read_counters();
    traces_.emplace_back("gov_hz_cpu" + std::to_string(i));
    proc_tables_.push_back(
        &cluster_.node(procs_[i].node).machine().freq_table);
  }
  event_ = sim_.schedule_every(config_.period_s, [this] { tick(); });
}

GovernorDaemon::~GovernorDaemon() {
  sim_.cancel(event_);
}

double GovernorDaemon::decide_hz(const mach::FrequencyTable& table,
                                 double util, double current_hz) const {
  switch (config_.policy) {
    case GovernorPolicy::kPerformance:
      return table.max_hz();
    case GovernorPolicy::kPowersave:
      return table.min_hz();
    case GovernorPolicy::kOndemand: {
      // Classic ondemand: saturate to f_max above the threshold, else run
      // proportional to load (snapped up to an available setting).
      if (util >= config_.up_threshold) return table.max_hz();
      const double target = table.max_hz() * util / config_.up_threshold;
      return table.ceil_point(std::max(target, table.min_hz())).hz;
    }
    case GovernorPolicy::kConservative: {
      if (util >= config_.up_threshold) {
        const auto higher = table.next_higher(current_hz);
        return higher ? higher->hz : current_hz;
      }
      if (util <= config_.down_threshold) {
        const auto lower = table.next_lower(current_hz);
        return lower ? lower->hz : current_hz;
      }
      return current_hz;
    }
  }
  return current_hz;
}

void GovernorDaemon::tick() {
  ++evaluations_;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    auto& core = cluster_.core(procs_[i]);
    const cpu::PerfCounters now = core.read_counters();
    const cpu::PerfCounters delta = now - last_[i];
    last_[i] = now;
    // Non-halted fraction: the "simple metric" of LongRun/DBS.  Hot idle
    // produces zero halted cycles, so this reads 1.0 — deliberately.
    const double util =
        delta.cycles > 0.0
            ? 1.0 - std::clamp(delta.halted_cycles / delta.cycles, 0.0, 1.0)
            : util_[i];
    util_[i] = util;
    const double hz = decide_hz(*proc_tables_[i], util, core.frequency_hz());
    if (hz != core.frequency_hz()) core.set_frequency(hz);
    if (config_.record_traces) traces_[i].add(sim_.now(), hz);
  }
}

}  // namespace fvsst::baselines
