#include "baselines/governor_daemon.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace fvsst::baselines {

std::string governor_name(GovernorPolicy policy) {
  switch (policy) {
    case GovernorPolicy::kPerformance: return "performance";
    case GovernorPolicy::kPowersave: return "powersave";
    case GovernorPolicy::kOndemand: return "ondemand";
    case GovernorPolicy::kConservative: return "conservative";
  }
  return "?";
}

void UtilizationEstimator::update(
    const std::vector<core::IntervalSample>& samples,
    std::vector<core::ProcView>& views) {
  for (std::size_t i = 0; i < samples.size() && i < views.size(); ++i) {
    const core::IntervalSample& s = samples[i];
    core::ProcView& v = views[i];
    // Non-halted fraction: the "simple metric" of LongRun/DBS.  Hot idle
    // produces zero halted cycles, so this reads 1.0 — deliberately.
    if (s.valid) {
      v.utilization =
          1.0 - std::clamp(s.delta.halted_cycles / s.delta.cycles, 0.0, 1.0);
    }
    v.current_hz = s.current_hz;
  }
}

GovernorPolicyStage::GovernorPolicyStage(GovernorPolicy policy,
                                         double up_threshold,
                                         double down_threshold)
    : policy_(policy),
      up_threshold_(up_threshold),
      down_threshold_(down_threshold) {}

double GovernorPolicyStage::decide_hz(const mach::FrequencyTable& table,
                                      double util, double current_hz) const {
  switch (policy_) {
    case GovernorPolicy::kPerformance:
      return table.max_hz();
    case GovernorPolicy::kPowersave:
      return table.min_hz();
    case GovernorPolicy::kOndemand: {
      // Classic ondemand: saturate to f_max above the threshold, else run
      // proportional to load (snapped up to an available setting).
      if (util >= up_threshold_) return table.max_hz();
      const double target = table.max_hz() * util / up_threshold_;
      return table.ceil_point(std::max(target, table.min_hz())).hz;
    }
    case GovernorPolicy::kConservative: {
      if (util >= up_threshold_) {
        const auto higher = table.next_higher(current_hz);
        return higher ? higher->hz : current_hz;
      }
      if (util <= down_threshold_) {
        const auto lower = table.next_lower(current_hz);
        return lower ? lower->hz : current_hz;
      }
      return current_hz;
    }
  }
  return current_hz;
}

core::ScheduleResult GovernorPolicyStage::decide(
    const std::vector<core::ProcView>& views,
    const std::vector<const mach::FrequencyTable*>& tables,
    double power_budget_w) {
  (void)power_budget_w;  // Budget-blind — the paper's core critique.
  core::ScheduleResult result;
  result.decisions.resize(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    const mach::FrequencyTable& table = *tables[i];
    const double hz = decide_hz(table, views[i].utilization,
                                views[i].current_hz);
    auto& d = result.decisions[i];
    d.desired_hz = hz;
    d.hz = hz;
    const auto point = table.ceil_point(hz);
    d.volts = point.volts;
    d.watts = point.watts;
    result.total_cpu_power_w += d.watts;
  }
  return result;
}

GovernorDaemon::GovernorDaemon(sim::Simulation& sim,
                               cluster::Cluster& cluster,
                               const mach::FrequencyTable& table,
                               Config config)
    : sim_(sim),
      cluster_(cluster),
      config_(config),
      procs_(cluster.all_procs()) {
  (void)table;  // Kept for interface symmetry; per-node tables are used.
  for (const auto& addr : procs_) {
    proc_tables_.push_back(&cluster_.node(addr.node).machine().freq_table);
  }

  core::ControlLoopConfig loop_config;
  loop_config.schedule_every_n_samples = 1;  // Every tick is an evaluation.
  loop_config.record_traces = config_.record_traces;
  loop_config.metric_prefix = "gov_cpu";
  loop_config.naming.granted = "gov_hz_cpu";
  loop_config.naming.desired = "gov_desired_hz_cpu";
  loop_config.naming.predicted_ipc = "gov_predicted_ipc_cpu";
  loop_config.naming.measured_ipc = "gov_measured_ipc_cpu";
  loop_config.naming.deviation = "gov_ipc_deviation_cpu";
  loop_config.naming.append_cpu_index = true;
  loop_config.journal = config_.journal;
  if (config_.journal) {
    // Governors evaluate every tick (multiplier 1) and know nothing of
    // budget triggers, so no T-restart semantic to verify.
    config_.journal->append(sim_.now(), sim::EventType::kRunMeta)
        .set("t_sample_s", config_.period_s)
        .set("multiplier", 1.0)
        .set("cpus", static_cast<double>(procs_.size()))
        .set("t_restarts", 0.0)
        .set("daemon", governor_name(config_.policy));
  }
  loop_ = std::make_unique<core::ControlLoop>(
      std::move(loop_config),
      std::make_unique<core::SimCoreSampler>(
          cluster_, procs_, core::SimCoreSampler::ResetPolicy::kOnElapsed,
          sim_.now()),
      std::make_unique<UtilizationEstimator>(),
      std::make_unique<GovernorPolicyStage>(
          config_.policy, config_.up_threshold, config_.down_threshold),
      std::make_unique<core::SimCoreActuator>(cluster_, procs_,
                                              /*skip_unchanged=*/true),
      proc_tables_, &telemetry_);

  event_ = sim_.schedule_every(config_.period_s, [this] { tick(); });
}

GovernorDaemon::~GovernorDaemon() {
  sim_.cancel(event_);
}

void GovernorDaemon::tick() {
  loop_->run_cycle(sim_.now(), std::numeric_limits<double>::infinity(),
                   core::CycleTrigger::kTimer);
}

}  // namespace fvsst::baselines
