// governor_daemon.h - Classic utilisation-driven frequency governors.
//
// Transmeta's LongRun and Intel's Demand Based Switching — the mechanisms
// the paper positions fvsst against — "respond to changes in demand ...
// using a very simple model": frequency follows CPU utilisation, read from
// non-halted-cycle style counters, with no knowledge of memory behaviour
// or power budgets.  GovernorDaemon runs those policies live in the
// simulation so benches can compare their dynamic behaviour with fvsst's:
//
//   kPerformance   always f_max
//   kPowersave     always f_min
//   kOndemand      jump to f_max above an up-threshold, else proportional
//                  to utilisation (Linux's classic ondemand)
//   kConservative  step one setting up/down on threshold crossings
//
// Utilisation is measured as the non-halted cycle fraction.  On hot-idle
// processors (the Power4+) that reads 1.0 even when idle, so these
// governors pin idle machines at f_max — the paper's core critique.  On
// memory-stalled work it also reads 1.0, so they never exploit
// performance saturation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cpu/perf_counters.h"
#include "simkit/event_queue.h"
#include "simkit/time_series.h"

namespace fvsst::baselines {

enum class GovernorPolicy { kPerformance, kPowersave, kOndemand, kConservative };

/// Returns the policy's cpufreq-style name.
std::string governor_name(GovernorPolicy policy);

/// Per-CPU utilisation-driven governor daemon.
class GovernorDaemon {
 public:
  struct Config {
    GovernorPolicy policy = GovernorPolicy::kOndemand;
    double period_s = 0.010;      ///< Linux default sampling rate scale.
    double up_threshold = 0.80;   ///< ondemand/conservative step-up point.
    double down_threshold = 0.30; ///< conservative step-down point.
    bool record_traces = false;
  };

  /// `table` is the default operating-point set; on heterogeneous
  /// clusters each processor is governed within its own node's table.
  GovernorDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
                 const mach::FrequencyTable& table, Config config);
  ~GovernorDaemon();

  GovernorDaemon(const GovernorDaemon&) = delete;
  GovernorDaemon& operator=(const GovernorDaemon&) = delete;

  /// Most recent per-CPU utilisation readings (non-halted fraction).
  double utilization(std::size_t cpu) const { return util_.at(cpu); }

  const sim::TimeSeries& freq_trace(std::size_t cpu) const {
    return traces_.at(cpu);
  }

  std::size_t evaluations() const { return evaluations_; }

 private:
  void tick();
  double decide_hz(const mach::FrequencyTable& table, double util,
                   double current_hz) const;

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  const mach::FrequencyTable& table_;
  Config config_;
  std::vector<cluster::ProcAddress> procs_;
  std::vector<const mach::FrequencyTable*> proc_tables_;
  std::vector<cpu::PerfCounters> last_;
  std::vector<double> util_;
  std::vector<sim::TimeSeries> traces_;
  sim::EventId event_ = 0;
  std::size_t evaluations_ = 0;
};

}  // namespace fvsst::baselines
