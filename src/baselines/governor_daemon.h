// governor_daemon.h - Classic utilisation-driven frequency governors.
//
// Transmeta's LongRun and Intel's Demand Based Switching — the mechanisms
// the paper positions fvsst against — "respond to changes in demand ...
// using a very simple model": frequency follows CPU utilisation, read from
// non-halted-cycle style counters, with no knowledge of memory behaviour
// or power budgets.  GovernorDaemon runs those policies live in the
// simulation so benches can compare their dynamic behaviour with fvsst's:
//
//   kPerformance   always f_max
//   kPowersave     always f_min
//   kOndemand      jump to f_max above an up-threshold, else proportional
//                  to utilisation (Linux's classic ondemand)
//   kConservative  step one setting up/down on threshold crossings
//
// Utilisation is measured as the non-halted cycle fraction.  On hot-idle
// processors (the Power4+) that reads 1.0 even when idle, so these
// governors pin idle machines at f_max — the paper's core critique.  On
// memory-stalled work it also reads 1.0, so they never exploit
// performance saturation.
//
// The daemon is a facade over the shared core::ControlLoop engine:
// SimCoreSampler feeds a UtilizationEstimator (non-halted fraction into
// ProcView::utilization), a GovernorPolicyStage maps utilisation to
// frequency, and SimCoreActuator writes only changed set-points.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/control_loop.h"
#include "core/scheduler.h"
#include "simkit/event_queue.h"
#include "simkit/telemetry.h"
#include "simkit/time_series.h"

namespace fvsst::baselines {

enum class GovernorPolicy { kPerformance, kPowersave, kOndemand, kConservative };

/// Returns the policy's cpufreq-style name.
std::string governor_name(GovernorPolicy policy);

/// Estimator stage of the governors: folds each interval's non-halted
/// cycle fraction into ProcView::utilization (sticky across unusable
/// intervals) and refreshes ProcView::current_hz.  Makes no workload
/// estimate — these governors are memory-blind by design.
class UtilizationEstimator final : public core::Estimator {
 public:
  void update(const std::vector<core::IntervalSample>& samples,
              std::vector<core::ProcView>& views) override;
};

/// The LongRun/DBS-style policies as a control-loop stage.
class GovernorPolicyStage final : public core::PolicyStage {
 public:
  GovernorPolicyStage(GovernorPolicy policy, double up_threshold,
                      double down_threshold);

  core::ScheduleResult decide(
      const std::vector<core::ProcView>& views,
      const std::vector<const mach::FrequencyTable*>& tables,
      double power_budget_w) override;

  /// The per-CPU rule; exposed for tests.
  double decide_hz(const mach::FrequencyTable& table, double util,
                   double current_hz) const;

 private:
  GovernorPolicy policy_;
  double up_threshold_;
  double down_threshold_;
};

/// Per-CPU utilisation-driven governor daemon.
class GovernorDaemon {
 public:
  struct Config {
    GovernorPolicy policy = GovernorPolicy::kOndemand;
    double period_s = 0.010;      ///< Linux default sampling rate scale.
    double up_threshold = 0.80;   ///< ondemand/conservative step-up point.
    double down_threshold = 0.30; ///< conservative step-down point.
    bool record_traces = false;
    /// Decision journal (not owned; must outlive the daemon).
    sim::EventLog* journal = nullptr;
  };

  /// `table` is the default operating-point set; on heterogeneous
  /// clusters each processor is governed within its own node's table.
  GovernorDaemon(sim::Simulation& sim, cluster::Cluster& cluster,
                 const mach::FrequencyTable& table, Config config);
  ~GovernorDaemon();

  GovernorDaemon(const GovernorDaemon&) = delete;
  GovernorDaemon& operator=(const GovernorDaemon&) = delete;

  /// Most recent per-CPU utilisation readings (non-halted fraction).
  double utilization(std::size_t cpu) const {
    return loop_->views().at(cpu).utilization;
  }

  /// Decided frequency per tick ("gov_hz_cpu<i>"); empty unless
  /// Config::record_traces was set.
  const sim::TimeSeries& freq_trace(std::size_t cpu) const {
    return loop_->trace(cpu, core::ControlLoop::Trace::kGranted);
  }

  std::size_t evaluations() const { return loop_->cycles_run(); }

  /// The underlying engine (stage timings, latest views).
  const core::ControlLoop& loop() const { return *loop_; }

  sim::MetricRegistry& telemetry() { return telemetry_; }
  const sim::MetricRegistry& telemetry() const { return telemetry_; }

 private:
  void tick();

  sim::Simulation& sim_;
  cluster::Cluster& cluster_;
  Config config_;
  std::vector<cluster::ProcAddress> procs_;
  std::vector<const mach::FrequencyTable*> proc_tables_;
  sim::MetricRegistry telemetry_;
  std::unique_ptr<core::ControlLoop> loop_;
  sim::EventId event_ = 0;
};

}  // namespace fvsst::baselines
