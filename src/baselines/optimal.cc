#include "baselines/optimal.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fvsst::baselines {
namespace {

// Simplex numerics: entries below kPivotTol are treated as zero; a phase-1
// objective above kFeasTol means infeasible.  The programs built here are
// normalised (fractions in [0,1], perf coefficients scaled to <= 1, watts
// in single-digit-to-hundreds), so fixed absolute tolerances are safe.
constexpr double kPivotTol = 1e-9;
constexpr double kFeasTol = 1e-7;

}  // namespace

// ---------------------------------------------------------------------------
// solve_lp: two-phase dense tableau simplex, Bland's rule throughout.
// ---------------------------------------------------------------------------

LpSolution solve_lp(const LinearProgram& lp) {
  const std::size_t n = lp.c.size();
  const std::size_t m = lp.rows.size();

  // Normalise every row to b >= 0 (flip the relation when negating).
  struct NRow {
    std::vector<double> a;
    LinearProgram::Relation rel;
    double b;
  };
  std::vector<NRow> rows(m);
  for (std::size_t i = 0; i < m; ++i) {
    rows[i].a = lp.rows[i].a;
    rows[i].a.resize(n, 0.0);
    rows[i].rel = lp.rows[i].rel;
    rows[i].b = lp.rows[i].b;
    if (rows[i].b < 0.0) {
      for (double& v : rows[i].a) v = -v;
      rows[i].b = -rows[i].b;
      if (rows[i].rel == LinearProgram::Relation::kLe) {
        rows[i].rel = LinearProgram::Relation::kGe;
      } else if (rows[i].rel == LinearProgram::Relation::kGe) {
        rows[i].rel = LinearProgram::Relation::kLe;
      }
    }
  }

  // Column layout: [ structural | slack/surplus | artificial | rhs ].
  std::size_t n_slack = 0, n_art = 0;
  for (const auto& r : rows) {
    if (r.rel != LinearProgram::Relation::kEq) ++n_slack;
    if (r.rel != LinearProgram::Relation::kLe) ++n_art;
  }
  const std::size_t slack0 = n;
  const std::size_t art0 = n + n_slack;
  const std::size_t cols = n + n_slack + n_art;  // rhs kept separately

  std::vector<std::vector<double>> T(m, std::vector<double>(cols + 1, 0.0));
  std::vector<std::size_t> basis(m, 0);
  std::vector<char> artificial(cols, 0);
  std::size_t next_slack = slack0, next_art = art0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) T[i][j] = rows[i].a[j];
    T[i][cols] = rows[i].b;
    switch (rows[i].rel) {
      case LinearProgram::Relation::kLe:
        T[i][next_slack] = 1.0;
        basis[i] = next_slack++;
        break;
      case LinearProgram::Relation::kGe:
        T[i][next_slack] = -1.0;
        ++next_slack;
        T[i][next_art] = 1.0;
        artificial[next_art] = 1;
        basis[i] = next_art++;
        break;
      case LinearProgram::Relation::kEq:
        T[i][next_art] = 1.0;
        artificial[next_art] = 1;
        basis[i] = next_art++;
        break;
    }
  }

  // One pivot step: Bland's rule (smallest eligible entering column;
  // smallest basic variable on ratio ties) — deterministic and cycle-free.
  std::vector<double> obj(cols + 1, 0.0);
  const auto pivot = [&](std::size_t pr, std::size_t pc) {
    const double piv = T[pr][pc];
    for (double& v : T[pr]) v /= piv;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == pr) continue;
      const double f = T[i][pc];
      if (std::fabs(f) <= kPivotTol) continue;
      for (std::size_t j = 0; j <= cols; ++j) T[i][j] -= f * T[pr][j];
    }
    const double f = obj[pc];
    if (std::fabs(f) > 0.0) {
      for (std::size_t j = 0; j <= cols; ++j) obj[j] -= f * T[pr][j];
    }
    basis[pr] = pc;
  };

  const auto run_simplex = [&](bool allow_artificial) {
    // Safety cap far above what Bland needs for these program sizes.
    for (std::size_t iter = 0; iter < 100000; ++iter) {
      std::size_t enter = cols;
      for (std::size_t j = 0; j < cols; ++j) {
        if (!allow_artificial && artificial[j]) continue;
        if (obj[j] < -kPivotTol) {
          enter = j;
          break;
        }
      }
      if (enter == cols) return;  // optimal
      std::size_t leave = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m; ++i) {
        if (T[i][enter] <= kPivotTol) continue;
        const double ratio = T[i][cols] / T[i][enter];
        if (ratio < best_ratio - kPivotTol ||
            (ratio < best_ratio + kPivotTol &&
             (leave == m || basis[i] < basis[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
      if (leave == m) return;  // unbounded (never for unit-simplex programs)
      pivot(leave, enter);
    }
  };

  LpSolution out;
  // Phase 1: minimise the artificial sum.  Reduced costs: 1 on artificial
  // columns minus the rows they are basic in.
  for (std::size_t j = 0; j < cols; ++j) obj[j] = artificial[j] ? 1.0 : 0.0;
  obj[cols] = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    if (!artificial[basis[i]]) continue;
    for (std::size_t j = 0; j <= cols; ++j) obj[j] -= T[i][j];
  }
  run_simplex(/*allow_artificial=*/true);
  if (-obj[cols] > kFeasTol) return out;  // infeasible

  // Drive any artificial still basic (at zero) out of the basis so phase 2
  // cannot resurrect it; a row with no eligible pivot is redundant.
  for (std::size_t i = 0; i < m; ++i) {
    if (!artificial[basis[i]]) continue;
    for (std::size_t j = 0; j < art0; ++j) {
      if (std::fabs(T[i][j]) > kPivotTol) {
        pivot(i, j);
        break;
      }
    }
  }

  // Phase 2: the real objective, artificial columns locked out.
  for (std::size_t j = 0; j <= cols; ++j) obj[j] = 0.0;
  for (std::size_t j = 0; j < n; ++j) obj[j] = lp.c[j];
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] >= n) continue;
    const double f = obj[basis[i]];
    if (f == 0.0) continue;
    for (std::size_t j = 0; j <= cols; ++j) obj[j] -= f * T[i][j];
  }
  run_simplex(/*allow_artificial=*/false);

  out.feasible = true;
  out.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) out.x[basis[i]] = std::max(T[i][cols], 0.0);
  }
  out.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) out.objective += lp.c[j] * out.x[j];
  return out;
}

// ---------------------------------------------------------------------------
// The frequency-selection LPs.
// ---------------------------------------------------------------------------

double model_performance(const core::WorkloadEstimate& est, double hz) {
  if (!est.valid || hz <= 0.0) return 0.0;
  const double denom = est.alpha_inv + est.mem_time_per_instr * hz;
  return denom > 0.0 ? hz / denom : 0.0;
}

double reference_performance(const std::vector<ProcSample>& procs,
                             const mach::FrequencyTable& table) {
  double ref = 0.0;
  for (const auto& p : procs) {
    if (!p.idle && p.estimate.valid) {
      ref += model_performance(p.estimate, table.max_hz());
    }
  }
  return ref;
}

namespace {

// Shared assembly: one unit-simplex row per CPU, one aggregate power row,
// optional pins and per-CPU performance floors.  Variable v(p, i) is the
// time fraction of processor p at table point i.
struct LpBuild {
  LinearProgram lp;
  std::size_t k = 0;
  std::size_t var(std::size_t p, std::size_t i) const { return p * k + i; }
};

LpBuild begin_build(const std::vector<ProcSample>& procs,
                    const mach::FrequencyTable& table, double budget_w) {
  LpBuild b;
  b.k = table.size();
  const std::size_t nvar = procs.size() * b.k;
  b.lp.c.assign(nvar, 0.0);
  for (std::size_t p = 0; p < procs.size(); ++p) {
    LinearProgram::Row sum_row;
    sum_row.a.assign(nvar, 0.0);
    for (std::size_t i = 0; i < b.k; ++i) sum_row.a[b.var(p, i)] = 1.0;
    sum_row.rel = LinearProgram::Relation::kEq;
    sum_row.b = 1.0;
    b.lp.rows.push_back(std::move(sum_row));
  }
  LinearProgram::Row power_row;
  power_row.a.assign(nvar, 0.0);
  for (std::size_t p = 0; p < procs.size(); ++p) {
    for (std::size_t i = 0; i < b.k; ++i) {
      power_row.a[b.var(p, i)] = table[i].watts;
    }
  }
  power_row.rel = LinearProgram::Relation::kLe;
  power_row.b = budget_w;
  b.lp.rows.push_back(std::move(power_row));
  return b;
}

FractionalSchedule finish_build(const LpBuild& b, const LpSolution& sol,
                                const std::vector<ProcSample>& procs,
                                const mach::FrequencyTable& table) {
  FractionalSchedule out;
  if (!sol.feasible) return out;
  out.feasible = true;
  out.fractions.assign(procs.size(), std::vector<double>(b.k, 0.0));
  for (std::size_t p = 0; p < procs.size(); ++p) {
    for (std::size_t i = 0; i < b.k; ++i) {
      double v = sol.x[b.var(p, i)];
      if (v < 1e-9) v = 0.0;
      if (v > 1.0) v = 1.0;
      out.fractions[p][i] = v;
      out.total_power_w += v * table[i].watts;
      if (!procs[p].idle && procs[p].estimate.valid) {
        out.total_performance +=
            v * model_performance(procs[p].estimate, table[i].hz);
      }
    }
  }
  return out;
}

}  // namespace

FractionalSchedule lp_max_performance(const std::vector<ProcSample>& procs,
                                      const mach::FrequencyTable& table,
                                      double budget_w) {
  if (procs.empty() || table.empty()) return FractionalSchedule{};
  LpBuild b = begin_build(procs, table, budget_w);
  // Maximise performance == minimise its negation, scaled by the f_max
  // reference so coefficients sit near [-1, 0] regardless of workload
  // magnitudes (perf is instructions/second, easily 1e9+).
  const double ref = reference_performance(procs, table);
  const double scale = ref > 0.0 ? 1.0 / ref : 1.0;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    if (procs[p].idle || !procs[p].estimate.valid) continue;
    for (std::size_t i = 0; i < b.k; ++i) {
      b.lp.c[b.var(p, i)] =
          -scale * model_performance(procs[p].estimate, table[i].hz);
    }
  }
  return finish_build(b, solve_lp(b.lp), procs, table);
}

FractionalSchedule lp_min_energy(const std::vector<ProcSample>& procs,
                                 const mach::FrequencyTable& table,
                                 double budget_w, double epsilon) {
  if (procs.empty() || table.empty()) return FractionalSchedule{};
  LpBuild b = begin_build(procs, table, budget_w);
  const std::size_t nvar = procs.size() * b.k;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    for (std::size_t i = 0; i < b.k; ++i) {
      b.lp.c[b.var(p, i)] = table[i].watts;
    }
  }
  for (std::size_t p = 0; p < procs.size(); ++p) {
    if (procs[p].idle) continue;  // unconstrained: objective drives to f_min
    if (!procs[p].estimate.valid) {
      // No model: pin to f_max, the heuristic's kNoEstimate stance.
      LinearProgram::Row pin;
      pin.a.assign(nvar, 0.0);
      pin.a[b.var(p, b.k - 1)] = 1.0;
      pin.rel = LinearProgram::Relation::kEq;
      pin.b = 1.0;
      b.lp.rows.push_back(std::move(pin));
      continue;
    }
    // Expected performance >= (1 - epsilon) of the f_max performance,
    // normalised by that reference so coefficients sit in (0, 1].
    const double perf_max = model_performance(procs[p].estimate, table.max_hz());
    if (perf_max <= 0.0) continue;
    LinearProgram::Row floor;
    floor.a.assign(nvar, 0.0);
    for (std::size_t i = 0; i < b.k; ++i) {
      floor.a[b.var(p, i)] =
          model_performance(procs[p].estimate, table[i].hz) / perf_max;
    }
    floor.rel = LinearProgram::Relation::kGe;
    floor.b = 1.0 - epsilon;
    b.lp.rows.push_back(std::move(floor));
  }
  return finish_build(b, solve_lp(b.lp), procs, table);
}

// ---------------------------------------------------------------------------
// The optimality-gap report.
// ---------------------------------------------------------------------------

GapReport optimality_gap(const std::vector<ProcSample>& procs,
                         const std::vector<Assignment>& assignments,
                         const mach::FrequencyTable& table, double budget_w,
                         double epsilon) {
  GapReport gap;
  gap.reference_performance = reference_performance(procs, table);
  const FractionalSchedule best = lp_max_performance(procs, table, budget_w);
  gap.lp_feasible = best.feasible;
  gap.lp_performance = best.total_performance;
  for (std::size_t p = 0; p < procs.size() && p < assignments.size(); ++p) {
    const Assignment& a = assignments[p];
    if (!a.powered_on) continue;
    gap.policy_power_w += table.ceil_point(a.hz).watts;
    if (!procs[p].idle && procs[p].estimate.valid) {
      gap.policy_performance += model_performance(procs[p].estimate, a.hz);
    }
  }
  if (gap.reference_performance > 0.0) {
    gap.lp_loss = (gap.reference_performance - gap.lp_performance) /
                  gap.reference_performance;
    gap.policy_loss = (gap.reference_performance - gap.policy_performance) /
                      gap.reference_performance;
    gap.gap = gap.policy_loss - gap.lp_loss;
  }
  const FractionalSchedule energy =
      lp_min_energy(procs, table, budget_w, epsilon);
  gap.lp_min_energy_w = energy.feasible ? energy.total_power_w : -1.0;
  return gap;
}

// ---------------------------------------------------------------------------
// TwoFrequencySplitPolicy.
// ---------------------------------------------------------------------------

namespace {

// Expected power of one CPU time-slicing to realise continuous `target_hz`
// on `table` via frequency interpolation between the adjacent pair.
double split_power(const mach::FrequencyTable& table, double target_hz) {
  const auto lo = table.highest_under_frequency(target_hz);
  if (!lo) return table.min_point().watts;  // below range: pure f_min
  if (lo->hz == target_hz) return lo->watts;
  const auto hi = table.next_higher(lo->hz);
  if (!hi) return lo->watts;  // at the top
  const double theta = (target_hz - lo->hz) / (hi->hz - lo->hz);
  return theta * hi->watts + (1.0 - theta) * lo->watts;
}

}  // namespace

std::vector<TwoFrequencySplitPolicy::Split> TwoFrequencySplitPolicy::plan(
    const std::vector<ProcSample>& procs, const mach::FrequencyTable& table,
    double budget_w) const {
  const std::size_t n = procs.size();
  std::vector<Split> out(n);
  if (n == 0 || table.empty()) return out;

  // Per-CPU continuous target, before the budget cap.
  std::vector<double> raw(n);
  for (std::size_t p = 0; p < n; ++p) {
    if (procs[p].idle) {
      raw[p] = table.min_hz();
    } else if (!procs[p].estimate.valid) {
      raw[p] = table.max_hz();
    } else {
      const double ideal =
          core::ideal_frequency(procs[p].estimate, table.max_hz(), epsilon_);
      raw[p] = std::clamp(ideal, table.min_hz(), table.max_hz());
    }
  }

  const auto total_at_cap = [&](double cap) {
    double w = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      w += split_power(table, std::min(raw[p], cap));
    }
    return w;
  };

  // Shared continuous cap: the 1201.1695 structure applied under a global
  // budget — expected split power is monotone in the cap, so bisect for
  // the largest cap whose expected power fits.  Fixed iteration count
  // keeps the result a pure function of the inputs.
  double cap = table.max_hz();
  if (total_at_cap(cap) > budget_w + 1e-9) {
    double lo_cap = table.min_hz();
    if (total_at_cap(lo_cap) > budget_w + 1e-9) {
      // Even all-f_min exceeds the budget: frequency scaling alone cannot
      // satisfy it (the greedy's infeasible case).  Plan pure f_min.
      return out;
    }
    double hi_cap = cap;
    for (int iter = 0; iter < 100; ++iter) {
      const double mid = 0.5 * (lo_cap + hi_cap);
      if (total_at_cap(mid) <= budget_w + 1e-9) {
        lo_cap = mid;
      } else {
        hi_cap = mid;
      }
    }
    cap = lo_cap;
  }

  for (std::size_t p = 0; p < n; ++p) {
    const double target = std::min(raw[p], cap);
    const auto lo = table.highest_under_frequency(target);
    if (!lo) continue;  // below range: pure f_min (index 0, fraction 0)
    const std::size_t lo_idx = *table.index_of(lo->hz);
    out[p].lo = out[p].hi = lo_idx;
    if (lo->hz == target || lo_idx + 1 >= table.size()) continue;
    out[p].hi = lo_idx + 1;
    const auto& hi = table[lo_idx + 1];
    out[p].hi_fraction = (target - lo->hz) / (hi.hz - lo->hz);
  }
  return out;
}

std::vector<Assignment> TwoFrequencySplitPolicy::decide(
    const std::vector<ProcSample>& procs, const mach::FrequencyTable& table,
    double budget_w) const {
  const std::size_t n = procs.size();
  std::vector<Assignment> out(n);
  if (n == 0 || table.empty()) return out;
  if (credit_.size() != n) credit_.assign(n, 0.0);

  const std::vector<Split> splits = plan(procs, table, budget_w);

  // Duty cycle: accumulate each CPU's high-point credit; a full credit
  // grants the high entry this interval.
  std::vector<char> granted_hi(n, 0);
  double total_w = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    if (splits[p].hi != splits[p].lo) {
      credit_[p] += splits[p].hi_fraction;
      if (credit_[p] >= 1.0 - 1e-9) granted_hi[p] = 1;
    }
    const std::size_t idx = granted_hi[p] ? splits[p].hi : splits[p].lo;
    out[p] = {table[idx].hz, true};
    total_w += table[idx].watts;
  }

  // Budget-aware rounding: the all-low configuration fits whenever the
  // plan does (w_lo <= expected split power per CPU), so deferring high
  // grants — biggest watts saving first, lowest CPU on ties — always
  // restores per-interval compliance.  Deferred credit is kept, so the
  // long-run residency still converges to the plan.
  while (total_w > budget_w + 1e-9) {
    std::size_t best = n;
    double best_saving = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      if (!granted_hi[p]) continue;
      const double saving =
          table[splits[p].hi].watts - table[splits[p].lo].watts;
      if (saving > best_saving + 1e-12) {
        best_saving = saving;
        best = p;
      }
    }
    if (best == n) break;  // nothing to defer: the plan itself is infeasible
    granted_hi[best] = 0;
    out[best] = {table[splits[best].lo].hz, true};
    total_w -= best_saving;
  }
  for (std::size_t p = 0; p < n; ++p) {
    if (granted_hi[p]) credit_[p] -= 1.0;
  }
  return out;
}

// ---------------------------------------------------------------------------
// LpFrequencySelectionPolicy.
// ---------------------------------------------------------------------------

FractionalSchedule LpFrequencySelectionPolicy::solve(
    const std::vector<ProcSample>& procs, const mach::FrequencyTable& table,
    double budget_w) const {
  FractionalSchedule sched =
      lp_min_energy(procs, table, budget_w, epsilon_);
  if (sched.feasible) return sched;
  // The budget forces more than epsilon loss even fractionally: degrade to
  // the performance-optimal program (pass 2's "keep downgrading" analogue).
  return lp_max_performance(procs, table, budget_w);
}

std::vector<Assignment> LpFrequencySelectionPolicy::decide(
    const std::vector<ProcSample>& procs, const mach::FrequencyTable& table,
    double budget_w) const {
  const std::size_t n = procs.size();
  std::vector<Assignment> out(n);
  if (n == 0 || table.empty()) return out;
  const std::size_t k = table.size();

  const FractionalSchedule sched = solve(procs, table, budget_w);
  if (!sched.feasible) {
    // n * w_min > budget: pin everything to f_min, the greedy's
    // infeasible behaviour (the control loop journals it as such).
    for (std::size_t p = 0; p < n; ++p) out[p] = {table.min_hz(), true};
    return out;
  }

  if (credit_.size() != n || (n > 0 && credit_[0].size() != k)) {
    credit_.assign(n, std::vector<double>(k, 0.0));
  }

  // Stride-scheduling realisation: add this interval's fractions to the
  // per-point credits and grant each CPU its largest-credit point (lowest
  // index on ties).  The chosen point's credit pays 1 at the end, so
  // long-run residency converges to the LP fractions.
  std::vector<std::size_t> grant(n, 0);
  double total_w = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    std::size_t best = 0;
    for (std::size_t i = 0; i < k; ++i) {
      credit_[p][i] += sched.fractions[p][i];
      if (credit_[p][i] > credit_[p][best] + 1e-12) best = i;
    }
    grant[p] = best;
    total_w += table[best].watts;
  }

  // Budget-aware rounding: step the most expensive grant down one table
  // point at a time (lowest CPU on watt ties) until the interval fits.
  // The LP's expected power fits the budget, so the all-minimum floor
  // always does too and the loop terminates.
  while (total_w > budget_w + 1e-9) {
    std::size_t best = n;
    double best_saving = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      if (grant[p] == 0) continue;
      const double saving =
          table[grant[p]].watts - table[grant[p] - 1].watts;
      if (saving > best_saving + 1e-12) {
        best_saving = saving;
        best = p;
      }
    }
    if (best == n) break;
    --grant[best];
    total_w -= best_saving;
  }

  for (std::size_t p = 0; p < n; ++p) {
    out[p] = {table[grant[p]].hz, true};
    credit_[p][grant[p]] -= 1.0;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Name registry.
// ---------------------------------------------------------------------------

std::unique_ptr<Policy> make_policy(
    const std::string& name, const core::FrequencyScheduler::Options& options) {
  if (name == "no-dvfs") return std::make_unique<MaxFrequencyPolicy>();
  if (name == "uniform") return std::make_unique<UniformScalingPolicy>();
  if (name == "power-down") return std::make_unique<PowerDownPolicy>();
  if (name == "consolidate") return std::make_unique<ConsolidationPolicy>();
  if (name == "dbs") return std::make_unique<DemandBasedSwitchingPolicy>(false);
  if (name == "dbs-capped") {
    return std::make_unique<DemandBasedSwitchingPolicy>(true);
  }
  if (name == "two-freq-split") {
    return std::make_unique<TwoFrequencySplitPolicy>(options.epsilon);
  }
  if (name == "lp-optimal") {
    return std::make_unique<LpFrequencySelectionPolicy>(options.epsilon);
  }
  return nullptr;
}

}  // namespace fvsst::baselines
