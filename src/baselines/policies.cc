#include "baselines/policies.h"

#include <algorithm>
#include <numeric>

#include "baselines/optimal.h"

namespace fvsst::baselines {

std::vector<Assignment> MaxFrequencyPolicy::decide(
    const std::vector<ProcSample>& procs, const mach::FrequencyTable& table,
    double) const {
  return std::vector<Assignment>(procs.size(),
                                 Assignment{table.max_hz(), true});
}

std::vector<Assignment> UniformScalingPolicy::decide(
    const std::vector<ProcSample>& procs, const mach::FrequencyTable& table,
    double budget_w) const {
  const double per_proc =
      budget_w / static_cast<double>(std::max<std::size_t>(procs.size(), 1));
  const auto point = table.highest_under_power(per_proc);
  // Even the lowest setting may not fit; uniform scaling has no further
  // recourse, so it runs at the floor and overshoots the budget.
  const double hz = point ? point->hz : table.min_hz();
  return std::vector<Assignment>(procs.size(), Assignment{hz, true});
}

std::vector<Assignment> PowerDownPolicy::decide(
    const std::vector<ProcSample>& procs, const mach::FrequencyTable& table,
    double budget_w) const {
  std::vector<Assignment> out(procs.size(),
                              Assignment{table.max_hz(), true});
  const double per_proc_w = table.max_point().watts;
  double power = per_proc_w * static_cast<double>(procs.size());

  // Shut-down order: idle processors first, then ascending saturation
  // performance (the cheapest real work to sacrifice).
  std::vector<std::size_t> order(procs.size());
  std::iota(order.begin(), order.end(), 0);
  auto demand = [&](std::size_t p) {
    if (procs[p].idle) return -1.0;
    const auto& e = procs[p].estimate;
    if (!e.valid) return 1e30;
    // Performance at f_max as the demand proxy.
    return table.max_hz() / (e.alpha_inv + e.mem_time_per_instr *
                                               table.max_hz());
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return demand(a) < demand(b);
                   });
  for (std::size_t k = 0; k < order.size() && power > budget_w; ++k) {
    out[order[k]].powered_on = false;
    out[order[k]].hz = 0.0;
    power -= per_proc_w;
  }
  return out;
}

std::vector<Assignment> ConsolidationPolicy::decide(
    const std::vector<ProcSample>& procs, const mach::FrequencyTable& table,
    double budget_w) const {
  // Hosts that fit at f_max under the budget; at least one survives.
  const double per_proc_w = table.max_point().watts;
  std::size_t hosts = static_cast<std::size_t>(budget_w / per_proc_w);
  hosts = std::min(std::max<std::size_t>(hosts, 1), procs.size());
  std::vector<Assignment> out(procs.size());
  for (std::size_t p = 0; p < procs.size(); ++p) {
    if (p < hosts) {
      out[p] = {table.max_hz(), true};
    } else {
      out[p] = {0.0, false};
    }
  }
  return out;
}

double ConsolidationPolicy::consolidated_performance(
    const std::vector<workload::Phase>& jobs, const std::vector<bool>& idle,
    std::size_t hosts, double hz, const mach::MemoryLatencies& lat) {
  if (hosts == 0) return 0.0;
  // Count real jobs; each host time-shares its share of them.  A host
  // running k jobs delivers its full throughput split among them, so the
  // aggregate is simply min(jobs, hosts-worth) of full-speed pipelines —
  // but never more than one pipeline per job.
  double total = 0.0;
  std::size_t real_jobs = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!idle[j]) ++real_jobs;
  }
  if (real_jobs == 0) return 0.0;
  // Each of the `hosts` processors contributes one pipeline of mixed work;
  // with fewer jobs than hosts, only `real_jobs` pipelines are busy.
  const std::size_t busy = std::min(hosts, real_jobs);
  // Aggregate throughput: busy pipelines running the average job mix.
  double mean_perf = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!idle[j]) {
      mean_perf += workload::true_performance(jobs[j], lat, hz) /
                   static_cast<double>(real_jobs);
    }
  }
  total = mean_perf * static_cast<double>(busy);
  return total;
}

std::vector<Assignment> DemandBasedSwitchingPolicy::decide(
    const std::vector<ProcSample>& procs, const mach::FrequencyTable& table,
    double budget_w) const {
  std::vector<Assignment> out(procs.size());
  for (std::size_t p = 0; p < procs.size(); ++p) {
    // Frequency follows utilisation; hot-idle cores report 1.0 and are
    // driven to f_max — the failure mode the paper calls out.
    const double target = procs[p].naive_utilization * table.max_hz();
    out[p] = {table.ceil_point(target).hz, true};
  }
  if (budget_capped_) {
    // Budget compliance bolted on: uniform per-processor cap.
    const double per_proc =
        budget_w / static_cast<double>(std::max<std::size_t>(procs.size(), 1));
    const auto cap = table.highest_under_power(per_proc);
    const double cap_hz = cap ? cap->hz : table.min_hz();
    for (auto& a : out) a.hz = std::min(a.hz, cap_hz);
  }
  return out;
}

std::vector<Assignment> FvsstPolicy::decide(
    const std::vector<ProcSample>& procs, const mach::FrequencyTable& table,
    double budget_w) const {
  // Latencies are irrelevant here: estimates are already distilled.
  mach::MemoryLatencies unused{1e-9, 1e-9, 1e-9};
  core::FrequencyScheduler scheduler(table, unused, options_);
  std::vector<core::ProcView> views(procs.size());
  for (std::size_t p = 0; p < procs.size(); ++p) {
    views[p].estimate = procs[p].estimate;
    views[p].idle = procs[p].idle;
  }
  const core::ScheduleResult result = scheduler.schedule(views, budget_w);
  std::vector<Assignment> out(procs.size());
  for (std::size_t p = 0; p < procs.size(); ++p) {
    out[p] = {result.decisions[p].hz, true};
  }
  return out;
}

core::WorkloadEstimate oracle_estimate(const workload::Phase& phase,
                                       const mach::MemoryLatencies& lat) {
  core::WorkloadEstimate est;
  est.alpha_inv = 1.0 / phase.alpha;
  est.mem_time_per_instr = workload::mem_time_per_instruction(phase, lat);
  est.valid = true;
  return est;
}

Evaluation evaluate(const std::vector<Assignment>& assignments,
                    const std::vector<workload::Phase>& truth,
                    const std::vector<bool>& idle,
                    const mach::MemoryLatencies& lat,
                    const mach::FrequencyTable& table, double budget_w) {
  Evaluation ev;
  ev.per_proc_performance.resize(assignments.size(), 0.0);
  for (std::size_t p = 0; p < assignments.size(); ++p) {
    const auto& a = assignments[p];
    if (!a.powered_on) continue;  // off: no power, no performance
    ev.total_power_w += table.power(a.hz);
    if (idle[p]) continue;  // idle burns power but produces nothing
    const double perf = workload::true_performance(truth[p], lat, a.hz);
    const double perf_max =
        workload::true_performance(truth[p], lat, table.max_hz());
    ev.per_proc_performance[p] = perf;
    ev.total_performance += perf;
    ev.worst_proc_loss =
        std::max(ev.worst_proc_loss, core::perf_loss(perf_max, perf));
  }
  // A powered-off processor hosting real work means total loss for it.
  for (std::size_t p = 0; p < assignments.size(); ++p) {
    if (!assignments[p].powered_on && !idle[p]) ev.worst_proc_loss = 1.0;
  }
  ev.within_budget = ev.total_power_w <= budget_w + 1e-9;
  return ev;
}

core::ScheduleResult PolicyStageAdapter::decide(
    const std::vector<core::ProcView>& views,
    const std::vector<const mach::FrequencyTable*>& tables,
    double power_budget_w) {
  std::vector<ProcSample> samples(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    samples[i].estimate = views[i].estimate;
    samples[i].idle = views[i].idle;
    samples[i].naive_utilization = views[i].utilization;
  }
  const mach::FrequencyTable& table = *tables.front();
  const std::vector<Assignment> assignments =
      policy_->decide(samples, table, power_budget_w);

  core::ScheduleResult result;
  result.decisions.resize(assignments.size());
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    const Assignment& a = assignments[i];
    auto& d = result.decisions[i];
    d.desired_hz = a.hz;
    d.hz = a.hz;
    if (a.powered_on) {
      const auto& point = table.ceil_point(a.hz);
      d.volts = point.volts;
      d.watts = point.watts;
    }
    result.total_cpu_power_w += d.watts;
  }
  result.feasible = result.total_cpu_power_w <= power_budget_w + 1e-9;
  return result;
}

std::vector<std::unique_ptr<Policy>> standard_policies() {
  std::vector<std::unique_ptr<Policy>> out;
  out.push_back(std::make_unique<MaxFrequencyPolicy>());
  out.push_back(std::make_unique<UniformScalingPolicy>());
  out.push_back(std::make_unique<PowerDownPolicy>());
  out.push_back(std::make_unique<ConsolidationPolicy>());
  out.push_back(std::make_unique<DemandBasedSwitchingPolicy>(true));
  out.push_back(std::make_unique<TwoFrequencySplitPolicy>());
  out.push_back(std::make_unique<LpFrequencySelectionPolicy>());
  out.push_back(std::make_unique<FvsstPolicy>());
  return out;
}

}  // namespace fvsst::baselines
