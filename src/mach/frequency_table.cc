#include "mach/frequency_table.h"

#include <algorithm>
#include <stdexcept>

namespace fvsst::mach {

FrequencyTable::FrequencyTable(std::vector<OperatingPoint> points)
    : points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("FrequencyTable: no operating points");
  }
  std::sort(points_.begin(), points_.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              return a.hz < b.hz;
            });
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto& p = points_[i];
    if (p.hz <= 0.0 || p.volts <= 0.0 || p.watts <= 0.0) {
      throw std::invalid_argument(
          "FrequencyTable: non-positive frequency/voltage/power");
    }
    if (i > 0 && points_[i - 1].hz == p.hz) {
      throw std::invalid_argument("FrequencyTable: duplicate frequency");
    }
  }
}

const OperatingPoint& FrequencyTable::min_point() const {
  if (points_.empty()) throw std::out_of_range("FrequencyTable: empty");
  return points_.front();
}

const OperatingPoint& FrequencyTable::max_point() const {
  if (points_.empty()) throw std::out_of_range("FrequencyTable: empty");
  return points_.back();
}

std::optional<std::size_t> FrequencyTable::index_of(double hz) const {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].hz == hz) return i;
  }
  return std::nullopt;
}

double FrequencyTable::min_voltage(double hz) const {
  const auto i = index_of(hz);
  if (!i) throw std::out_of_range("FrequencyTable: unknown frequency");
  return points_[*i].volts;
}

double FrequencyTable::power(double hz) const {
  const auto i = index_of(hz);
  if (!i) throw std::out_of_range("FrequencyTable: unknown frequency");
  return points_[*i].watts;
}

std::optional<OperatingPoint> FrequencyTable::next_lower(double hz) const {
  std::optional<OperatingPoint> best;
  for (const auto& p : points_) {
    if (p.hz < hz) best = p;  // points_ ascending: last match is the closest
  }
  return best;
}

std::optional<OperatingPoint> FrequencyTable::next_higher(double hz) const {
  for (const auto& p : points_) {
    if (p.hz > hz) return p;
  }
  return std::nullopt;
}

std::optional<OperatingPoint> FrequencyTable::highest_under_power(
    double watts) const {
  std::optional<OperatingPoint> best;
  for (const auto& p : points_) {
    // kPowerSlackW: a cap that admits a point exactly must select it even
    // when the caller computed the cap arithmetically (budget / n lands an
    // ulp below the table value).
    if (p.watts <= watts + kPowerSlackW) best = p;
  }
  return best;
}

std::optional<OperatingPoint> FrequencyTable::highest_under_frequency(
    double hz_cap) const {
  std::optional<OperatingPoint> best;
  for (const auto& p : points_) {
    if (p.hz <= hz_cap) best = p;
  }
  return best;
}

const OperatingPoint& FrequencyTable::ceil_point(double hz) const {
  for (const auto& p : points_) {
    if (p.hz >= hz) return p;
  }
  return max_point();
}

FrequencyTable FrequencyTable::capped_at(double hz_cap) const {
  std::vector<OperatingPoint> kept;
  for (const auto& p : points_) {
    if (p.hz <= hz_cap) kept.push_back(p);
  }
  return FrequencyTable(std::move(kept));
}

}  // namespace fvsst::mach
