#include "mach/machine_config.h"

#include <cmath>

#include "simkit/units.h"

namespace fvsst::mach {
namespace {

using units::GHz;
using units::MHz;
using units::V;
using units::W;

// Minimum stable voltage for the P630's Power4+ at frequency `hz`.
//
// The paper only states the nominal point (1.3 V at 1 GHz); the
// reduced-voltage curve below — V(f) = Vmax * (k + (1-k) * (f/fmax)^0.8) —
// was fitted so that the dynamic-power model P = C*V^2*f + B*V^2, with
// (C, B) from least squares and physically non-negative, reproduces the
// paper's Table 1 within ~7% worst-case across the whole 250-1000 MHz
// range (see bench_table1_power for the per-point residuals).
double p630_min_voltage(double hz) {
  constexpr double kVmax = 1.3 * V;
  constexpr double kFloorFraction = 0.29;  // V(0)/V(f_max) extrapolated
  constexpr double kExponent = 0.8;
  const double rel = hz / (1.0 * GHz);
  return kVmax *
         (kFloorFraction + (1.0 - kFloorFraction) * std::pow(rel, kExponent));
}

}  // namespace

FrequencyTable p630_frequency_table() {
  // Paper Table 1: frequency (MHz) -> peak power (W), from the Lava
  // circuit-level estimator.  These watts are authoritative for scheduling;
  // the analytic model in src/power is calibrated against them.
  static constexpr struct {
    double mhz;
    double watts;
  } kTable1[] = {
      {250, 9},   {300, 13},  {350, 18},  {400, 22},
      {450, 28},  {500, 35},  {550, 41},  {600, 48},
      {650, 57},  {700, 66},  {750, 75},  {800, 84},
      {850, 95},  {900, 109}, {950, 123}, {1000, 140},
  };
  std::vector<OperatingPoint> points;
  points.reserve(std::size(kTable1));
  for (const auto& row : kTable1) {
    const double hz = row.mhz * MHz;
    points.push_back({hz, p630_min_voltage(hz), row.watts * W});
  }
  return FrequencyTable(std::move(points));
}

MachineConfig p630() {
  MachineConfig cfg;
  cfg.name = "IBM pSeries P630 (4x Power4+ 1GHz)";
  cfg.num_cpus = 4;
  cfg.nominal_hz = 1.0 * GHz;
  cfg.nominal_volts = 1.3 * V;
  cfg.freq_table = p630_frequency_table();
  // Measured latencies (paper Sec. 7.1), quoted in cycles at 1 GHz:
  // L2 = 15, L3 = 113, memory = 393.  L1 (4-5 cycles) is part of alpha.
  cfg.latencies.t_l2 = MemoryLatencies::cycles_to_seconds(15, cfg.nominal_hz);
  cfg.latencies.t_l3 = MemoryLatencies::cycles_to_seconds(113, cfg.nominal_hz);
  cfg.latencies.t_mem =
      MemoryLatencies::cycles_to_seconds(393, cfg.nominal_hz);
  cfg.idle_ipc = 1.3;  // Power4+ "idles hot" in a CPU-intensive loop.
  cfg.non_cpu_power_w = 0.0;
  return cfg;
}

MachineConfig derated(const MachineConfig& base, double hz_cap,
                      double power_scale) {
  MachineConfig cfg = base;
  const FrequencyTable capped = base.freq_table.capped_at(hz_cap);
  std::vector<OperatingPoint> points;
  points.reserve(capped.size());
  for (const auto& p : capped.points()) {
    points.push_back({p.hz, p.volts, p.watts * power_scale});
  }
  cfg.freq_table = FrequencyTable(std::move(points));
  cfg.nominal_hz = cfg.freq_table.max_hz();
  cfg.name = base.name + " (derated to " +
             std::to_string(static_cast<long>(hz_cap / MHz)) + " MHz x" +
             std::to_string(power_scale) + ")";
  return cfg;
}

MachineConfig p630_motivating_example() {
  MachineConfig cfg = p630();
  cfg.name = "Motivating example (Sec. 2): 746W system, CPUs 75%";
  // 4 x 140 W CPUs = 560 W is ~75% of the 746 W total; the remainder is
  // frequency-independent memory/fan/planar power.
  cfg.non_cpu_power_w = 746.0 * W - 4 * 140.0 * W;
  return cfg;
}

}  // namespace fvsst::mach
