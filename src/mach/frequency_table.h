// frequency_table.h - Discrete operating points (frequency/voltage/power).
//
// The paper's scheduler targets "systems with a small, fixed set of
// available frequencies"; Table 1 of the paper lists the sixteen settings
// (250 MHz/9 W ... 1000 MHz/140 W) exposed on the P630 prototype.  A
// FrequencyTable holds such a set plus the minimum stable voltage for each
// frequency, and answers the queries the scheduling algorithm needs:
// lowest/highest setting, the next lower setting, and the highest setting
// whose peak power fits under a cap.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace fvsst::mach {

/// Slack applied to power-cap comparisons throughout the scheduler stack.
/// A budget that admits a setting *exactly* (budget == n * watts) must
/// select it even when the caller derived the cap arithmetically (a
/// per-processor share like budget / n, or an incrementally maintained
/// running total): those derivations sit within an ulp or two of the exact
/// value, and a strict comparison at the boundary would spuriously reject
/// the only feasible setting.
inline constexpr double kPowerSlackW = 1e-9;

/// One available frequency setting with its minimum stable voltage and the
/// pre-computed peak (upper-bound) power at that voltage.
struct OperatingPoint {
  double hz = 0.0;     ///< Core frequency in hertz.
  double volts = 0.0;  ///< Minimum voltage that reliably drives `hz`.
  double watts = 0.0;  ///< Peak per-core power at (`hz`, `volts`).
};

/// Immutable, ascending-sorted set of operating points.
class FrequencyTable {
 public:
  FrequencyTable() = default;

  /// Builds from arbitrary-order points; sorts ascending by frequency.
  /// Throws std::invalid_argument on duplicates or non-positive values.
  explicit FrequencyTable(std::vector<OperatingPoint> points);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const OperatingPoint& operator[](std::size_t i) const { return points_[i]; }
  const std::vector<OperatingPoint>& points() const { return points_; }

  const OperatingPoint& min_point() const;
  const OperatingPoint& max_point() const;
  double min_hz() const { return min_point().hz; }
  double max_hz() const { return max_point().hz; }

  /// Index of the point with exactly this frequency; nullopt if absent.
  std::optional<std::size_t> index_of(double hz) const;

  /// True if `hz` is one of the available settings.
  bool contains(double hz) const { return index_of(hz).has_value(); }

  /// Minimum stable voltage for an exact frequency setting (paper step 3,
  /// "table look-up").  Throws std::out_of_range if `hz` is not in the set.
  double min_voltage(double hz) const;

  /// Peak power for an exact frequency setting.  Throws if absent.
  double power(double hz) const;

  /// Next lower setting than `hz` ("f_less" in the paper's step 2);
  /// nullopt when `hz` is already the lowest setting.
  std::optional<OperatingPoint> next_lower(double hz) const;

  /// Next higher setting than `hz`; nullopt when already at the maximum.
  std::optional<OperatingPoint> next_higher(double hz) const;

  /// Highest setting whose peak power is <= `watts`; nullopt when even the
  /// lowest setting exceeds the cap.
  std::optional<OperatingPoint> highest_under_power(double watts) const;

  /// Highest setting with frequency <= `hz_cap`; nullopt when `hz_cap` is
  /// below the lowest setting.
  std::optional<OperatingPoint> highest_under_frequency(double hz_cap) const;

  /// Lowest setting with frequency >= `hz`; clamps to max when above range.
  /// Used to snap a continuous f_ideal onto the grid.
  const OperatingPoint& ceil_point(double hz) const;

  /// Restricts the table to settings with frequency <= `hz_cap` (used for
  /// the paper's frequency-cap experiments, Fig. 8).  Throws if the result
  /// would be empty.
  FrequencyTable capped_at(double hz_cap) const;

 private:
  std::vector<OperatingPoint> points_;
};

}  // namespace fvsst::mach
