// machine_config.h - Descriptions of the simulated machines.
//
// The experimental platform in the paper is an IBM pSeries P630: four 1 GHz
// Power4+ cores at 1.3 V, L1 4-5 cycles, L2 15 cycles, L3 113 cycles and
// memory 393 cycles (all measured at 1 GHz), 746 W total system power of
// which the four 140 W CPUs are ~75%, fed by two 480 W supplies.  The
// factories below encode that machine plus cluster variants built from it.
#pragma once

#include <cstddef>
#include <string>

#include "mach/frequency_table.h"

namespace fvsst::mach {

/// Service times of the memory hierarchy, expressed in *seconds* so they are
/// frequency-independent (the cycle counts the paper quotes are at the
/// nominal 1 GHz).  L1 hit latency is folded into the ideal IPC `alpha` of
/// each workload; the predictor only needs the miss targets L2/L3/memory.
struct MemoryLatencies {
  double t_l2 = 0.0;   ///< Seconds per access serviced by the L2.
  double t_l3 = 0.0;   ///< Seconds per access serviced by the L3.
  double t_mem = 0.0;  ///< Seconds per access serviced by main memory.

  /// Converts a latency in cycles at `nominal_hz` into seconds.
  static double cycles_to_seconds(double cycles, double nominal_hz) {
    return cycles / nominal_hz;
  }
};

/// Static description of one machine (an SMP node).
struct MachineConfig {
  std::string name;
  std::size_t num_cpus = 1;
  double nominal_hz = 0.0;      ///< Nameplate frequency (f_max).
  double nominal_volts = 0.0;   ///< Core voltage at nominal frequency.
  FrequencyTable freq_table;    ///< Available operating points.
  MemoryLatencies latencies;    ///< True service times (seconds).
  double idle_ipc = 0.0;        ///< IPC of the hot idle loop (Power4+: ~1.3).
  /// True for processors that idle by halting (and expose a halted-cycle
  /// counter), rather than spinning in the Power4+'s hot loop.  On such
  /// machines the scheduler needs no explicit idle signal (paper Sec. 5).
  bool idles_by_halting = false;
  double non_cpu_power_w = 0.0; ///< Memory/fans/etc. power, frequency-independent.

  /// Peak machine power: non-CPU power plus all CPUs at the top setting.
  double peak_power_w() const {
    return non_cpu_power_w +
           static_cast<double>(num_cpus) * freq_table.max_point().watts;
  }

  /// Aggregate CPU power floor: all CPUs at the lowest setting.
  double min_cpu_power_w() const {
    return static_cast<double>(num_cpus) * freq_table.min_point().watts;
  }
};

/// The sixteen operating points of the paper's Table 1 (frequencies in MHz
/// and peak watts), with minimum voltages derived from the calibrated
/// voltage curve in src/power (1.3 V at 1 GHz per the paper).
FrequencyTable p630_frequency_table();

/// The paper's experimental platform: 4 x 1 GHz Power4+, Table 1 operating
/// points, measured memory latencies, hot idle at IPC 1.3.
MachineConfig p630();

/// The motivating example of Section 2: same CPUs, 746 W total system power
/// with CPUs at 75%, i.e. 186 W of non-CPU power.
MachineConfig p630_motivating_example();

/// A derated variant of `base`: the operating-point table is capped at
/// `hz_cap` and every point's power is scaled by `power_scale` (e.g. a
/// low-power bin at 0.9, or a leaky part at 1.2).  The nominal frequency
/// follows the new table top.  Models mixed-generation / process-variation
/// clusters (paper Sec. 5).
MachineConfig derated(const MachineConfig& base, double hz_cap,
                      double power_scale = 1.0);

}  // namespace fvsst::mach
