// proc_stat.h - Per-CPU utilisation from /proc/stat.
//
// The LongRun/DBS-style governors and the daemon's idle inference need a
// utilisation signal; on a real Linux host the portable source is
// /proc/stat's per-CPU jiffy counters.  Two snapshots give the busy
// fraction of the interval between them.  (Unlike perf_event_open, this
// works unprivileged in nearly every container.)
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace fvsst::host {

/// Jiffy counters for one CPU row of /proc/stat.
struct CpuTimes {
  int cpu = -1;  ///< -1 for the aggregate "cpu" row.
  unsigned long long user = 0, nice = 0, system = 0, idle = 0, iowait = 0,
                     irq = 0, softirq = 0, steal = 0;

  unsigned long long busy() const {
    return user + nice + system + irq + softirq + steal;
  }
  unsigned long long total() const { return busy() + idle + iowait; }
};

/// Parses the cpu rows of a /proc/stat-format stream (other rows are
/// ignored).  Returns the aggregate row first if present, then cpu0..N.
std::vector<CpuTimes> parse_proc_stat(std::istream& in);

/// Reads and parses a /proc/stat-format file; empty vector if unreadable.
std::vector<CpuTimes> read_proc_stat(const std::string& path = "/proc/stat");

/// Busy fraction between two snapshots of the same CPU, in [0, 1];
/// nullopt when no time passed or the counters went backwards.
std::optional<double> utilization_between(const CpuTimes& earlier,
                                          const CpuTimes& later);

}  // namespace fvsst::host
