#include "host/cpufreq_sysfs.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fvsst::host {
namespace {

namespace fs = std::filesystem;

// sysfs cpufreq reports kilohertz.
constexpr double kKhz = 1e3;

std::string trim(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
  std::size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return s.substr(i);
}

}  // namespace

CpufreqSysfs::CpufreqSysfs(std::string root) : root_(std::move(root)) {}

std::string CpufreqSysfs::cpu_dir(int cpu) const {
  return root_ + "/cpu" + std::to_string(cpu) + "/cpufreq";
}

std::optional<std::string> CpufreqSysfs::read_file(
    const std::string& path) const {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return trim(ss.str());
}

bool CpufreqSysfs::write_file(const std::string& path,
                              const std::string& value) const {
  std::ofstream out(path);
  if (!out) return false;
  out << value;
  return static_cast<bool>(out);
}

bool CpufreqSysfs::available() const {
  return !cpus().empty();
}

std::vector<int> CpufreqSysfs::cpus() const {
  std::vector<int> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.compare(0, 3, "cpu") != 0) continue;
    const std::string digits = name.substr(3);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    if (!fs::is_directory(entry.path() / "cpufreq", ec)) continue;
    out.push_back(std::stoi(digits));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<CpuFreqInfo> CpufreqSysfs::info(int cpu) const {
  const std::string dir = cpu_dir(cpu);
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return std::nullopt;

  CpuFreqInfo out;
  out.cpu = cpu;
  if (const auto v = read_file(dir + "/scaling_available_frequencies")) {
    std::istringstream ss(*v);
    double khz = 0.0;
    while (ss >> khz) out.available_hz.push_back(khz * kKhz);
    std::sort(out.available_hz.begin(), out.available_hz.end());
  }
  if (const auto v = read_file(dir + "/cpuinfo_min_freq")) {
    out.min_hz = std::stod(*v) * kKhz;
  }
  if (const auto v = read_file(dir + "/cpuinfo_max_freq")) {
    out.max_hz = std::stod(*v) * kKhz;
  }
  if (const auto v = read_file(dir + "/scaling_cur_freq")) {
    out.current_hz = std::stod(*v) * kKhz;
  }
  if (const auto v = read_file(dir + "/scaling_governor")) {
    out.governor = *v;
  }
  return out;
}

bool CpufreqSysfs::set_frequency(int cpu, double hz) const {
  const long khz = static_cast<long>(hz / kKhz);
  return write_file(cpu_dir(cpu) + "/scaling_setspeed", std::to_string(khz));
}

bool CpufreqSysfs::set_governor(int cpu, const std::string& governor) const {
  return write_file(cpu_dir(cpu) + "/scaling_governor", governor);
}

}  // namespace fvsst::host
