// cpufreq_sysfs.h - Real-host frequency control via Linux sysfs.
//
// The paper's mechanism "can be implemented in a number of different ways
// and in different portions of the hardware/software stack".  On a modern
// Linux host the natural implementation reads and writes
// /sys/devices/system/cpu/cpu*/cpufreq/.  This backend provides exactly the
// queries the FrequencyScheduler needs (available settings, current
// setting, set-frequency) and degrades gracefully: in containers or on
// hosts without cpufreq every probe reports unavailable instead of failing.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace fvsst::host {

/// Snapshot of one CPU's cpufreq state.
struct CpuFreqInfo {
  int cpu = -1;
  std::vector<double> available_hz;  ///< Sorted ascending; may be empty.
  double min_hz = 0.0;
  double max_hz = 0.0;
  double current_hz = 0.0;
  std::string governor;
};

/// Access to the host's cpufreq subsystem.
class CpufreqSysfs {
 public:
  /// `root` overrides the sysfs base path (tests point it at a fixture
  /// directory; production uses the default).
  explicit CpufreqSysfs(std::string root = "/sys/devices/system/cpu");

  /// True when at least one CPU exposes a cpufreq directory.
  bool available() const;

  /// CPUs with cpufreq directories, ascending.
  std::vector<int> cpus() const;

  /// Reads the full state of one CPU; nullopt when unavailable.
  std::optional<CpuFreqInfo> info(int cpu) const;

  /// Writes scaling_setspeed (requires the userspace governor and
  /// privileges).  Returns false on any failure; never throws.
  bool set_frequency(int cpu, double hz) const;

  /// Writes scaling_governor.  Returns false on any failure.
  bool set_governor(int cpu, const std::string& governor) const;

  const std::string& root() const { return root_; }

 private:
  std::string cpu_dir(int cpu) const;
  std::optional<std::string> read_file(const std::string& path) const;
  bool write_file(const std::string& path, const std::string& value) const;

  std::string root_;
};

}  // namespace fvsst::host
