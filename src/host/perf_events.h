// perf_events.h - Real-host performance counters via perf_event_open(2).
//
// The Power4+ counters the paper reads through kernel support correspond on
// a modern Linux host to the perf_event interface (what PAPI wraps).  This
// backend counts instructions, cycles and last-level-cache misses for the
// calling thread — the same schema cpu::PerfCounters uses — and degrades
// gracefully where perf_event_open is unavailable (many containers deny
// it): `valid()` is false and reads return nullopt.
#pragma once

#include <optional>

#include "cpu/perf_counters.h"

namespace fvsst::host {

/// A group of per-thread hardware counters.
class PerfEventGroup {
 public:
  /// Opens instructions/cycles/LLC-miss counters for the calling thread.
  /// Failure (no permission, no PMU) leaves the group invalid.
  PerfEventGroup();
  ~PerfEventGroup();

  PerfEventGroup(const PerfEventGroup&) = delete;
  PerfEventGroup& operator=(const PerfEventGroup&) = delete;

  /// True when at least instructions and cycles opened successfully.
  bool valid() const { return fd_instructions_ >= 0 && fd_cycles_ >= 0; }

  /// Resets and starts all counters.
  bool start();

  /// Stops counting.
  bool stop();

  /// Reads current values into the fvsst counter schema.  LLC misses are
  /// reported as mem_accesses (the deepest level available portably);
  /// l2/l3 splits require model-specific raw events and stay zero.
  std::optional<cpu::PerfCounters> read() const;

 private:
  long open_counter(unsigned type, unsigned long long config);

  int fd_instructions_ = -1;
  int fd_cycles_ = -1;
  int fd_llc_misses_ = -1;
};

}  // namespace fvsst::host
