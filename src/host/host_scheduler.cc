#include "host/host_scheduler.h"

#include <utility>

namespace fvsst::host {

std::optional<mach::FrequencyTable> table_from_host(
    const CpuFreqInfo& info, const power::PowerModel& model, double volt_min,
    double volt_max) {
  if (info.available_hz.empty()) return std::nullopt;
  const double f_lo = info.available_hz.front();
  const double f_hi = info.available_hz.back();
  std::vector<mach::OperatingPoint> points;
  for (double hz : info.available_hz) {
    const double rel = f_hi > f_lo ? (hz - f_lo) / (f_hi - f_lo) : 1.0;
    const double volts = volt_min + (volt_max - volt_min) * rel;
    points.push_back({hz, volts, model.power(hz, volts)});
  }
  return mach::FrequencyTable(std::move(points));
}

PerfEventSampler::PerfEventSampler(std::size_t cpu_count) : cpus_(cpu_count) {
  available_ = group_.valid() && group_.start();
  if (available_) {
    if (const auto snap = group_.read()) last_ = *snap;
  }
}

std::vector<core::IntervalSample> PerfEventSampler::end_interval(double now) {
  (void)now;
  std::vector<core::IntervalSample> out(cpus_);
  core::IntervalSample sample;
  sample.elapsed_s = interval_s_;
  if (available_ && interval_s_ > 0.0) {
    if (const auto snap = group_.read()) {
      sample.delta = *snap - last_;
      sample.measured_hz = sample.delta.cycles / interval_s_;
      last_ = *snap;
      sample.valid = true;
    }
  }
  // The single process-wide observation stands in for every managed CPU.
  for (auto& s : out) s = sample;
  return out;
}

SysfsActuator::SysfsActuator(CpufreqSysfs& sysfs, std::vector<int> cpus)
    : sysfs_(sysfs), cpus_(std::move(cpus)) {}

core::ActuationReport SysfsActuator::apply(const core::ScheduleResult& result,
                                           double now,
                                           core::CycleTrigger trigger) {
  (void)now;
  (void)trigger;
  core::ActuationReport report;
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    if (!sysfs_.set_frequency(cpus_[i], result.decisions[i].hz)) {
      ++failed_writes_;
      report.rejected.push_back(i);
    }
  }
  return report;
}

bool SysfsActuator::write_one(std::size_t cpu, double hz, double now) {
  (void)now;
  if (sysfs_.set_frequency(cpus_.at(cpu), hz)) return true;
  ++failed_writes_;
  return false;
}

HostScheduler::HostScheduler(Options options)
    : options_(std::move(options)), sysfs_(options_.sysfs_root) {
  cpus_ = sysfs_.cpus();
  if (cpus_.empty()) return;
  const auto info = sysfs_.info(cpus_.front());
  if (!info) {
    cpus_.clear();
    return;
  }
  table_ = table_from_host(*info, options_.power_model);
  if (!table_) {
    cpus_.clear();
    return;
  }
  proc_tables_.assign(cpus_.size(), &*table_);

  auto sampler = std::make_unique<PerfEventSampler>(cpus_.size());
  sampler_ = sampler.get();
  counters_available_ = sampler_->available();
  core::IpcEstimator::Options est_opts;
  est_opts.idle_signal = core::IdleSignal::kNone;
  // Stateless like the original host port: an unusable interval demotes
  // every CPU back to "unknown workload" (f_max under the budget cap).
  est_opts.reset_on_invalid = true;
  auto actuator = std::make_unique<SysfsActuator>(sysfs_, cpus_);
  actuator_ = actuator.get();

  core::ControlLoopConfig loop_config;
  loop_config.schedule_every_n_samples = 1;  // step() is externally paced.
  loop_config.record_traces = options_.record_traces;
  loop_config.journal = options_.journal;
  if (options_.journal) {
    // t_sample_s = 0: cycles are externally paced (wall clock), so the
    // inspector has no fixed period to verify.
    options_.journal->append(0.0, sim::EventType::kRunMeta)
        .set("t_sample_s", 0.0)
        .set("multiplier", 1.0)
        .set("cpus", static_cast<double>(cpus_.size()))
        .set("t_restarts", 0.0)
        .set("daemon", std::string("host"));
  }
  loop_ = std::make_unique<core::ControlLoop>(
      std::move(loop_config), std::move(sampler),
      std::make_unique<core::IpcEstimator>(options_.latencies, est_opts),
      std::make_unique<core::SchedulerPolicyStage>(*table_, options_.latencies,
                                                   options_.scheduler),
      std::move(actuator), proc_tables_, &telemetry_);
}

std::vector<core::ScheduleDecision> HostScheduler::step(double interval_s) {
  if (!active()) return {};
  sampler_->set_interval(interval_s);
  if (interval_s > 0.0) clock_s_ += interval_s;
  const core::ScheduleResult& result = loop_->run_cycle(
      clock_s_, options_.power_budget_w, core::CycleTrigger::kManual);
  return result.decisions;
}

}  // namespace fvsst::host
