#include "host/host_scheduler.h"

#include <algorithm>

namespace fvsst::host {

std::optional<mach::FrequencyTable> table_from_host(
    const CpuFreqInfo& info, const power::PowerModel& model, double volt_min,
    double volt_max) {
  if (info.available_hz.empty()) return std::nullopt;
  const double f_lo = info.available_hz.front();
  const double f_hi = info.available_hz.back();
  std::vector<mach::OperatingPoint> points;
  for (double hz : info.available_hz) {
    const double rel = f_hi > f_lo ? (hz - f_lo) / (f_hi - f_lo) : 1.0;
    const double volts = volt_min + (volt_max - volt_min) * rel;
    points.push_back({hz, volts, model.power(hz, volts)});
  }
  return mach::FrequencyTable(std::move(points));
}

HostScheduler::HostScheduler(Options options)
    : options_(std::move(options)), sysfs_(options_.sysfs_root) {
  cpus_ = sysfs_.cpus();
  if (cpus_.empty()) return;
  const auto info = sysfs_.info(cpus_.front());
  if (!info) {
    cpus_.clear();
    return;
  }
  table_ = table_from_host(*info, options_.power_model);
  if (!table_) {
    cpus_.clear();
    return;
  }
  scheduler_ = std::make_unique<core::FrequencyScheduler>(
      *table_, options_.latencies, options_.scheduler);
  counters_available_ = counters_.valid() && counters_.start();
  if (counters_available_) {
    if (const auto snap = counters_.read()) last_counters_ = *snap;
  }
}

std::vector<core::ScheduleDecision> HostScheduler::step(double interval_s) {
  if (!active()) return {};
  ++steps_;

  // Estimate the observed workload from the counter delta; without
  // counters every CPU is treated as unknown (runs at f_max under the
  // budget cap — still a useful power governor).
  core::WorkloadEstimate estimate;  // invalid by default
  if (counters_available_ && interval_s > 0.0) {
    if (const auto snap = counters_.read()) {
      core::CounterObservation obs;
      obs.delta = *snap - last_counters_;
      obs.measured_hz = obs.delta.cycles / interval_s;
      last_counters_ = *snap;
      const core::IpcPredictor predictor(options_.latencies);
      estimate = predictor.estimate(obs);
    }
  }

  std::vector<core::ProcView> views(cpus_.size());
  for (auto& v : views) {
    v.estimate = estimate;
    v.idle = false;  // no reliable host-wide idle source at user level
  }
  const core::ScheduleResult result =
      scheduler_->schedule(views, options_.power_budget_w);

  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    if (!sysfs_.set_frequency(cpus_[i], result.decisions[i].hz)) {
      ++failed_writes_;
    }
  }
  return result.decisions;
}

}  // namespace fvsst::host
