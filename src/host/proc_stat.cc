#include "host/proc_stat.h"

#include <fstream>
#include <sstream>

namespace fvsst::host {

std::vector<CpuTimes> parse_proc_stat(std::istream& in) {
  std::vector<CpuTimes> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("cpu", 0) != 0) continue;
    std::istringstream row(line);
    std::string label;
    row >> label;
    CpuTimes t;
    if (label == "cpu") {
      t.cpu = -1;
    } else {
      const std::string digits = label.substr(3);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      t.cpu = std::stoi(digits);
    }
    // Missing trailing fields (older kernels) read as zero.
    row >> t.user >> t.nice >> t.system >> t.idle >> t.iowait >> t.irq >>
        t.softirq >> t.steal;
    if (row.fail() && t.total() == 0) continue;  // malformed row
    out.push_back(t);
  }
  return out;
}

std::vector<CpuTimes> read_proc_stat(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  return parse_proc_stat(in);
}

std::optional<double> utilization_between(const CpuTimes& earlier,
                                          const CpuTimes& later) {
  if (later.total() < earlier.total() || later.busy() < earlier.busy()) {
    return std::nullopt;  // counter reset / mismatched CPUs
  }
  const auto total = later.total() - earlier.total();
  if (total == 0) return std::nullopt;
  const auto busy = later.busy() - earlier.busy();
  double u = static_cast<double>(busy) / static_cast<double>(total);
  if (u < 0.0) u = 0.0;
  if (u > 1.0) u = 1.0;
  return u;
}

}  // namespace fvsst::host
