// latency_probe.h - Measure the host's memory-hierarchy latencies.
//
// The paper calibrated its predictor "by measurement of memory latencies"
// on the P630 (Sec. 7.1: 15 / 113 / 393 cycles).  This probe reproduces
// that methodology on the real host: a dependent pointer chase (each load's
// address comes from the previous load, defeating out-of-order overlap and
// prefetching) over a range of working-set sizes yields a per-access time
// curve whose plateaus are the cache-level latencies.  The result feeds
// HostScheduler::Options::latencies.
#pragma once

#include <cstdint>
#include <vector>

#include "mach/machine_config.h"

namespace fvsst::host {

/// One point of the latency curve.
struct LatencyPoint {
  std::uint64_t working_set_bytes = 0;
  double ns_per_access = 0.0;
};

/// Measures seconds-per-dependent-load at one working-set size.
/// `accesses` chased pointers are timed after a full warm-up pass.
double measure_chase_ns(std::uint64_t working_set_bytes,
                        std::uint64_t accesses = 1u << 20,
                        std::uint64_t line_bytes = 64,
                        std::uint64_t seed = 42);

/// Sweeps working sets from `min_bytes` to `max_bytes` (doubling), e.g.
/// 16 KiB .. 256 MiB, returning the latency curve.
std::vector<LatencyPoint> latency_curve(std::uint64_t min_bytes,
                                        std::uint64_t max_bytes,
                                        std::uint64_t accesses = 1u << 20);

/// Distils a curve into predictor constants: the L2 estimate is the
/// latency at the first size clearly past `l1_bytes`, L3 past `l2_bytes`,
/// memory past `l3_bytes`.  Sizes default to typical modern-server caches;
/// pass the host's real geometry when known.
mach::MemoryLatencies latencies_from_curve(
    const std::vector<LatencyPoint>& curve,
    std::uint64_t l1_bytes = 32ull << 10, std::uint64_t l2_bytes = 1ull << 20,
    std::uint64_t l3_bytes = 32ull << 20);

}  // namespace fvsst::host
