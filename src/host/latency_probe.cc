#include "host/latency_probe.h"

#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "simkit/rng.h"

namespace fvsst::host {
namespace {

// Builds a single-cycle random permutation chase over `n` slots (Sattolo).
std::vector<std::uint32_t> build_cycle(std::uint32_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  for (std::uint32_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.uniform_int(0, i - 1));
    std::swap(order[i], order[j]);
  }
  std::vector<std::uint32_t> successor(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) successor[order[i]] = order[i + 1];
  successor[order[n - 1]] = order[0];
  return successor;
}

}  // namespace

double measure_chase_ns(std::uint64_t working_set_bytes,
                        std::uint64_t accesses, std::uint64_t line_bytes,
                        std::uint64_t seed) {
  if (line_bytes < sizeof(std::uint64_t) ||
      working_set_bytes < 2 * line_bytes) {
    throw std::invalid_argument("measure_chase_ns: bad geometry");
  }
  const auto slots =
      static_cast<std::uint32_t>(working_set_bytes / line_bytes);
  const std::vector<std::uint32_t> successor = build_cycle(slots, seed);

  // One 64-bit "next" pointer (as an index) at the head of each line.
  const std::uint64_t words_per_line = line_bytes / sizeof(std::uint64_t);
  std::vector<std::uint64_t> arena(
      static_cast<std::size_t>(slots) * words_per_line, 0);
  for (std::uint32_t s = 0; s < slots; ++s) {
    arena[static_cast<std::size_t>(s) * words_per_line] = successor[s];
  }

  // Warm-up: one full cycle touches every line.
  volatile std::uint64_t cursor = 0;
  for (std::uint32_t i = 0; i < slots; ++i) {
    cursor = arena[static_cast<std::size_t>(cursor) * words_per_line];
  }

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t c = cursor;
  for (std::uint64_t i = 0; i < accesses; ++i) {
    c = arena[static_cast<std::size_t>(c) * words_per_line];
  }
  const auto end = std::chrono::steady_clock::now();
  cursor = c;  // defeat dead-code elimination

  const double ns =
      std::chrono::duration<double, std::nano>(end - start).count();
  return ns / static_cast<double>(accesses);
}

std::vector<LatencyPoint> latency_curve(std::uint64_t min_bytes,
                                        std::uint64_t max_bytes,
                                        std::uint64_t accesses) {
  if (min_bytes == 0 || max_bytes < min_bytes) {
    throw std::invalid_argument("latency_curve: bad range");
  }
  std::vector<LatencyPoint> out;
  for (std::uint64_t ws = min_bytes; ws <= max_bytes; ws *= 2) {
    out.push_back({ws, measure_chase_ns(ws, accesses)});
  }
  return out;
}

mach::MemoryLatencies latencies_from_curve(
    const std::vector<LatencyPoint>& curve, std::uint64_t l1_bytes,
    std::uint64_t l2_bytes, std::uint64_t l3_bytes) {
  if (curve.empty()) {
    throw std::invalid_argument("latencies_from_curve: empty curve");
  }
  // The latency of level k is what a working set sees once it has clearly
  // outgrown level k-1 (4x its size, so conflict tails don't pollute it).
  auto at_or_above = [&](std::uint64_t bytes) {
    const LatencyPoint* best = &curve.back();
    for (const auto& p : curve) {
      if (p.working_set_bytes >= bytes) {
        best = &p;
        break;
      }
    }
    return best->ns_per_access * 1e-9;
  };
  mach::MemoryLatencies out;
  out.t_l2 = at_or_above(4 * l1_bytes);
  out.t_l3 = at_or_above(4 * l2_bytes);
  out.t_mem = at_or_above(4 * l3_bytes);
  return out;
}

}  // namespace fvsst::host
