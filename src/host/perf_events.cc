#include "host/perf_events.h"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace fvsst::host {

#if defined(__linux__)

long PerfEventGroup::open_counter(unsigned type, unsigned long long config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                 /*group_fd=*/-1, /*flags=*/0);
}

PerfEventGroup::PerfEventGroup() {
  fd_instructions_ = static_cast<int>(
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS));
  fd_cycles_ = static_cast<int>(
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES));
  fd_llc_misses_ = static_cast<int>(
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES));
}

PerfEventGroup::~PerfEventGroup() {
  if (fd_instructions_ >= 0) close(fd_instructions_);
  if (fd_cycles_ >= 0) close(fd_cycles_);
  if (fd_llc_misses_ >= 0) close(fd_llc_misses_);
}

bool PerfEventGroup::start() {
  if (!valid()) return false;
  for (int fd : {fd_instructions_, fd_cycles_, fd_llc_misses_}) {
    if (fd < 0) continue;
    if (ioctl(fd, PERF_EVENT_IOC_RESET, 0) != 0) return false;
    if (ioctl(fd, PERF_EVENT_IOC_ENABLE, 0) != 0) return false;
  }
  return true;
}

bool PerfEventGroup::stop() {
  if (!valid()) return false;
  bool ok = true;
  for (int fd : {fd_instructions_, fd_cycles_, fd_llc_misses_}) {
    if (fd >= 0 && ioctl(fd, PERF_EVENT_IOC_DISABLE, 0) != 0) ok = false;
  }
  return ok;
}

std::optional<cpu::PerfCounters> PerfEventGroup::read() const {
  if (!valid()) return std::nullopt;
  auto read_one = [](int fd, double& out) {
    if (fd < 0) return true;  // optional counter
    long long value = 0;
    if (::read(fd, &value, sizeof(value)) != sizeof(value)) return false;
    out = static_cast<double>(value);
    return true;
  };
  cpu::PerfCounters c;
  if (!read_one(fd_instructions_, c.instructions)) return std::nullopt;
  if (!read_one(fd_cycles_, c.cycles)) return std::nullopt;
  read_one(fd_llc_misses_, c.mem_accesses);
  return c;
}

#else  // !__linux__

long PerfEventGroup::open_counter(unsigned, unsigned long long) { return -1; }
PerfEventGroup::PerfEventGroup() = default;
PerfEventGroup::~PerfEventGroup() = default;
bool PerfEventGroup::start() { return false; }
bool PerfEventGroup::stop() { return false; }
std::optional<cpu::PerfCounters> PerfEventGroup::read() const {
  return std::nullopt;
}

#endif

}  // namespace fvsst::host
